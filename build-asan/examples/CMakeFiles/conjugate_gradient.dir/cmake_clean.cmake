file(REMOVE_RECURSE
  "CMakeFiles/conjugate_gradient.dir/conjugate_gradient.cpp.o"
  "CMakeFiles/conjugate_gradient.dir/conjugate_gradient.cpp.o.d"
  "conjugate_gradient"
  "conjugate_gradient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conjugate_gradient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
