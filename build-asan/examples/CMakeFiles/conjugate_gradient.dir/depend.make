# Empty dependencies file for conjugate_gradient.
# This may be replaced when dependencies are built.
