# Empty dependencies file for gene_clustering.
# This may be replaced when dependencies are built.
