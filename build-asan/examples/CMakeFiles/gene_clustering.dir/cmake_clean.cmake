file(REMOVE_RECURSE
  "CMakeFiles/gene_clustering.dir/gene_clustering.cpp.o"
  "CMakeFiles/gene_clustering.dir/gene_clustering.cpp.o.d"
  "gene_clustering"
  "gene_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gene_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
