file(REMOVE_RECURSE
  "CMakeFiles/text_mining.dir/text_mining.cpp.o"
  "CMakeFiles/text_mining.dir/text_mining.cpp.o.d"
  "text_mining"
  "text_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
