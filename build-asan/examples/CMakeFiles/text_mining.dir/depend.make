# Empty dependencies file for text_mining.
# This may be replaced when dependencies are built.
