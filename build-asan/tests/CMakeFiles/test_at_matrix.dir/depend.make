# Empty dependencies file for test_at_matrix.
# This may be replaced when dependencies are built.
