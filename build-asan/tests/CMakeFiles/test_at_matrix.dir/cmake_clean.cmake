file(REMOVE_RECURSE
  "CMakeFiles/test_at_matrix.dir/test_at_matrix.cc.o"
  "CMakeFiles/test_at_matrix.dir/test_at_matrix.cc.o.d"
  "test_at_matrix"
  "test_at_matrix.pdb"
  "test_at_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_at_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
