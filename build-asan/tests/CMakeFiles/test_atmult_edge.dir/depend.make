# Empty dependencies file for test_atmult_edge.
# This may be replaced when dependencies are built.
