file(REMOVE_RECURSE
  "CMakeFiles/test_atmult_edge.dir/test_atmult_edge.cc.o"
  "CMakeFiles/test_atmult_edge.dir/test_atmult_edge.cc.o.d"
  "test_atmult_edge"
  "test_atmult_edge.pdb"
  "test_atmult_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atmult_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
