file(REMOVE_RECURSE
  "CMakeFiles/test_retile.dir/test_retile.cc.o"
  "CMakeFiles/test_retile.dir/test_retile.cc.o.d"
  "test_retile"
  "test_retile.pdb"
  "test_retile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
