# Empty dependencies file for test_retile.
# This may be replaced when dependencies are built.
