file(REMOVE_RECURSE
  "CMakeFiles/test_serialize_fuzz.dir/test_serialize_fuzz.cc.o"
  "CMakeFiles/test_serialize_fuzz.dir/test_serialize_fuzz.cc.o.d"
  "test_serialize_fuzz"
  "test_serialize_fuzz.pdb"
  "test_serialize_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serialize_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
