# Empty dependencies file for test_serialize_fuzz.
# This may be replaced when dependencies are built.
