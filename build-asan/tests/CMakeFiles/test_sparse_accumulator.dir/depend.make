# Empty dependencies file for test_sparse_accumulator.
# This may be replaced when dependencies are built.
