file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_accumulator.dir/test_sparse_accumulator.cc.o"
  "CMakeFiles/test_sparse_accumulator.dir/test_sparse_accumulator.cc.o.d"
  "test_sparse_accumulator"
  "test_sparse_accumulator.pdb"
  "test_sparse_accumulator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_accumulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
