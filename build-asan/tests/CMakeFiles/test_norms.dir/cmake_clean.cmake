file(REMOVE_RECURSE
  "CMakeFiles/test_norms.dir/test_norms.cc.o"
  "CMakeFiles/test_norms.dir/test_norms.cc.o.d"
  "test_norms"
  "test_norms.pdb"
  "test_norms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_norms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
