# Empty dependencies file for test_norms.
# This may be replaced when dependencies are built.
