# Empty dependencies file for test_density_map.
# This may be replaced when dependencies are built.
