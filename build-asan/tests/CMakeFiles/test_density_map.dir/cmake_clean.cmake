file(REMOVE_RECURSE
  "CMakeFiles/test_density_map.dir/test_density_map.cc.o"
  "CMakeFiles/test_density_map.dir/test_density_map.cc.o.d"
  "test_density_map"
  "test_density_map.pdb"
  "test_density_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_density_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
