file(REMOVE_RECURSE
  "CMakeFiles/test_transpose_spmv.dir/test_transpose_spmv.cc.o"
  "CMakeFiles/test_transpose_spmv.dir/test_transpose_spmv.cc.o.d"
  "test_transpose_spmv"
  "test_transpose_spmv.pdb"
  "test_transpose_spmv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transpose_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
