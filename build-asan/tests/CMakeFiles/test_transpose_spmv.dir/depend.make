# Empty dependencies file for test_transpose_spmv.
# This may be replaced when dependencies are built.
