file(REMOVE_RECURSE
  "CMakeFiles/test_atmult.dir/test_atmult.cc.o"
  "CMakeFiles/test_atmult.dir/test_atmult.cc.o.d"
  "test_atmult"
  "test_atmult.pdb"
  "test_atmult[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atmult.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
