# Empty dependencies file for test_atmult.
# This may be replaced when dependencies are built.
