# Empty dependencies file for test_race_stress.
# This may be replaced when dependencies are built.
