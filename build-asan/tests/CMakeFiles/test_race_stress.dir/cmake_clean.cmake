file(REMOVE_RECURSE
  "CMakeFiles/test_race_stress.dir/test_race_stress.cc.o"
  "CMakeFiles/test_race_stress.dir/test_race_stress.cc.o.d"
  "test_race_stress"
  "test_race_stress.pdb"
  "test_race_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_race_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
