# Empty dependencies file for test_water_level.
# This may be replaced when dependencies are built.
