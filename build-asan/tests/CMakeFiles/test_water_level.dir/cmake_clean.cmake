file(REMOVE_RECURSE
  "CMakeFiles/test_water_level.dir/test_water_level.cc.o"
  "CMakeFiles/test_water_level.dir/test_water_level.cc.o.d"
  "test_water_level"
  "test_water_level.pdb"
  "test_water_level[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_water_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
