file(REMOVE_RECURSE
  "CMakeFiles/test_radix_sort.dir/test_radix_sort.cc.o"
  "CMakeFiles/test_radix_sort.dir/test_radix_sort.cc.o.d"
  "test_radix_sort"
  "test_radix_sort.pdb"
  "test_radix_sort[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_radix_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
