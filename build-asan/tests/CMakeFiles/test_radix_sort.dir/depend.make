# Empty dependencies file for test_radix_sort.
# This may be replaced when dependencies are built.
