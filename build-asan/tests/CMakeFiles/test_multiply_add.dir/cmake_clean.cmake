file(REMOVE_RECURSE
  "CMakeFiles/test_multiply_add.dir/test_multiply_add.cc.o"
  "CMakeFiles/test_multiply_add.dir/test_multiply_add.cc.o.d"
  "test_multiply_add"
  "test_multiply_add.pdb"
  "test_multiply_add[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiply_add.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
