# Empty dependencies file for test_multiply_add.
# This may be replaced when dependencies are built.
