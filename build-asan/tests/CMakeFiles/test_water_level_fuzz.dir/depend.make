# Empty dependencies file for test_water_level_fuzz.
# This may be replaced when dependencies are built.
