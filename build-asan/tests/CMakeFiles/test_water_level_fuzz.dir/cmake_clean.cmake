file(REMOVE_RECURSE
  "CMakeFiles/test_water_level_fuzz.dir/test_water_level_fuzz.cc.o"
  "CMakeFiles/test_water_level_fuzz.dir/test_water_level_fuzz.cc.o.d"
  "test_water_level_fuzz"
  "test_water_level_fuzz.pdb"
  "test_water_level_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_water_level_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
