# Empty dependencies file for test_validate_fuzz.
# This may be replaced when dependencies are built.
