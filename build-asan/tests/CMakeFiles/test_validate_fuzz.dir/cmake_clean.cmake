file(REMOVE_RECURSE
  "CMakeFiles/test_validate_fuzz.dir/test_validate_fuzz.cc.o"
  "CMakeFiles/test_validate_fuzz.dir/test_validate_fuzz.cc.o.d"
  "test_validate_fuzz"
  "test_validate_fuzz.pdb"
  "test_validate_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_validate_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
