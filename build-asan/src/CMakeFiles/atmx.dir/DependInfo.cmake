
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/check.cc" "src/CMakeFiles/atmx.dir/common/check.cc.o" "gcc" "src/CMakeFiles/atmx.dir/common/check.cc.o.d"
  "/root/repo/src/common/config.cc" "src/CMakeFiles/atmx.dir/common/config.cc.o" "gcc" "src/CMakeFiles/atmx.dir/common/config.cc.o.d"
  "/root/repo/src/common/radix_sort.cc" "src/CMakeFiles/atmx.dir/common/radix_sort.cc.o" "gcc" "src/CMakeFiles/atmx.dir/common/radix_sort.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/atmx.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/atmx.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/atmx.dir/common/status.cc.o" "gcc" "src/CMakeFiles/atmx.dir/common/status.cc.o.d"
  "/root/repo/src/common/table_printer.cc" "src/CMakeFiles/atmx.dir/common/table_printer.cc.o" "gcc" "src/CMakeFiles/atmx.dir/common/table_printer.cc.o.d"
  "/root/repo/src/cost/calibration.cc" "src/CMakeFiles/atmx.dir/cost/calibration.cc.o" "gcc" "src/CMakeFiles/atmx.dir/cost/calibration.cc.o.d"
  "/root/repo/src/cost/cost_model.cc" "src/CMakeFiles/atmx.dir/cost/cost_model.cc.o" "gcc" "src/CMakeFiles/atmx.dir/cost/cost_model.cc.o.d"
  "/root/repo/src/estimate/density_estimator.cc" "src/CMakeFiles/atmx.dir/estimate/density_estimator.cc.o" "gcc" "src/CMakeFiles/atmx.dir/estimate/density_estimator.cc.o.d"
  "/root/repo/src/estimate/density_map.cc" "src/CMakeFiles/atmx.dir/estimate/density_map.cc.o" "gcc" "src/CMakeFiles/atmx.dir/estimate/density_map.cc.o.d"
  "/root/repo/src/estimate/water_level.cc" "src/CMakeFiles/atmx.dir/estimate/water_level.cc.o" "gcc" "src/CMakeFiles/atmx.dir/estimate/water_level.cc.o.d"
  "/root/repo/src/gen/rmat.cc" "src/CMakeFiles/atmx.dir/gen/rmat.cc.o" "gcc" "src/CMakeFiles/atmx.dir/gen/rmat.cc.o.d"
  "/root/repo/src/gen/synthetic.cc" "src/CMakeFiles/atmx.dir/gen/synthetic.cc.o" "gcc" "src/CMakeFiles/atmx.dir/gen/synthetic.cc.o.d"
  "/root/repo/src/gen/workloads.cc" "src/CMakeFiles/atmx.dir/gen/workloads.cc.o" "gcc" "src/CMakeFiles/atmx.dir/gen/workloads.cc.o.d"
  "/root/repo/src/kernels/dense_kernels.cc" "src/CMakeFiles/atmx.dir/kernels/dense_kernels.cc.o" "gcc" "src/CMakeFiles/atmx.dir/kernels/dense_kernels.cc.o.d"
  "/root/repo/src/kernels/kernel_dispatch.cc" "src/CMakeFiles/atmx.dir/kernels/kernel_dispatch.cc.o" "gcc" "src/CMakeFiles/atmx.dir/kernels/kernel_dispatch.cc.o.d"
  "/root/repo/src/kernels/mixed_kernels.cc" "src/CMakeFiles/atmx.dir/kernels/mixed_kernels.cc.o" "gcc" "src/CMakeFiles/atmx.dir/kernels/mixed_kernels.cc.o.d"
  "/root/repo/src/kernels/sparse_accumulator.cc" "src/CMakeFiles/atmx.dir/kernels/sparse_accumulator.cc.o" "gcc" "src/CMakeFiles/atmx.dir/kernels/sparse_accumulator.cc.o.d"
  "/root/repo/src/kernels/sparse_kernels.cc" "src/CMakeFiles/atmx.dir/kernels/sparse_kernels.cc.o" "gcc" "src/CMakeFiles/atmx.dir/kernels/sparse_kernels.cc.o.d"
  "/root/repo/src/morton/hilbert.cc" "src/CMakeFiles/atmx.dir/morton/hilbert.cc.o" "gcc" "src/CMakeFiles/atmx.dir/morton/hilbert.cc.o.d"
  "/root/repo/src/morton/morton.cc" "src/CMakeFiles/atmx.dir/morton/morton.cc.o" "gcc" "src/CMakeFiles/atmx.dir/morton/morton.cc.o.d"
  "/root/repo/src/ops/atmult.cc" "src/CMakeFiles/atmx.dir/ops/atmult.cc.o" "gcc" "src/CMakeFiles/atmx.dir/ops/atmult.cc.o.d"
  "/root/repo/src/ops/chain.cc" "src/CMakeFiles/atmx.dir/ops/chain.cc.o" "gcc" "src/CMakeFiles/atmx.dir/ops/chain.cc.o.d"
  "/root/repo/src/ops/elementwise.cc" "src/CMakeFiles/atmx.dir/ops/elementwise.cc.o" "gcc" "src/CMakeFiles/atmx.dir/ops/elementwise.cc.o.d"
  "/root/repo/src/ops/explain.cc" "src/CMakeFiles/atmx.dir/ops/explain.cc.o" "gcc" "src/CMakeFiles/atmx.dir/ops/explain.cc.o.d"
  "/root/repo/src/ops/norms.cc" "src/CMakeFiles/atmx.dir/ops/norms.cc.o" "gcc" "src/CMakeFiles/atmx.dir/ops/norms.cc.o.d"
  "/root/repo/src/ops/optimizer.cc" "src/CMakeFiles/atmx.dir/ops/optimizer.cc.o" "gcc" "src/CMakeFiles/atmx.dir/ops/optimizer.cc.o.d"
  "/root/repo/src/ops/reference_mult.cc" "src/CMakeFiles/atmx.dir/ops/reference_mult.cc.o" "gcc" "src/CMakeFiles/atmx.dir/ops/reference_mult.cc.o.d"
  "/root/repo/src/ops/retile.cc" "src/CMakeFiles/atmx.dir/ops/retile.cc.o" "gcc" "src/CMakeFiles/atmx.dir/ops/retile.cc.o.d"
  "/root/repo/src/ops/spmv.cc" "src/CMakeFiles/atmx.dir/ops/spmv.cc.o" "gcc" "src/CMakeFiles/atmx.dir/ops/spmv.cc.o.d"
  "/root/repo/src/ops/transpose.cc" "src/CMakeFiles/atmx.dir/ops/transpose.cc.o" "gcc" "src/CMakeFiles/atmx.dir/ops/transpose.cc.o.d"
  "/root/repo/src/storage/convert.cc" "src/CMakeFiles/atmx.dir/storage/convert.cc.o" "gcc" "src/CMakeFiles/atmx.dir/storage/convert.cc.o.d"
  "/root/repo/src/storage/coo_matrix.cc" "src/CMakeFiles/atmx.dir/storage/coo_matrix.cc.o" "gcc" "src/CMakeFiles/atmx.dir/storage/coo_matrix.cc.o.d"
  "/root/repo/src/storage/csr_matrix.cc" "src/CMakeFiles/atmx.dir/storage/csr_matrix.cc.o" "gcc" "src/CMakeFiles/atmx.dir/storage/csr_matrix.cc.o.d"
  "/root/repo/src/storage/dense_matrix.cc" "src/CMakeFiles/atmx.dir/storage/dense_matrix.cc.o" "gcc" "src/CMakeFiles/atmx.dir/storage/dense_matrix.cc.o.d"
  "/root/repo/src/storage/matrix_market.cc" "src/CMakeFiles/atmx.dir/storage/matrix_market.cc.o" "gcc" "src/CMakeFiles/atmx.dir/storage/matrix_market.cc.o.d"
  "/root/repo/src/storage/serialize.cc" "src/CMakeFiles/atmx.dir/storage/serialize.cc.o" "gcc" "src/CMakeFiles/atmx.dir/storage/serialize.cc.o.d"
  "/root/repo/src/tile/at_matrix.cc" "src/CMakeFiles/atmx.dir/tile/at_matrix.cc.o" "gcc" "src/CMakeFiles/atmx.dir/tile/at_matrix.cc.o.d"
  "/root/repo/src/tile/partitioner.cc" "src/CMakeFiles/atmx.dir/tile/partitioner.cc.o" "gcc" "src/CMakeFiles/atmx.dir/tile/partitioner.cc.o.d"
  "/root/repo/src/tile/tile.cc" "src/CMakeFiles/atmx.dir/tile/tile.cc.o" "gcc" "src/CMakeFiles/atmx.dir/tile/tile.cc.o.d"
  "/root/repo/src/topology/numa_sim.cc" "src/CMakeFiles/atmx.dir/topology/numa_sim.cc.o" "gcc" "src/CMakeFiles/atmx.dir/topology/numa_sim.cc.o.d"
  "/root/repo/src/topology/system_topology.cc" "src/CMakeFiles/atmx.dir/topology/system_topology.cc.o" "gcc" "src/CMakeFiles/atmx.dir/topology/system_topology.cc.o.d"
  "/root/repo/src/topology/thread_pool.cc" "src/CMakeFiles/atmx.dir/topology/thread_pool.cc.o" "gcc" "src/CMakeFiles/atmx.dir/topology/thread_pool.cc.o.d"
  "/root/repo/src/topology/tile_size_policy.cc" "src/CMakeFiles/atmx.dir/topology/tile_size_policy.cc.o" "gcc" "src/CMakeFiles/atmx.dir/topology/tile_size_policy.cc.o.d"
  "/root/repo/src/validate/debug_hooks.cc" "src/CMakeFiles/atmx.dir/validate/debug_hooks.cc.o" "gcc" "src/CMakeFiles/atmx.dir/validate/debug_hooks.cc.o.d"
  "/root/repo/src/validate/validate.cc" "src/CMakeFiles/atmx.dir/validate/validate.cc.o" "gcc" "src/CMakeFiles/atmx.dir/validate/validate.cc.o.d"
  "/root/repo/src/viz/render.cc" "src/CMakeFiles/atmx.dir/viz/render.cc.o" "gcc" "src/CMakeFiles/atmx.dir/viz/render.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
