# Empty dependencies file for atmx.
# This may be replaced when dependencies are built.
