file(REMOVE_RECURSE
  "libatmx.a"
)
