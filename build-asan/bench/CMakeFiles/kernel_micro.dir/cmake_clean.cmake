file(REMOVE_RECURSE
  "CMakeFiles/kernel_micro.dir/kernel_micro.cc.o"
  "CMakeFiles/kernel_micro.dir/kernel_micro.cc.o.d"
  "kernel_micro"
  "kernel_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
