# Empty dependencies file for kernel_micro.
# This may be replaced when dependencies are built.
