# Empty dependencies file for curve_locality.
# This may be replaced when dependencies are built.
