file(REMOVE_RECURSE
  "CMakeFiles/curve_locality.dir/curve_locality.cc.o"
  "CMakeFiles/curve_locality.dir/curve_locality.cc.o.d"
  "curve_locality"
  "curve_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curve_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
