file(REMOVE_RECURSE
  "CMakeFiles/fig9_mixed.dir/fig9_mixed.cc.o"
  "CMakeFiles/fig9_mixed.dir/fig9_mixed.cc.o.d"
  "fig9_mixed"
  "fig9_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
