# Empty dependencies file for fig9_mixed.
# This may be replaced when dependencies are built.
