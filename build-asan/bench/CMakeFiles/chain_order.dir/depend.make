# Empty dependencies file for chain_order.
# This may be replaced when dependencies are built.
