file(REMOVE_RECURSE
  "CMakeFiles/chain_order.dir/chain_order.cc.o"
  "CMakeFiles/chain_order.dir/chain_order.cc.o.d"
  "chain_order"
  "chain_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
