file(REMOVE_RECURSE
  "CMakeFiles/cost_turnaround.dir/cost_turnaround.cc.o"
  "CMakeFiles/cost_turnaround.dir/cost_turnaround.cc.o.d"
  "cost_turnaround"
  "cost_turnaround.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_turnaround.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
