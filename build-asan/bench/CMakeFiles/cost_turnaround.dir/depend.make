# Empty dependencies file for cost_turnaround.
# This may be replaced when dependencies are built.
