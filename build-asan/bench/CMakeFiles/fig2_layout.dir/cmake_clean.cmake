file(REMOVE_RECURSE
  "CMakeFiles/fig2_layout.dir/fig2_layout.cc.o"
  "CMakeFiles/fig2_layout.dir/fig2_layout.cc.o.d"
  "fig2_layout"
  "fig2_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
