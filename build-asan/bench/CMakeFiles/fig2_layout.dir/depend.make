# Empty dependencies file for fig2_layout.
# This may be replaced when dependencies are built.
