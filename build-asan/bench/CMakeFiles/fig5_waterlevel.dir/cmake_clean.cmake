file(REMOVE_RECURSE
  "CMakeFiles/fig5_waterlevel.dir/fig5_waterlevel.cc.o"
  "CMakeFiles/fig5_waterlevel.dir/fig5_waterlevel.cc.o.d"
  "fig5_waterlevel"
  "fig5_waterlevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_waterlevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
