# Empty dependencies file for fig5_waterlevel.
# This may be replaced when dependencies are built.
