# Empty dependencies file for retile_mixed.
# This may be replaced when dependencies are built.
