file(REMOVE_RECURSE
  "CMakeFiles/retile_mixed.dir/retile_mixed.cc.o"
  "CMakeFiles/retile_mixed.dir/retile_mixed.cc.o.d"
  "retile_mixed"
  "retile_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retile_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
