file(REMOVE_RECURSE
  "CMakeFiles/estimator_accuracy.dir/estimator_accuracy.cc.o"
  "CMakeFiles/estimator_accuracy.dir/estimator_accuracy.cc.o.d"
  "estimator_accuracy"
  "estimator_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
