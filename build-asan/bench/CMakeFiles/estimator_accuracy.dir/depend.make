# Empty dependencies file for estimator_accuracy.
# This may be replaced when dependencies are built.
