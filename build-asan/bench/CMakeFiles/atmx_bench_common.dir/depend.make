# Empty dependencies file for atmx_bench_common.
# This may be replaced when dependencies are built.
