file(REMOVE_RECURSE
  "libatmx_bench_common.a"
)
