file(REMOVE_RECURSE
  "CMakeFiles/atmx_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/atmx_bench_common.dir/bench_common.cc.o.d"
  "libatmx_bench_common.a"
  "libatmx_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmx_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
