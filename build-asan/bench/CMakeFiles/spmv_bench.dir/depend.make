# Empty dependencies file for spmv_bench.
# This may be replaced when dependencies are built.
