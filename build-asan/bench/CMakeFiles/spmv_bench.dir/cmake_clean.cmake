file(REMOVE_RECURSE
  "CMakeFiles/spmv_bench.dir/spmv_bench.cc.o"
  "CMakeFiles/spmv_bench.dir/spmv_bench.cc.o.d"
  "spmv_bench"
  "spmv_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmv_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
