# Empty dependencies file for paper_machine_replay.
# This may be replaced when dependencies are built.
