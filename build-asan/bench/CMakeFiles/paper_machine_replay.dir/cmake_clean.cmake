file(REMOVE_RECURSE
  "CMakeFiles/paper_machine_replay.dir/paper_machine_replay.cc.o"
  "CMakeFiles/paper_machine_replay.dir/paper_machine_replay.cc.o.d"
  "paper_machine_replay"
  "paper_machine_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_machine_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
