# Empty dependencies file for fig8_spgemm.
# This may be replaced when dependencies are built.
