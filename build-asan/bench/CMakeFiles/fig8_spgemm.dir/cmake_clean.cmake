file(REMOVE_RECURSE
  "CMakeFiles/fig8_spgemm.dir/fig8_spgemm.cc.o"
  "CMakeFiles/fig8_spgemm.dir/fig8_spgemm.cc.o.d"
  "fig8_spgemm"
  "fig8_spgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_spgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
