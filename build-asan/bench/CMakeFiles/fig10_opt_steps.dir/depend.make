# Empty dependencies file for fig10_opt_steps.
# This may be replaced when dependencies are built.
