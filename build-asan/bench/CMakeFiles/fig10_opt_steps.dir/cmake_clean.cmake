file(REMOVE_RECURSE
  "CMakeFiles/fig10_opt_steps.dir/fig10_opt_steps.cc.o"
  "CMakeFiles/fig10_opt_steps.dir/fig10_opt_steps.cc.o.d"
  "fig10_opt_steps"
  "fig10_opt_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_opt_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
