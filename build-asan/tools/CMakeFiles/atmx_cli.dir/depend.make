# Empty dependencies file for atmx_cli.
# This may be replaced when dependencies are built.
