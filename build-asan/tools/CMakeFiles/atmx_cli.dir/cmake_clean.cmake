file(REMOVE_RECURSE
  "CMakeFiles/atmx_cli.dir/atmx_cli.cc.o"
  "CMakeFiles/atmx_cli.dir/atmx_cli.cc.o.d"
  "atmx"
  "atmx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmx_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
