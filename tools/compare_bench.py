#!/usr/bin/env python3
"""Compare two BENCH_*.json reports and gate on wall-time regressions.

Usage:
  compare_bench.py BASELINE.json CURRENT.json [--max-regress PCT]
                   [--allow-missing-baseline] [--update-baselines]

Both files must follow the BenchReporter schema (schema_version 1, see
bench/bench_common.h). Cases are matched by name; for each pair the median
wall time ratio current/baseline decides the verdict:

  REGRESSION        ratio > 1 + PCT/100        (exit 1)
  IMPROVEMENT       ratio < 1 - PCT/100
  OK                otherwise
  MISSING_CASE      case in baseline but not in current   (exit 1)
  MISSING_BASELINE  case in current but not in baseline
                    (exit 1 unless --allow-missing-baseline)
  BASELINE_ADDED    with --update-baselines: the current-only case was
                    appended to the baseline file (never fails)

--update-baselines rewrites BASELINE.json with every current-only case
appended, so adding a bench case is a one-command baseline refresh instead
of hand-editing JSON. Existing baseline entries are never overwritten —
deliberate re-baselining of a changed case means deleting it first.

Counter deltas, when present in both files, are printed for context but
never gate: they vary across hosts and kernel versions.
"""

import argparse
import json
import math
import sys

SCHEMA_VERSION = 1

# Verdict constants (also the printed labels).
REGRESSION = "REGRESSION"
IMPROVEMENT = "IMPROVEMENT"
OK = "OK"
MISSING_CASE = "MISSING_CASE"
MISSING_BASELINE = "MISSING_BASELINE"
BASELINE_ADDED = "BASELINE_ADDED"


class SchemaError(ValueError):
    """The input file does not follow the BenchReporter schema."""


def validate_report(report, path="<report>"):
    """Raises SchemaError unless `report` is a valid schema-v1 report."""
    if not isinstance(report, dict):
        raise SchemaError(f"{path}: top level must be an object")
    version = report.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SchemaError(
            f"{path}: schema_version {version!r}, expected {SCHEMA_VERSION}")
    if not isinstance(report.get("bench"), str):
        raise SchemaError(f"{path}: missing string field 'bench'")
    cases = report.get("cases")
    if not isinstance(cases, list):
        raise SchemaError(f"{path}: missing list field 'cases'")
    for case in cases:
        if not isinstance(case, dict) or not isinstance(
                case.get("name"), str):
            raise SchemaError(f"{path}: each case needs a string 'name'")
        wall = case.get("wall_seconds")
        if not isinstance(wall, dict):
            raise SchemaError(
                f"{path}: case {case.get('name')!r} missing 'wall_seconds'")
        for key in ("min", "median", "p95", "max"):
            value = wall.get(key)
            if not isinstance(value, (int, float)) or isinstance(
                    value, bool) or not math.isfinite(value) or value < 0:
                raise SchemaError(
                    f"{path}: case {case['name']!r} wall_seconds.{key} "
                    f"must be a finite non-negative number, got {value!r}")
        counters = case.get("counters")
        if counters is not None:
            if not isinstance(counters, dict):
                raise SchemaError(
                    f"{path}: case {case['name']!r} 'counters' must be an "
                    "object")
            for cname, cval in counters.items():
                if not isinstance(cval, int) or isinstance(
                        cval, bool) or cval < 0:
                    raise SchemaError(
                        f"{path}: case {case['name']!r} counter {cname!r} "
                        f"must be a non-negative integer, got {cval!r}")
    return report


def load_report(path):
    with open(path, "r", encoding="utf-8") as f:
        return validate_report(json.load(f), path)


def compare(baseline, current, max_regress_pct=10.0):
    """Compares two validated reports.

    Returns a list of dicts: {name, verdict, baseline_median,
    current_median, ratio} (medians/ratio are None for the MISSING_*
    verdicts), ordered baseline cases first, then current-only cases.
    """
    base_cases = {c["name"]: c for c in baseline["cases"]}
    cur_cases = {c["name"]: c for c in current["cases"]}
    hi = 1.0 + max_regress_pct / 100.0
    lo = 1.0 - max_regress_pct / 100.0
    results = []
    for name, base in base_cases.items():
        if name not in cur_cases:
            results.append({"name": name, "verdict": MISSING_CASE,
                            "baseline_median": base["wall_seconds"]["median"],
                            "current_median": None, "ratio": None})
            continue
        base_median = base["wall_seconds"]["median"]
        cur_median = cur_cases[name]["wall_seconds"]["median"]
        if base_median <= 0.0:
            # Degenerate baseline: only flag if current is also meaningful.
            ratio = math.inf if cur_median > 0.0 else 1.0
        else:
            ratio = cur_median / base_median
        if ratio > hi:
            verdict = REGRESSION
        elif ratio < lo:
            verdict = IMPROVEMENT
        else:
            verdict = OK
        results.append({"name": name, "verdict": verdict,
                        "baseline_median": base_median,
                        "current_median": cur_median, "ratio": ratio})
    for name, cur in cur_cases.items():
        if name in base_cases:
            continue
        results.append({"name": name, "verdict": MISSING_BASELINE,
                        "baseline_median": None,
                        "current_median": cur["wall_seconds"]["median"],
                        "ratio": None})
    return results


def update_baselines(baseline, current, results):
    """Appends current-only cases to `baseline`, relabelling their result
    rows MISSING_BASELINE -> BASELINE_ADDED. Returns the number added."""
    cur_cases = {c["name"]: c for c in current["cases"]}
    added = 0
    for row in results:
        if row["verdict"] != MISSING_BASELINE:
            continue
        baseline["cases"].append(cur_cases[row["name"]])
        row["verdict"] = BASELINE_ADDED
        added += 1
    return added


def write_report(report, path):
    with open(path, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=1)
        f.write("\n")


def format_row(row):
    def fmt(value):
        return "-" if value is None else f"{value:.6g}"

    ratio = "-" if row["ratio"] is None else f"{row['ratio']:.3f}"
    return (f"{row['verdict']:<16} {row['name']:<28} "
            f"base={fmt(row['baseline_median'])}s "
            f"cur={fmt(row['current_median'])}s ratio={ratio}")


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Gate on wall-time regressions between two bench "
                    "reports.")
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("current", help="current BENCH_*.json")
    parser.add_argument("--max-regress", type=float, default=10.0,
                        metavar="PCT",
                        help="tolerated median wall-time increase in "
                             "percent (default 10)")
    parser.add_argument("--allow-missing-baseline", action="store_true",
                        help="do not fail on cases absent from the "
                             "baseline")
    parser.add_argument("--update-baselines", action="store_true",
                        help="append current-only cases to BASELINE.json "
                             "(reported as BASELINE_ADDED, never failing); "
                             "existing entries are left untouched")
    args = parser.parse_args(argv)

    try:
        baseline = load_report(args.baseline)
        current = load_report(args.current)
    except (OSError, json.JSONDecodeError, SchemaError) as err:
        print(f"compare_bench: {err}", file=sys.stderr)
        return 2

    results = compare(baseline, current, args.max_regress)
    added = 0
    if args.update_baselines:
        added = update_baselines(baseline, current, results)
        if added:
            try:
                write_report(baseline, args.baseline)
            except OSError as err:
                print(f"compare_bench: {err}", file=sys.stderr)
                return 2
    failures = 0
    for row in results:
        print(format_row(row))
        if row["verdict"] in (REGRESSION, MISSING_CASE):
            failures += 1
        elif (row["verdict"] == MISSING_BASELINE
              and not args.allow_missing_baseline):
            failures += 1

    n = len(results)
    print(f"\ncompare_bench: {n} case(s), {failures} failing "
          f"(threshold +{args.max_regress:g}%)"
          + (f", {added} baseline(s) added to {args.baseline}"
             if added else ""))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
