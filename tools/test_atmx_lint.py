#!/usr/bin/env python3
"""Unit tests for atmx_lint.py: every invariant check must (a) fire on a
minimal synthetic violation and (b) stay quiet on the equivalent clean
code, and the real repository must lint clean.

Run directly (`python3 tools/test_atmx_lint.py`) or via ctest, which
registers this file when a Python3 interpreter is found.
"""

import os
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import atmx_lint  # noqa: E402

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class FakeRepo:
    """A throwaway tree with the minimal layout the checks expect."""

    def __init__(self):
        self.root = tempfile.mkdtemp(prefix="atmx_lint_test_")
        # Baseline files the cross-file checks read unconditionally.
        self.write("src/common/status.h", (
            "class [[nodiscard]] Status {};\n"
            "template <typename T> class [[nodiscard]] Result {};\n"))
        self.write("src/common/mutex.h", "class Mutex {};\n")
        self.write("src/common/thread_annotations.h", "#define X\n")
        self.write("src/obs/trace.h", (
            "// LOCK ORDER: registry_mutex_ strictly before any shard\n"
            "// `mutex`.\n"))
        self.write("src/CMakeLists.txt", (
            'list(APPEND ATMX_PORTABLE_KERNEL_OPTIONS "-ffp-contract=off")\n'
            'list(APPEND ATMX_AVX2_KERNEL_OPTIONS "-ffp-contract=off")\n'
            "set_source_files_properties(\n"
            "  kernels/simd/ok.cc\n"
            "  kernels/simd/bad.cc\n"
            '  PROPERTIES COMPILE_OPTIONS "${ATMX_PORTABLE_KERNEL_OPTIONS}")'
            "\n"))

    def write(self, rel, content):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)
        return path

    def destroy(self):
        shutil.rmtree(self.root, ignore_errors=True)


class LintCheckTest(unittest.TestCase):
    def setUp(self):
        self.repo = FakeRepo()
        self.addCleanup(self.repo.destroy)

    def run_check(self, name):
        return atmx_lint.CHECKS[name](self.repo.root)

    # -- no-raw-mutex ------------------------------------------------------

    def test_raw_mutex_flagged(self):
        self.repo.write("src/foo/bar.cc",
                        "#include <mutex>\nstd::mutex mu;\n"
                        "void F() { std::lock_guard<std::mutex> l(mu); }\n")
        v = self.run_check("no-raw-mutex")
        self.assertEqual(len(v), 3)  # mutex, lock_guard, nested std::mutex
        self.assertTrue(all(x.check == "no-raw-mutex" for x in v))

    def test_raw_condvar_flagged(self):
        self.repo.write("src/foo/bar.h", "std::condition_variable cv;\n")
        self.assertEqual(len(self.run_check("no-raw-mutex")), 1)

    def test_wrapper_file_allowed(self):
        self.repo.write("src/common/mutex.h",
                        "#include <mutex>\nclass Mutex { std::mutex m_; };\n")
        self.assertEqual(self.run_check("no-raw-mutex"), [])

    def test_mention_in_comment_or_string_ignored(self):
        self.repo.write("src/foo/doc.cc",
                        "// std::mutex is banned here\n"
                        'const char* kMsg = "std::lock_guard";\n')
        self.assertEqual(self.run_check("no-raw-mutex"), [])

    def test_atmx_wrappers_clean(self):
        self.repo.write("src/foo/ok.cc",
                        "void F() { MutexLock lock(mu_); }\n")
        self.assertEqual(self.run_check("no-raw-mutex"), [])

    # -- nodiscard-status --------------------------------------------------

    def test_status_class_attribute_required(self):
        self.repo.write("src/common/status.h",
                        "class Status {};\n"
                        "template <typename T> class Result {};\n")
        v = self.run_check("nodiscard-status")
        self.assertEqual(len(v), 2)

    def test_unmarked_api_flagged(self):
        self.repo.write("src/io/io.h", "Status Save(const int& x);\n")
        v = self.run_check("nodiscard-status")
        self.assertEqual(len(v), 1)
        self.assertIn("missing [[nodiscard]]", v[0].message)

    def test_marked_api_clean(self):
        self.repo.write("src/io/io.h",
                        "[[nodiscard]] Status Save(const int& x);\n"
                        "[[nodiscard]] Result<int> Load(const char* p);\n")
        self.assertEqual(self.run_check("nodiscard-status"), [])

    def test_discarded_call_flagged(self):
        self.repo.write("src/io/io.h", "[[nodiscard]] Status Save(int x);\n")
        self.repo.write("src/io/use.cc", "void F() {\n  Save(1);\n}\n")
        v = self.run_check("nodiscard-status")
        self.assertEqual(len(v), 1)
        self.assertIn("discarded", v[0].message)

    def test_laundered_call_flagged(self):
        self.repo.write("src/io/io.h", "[[nodiscard]] Status Save(int x);\n")
        self.repo.write("src/io/use.cc", "void F() { (void)Save(1); }\n")
        v = self.run_check("nodiscard-status")
        self.assertEqual(len(v), 1)
        self.assertIn("laundered", v[0].message)

    def test_consumed_call_clean(self):
        self.repo.write("src/io/io.h", "[[nodiscard]] Status Save(int x);\n")
        self.repo.write("src/io/use.cc", (
            "void F() {\n"
            "  Status s = Save(1);\n"
            "  if (!Save(2).ok()) return;\n"
            "  return Save(3);\n"
            "}\n"))
        self.assertEqual(self.run_check("nodiscard-status"), [])

    # -- fp-contract -------------------------------------------------------

    def test_std_fma_flagged(self):
        self.repo.write("src/kernels/simd/bad.cc",
                        "double F(double a, double b, double c) {\n"
                        "  return std::fma(a, b, c);\n}\n")
        v = self.run_check("fp-contract")
        self.assertEqual(len(v), 1)

    def test_fma_intrinsic_flagged(self):
        self.repo.write("src/kernels/simd/bad.cc",
                        "__m256d F(__m256d a, __m256d b, __m256d c) {\n"
                        "  return _mm256_fmadd_pd(a, b, c);\n}\n")
        self.assertEqual(len(self.run_check("fp-contract")), 1)

    def test_fp_contract_pragma_on_flagged(self):
        self.repo.write("src/kernels/simd/bad.cc",
                        "#pragma STDC FP_CONTRACT ON\n")
        self.assertEqual(len(self.run_check("fp-contract")), 1)

    def test_fp_contract_pragma_off_allowed(self):
        self.repo.write("src/kernels/simd/ok.cc",
                        "#pragma STDC FP_CONTRACT OFF\n"
                        "double F(double a, double b) { return a * b; }\n")
        self.assertEqual(self.run_check("fp-contract"), [])

    def test_fma_in_comment_or_flagstring_ignored(self):
        self.repo.write("src/kernels/simd/ok.cc",
                        "// compiled with -mavx2 -mfma\n"
                        'bool F() { return cpu_supports("fma"); }\n')
        self.assertEqual(self.run_check("fp-contract"), [])

    def test_cmake_flag_removal_flagged(self):
        self.repo.write("src/CMakeLists.txt",
                        'list(APPEND ATMX_AVX2_KERNEL_OPTIONS "-mavx2")\n')
        v = self.run_check("fp-contract")
        self.assertEqual(len(v), 2)  # both option lists lost the flag

    def test_uncovered_kernel_tu_flagged(self):
        # A new kernel TU with no set_source_files_properties entry would
        # compile with the compiler's default contraction.
        self.repo.write("src/kernels/simd/simd_new_family.cc",
                        "double F(double a, double b) { return a * b; }\n")
        v = self.run_check("fp-contract")
        self.assertEqual(len(v), 1)
        self.assertIn("simd_new_family.cc", v[0].message)

    def test_dispatcher_tu_exempt_from_coverage(self):
        self.repo.write("src/kernels/simd/simd_dispatch.cc",
                        "int ActiveLevel() { return 1; }\n")
        self.assertEqual(self.run_check("fp-contract"), [])

    # -- lock-order-doc ----------------------------------------------------

    def test_lock_order_comment_removal_flagged(self):
        self.repo.write("src/obs/trace.h", "struct ThreadBuffer {};\n")
        self.assertEqual(len(self.run_check("lock-order-doc")), 1)

    def test_lock_order_comment_present_clean(self):
        self.assertEqual(self.run_check("lock-order-doc"), [])

    # -- no-lock-across-callback -------------------------------------------

    def test_callback_under_lock_flagged(self):
        self.repo.write("src/sched/bad.cc", (
            "void Drain(const std::function<void(int)>& run) {\n"
            "  MutexLock lock(mu_);\n"
            "  run(0);\n"
            "}\n"))
        v = self.run_check("no-lock-across-callback")
        self.assertEqual(len(v), 1)

    def test_job_pointer_under_lock_flagged(self):
        self.repo.write("src/sched/bad.cc", (
            "void Loop() {\n"
            "  MutexLock lock(mu_);\n"
            "  (*job)(1);\n"
            "}\n"))
        self.assertEqual(len(self.run_check("no-lock-across-callback")), 1)

    def test_callback_after_scope_close_clean(self):
        self.repo.write("src/sched/ok.cc", (
            "void Drain(const std::function<void(int)>& run) {\n"
            "  int task;\n"
            "  {\n"
            "    MutexLock lock(mu_);\n"
            "    task = q_.front();\n"
            "  }\n"
            "  run(task);\n"
            "}\n"))
        self.assertEqual(self.run_check("no-lock-across-callback"), [])

    def test_non_callback_call_under_lock_clean(self):
        self.repo.write("src/sched/ok.cc", (
            "void Drain() {\n"
            "  MutexLock lock(mu_);\n"
            "  q_.push_back(1);\n"
            "  Refill(3);\n"
            "}\n"))
        self.assertEqual(self.run_check("no-lock-across-callback"), [])

    def test_socket_call_under_lock_flagged(self):
        self.repo.write("src/obs/stats_server.cc", (
            "void StatsServer::ThreadMain() {\n"
            "  MutexLock lock(mu_);\n"
            "  const int fd = accept(listen_fd, nullptr, nullptr);\n"
            "  send(fd, body.data(), body.size(), 0);\n"
            "}\n"))
        v = self.run_check("no-lock-across-callback")
        self.assertEqual(len(v), 2)
        self.assertIn("socket call", v[0].message)

    def test_socket_call_outside_lock_clean(self):
        self.repo.write("src/obs/stats_server.cc", (
            "void StatsServer::ThreadMain() {\n"
            "  {\n"
            "    MutexLock lock(mu_);\n"
            "    running_ = true;\n"
            "  }\n"
            "  const int fd = accept(listen_fd, nullptr, nullptr);\n"
            "  send(fd, body.data(), body.size(), 0);\n"
            "}\n"))
        self.assertEqual(self.run_check("no-lock-across-callback"), [])

    def test_shutdown_under_lock_allowed(self):
        # Stop() holds mu_ while shutting the listener down — that is how
        # it unblocks accept, and the check must not ban it.
        self.repo.write("src/obs/stats_server.cc", (
            "void StatsServer::Stop() {\n"
            "  MutexLock lock(mu_);\n"
            "  shutdown(fd, SHUT_RDWR);\n"
            "  close(fd);\n"
            "}\n"))
        self.assertEqual(self.run_check("no-lock-across-callback"), [])

    def test_socket_call_under_lock_other_file_not_flagged(self):
        # The socket rule is scoped to the stats server; write() on a
        # plain fd elsewhere under a lock is out of its jurisdiction.
        self.repo.write("src/io/ok.cc", (
            "void Flush() {\n"
            "  MutexLock lock(mu_);\n"
            "  write(fd_, buf, n);\n"
            "}\n"))
        self.assertEqual(self.run_check("no-lock-across-callback"), [])

    def test_member_named_send_under_lock_clean(self):
        self.repo.write("src/obs/stats_server.cc", (
            "void StatsServer::Poke() {\n"
            "  MutexLock lock(mu_);\n"
            "  channel_.send(1);\n"
            "}\n"))
        self.assertEqual(self.run_check("no-lock-across-callback"), [])

    # -- no-lock-across-file-io --------------------------------------------

    def test_file_io_under_lock_flagged(self):
        self.repo.write("src/obs/audit_ledger.cc", (
            "Status AuditLedger::WriteJson(const std::string& path) {\n"
            "  MutexLock lock(mutex_);\n"
            "  std::FILE* f = std::fopen(path.c_str(), \"w\");\n"
            "  fwrite(json.data(), 1, json.size(), f);\n"
            "  fclose(f);\n"
            "}\n"))
        v = self.run_check("no-lock-across-file-io")
        self.assertEqual(len(v), 3)
        self.assertIn("file I/O", v[0].message)
        self.assertEqual(v[0].line, 3)

    def test_snapshot_then_lock_free_write_clean(self):
        # The intended shape: the lock scope only copies, the I/O runs
        # after it closes.
        self.repo.write("src/obs/audit_ledger.cc", (
            "Status AuditLedger::WriteJson(const std::string& path) {\n"
            "  std::string json;\n"
            "  {\n"
            "    MutexLock lock(mutex_);\n"
            "    json = RenderAuditLedgerJson(doc_);\n"
            "  }\n"
            "  std::FILE* f = std::fopen(path.c_str(), \"w\");\n"
            "  fwrite(json.data(), 1, json.size(), f);\n"
            "  fclose(f);\n"
            "}\n"))
        self.assertEqual(self.run_check("no-lock-across-file-io"), [])

    def test_file_io_under_lock_other_file_not_flagged(self):
        # The rule is scoped to the ledger write paths; fprintf elsewhere
        # under a lock is another rule's (or reviewer's) problem.
        self.repo.write("src/io/log.cc", (
            "void Log() {\n"
            "  MutexLock lock(mu_);\n"
            "  fprintf(stderr, \"x\");\n"
            "}\n"))
        self.assertEqual(self.run_check("no-lock-across-file-io"), [])

    def test_member_named_fflush_under_lock_clean(self):
        self.repo.write("src/obs/audit_ledger.cc", (
            "void AuditLedger::Tick() {\n"
            "  MutexLock lock(mutex_);\n"
            "  sink_.fflush(1);\n"
            "  sink_->fclose();\n"
            "}\n"))
        self.assertEqual(self.run_check("no-lock-across-file-io"), [])

    def test_file_io_mention_in_comment_ignored(self):
        self.repo.write("src/obs/audit_ledger.cc", (
            "void AuditLedger::Note() {\n"
            "  MutexLock lock(mutex_);\n"
            "  // fopen() here would stall every recording thread\n"
            "  counter_++;\n"
            "}\n"))
        self.assertEqual(self.run_check("no-lock-across-file-io"), [])


class RealRepoTest(unittest.TestCase):
    """The actual repository must satisfy every invariant."""

    def test_repo_is_clean(self):
        for name, check in sorted(atmx_lint.CHECKS.items()):
            violations = check(REPO)
            rendered = "\n".join(v.render(REPO) for v in violations)
            self.assertEqual(
                violations, [],
                f"check '{name}' found violations in the repo:\n{rendered}")

    def test_main_exit_zero(self):
        self.assertEqual(atmx_lint.main(["--repo", REPO]), 0)


class StripperTest(unittest.TestCase):
    def test_preserves_line_numbers(self):
        text = 'a /* x\ny */ b\n// c\n"s\\"tr"\n'
        stripped = atmx_lint.strip_comments_and_strings(text)
        self.assertEqual(stripped.count("\n"), text.count("\n"))
        self.assertNotIn("str", stripped)
        self.assertNotIn("x", stripped.splitlines()[0])


if __name__ == "__main__":
    unittest.main()
