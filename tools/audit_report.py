#!/usr/bin/env python3
"""Replay a prediction-vs-outcome audit ledger (--audit-out / ATMX_AUDIT_OUT).

Usage:
  audit_report.py LEDGER.json [--gate BASELINE.json] [--worst N]
                  [--inject-density-scale F] [--write-envelope OUT.json]

Python mirror of `atmx audit` (src/obs/audit_ledger.cc): loads the
schema-versioned ledger a bench wrote, computes per-decision-class
relative-error distributions (p50/p95/max/mean), lists the worst-N
mispredictions, and runs the counterfactual pass — re-running the cost
model's pair-representation rule and the SPA ChooseMode rule with the
*measured* inputs to count "regret" decisions that would flip with
perfect estimates. With --gate it checks the report against a committed
baseline envelope (bench/baselines/) and exits 1 on calibration drift.

The replay is deterministic and must match the C++ implementation
bit-for-bit on the printed statistics: the ledger serializes doubles with
%.17g (round-trip exact), the percentile is the same nearest-rank
definition, and the cost model below mirrors src/cost/cost_model.cc with
the panel-column threshold taken from the ledger's own
`spmm_max_panel_cols` stamp.
"""

import argparse
import json
import math
import sys

SCHEMA_VERSION = 1

# KernelType names (src/kernels/kernel_dispatch.cc) -> (a_dense, b_dense,
# c_dense). "mixed" marks a cost record whose task ran several variants.
KERNEL_REPR = {
    "ddd_gemm": (True, True, True),
    "dspd_gemm": (True, False, True),
    "spdd_gemm": (False, True, True),
    "spspd_gemm": (False, False, True),
    "ddsp_gemm": (True, True, False),
    "dsps_gemm": (True, False, False),
    "spds_gemm": (False, True, False),
    "spspsp_gemm": (False, False, False),
}

# SparseAccumulator::ChooseMode constants (src/kernels/sparse_accumulator.h).
MIN_HASH_WIDTH = 256
HASH_DENSITY_CUTOFF = 1.0 / 64.0


def symmetric_rel_error(predicted, actual):
    """|p - a| / max(p, a), clamped to [0, 1]; 0 when both sides are <= 0."""
    if predicted == actual:
        return 0.0
    denom = max(predicted, actual)
    if denom <= 0.0:
        return 0.0
    return min(1.0, abs(predicted - actual) / denom)


def percentile(values, q):
    """Nearest-rank percentile: sorted[max(0, ceil(q * n) - 1)]."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[rank]


def kernel_name(a_dense, b_dense, c_dense):
    for name, repr_ in KERNEL_REPR.items():
        if repr_ == (a_dense, b_dense, c_dense):
            return name
    raise AssertionError("unreachable")


def choose_mode(width, expected_row_nnz):
    """SparseAccumulator::ChooseMode: 'dense' or 'hash'."""
    if expected_row_nnz < 0.0 or width < MIN_HASH_WIDTH:
        return "dense"
    if expected_row_nnz < width * HASH_DENSITY_CUTOFF:
        return "hash"
    return "dense"


class CostModel:
    """Mirror of src/cost/cost_model.cc (compute/write/conversion costs)."""

    def __init__(self, params, panel_cols):
        self.p = params
        self.panel_cols = panel_cols

    def compute_cost(self, a_dense, b_dense, c_dense, m, k, n, rho_a, rho_b):
        p = self.p
        volume = float(m) * float(k) * float(n)
        if a_dense and b_dense:  # kDDD / kDDS
            return p["c_ddd"] * volume
        if not a_dense and b_dense:
            if c_dense and n <= self.panel_cols:  # kSDD panel shape
                return p["c_sdd_panel"] * rho_a * volume + p["row_overhead"] * m
            # kSDD (wide) and kSDS share the generic sparse-x-dense rate.
            return p["c_sdd"] * rho_a * volume + p["row_overhead"] * m
        if a_dense and not b_dense:  # kDSD / kDSS
            return p["c_dsd"] * rho_b * volume + 0.25 * p["c_ddd"] * m * k
        # kSSD / kSSS: expected intermediates + per-A-element row lookups.
        return (p["c_ssd"] * rho_a * rho_b * volume
                + p["row_overhead"] * (m + rho_a * m * k))

    def conversion_cost(self, to_dense, m, n, rho):
        area = float(m) * float(n)
        if to_dense:
            return self.p["convert_sparse_to_dense"] * (0.25 * area + rho * area)
        return self.p["convert_dense_to_sparse"] * (0.25 * area + rho * area)


def decide_pair(model, m, k, n, rho_a, rho_b, a_is_dense, b_is_dense,
                a_cached, b_cached, c_dense, allow_conversion):
    """Mirror of DecidePairRepresentations (src/ops/optimizer.cc): returns
    (a_dense, b_dense, projected_cost). Iteration order and the strict
    `<` comparison must match the C++ so ties resolve identically."""
    best_a, best_b = a_is_dense, b_is_dense
    best_cost = model.compute_cost(a_is_dense, b_is_dense, c_dense,
                                   m, k, n, rho_a, rho_b)
    if not allow_conversion:
        return best_a, best_b, best_cost
    for a_choice in (False, True):
        for b_choice in (False, True):
            if a_choice == a_is_dense and b_choice == b_is_dense:
                continue
            cost = model.compute_cost(a_choice, b_choice, c_dense,
                                      m, k, n, rho_a, rho_b)
            if a_choice != a_is_dense and not a_cached:
                cost += model.conversion_cost(a_choice, m, k, rho_a)
            if b_choice != b_is_dense and not b_cached:
                cost += model.conversion_cost(b_choice, k, n, rho_b)
            if cost < best_cost:
                best_cost = cost
                best_a, best_b = a_choice, b_choice
    return best_a, best_b, best_cost


def load_ledger(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("kind") != "atmx_audit_ledger":
        raise ValueError(f"{path}: not an atmx_audit_ledger document")
    if doc.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(f"{path}: unsupported schema_version "
                         f"{doc.get('schema_version')}")
    return doc


def push_away(predicted, actual, scale, cap):
    moved = predicted * scale if predicted >= actual else predicted / scale
    return min(cap, moved) if cap > 0.0 else moved


def inject_density_misestimate(doc, scale):
    """Mirror of InjectDensityMisestimate: push each prediction scale-x
    further away from its measurement (worsens regardless of bias)."""
    for r in doc.get("density", []):
        r["pred"] = push_away(r["pred"], r["actual"], scale, 1.0)
    for r in doc.get("repr", []):
        actual = r.get("rho_c_actual", -1.0)
        r["rho_c_pred"] = push_away(r["rho_c_pred"],
                                    actual if actual >= 0.0 else 0.0,
                                    scale, 1.0)
    for r in doc.get("spa_mode", []):
        if r.get("pred_row_nnz", -1.0) >= 0.0:
            r["pred_row_nnz"] = push_away(r["pred_row_nnz"],
                                          r["actual_row_nnz"], scale, 0.0)


def stats_of(errs):
    if not errs:
        return {"count": 0, "p50": 0.0, "p95": 0.0, "max": 0.0, "mean": 0.0}
    return {
        "count": len(errs),
        "p50": percentile(errs, 0.50),
        "p95": percentile(errs, 0.95),
        "max": max(errs),
        "mean": sum(errs) / len(errs),
    }


def build_report(doc, worst_n):
    report = {"worst": []}
    worst_all = []

    def push_worst(clazz, op, ti, tj, pred, actual, err):
        worst_all.append({"class": clazz, "op": op, "ti": ti, "tj": tj,
                          "pred": pred, "actual": actual, "err": err})

    errs = []
    for r in doc.get("density", []):
        err = symmetric_rel_error(r["pred"], r["actual"])
        errs.append(err)
        push_worst("density", r["op"], r["bi"], r["bj"], r["pred"],
                   r["actual"], err)
    report["density"] = stats_of(errs)

    cost_records = doc.get("cost", [])
    usable = [r for r in cost_records
              if r["pred_cost"] > 0.0 and r["seconds"] > 0.0]
    pred_sum = sum(r["pred_cost"] for r in usable)
    report["cost_scale"] = (sum(r["seconds"] for r in usable) / pred_sum
                            if pred_sum > 0.0 else 0.0)
    errs = []
    for r in usable:
        scaled = r["pred_cost"] * report["cost_scale"]
        err = symmetric_rel_error(scaled, r["seconds"])
        errs.append(err)
        push_worst("cost", r["op"], r["ti"], r["tj"], scaled, r["seconds"],
                   err)
    report["cost"] = stats_of(errs)

    errs = []
    report["waterlevel_infeasible"] = 0
    for r in doc.get("waterlevel", []):
        if not r.get("feasible", True):
            report["waterlevel_infeasible"] += 1
        err = symmetric_rel_error(float(r["projected_bytes"]),
                                  float(r["result_bytes"]))
        errs.append(err)
        push_worst("waterlevel", r["op"], 0, 0, float(r["projected_bytes"]),
                   float(r["result_bytes"]), err)
    report["waterlevel"] = stats_of(errs)

    errs = []
    report["spa_considered"] = 0
    report["spa_regret"] = 0
    for r in doc.get("spa_mode", []):
        if r.get("pred_row_nnz", -1.0) < 0.0:
            continue
        report["spa_considered"] += 1
        err = symmetric_rel_error(r["pred_row_nnz"], r["actual_row_nnz"])
        errs.append(err)
        push_worst("spa_mode", r["op"], r["ti"], r["tj"], r["pred_row_nnz"],
                   r["actual_row_nnz"], err)
        if choose_mode(r["width"], r["actual_row_nnz"]) != r["mode"]:
            report["spa_regret"] += 1
    report["spa_mode"] = stats_of(errs)

    model = CostModel(doc.get("cost_params", {}),
                      doc.get("spmm_max_panel_cols", 256))
    errs = []
    report["repr_considered"] = 0
    report["repr_regret"] = 0
    report["repr_regret_cost"] = 0.0
    for r in doc.get("repr", []):
        if r.get("rho_c_actual", -1.0) < 0.0:
            continue
        logged = KERNEL_REPR.get(r["kernel"])
        if logged is None:
            continue
        report["repr_considered"] += 1
        err = symmetric_rel_error(r["rho_c_pred"], r["rho_c_actual"])
        errs.append(err)
        push_worst("repr", r["op"], r["ti"], r["tj"], r["rho_c_pred"],
                   r["rho_c_actual"], err)
        # Counterfactual: replay the production rule with the measured
        # result density (c_dense iff rho_c >= rho_w, then the pair rule).
        c_dense_cf = r["rho_c_actual"] >= r["rho_w"]
        cf_a, cf_b, cf_cost = decide_pair(
            model, r["m"], r["k"], r["n"], r["rho_a"], r["rho_b"],
            r["a_stored_dense"], r["b_stored_dense"], r["a_cached"],
            r["b_cached"], c_dense_cf, r["allow_conversion"])
        if kernel_name(cf_a, cf_b, c_dense_cf) != r["kernel"]:
            report["repr_regret"] += 1
            la, lb, _ = logged
            logged_cost = model.compute_cost(la, lb, c_dense_cf, r["m"],
                                             r["k"], r["n"], r["rho_a"],
                                             r["rho_b"])
            if la != r["a_stored_dense"] and not r["a_cached"]:
                logged_cost += model.conversion_cost(la, r["m"], r["k"],
                                                     r["rho_a"])
            if lb != r["b_stored_dense"] and not r["b_cached"]:
                logged_cost += model.conversion_cost(lb, r["k"], r["n"],
                                                     r["rho_b"])
            report["repr_regret_cost"] += max(0.0, logged_cost - cf_cost)
    report["repr"] = stats_of(errs)

    chain_records = doc.get("chain", [])
    usable = [r for r in chain_records
              if r["planned_cost"] > 0.0 and r["seconds"] > 0.0]
    pred_sum = sum(r["planned_cost"] for r in usable)
    report["chain_scale"] = (sum(r["seconds"] for r in usable) / pred_sum
                             if pred_sum > 0.0 else 0.0)
    errs = []
    for r in usable:
        scaled = r["planned_cost"] * report["chain_scale"]
        err = symmetric_rel_error(scaled, r["seconds"])
        errs.append(err)
        push_worst("chain", r["op"], 0, 0, scaled, r["seconds"], err)
    report["chain"] = stats_of(errs)

    # Same deterministic ordering as the C++: error descending, then
    # class / op / coordinates ascending.
    worst_all.sort(key=lambda w: (-w["err"], w["class"], w["op"], w["ti"],
                                  w["tj"]))
    report["worst"] = worst_all[:worst_n]
    return report


CLASSES = ("density", "cost", "waterlevel", "spa_mode", "repr", "chain")


def render_report(report):
    lines = ["prediction audit: per-class relative error"]
    for name in CLASSES:
        s = report[name]
        lines.append("%-10s count=%d p50=%.4f p95=%.4f max=%.4f mean=%.4f"
                     % (name, s["count"], s["p50"], s["p95"], s["max"],
                        s["mean"]))
    lines.append("counterfactual: repr regret %d/%d (cost-unit gap %.1f), "
                 "spa_mode regret %d/%d"
                 % (report["repr_regret"], report["repr_considered"],
                    report["repr_regret_cost"], report["spa_regret"],
                    report["spa_considered"]))
    if report["waterlevel_infeasible"] > 0:
        lines.append("waterlevel: %d/%d records under an infeasible memory "
                     "SLA (threshold clamped to floor)"
                     % (report["waterlevel_infeasible"],
                        report["waterlevel"]["count"]))
    if report["cost_scale"] > 0.0:
        lines.append("fitted cost scale: %.3g s/unit" % report["cost_scale"])
    if report["worst"]:
        lines.append("worst mispredictions:")
        for w in report["worst"]:
            lines.append("  %-10s op=%d tile=(%d,%d) pred=%.6g actual=%.6g "
                         "err=%.4f" % (w["class"], w["op"], w["ti"], w["tj"],
                                       w["pred"], w["actual"], w["err"]))
    return "\n".join(lines) + "\n"


def evaluate_gate(report, baseline):
    """Mirror of EvaluateAuditGate: returns (ok, regressions, text)."""
    if (not isinstance(baseline, dict)
            or baseline.get("kind") != "atmx_audit_baseline"
            or baseline.get("schema_version") != SCHEMA_VERSION):
        return (False, 1,
                "audit-gate: baseline is not a valid atmx_audit_baseline "
                "document\n")
    ok = True
    regressions = 0
    lines = []

    def check_bound(clazz, bound, measured, envelope):
        nonlocal ok, regressions
        limit = envelope.get(bound)
        if not isinstance(limit, (int, float)) or isinstance(limit, bool):
            return
        passed = measured <= limit
        lines.append("audit-gate: %s %s %.4f <= %.4f %s"
                     % (clazz, bound, measured, limit,
                        "OK" if passed else "REGRESSION"))
        if not passed:
            ok = False
            regressions += 1

    envelopes = baseline.get("classes")
    if isinstance(envelopes, dict):
        for name in CLASSES:
            envelope = envelopes.get(name)
            if not isinstance(envelope, dict):
                continue
            if report[name]["count"] == 0:
                lines.append(f"audit-gate: {name} SKIP (no records)")
                continue
            for bound in ("p50", "p95", "max"):
                check_bound(name, bound, report[name][bound], envelope)

    def check_fraction(what, regret, considered, key):
        nonlocal ok, regressions
        limit = baseline.get(key)
        if not isinstance(limit, (int, float)) or isinstance(limit, bool):
            return
        if considered == 0:
            lines.append(f"audit-gate: {what} SKIP (no decisions)")
            return
        fraction = regret / considered
        passed = fraction <= limit
        lines.append("audit-gate: %s %.4f <= %.4f %s"
                     % (what, fraction, limit,
                        "OK" if passed else "REGRESSION"))
        if not passed:
            ok = False
            regressions += 1

    check_fraction("repr_regret_fraction", report["repr_regret"],
                   report["repr_considered"], "max_repr_regret_fraction")
    check_fraction("spa_regret_fraction", report["spa_regret"],
                   report["spa_considered"], "max_spa_regret_fraction")
    return ok, regressions, "\n".join(lines) + "\n"


def render_envelope(report, margin):
    """Mirror of RenderAuditEnvelopeJson (same floors and caps)."""

    def bound(measured, floor_abs):
        return max(measured * margin, floor_abs)

    classes = {}
    for name in CLASSES:
        s = report[name]
        if s["count"] == 0:
            continue
        classes[name] = {
            "p50": min(1.0, bound(s["p50"], 0.05)),
            "p95": min(1.0, bound(s["p95"], 0.10)),
            "max": bound(s["max"], 0.25),
        }
    repr_fraction = (report["repr_regret"] / report["repr_considered"]
                     if report["repr_considered"] else 0.0)
    spa_fraction = (report["spa_regret"] / report["spa_considered"]
                    if report["spa_considered"] else 0.0)
    return json.dumps({
        "schema_version": SCHEMA_VERSION,
        "kind": "atmx_audit_baseline",
        "classes": classes,
        "max_repr_regret_fraction": min(1.0, bound(repr_fraction, 0.05)),
        "max_spa_regret_fraction": min(1.0, bound(spa_fraction, 0.05)),
    }, indent=1) + "\n"


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Replay a prediction-vs-outcome audit ledger.")
    parser.add_argument("ledger", help="ledger JSON (--audit-out output)")
    parser.add_argument("--gate", metavar="BASELINE",
                        help="baseline envelope to gate against")
    parser.add_argument("--worst", type=int, default=10,
                        help="worst mispredictions to list (default 10)")
    parser.add_argument("--inject-density-scale", type=float, default=0.0,
                        help="push predictions this factor further from "
                             "the measurements (negative test)")
    parser.add_argument("--write-envelope", metavar="OUT",
                        help="write a margin-1.5 baseline envelope here")
    args = parser.parse_args(argv)

    try:
        doc = load_ledger(args.ledger)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1

    if args.inject_density_scale > 0.0 and args.inject_density_scale != 1.0:
        inject_density_misestimate(doc, args.inject_density_scale)
        print(f"audit: injected {args.inject_density_scale:g}x density "
              f"misestimate (negative test)")

    report = build_report(doc, args.worst)
    print(render_report(report), end="")

    if args.write_envelope:
        with open(args.write_envelope, "w", encoding="utf-8") as f:
            f.write(render_envelope(report, 1.5))
        print(f"audit: wrote envelope {args.write_envelope}")

    if args.gate:
        try:
            with open(args.gate, "r", encoding="utf-8") as f:
                baseline = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: audit: {e}", file=sys.stderr)
            return 1
        ok, regressions, text = evaluate_gate(report, baseline)
        print(text, end="")
        if not ok:
            print(f"error: audit: calibration drift — {regressions} "
                  f"bound(s) regressed vs {args.gate}", file=sys.stderr)
            return 1
        print(f"audit: gate ok ({args.gate})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
