// atmx — command-line utility around the library.
//
//   atmx info <file>                     matrix facts (any supported format)
//   atmx partition <in> <out.atm>        partition into an AT MATRIX
//   atmx multiply <a> <b> <out>          C = A * B through ATMULT
//   atmx explain <a> <b>                 plan C = A * B without executing
//   atmx render <in> <out.pgm>           tile layout / density map image
//   atmx convert <in> <out>              between .mtx and binary formats
//   atmx gen <workload-id> <scale> <out> generate a Table I workload
//   atmx trace <a> <b> <out.trace.json>  multiply with tracing + decision
//                                        audit, write a Chrome trace
//   atmx decisions <a> <b> [<c> ...]     multiply a chain through the
//                                        planner with the decision audit
//                                        on; print the chosen plan, the
//                                        fusion outcome, and every pair
//                                        representation decision
//   atmx metrics <a> <b> [--json]        multiply, dump the metrics
//                                        registry (table or JSON)
//   atmx profile <a> <b>                 multiply with hardware counters,
//                                        print a per-kernel-variant table
//                                        (cycles, IPC, LLC miss rate, ...)
//   atmx watch <url>                     poll a live stats endpoint
//                                        (bench --stats-port=...) and
//                                        render a rate table per tick
//   atmx audit <ledger.json>             replay a prediction-vs-outcome
//                                        audit ledger (--audit-out):
//                                        per-class error distributions,
//                                        worst mispredictions, regret
//                                        counts, optional drift gate
//                                        (--gate=<baseline>)
//
// Files ending in .mtx are MatrixMarket; .atm/.bin are the library's
// binary format (AT MATRIX or staged COO). Config knobs come from the
// same ATMX_* environment variables as the benchmarks.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <unistd.h>

#include "common/config.h"
#include "common/table_printer.h"
#include "gen/workloads.h"
#include "kernels/kernel_dispatch.h"
#include "obs/obs.h"
#if defined(ATMX_OBS_ENABLED)
#include "obs/audit_ledger.h"
#include "obs/exposition.h"
#include "obs/stats_server.h"
#endif
#include "ops/atmult.h"
#include "ops/chain.h"
#include "ops/explain.h"
#include "storage/convert.h"
#include "storage/matrix_market.h"
#include "storage/serialize.h"
#include "tile/partitioner.h"
#include "viz/render.h"

namespace {

using namespace atmx;

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

AtmConfig ConfigFromEnv() {
  AtmConfig config;
  if (const char* llc = std::getenv("ATMX_LLC")) {
    config.llc_bytes = std::atoll(llc);
  }
  if (const char* teams = std::getenv("ATMX_TEAMS")) {
    config.num_sockets = std::atoi(teams);
  }
  if (const char* threads = std::getenv("ATMX_THREADS")) {
    config.cores_per_socket = std::atoi(threads);
  }
  return config;
}

// Loads any supported file as an AT MATRIX (partitioning when the source
// is a raw format).
Result<ATMatrix> LoadAsAtm(const std::string& path, const AtmConfig& config) {
  if (EndsWith(path, ".mtx")) {
    Result<CooMatrix> coo = ReadMatrixMarket(path);
    if (!coo.ok()) return coo.status();
    return PartitionToAtm(std::move(coo).value(), config);
  }
  Result<std::string> type = PeekMatrixType(path);
  if (!type.ok()) return type.status();
  if (type.value() == "atm") return LoadATMatrix(path);
  if (type.value() == "coo") {
    Result<CooMatrix> coo = LoadCooMatrix(path);
    if (!coo.ok()) return coo.status();
    return PartitionToAtm(std::move(coo).value(), config);
  }
  if (type.value() == "csr") {
    Result<CsrMatrix> csr = LoadCsrMatrix(path);
    if (!csr.ok()) return csr.status();
    return AtmFromCsr(csr.value(), config);
  }
  Result<DenseMatrix> dense = LoadDenseMatrix(path);
  if (!dense.ok()) return dense.status();
  return AtmFromDense(dense.value(), config);
}

int CmdInfo(const std::string& path) {
  AtmConfig config = ConfigFromEnv();
  Result<ATMatrix> atm = LoadAsAtm(path, config);
  if (!atm.ok()) {
    std::fprintf(stderr, "error: %s\n", atm.status().ToString().c_str());
    return 1;
  }
  const ATMatrix& m = atm.value();
  std::printf("file:        %s\n", path.c_str());
  std::printf("dimensions:  %lld x %lld\n", (long long)m.rows(),
              (long long)m.cols());
  std::printf("non-zeros:   %lld (density %.6f%%)\n", (long long)m.nnz(),
              m.Density() * 100);
  std::printf("tiles:       %lld (%lld dense, %lld sparse)\n",
              (long long)m.num_tiles(), (long long)m.NumDenseTiles(),
              (long long)m.NumSparseTiles());
  std::printf("b_atomic:    %lld\n", (long long)m.b_atomic());
  std::printf("memory:      %s\n",
              TablePrinter::FmtBytes(m.MemoryBytes()).c_str());
  std::printf("row bands:   %lld, col bands: %lld\n",
              (long long)m.num_row_bands(), (long long)m.num_col_bands());
  std::printf("\n%s", RenderTileLayoutAscii(m, 40).c_str());
  return 0;
}

int CmdPartition(const std::string& in, const std::string& out) {
  AtmConfig config = ConfigFromEnv();
  Result<ATMatrix> atm = LoadAsAtm(in, config);
  if (!atm.ok()) {
    std::fprintf(stderr, "error: %s\n", atm.status().ToString().c_str());
    return 1;
  }
  Status saved = SaveMatrix(atm.value(), out);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %lld tiles, %s\n", out.c_str(),
              (long long)atm.value().num_tiles(),
              TablePrinter::FmtBytes(atm.value().MemoryBytes()).c_str());
  return 0;
}

int CmdMultiply(const std::string& a_path, const std::string& b_path,
                const std::string& out) {
  AtmConfig config = ConfigFromEnv();
  Result<ATMatrix> a = LoadAsAtm(a_path, config);
  Result<ATMatrix> b = LoadAsAtm(b_path, config);
  if (!a.ok() || !b.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 (!a.ok() ? a.status() : b.status()).ToString().c_str());
    return 1;
  }
  if (a.value().cols() != b.value().rows()) {
    std::fprintf(stderr, "error: shape mismatch %lld != %lld\n",
                 (long long)a.value().cols(), (long long)b.value().rows());
    return 1;
  }
  AtMult op(config);
  AtMultStats stats;
  ATMatrix c = op.Multiply(a.value(), b.value(), &stats);
  std::printf("%s\n", stats.ToString().c_str());
  Status saved = EndsWith(out, ".mtx") ? WriteMatrixMarket(c.ToCoo(), out)
                                       : SaveMatrix(c, out);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %lld x %lld, %lld non-zeros\n", out.c_str(),
              (long long)c.rows(), (long long)c.cols(), (long long)c.nnz());
  return 0;
}

int CmdExplain(const std::string& a_path, const std::string& b_path) {
  AtmConfig config = ConfigFromEnv();
  Result<ATMatrix> a = LoadAsAtm(a_path, config);
  Result<ATMatrix> b = LoadAsAtm(b_path, config);
  if (!a.ok() || !b.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 (!a.ok() ? a.status() : b.status()).ToString().c_str());
    return 1;
  }
  MultiplyPlan plan = ExplainMultiply(a.value(), b.value(), config);
  std::printf("%s", plan.ToString().c_str());
  return 0;
}

int CmdRender(const std::string& in, const std::string& out) {
  AtmConfig config = ConfigFromEnv();
  Result<ATMatrix> atm = LoadAsAtm(in, config);
  if (!atm.ok()) {
    std::fprintf(stderr, "error: %s\n", atm.status().ToString().c_str());
    return 1;
  }
  Status status = WriteTileLayoutPgm(atm.value(), out);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int CmdConvert(const std::string& in, const std::string& out) {
  AtmConfig config = ConfigFromEnv();
  // Normalize through COO.
  CooMatrix coo;
  if (EndsWith(in, ".mtx")) {
    Result<CooMatrix> read = ReadMatrixMarket(in);
    if (!read.ok()) {
      std::fprintf(stderr, "error: %s\n", read.status().ToString().c_str());
      return 1;
    }
    coo = std::move(read).value();
  } else {
    Result<ATMatrix> atm = LoadAsAtm(in, config);
    if (!atm.ok()) {
      std::fprintf(stderr, "error: %s\n", atm.status().ToString().c_str());
      return 1;
    }
    coo = atm.value().ToCoo();
  }
  Status saved = EndsWith(out, ".mtx") ? WriteMatrixMarket(coo, out)
                                       : SaveMatrix(coo, out);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%lld entries)\n", out.c_str(),
              (long long)coo.nnz());
  return 0;
}

int CmdGen(const std::string& id, double scale, const std::string& out) {
  CooMatrix coo = MakeWorkloadMatrix(id, scale);
  Status saved = EndsWith(out, ".mtx") ? WriteMatrixMarket(coo, out)
                                       : SaveMatrix(coo, out);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %lld x %lld, %lld non-zeros\n", out.c_str(),
              (long long)coo.rows(), (long long)coo.cols(),
              (long long)coo.nnz());
  return 0;
}

#if defined(ATMX_OBS_ENABLED)
// Loads both operands, checking shapes; shared by trace/metrics.
std::optional<std::pair<ATMatrix, ATMatrix>> LoadPair(
    const std::string& a_path, const std::string& b_path,
    const AtmConfig& config) {
  Result<ATMatrix> a = LoadAsAtm(a_path, config);
  Result<ATMatrix> b = LoadAsAtm(b_path, config);
  if (!a.ok() || !b.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 (!a.ok() ? a.status() : b.status()).ToString().c_str());
    return std::nullopt;
  }
  if (a.value().cols() != b.value().rows()) {
    std::fprintf(stderr, "error: shape mismatch %lld != %lld\n",
                 (long long)a.value().cols(), (long long)b.value().rows());
    return std::nullopt;
  }
  return std::make_pair(std::move(a).value(), std::move(b).value());
}
#endif  // ATMX_OBS_ENABLED

int CmdTrace(const std::string& a_path, const std::string& b_path,
             const std::string& out) {
#if defined(ATMX_OBS_ENABLED)
  AtmConfig config = ConfigFromEnv();
  auto operands = LoadPair(a_path, b_path, config);
  if (!operands) return 1;
  obs::TraceRecorder::Global().Enable();
  obs::DecisionLog::Global().SetEnabled(true);
  AtMult op(config);
  AtMultStats stats;
  ATMatrix c = op.Multiply(operands->first, operands->second, &stats);
  obs::TraceRecorder::Global().Disable();
  obs::DecisionLog::Global().SetEnabled(false);
  std::printf("%s\n", stats.ToString().c_str());
  std::printf("%s",
              FormatDecisionLog(obs::DecisionLog::Global().Snapshot())
                  .c_str());
  Status saved = obs::TraceRecorder::Global().WriteJson(out);
  if (!saved.ok()) {
    std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %lld events (%llu dropped)\n", out.c_str(),
              (long long)obs::TraceRecorder::Global().EventCount(),
              (unsigned long long)obs::TraceRecorder::Global()
                  .DroppedEvents());
  (void)c;
  return 0;
#else
  (void)a_path;
  (void)b_path;
  (void)out;
  std::fprintf(stderr,
               "error: this binary was built with -DATMX_OBS=OFF; "
               "rebuild with -DATMX_OBS=ON for tracing\n");
  return 1;
#endif
}

// Multiplies a chain of matrices through the chain planner with the
// decision audit enabled, then renders what the optimizer chose: the
// chain-level records (parenthesization, planned vs left-to-right cost,
// fusion outcome) and the per-pair representation decisions.
int CmdDecisions(const std::vector<std::string>& paths, bool as_json) {
#if defined(ATMX_OBS_ENABLED)
  AtmConfig config = ConfigFromEnv();
  std::vector<ATMatrix> matrices;
  matrices.reserve(paths.size());
  for (const std::string& path : paths) {
    Result<ATMatrix> m = LoadAsAtm(path, config);
    if (!m.ok()) {
      std::fprintf(stderr, "error: %s\n", m.status().ToString().c_str());
      return 1;
    }
    if (!matrices.empty() &&
        matrices.back().cols() != m.value().rows()) {
      std::fprintf(stderr, "error: shape mismatch %lld != %lld at %s\n",
                   (long long)matrices.back().cols(),
                   (long long)m.value().rows(), path.c_str());
      return 1;
    }
    matrices.push_back(std::move(m).value());
  }

  std::vector<const ATMatrix*> chain;
  std::vector<const DensityMap*> maps;
  for (const ATMatrix& m : matrices) {
    chain.push_back(&m);
    maps.push_back(&m.density_map());
  }

  AtMult op(config);
  ChainCostOptions cost_options;
  cost_options.fused = config.fused_chains;
  ChainPlan plan =
      PlanChain(maps, op.cost_model(), config.rho_write, cost_options);
  obs::DecisionLog::Global().SetEnabled(true);
  ChainExecStats stats;
  ATMatrix c = ExecuteChain(chain, plan, op, &stats);
  obs::DecisionLog::Global().SetEnabled(false);
  if (as_json) {
    std::printf("{\"chains\":%s,\n\"pairs\":%s}\n",
                obs::DecisionLog::Global().ChainsToJson().c_str(),
                obs::DecisionLog::Global().ToJson().c_str());
  } else {
    std::printf("%s\n", stats.total.ToString().c_str());
    std::printf(
        "%s",
        FormatChainDecisions(obs::DecisionLog::Global().ChainSnapshot())
            .c_str());
    std::printf("%s",
                FormatDecisionLog(obs::DecisionLog::Global().Snapshot())
                    .c_str());
  }
  (void)c;
  return 0;
#else
  (void)paths;
  (void)as_json;
  std::fprintf(stderr,
               "error: this binary was built with -DATMX_OBS=OFF; "
               "rebuild with -DATMX_OBS=ON for the decision audit\n");
  return 1;
#endif
}

int CmdMetrics(const std::string& a_path, const std::string& b_path,
               bool as_json) {
#if defined(ATMX_OBS_ENABLED)
  AtmConfig config = ConfigFromEnv();
  auto operands = LoadPair(a_path, b_path, config);
  if (!operands) return 1;
  AtMult op(config);
  AtMultStats stats;
  ATMatrix c = op.Multiply(operands->first, operands->second, &stats);
  if (as_json) {
    std::printf("%s\n", obs::MetricsRegistry::Global().ToJson().c_str());
  } else {
    std::printf("%s\n%s", stats.ToString().c_str(),
                obs::MetricsRegistry::Global().ToTable().c_str());
  }
  (void)c;
  return 0;
#else
  (void)a_path;
  (void)b_path;
  (void)as_json;
  std::fprintf(stderr,
               "error: this binary was built with -DATMX_OBS=OFF; "
               "rebuild with -DATMX_OBS=ON for metrics\n");
  return 1;
#endif
}

int CmdProfile(const std::string& a_path, const std::string& b_path) {
#if defined(ATMX_OBS_ENABLED)
  AtmConfig config = ConfigFromEnv();
  auto operands = LoadPair(a_path, b_path, config);
  if (!operands) return 1;
  AtMult op(config);
  AtMultStats stats;
  ATMatrix c = op.Multiply(operands->first, operands->second, &stats);
  (void)c;
  std::printf("%s\n\n", stats.ToString().c_str());

  // Index the registry snapshot by name.
  std::map<std::string, const obs::MetricSample*> by_name;
  const std::vector<obs::MetricSample> snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  for (const obs::MetricSample& sample : snapshot) {
    by_name[sample.name] = &sample;
  }
  const auto counter = [&](const std::string& name) -> std::uint64_t {
    auto it = by_name.find(name);
    return it != by_name.end() ? it->second->counter_value : 0;
  };
  const auto gauge = [&](const std::string& name) -> double {
    auto it = by_name.find(name);
    return it != by_name.end() ? it->second->gauge_value : 0.0;
  };

  if (gauge("perf.available") == 0.0) {
    std::printf(
        "note: hardware counters unavailable (perf_event_open failed or "
        "ATMX_PERF=0) — timing-only profile.\n\n");
  } else if (gauge("perf.hw_available") == 0.0) {
    std::printf(
        "note: PMU hardware events unavailable on this machine — software "
        "counters (task clock) only.\n\n");
  }

  // Kernel variants = the eight GEMM kernels plus the interleaved-loop
  // pseudo-variant and the SpMV entry points.
  std::vector<std::string> variants;
  for (int k = 0; k < kNumKernelTypes; ++k) {
    variants.push_back(KernelPerfMetricPrefix(static_cast<KernelType>(k)));
  }
  variants.push_back("kernel.mixed_sparse_loop");
  variants.push_back("kernel.spmv_csr");
  variants.push_back("kernel.spmv_atm");
  variants.push_back("kernel.spmv_atm_parallel");

  TablePrinter table({"Variant", "invocations", "cycles", "instr", "ipc",
                      "llc_loads", "llc_miss%", "task_clock[ms]"});
  for (const std::string& prefix : variants) {
    const std::string variant = prefix.substr(std::strlen("kernel."));
    const std::uint64_t invocations =
        counter("atmult.kernel." + variant + ".invocations");
    const std::uint64_t cycles = counter(prefix + ".cycles");
    const std::uint64_t instructions = counter(prefix + ".instructions");
    const std::uint64_t llc_loads = counter(prefix + ".llc_loads");
    const std::uint64_t task_clock = counter(prefix + ".task_clock_ns");
    if (invocations == 0 && cycles == 0 && task_clock == 0) continue;
    table.AddRow(
        {variant, std::to_string(invocations), std::to_string(cycles),
         std::to_string(instructions),
         cycles > 0 ? TablePrinter::Fmt(gauge(prefix + ".ipc"), 2)
                    : std::string("-"),
         std::to_string(llc_loads),
         llc_loads > 0
             ? TablePrinter::Fmt(gauge(prefix + ".llc_miss_rate") * 100.0, 2)
             : std::string("-"),
         TablePrinter::Fmt(static_cast<double>(task_clock) / 1e6, 3)});
  }
  table.Print();

  std::printf("\nmemory: tracked high-water %s (current %s), "
              "rss high-water %s\n",
              TablePrinter::FmtBytes(
                  static_cast<std::size_t>(gauge("mem.high_water_bytes")))
                  .c_str(),
              TablePrinter::FmtBytes(
                  static_cast<std::size_t>(gauge("mem.current_bytes")))
                  .c_str(),
              TablePrinter::FmtBytes(static_cast<std::size_t>(
                                         gauge("mem.rss_high_water_bytes")))
                  .c_str());
  std::printf("water-level: predicted %s, result %s\n",
              TablePrinter::FmtBytes(static_cast<std::size_t>(
                                         gauge("atmult.waterlevel."
                                               "predicted_bytes")))
                  .c_str(),
              TablePrinter::FmtBytes(
                  static_cast<std::size_t>(gauge("atmult.result_bytes")))
                  .c_str());
  return 0;
#else
  (void)a_path;
  (void)b_path;
  std::fprintf(stderr,
               "error: this binary was built with -DATMX_OBS=OFF; "
               "rebuild with -DATMX_OBS=ON for profiling\n");
  return 1;
#endif
}

#if defined(ATMX_OBS_ENABLED)
// One `atmx watch` tick: everything needed to turn two consecutive
// /metrics.json scrapes into a rate table.
struct WatchSample {
  std::chrono::steady_clock::time_point when;
  std::map<std::string, double> values;
};

WatchSample MakeWatchSample(const std::string& body) {
  WatchSample sample;
  sample.when = std::chrono::steady_clock::now();
  for (auto& [name, value] : obs::ExtractTopLevelNumbers(body)) {
    sample.values.emplace(std::move(name), value);
  }
  return sample;
}

std::string FmtWatchValue(double value) {
  const double rounded = std::nearbyint(value);
  if (std::fabs(value - rounded) < 1e-9 && std::fabs(value) < 1e15) {
    return std::to_string(static_cast<long long>(rounded));
  }
  return TablePrinter::Fmt(value, 3);
}
#endif  // ATMX_OBS_ENABLED

int CmdWatch(const std::string& url, int interval_ms, int count) {
#if defined(ATMX_OBS_ENABLED)
  Result<obs::HttpUrl> parsed = obs::ParseHttpUrl(url);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  obs::HttpUrl target = parsed.value();
  // Watch consumes the JSON document; accept a bare host:port or a
  // /metrics URL and land on /metrics.json either way.
  if (target.path == "/" || target.path == "/metrics") {
    target.path = "/metrics.json";
  }

  const bool is_tty = isatty(STDOUT_FILENO) != 0;
  std::optional<WatchSample> previous;
  int successful_scrapes = 0;
  for (int tick = 0; count <= 0 || tick < count; ++tick) {
    Result<std::string> body =
        obs::HttpGet(target.host, target.port, target.path);
    if (!body.ok()) {
      // Both failure shapes are errors: a watch that cannot scrape has
      // nothing to report, and CI wrappers key off the exit status.
      if (successful_scrapes > 0) {
        std::fprintf(stderr,
                     "error: watch: endpoint disconnected after %d scrapes "
                     "(%s)\n",
                     successful_scrapes, body.status().ToString().c_str());
      } else {
        std::fprintf(stderr, "error: watch: endpoint unreachable (%s)\n",
                     body.status().ToString().c_str());
      }
      return 1;
    }
    ++successful_scrapes;
    WatchSample sample = MakeWatchSample(body.value());

    if (previous) {
      const double dt =
          std::chrono::duration<double>(sample.when - previous->when)
              .count();
      // Rows: every metric that moved since the last scrape, with a
      // client-side delta/s; the server's own windowed `rate.*` gauges
      // ride along even when momentarily flat so the table keeps shape.
      struct Row {
        const std::string* name;
        double value;
        double rate;
      };
      std::vector<Row> rows;
      for (const auto& [name, value] : sample.values) {
        const auto old = previous->values.find(name);
        const double delta =
            old != previous->values.end() ? value - old->second : value;
        const bool is_server_rate = name.rfind("rate.", 0) == 0;
        if (delta == 0.0 && !is_server_rate) continue;
        rows.push_back(
            {&name, value, is_server_rate || dt <= 0.0 ? 0.0 : delta / dt});
      }
      std::stable_sort(rows.begin(), rows.end(),
                       [](const Row& a, const Row& b) {
                         return std::fabs(a.rate) > std::fabs(b.rate);
                       });
      constexpr std::size_t kMaxRows = 30;
      const std::size_t shown = std::min(rows.size(), kMaxRows);

      if (is_tty && tick > 1) std::printf("\x1b[H\x1b[2J");
      std::printf("watch %s:%d%s  tick %d  dt %.2fs  (%zu of %zu moving)\n",
                  target.host.c_str(), target.port, target.path.c_str(),
                  tick, dt, shown, rows.size());
      TablePrinter table({"metric", "value", "delta/s"});
      for (std::size_t i = 0; i < shown; ++i) {
        // Server-derived rate.* gauges already are per-second rates;
        // the delta/s column would just be their second derivative.
        table.AddRow({*rows[i].name, FmtWatchValue(rows[i].value),
                      rows[i].name->rfind("rate.", 0) == 0
                          ? std::string("-")
                          : TablePrinter::Fmt(rows[i].rate, 1)});
      }
      table.Print();
      if (rows.empty()) std::printf("(idle: no metric moved)\n");
      std::printf("\n");
      std::fflush(stdout);
    } else {
      const std::string ticks_note =
          count > 0 ? " for " + std::to_string(count) + " ticks"
                    : std::string();
      std::printf("watch: %zu metrics at %s:%d%s, polling every %d ms%s\n",
                  sample.values.size(), target.host.c_str(), target.port,
                  target.path.c_str(), interval_ms, ticks_note.c_str());
      std::fflush(stdout);
    }
    previous = std::move(sample);
    if (count > 0 && tick + 1 >= count) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
#else
  (void)url;
  (void)interval_ms;
  (void)count;
  std::fprintf(stderr,
               "error: this binary was built with -DATMX_OBS=OFF; "
               "rebuild with -DATMX_OBS=ON for watch\n");
  return 1;
#endif
}

// Replays a prediction-vs-outcome audit ledger (--audit-out /
// ATMX_AUDIT_OUT): per-class error distributions, worst mispredictions,
// the counterfactual regret pass, and optionally a calibration-drift
// gate against a committed baseline envelope. Deterministic: the same
// ledger always produces the same report (tools/audit_report.py is the
// Python mirror of this replay).
int CmdAudit(const std::string& ledger_path, const std::string& gate_path,
             std::size_t worst_n, double inject_density_scale,
             const std::string& envelope_out) {
#if defined(ATMX_OBS_ENABLED)
  Result<obs::AuditLedgerDoc> loaded = obs::LoadAuditLedger(ledger_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  obs::AuditLedgerDoc ledger = loaded.value();
  if (inject_density_scale > 0.0 && inject_density_scale != 1.0) {
    obs::InjectDensityMisestimate(&ledger, inject_density_scale);
    std::printf("audit: injected %gx density misestimate (negative test)\n",
                inject_density_scale);
  }
  const obs::AuditReport report = obs::BuildAuditReport(ledger, worst_n);
  std::printf("%s", obs::RenderAuditReportText(report).c_str());

  if (!envelope_out.empty()) {
    const std::string envelope = obs::RenderAuditEnvelopeJson(report, 1.5);
    std::FILE* f = std::fopen(envelope_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: audit: cannot write %s\n",
                   envelope_out.c_str());
      return 1;
    }
    const bool ok =
        std::fwrite(envelope.data(), 1, envelope.size(), f) ==
        envelope.size();
    std::fclose(f);
    if (!ok) {
      std::fprintf(stderr, "error: audit: short write to %s\n",
                   envelope_out.c_str());
      return 1;
    }
    std::printf("audit: wrote envelope %s\n", envelope_out.c_str());
  }

  if (!gate_path.empty()) {
    std::FILE* f = std::fopen(gate_path.c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "error: audit: cannot read %s\n",
                   gate_path.c_str());
      return 1;
    }
    std::string text;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      text.append(buf, got);
    }
    std::fclose(f);
    Result<obs::JsonValue> baseline = obs::ParseJson(text);
    if (!baseline.ok()) {
      std::fprintf(stderr, "error: audit: %s: %s\n", gate_path.c_str(),
                   baseline.status().ToString().c_str());
      return 1;
    }
    const obs::AuditGateResult gate =
        obs::EvaluateAuditGate(report, baseline.value());
    std::printf("%s", gate.text.c_str());
    if (!gate.ok) {
      std::fprintf(stderr,
                   "error: audit: calibration drift — %d bound(s) "
                   "regressed vs %s\n",
                   gate.regressions, gate_path.c_str());
      return 1;
    }
    std::printf("audit: gate ok (%s)\n", gate_path.c_str());
  }
  return 0;
#else
  (void)ledger_path;
  (void)gate_path;
  (void)worst_n;
  (void)inject_density_scale;
  (void)envelope_out;
  std::fprintf(stderr,
               "error: this binary was built with -DATMX_OBS=OFF; "
               "rebuild with -DATMX_OBS=ON for audit\n");
  return 1;
#endif
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  atmx info <file>\n"
               "  atmx partition <in> <out>\n"
               "  atmx multiply <a> <b> <out>\n"
               "  atmx explain <a> <b>\n"
               "  atmx render <in> <out.pgm>\n"
               "  atmx convert <in> <out>\n"
               "  atmx gen <workload-id> <scale> <out>\n"
               "  atmx trace <a> <b> <out.trace.json>\n"
               "  atmx decisions <a> <b> [<c> ...] [--json]\n"
               "  atmx metrics <a> <b> [--json]\n"
               "  atmx profile <a> <b>\n"
               "  atmx watch <url> [--interval=ms] [--count=n]\n"
               "  atmx audit <ledger.json> [--gate=<baseline.json>]\n"
               "             [--worst=n] [--inject-density-scale=f]\n"
               "             [--write-envelope=<out.json>]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "info" && argc == 3) return CmdInfo(argv[2]);
  if (cmd == "partition" && argc == 4) return CmdPartition(argv[2], argv[3]);
  if (cmd == "multiply" && argc == 5) {
    return CmdMultiply(argv[2], argv[3], argv[4]);
  }
  if (cmd == "explain" && argc == 4) return CmdExplain(argv[2], argv[3]);
  if (cmd == "render" && argc == 4) return CmdRender(argv[2], argv[3]);
  if (cmd == "convert" && argc == 4) return CmdConvert(argv[2], argv[3]);
  if (cmd == "gen" && argc == 5) {
    return CmdGen(argv[2], std::atof(argv[3]), argv[4]);
  }
  if (cmd == "trace" && argc == 5) {
    return CmdTrace(argv[2], argv[3], argv[4]);
  }
  if (cmd == "decisions" && argc >= 4) {
    bool as_json = false;
    std::vector<std::string> paths;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        as_json = true;
      } else {
        paths.emplace_back(argv[i]);
      }
    }
    if (paths.size() < 2) return Usage();
    return CmdDecisions(paths, as_json);
  }
  if (cmd == "metrics" && (argc == 4 || argc == 5)) {
    const bool as_json = argc == 5 && std::strcmp(argv[4], "--json") == 0;
    if (argc == 5 && !as_json) return Usage();
    return CmdMetrics(argv[2], argv[3], as_json);
  }
  if (cmd == "profile" && argc == 4) return CmdProfile(argv[2], argv[3]);
  if (cmd == "watch" && argc >= 3) {
    int interval_ms = 1000;
    int count = 0;  // 0 = poll until the endpoint disappears
    for (int i = 3; i < argc; ++i) {
      static constexpr char kInterval[] = "--interval=";
      static constexpr char kCount[] = "--count=";
      if (std::strncmp(argv[i], kInterval, sizeof(kInterval) - 1) == 0) {
        interval_ms = std::atoi(argv[i] + sizeof(kInterval) - 1);
      } else if (std::strncmp(argv[i], kCount, sizeof(kCount) - 1) == 0) {
        count = std::atoi(argv[i] + sizeof(kCount) - 1);
      } else {
        return Usage();
      }
    }
    if (interval_ms < 1) interval_ms = 1;
    return CmdWatch(argv[2], interval_ms, count);
  }
  if (cmd == "audit" && argc >= 3) {
    std::string gate_path;
    std::string envelope_out;
    std::size_t worst_n = 10;
    double inject_density_scale = 0.0;
    for (int i = 3; i < argc; ++i) {
      static constexpr char kGate[] = "--gate=";
      static constexpr char kWorst[] = "--worst=";
      static constexpr char kInject[] = "--inject-density-scale=";
      static constexpr char kEnvelope[] = "--write-envelope=";
      if (std::strncmp(argv[i], kGate, sizeof(kGate) - 1) == 0) {
        gate_path = argv[i] + sizeof(kGate) - 1;
      } else if (std::strncmp(argv[i], kWorst, sizeof(kWorst) - 1) == 0) {
        worst_n = static_cast<std::size_t>(
            std::atoll(argv[i] + sizeof(kWorst) - 1));
      } else if (std::strncmp(argv[i], kInject, sizeof(kInject) - 1) == 0) {
        inject_density_scale = std::atof(argv[i] + sizeof(kInject) - 1);
      } else if (std::strncmp(argv[i], kEnvelope, sizeof(kEnvelope) - 1) ==
                 0) {
        envelope_out = argv[i] + sizeof(kEnvelope) - 1;
      } else {
        return Usage();
      }
    }
    return CmdAudit(argv[2], gate_path, worst_n, inject_density_scale,
                    envelope_out);
  }
  return Usage();
}
