#!/usr/bin/env python3
"""Self-test for tools/audit_report.py, the Python mirror of the C++ audit
replayer (src/obs/audit_ledger.cc). The contracts locked down here are the
ones the CI gate depends on: nearest-rank percentiles, the bounded
symmetric error (exact 0 on perfect predictions, saturating at 1 for a
zero estimate against a nonzero measurement), push-away misestimate
injection that worsens the error regardless of the estimator's bias
direction, zero counterfactual regret when predictions are fed back as
measurements, and a drift gate that passes its own envelope and fails it
after injection. tests/test_audit_ledger.cc covers the same ground for
the C++ side; keeping both green keeps the two replayers interchangeable.
"""

import json
import os
import tempfile
import unittest

import audit_report as ar

PARAMS = {
    "c_ddd": 1.0, "c_sdd": 5.0, "c_sdd_panel": 3.0, "c_dsd": 6.0,
    "c_ssd": 16.0, "row_overhead": 8.0, "dense_write": 0.25,
    "sparse_write": 8.0, "sparse_sort": 2.0,
    "convert_sparse_to_dense": 1.5, "convert_dense_to_sparse": 3.0,
}


class ErrorMathTest(unittest.TestCase):
    def test_symmetric_error_exact_zero_on_match(self):
        self.assertEqual(ar.symmetric_rel_error(1.0, 1.0), 0.0)
        self.assertEqual(ar.symmetric_rel_error(0.73, 0.73), 0.0)
        self.assertEqual(ar.symmetric_rel_error(0.0, 0.0), 0.0)

    def test_symmetric_error_saturates_for_zero_estimate(self):
        self.assertEqual(ar.symmetric_rel_error(0.0, 1e-9), 1.0)
        self.assertEqual(ar.symmetric_rel_error(1e-9, 0.0), 1.0)
        self.assertAlmostEqual(ar.symmetric_rel_error(0.5, 1.0), 0.5)
        self.assertAlmostEqual(ar.symmetric_rel_error(1.0, 0.5), 0.5)

    def test_percentile_nearest_rank(self):
        v = [0.4, 0.1, 0.3, 0.2]
        self.assertEqual(ar.percentile(v, 0.5), 0.2)
        self.assertEqual(ar.percentile(v, 0.95), 0.4)
        self.assertEqual(ar.percentile(v, 1.0), 0.4)
        self.assertEqual(ar.percentile([], 0.5), 0.0)
        self.assertEqual(ar.percentile([7.0], 0.5), 7.0)


class InjectionTest(unittest.TestCase):
    def test_push_away_under_prediction_divides(self):
        self.assertEqual(ar.push_away(0.4, 0.5, 2.0, 1.0), 0.2)

    def test_push_away_over_prediction_multiplies_and_caps(self):
        self.assertEqual(ar.push_away(0.5, 0.25, 2.0, 1.0), 1.0)
        self.assertEqual(ar.push_away(3.0, 1.0, 2.0, 0.0), 6.0)  # uncapped

    def test_injection_worsens_both_bias_directions(self):
        doc = {"density": [
            {"op": 0, "bi": 0, "bj": 0, "pred": 0.4, "actual": 0.5},
            {"op": 0, "bi": 0, "bj": 1, "pred": 0.5, "actual": 0.25},
        ]}
        before = [ar.symmetric_rel_error(r["pred"], r["actual"])
                  for r in doc["density"]]
        ar.inject_density_misestimate(doc, 2.0)
        after = [ar.symmetric_rel_error(r["pred"], r["actual"])
                 for r in doc["density"]]
        for b, a in zip(before, after):
            self.assertGreater(a, b)


class CounterfactualTest(unittest.TestCase):
    def _repr_record(self, model, rho_a, rho_b, rho_c, a_dense, b_dense,
                     rho_w=0.03):
        c_dense = rho_c >= rho_w
        cf_a, cf_b, cost = ar.decide_pair(
            model, 64, 48, 64, rho_a, rho_b, a_dense, b_dense,
            False, False, c_dense, True)
        return {
            "op": 1, "ti": 0, "tj": 0, "k0": 0, "k1": 1,
            "m": 64, "k": 48, "n": 64,
            "rho_a": rho_a, "rho_b": rho_b,
            "rho_c_pred": rho_c, "rho_c_actual": rho_c, "rho_w": rho_w,
            "a_stored_dense": a_dense, "b_stored_dense": b_dense,
            "a_cached": False, "b_cached": False, "allow_conversion": True,
            "c_dense": c_dense,
            "kernel": ar.kernel_name(cf_a, cf_b, c_dense),
            "stored_cost": 0.0, "chosen_cost": cost,
        }

    def test_zero_regret_when_predictions_fed_back(self):
        model = ar.CostModel(PARAMS, 256)
        doc = {"cost_params": PARAMS, "spmm_max_panel_cols": 256, "repr": []}
        densities = (0.001, 0.01, 0.05, 0.3, 0.9)
        for rho_a in densities:
            for rho_b in densities:
                for rho_c in densities:
                    for stored in range(4):
                        doc["repr"].append(self._repr_record(
                            model, rho_a, rho_b, rho_c,
                            bool(stored & 1), bool(stored & 2)))
        report = ar.build_report(doc, 0)
        self.assertEqual(report["repr_considered"], len(doc["repr"]))
        self.assertEqual(report["repr_regret"], 0)
        self.assertEqual(report["repr_regret_cost"], 0.0)
        self.assertEqual(report["repr"]["max"], 0.0)

    def test_measurement_across_water_level_registers_regret(self):
        model = ar.CostModel(PARAMS, 256)
        rec = self._repr_record(model, 0.5, 0.5, 0.001, True, True)
        rec["rho_c_actual"] = 0.9  # measured far above rho_w
        doc = {"cost_params": PARAMS, "spmm_max_panel_cols": 256,
               "repr": [rec]}
        report = ar.build_report(doc, 0)
        self.assertEqual(report["repr_considered"], 1)
        self.assertEqual(report["repr_regret"], 1)

    def test_spa_regret_zero_when_row_nnz_fed_back(self):
        doc = {"spa_mode": [
            {"op": 0, "ti": 0, "tj": 0, "width": w,
             "pred_row_nnz": nnz, "actual_row_nnz": nnz,
             "mode": ar.choose_mode(w, nnz)}
            for w in (64, 256, 4096) for nnz in (0.5, 3.0, 17.0, 200.0)
        ]}
        report = ar.build_report(doc, 0)
        self.assertEqual(report["spa_considered"], 12)
        self.assertEqual(report["spa_regret"], 0)


class ReportAndGateTest(unittest.TestCase):
    def test_empty_doc_reports_zero_counts(self):
        report = ar.build_report({}, 10)
        for name in ar.CLASSES:
            self.assertEqual(report[name]["count"], 0)
        text = ar.render_report(report)
        self.assertIn("prediction audit", text)
        self.assertIn("repr regret 0/0", text)

    def test_waterlevel_infeasible_counted_and_rendered(self):
        doc = {"waterlevel": [
            {"op": 0, "projected_bytes": 100, "result_bytes": 100,
             "feasible": False},
            {"op": 1, "projected_bytes": 100, "result_bytes": 100},
        ]}
        report = ar.build_report(doc, 0)
        self.assertEqual(report["waterlevel_infeasible"], 1)
        self.assertIn("waterlevel: 1/2 records under an infeasible memory "
                      "SLA", ar.render_report(report))

    def test_report_is_deterministic(self):
        doc = {"density": [
            {"op": 2, "bi": i, "bj": 0, "pred": 0.1 * i, "actual": 0.05 * i}
            for i in range(6)
        ]}
        self.assertEqual(ar.render_report(ar.build_report(doc, 5)),
                         ar.render_report(ar.build_report(doc, 5)))

    def test_gate_passes_own_envelope_then_fails_after_injection(self):
        doc = {"density": [
            {"op": 0, "bi": i, "bj": 0, "pred": 0.4, "actual": 0.5}
            for i in range(16)
        ]}
        report = ar.build_report(doc, 0)
        envelope = json.loads(ar.render_envelope(report, 1.5))
        ok, regressions, text = ar.evaluate_gate(report, envelope)
        self.assertTrue(ok, text)
        self.assertEqual(regressions, 0)

        ar.inject_density_misestimate(doc, 2.0)
        worse = ar.build_report(doc, 0)
        self.assertGreater(worse["density"]["p50"], report["density"]["p50"])
        ok, regressions, text = ar.evaluate_gate(worse, envelope)
        self.assertFalse(ok)
        self.assertGreaterEqual(regressions, 1)
        self.assertIn("REGRESSION", text)

    def test_gate_skips_empty_classes(self):
        baseline = {
            "schema_version": 1, "kind": "atmx_audit_baseline",
            "classes": {"density": {"p50": 0.1, "p95": 0.2, "max": 0.3}},
            "max_repr_regret_fraction": 0.05,
        }
        ok, regressions, text = ar.evaluate_gate(ar.build_report({}, 0),
                                                 baseline)
        self.assertTrue(ok)
        self.assertEqual(regressions, 0)
        self.assertIn("SKIP", text)

    def test_gate_rejects_invalid_baseline(self):
        ok, regressions, _ = ar.evaluate_gate(ar.build_report({}, 0),
                                              {"kind": "wrong"})
        self.assertFalse(ok)
        self.assertEqual(regressions, 1)


class LoadLedgerTest(unittest.TestCase):
    def test_rejects_wrong_kind_and_schema(self):
        with tempfile.TemporaryDirectory() as d:
            bad_kind = os.path.join(d, "bad_kind.json")
            with open(bad_kind, "w", encoding="utf-8") as f:
                json.dump({"kind": "something_else", "schema_version": 1}, f)
            with self.assertRaises(ValueError):
                ar.load_ledger(bad_kind)
            bad_schema = os.path.join(d, "bad_schema.json")
            with open(bad_schema, "w", encoding="utf-8") as f:
                json.dump({"kind": "atmx_audit_ledger",
                           "schema_version": 999}, f)
            with self.assertRaises(ValueError):
                ar.load_ledger(bad_schema)

    def test_accepts_minimal_ledger(self):
        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "ok.json")
            with open(path, "w", encoding="utf-8") as f:
                json.dump({"kind": "atmx_audit_ledger", "schema_version": 1,
                           "density": []}, f)
            self.assertEqual(ar.load_ledger(path)["density"], [])


if __name__ == "__main__":
    unittest.main()
