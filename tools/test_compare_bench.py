#!/usr/bin/env python3
"""Unit tests for compare_bench.py (verdict logic + schema validation).

Run directly (`python3 tools/test_compare_bench.py`) or via ctest, which
registers this file when a Python3 interpreter is found.
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import compare_bench  # noqa: E402


def make_report(cases, bench="unit", version=1):
    return {
        "schema_version": version,
        "bench": bench,
        "git_sha": "deadbeef",
        "unix_time": 0,
        "config": {},
        "cases": [
            {
                "name": name,
                "repetitions": 1,
                "wall_seconds": {
                    "min": median, "median": median,
                    "p95": median, "max": median, "samples": [median],
                },
            }
            for name, median in cases
        ],
    }


def verdicts(results):
    return {row["name"]: row["verdict"] for row in results}


class ValidateTest(unittest.TestCase):
    def test_accepts_valid_report(self):
        report = make_report([("a", 0.1)])
        self.assertIs(compare_bench.validate_report(report), report)

    def test_rejects_wrong_schema_version(self):
        with self.assertRaises(compare_bench.SchemaError):
            compare_bench.validate_report(make_report([], version=2))

    def test_rejects_missing_wall_seconds(self):
        report = make_report([("a", 0.1)])
        del report["cases"][0]["wall_seconds"]
        with self.assertRaises(compare_bench.SchemaError):
            compare_bench.validate_report(report)

    def test_rejects_negative_median(self):
        with self.assertRaises(compare_bench.SchemaError):
            compare_bench.validate_report(make_report([("a", -0.1)]))

    def test_rejects_nan_median(self):
        with self.assertRaises(compare_bench.SchemaError):
            compare_bench.validate_report(make_report([("a", float("nan"))]))

    def test_rejects_non_integer_counter(self):
        report = make_report([("a", 0.1)])
        report["cases"][0]["counters"] = {"cycles": 1.5}
        with self.assertRaises(compare_bench.SchemaError):
            compare_bench.validate_report(report)

    def test_accepts_integer_counters(self):
        report = make_report([("a", 0.1)])
        report["cases"][0]["counters"] = {"cycles": 12345, "llc_misses": 0}
        compare_bench.validate_report(report)


class CompareTest(unittest.TestCase):
    def test_identical_reports_are_ok(self):
        base = make_report([("a", 0.1), ("b", 0.2)])
        results = compare_bench.compare(base, base, max_regress_pct=10)
        self.assertEqual(verdicts(results),
                         {"a": compare_bench.OK, "b": compare_bench.OK})

    def test_regression_over_threshold(self):
        base = make_report([("a", 0.100)])
        cur = make_report([("a", 0.120)])
        results = compare_bench.compare(base, cur, max_regress_pct=10)
        self.assertEqual(verdicts(results),
                         {"a": compare_bench.REGRESSION})
        self.assertAlmostEqual(results[0]["ratio"], 1.2)

    def test_within_threshold_is_ok(self):
        base = make_report([("a", 0.100)])
        cur = make_report([("a", 0.109)])
        results = compare_bench.compare(base, cur, max_regress_pct=10)
        self.assertEqual(verdicts(results), {"a": compare_bench.OK})

    def test_improvement_under_threshold(self):
        base = make_report([("a", 0.100)])
        cur = make_report([("a", 0.050)])
        results = compare_bench.compare(base, cur, max_regress_pct=10)
        self.assertEqual(verdicts(results),
                         {"a": compare_bench.IMPROVEMENT})

    def test_missing_case_and_missing_baseline(self):
        base = make_report([("gone", 0.1), ("shared", 0.1)])
        cur = make_report([("shared", 0.1), ("new", 0.1)])
        results = compare_bench.compare(base, cur, max_regress_pct=10)
        self.assertEqual(verdicts(results), {
            "gone": compare_bench.MISSING_CASE,
            "shared": compare_bench.OK,
            "new": compare_bench.MISSING_BASELINE,
        })

    def test_zero_baseline_with_nonzero_current_regresses(self):
        base = make_report([("a", 0.0)])
        cur = make_report([("a", 0.001)])
        results = compare_bench.compare(base, cur, max_regress_pct=10)
        self.assertEqual(verdicts(results),
                         {"a": compare_bench.REGRESSION})

    def test_zero_baseline_with_zero_current_is_ok(self):
        base = make_report([("a", 0.0)])
        results = compare_bench.compare(base, base, max_regress_pct=10)
        self.assertEqual(verdicts(results), {"a": compare_bench.OK})


class MainTest(unittest.TestCase):
    def _write(self, tmpdir, name, report):
        import json
        path = os.path.join(tmpdir, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(report, f)
        return path

    def test_exit_codes(self):
        import tempfile
        with tempfile.TemporaryDirectory() as tmpdir:
            ok = self._write(tmpdir, "ok.json", make_report([("a", 0.1)]))
            slow = self._write(tmpdir, "slow.json",
                               make_report([("a", 0.5)]))
            self.assertEqual(compare_bench.main([ok, ok]), 0)
            self.assertEqual(compare_bench.main([ok, slow]), 1)
            self.assertEqual(
                compare_bench.main([ok, slow, "--max-regress", "1000"]), 0)
            self.assertEqual(compare_bench.main([ok, "/nonexistent"]), 2)

    def test_update_baselines_appends_new_cases(self):
        import json
        import tempfile
        with tempfile.TemporaryDirectory() as tmpdir:
            base = self._write(tmpdir, "base.json",
                               make_report([("old", 0.1)]))
            cur = self._write(tmpdir, "cur.json",
                              make_report([("old", 0.1), ("new", 0.2)]))
            # Without the flag the new case fails the gate and the baseline
            # file is untouched.
            self.assertEqual(compare_bench.main([base, cur]), 1)
            with open(base, encoding="utf-8") as f:
                self.assertEqual(len(json.load(f)["cases"]), 1)
            # With the flag it passes and the case is appended.
            self.assertEqual(
                compare_bench.main([base, cur, "--update-baselines"]), 0)
            with open(base, encoding="utf-8") as f:
                updated = json.load(f)
            names = [c["name"] for c in updated["cases"]]
            self.assertEqual(names, ["old", "new"])
            self.assertEqual(
                updated["cases"][1]["wall_seconds"]["median"], 0.2)
            # The rewritten file still validates, and a second run is a
            # clean no-op (idempotent).
            compare_bench.validate_report(updated)
            self.assertEqual(
                compare_bench.main([base, cur, "--update-baselines"]), 0)
            with open(base, encoding="utf-8") as f:
                self.assertEqual(len(json.load(f)["cases"]), 2)

    def test_update_baselines_never_overwrites_existing(self):
        import json
        import tempfile
        with tempfile.TemporaryDirectory() as tmpdir:
            base = self._write(tmpdir, "base.json",
                               make_report([("a", 0.1)]))
            cur = self._write(tmpdir, "cur.json", make_report([("a", 0.5)]))
            # A regressed existing case still fails even with the flag, and
            # its baseline median is not replaced.
            self.assertEqual(
                compare_bench.main([base, cur, "--update-baselines"]), 1)
            with open(base, encoding="utf-8") as f:
                report = json.load(f)
            self.assertEqual(
                report["cases"][0]["wall_seconds"]["median"], 0.1)

    def test_update_baselines_relabels_results(self):
        base = make_report([("old", 0.1)])
        cur = make_report([("old", 0.1), ("new", 0.2)])
        results = compare_bench.compare(base, cur, max_regress_pct=10)
        added = compare_bench.update_baselines(base, cur, results)
        self.assertEqual(added, 1)
        self.assertEqual(verdicts(results), {
            "old": compare_bench.OK,
            "new": compare_bench.BASELINE_ADDED,
        })
        self.assertEqual([c["name"] for c in base["cases"]], ["old", "new"])


if __name__ == "__main__":
    unittest.main()
