#!/usr/bin/env python3
"""atmx_lint: repo-specific invariant checks the generic clang-tidy profile
cannot express.

The checks (each with a self-test in tools/test_atmx_lint.py):

  no-raw-mutex           Raw std::mutex / std::lock_guard / std::unique_lock /
                         std::condition_variable / ... are banned in src/
                         outside the annotated wrapper (src/common/mutex.h)
                         and the annotation header. The standard types carry
                         no capability attributes, so using them silently
                         opts code out of Clang's -Wthread-safety analysis.

  nodiscard-status       atmx::Status and atmx::Result must keep their
                         class-level [[nodiscard]]; every Status/Result-
                         returning function declared in a src/ header must
                         be marked [[nodiscard]]; no src/ statement may
                         discard (or `(void)`-launder) a call to a known
                         Status-returning API. Compile-time enforcement is
                         the attribute itself (-Werror=unused-result in the
                         clang CI job); the lint keeps the attributes from
                         being dropped and catches laundering.

  fp-contract            The SIMD kernel TUs (src/kernels/simd/) promised
                         bitwise identity across dispatch levels, which
                         requires no FMA contraction: no std::fma / fma()
                         calls, no FMA intrinsics, no `#pragma STDC
                         FP_CONTRACT` other than OFF, and the CMake rules
                         must keep -ffp-contract=off on both the portable
                         and the AVX2 TU. Every kernel TU in the directory
                         (all .cc except the arithmetic-free dispatcher)
                         must also be listed in a
                         set_source_files_properties block that applies a
                         *_KERNEL_OPTIONS list — a newly added TU cannot
                         silently compile with default contraction.

  lock-order-doc         The TraceRecorder's registry-before-shard lock
                         order cannot be expressed with ATMX_ACQUIRED_AFTER
                         (the shard mutexes are dynamic objects); the
                         documented invariant in src/obs/trace.h is pinned
                         here so it cannot be deleted without the lint
                         noticing.

  no-lock-across-callback  No atmx::MutexLock scope may invoke a
                         user-supplied callback (run/fn/cost_of/home_of/
                         callback, or `(*job)(...)`): a callback that
                         blocks or re-enters the locking object under a
                         held lock is a deadlock waiting to happen. The
                         scheduler's contract is lock -> pop -> unlock ->
                         invoke. The same check bans blocking socket calls
                         (accept/recv/send/sendto/write) under a held
                         MutexLock in src/obs/stats_server.cc: a stuck
                         client must never be able to wedge Start/Stop.
                         shutdown(2)/close(2) stay allowed — they are how
                         Stop unwedges the listener.

  no-lock-across-file-io  No atmx::MutexLock scope in the audit-ledger
                         write paths (src/obs/audit_ledger.cc) may perform
                         file I/O (fopen/fwrite/fprintf/fputs/fflush/
                         fclose): a slow disk would stall every thread
                         recording a decision behind the flush. The
                         contract is snapshot under the lock, render and
                         write lock-free (AuditLedger::WriteJson).

Exit status 0 when clean, 1 when any check reports a violation, 2 on usage
errors. Output is one `path:line: [check] message` per violation, so the
format is grep- and CI-annotation-friendly.

Optionally, when clang-query (from clang-tools) is on PATH and a compile
database is given via --build-dir, the AST-grep scripts in
tools/lint_queries/ run as a deeper second pass over the same invariants.
The pure-Python pass is authoritative in CI (toolchain-independent); the
clang-query pass is best-effort local depth, like run_clang_tidy.sh.
"""

from __future__ import annotations

import argparse
import os
import re
import shutil
import subprocess
import sys
from typing import Callable, Iterable, List, NamedTuple


class Violation(NamedTuple):
    path: str
    line: int  # 1-based; 0 = whole file
    check: str
    message: str

    def render(self, repo: str) -> str:
        rel = os.path.relpath(self.path, repo)
        return f"{rel}:{self.line}: [{self.check}] {self.message}"


# --------------------------------------------------------------------------
# Source model


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure.

    Replaced characters become spaces so column/line numbers in the
    remaining code stay valid. Handles // and /* */ comments, "..." and
    '...' literals with escapes. Raw strings are treated as plain strings,
    which is fine for linting (no raw strings in this codebase carry code).
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def iter_files(root: str, subdir: str, exts: Iterable[str]) -> List[str]:
    base = os.path.join(root, subdir)
    found = []
    for dirpath, _, filenames in os.walk(base):
        for name in sorted(filenames):
            if any(name.endswith(e) for e in exts):
                found.append(os.path.join(dirpath, name))
    return sorted(found)


def read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as f:
        return f.read()


# --------------------------------------------------------------------------
# Check: no-raw-mutex

RAW_MUTEX_RE = re.compile(
    r"std\s*::\s*(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable|condition_variable_any)\b"
)

# The annotated wrapper and the annotation macros: the ONLY files in src/
# where the raw standard locking types may appear.
RAW_MUTEX_ALLOWED = ("common/mutex.h", "common/thread_annotations.h")


def check_no_raw_mutex(repo: str) -> List[Violation]:
    violations = []
    for path in iter_files(repo, "src", (".h", ".cc")):
        rel = os.path.relpath(path, os.path.join(repo, "src"))
        if rel in RAW_MUTEX_ALLOWED:
            continue
        code = strip_comments_and_strings(read(path))
        for lineno, line in enumerate(code.splitlines(), start=1):
            for m in RAW_MUTEX_RE.finditer(line):
                violations.append(Violation(
                    path, lineno, "no-raw-mutex",
                    f"raw std::{m.group(1)} outside common/mutex.h; use the "
                    "annotated atmx::Mutex/MutexLock/CondVar wrappers"))
    return violations


# --------------------------------------------------------------------------
# Check: nodiscard-status

STATUS_DECL_RE = re.compile(
    r"^\s*(?P<nodiscard>\[\[nodiscard\]\]\s+)?(?:static\s+|virtual\s+)?"
    r"(?:Status|Result<[\w:<>,\s]+>)\s+(?P<name>\w+)\s*\(",
)


def collect_status_apis(repo: str) -> List[tuple]:
    """(path, line, name, has_nodiscard) for Status/Result-returning
    function declarations in src/ headers (status.h itself exempt: its
    class-level [[nodiscard]] covers the factory methods)."""
    apis = []
    for path in iter_files(repo, "src", (".h",)):
        if path.endswith(os.path.join("common", "status.h")):
            continue
        code = strip_comments_and_strings(read(path))
        for lineno, line in enumerate(code.splitlines(), start=1):
            m = STATUS_DECL_RE.match(line)
            if m:
                apis.append((path, lineno, m.group("name"),
                             m.group("nodiscard") is not None))
    return apis


def check_nodiscard_status(repo: str) -> List[Violation]:
    violations = []
    status_h = os.path.join(repo, "src", "common", "status.h")
    text = read(status_h)
    for cls in ("Status", "Result"):
        if not re.search(r"class\s+\[\[nodiscard\]\]\s+" + cls + r"\b", text):
            violations.append(Violation(
                status_h, 0, "nodiscard-status",
                f"class {cls} lost its [[nodiscard]] attribute"))

    apis = collect_status_apis(repo)
    for path, lineno, name, has_nodiscard in apis:
        if not has_nodiscard:
            violations.append(Violation(
                path, lineno, "nodiscard-status",
                f"Status/Result-returning '{name}' missing [[nodiscard]]"))

    # Discard / laundering scan over src/ implementation files. A bare
    # `Foo(...);` expression statement calling a known Status API drops the
    # result; `(void)Foo(...)` launders it past the compiler. Both are
    # banned in src/ (tests may launder deliberately-failing calls).
    names = sorted({name for _, _, name, _ in apis})
    if names:
        alt = "|".join(map(re.escape, names))
        discard_re = re.compile(
            r"^\s*(?:\w+(?:\.|->))*(?:" + alt + r")\s*\(")
        launder_re = re.compile(
            r"\(\s*void\s*\)\s*(?:\w+(?:\.|->))*(?:" + alt + r")\s*\(")
        for path in iter_files(repo, "src", (".cc",)):
            code = strip_comments_and_strings(read(path))
            for lineno, line in enumerate(code.splitlines(), start=1):
                if launder_re.search(line):
                    violations.append(Violation(
                        path, lineno, "nodiscard-status",
                        "(void)-laundered Status result in src/; handle or "
                        "propagate the Status instead"))
                    continue
                if not discard_re.match(line):
                    continue
                # Expression statements only: a used value appears after
                # `=`, `return`, or inside a condition/macro.
                stripped = line.strip()
                if not stripped.endswith(";"):
                    continue
                if re.search(r"\b(return|if|while|for)\b|=", line):
                    continue
                violations.append(Violation(
                    path, lineno, "nodiscard-status",
                    "discarded Status-returning call"))
    return violations


# --------------------------------------------------------------------------
# Check: fp-contract

FMA_RE = re.compile(
    r"(std\s*::\s*fmaf?\b|(?<![\w.])fmaf?\s*\(|_mm\d*_(fmadd|fmsub|fnmadd|"
    r"fnmsub)_\w+|vfma\w*\b)"
)
FP_CONTRACT_PRAGMA_RE = re.compile(
    r"#\s*pragma\s+STDC\s+FP_CONTRACT\s+(\w+)")
SOURCE_PROPERTIES_RE = re.compile(
    r"set_source_files_properties\s*\(([^)]*)\)", re.S)

# TUs under src/kernels/simd/ that hold no kernel arithmetic and so need
# no per-file compile options (the dispatcher only resolves levels).
FP_CONTRACT_EXEMPT_TUS = frozenset({"simd_dispatch.cc"})


def check_fp_contract(repo: str) -> List[Violation]:
    violations = []
    simd_dir = os.path.join("src", "kernels", "simd")
    for path in iter_files(repo, simd_dir, (".h", ".cc")):
        raw = read(path)
        code = strip_comments_and_strings(raw)
        for lineno, line in enumerate(code.splitlines(), start=1):
            if FMA_RE.search(line):
                violations.append(Violation(
                    path, lineno, "fp-contract",
                    "FMA use in a SIMD kernel TU breaks the bitwise "
                    "cross-level identity contract (docs/KERNELS.md)"))
        # Pragmas survive in the raw text (the stripper does not blank
        # preprocessor lines, but scan raw to be safe against format).
        for lineno, line in enumerate(raw.splitlines(), start=1):
            m = FP_CONTRACT_PRAGMA_RE.search(line)
            if m and m.group(1).upper() != "OFF":
                violations.append(Violation(
                    path, lineno, "fp-contract",
                    f"FP_CONTRACT {m.group(1)} pragma; only OFF is allowed "
                    "in SIMD kernel TUs"))
    cmake = os.path.join(repo, "src", "CMakeLists.txt")
    text = read(cmake)
    for var in ("ATMX_PORTABLE_KERNEL_OPTIONS", "ATMX_AVX2_KERNEL_OPTIONS"):
        if not re.search(
                r"list\(APPEND\s+" + var + r"\s+\"-ffp-contract=off\"\)",
                text):
            violations.append(Violation(
                cmake, 0, "fp-contract",
                f"{var} no longer appends -ffp-contract=off; the SIMD "
                "bitwise-identity contract needs it"))
    # Every kernel TU must be claimed by a set_source_files_properties
    # block that applies one of the *_KERNEL_OPTIONS lists; otherwise a
    # newly added TU (the SpMM panel family was one) compiles with the
    # compiler's default contraction and silently breaks the contract.
    covered = set()
    for m in SOURCE_PROPERTIES_RE.finditer(text):
        block = m.group(1)
        if "KERNEL_OPTIONS" not in block:
            continue
        covered.update(re.findall(r"kernels/simd/[\w./-]+\.cc", block))
    for path in iter_files(repo, simd_dir, (".cc",)):
        name = os.path.basename(path)
        if name in FP_CONTRACT_EXEMPT_TUS:
            continue
        rel = "kernels/simd/" + name
        if rel not in covered:
            violations.append(Violation(
                cmake, 0, "fp-contract",
                f"{rel} has no set_source_files_properties entry applying "
                "a *_KERNEL_OPTIONS list; kernel TUs must compile with "
                "-ffp-contract=off"))
    return violations


# --------------------------------------------------------------------------
# Check: lock-order-doc

def check_lock_order_doc(repo: str) -> List[Violation]:
    trace_h = os.path.join(repo, "src", "obs", "trace.h")
    text = read(trace_h)
    if "LOCK ORDER: registry_mutex_ strictly before any shard" not in text:
        return [Violation(
            trace_h, 0, "lock-order-doc",
            "the documented registry-before-shard lock order comment is "
            "gone; restore it (the order cannot be expressed with "
            "ATMX_ACQUIRED_AFTER because shard mutexes are dynamic)")]
    return []


# --------------------------------------------------------------------------
# Check: no-lock-across-callback

LOCK_DECL_RE = re.compile(r"\bMutexLock\s+\w+\s*[({]")
CALLBACK_CALL_RE = re.compile(
    r"(?:(?<![\w.>:])(?:run|fn|cost_of|home_of|callback)\s*\(|"
    r"\(\s*\*\s*job\s*\)\s*\()")
# Blocking socket syscalls that must not run under the stats-server
# lifecycle mutex. The lookbehind rejects member calls (`x.send(`,
# `p->send(`) but accepts the bare and `::`-qualified forms the file
# uses. shutdown/close are deliberately absent: Stop() calls them under
# mu_ to unblock the listener, which is the point of the discipline.
SOCKET_CALL_RE = re.compile(
    r"(?<![\w.>])(?:accept|recv|send|sendto|write)\s*\(")
SOCKET_CHECKED_FILES = (os.path.join("obs", "stats_server.cc"),)


def check_no_lock_across_callback(repo: str) -> List[Violation]:
    violations = []
    for path in iter_files(repo, "src", (".cc", ".h")):
        socket_checked = any(path.endswith(f) for f in SOCKET_CHECKED_FILES)
        code = strip_comments_and_strings(read(path))
        depth = 0
        lock_depths: List[int] = []  # brace depth at each active MutexLock
        for lineno, line in enumerate(code.splitlines(), start=1):
            # A lock declared on this line guards until its scope closes.
            # Process closing braces first so a `}` on the declaration line
            # of an outer scope is handled in order; this line-granular
            # model is exact for the repo's one-statement-per-line style.
            for ch in line:
                if ch == "}":
                    depth -= 1
                    while lock_depths and lock_depths[-1] > depth:
                        lock_depths.pop()
                elif ch == "{":
                    depth += 1
            if lock_depths and CALLBACK_CALL_RE.search(line):
                violations.append(Violation(
                    path, lineno, "no-lock-across-callback",
                    "user-supplied callback invoked while a MutexLock is "
                    "held; unlock before invoking (lock -> pop -> unlock "
                    "-> invoke)"))
            if lock_depths and socket_checked and SOCKET_CALL_RE.search(line):
                violations.append(Violation(
                    path, lineno, "no-lock-across-callback",
                    "blocking socket call under a held MutexLock in the "
                    "stats server; a stuck client could wedge Start/Stop "
                    "(release mu_ before accept/recv/send)"))
            if LOCK_DECL_RE.search(line):
                lock_depths.append(depth)
        # (unbalanced braces reset naturally at EOF; next file restarts)
    return violations


# --------------------------------------------------------------------------
# Check: no-lock-across-file-io

# File I/O that must not run under the audit-ledger mutex: a slow disk
# (or a pathological path like an NFS mount) would stall every recording
# thread behind the flush. The contract is snapshot-under-lock,
# serialize-and-write lock-free (see AuditLedger::WriteJson). Same
# line-granular brace-depth model as the callback/socket rule above;
# the lookbehind rejects member calls but accepts bare and
# `std::`-qualified forms.
FILE_IO_CALL_RE = re.compile(
    r"(?<![\w.>])(?:fopen|fwrite|fprintf|fputs|fflush|fclose)\s*\(")
FILE_IO_CHECKED_FILES = (os.path.join("obs", "audit_ledger.cc"),)


def check_no_lock_across_file_io(repo: str) -> List[Violation]:
    violations = []
    for path in iter_files(repo, "src", (".cc", ".h")):
        if not any(path.endswith(f) for f in FILE_IO_CHECKED_FILES):
            continue
        code = strip_comments_and_strings(read(path))
        depth = 0
        lock_depths: List[int] = []  # brace depth at each active MutexLock
        for lineno, line in enumerate(code.splitlines(), start=1):
            for ch in line:
                if ch == "}":
                    depth -= 1
                    while lock_depths and lock_depths[-1] > depth:
                        lock_depths.pop()
                elif ch == "{":
                    depth += 1
            if lock_depths and FILE_IO_CALL_RE.search(line):
                violations.append(Violation(
                    path, lineno, "no-lock-across-file-io",
                    "file I/O under a held MutexLock in a ledger write "
                    "path; snapshot under the lock, then render and write "
                    "with no lock held"))
            if LOCK_DECL_RE.search(line):
                lock_depths.append(depth)
    return violations


# --------------------------------------------------------------------------
# Optional clang-query pass

def run_clang_query(repo: str, build_dir: str) -> int:
    """Best-effort AST pass; returns the number of reported matches."""
    tool = shutil.which("clang-query")
    if tool is None:
        print("atmx_lint: clang-query not found; skipping AST pass "
              "(the pure-Python checks above are authoritative)",
              file=sys.stderr)
        return 0
    queries = iter_files(repo, os.path.join("tools", "lint_queries"),
                         (".query",))
    sources = [p for p in iter_files(repo, "src", (".cc",))
               if not p.endswith(os.path.join("common", "mutex.cc"))]
    matches = 0
    for query in queries:
        cmd = [tool, "-p", build_dir, "-f", query] + sources
        proc = subprocess.run(cmd, capture_output=True, text=True)
        out = proc.stdout
        # clang-query prints "N matches." per run plus one location line
        # per match; surface everything and count non-zero totals.
        for line in out.splitlines():
            m = re.match(r"(\d+) match(es)?\.", line.strip())
            if m and int(m.group(1)) > 0:
                matches += int(m.group(1))
        if out.strip():
            print(f"--- clang-query: {os.path.basename(query)} ---")
            print(out)
    return matches


# --------------------------------------------------------------------------

CHECKS: dict = {
    "no-raw-mutex": check_no_raw_mutex,
    "nodiscard-status": check_nodiscard_status,
    "fp-contract": check_fp_contract,
    "lock-order-doc": check_lock_order_doc,
    "no-lock-across-callback": check_no_lock_across_callback,
    "no-lock-across-file-io": check_no_lock_across_file_io,
}


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repo", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--check", action="append", choices=sorted(CHECKS),
                        help="run only the named check (repeatable)")
    parser.add_argument("--list-checks", action="store_true")
    parser.add_argument("--build-dir", default=None,
                        help="build tree with compile_commands.json; "
                             "enables the optional clang-query AST pass")
    args = parser.parse_args(argv)

    if args.list_checks:
        for name in sorted(CHECKS):
            print(name)
        return 0

    repo = args.repo or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(repo, "src")):
        print(f"atmx_lint: no src/ under {repo}", file=sys.stderr)
        return 2

    selected = args.check or sorted(CHECKS)
    violations: List[Violation] = []
    for name in selected:
        violations.extend(CHECKS[name](repo))

    for v in sorted(violations):
        print(v.render(repo))

    query_matches = 0
    if args.build_dir:
        query_matches = run_clang_query(repo, args.build_dir)

    if violations or query_matches:
        print(f"atmx_lint: {len(violations)} violation(s)"
              + (f", {query_matches} clang-query match(es)"
                 if query_matches else ""),
              file=sys.stderr)
        return 1
    print(f"atmx_lint: clean ({', '.join(selected)})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
