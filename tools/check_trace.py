#!/usr/bin/env python3
"""Validates a Chrome trace_event JSON file produced by the atmx tracing
layer (ATMX_TRACE_OUT / --trace-out= / `atmx trace`).

Checks that the file parses as JSON, has the trace_event envelope, that
every event carries the required keys with sane values, and that at least
`--min-events` events were recorded. Used by CI after running a bench with
tracing on.

Usage: check_trace.py <trace.json> [--min-events N]
"""

import argparse
import json
import sys

REQUIRED_KEYS = {"name", "cat", "ph", "ts", "pid", "tid"}
KNOWN_PHASES = {"X", "i"}
# Hardware-counter delta args attached by the perf layer (ScopedPerfSpan).
# Optional per event, but when present they must be non-negative integers:
# a NaN, negative or fractional delta means the multiplex scaling or the
# snapshot subtraction went wrong.
COUNTER_ARG_KEYS = {
    "cycles",
    "instructions",
    "llc_loads",
    "llc_misses",
    "dtlb_misses",
    "task_clock_ns",
}


def fail(message):
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("trace")
    parser.add_argument("--min-events", type=int, default=1)
    parser.add_argument(
        "--require-cat",
        action="append",
        default=[],
        metavar="CAT[=N]",
        help="require at least N (default 1) events of category CAT; "
        "repeatable (e.g. --require-cat sched=4 --require-cat kernel)",
    )
    parser.add_argument(
        "--require-name",
        action="append",
        default=[],
        metavar="NAME[=N]",
        help="require at least N (default 1) events named NAME "
        "(e.g. --require-name steal after a work-stealing bench)",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot load {args.trace}: {error}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("missing traceEvents envelope")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents is not a list")
    if len(events) < args.min_events:
        fail(f"only {len(events)} events, expected >= {args.min_events}")

    categories = {}
    names = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"event {index} is not an object")
        missing = REQUIRED_KEYS - event.keys()
        if missing:
            fail(f"event {index} missing keys: {sorted(missing)}")
        phase = event["ph"]
        if phase not in KNOWN_PHASES:
            fail(f"event {index} has unknown phase {phase!r}")
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            fail(f"event {index} has invalid ts {event['ts']!r}")
        if phase == "X":
            if "dur" not in event:
                fail(f"complete event {index} missing dur")
            if not isinstance(event["dur"], (int, float)) or event["dur"] < 0:
                fail(f"event {index} has invalid dur {event['dur']!r}")
        if "args" in event:
            if not isinstance(event["args"], dict):
                fail(f"event {index} args is not an object")
            for key in COUNTER_ARG_KEYS & event["args"].keys():
                value = event["args"][key]
                if (
                    not isinstance(value, int)
                    or isinstance(value, bool)
                    or value < 0
                ):
                    fail(
                        f"event {index} counter arg {key!r} must be a "
                        f"non-negative integer, got {value!r}"
                    )
        categories[event["cat"]] = categories.get(event["cat"], 0) + 1
        names[event["name"]] = names.get(event["name"], 0) + 1

    def check_required(spec, counts, kind):
        key, _, minimum = spec.partition("=")
        needed = int(minimum) if minimum else 1
        have = counts.get(key, 0)
        if have < needed:
            fail(f"{kind} {key!r}: {have} events, expected >= {needed}")

    for spec in args.require_cat:
        check_required(spec, categories, "category")
    for spec in args.require_name:
        check_required(spec, names, "event name")

    summary = ", ".join(f"{cat}={n}" for cat, n in sorted(categories.items()))
    print(f"check_trace: OK: {len(events)} events ({summary})")


if __name__ == "__main__":
    main()
