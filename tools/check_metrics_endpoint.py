#!/usr/bin/env python3
"""check_metrics_endpoint: CI-side validation of the live telemetry layer.

Launches a bench with ATMX_STATS_PORT=0, parses the stderr announcement
(`stats: serving http://127.0.0.1:<port>/metrics`) for the ephemeral
port, and then validates one of three contracts:

  scrape   /healthz answers ok, /metrics is well-formed OpenMetrics
           (TYPE lines, charset-clean names, cumulative histogram
           buckets ending in +Inf == _count), /metrics.json parses to a
           non-empty object whose keys mangle onto the OpenMetrics
           names, and an unknown route 404s. --require-metric NAME[=MIN]
           additionally polls /metrics.json until the named key reports
           a value >= MIN (counters a bench promises to bump; for
           histogram-valued keys such as estimator.err.* the floor is
           checked against the observation count).

  rates    two /metrics.json scrapes taken mid-run must both carry
           rate.* gauges, at least one of which changes between them,
           and sampler.ticks must advance — i.e. the windowed-rate
           sampler is actually sampling a live process.

  flight   a SIGSEGV delivered mid-run must leave a parseable
           atmx_flight_<pid>.json containing the schema marker, the
           fatal signal number, a non-empty metrics snapshot, decision
           entries, and trace events.

Exit status 0 on success, 1 on a failed expectation (with a `FAIL:`
diagnostic on stderr), 2 on usage errors. The bench command follows
`--` verbatim; its arguments are not interpreted here.

Used by the observability CI job; runnable locally, e.g.:

  python3 tools/check_metrics_endpoint.py scrape -- \
      env ATMX_SCALE=0.01 ./build/bench/spmv_bench
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple

PORT_RE = re.compile(r"stats: serving http://127\.0\.0\.1:(\d+)/metrics")

# One OpenMetrics sample line: name, optional {labels}, value. Names are
# restricted to the charset the exposition layer promises to emit.
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")
TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (\w+)$")
LE_RE = re.compile(r'le="([^"]+)"')


class Fail(Exception):
    pass


def mangle(name: str) -> str:
    """Python mirror of atmx::obs::MangleMetricName."""
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


class Bench:
    """A bench subprocess whose stderr is watched for the port line."""

    def __init__(self, cmd: List[str], extra_env: Dict[str, str],
                 cwd: Optional[str] = None):
        env = dict(os.environ)
        env.update(extra_env)
        self.proc = subprocess.Popen(
            cmd, env=env, cwd=cwd, stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE, text=True)
        self.port: Optional[int] = None
        self.stderr_lines: List[str] = []
        self._port_seen = threading.Event()
        self._drainer = threading.Thread(target=self._drain, daemon=True)
        self._drainer.start()

    def _drain(self) -> None:
        assert self.proc.stderr is not None
        for line in self.proc.stderr:
            self.stderr_lines.append(line)
            m = PORT_RE.search(line)
            if m and self.port is None:
                self.port = int(m.group(1))
                self._port_seen.set()
        self._port_seen.set()  # EOF: unblock waiters either way

    def wait_port(self, timeout: float) -> int:
        self._port_seen.wait(timeout)
        if self.port is None:
            raise Fail(
                "no stats announcement on stderr within "
                f"{timeout:.0f}s; stderr was:\n" + "".join(self.stderr_lines))
        return self.port

    def kill_and_reap(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait()


def get(port: int, path: str, timeout: float = 5.0) -> str:
    with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=timeout) as resp:
        return resp.read().decode("utf-8")


def get_json(port: int, path: str = "/metrics.json") -> Dict[str, object]:
    body = get(port, path)
    try:
        doc = json.loads(body)
    except json.JSONDecodeError as e:
        raise Fail(f"{path} is not valid JSON ({e}); body:\n{body[:2000]}")
    if not isinstance(doc, dict):
        raise Fail(f"{path} did not parse to an object")
    return doc


# --------------------------------------------------------------------------
# OpenMetrics validation


def validate_openmetrics(text: str, min_families: int) -> Dict[str, str]:
    """Checks the exposition grammar; returns {family name: type}."""
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        raise Fail("/metrics does not end with '# EOF'")
    families: Dict[str, str] = {}
    samples: List[Tuple[str, Optional[str], float]] = []
    for lineno, line in enumerate(lines[:-1], start=1):
        if not line:
            raise Fail(f"/metrics line {lineno}: blank line")
        if line.startswith("#"):
            m = TYPE_RE.match(line)
            if not m:
                raise Fail(f"/metrics line {lineno}: unexpected comment "
                           f"{line!r} (only '# TYPE' and '# EOF' are "
                           "emitted)")
            name, family_type = m.groups()
            if family_type not in ("counter", "gauge", "histogram"):
                raise Fail(f"/metrics line {lineno}: unknown type "
                           f"{family_type!r}")
            if name in families:
                raise Fail(f"/metrics line {lineno}: duplicate TYPE for "
                           f"{name}")
            families[name] = family_type
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            raise Fail(f"/metrics line {lineno}: malformed sample {line!r}")
        name, labels, value_str = m.groups()
        try:
            value = float(value_str)
        except ValueError:
            raise Fail(f"/metrics line {lineno}: non-numeric value "
                       f"{value_str!r}")
        samples.append((name, labels, value))

    by_name: Dict[str, List[Tuple[Optional[str], float]]] = {}
    for name, labels, value in samples:
        by_name.setdefault(name, []).append((labels, value))

    def series(name: str) -> List[Tuple[Optional[str], float]]:
        if name not in by_name:
            raise Fail(f"/metrics: family declared but series {name} "
                       "missing")
        return by_name[name]

    claimed: set = set()
    for name, family_type in families.items():
        if family_type == "counter":
            (labels, value), = series(name + "_total")
            claimed.add(name + "_total")
            if labels or value < 0:
                raise Fail(f"/metrics: counter {name}_total must be a "
                           "label-free non-negative sample")
        elif family_type == "gauge":
            (labels, _), = series(name)
            claimed.add(name)
            if labels:
                raise Fail(f"/metrics: gauge {name} must be label-free")
        else:  # histogram
            buckets = series(name + "_bucket")
            (_, total_count), = series(name + "_count")
            (_, _sum), = series(name + "_sum")
            claimed.update((name + "_bucket", name + "_count", name + "_sum"))
            prev = -1.0
            les = []
            for labels, value in buckets:
                le = LE_RE.search(labels or "")
                if not le:
                    raise Fail(f"/metrics: {name}_bucket sample without an "
                               "le label")
                les.append(le.group(1))
                if value < prev:
                    raise Fail(f"/metrics: {name}_bucket series is not "
                               "cumulative")
                prev = value
            if les[-1] != "+Inf":
                raise Fail(f"/metrics: {name}_bucket does not end in +Inf")
            if prev != total_count:
                raise Fail(f"/metrics: {name} +Inf bucket {prev} != _count "
                           f"{total_count}")
    unclaimed = set(by_name) - claimed
    if unclaimed:
        raise Fail("/metrics: samples without a TYPE declaration: "
                   + ", ".join(sorted(unclaimed)))
    if len(families) < min_families:
        raise Fail(f"/metrics: only {len(families)} metric families; "
                   f"expected at least {min_families}")
    return families


# --------------------------------------------------------------------------
# Modes


def stats_env(args: argparse.Namespace) -> Dict[str, str]:
    return {
        "ATMX_STATS_PORT": "0",
        "ATMX_STATS_PERIOD_MS": str(args.period_ms),
        "ATMX_STATS_LINGER": str(args.linger),
    }


def mode_scrape(args: argparse.Namespace) -> None:
    bench = Bench(args.command, stats_env(args))
    try:
        port = bench.wait_port(args.timeout)
        if get(port, "/healthz") != "ok\n":
            raise Fail("/healthz did not answer 'ok'")
        # The registry fills as the bench works; keep scraping until the
        # family floor is met (the linger window keeps the server up even
        # after a short bench body finishes).
        deadline = time.monotonic() + args.timeout
        while True:
            metrics_text = get(port, "/metrics")
            try:
                families = validate_openmetrics(metrics_text,
                                                args.min_families)
                break
            except Fail:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.3)
        doc = get_json(port)
        if not doc:
            raise Fail("/metrics.json is empty")
        for key in doc:
            if mangle(key) not in families:
                raise Fail(f"/metrics.json key {key!r} has no OpenMetrics "
                           f"family {mangle(key)!r}")
        # Named-metric floors (--require-metric NAME[=MIN]): the registry
        # fills as the bench works, so keep re-scraping until every
        # required key exists with at least the requested value.
        # Histograms render as objects in /metrics.json; their floor is
        # checked against the observation count (estimator.err.* etc.).
        def metric_meets(value, floor: float) -> bool:
            if isinstance(value, dict):
                value = value.get("count")
            return isinstance(value, (int, float)) and value >= floor

        for name, floor in args.require_metric:
            while True:
                value = doc.get(name)
                if metric_meets(value, floor):
                    break
                if time.monotonic() >= deadline:
                    raise Fail(f"/metrics.json never reported {name!r} >= "
                               f"{floor:g} (last value: {value!r})")
                time.sleep(0.3)
                doc = get_json(port)
        try:
            get(port, "/no-such-route")
            raise Fail("unknown route did not 404")
        except urllib.error.HTTPError as e:
            if e.code != 404:
                raise Fail(f"unknown route answered {e.code}, wanted 404")
        print(f"scrape: ok ({len(families)} families, "
              f"{len(doc)} JSON metrics)")
    finally:
        bench.kill_and_reap()


def mode_rates(args: argparse.Namespace) -> None:
    bench = Bench(args.command, stats_env(args))
    try:
        port = bench.wait_port(args.timeout)
        # rate.* gauges exist from the sampler's second tick on; poll for
        # them before taking the first of the two compared scrapes.
        deadline = time.monotonic() + args.timeout
        while True:
            first = get_json(port)
            if any(k.startswith("rate.") for k in first):
                break
            if time.monotonic() >= deadline:
                raise Fail("no rate.* gauges appeared; is the sampler "
                           "running?")
            if bench.proc.poll() is not None:
                raise Fail("bench exited before rate.* gauges appeared")
            time.sleep(args.period_ms / 1000.0)
        time.sleep(args.gap)
        if bench.proc.poll() is not None:
            raise Fail("bench exited before the second scrape; increase "
                       "--repeat on the bench command")
        second = get_json(port)

        for label, doc in (("first", first), ("second", second)):
            if not any(k.startswith("rate.") for k in doc):
                raise Fail(f"{label} scrape carries no rate.* gauges")
        changed = [k for k in second
                   if k.startswith("rate.") and first.get(k) != second[k]]
        if not changed:
            raise Fail("no rate.* gauge changed between two mid-run "
                       "scrapes taken {:.1f}s apart".format(args.gap))
        ticks = ("sampler.ticks" in first and "sampler.ticks" in second
                 and second["sampler.ticks"] > first["sampler.ticks"])
        if not ticks:
            raise Fail("sampler.ticks did not advance between scrapes")
        print(f"rates: ok ({len(changed)} rate gauges moved, e.g. "
              f"{changed[0]})")
    finally:
        bench.kill_and_reap()


def mode_flight(args: argparse.Namespace) -> None:
    workdir = tempfile.mkdtemp(prefix="atmx_flight_test_")
    env = stats_env(args)
    # Tracing also arms the decision log, so the dump carries both.
    env["ATMX_TRACE_OUT"] = os.path.join(workdir, "unused.trace.json")
    # The bench runs inside the scratch dir (the dump lands in the
    # process CWD); relative paths in the command must survive that.
    command = [os.path.abspath(tok) if os.path.exists(tok) else tok
               for tok in args.command]
    bench = Bench(command, env, cwd=workdir)
    try:
        port = bench.wait_port(args.timeout)
        # Wait until the process has observable work AND the sampler has
        # refreshed the flight buffers at least twice since that work.
        deadline = time.monotonic() + args.timeout
        armed_ticks = None
        while time.monotonic() < deadline:
            if bench.proc.poll() is not None:
                raise Fail("bench exited before the crash was injected; "
                           "increase --repeat on the bench command")
            doc = get_json(port)
            busy = any(not k.startswith(("rate.", "sampler."))
                       and isinstance(v, (int, float)) and v > 0
                       for k, v in doc.items())
            ticks = doc.get("sampler.ticks", 0)
            if busy and armed_ticks is None:
                armed_ticks = ticks
            if armed_ticks is not None and ticks >= armed_ticks + 2:
                break
            time.sleep(args.period_ms / 1000.0)
        else:
            raise Fail("bench never became busy enough to arm the crash")

        bench.proc.send_signal(signal.SIGSEGV)
        returncode = bench.proc.wait(timeout=30)
        if returncode != -signal.SIGSEGV:
            raise Fail(f"bench exit status {returncode}; the handler must "
                       "re-raise so the SIGSEGV death is preserved")
        path = os.path.join(workdir, f"atmx_flight_{bench.proc.pid}.json")
        if not os.path.exists(path):
            raise Fail(f"no flight dump at {path}")
        with open(path, "r", encoding="utf-8") as f:
            dump = json.load(f)
        if dump.get("flight_schema") != 1:
            raise Fail("flight dump missing flight_schema 1")
        if dump.get("signal") != int(signal.SIGSEGV):
            raise Fail(f"flight dump signal {dump.get('signal')} != "
                       f"{int(signal.SIGSEGV)}")
        if dump.get("pid") != bench.proc.pid:
            raise Fail("flight dump pid mismatch")
        metrics = dump.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            raise Fail("flight dump metrics snapshot empty")
        decisions = dump.get("decisions")
        if not isinstance(decisions, list) or not decisions:
            raise Fail("flight dump has no decision entries")
        events = dump.get("trace", {}).get("traceEvents")
        if not isinstance(events, list) or not events:
            raise Fail("flight dump has no trace events")
        if not isinstance(dump.get("mem_high_water_bytes"), (int, float)):
            raise Fail("flight dump missing mem_high_water_bytes")
        print(f"flight: ok ({len(metrics)} metrics, {len(decisions)} "
              f"decisions, {len(events)} trace events in {path})")
    finally:
        bench.kill_and_reap()


MODES = {"scrape": mode_scrape, "rates": mode_rates, "flight": mode_flight}


def parse_metric_floor(spec: str) -> Tuple[str, float]:
    """NAME or NAME=MIN (raw /metrics.json key, not the mangled form)."""
    name, sep, floor = spec.partition("=")
    if not name:
        raise argparse.ArgumentTypeError(f"empty metric name in {spec!r}")
    if not sep:
        return name, 1.0
    try:
        return name, float(floor)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"non-numeric floor {floor!r} in {spec!r}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        usage="%(prog)s {scrape,rates,flight} [options] -- command ...")
    parser.add_argument("mode", choices=sorted(MODES))
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="seconds to wait for the stats announcement "
                             "and for mid-run states (default 60)")
    parser.add_argument("--period-ms", type=int, default=50,
                        help="ATMX_STATS_PERIOD_MS for the child")
    parser.add_argument("--linger", type=int, default=5,
                        help="ATMX_STATS_LINGER for the child")
    parser.add_argument("--gap", type=float, default=1.5,
                        help="rates: seconds between the two scrapes")
    parser.add_argument("--min-families", type=int, default=5,
                        help="scrape: minimum OpenMetrics families")
    parser.add_argument("--require-metric", action="append", default=[],
                        metavar="NAME[=MIN]", type=parse_metric_floor,
                        help="scrape: /metrics.json must report this key "
                             "with a value >= MIN (default 1); repeatable")
    # Split at "--" by hand: argparse's REMAINDER would swallow any
    # option written after the mode positional into the command.
    if argv is None:
        argv = sys.argv[1:]
    command: List[str] = []
    if "--" in argv:
        split = argv.index("--")
        command = argv[split + 1:]
        argv = argv[:split]
    args = parser.parse_args(argv)
    args.command = command

    if not args.command:
        parser.error("no bench command given after --")

    try:
        MODES[args.mode](args)
    except Fail as e:
        print(f"FAIL: {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
