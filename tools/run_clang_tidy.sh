#!/usr/bin/env sh
# Runs clang-tidy (configuration in .clang-tidy) over the library, tools,
# and test sources using the compile commands of an existing build tree.
#
#   tools/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# Exits 0 with a notice when clang-tidy is not installed, so the script is
# safe to call unconditionally from CI images without the tool.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"${repo_root}/build"}
if [ "$#" -gt 0 ]; then shift; fi
if [ "${1:-}" = "--" ]; then shift; fi

TIDY=${CLANG_TIDY:-clang-tidy}
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy: '$TIDY' not found on PATH; skipping (install" \
       "clang-tidy or set CLANG_TIDY to enable static analysis)." >&2
  exit 0
fi

if [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "run_clang_tidy: ${build_dir}/compile_commands.json missing;" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON first." >&2
  exit 1
fi

# All first-party translation units; third-party code (gtest, benchmark)
# never appears here because it lives outside these directories.
files=$(find "${repo_root}/src" "${repo_root}/tools" "${repo_root}/tests" \
             "${repo_root}/examples" -name '*.cc' | sort)

status=0
for f in $files; do
  "$TIDY" -p "$build_dir" --quiet "$@" "$f" || status=1
done

if [ "$status" -ne 0 ]; then
  echo "run_clang_tidy: findings reported (see above)." >&2
fi
exit "$status"
