add_test([=[UmbrellaTest.EndToEndThroughSingleInclude]=]  /root/repo/build-tsan/tests/test_umbrella [==[--gtest_filter=UmbrellaTest.EndToEndThroughSingleInclude]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[UmbrellaTest.EndToEndThroughSingleInclude]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build-tsan/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_umbrella_TESTS UmbrellaTest.EndToEndThroughSingleInclude)
