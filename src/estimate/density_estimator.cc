#include "estimate/density_estimator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace atmx {

DensityMap EstimateProductDensity(const DensityMap& a, const DensityMap& b) {
  ATMX_CHECK_EQ(a.cols(), b.rows());
  ATMX_CHECK_EQ(a.block(), b.block());

  DensityMap c(a.rows(), b.cols(), a.block());
  const index_t grid_k = a.grid_cols();
  const index_t grid_j = b.grid_cols();

  // Sparse iteration: only non-zero blocks of A and B contribute, so we
  // pre-index the non-zero block columns of every B block-row. This keeps
  // the estimator cheap even for hypersparse high-dimension matrices (its
  // cost is the paper's concern in section IV-D).
  std::vector<std::vector<index_t>> b_row_nonzero(grid_k);
  for (index_t bk = 0; bk < grid_k; ++bk) {
    for (index_t bj = 0; bj < grid_j; ++bj) {
      if (b.At(bk, bj) > 0.0) b_row_nonzero[bk].push_back(bj);
    }
  }

  // Accumulate log(1 - rho_C) row-block-wise.
  std::vector<double> log_zero(grid_j);
  for (index_t bi = 0; bi < c.grid_rows(); ++bi) {
    std::fill(log_zero.begin(), log_zero.end(), 0.0);
    for (index_t bk = 0; bk < grid_k; ++bk) {
      const double rho_a = a.At(bi, bk);
      if (rho_a <= 0.0) continue;
      // w_K contraction columns in this block column, each an independent
      // chance for a non-zero product.
      const double w = static_cast<double>(a.BlockWidth(bk));
      for (index_t bj : b_row_nonzero[bk]) {
        const double p = rho_a * b.At(bk, bj);
        log_zero[bj] += p >= 1.0
                            ? -std::numeric_limits<double>::infinity()
                            : w * std::log1p(-p);
      }
    }
    for (index_t bj = 0; bj < grid_j; ++bj) {
      // 1 - e^{log P(zero)}.
      c.Set(bi, bj, std::clamp(-std::expm1(log_zero[bj]), 0.0, 1.0));
    }
  }
  return c;
}

void EstimateProductDensityRegion(const DensityMap& a, const DensityMap& b,
                                  index_t bi0, index_t bi1, index_t bj0,
                                  index_t bj1, DensityMap* out) {
  ATMX_CHECK_EQ(a.cols(), b.rows());
  ATMX_CHECK_EQ(a.block(), b.block());
  ATMX_CHECK_EQ(out->rows(), a.rows());
  ATMX_CHECK_EQ(out->cols(), b.cols());
  ATMX_CHECK_EQ(out->block(), a.block());
  ATMX_CHECK(bi0 >= 0 && bi1 <= out->grid_rows());
  ATMX_CHECK(bj0 >= 0 && bj1 <= out->grid_cols());

  const index_t grid_k = a.grid_cols();
  for (index_t bi = bi0; bi < bi1; ++bi) {
    for (index_t bj = bj0; bj < bj1; ++bj) {
      // Same term sequence as the full estimator: ascending bk, skipping
      // zero blocks of A (outer guard there) and of B (the b_row_nonzero
      // pre-index there) — the log-space accumulation order per block is
      // identical, so the rounded result is too.
      double log_zero = 0.0;
      for (index_t bk = 0; bk < grid_k; ++bk) {
        const double rho_a = a.At(bi, bk);
        if (rho_a <= 0.0) continue;
        const double rho_b = b.At(bk, bj);
        if (rho_b <= 0.0) continue;
        const double w = static_cast<double>(a.BlockWidth(bk));
        const double p = rho_a * rho_b;
        log_zero += p >= 1.0 ? -std::numeric_limits<double>::infinity()
                             : w * std::log1p(-p);
      }
      out->Set(bi, bj, std::clamp(-std::expm1(log_zero), 0.0, 1.0));
    }
  }
}

DensityMap CombineAdditive(const DensityMap& x, const DensityMap& y) {
  ATMX_CHECK_EQ(x.rows(), y.rows());
  ATMX_CHECK_EQ(x.cols(), y.cols());
  ATMX_CHECK_EQ(x.block(), y.block());
  DensityMap out(x.rows(), x.cols(), x.block());
  for (index_t bi = 0; bi < out.grid_rows(); ++bi) {
    for (index_t bj = 0; bj < out.grid_cols(); ++bj) {
      const double rx = x.At(bi, bj);
      const double ry = y.At(bi, bj);
      out.Set(bi, bj, 1.0 - (1.0 - rx) * (1.0 - ry));
    }
  }
  return out;
}

std::size_t EstimateMemoryBytes(const DensityMap& map, double threshold) {
  double bytes = 0.0;
  for (index_t bi = 0; bi < map.grid_rows(); ++bi) {
    for (index_t bj = 0; bj < map.grid_cols(); ++bj) {
      const double area = static_cast<double>(map.BlockArea(bi, bj));
      const double rho = map.At(bi, bj);
      if (rho >= threshold) {
        bytes += area * kDenseElemBytes;
      } else {
        bytes += rho * area * kSparseElemBytes;
      }
    }
  }
  return static_cast<std::size_t>(bytes);
}

}  // namespace atmx
