// Result-density estimation by probability propagation over density maps
// — the "density map" estimator of the authors' SpMacho paper [9] that
// ATMULT uses before executing a multiplication (section III-D).
//
// Model: treat every element of block (I, K) of A as non-zero independently
// with probability rho_A(I,K); likewise for B. Element (i, j) of C = A*B is
// zero only if all products a_ik * b_kj vanish, so
//
//   rho_C(I,J) = 1 - prod_K (1 - rho_A(I,K) * rho_B(K,J))^{w_K}
//
// where w_K is the number of contraction columns in block column K.
// Computed in log space for numeric stability.

#ifndef ATMX_ESTIMATE_DENSITY_ESTIMATOR_H_
#define ATMX_ESTIMATE_DENSITY_ESTIMATOR_H_

#include "estimate/density_map.h"

namespace atmx {

// Estimates the density map of C = A * B. Requires a.cols() == b.rows()
// and equal block sizes. Runtime is O(grid_rows(A) * grid_cols(B) *
// grid_cols(A)) — independent of the number of non-zeros, which is why the
// estimation cost only becomes visible for hypersparse very-high-dimension
// matrices (paper, section IV-D).
DensityMap EstimateProductDensity(const DensityMap& a, const DensityMap& b);

// Computes only the block region [bi0, bi1) x [bj0, bj1) of
// EstimateProductDensity(a, b), writing into `out` (which must have the
// product's shape and block size). Every written block is bitwise
// identical to the full estimator's value — same contraction terms in the
// same ascending block-column order — which is what lets the fused chain
// executor fill a product's estimate region-by-region as the producing
// bands complete, without changing any downstream decision.
void EstimateProductDensityRegion(const DensityMap& a, const DensityMap& b,
                                  index_t bi0, index_t bi1, index_t bj0,
                                  index_t bj1, DensityMap* out);

// Density map of the sum X + Y of two independent random matrices with
// the given block densities: rho = 1 - (1 - rho_x)(1 - rho_y). Used when
// ATMULT accumulates into an existing matrix (C' = C + A*B). Maps must
// share shape and block size.
DensityMap CombineAdditive(const DensityMap& x, const DensityMap& y);

// Expected memory footprint in bytes of a matrix with the given density
// map when each block is stored dense (8 B/element) if its density >=
// threshold and sparse CSR (16 B/element) otherwise.
std::size_t EstimateMemoryBytes(const DensityMap& map, double threshold);

}  // namespace atmx

#endif  // ATMX_ESTIMATE_DENSITY_ESTIMATOR_H_
