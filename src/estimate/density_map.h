// Density map: a grid holding the population density of every logical
// atomic block (b_atomic x b_atomic) of a matrix. Density maps are the
// input and output of the result-density estimator (section III-D) and the
// data the water-level method operates on (section III-E).

#ifndef ATMX_ESTIMATE_DENSITY_MAP_H_
#define ATMX_ESTIMATE_DENSITY_MAP_H_

#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "storage/coo_matrix.h"
#include "storage/csr_matrix.h"
#include "storage/dense_matrix.h"

namespace atmx {

class DensityMap {
 public:
  DensityMap() = default;
  // Zero-density map for an m x n matrix with the given block size.
  DensityMap(index_t rows, index_t cols, index_t block);

  static DensityMap FromCoo(const CooMatrix& coo, index_t block);
  static DensityMap FromCsr(const CsrMatrix& csr, index_t block);
  static DensityMap FromDense(const DenseMatrix& dense, index_t block);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t block() const { return block_; }
  index_t grid_rows() const { return grid_rows_; }
  index_t grid_cols() const { return grid_cols_; }

  // Extent of block (bi, bj): boundary blocks are clipped to the matrix.
  index_t BlockHeight(index_t bi) const {
    return std::min(block_, rows_ - bi * block_);
  }
  index_t BlockWidth(index_t bj) const {
    return std::min(block_, cols_ - bj * block_);
  }
  index_t BlockArea(index_t bi, index_t bj) const {
    return BlockHeight(bi) * BlockWidth(bj);
  }

  double At(index_t bi, index_t bj) const {
    ATMX_DCHECK(bi >= 0 && bi < grid_rows_ && bj >= 0 && bj < grid_cols_);
    return density_[bi * grid_cols_ + bj];
  }
  void Set(index_t bi, index_t bj, double d) {
    ATMX_DCHECK(bi >= 0 && bi < grid_rows_ && bj >= 0 && bj < grid_cols_);
    density_[bi * grid_cols_ + bj] = d;
  }

  // Mean density of the aligned block square [bi0, bi0+span) x
  // [bj0, bj0+span) weighted by clipped block areas. Used to decide the
  // representation of melted tiles.
  double RegionDensity(index_t bi0, index_t bj0, index_t span_r,
                       index_t span_c) const;

  // Expected total number of non-zeros (sum of density * block area).
  double ExpectedNnz() const;

  const std::vector<double>& values() const { return density_; }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t block_ = 1;
  index_t grid_rows_ = 0;
  index_t grid_cols_ = 0;
  std::vector<double> density_;
};

}  // namespace atmx

#endif  // ATMX_ESTIMATE_DENSITY_MAP_H_
