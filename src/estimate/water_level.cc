#include "estimate/water_level.h"

#include <algorithm>
#include <vector>

#include "estimate/density_estimator.h"
#include "obs/obs.h"

namespace atmx {

WaterLevelResult SolveWaterLevel(const DensityMap& estimate,
                                 std::size_t mem_limit_bytes) {
  struct Bar {
    double density;
    double area;
  };
  std::vector<Bar> bars;
  bars.reserve(estimate.grid_rows() * estimate.grid_cols());
  double sparse_total = 0.0;  // all-sparse memory
  for (index_t bi = 0; bi < estimate.grid_rows(); ++bi) {
    for (index_t bj = 0; bj < estimate.grid_cols(); ++bj) {
      const double area = static_cast<double>(estimate.BlockArea(bi, bj));
      const double rho = estimate.At(bi, bj);
      bars.push_back({rho, area});
      sparse_total += rho * area * kSparseElemBytes;
    }
  }
  // Lower the level from the top: bars surface in descending density order.
  std::sort(bars.begin(), bars.end(),
            [](const Bar& a, const Bar& b) { return a.density > b.density; });

  WaterLevelResult result;
  result.threshold = 1.0 + 1e-12;  // above all bars: everything sparse
  result.projected_bytes = static_cast<std::size_t>(sparse_total);
  result.feasible = sparse_total <= static_cast<double>(mem_limit_bytes);

  // If no level meets the limit, fall back to the level of minimum
  // memory (dense exactly where rho >= 0.5): the SLA is missed either
  // way, so miss it by as little as possible.
  double min_memory = sparse_total;
  double min_threshold = result.threshold;

  double memory = sparse_total;
  for (std::size_t i = 0; i < bars.size(); ++i) {
    // Surface bar i: its block flips from sparse to dense.
    memory += bars[i].area * (kDenseElemBytes -
                              bars[i].density * kSparseElemBytes);
    // Blocks of equal density flip together (the threshold comparison is
    // `>=`), so only commit the level once the density strictly drops.
    if (i + 1 < bars.size() && bars[i + 1].density == bars[i].density) {
      continue;
    }
    if (memory < min_memory) {
      min_memory = memory;
      min_threshold = bars[i].density;
    }
    if (memory <= static_cast<double>(mem_limit_bytes)) {
      result.threshold = bars[i].density;
      result.projected_bytes = static_cast<std::size_t>(memory);
      result.feasible = true;
    } else if (bars[i].density < 0.5) {
      // Every further bar has rho < 0.5, for which the dense flip strictly
      // adds memory — lowering the level cannot help anymore.
      break;
    }
  }
  if (!result.feasible) {
    result.threshold = min_threshold;
    ATMX_COUNTER_INC("waterlevel.infeasible");
  }
  // Re-derive the projection from the committed threshold instead of
  // keeping the incrementally updated running sum: the incremental updates
  // accumulate in surfacing order and can drift from the per-block sum by
  // rounding, so ATMULT's predicted_bytes gauge (which calls
  // EstimateMemoryBytes at this threshold) would disagree with
  // projected_bytes for the same plan. One formula, one answer.
  result.projected_bytes = EstimateMemoryBytes(estimate, result.threshold);
  return result;
}

double EffectiveWriteThreshold(const DensityMap& estimate, double rho_write,
                               std::size_t mem_limit_bytes) {
  return EffectiveWriteThreshold(estimate, rho_write, mem_limit_bytes,
                                 nullptr);
}

double EffectiveWriteThreshold(const DensityMap& estimate, double rho_write,
                               std::size_t mem_limit_bytes, bool* feasible) {
  if (feasible != nullptr) *feasible = true;
  // Fast path: unlimited memory keeps the performance-optimal threshold.
  const std::size_t optimistic = EstimateMemoryBytes(estimate, rho_write);
  if (optimistic <= mem_limit_bytes) return rho_write;
  const WaterLevelResult wl = SolveWaterLevel(estimate, mem_limit_bytes);
  if (feasible != nullptr) *feasible = wl.feasible;
  return std::max(rho_write, wl.threshold);
}

namespace {

// Per-product density histogram with the bars sorted descending and prefix
// sums, so the projected bytes at a threshold resolve in O(log bars). The
// arithmetic mirrors EstimateMemoryBytes (8 B/elem dense where rho >= t,
// 16 B/elem * rho sparse below), but the solver's own sums are
// authoritative for feasibility: prefix sums accumulate in density order
// while EstimateMemoryBytes accumulates in block order, and the two can
// drift by rounding.
struct ProductBars {
  std::vector<double> density;       // descending
  std::vector<double> dense_area;    // prefix: sum of area over bars [0, j)
  std::vector<double> sparse_bytes;  // prefix: sum of rho*area*16 over [0, j)

  explicit ProductBars(const DensityMap& map) {
    struct Bar {
      double density;
      double area;
    };
    std::vector<Bar> bars;
    bars.reserve(static_cast<std::size_t>(map.grid_rows()) *
                 static_cast<std::size_t>(map.grid_cols()));
    for (index_t bi = 0; bi < map.grid_rows(); ++bi) {
      for (index_t bj = 0; bj < map.grid_cols(); ++bj) {
        bars.push_back({map.At(bi, bj),
                        static_cast<double>(map.BlockArea(bi, bj))});
      }
    }
    std::sort(bars.begin(), bars.end(), [](const Bar& a, const Bar& b) {
      return a.density > b.density;
    });
    density.reserve(bars.size());
    dense_area.assign(1, 0.0);
    sparse_bytes.assign(1, 0.0);
    for (const Bar& b : bars) {
      density.push_back(b.density);
      dense_area.push_back(dense_area.back() + b.area);
      sparse_bytes.push_back(sparse_bytes.back() +
                             b.density * b.area * kSparseElemBytes);
    }
  }

  // Projected bytes with blocks of density >= t stored dense.
  double BytesAt(double t) const {
    // First bar strictly below the level; all bars before it are dense.
    const auto it = std::lower_bound(
        density.begin(), density.end(), t,
        [](double bar, double level) { return bar >= level; });
    const std::size_t k = static_cast<std::size_t>(it - density.begin());
    return dense_area[k] * kDenseElemBytes +
           (sparse_bytes.back() - sparse_bytes[k]);
  }
};

}  // namespace

ChainWaterLevelResult SolveChainWaterLevel(
    const std::vector<const DensityMap*>& products,
    const std::vector<int>& last_consumer, double rho_write,
    std::size_t budget_bytes) {
  const std::size_t n = products.size();
  ChainWaterLevelResult result;
  result.thresholds.assign(n, rho_write);
  if (n == 0) return result;

  std::vector<ProductBars> bars;
  bars.reserve(n);
  for (const DensityMap* map : products) bars.emplace_back(*map);

  // Product i is resident from its production step i through the step of
  // its last consumer; the root (negative last_consumer) outlives the
  // chain and stays resident through the final step.
  std::vector<std::vector<std::size_t>> live(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t last = n - 1;
    if (i < last_consumer.size() && last_consumer[i] >= 0) {
      last = std::min(n - 1, static_cast<std::size_t>(last_consumer[i]));
    }
    for (std::size_t p = i; p <= last; ++p) live[p].push_back(i);
  }

  // Candidate levels: the performance-optimal floor, every distinct block
  // density above it (the threshold comparison is `>=`, so only block
  // densities change the projection), and "above all bars" (everything
  // sparse). Ascending, so a scan commits the lowest workable level.
  std::vector<double> candidates;
  candidates.push_back(rho_write);
  for (const ProductBars& pb : bars) {
    for (double d : pb.density) {
      if (d > rho_write) candidates.push_back(d);
    }
  }
  candidates.push_back(1.0 + 1e-12);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  const std::size_t num_candidates = candidates.size();

  // bytes[i][c]: projected bytes of product i at candidate level c.
  std::vector<std::vector<double>> bytes(n);
  for (std::size_t i = 0; i < n; ++i) {
    bytes[i].reserve(num_candidates);
    for (std::size_t c = 0; c < num_candidates; ++c) {
      bytes[i].push_back(bars[i].BytesAt(candidates[c]));
    }
  }

  // Peak over steps of the resident-set footprint for a level assignment.
  const auto peak_of = [&](const std::vector<std::size_t>& lvl, int* step) {
    double peak = 0.0;
    int peak_step = 0;
    for (std::size_t p = 0; p < n; ++p) {
      double sum = 0.0;
      for (std::size_t i : live[p]) sum += bytes[i][lvl[i]];
      if (sum > peak) {
        peak = sum;
        peak_step = static_cast<int>(p);
      }
    }
    if (step != nullptr) *step = peak_step;
    return peak;
  };
  const double budget = static_cast<double>(budget_bytes);

  // Fast path: the performance-optimal level everywhere already fits.
  std::vector<std::size_t> lvl(n, 0);
  double peak = peak_of(lvl, &result.peak_step);
  if (peak <= budget) {
    result.projected_peak_bytes = static_cast<std::size_t>(peak);
    return result;
  }

  // The peak is separable: each product's bytes enter every step it is
  // live in with positive sign, so the minimum-achievable peak is reached
  // with every product at its own memory-minimal level. If even that
  // misses the budget no assignment can fit — clamp to the floor and
  // report infeasible.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 1; c < num_candidates; ++c) {
      if (bytes[i][c] < bytes[i][lvl[i]]) lvl[i] = c;
    }
  }
  peak = peak_of(lvl, &result.peak_step);
  if (peak > budget) {
    result.feasible = false;
    ATMX_COUNTER_INC("waterlevel.infeasible");
  } else {
    // Feasible: relax each product in turn to the lowest candidate level
    // that keeps the peak within the budget given the other products'
    // current levels. The product's own memory-minimal level always
    // qualifies (the budget held entering each step), so the scan
    // terminates with a valid assignment.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < num_candidates; ++c) {
        lvl[i] = c;
        if (peak_of(lvl, nullptr) <= budget) break;
      }
    }
    peak = peak_of(lvl, &result.peak_step);
  }

  for (std::size_t i = 0; i < n; ++i) {
    result.thresholds[i] = std::max(rho_write, candidates[lvl[i]]);
  }
  result.projected_peak_bytes = static_cast<std::size_t>(peak);
  return result;
}

}  // namespace atmx
