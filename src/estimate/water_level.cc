#include "estimate/water_level.h"

#include <algorithm>
#include <vector>

#include "estimate/density_estimator.h"

namespace atmx {

WaterLevelResult SolveWaterLevel(const DensityMap& estimate,
                                 std::size_t mem_limit_bytes) {
  struct Bar {
    double density;
    double area;
  };
  std::vector<Bar> bars;
  bars.reserve(estimate.grid_rows() * estimate.grid_cols());
  double sparse_total = 0.0;  // all-sparse memory
  for (index_t bi = 0; bi < estimate.grid_rows(); ++bi) {
    for (index_t bj = 0; bj < estimate.grid_cols(); ++bj) {
      const double area = static_cast<double>(estimate.BlockArea(bi, bj));
      const double rho = estimate.At(bi, bj);
      bars.push_back({rho, area});
      sparse_total += rho * area * kSparseElemBytes;
    }
  }
  // Lower the level from the top: bars surface in descending density order.
  std::sort(bars.begin(), bars.end(),
            [](const Bar& a, const Bar& b) { return a.density > b.density; });

  WaterLevelResult result;
  result.threshold = 1.0 + 1e-12;  // above all bars: everything sparse
  result.projected_bytes = static_cast<std::size_t>(sparse_total);
  result.feasible = sparse_total <= static_cast<double>(mem_limit_bytes);

  // If no level meets the limit, fall back to the level of minimum
  // memory (dense exactly where rho >= 0.5): the SLA is missed either
  // way, so miss it by as little as possible.
  double min_memory = sparse_total;
  double min_threshold = result.threshold;

  double memory = sparse_total;
  for (std::size_t i = 0; i < bars.size(); ++i) {
    // Surface bar i: its block flips from sparse to dense.
    memory += bars[i].area * (kDenseElemBytes -
                              bars[i].density * kSparseElemBytes);
    // Blocks of equal density flip together (the threshold comparison is
    // `>=`), so only commit the level once the density strictly drops.
    if (i + 1 < bars.size() && bars[i + 1].density == bars[i].density) {
      continue;
    }
    if (memory < min_memory) {
      min_memory = memory;
      min_threshold = bars[i].density;
    }
    if (memory <= static_cast<double>(mem_limit_bytes)) {
      result.threshold = bars[i].density;
      result.projected_bytes = static_cast<std::size_t>(memory);
      result.feasible = true;
    } else if (bars[i].density < 0.5) {
      // Every further bar has rho < 0.5, for which the dense flip strictly
      // adds memory — lowering the level cannot help anymore.
      break;
    }
  }
  if (!result.feasible) {
    result.threshold = min_threshold;
  }
  // Re-derive the projection from the committed threshold instead of
  // keeping the incrementally updated running sum: the incremental updates
  // accumulate in surfacing order and can drift from the per-block sum by
  // rounding, so ATMULT's predicted_bytes gauge (which calls
  // EstimateMemoryBytes at this threshold) would disagree with
  // projected_bytes for the same plan. One formula, one answer.
  result.projected_bytes = EstimateMemoryBytes(estimate, result.threshold);
  return result;
}

double EffectiveWriteThreshold(const DensityMap& estimate, double rho_write,
                               std::size_t mem_limit_bytes) {
  // Fast path: unlimited memory keeps the performance-optimal threshold.
  const std::size_t optimistic = EstimateMemoryBytes(estimate, rho_write);
  if (optimistic <= mem_limit_bytes) return rho_write;
  const WaterLevelResult wl = SolveWaterLevel(estimate, mem_limit_bytes);
  return std::max(rho_write, wl.threshold);
}

}  // namespace atmx
