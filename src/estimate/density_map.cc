#include "estimate/density_map.h"

#include <algorithm>

#include "common/math_util.h"

namespace atmx {

DensityMap::DensityMap(index_t rows, index_t cols, index_t block)
    : rows_(rows), cols_(cols), block_(block) {
  ATMX_CHECK_GE(rows, 0);
  ATMX_CHECK_GE(cols, 0);
  ATMX_CHECK_GT(block, 0);
  grid_rows_ = rows == 0 ? 0 : CeilDiv(rows, block);
  grid_cols_ = cols == 0 ? 0 : CeilDiv(cols, block);
  density_.assign(static_cast<std::size_t>(grid_rows_) * grid_cols_, 0.0);
}

namespace {

// Converts per-block counts (stored in map.values() layout) into densities.
void NormalizeCounts(std::vector<double>& counts, DensityMap* map) {
  for (index_t bi = 0; bi < map->grid_rows(); ++bi) {
    for (index_t bj = 0; bj < map->grid_cols(); ++bj) {
      const double area = static_cast<double>(map->BlockArea(bi, bj));
      const double count = counts[bi * map->grid_cols() + bj];
      map->Set(bi, bj, area > 0 ? count / area : 0.0);
    }
  }
}

}  // namespace

DensityMap DensityMap::FromCoo(const CooMatrix& coo, index_t block) {
  DensityMap map(coo.rows(), coo.cols(), block);
  std::vector<double> counts(map.density_.size(), 0.0);
  for (const CooEntry& e : coo.entries()) {
    counts[(e.row / block) * map.grid_cols_ + (e.col / block)] += 1.0;
  }
  NormalizeCounts(counts, &map);
  return map;
}

DensityMap DensityMap::FromCsr(const CsrMatrix& csr, index_t block) {
  DensityMap map(csr.rows(), csr.cols(), block);
  std::vector<double> counts(map.density_.size(), 0.0);
  for (index_t i = 0; i < csr.rows(); ++i) {
    const index_t bi = i / block;
    for (index_t c : csr.RowCols(i)) {
      counts[bi * map.grid_cols_ + (c / block)] += 1.0;
    }
  }
  NormalizeCounts(counts, &map);
  return map;
}

DensityMap DensityMap::FromDense(const DenseMatrix& dense, index_t block) {
  DensityMap map(dense.rows(), dense.cols(), block);
  std::vector<double> counts(map.density_.size(), 0.0);
  for (index_t i = 0; i < dense.rows(); ++i) {
    const index_t bi = i / block;
    for (index_t j = 0; j < dense.cols(); ++j) {
      if (dense.At(i, j) != 0.0) {
        counts[bi * map.grid_cols_ + (j / block)] += 1.0;
      }
    }
  }
  NormalizeCounts(counts, &map);
  return map;
}

double DensityMap::RegionDensity(index_t bi0, index_t bj0, index_t span_r,
                                 index_t span_c) const {
  double count = 0.0;
  double area = 0.0;
  const index_t bi1 = std::min(bi0 + span_r, grid_rows_);
  const index_t bj1 = std::min(bj0 + span_c, grid_cols_);
  for (index_t bi = bi0; bi < bi1; ++bi) {
    for (index_t bj = bj0; bj < bj1; ++bj) {
      const double a = static_cast<double>(BlockArea(bi, bj));
      count += At(bi, bj) * a;
      area += a;
    }
  }
  return area > 0 ? count / area : 0.0;
}

double DensityMap::ExpectedNnz() const {
  double total = 0.0;
  for (index_t bi = 0; bi < grid_rows_; ++bi) {
    for (index_t bj = 0; bj < grid_cols_; ++bj) {
      total += At(bi, bj) * static_cast<double>(BlockArea(bi, bj));
    }
  }
  return total;
}

}  // namespace atmx
