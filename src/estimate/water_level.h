// Water-level method (section III-E, Fig. 5): given the estimated density
// map of the result matrix and a flexible memory limit, find the write
// density threshold rhoD_W such that storing all blocks with estimated
// density >= rhoD_W as dense (and the rest sparse) stays within the limit.
//
// Imagined as a water level over the 2D block-density histogram that is
// lowered from the top: the densest blocks surface first (most promising to
// store dense); lowering stops when the accumulated memory hits the limit.

#ifndef ATMX_ESTIMATE_WATER_LEVEL_H_
#define ATMX_ESTIMATE_WATER_LEVEL_H_

#include <cstddef>
#include <vector>

#include "estimate/density_map.h"

namespace atmx {

struct WaterLevelResult {
  // The lowest threshold whose projected memory consumption does not exceed
  // the limit. 1.0 + epsilon ("above all bars") when even an all-sparse
  // layout fits only without any dense block; see `feasible`.
  double threshold = 0.0;
  // Projected bytes at `threshold`.
  std::size_t projected_bytes = 0;
  // False if not even the all-sparse layout fits into the limit; callers
  // then proceed all-sparse and accept the SLA miss (nothing denser could
  // help: for rho < 0.5 sparse blocks are the smaller representation).
  bool feasible = true;
};

WaterLevelResult SolveWaterLevel(const DensityMap& estimate,
                                 std::size_t mem_limit_bytes);

// Effective write threshold for the ATMULT operator: the performance-optimal
// rho0_W, raised if necessary so the projected result memory meets the
// limit.
//
// Note: Alg. 2 line 3 of the paper prints `min`; complying with the memory
// SLA requires *raising* the threshold above rho0_W when the limit binds
// (fewer dense blocks => less memory for rho < 0.5), so this implements the
// max semantics the surrounding text describes ("sacrifice performance in
// favor of a lower memory consumption").
double EffectiveWriteThreshold(const DensityMap& estimate, double rho_write,
                               std::size_t mem_limit_bytes);

// Same, with an infeasibility report: `*feasible` (when non-null) is set to
// false when even the memory-minimal layout misses the limit and the
// returned threshold is the clamped floor.
double EffectiveWriteThreshold(const DensityMap& estimate, double rho_write,
                               std::size_t mem_limit_bytes, bool* feasible);

// Chain-scope water level: one shared memory budget for a whole product
// chain instead of a per-product limit. Product i (post-order id) is
// resident from its production step i through the step of its last
// consumer (`last_consumer[i]`; the root, which outlives the chain, uses
// the final step). The solver picks one write threshold per product so
// that at every step the summed footprint of the resident products stays
// within the budget.
struct ChainWaterLevelResult {
  // Per-product write thresholds, indexed by post-order product id. Never
  // below rho_write: the performance-optimal level is only ever raised to
  // meet the budget (the max semantics of EffectiveWriteThreshold).
  std::vector<double> thresholds;
  // Projected resident-set peak at the committed thresholds, and the
  // production step where it occurs.
  std::size_t projected_peak_bytes = 0;
  int peak_step = 0;
  // False when no assignment of thresholds keeps the peak within the
  // budget; thresholds are then clamped to the memory-minimal level and
  // the `waterlevel.infeasible` counter is bumped. Callers decide whether
  // to accept the SLA miss or fall back to unfused execution.
  bool feasible = true;
};

ChainWaterLevelResult SolveChainWaterLevel(
    const std::vector<const DensityMap*>& products,
    const std::vector<int>& last_consumer, double rho_write,
    std::size_t budget_bytes);

}  // namespace atmx

#endif  // ATMX_ESTIMATE_WATER_LEVEL_H_
