// NUMA placement model and locality accounting (section III-F).
//
// The paper distributes matrix tile-rows round-robin across the memory
// nodes, pins each worker team to one socket, and relies on first-touch so
// the result inherits A's distribution. On hardware without multiple
// sockets the *placement decisions* still execute identically; what cannot
// be observed as wall-time is reported as local/remote traffic statistics
// instead (see DESIGN.md, substitutions).

#ifndef ATMX_TOPOLOGY_NUMA_SIM_H_
#define ATMX_TOPOLOGY_NUMA_SIM_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace atmx {

// Simulated inter-node hop distance: nodes form a ring, so with 2 nodes
// every remote node is one hop away (the paper's 2-socket case) and with 4
// nodes the opposite socket is two hops (a QPI-style square). Local access
// is distance 0. The work-stealing scheduler uses this to pick the
// NUMA-nearest victim so stolen tasks pay the cheapest possible remote
// traffic.
inline int NumaDistance(int a, int b, int num_nodes) {
  const int d = a > b ? a - b : b - a;
  return d < num_nodes - d ? d : num_nodes - d;
}

// Round-robin tile-row -> memory-node assignment. All matrices use the same
// scheme because "it is generally unknown whether a matrix will take part as
// the left or the right operand".
class NumaPlacement {
 public:
  explicit NumaPlacement(int num_nodes) : num_nodes_(num_nodes) {}

  int num_nodes() const { return num_nodes_; }

  // Home memory node of the given tile-row band.
  int NodeOfTileRow(index_t tile_row) const {
    return static_cast<int>(tile_row % num_nodes_);
  }

 private:
  int num_nodes_;
};

// Thread-safe counters of memory traffic split by whether the touched tile
// lives on the executing team's node.
class LocalityStats {
 public:
  void RecordRead(int exec_node, int data_node, std::uint64_t bytes) {
    if (exec_node == data_node) {
      local_read_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    } else {
      remote_read_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    }
  }

  void RecordWrite(int exec_node, int data_node, std::uint64_t bytes) {
    if (exec_node == data_node) {
      local_write_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    } else {
      remote_write_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    }
  }

  void Reset();

  std::uint64_t local_read_bytes() const { return local_read_bytes_.load(); }
  std::uint64_t remote_read_bytes() const { return remote_read_bytes_.load(); }
  std::uint64_t local_write_bytes() const { return local_write_bytes_.load(); }
  std::uint64_t remote_write_bytes() const {
    return remote_write_bytes_.load();
  }

  // Fraction of all recorded traffic that was node-local (1.0 when nothing
  // was recorded).
  double LocalFraction() const;

  std::string ToString() const;

 private:
  std::atomic<std::uint64_t> local_read_bytes_{0};
  std::atomic<std::uint64_t> remote_read_bytes_{0};
  std::atomic<std::uint64_t> local_write_bytes_{0};
  std::atomic<std::uint64_t> remote_write_bytes_{0};
};

}  // namespace atmx

#endif  // ATMX_TOPOLOGY_NUMA_SIM_H_
