// Two-level parallel execution (section III-F): worker *teams* — one per
// NUMA socket — each consisting of several threads. Inter-tile parallelism
// runs different (tile-row, tile-col) pairs on different teams; intra-tile
// parallelism splits one tile multiplication across a team's threads.

#ifndef ATMX_TOPOLOGY_THREAD_POOL_H_
#define ATMX_TOPOLOGY_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"

namespace atmx {

// A fixed group of persistent threads that execute broadcast jobs. On real
// NUMA hardware the team would be pinned to one socket; this reproduction
// records the socket id so placement decisions and locality accounting work
// identically (see numa_sim.h).
class WorkerTeam {
 public:
  // team_id doubles as the NUMA node the team is (logically) pinned to.
  WorkerTeam(int team_id, int num_threads);
  ~WorkerTeam();

  WorkerTeam(const WorkerTeam&) = delete;
  WorkerTeam& operator=(const WorkerTeam&) = delete;

  int team_id() const { return team_id_; }
  int size() const { return static_cast<int>(threads_.size()) + 1; }

  // Runs fn(thread_index) on every team thread (including the calling
  // thread as index 0) and returns when all are done. Not reentrant.
  void ParallelRun(const std::function<void(int)>& fn);

  // Dynamic parallel-for over [0, n) in chunks of `grain`:
  // fn(begin, end) with end - begin <= grain.
  void ParallelFor(index_t n, index_t grain,
                   const std::function<void(index_t, index_t)>& fn);

 private:
  void WorkerLoop(int thread_index);

  const int team_id_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable job_ready_;
  std::condition_variable job_done_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool shutdown_ = false;
};

// A set of worker teams; tasks are queued per team (the home node of the
// task's A tile-row) and every team drains its own queue sequentially,
// which is exactly the paper's scheduling: "all tile-multiplications
// referring to a particular tile-row-column pair are executed one after
// another, and by the same worker team".
class TeamScheduler {
 public:
  TeamScheduler(int num_teams, int threads_per_team);
  ~TeamScheduler();

  TeamScheduler(const TeamScheduler&) = delete;
  TeamScheduler& operator=(const TeamScheduler&) = delete;

  int num_teams() const { return static_cast<int>(teams_.size()); }
  WorkerTeam& team(int t) { return *teams_[t]; }

  // Executes tasks 0..num_tasks-1. `home_of(task)` assigns each task to a
  // team queue; `run(team, task)` performs the work and may use
  // `team.ParallelFor` for intra-task parallelism. Blocks until all tasks
  // finish.
  void RunTasks(index_t num_tasks,
                const std::function<int(index_t)>& home_of,
                const std::function<void(WorkerTeam&, index_t)>& run);

 private:
  std::vector<std::unique_ptr<WorkerTeam>> teams_;
};

}  // namespace atmx

#endif  // ATMX_TOPOLOGY_THREAD_POOL_H_
