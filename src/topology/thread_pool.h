// Two-level parallel execution (section III-F): worker *teams* — one per
// NUMA socket — each consisting of several threads. Inter-tile parallelism
// runs different (tile-row, tile-col) pairs on different teams; intra-tile
// parallelism splits one tile multiplication across a team's threads.
//
// Beyond the paper's static per-team queues, TeamScheduler implements
// locality-first work stealing (see docs/SCHEDULER.md): each team drains
// its home queue front-to-back in longest-processing-time-first order, and
// an idle team steals from the *tail* of the NUMA-nearest victim's deque —
// home tasks keep their first-touch locality and stolen tasks are the cold
// cheap tail, not the hot expensive head.

#ifndef ATMX_TOPOLOGY_THREAD_POOL_H_
#define ATMX_TOPOLOGY_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace atmx {

// A fixed group of persistent threads that execute broadcast jobs. On real
// NUMA hardware the team would be pinned to one socket; this reproduction
// records the socket id so placement decisions and locality accounting work
// identically (see numa_sim.h).
class WorkerTeam {
 public:
  // team_id doubles as the NUMA node the team is (logically) pinned to.
  WorkerTeam(int team_id, int num_threads);
  ~WorkerTeam();

  WorkerTeam(const WorkerTeam&) = delete;
  WorkerTeam& operator=(const WorkerTeam&) = delete;

  int team_id() const { return team_id_; }
  int size() const { return static_cast<int>(threads_.size()) + 1; }

  // Runs fn(thread_index) on every team thread (including the calling
  // thread as index 0) and returns when all are done. Not reentrant.
  void ParallelRun(const std::function<void(int)>& fn);

  // Dynamic parallel-for over [0, n) in chunks of `grain`:
  // fn(begin, end) with end - begin <= grain.
  void ParallelFor(index_t n, index_t grain,
                   const std::function<void(index_t, index_t)>& fn);

 private:
  void WorkerLoop(int thread_index);

  const int team_id_;
  std::vector<std::thread> threads_;

  Mutex mutex_;
  CondVar job_ready_;
  CondVar job_done_;
  const std::function<void(int)>* job_ ATMX_GUARDED_BY(mutex_) = nullptr;
  // Atomic so WorkerLoop can spin briefly on a new generation without the
  // mutex before falling back to the condvar wait (small-tile wake
  // latency). Both are still only *written* under mutex_.
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<bool> shutdown_{false};
  int pending_ ATMX_GUARDED_BY(mutex_) = 0;
};

// Scheduling policy of one TeamScheduler::RunTasks batch.
struct ScheduleOptions {
  // When true, an idle team steals tasks from the tail of the NUMA-nearest
  // non-empty victim queue instead of going idle. When false the scheduler
  // is the paper's static one: every task runs on its home team, in
  // submission order.
  bool work_stealing = true;
  // Optional per-task cost estimate (abstract units; only relative
  // magnitudes matter). When set and work_stealing is on, each home queue
  // is drained longest-processing-time-first, so the expensive head stays
  // home-local and thieves take the cheap cold tail. Evaluated once per
  // task before execution starts.
  std::function<double(index_t)> cost_of;
  // Optional admission gate, honored by RunTaskGraph only: a
  // dependency-ready task is offered to `admit` before it runs (outside
  // any scheduler lock). Returning false parks the task; it is offered
  // again after the next task completion (at most one retry per parked
  // task per completion). When every queue is empty, nothing is in
  // flight, and parked tasks remain, the oldest parked task is admitted
  // with force=true — the callback must accept it (backpressure may never
  // deadlock the graph; callers over budget count these forced
  // admissions instead of refusing).
  std::function<bool(index_t task, bool force)> admit;
};

// Per-batch outcome of TeamScheduler::RunTasks, sized by num_teams().
struct ScheduleStats {
  std::vector<index_t> executed_per_team;  // tasks run by each team
  std::vector<index_t> stolen_per_team;    // subset executed off-home
  std::vector<double> busy_seconds;        // per-team task wall time
  // Per-team driver-thread CPU time inside tasks. On a host with fewer
  // cores than teams the drivers timeshare and wall time counts slices
  // where other teams ran; CPU time is what the team's tasks would take on
  // a dedicated socket, so its per-team max is the topology-faithful
  // makespan (exact when threads_per_team == 1, where the whole task body
  // runs on the driver thread).
  std::vector<double> cpu_seconds;
  double makespan_seconds = 0.0;           // wall time of the whole batch

  std::uint64_t TotalSteals() const;
  double MaxBusySeconds() const;
  double TotalBusySeconds() const;
  double MaxCpuSeconds() const;
  double TotalCpuSeconds() const;
};

// A set of worker teams; tasks are queued per team (the home node of the
// task's A tile-row). Each team drains its own queue — "all
// tile-multiplications referring to a particular tile-row-column pair are
// executed one after another, and by the same worker team" — unless work
// stealing is enabled (the default), in which case a team whose queue runs
// dry takes over whole tasks from the NUMA-nearest loaded team. Stealing
// moves complete tasks, never splits one, so results are identical
// regardless of which team executes a task.
class TeamScheduler {
 public:
  TeamScheduler(int num_teams, int threads_per_team);
  ~TeamScheduler();

  TeamScheduler(const TeamScheduler&) = delete;
  TeamScheduler& operator=(const TeamScheduler&) = delete;

  int num_teams() const { return static_cast<int>(teams_.size()); }
  WorkerTeam& team(int t) { return *teams_[t]; }

  // Executes tasks 0..num_tasks-1. `home_of(task)` assigns each task to a
  // team queue; `run(team, task)` performs the work on the *executing*
  // team (== home team unless stolen) and may use `team.ParallelFor` for
  // intra-task parallelism. Blocks until all tasks finish.
  void RunTasks(index_t num_tasks,
                const std::function<int(index_t)>& home_of,
                const std::function<void(WorkerTeam&, index_t)>& run);

  // Same, with an explicit scheduling policy; fills `stats` when non-null.
  void RunTasks(index_t num_tasks,
                const std::function<int(index_t)>& home_of,
                const std::function<void(WorkerTeam&, index_t)>& run,
                const ScheduleOptions& options, ScheduleStats* stats);

  // Dependency-aware batch: tasks form a DAG instead of an independent
  // set. `dep_count[t]` is the number of predecessors of task t;
  // `successors[t]` lists the tasks unblocked when t completes (each
  // successor's count drops by one per listed edge). A task is released to
  // its home queue the moment its count reaches zero — there is no global
  // barrier between "phases", which is what lets a fused chain start a
  // downstream product's tile while sibling tiles of the upstream product
  // are still running. Newly released tasks are pushed to the *front* of
  // their home queue so consumers run while their producer's output is
  // still cache-hot; the initially-ready set keeps submission order (LPT
  // when `options.cost_of` is set). Stealing takes from the back, as in
  // RunTasks. When `options.admit` is set, ready tasks pass the admission
  // gate before running (see ScheduleOptions::admit); rejected tasks park
  // until a completion frees resources, with a forced admission of the
  // oldest parked task whenever nothing is in flight so backpressure can
  // never deadlock the batch. The graph must be acyclic with consistent
  // counts/edges or the call deadlocks its drivers; both are checked on
  // completion.
  void RunTaskGraph(index_t num_tasks,
                    const std::vector<index_t>& dep_count,
                    const std::vector<std::vector<index_t>>& successors,
                    const std::function<int(index_t)>& home_of,
                    const std::function<void(WorkerTeam&, index_t)>& run,
                    const ScheduleOptions& options, ScheduleStats* stats);

 private:
  std::vector<std::unique_ptr<WorkerTeam>> teams_;
};

}  // namespace atmx

#endif  // ATMX_TOPOLOGY_THREAD_POOL_H_
