// Tile-size policy: the maximum dense/sparse tile sizes of Eq. (1) and
// Eq. (2) in section II-B, derived from the last-level cache size so that
// alpha tiles (and beta accumulator arrays of one tile width) fit in cache.

#ifndef ATMX_TOPOLOGY_TILE_SIZE_POLICY_H_
#define ATMX_TOPOLOGY_TILE_SIZE_POLICY_H_

#include "common/config.h"
#include "common/types.h"

namespace atmx {

class TileSizePolicy {
 public:
  explicit TileSizePolicy(const AtmConfig& config);

  // Atomic block edge b_atomic = 2^k (minimum tile size, section II-B2).
  index_t atomic_block() const { return atomic_block_; }

  // Eq. (1): tau_max^d = sqrt(LLC / (alpha * S_d)).
  index_t max_dense_tile() const { return max_dense_tile_; }

  // Eq. (2) second bound: tau <= LLC / (beta * S_d) — at least beta
  // accumulator arrays of one tile width must fit in the LLC.
  index_t max_sparse_dim() const { return max_sparse_dim_; }

  // Eq. (2) first bound evaluated for a concrete tile: a sparse tile with
  // `nnz` elements may not occupy more than LLC / alpha bytes.
  index_t max_sparse_bytes() const { return max_sparse_bytes_; }

  // Whether a dense tile of the given edge length satisfies Eq. (1).
  bool DenseTileFits(index_t side) const { return side <= max_dense_tile_; }

  // Whether a sparse tile of the given edge length and element count
  // satisfies both bounds of Eq. (2).
  bool SparseTileFits(index_t side, index_t nnz) const {
    return side <= max_sparse_dim_ &&
           nnz * kSparseElemBytes <= max_sparse_bytes_;
  }

 private:
  index_t atomic_block_;
  index_t max_dense_tile_;
  index_t max_sparse_dim_;
  index_t max_sparse_bytes_;
};

}  // namespace atmx

#endif  // ATMX_TOPOLOGY_TILE_SIZE_POLICY_H_
