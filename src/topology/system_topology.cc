#include "topology/system_topology.h"

#include <unistd.h>

#include <fstream>
#include <sstream>
#include <thread>

namespace atmx {

namespace {

// Reads a sysfs cache-size file of the form "12345K"; returns 0 on failure.
index_t ReadSysfsCacheBytes(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0;
  long long value = 0;
  char suffix = 0;
  in >> value >> suffix;
  if (!in || value <= 0) return 0;
  switch (suffix) {
    case 'K':
      return value * 1024;
    case 'M':
      return value * 1024 * 1024;
    default:
      return value;
  }
}

}  // namespace

SystemTopology SystemTopology::Detect() {
  SystemTopology topo;
  topo.num_sockets = 1;

  unsigned hw = std::thread::hardware_concurrency();
  topo.cores_per_socket = hw > 0 ? static_cast<int>(hw) : 1;

  // Count NUMA nodes via sysfs if present.
  int nodes = 0;
  for (int n = 0; n < 64; ++n) {
    std::ostringstream path;
    path << "/sys/devices/system/node/node" << n;
    std::ifstream probe(path.str() + "/cpulist");
    if (!probe) break;
    ++nodes;
  }
  if (nodes > 1) {
    topo.num_sockets = nodes;
    topo.cores_per_socket =
        std::max(1, topo.cores_per_socket / topo.num_sockets);
  }

  // LLC: take the highest cache index of cpu0.
  index_t llc = 0;
  for (int idx = 0; idx < 8; ++idx) {
    std::ostringstream path;
    path << "/sys/devices/system/cpu/cpu0/cache/index" << idx << "/size";
    index_t bytes = ReadSysfsCacheBytes(path.str());
    if (bytes > 0) llc = bytes;
  }
  if (llc > 0) topo.llc_bytes = llc;
  return topo;
}

SystemTopology SystemTopology::PaperMachine() {
  SystemTopology topo;
  topo.num_sockets = 4;
  topo.cores_per_socket = 10;
  topo.llc_bytes = 24LL * 1024 * 1024;
  return topo;
}

void SystemTopology::ApplyTo(AtmConfig* config) const {
  config->num_sockets = num_sockets;
  config->cores_per_socket = cores_per_socket;
  config->llc_bytes = llc_bytes;
}

std::string SystemTopology::ToString() const {
  std::ostringstream os;
  os << "SystemTopology{sockets=" << num_sockets
     << ", cores/socket=" << cores_per_socket << ", llc=" << llc_bytes
     << "B}";
  return os.str();
}

}  // namespace atmx
