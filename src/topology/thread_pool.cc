#include "topology/thread_pool.h"

#include <memory>

#include "common/check.h"
#include "obs/obs.h"

namespace atmx {

WorkerTeam::WorkerTeam(int team_id, int num_threads) : team_id_(team_id) {
  ATMX_CHECK_GE(num_threads, 1);
  threads_.reserve(num_threads - 1);
  for (int i = 1; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

WorkerTeam::~WorkerTeam() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    ++generation_;
  }
  job_ready_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerTeam::ParallelRun(const std::function<void(int)>& fn) {
  if (threads_.empty()) {
    fn(0);
    return;
  }
  ATMX_COUNTER_INC("threadpool.parallel_runs");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    pending_ = static_cast<int>(threads_.size());
    ++generation_;
  }
  job_ready_.notify_all();
  fn(0);  // The caller participates as thread 0.
  std::unique_lock<std::mutex> lock(mutex_);
  job_done_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
}

void WorkerTeam::WorkerLoop(int thread_index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      job_ready_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    if (job != nullptr) (*job)(thread_index);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) job_done_.notify_all();
    }
  }
}

void WorkerTeam::ParallelFor(index_t n, index_t grain,
                             const std::function<void(index_t, index_t)>& fn) {
  if (n <= 0) return;
  ATMX_CHECK_GT(grain, 0);
  if (n <= grain || size() == 1) {
    fn(0, n);
    return;
  }
  std::atomic<index_t> next{0};
  ParallelRun([&](int) {
    for (;;) {
      const index_t begin = next.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) break;
      fn(begin, std::min(begin + grain, n));
    }
  });
}

TeamScheduler::TeamScheduler(int num_teams, int threads_per_team) {
  ATMX_CHECK_GE(num_teams, 1);
  teams_.reserve(num_teams);
  for (int t = 0; t < num_teams; ++t) {
    teams_.push_back(std::make_unique<WorkerTeam>(t, threads_per_team));
  }
}

TeamScheduler::~TeamScheduler() = default;

void TeamScheduler::RunTasks(
    index_t num_tasks, const std::function<int(index_t)>& home_of,
    const std::function<void(WorkerTeam&, index_t)>& run) {
  std::vector<std::vector<index_t>> queues(teams_.size());
  for (index_t task = 0; task < num_tasks; ++task) {
    const int home = home_of(task);
    ATMX_CHECK(home >= 0 && home < num_teams());
    queues[home].push_back(task);
  }
#if defined(ATMX_OBS_ENABLED)
  // Queue-depth balance after home assignment. There is no work stealing
  // — queues are static per the paper's locality-first scheduling — so
  // imbalance here directly bounds the makespan.
  {
    std::size_t min_depth = queues.empty() ? 0 : queues[0].size();
    std::size_t max_depth = min_depth;
    for (const auto& q : queues) {
      min_depth = std::min(min_depth, q.size());
      max_depth = std::max(max_depth, q.size());
    }
    ATMX_COUNTER_ADD("threadpool.tasks", num_tasks);
    ATMX_GAUGE_SET("threadpool.queue_depth.max", max_depth);
    ATMX_GAUGE_SET("threadpool.queue_depth.min", min_depth);
    ATMX_GAUGE_SET("threadpool.queue_depth.imbalance",
                   max_depth > 0
                       ? 1.0 - static_cast<double>(min_depth) /
                                   static_cast<double>(max_depth)
                       : 0.0);
  }
#endif
  // One driver thread per team drains that team's queue; tile
  // multiplications inside a task parallelize over the team's threads.
  std::vector<std::thread> drivers;
  drivers.reserve(teams_.size());
  for (std::size_t t = 0; t < teams_.size(); ++t) {
    drivers.emplace_back([this, t, &queues, &run] {
      for (index_t task : queues[t]) {
        ATMX_TRACE_SPAN_ARGS("sched", "task", {"team", static_cast<int>(t)},
                             {"task", task});
        run(*teams_[t], task);
      }
    });
  }
  for (auto& d : drivers) d.join();
}

}  // namespace atmx
