#include "topology/thread_pool.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <string>

#include "common/check.h"
#include "common/timer.h"
#include "obs/obs.h"
#include "topology/numa_sim.h"

namespace atmx {

namespace {

// Bounded spin before the condvar wait in WorkerLoop. ParallelRun is called
// once per tile pair, so on small tiles the condvar wake latency dominates
// the job itself; a short spin catches back-to-back jobs without burning a
// core when the team is genuinely idle.
constexpr int kWakeSpinIterations = 2048;

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

}  // namespace

WorkerTeam::WorkerTeam(int team_id, int num_threads) : team_id_(team_id) {
  ATMX_CHECK_GE(num_threads, 1);
  threads_.reserve(num_threads - 1);
  for (int i = 1; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

WorkerTeam::~WorkerTeam() {
  {
    MutexLock lock(mutex_);
    shutdown_.store(true, std::memory_order_release);
    generation_.fetch_add(1, std::memory_order_release);
  }
  job_ready_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void WorkerTeam::ParallelRun(const std::function<void(int)>& fn) {
  if (threads_.empty()) {
    fn(0);
    return;
  }
  ATMX_COUNTER_INC("threadpool.parallel_runs");
  {
    MutexLock lock(mutex_);
    job_ = &fn;
    pending_ = static_cast<int>(threads_.size());
    generation_.fetch_add(1, std::memory_order_release);
  }
  job_ready_.NotifyAll();
  fn(0);  // The caller participates as thread 0.
  MutexLock lock(mutex_);
  while (pending_ != 0) job_done_.Wait(mutex_);
  job_ = nullptr;
}

void WorkerTeam::WorkerLoop(int thread_index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    // Spin a bounded number of iterations on the (atomic) generation
    // counter; fall back to the condvar when no job shows up. The wait
    // predicate below re-checks under the mutex, so a generation observed
    // here just makes the wait return immediately.
    for (int spin = 0; spin < kWakeSpinIterations; ++spin) {
      if (shutdown_.load(std::memory_order_acquire) ||
          generation_.load(std::memory_order_acquire) != seen_generation) {
        break;
      }
      CpuRelax();
    }
    const std::function<void(int)>* job = nullptr;
    {
      MutexLock lock(mutex_);
      while (!(shutdown_.load(std::memory_order_relaxed) ||
               generation_.load(std::memory_order_relaxed) !=
                   seen_generation)) {
        job_ready_.Wait(mutex_);
      }
      if (shutdown_.load(std::memory_order_relaxed)) return;
      seen_generation = generation_.load(std::memory_order_relaxed);
      job = job_;
    }
    if (job != nullptr) (*job)(thread_index);
    {
      MutexLock lock(mutex_);
      if (--pending_ == 0) job_done_.NotifyAll();
    }
  }
}

void WorkerTeam::ParallelFor(index_t n, index_t grain,
                             const std::function<void(index_t, index_t)>& fn) {
  if (n <= 0) return;
  ATMX_CHECK_GT(grain, 0);
  if (n <= grain || size() == 1) {
    fn(0, n);
    return;
  }
  std::atomic<index_t> next{0};
  ParallelRun([&](int) {
    for (;;) {
      const index_t begin = next.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) break;
      fn(begin, std::min(begin + grain, n));
    }
  });
}

std::uint64_t ScheduleStats::TotalSteals() const {
  return std::accumulate(stolen_per_team.begin(), stolen_per_team.end(),
                         std::uint64_t{0});
}

double ScheduleStats::MaxBusySeconds() const {
  double m = 0.0;
  for (double s : busy_seconds) m = std::max(m, s);
  return m;
}

double ScheduleStats::TotalBusySeconds() const {
  return std::accumulate(busy_seconds.begin(), busy_seconds.end(), 0.0);
}

double ScheduleStats::MaxCpuSeconds() const {
  double m = 0.0;
  for (double s : cpu_seconds) m = std::max(m, s);
  return m;
}

double ScheduleStats::TotalCpuSeconds() const {
  return std::accumulate(cpu_seconds.begin(), cpu_seconds.end(), 0.0);
}

TeamScheduler::TeamScheduler(int num_teams, int threads_per_team) {
  ATMX_CHECK_GE(num_teams, 1);
  teams_.reserve(num_teams);
  for (int t = 0; t < num_teams; ++t) {
    teams_.push_back(std::make_unique<WorkerTeam>(t, threads_per_team));
  }
}

TeamScheduler::~TeamScheduler() = default;

void TeamScheduler::RunTasks(
    index_t num_tasks, const std::function<int(index_t)>& home_of,
    const std::function<void(WorkerTeam&, index_t)>& run) {
  RunTasks(num_tasks, home_of, run, ScheduleOptions(), nullptr);
}

void TeamScheduler::RunTaskGraph(
    index_t num_tasks, const std::vector<index_t>& dep_count,
    const std::vector<std::vector<index_t>>& successors,
    const std::function<int(index_t)>& home_of,
    const std::function<void(WorkerTeam&, index_t)>& run,
    const ScheduleOptions& options, ScheduleStats* stats_out) {
  const int nt = num_teams();
  ATMX_CHECK_EQ(static_cast<index_t>(dep_count.size()), num_tasks);
  ATMX_CHECK_EQ(static_cast<index_t>(successors.size()), num_tasks);

  // Home teams are fixed up front; home_of runs outside any lock.
  std::vector<int> homes(static_cast<std::size_t>(num_tasks));
  for (index_t task = 0; task < num_tasks; ++task) {
    const int home = home_of(task);
    ATMX_CHECK(home >= 0 && home < nt);
    homes[static_cast<std::size_t>(task)] = home;
  }

  // One mutex for the whole graph state: releases are rare (one lock round
  // per task) next to the tile-sized tasks, and a single lock keeps the
  // ready/dependency protocol trivially race-free.
  struct ParkedTask {
    index_t task;
    std::uint64_t epoch;  // completion epoch when the task was parked
  };
  struct GraphState {
    Mutex mu;
    CondVar ready_cv;
    std::vector<index_t> deps ATMX_GUARDED_BY(mu);
    std::vector<std::deque<index_t>> queues ATMX_GUARDED_BY(mu);
    index_t completed ATMX_GUARDED_BY(mu) = 0;
    // Admission-control state (options.admit only). `parked` holds tasks
    // the gate rejected, oldest first; epochs are non-decreasing front to
    // back (tasks re-park at the then-current epoch), so the front entry
    // alone decides whether any parked task has a pending retry.
    std::deque<ParkedTask> parked ATMX_GUARDED_BY(mu);
    index_t in_flight ATMX_GUARDED_BY(mu) = 0;
    std::uint64_t epoch ATMX_GUARDED_BY(mu) = 0;  // bumped per completion
  };
  // Initially-ready tasks enter in submission order; with a cost model
  // they are re-ordered longest-first like RunTasks, so the expensive
  // sources start immediately and thieves take the cheap tail. Costs are
  // evaluated before any lock exists (cost_of is a caller callback).
  std::vector<index_t> ready;
  for (index_t task = 0; task < num_tasks; ++task) {
    const index_t deps = dep_count[static_cast<std::size_t>(task)];
    ATMX_CHECK_GE(deps, 0);
    if (deps == 0) ready.push_back(task);
  }
  if (options.work_stealing && options.cost_of) {
    std::vector<double> cost(ready.size());
    for (std::size_t i = 0; i < ready.size(); ++i) {
      cost[i] = options.cost_of(ready[i]);
    }
    std::vector<std::size_t> order(ready.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t x, std::size_t y) {
                       return cost[x] > cost[y];
                     });
    std::vector<index_t> sorted(ready.size());
    for (std::size_t i = 0; i < ready.size(); ++i) {
      sorted[i] = ready[order[i]];
    }
    ready = std::move(sorted);
  }

  GraphState state;
  {
    MutexLock lock(state.mu);
    state.deps = dep_count;
    state.queues.resize(static_cast<std::size_t>(nt));
    for (index_t task : ready) {
      state.queues[static_cast<std::size_t>(
                       homes[static_cast<std::size_t>(task)])]
          .push_back(task);
    }
  }

  std::vector<std::vector<int>> victims(static_cast<std::size_t>(nt));
  if (options.work_stealing && nt > 1) {
    for (int t = 0; t < nt; ++t) {
      auto& order = victims[static_cast<std::size_t>(t)];
      for (int v = 0; v < nt; ++v) {
        if (v != t) order.push_back(v);
      }
      std::stable_sort(order.begin(), order.end(), [&](int x, int y) {
        return NumaDistance(t, x, nt) < NumaDistance(t, y, nt);
      });
    }
  }

  ScheduleStats stats;
  stats.executed_per_team.assign(static_cast<std::size_t>(nt), 0);
  stats.stolen_per_team.assign(static_cast<std::size_t>(nt), 0);
  stats.busy_seconds.assign(static_cast<std::size_t>(nt), 0.0);
  stats.cpu_seconds.assign(static_cast<std::size_t>(nt), 0.0);
  WallTimer makespan_timer;
  ATMX_COUNTER_ADD("threadpool.graph_tasks", num_tasks);

  std::vector<std::thread> drivers;
  drivers.reserve(teams_.size());
  for (int t = 0; t < nt; ++t) {
    drivers.emplace_back([&, t] {
      const std::size_t self = static_cast<std::size_t>(t);
      index_t executed = 0;
      index_t stolen = 0;
      double busy = 0.0;
      double cpu = 0.0;
      for (;;) {
        index_t task = -1;
        int source = -1;
        bool forced = false;
        {
          MutexLock lock(state.mu);
          for (;;) {
            // A completed task may have freed resources: retry the oldest
            // parked task before dequeuing new work, at most once per
            // completion epoch (the front entry carries the minimal epoch,
            // so a fresh front means nothing parked is retryable yet).
            if (options.admit && !state.parked.empty() &&
                state.parked.front().epoch < state.epoch) {
              task = state.parked.front().task;
              state.parked.pop_front();
              source = homes[static_cast<std::size_t>(task)];
              break;
            }
            if (!state.queues[self].empty()) {
              task = state.queues[self].front();
              state.queues[self].pop_front();
              source = t;
              break;
            }
            if (options.work_stealing) {
              for (int v : victims[self]) {
                auto& vq = state.queues[static_cast<std::size_t>(v)];
                if (!vq.empty()) {
                  task = vq.back();
                  vq.pop_back();
                  source = v;
                  break;
                }
              }
              if (source >= 0) break;
            }
            if (options.admit && !state.parked.empty() &&
                state.in_flight == 0) {
              bool any_queued = false;
              for (const auto& q : state.queues) {
                if (!q.empty()) any_queued = true;
              }
              if (!any_queued) {
                // Deadlock-free fallback: every ready task is parked and
                // nothing is running that could release resources — admit
                // the oldest parked task unconditionally.
                task = state.parked.front().task;
                state.parked.pop_front();
                source = homes[static_cast<std::size_t>(task)];
                forced = true;
                break;
              }
            }
            if (state.completed == num_tasks) break;
            // Nothing ready anywhere but tasks still in flight: their
            // completions will release successors (or finish the batch).
            state.ready_cv.Wait(state.mu);
          }
          if (source >= 0) ++state.in_flight;
        }
        if (source < 0) break;
        if (options.admit && !options.admit(task, forced)) {
          // Gate rejected (never with forced set): park the task at the
          // current epoch and rejoin the claim loop — if this rejection
          // left nothing in flight, the force branch above fires next.
          MutexLock lock(state.mu);
          --state.in_flight;
          state.parked.push_back({task, state.epoch});
          continue;
        }
        const bool was_stolen = source != t;
        WallTimer task_timer;
        ThreadCpuTimer task_cpu_timer;
        {
          ATMX_TRACE_SPAN_ARGS("sched", "task", {"team", t}, {"task", task},
                               {"home", source},
                               {"stolen", was_stolen ? 1 : 0});
#if defined(ATMX_OBS_ENABLED)
          if (was_stolen) {
            obs::TraceRecorder::Global().RecordInstant(
                "sched", "steal",
                {{"thief", t}, {"victim", source}, {"task", task}});
          }
#endif
          run(*teams_[self], task);
        }
        busy += task_timer.ElapsedSeconds();
        cpu += task_cpu_timer.ElapsedSeconds();
        ++executed;
        if (was_stolen) ++stolen;
        {
          MutexLock lock(state.mu);
          ++state.completed;
          --state.in_flight;
          // A completion is the only event that frees admission resources:
          // bump the epoch so every currently parked task earns one retry.
          ++state.epoch;
          for (index_t succ : successors[static_cast<std::size_t>(task)]) {
            ATMX_CHECK(succ >= 0 && succ < num_tasks);
            index_t& remaining = state.deps[static_cast<std::size_t>(succ)];
            ATMX_CHECK_GT(remaining, 0);
            if (--remaining == 0) {
              // Front of the home queue: the successor consumes this
              // task's freshly produced tile, so run it before colder
              // initially-ready work.
              state.queues[static_cast<std::size_t>(
                               homes[static_cast<std::size_t>(succ)])]
                  .push_front(succ);
            }
          }
        }
        state.ready_cv.NotifyAll();
      }
      stats.executed_per_team[self] = executed;
      stats.stolen_per_team[self] = stolen;
      stats.busy_seconds[self] = busy;
      stats.cpu_seconds[self] = cpu;
    });
  }
  for (auto& d : drivers) d.join();
  stats.makespan_seconds = makespan_timer.ElapsedSeconds();
  {
    MutexLock lock(state.mu);
    // A cyclic graph or inconsistent counts/edges would have deadlocked
    // the drivers above; an unreleased task here means the caller passed
    // counts larger than the edges actually delivered.
    ATMX_CHECK_EQ(state.completed, num_tasks);
    ATMX_CHECK(state.parked.empty());
    ATMX_CHECK_EQ(state.in_flight, 0);
  }
#if defined(ATMX_OBS_ENABLED)
  if (options.work_stealing) {
    ATMX_COUNTER_ADD("threadpool.steals", stats.TotalSteals());
  }
#endif
  if (stats_out != nullptr) *stats_out = std::move(stats);
}

void TeamScheduler::RunTasks(
    index_t num_tasks, const std::function<int(index_t)>& home_of,
    const std::function<void(WorkerTeam&, index_t)>& run,
    const ScheduleOptions& options, ScheduleStats* stats_out) {
  const int nt = num_teams();

  // Mutex-protected deques: the owner pops from the front, thieves pop
  // from the back. Tasks here are whole tile multiplications — coarse
  // enough that a lock per pop is noise next to the task itself, and a
  // mutex keeps the protocol trivially TSan-clean.
  struct TaskQueue {
    Mutex mu;
    std::deque<index_t> q ATMX_GUARDED_BY(mu);
  };
  std::vector<TaskQueue> queues(static_cast<std::size_t>(nt));
  // The population / ordering phase below runs before any driver thread
  // exists, but it still takes the queue locks: uncontended acquisitions
  // are noise next to home_of/cost_of, and the analysis then covers every
  // access uniformly instead of needing an escape hatch.
  for (index_t task = 0; task < num_tasks; ++task) {
    const int home = home_of(task);
    ATMX_CHECK(home >= 0 && home < nt);
    TaskQueue& tq = queues[static_cast<std::size_t>(home)];
    MutexLock lock(tq.mu);
    tq.q.push_back(task);
  }

  // Longest-processing-time-first within each home queue: the expensive
  // head runs home-local first (shrinking the makespan bound), the cheap
  // tail is what thieves take. Stable so equal-cost tasks keep submission
  // order and scheduling stays reproducible.
  if (options.work_stealing && options.cost_of) {
    std::vector<double> cost(static_cast<std::size_t>(num_tasks));
    for (index_t task = 0; task < num_tasks; ++task) {
      cost[static_cast<std::size_t>(task)] = options.cost_of(task);
    }
    for (auto& tq : queues) {
      MutexLock lock(tq.mu);
      std::stable_sort(tq.q.begin(), tq.q.end(),
                       [&](index_t a, index_t b) {
                         return cost[static_cast<std::size_t>(a)] >
                                cost[static_cast<std::size_t>(b)];
                       });
    }
  }

#if defined(ATMX_OBS_ENABLED)
  // Queue-depth balance after home assignment. Without stealing this
  // imbalance directly bounds the makespan; with stealing it is what the
  // steal traffic (threadpool.steals) has to level out.
  {
    std::size_t min_depth = 0;
    std::size_t max_depth = 0;
    bool first_queue = true;
    for (auto& tq : queues) {
      MutexLock lock(tq.mu);
      const std::size_t depth = tq.q.size();
      min_depth = first_queue ? depth : std::min(min_depth, depth);
      max_depth = std::max(max_depth, depth);
      first_queue = false;
    }
    ATMX_COUNTER_ADD("threadpool.tasks", num_tasks);
    ATMX_GAUGE_SET("threadpool.queue_depth.max", max_depth);
    ATMX_GAUGE_SET("threadpool.queue_depth.min", min_depth);
    ATMX_GAUGE_SET("threadpool.queue_depth.imbalance",
                   max_depth > 0
                       ? 1.0 - static_cast<double>(min_depth) /
                                   static_cast<double>(max_depth)
                       : 0.0);
  }
#endif

  // Victim scan order per thief: ascending simulated NUMA distance, ties
  // by node id — so a steal prefers the cheapest remote traffic.
  std::vector<std::vector<int>> victims(static_cast<std::size_t>(nt));
  if (options.work_stealing && nt > 1) {
    for (int t = 0; t < nt; ++t) {
      auto& order = victims[static_cast<std::size_t>(t)];
      for (int v = 0; v < nt; ++v) {
        if (v != t) order.push_back(v);
      }
      std::stable_sort(order.begin(), order.end(), [&](int x, int y) {
        return NumaDistance(t, x, nt) < NumaDistance(t, y, nt);
      });
    }
  }

  ScheduleStats stats;
  stats.executed_per_team.assign(static_cast<std::size_t>(nt), 0);
  stats.stolen_per_team.assign(static_cast<std::size_t>(nt), 0);
  stats.busy_seconds.assign(static_cast<std::size_t>(nt), 0.0);
  stats.cpu_seconds.assign(static_cast<std::size_t>(nt), 0.0);
  std::vector<double> max_task_seconds(static_cast<std::size_t>(nt), 0.0);
  WallTimer makespan_timer;

  // One driver thread per team drains that team's queue (and, when
  // stealing, the tails of its victims); tile multiplications inside a
  // task parallelize over the team's threads.
  std::vector<std::thread> drivers;
  drivers.reserve(teams_.size());
  for (int t = 0; t < nt; ++t) {
    drivers.emplace_back([&, t] {
      const std::size_t self = static_cast<std::size_t>(t);
      index_t executed = 0;
      index_t stolen = 0;
      double busy = 0.0;
      double cpu = 0.0;
      double max_task = 0.0;
      for (;;) {
        index_t task = -1;
        int source = -1;
        {
          TaskQueue& home = queues[self];
          MutexLock lock(home.mu);
          if (!home.q.empty()) {
            task = home.q.front();
            home.q.pop_front();
            source = t;
          }
        }
        if (source < 0 && options.work_stealing) {
          for (int v : victims[self]) {
            TaskQueue& victim = queues[static_cast<std::size_t>(v)];
            MutexLock lock(victim.mu);
            if (!victim.q.empty()) {
              task = victim.q.back();
              victim.q.pop_back();
              source = v;
              break;
            }
          }
        }
        // Tasks never respawn, so observing every queue empty means the
        // batch is fully claimed and this driver can retire.
        if (source < 0) break;
        const bool was_stolen = source != t;
        WallTimer task_timer;
        ThreadCpuTimer task_cpu_timer;
        {
          ATMX_TRACE_SPAN_ARGS("sched", "task", {"team", t}, {"task", task},
                               {"home", source},
                               {"stolen", was_stolen ? 1 : 0});
#if defined(ATMX_OBS_ENABLED)
          if (was_stolen) {
            obs::TraceRecorder::Global().RecordInstant(
                "sched", "steal",
                {{"thief", t}, {"victim", source}, {"task", task}});
          }
#endif
          run(*teams_[self], task);
        }
        const double seconds = task_timer.ElapsedSeconds();
        busy += seconds;
        cpu += task_cpu_timer.ElapsedSeconds();
        max_task = std::max(max_task, seconds);
        ++executed;
        if (was_stolen) ++stolen;
      }
      // Distinct slots per driver — no lock needed.
      stats.executed_per_team[self] = executed;
      stats.stolen_per_team[self] = stolen;
      stats.busy_seconds[self] = busy;
      stats.cpu_seconds[self] = cpu;
      max_task_seconds[self] = max_task;
    });
  }
  for (auto& d : drivers) d.join();
  stats.makespan_seconds = makespan_timer.ElapsedSeconds();

#if defined(ATMX_OBS_ENABLED)
  if (options.work_stealing) {
    ATMX_COUNTER_ADD("threadpool.steals", stats.TotalSteals());
    ATMX_GAUGE_SET("threadpool.makespan_seconds", stats.makespan_seconds);
    // Lower bound on any schedule of these tasks on nt teams: either the
    // perfectly balanced split or the single longest task dominates. A
    // ratio near 1 means stealing got makespan down to the critical path.
    double longest_task = 0.0;
    for (double s : max_task_seconds) {
      longest_task = std::max(longest_task, s);
    }
    const double bound =
        std::max(stats.TotalBusySeconds() / static_cast<double>(nt),
                 longest_task);
    if (bound > 0.0) {
      ATMX_GAUGE_SET("threadpool.makespan_vs_bound",
                     stats.makespan_seconds / bound);
    }
    auto& registry = obs::MetricsRegistry::Global();
    for (int t = 0; t < nt; ++t) {
      registry
          .GetGauge("threadpool.team." + std::to_string(t) + ".busy_seconds")
          .Set(stats.busy_seconds[static_cast<std::size_t>(t)]);
    }
  }
#endif
  if (stats_out != nullptr) *stats_out = std::move(stats);
}

}  // namespace atmx
