#include "topology/numa_sim.h"

#include <sstream>

namespace atmx {

void LocalityStats::Reset() {
  local_read_bytes_.store(0);
  remote_read_bytes_.store(0);
  local_write_bytes_.store(0);
  remote_write_bytes_.store(0);
}

double LocalityStats::LocalFraction() const {
  const std::uint64_t local = local_read_bytes() + local_write_bytes();
  const std::uint64_t remote = remote_read_bytes() + remote_write_bytes();
  const std::uint64_t total = local + remote;
  return total == 0 ? 1.0
                    : static_cast<double>(local) / static_cast<double>(total);
}

std::string LocalityStats::ToString() const {
  std::ostringstream os;
  os << "LocalityStats{local_read=" << local_read_bytes()
     << "B, remote_read=" << remote_read_bytes()
     << "B, local_write=" << local_write_bytes()
     << "B, remote_write=" << remote_write_bytes()
     << "B, local_fraction=" << LocalFraction() << "}";
  return os.str();
}

}  // namespace atmx
