// Explicit model of the machine topology the AT MATRIX adapts to: number of
// NUMA sockets, cores per socket, and last-level cache size.
//
// The paper evaluates on a 4-socket Intel E7-4870 (10 cores/socket, 24 MB
// LLC). This reproduction treats topology as configuration: Detect() probes
// the actual host, and experiments can override any field to study
// topology-dependent behaviour (tile sizing, team formation, placement) on
// machines the paper's hardware is not available on.

#ifndef ATMX_TOPOLOGY_SYSTEM_TOPOLOGY_H_
#define ATMX_TOPOLOGY_SYSTEM_TOPOLOGY_H_

#include <string>

#include "common/config.h"
#include "common/types.h"

namespace atmx {

struct SystemTopology {
  int num_sockets = 1;
  int cores_per_socket = 1;
  index_t llc_bytes = 4 * 1024 * 1024;

  int TotalCores() const { return num_sockets * cores_per_socket; }

  // Probes the host via sysconf/sysfs; falls back to a 1-socket model when
  // information is unavailable.
  static SystemTopology Detect();

  // The paper's evaluation machine (section IV-A): 4 sockets x 10 cores,
  // 24 MB LLC per socket.
  static SystemTopology PaperMachine();

  // Copies the topology fields into an AtmConfig.
  void ApplyTo(AtmConfig* config) const;

  std::string ToString() const;
};

}  // namespace atmx

#endif  // ATMX_TOPOLOGY_SYSTEM_TOPOLOGY_H_
