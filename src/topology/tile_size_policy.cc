#include "topology/tile_size_policy.h"

#include <algorithm>

#include "common/check.h"

namespace atmx {

TileSizePolicy::TileSizePolicy(const AtmConfig& config) {
  ATMX_CHECK_GT(config.llc_bytes, 0);
  ATMX_CHECK_GT(config.alpha, 0);
  ATMX_CHECK_GT(config.beta, 0);

  atomic_block_ = config.AtomicBlockSize();
  max_dense_tile_ = std::max(config.MaxDenseTileSize(), atomic_block_);
  max_sparse_dim_ =
      std::max<index_t>(atomic_block_,
                        config.llc_bytes / (config.beta * kDenseElemBytes));
  // A single atomic block is always a legal tile (tiles cannot be smaller);
  // the bounds below only gate the *melting* of blocks into larger tiles.
  max_sparse_bytes_ = config.llc_bytes / config.alpha;
}

}  // namespace atmx
