#include "gen/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"

namespace atmx {

namespace {

std::uint64_t CoordKey(index_t r, index_t c) {
  return (static_cast<std::uint64_t>(r) << 32) |
         static_cast<std::uint64_t>(c);
}

value_t RandomValue(Rng* rng) { return rng->NextDouble() + 0.5; }

}  // namespace

CooMatrix GenerateUniform(index_t rows, index_t cols, index_t nnz,
                          std::uint64_t seed) {
  ATMX_CHECK_LE(nnz, rows * cols);
  Rng rng(seed);
  CooMatrix coo(rows, cols);
  coo.Reserve(static_cast<std::size_t>(nnz));
  if (nnz > rows * cols / 2) {
    // Dense regime: rejection sampling would thrash; use per-cell
    // Bernoulli with matching expectation instead (approximate count).
    const double p = static_cast<double>(nnz) /
                     (static_cast<double>(rows) * cols);
    for (index_t i = 0; i < rows; ++i) {
      for (index_t j = 0; j < cols; ++j) {
        if (rng.NextDouble() < p) coo.Add(i, j, RandomValue(&rng));
      }
    }
    return coo;
  }
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(nnz) * 2);
  while (static_cast<index_t>(seen.size()) < nnz) {
    const index_t r = static_cast<index_t>(rng.NextBounded(rows));
    const index_t c = static_cast<index_t>(rng.NextBounded(cols));
    if (seen.insert(CoordKey(r, c)).second) {
      coo.Add(r, c, RandomValue(&rng));
    }
  }
  return coo;
}

CooMatrix GenerateBanded(index_t n, index_t bandwidth, double band_density,
                         std::uint64_t seed) {
  ATMX_CHECK_GT(n, 0);
  ATMX_CHECK_GE(bandwidth, 0);
  Rng rng(seed);
  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    const index_t j0 = std::max<index_t>(0, i - bandwidth);
    const index_t j1 = std::min(n, i + bandwidth + 1);
    for (index_t j = j0; j < j1; ++j) {
      if (j == i || rng.NextDouble() < band_density) {
        coo.Add(i, j, RandomValue(&rng));
      }
    }
  }
  return coo;
}

CooMatrix GenerateBandedBlocks(index_t n, index_t bandwidth,
                               double band_density, index_t blocklet,
                               std::uint64_t seed) {
  ATMX_CHECK_GT(blocklet, 0);
  Rng rng(seed);
  CooMatrix coo = GenerateBanded(n, bandwidth, band_density, seed + 1);
  // Dense node blocklets on the diagonal (e.g. 3 dof per FEM node).
  for (index_t s = 0; s + blocklet <= n; s += blocklet) {
    for (index_t i = s; i < s + blocklet; ++i) {
      for (index_t j = s; j < s + blocklet; ++j) {
        coo.Add(i, j, RandomValue(&rng));
      }
    }
  }
  coo.CoalesceDuplicates();
  return coo;
}

CooMatrix GenerateDiagonalDenseBlocks(index_t n, index_t num_blocks,
                                      index_t block_size,
                                      double block_density,
                                      index_t background_nnz,
                                      std::uint64_t seed) {
  ATMX_CHECK_GT(num_blocks, 0);
  ATMX_CHECK_LE(num_blocks * block_size, n);
  Rng rng(seed);
  CooMatrix coo(n, n);
  // Evenly spaced dense diagonal blocks.
  const index_t spacing = n / num_blocks;
  for (index_t bk = 0; bk < num_blocks; ++bk) {
    const index_t s = bk * spacing;
    for (index_t i = s; i < s + block_size; ++i) {
      for (index_t j = s; j < s + block_size; ++j) {
        if (rng.NextDouble() < block_density) {
          coo.Add(i, j, RandomValue(&rng));
        }
      }
    }
  }
  // Uniform background coupling.
  for (index_t e = 0; e < background_nnz; ++e) {
    coo.Add(static_cast<index_t>(rng.NextBounded(n)),
            static_cast<index_t>(rng.NextBounded(n)), RandomValue(&rng));
  }
  coo.CoalesceDuplicates();
  return coo;
}

CooMatrix GenerateHamiltonian(index_t n, index_t num_blocks,
                              double diag_fill, double offdiag_block_prob,
                              double offdiag_fill, std::uint64_t seed) {
  ATMX_CHECK_GT(num_blocks, 0);
  Rng rng(seed);
  CooMatrix coo(n, n);
  // Contiguous shell blocks of varying size (1x, 2x, 3x pattern keeps the
  // structure deterministic but non-uniform, like CI configuration shells).
  std::vector<index_t> bounds = {0};
  {
    double unit = static_cast<double>(n) / (num_blocks * 2.0);
    index_t pos = 0;
    for (index_t b = 0; b < num_blocks && pos < n; ++b) {
      pos += static_cast<index_t>(unit * (1 + (b % 3)));
      bounds.push_back(std::min(pos, n));
    }
    if (bounds.back() != n) bounds.push_back(n);
  }
  const index_t nb = static_cast<index_t>(bounds.size()) - 1;

  auto fill_block = [&](index_t bi, index_t bj, double fill) {
    for (index_t i = bounds[bi]; i < bounds[bi + 1]; ++i) {
      for (index_t j = bounds[bj]; j < bounds[bj + 1]; ++j) {
        if (rng.NextDouble() < fill) coo.Add(i, j, RandomValue(&rng));
      }
    }
  };

  for (index_t b = 0; b < nb; ++b) fill_block(b, b, diag_fill);
  for (index_t bi = 0; bi < nb; ++bi) {
    for (index_t bj = bi + 1; bj < nb; ++bj) {
      if (rng.NextDouble() < offdiag_block_prob) {
        fill_block(bi, bj, offdiag_fill);
        fill_block(bj, bi, offdiag_fill);  // Hamiltonians are symmetric
      }
    }
  }
  coo.CoalesceDuplicates();
  return coo;
}

CooMatrix GenerateScaleFreeCorrelation(index_t n, index_t nnz,
                                       double zipf_exponent,
                                       std::uint64_t seed) {
  ATMX_CHECK_GT(n, 0);
  Rng rng(seed);
  // Chung-Lu sampling from Zipf weights: P(endpoint = i) ~ (i+1)^-e.
  std::vector<double> cdf(n);
  double total = 0.0;
  for (index_t i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i + 1), -zipf_exponent);
    cdf[i] = total;
  }
  auto draw = [&]() {
    const double u = rng.NextDouble() * total;
    return static_cast<index_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
  };

  CooMatrix coo(n, n);
  coo.Reserve(static_cast<std::size_t>(nnz));
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(nnz) * 2);
  while (static_cast<index_t>(seen.size()) < nnz) {
    index_t i = draw();
    index_t j = draw();
    if (!seen.insert(CoordKey(i, j)).second) continue;
    const value_t v = RandomValue(&rng);
    coo.Add(i, j, v);
    // Correlation matrices are symmetric; mirror when the slot is free.
    if (i != j && static_cast<index_t>(seen.size()) < nnz &&
        seen.insert(CoordKey(j, i)).second) {
      coo.Add(j, i, v);
    }
  }
  return coo;
}

DenseMatrix GenerateFullDense(index_t rows, index_t cols,
                              std::uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(rows, cols);
  for (index_t i = 0; i < rows; ++i) {
    for (index_t j = 0; j < cols; ++j) {
      m.At(i, j) = RandomValue(&rng);
    }
  }
  return m;
}

}  // namespace atmx
