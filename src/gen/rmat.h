// R-MAT recursive graph/matrix generator (Chakrabarti, Zhan, Faloutsos
// [30]), used by the paper to create the synthetic G1-G9 matrices with
// controlled skew: parameters {a, b, c, d} give the probability that an
// element falls into the upper-left, upper-right, lower-left, lower-right
// quarter at each recursion level; a == b == c == d yields a near-uniform
// matrix, growing `a` concentrates non-zeros in the upper-left corner.

#ifndef ATMX_GEN_RMAT_H_
#define ATMX_GEN_RMAT_H_

#include <cstdint>

#include "storage/coo_matrix.h"

namespace atmx {

struct RmatParams {
  index_t rows = 0;
  index_t cols = 0;
  index_t nnz = 0;   // number of *distinct* coordinates generated
  double a = 0.25;   // upper-left
  double b = 0.25;   // upper-right
  double c = 0.25;   // lower-left (d = 1 - a - b - c)
  std::uint64_t seed = 42;
  // Probability smoothing (+-10% noise per level) as recommended by the
  // R-MAT authors to avoid artificial self-similarity staircases.
  bool smooth = true;
};

// Generates an R-MAT matrix. Duplicate coordinates are re-drawn until
// exactly `nnz` distinct elements exist (values uniform in [0.5, 1.5)).
CooMatrix GenerateRmat(const RmatParams& params);

}  // namespace atmx

#endif  // ATMX_GEN_RMAT_H_
