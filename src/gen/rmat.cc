#include "gen/rmat.h"

#include <unordered_set>

#include "common/check.h"
#include "common/math_util.h"
#include "common/rng.h"

namespace atmx {

CooMatrix GenerateRmat(const RmatParams& params) {
  ATMX_CHECK_GT(params.rows, 0);
  ATMX_CHECK_GT(params.cols, 0);
  ATMX_CHECK_GE(params.nnz, 0);
  ATMX_CHECK_LE(params.nnz, params.rows * params.cols);
  const double d = 1.0 - params.a - params.b - params.c;
  ATMX_CHECK(params.a >= 0 && params.b >= 0 && params.c >= 0 && d >= -1e-9);

  Rng rng(params.seed);
  CooMatrix coo(params.rows, params.cols);
  coo.Reserve(static_cast<std::size_t>(params.nnz));

  const int levels = CeilLog2(std::max(params.rows, params.cols));
  const index_t side = index_t{1} << levels;

  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(params.nnz * 1.3));

  while (static_cast<index_t>(seen.size()) < params.nnz) {
    index_t r = 0, c = 0;
    index_t half = side / 2;
    for (int level = 0; level < levels; ++level) {
      double pa = params.a, pb = params.b, pc = params.c;
      if (params.smooth) {
        // +-10% multiplicative noise, renormalized.
        const double na = pa * (0.9 + 0.2 * rng.NextDouble());
        const double nb = pb * (0.9 + 0.2 * rng.NextDouble());
        const double nc = pc * (0.9 + 0.2 * rng.NextDouble());
        const double nd = d * (0.9 + 0.2 * rng.NextDouble());
        const double sum = na + nb + nc + nd;
        pa = na / sum;
        pb = nb / sum;
        pc = nc / sum;
      }
      const double u = rng.NextDouble();
      if (u < pa) {
        // upper-left: nothing to add
      } else if (u < pa + pb) {
        c += half;
      } else if (u < pa + pb + pc) {
        r += half;
      } else {
        r += half;
        c += half;
      }
      half /= 2;
    }
    if (r >= params.rows || c >= params.cols) continue;  // padding area
    const std::uint64_t key = (static_cast<std::uint64_t>(r) << 32) |
                              static_cast<std::uint64_t>(c);
    if (!seen.insert(key).second) continue;  // duplicate, re-draw
    coo.Add(r, c, rng.NextDouble() + 0.5);
  }
  return coo;
}

}  // namespace atmx
