// Workload registry reproducing Table I of the paper: the nine real-world
// matrices (as synthetic surrogates of the same non-zero topology class —
// see DESIGN.md, substitutions) and the nine skew-controlled R-MAT
// matrices G1-G9.
//
// Every workload can be generated at a linear scale factor: dimensions
// scale by `scale`, non-zeros by `scale^2`, so the population density and
// topology class of the original are preserved while the suite stays
// runnable on small machines. scale = 1 reproduces the full Table I sizes.

#ifndef ATMX_GEN_WORKLOADS_H_
#define ATMX_GEN_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/coo_matrix.h"

namespace atmx {

struct WorkloadSpec {
  std::string id;      // "R1".."R9", "G1".."G9"
  std::string name;    // e.g. "Hamiltonian1*" (the * marks a surrogate)
  std::string domain;  // Table I matrix domain
  index_t full_dim;    // Table I dimension (square matrices)
  double full_nnz;     // Table I element count
  // R-MAT parameters for the generated matrices (a, b, c; d implied).
  double rmat_a = 0.0;
  double rmat_b = 0.0;
  double rmat_c = 0.0;

  double FullDensity() const {
    return full_nnz /
           (static_cast<double>(full_dim) * static_cast<double>(full_dim));
  }
};

// All 18 Table I workloads in paper order.
const std::vector<WorkloadSpec>& Table1Specs();

// Spec lookup by id; check-fails on unknown ids.
const WorkloadSpec& FindWorkload(const std::string& id);

// Generates the workload matrix at the given linear scale (0 < scale <= 1).
CooMatrix MakeWorkloadMatrix(const std::string& id, double scale,
                             std::uint64_t seed = 0);

// Default scale used by the benchmark suite on laptop-class machines.
double DefaultWorkloadScale();

}  // namespace atmx

#endif  // ATMX_GEN_WORKLOADS_H_
