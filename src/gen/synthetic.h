// Synthetic matrix generators covering the non-zero topology classes of
// the paper's real-world workloads (Table I): banded FEM matrices, block
// matrices with dense substructures, scale-free correlation matrices, and
// plain uniform/dense fillers. All generators are deterministic in the
// seed.

#ifndef ATMX_GEN_SYNTHETIC_H_
#define ATMX_GEN_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "storage/coo_matrix.h"
#include "storage/dense_matrix.h"

namespace atmx {

// `nnz` distinct uniformly distributed elements.
CooMatrix GenerateUniform(index_t rows, index_t cols, index_t nnz,
                          std::uint64_t seed);

// Band matrix: elements only within |i - j| <= bandwidth, filled to the
// given density *within the band* (plus the main diagonal). FEM-style
// uniform hypersparse topology (R7/R9 class).
CooMatrix GenerateBanded(index_t n, index_t bandwidth, double band_density,
                         std::uint64_t seed);

// Structural-mechanics style: banded coupling plus small dense node blocks
// (blocklet x blocklet) along the diagonal (pkustk14 / R8 class).
CooMatrix GenerateBandedBlocks(index_t n, index_t bandwidth,
                               double band_density, index_t blocklet,
                               std::uint64_t seed);

// Dense diagonal blocks (power-network / TSOPF class, R3): num_blocks
// dense blocks of edge block_size on the diagonal with fill
// `block_density`, plus a uniform background of `background_nnz` elements.
CooMatrix GenerateDiagonalDenseBlocks(index_t n, index_t num_blocks,
                                      index_t block_size,
                                      double block_density,
                                      index_t background_nnz,
                                      std::uint64_t seed);

// Hamiltonian-like (nuclear CI, R1/R5/R6 class): dense diagonal blocks of
// varying size plus a fraction of dense off-diagonal coupling blocks.
CooMatrix GenerateHamiltonian(index_t n, index_t num_blocks,
                              double diag_fill, double offdiag_block_prob,
                              double offdiag_fill, std::uint64_t seed);

// Gene-coexpression-like (human_gene / mouse_gene class, R2/R4):
// Chung-Lu-style with Zipf(exponent) weights — hub genes form a dense core
// while the tail stays hypersparse.
CooMatrix GenerateScaleFreeCorrelation(index_t n, index_t nnz,
                                       double zipf_exponent,
                                       std::uint64_t seed);

// Fully populated rectangular matrix with values in [0.5, 1.5).
DenseMatrix GenerateFullDense(index_t rows, index_t cols,
                              std::uint64_t seed);

}  // namespace atmx

#endif  // ATMX_GEN_SYNTHETIC_H_
