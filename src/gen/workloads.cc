#include "gen/workloads.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>

#include "common/check.h"
#include "gen/rmat.h"
#include "gen/synthetic.h"

namespace atmx {

const std::vector<WorkloadSpec>& Table1Specs() {
  static const std::vector<WorkloadSpec>& specs =
      *new std::vector<WorkloadSpec>{
          // Real-world surrogates (Table I upper half).
          {"R1", "Hamiltonian1*", "Nuclear Physics", 17040, 42.95e6},
          {"R2", "human_gene*", "Gene Expr. (BioInf.)", 22283, 24.67e6},
          {"R3", "TSOPF_RS_b2383*", "Power Network (Eng.)", 38120, 32.31e6},
          {"R4", "mouse_gene*", "Gene Expr. (BioInf.)", 45101, 28.97e6},
          {"R5", "Hamiltonian2*", "Nuclear Physics", 52928, 188.93e6},
          {"R6", "Hamiltonian3*", "Nuclear Physics", 77205, 319.30e6},
          {"R7", "barrier2-4*", "Semicond. Device (Eng.)", 113000, 2.13e6},
          {"R8", "pkustk14*", "Structural Problem (Eng.)", 152000, 11.20e6},
          {"R9", "msdoor*", "Structural Problem (Eng.)", 416000, 19.17e6},
          // R-MAT generated matrices (Table I lower half).
          {"G1", "RMAT1", "generated", 100000, 20e6, 0.25, 0.25, 0.25},
          {"G2", "RMAT2", "generated", 100000, 20e6, 0.35, 0.22, 0.22},
          {"G3", "RMAT3", "generated", 100000, 20e6, 0.45, 0.18, 0.18},
          {"G4", "RMAT4", "generated", 100000, 20e6, 0.55, 0.15, 0.15},
          {"G5", "RMAT5", "generated", 100000, 20e6, 0.61, 0.13, 0.13},
          {"G6", "RMAT6", "generated", 100000, 20e6, 0.64, 0.12, 0.12},
          {"G7", "RMAT7", "generated", 100000, 20e6, 0.67, 0.11, 0.11},
          {"G8", "RMAT8", "generated", 100000, 20e6, 0.70, 0.10, 0.10},
          {"G9", "RMAT9", "generated", 100000, 20e6, 0.73, 0.09, 0.09},
      };
  return specs;
}

const WorkloadSpec& FindWorkload(const std::string& id) {
  for (const WorkloadSpec& spec : Table1Specs()) {
    if (spec.id == id) return spec;
  }
  ATMX_CHECK(false);
  static const WorkloadSpec kInvalid{};
  return kInvalid;
}

double DefaultWorkloadScale() { return 0.125; }

CooMatrix MakeWorkloadMatrix(const std::string& id, double scale,
                             std::uint64_t seed) {
  ATMX_CHECK(scale > 0.0 && scale <= 1.0);
  const WorkloadSpec& spec = FindWorkload(id);
  const index_t dim = std::max<index_t>(
      64, static_cast<index_t>(std::llround(spec.full_dim * scale)));
  // Real-world surrogates scale nnz with scale^2 (preserving the density
  // of Table I). The R-MAT series instead scales with scale^1.5 so that
  // the *collision parameter* of the self-product — expected contributions
  // per output cell, (nnz/n)^2 / n — matches the full-scale experiment;
  // the skew-dependent output-size shrinking of Figs. 8a/8c only exists in
  // that regime.
  const bool is_rmat = spec.id[0] == 'G';
  const index_t nnz = std::max<index_t>(
      dim, static_cast<index_t>(spec.full_nnz *
                                (is_rmat ? std::pow(scale, 1.5)
                                         : scale * scale)));
  const std::uint64_t s = seed ^ (std::hash<std::string>{}(id) | 1);
  // Per-row element count; drives band widths of the FEM surrogates.
  const double per_row = static_cast<double>(nnz) / dim;

  if (spec.id == "R1" || spec.id == "R5" || spec.id == "R6") {
    // Nuclear CI Hamiltonians: dense shell blocks, symmetric coupling.
    // Tuned so the realized density tracks Table I (14.8% / 6.7% / 5.4%).
    const double target_rho = spec.FullDensity();
    const index_t num_blocks = spec.id == "R1" ? 10 : 24;
    // Diagonal shells are distinctly dense; couplings carry the rest.
    const double diag_fill = std::min(0.95, target_rho * 4.5);
    const double offdiag_prob = 0.30;
    // Solve the remaining mass: offdiag covers ~ (1 - 1/nb) of the area
    // with probability offdiag_prob.
    const double diag_share = 1.2 / num_blocks;  // varying block sizes
    const double offdiag_fill = std::max(
        0.0, (target_rho - diag_fill * diag_share) /
                 std::max(0.05, offdiag_prob * (1.0 - diag_share)));
    return GenerateHamiltonian(dim, num_blocks, diag_fill, offdiag_prob,
                               std::min(0.9, offdiag_fill), s);
  }
  if (spec.id == "R2" || spec.id == "R4") {
    // Gene co-expression: scale-free hub structure (dense core).
    const double exponent = spec.id == "R2" ? 0.85 : 0.80;
    return GenerateScaleFreeCorrelation(dim, nnz, exponent, s);
  }
  if (spec.id == "R3") {
    // TSOPF power network: many distinctly dense diagonal blocks (Fig. 2).
    const index_t block_size = std::max<index_t>(8, dim / 56);
    // Clamp so the evenly spaced blocks fit even at tiny scales.
    const index_t num_blocks =
        std::max<index_t>(1, std::min<index_t>(40, dim / (2 * block_size)));
    const double fill = std::min(
        0.9, 0.9 * static_cast<double>(nnz) /
                 (static_cast<double>(num_blocks) * block_size * block_size));
    const double in_blocks =
        fill * static_cast<double>(num_blocks) * block_size * block_size;
    const index_t background = std::max<index_t>(
        0, nnz - static_cast<index_t>(in_blocks));
    return GenerateDiagonalDenseBlocks(dim, num_blocks, block_size, fill,
                                       background, s);
  }
  if (spec.id == "R7" || spec.id == "R9") {
    // FEM / device matrices: narrow uniform band, hypersparse.
    const index_t bw = std::max<index_t>(4, static_cast<index_t>(per_row));
    const double band_density = per_row / (2.0 * bw + 1.0);
    return GenerateBanded(dim, bw, std::min(1.0, band_density), s);
  }
  if (spec.id == "R8") {
    // Structural problem: band plus small dense node blocklets.
    const index_t bw =
        std::max<index_t>(6, static_cast<index_t>(per_row * 1.5));
    const index_t blocklet = 6;
    const double band_density =
        std::min(1.0, 0.7 * per_row / (2.0 * bw + 1.0));
    return GenerateBandedBlocks(dim, bw, band_density, blocklet, s);
  }
  // G1..G9: R-MAT.
  RmatParams params;
  params.rows = dim;
  params.cols = dim;
  params.nnz = nnz;
  params.a = spec.rmat_a;
  params.b = spec.rmat_b;
  params.c = spec.rmat_c;
  params.seed = s;
  return GenerateRmat(params);
}

}  // namespace atmx
