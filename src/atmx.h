// Umbrella header: the full public API of the atmatrix library.
// Include individual headers instead when compile time matters.

#ifndef ATMX_ATMX_H_
#define ATMX_ATMX_H_

#include "common/config.h"
#include "common/status.h"
#include "common/types.h"
#include "cost/calibration.h"
#include "cost/cost_model.h"
#include "estimate/density_estimator.h"
#include "estimate/density_map.h"
#include "estimate/water_level.h"
#include "gen/rmat.h"
#include "gen/synthetic.h"
#include "gen/workloads.h"
#include "morton/hilbert.h"
#include "morton/morton.h"
#include "ops/atmult.h"
#include "ops/chain.h"
#include "ops/elementwise.h"
#include "ops/explain.h"
#include "ops/norms.h"
#include "ops/retile.h"
#include "ops/spmv.h"
#include "ops/transpose.h"
#include "storage/convert.h"
#include "storage/coo_matrix.h"
#include "storage/csr_matrix.h"
#include "storage/dense_matrix.h"
#include "storage/matrix_market.h"
#include "storage/serialize.h"
#include "tile/at_matrix.h"
#include "tile/partitioner.h"
#include "topology/system_topology.h"
#include "viz/render.h"

#endif  // ATMX_ATMX_H_
