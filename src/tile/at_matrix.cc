#include "tile/at_matrix.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "storage/convert.h"
#include "validate/debug_hooks.h"

namespace atmx {

ATMatrix::ATMatrix(index_t rows, index_t cols, index_t b_atomic,
                   std::vector<Tile> tiles, DensityMap density_map)
    : rows_(rows),
      cols_(cols),
      b_atomic_(b_atomic),
      tiles_(std::move(tiles)),
      density_map_(std::move(density_map)) {
  nnz_ = 0;
  for (const Tile& t : tiles_) nnz_ += t.nnz();
  BuildBands();
  // Every construction path (partitioner, Retile, AtMult, deserialize) ends
  // here, so one hook covers them all.
  ATMX_VALIDATE_ATM(*this, "ATMatrix construction");
}

double ATMatrix::Density() const {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<double>(nnz_) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

std::size_t ATMatrix::MemoryBytes() const {
  std::size_t total = 0;
  for (const Tile& t : tiles_) total += t.MemoryBytes();
  return total;
}

index_t ATMatrix::NumDenseTiles() const {
  return std::count_if(tiles_.begin(), tiles_.end(),
                       [](const Tile& t) { return t.is_dense(); });
}

index_t ATMatrix::NumSparseTiles() const {
  return num_tiles() - NumDenseTiles();
}

void ATMatrix::BuildBands() {
  row_bounds_ = {0, rows_};
  col_bounds_ = {0, cols_};
  for (const Tile& t : tiles_) {
    row_bounds_.push_back(t.row0());
    row_bounds_.push_back(t.row_end());
    col_bounds_.push_back(t.col0());
    col_bounds_.push_back(t.col_end());
  }
  auto dedupe = [](std::vector<index_t>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  dedupe(row_bounds_);
  dedupe(col_bounds_);

  row_band_tiles_.assign(num_row_bands(), {});
  col_band_tiles_.assign(num_col_bands(), {});
  for (index_t ti = 0; ti < num_tiles(); ++ti) {
    const Tile& t = tiles_[ti];
    const auto rb0 = std::lower_bound(row_bounds_.begin(), row_bounds_.end(),
                                      t.row0()) -
                     row_bounds_.begin();
    const auto rb1 = std::lower_bound(row_bounds_.begin(), row_bounds_.end(),
                                      t.row_end()) -
                     row_bounds_.begin();
    for (auto b = rb0; b < rb1; ++b) row_band_tiles_[b].push_back(ti);
    const auto cb0 = std::lower_bound(col_bounds_.begin(), col_bounds_.end(),
                                      t.col0()) -
                     col_bounds_.begin();
    const auto cb1 = std::lower_bound(col_bounds_.begin(), col_bounds_.end(),
                                      t.col_end()) -
                     col_bounds_.begin();
    for (auto b = cb0; b < cb1; ++b) col_band_tiles_[b].push_back(ti);
  }
  for (auto& band : row_band_tiles_) {
    std::sort(band.begin(), band.end(), [this](index_t a, index_t b) {
      return tiles_[a].col0() < tiles_[b].col0();
    });
  }
  for (auto& band : col_band_tiles_) {
    std::sort(band.begin(), band.end(), [this](index_t a, index_t b) {
      return tiles_[a].row0() < tiles_[b].row0();
    });
  }
}

std::span<const index_t> ATMatrix::TilesInRowBand(index_t band) const {
  ATMX_DCHECK(band >= 0 && band < num_row_bands());
  return row_band_tiles_[band];
}

std::span<const index_t> ATMatrix::TilesInColBand(index_t band) const {
  ATMX_DCHECK(band >= 0 && band < num_col_bands());
  return col_band_tiles_[band];
}

value_t ATMatrix::At(index_t row, index_t col) const {
  ATMX_CHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_);
  const auto band = std::upper_bound(row_bounds_.begin(), row_bounds_.end(),
                                     row) -
                    row_bounds_.begin() - 1;
  for (index_t ti : row_band_tiles_[band]) {
    const Tile& t = tiles_[ti];
    if (col >= t.col0() && col < t.col_end()) return t.At(row, col);
  }
  return 0.0;
}

CsrMatrix ATMatrix::ToCsr() const {
  return CooToCsr(ToCoo());
}

CooMatrix ATMatrix::ToCoo() const {
  CooMatrix coo(rows_, cols_);
  coo.Reserve(static_cast<std::size_t>(nnz_));
  for (const Tile& t : tiles_) {
    if (t.is_dense()) {
      const DenseMatrix& d = t.dense();
      for (index_t i = 0; i < d.rows(); ++i) {
        for (index_t j = 0; j < d.cols(); ++j) {
          if (d.At(i, j) != 0.0) {
            coo.Add(t.row0() + i, t.col0() + j, d.At(i, j));
          }
        }
      }
    } else {
      const CsrMatrix& s = t.sparse();
      for (index_t i = 0; i < s.rows(); ++i) {
        auto cols = s.RowCols(i);
        auto vals = s.RowValues(i);
        for (std::size_t p = 0; p < cols.size(); ++p) {
          coo.Add(t.row0() + i, t.col0() + cols[p], vals[p]);
        }
      }
    }
  }
  return coo;
}

bool ATMatrix::CheckValid() const {
  // Tiles must disjointly cover the full area.
  index_t covered = 0;
  for (const Tile& t : tiles_) {
    if (t.row0() < 0 || t.col0() < 0 || t.row_end() > rows_ ||
        t.col_end() > cols_) {
      return false;
    }
    if (t.rows() <= 0 || t.cols() <= 0) return false;
    covered += t.rows() * t.cols();
  }
  if (covered != rows_ * cols_) return false;
  // Pairwise disjointness via band bookkeeping: within every row band the
  // tiles must tile [0, cols) without overlap.
  for (index_t b = 0; b < num_row_bands(); ++b) {
    index_t expected_col = 0;
    for (index_t ti : row_band_tiles_[b]) {
      const Tile& t = tiles_[ti];
      if (t.col0() != expected_col) return false;
      expected_col = t.col_end();
    }
    if (expected_col != cols_) return false;
  }
  index_t total_nnz = 0;
  for (const Tile& t : tiles_) total_nnz += t.nnz();
  return total_nnz == nnz_;
}

}  // namespace atmx
