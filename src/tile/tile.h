// A matrix tile: the physical unit of the AT MATRIX (section II-B). Each
// tile is the bounding box of a square, power-of-two-aligned region of
// atomic blocks (clipped at the matrix boundary) and stores its elements
// either as a dense row-major array or as a CSR matrix, chosen by the
// read density threshold rho0_R.

#ifndef ATMX_TILE_TILE_H_
#define ATMX_TILE_TILE_H_

#include <cstddef>

#include "common/check.h"
#include "common/types.h"
#include "storage/csr_matrix.h"
#include "storage/dense_matrix.h"

namespace atmx {

enum class TileKind { kSparse, kDense };

const char* TileKindName(TileKind kind);

class Tile {
 public:
  Tile() = default;

  static Tile MakeSparse(index_t row0, index_t col0, CsrMatrix payload);
  static Tile MakeDense(index_t row0, index_t col0, DenseMatrix payload);
  // As MakeDense but with the non-zero count supplied by a caller that
  // already scanned the payload (avoids a second full pass).
  static Tile MakeDenseCounted(index_t row0, index_t col0,
                               DenseMatrix payload, index_t nnz);

  TileKind kind() const { return kind_; }
  bool is_dense() const { return kind_ == TileKind::kDense; }

  // Bounding box in matrix coordinates, [row0, row0+rows) x [col0, ...).
  index_t row0() const { return row0_; }
  index_t col0() const { return col0_; }
  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t row_end() const { return row0_ + rows_; }
  index_t col_end() const { return col0_ + cols_; }

  index_t nnz() const { return nnz_; }
  double Density() const;
  std::size_t MemoryBytes() const;

  const CsrMatrix& sparse() const {
    ATMX_DCHECK(kind_ == TileKind::kSparse);
    return sparse_;
  }
  const DenseMatrix& dense() const {
    ATMX_DCHECK(kind_ == TileKind::kDense);
    return dense_;
  }
  DenseMatrix& mutable_dense() {
    ATMX_DCHECK(kind_ == TileKind::kDense);
    return dense_;
  }
  CsrMatrix& mutable_sparse() {
    ATMX_DCHECK(kind_ == TileKind::kSparse);
    return sparse_;
  }

  // Element lookup in matrix coordinates (must lie inside the tile).
  value_t At(index_t row, index_t col) const;

  // Home NUMA node (assigned round-robin by tile-row, section III-F).
  int home_node() const { return home_node_; }
  void set_home_node(int node) { home_node_ = node; }

 private:
  TileKind kind_ = TileKind::kSparse;
  index_t row0_ = 0;
  index_t col0_ = 0;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t nnz_ = 0;
  int home_node_ = 0;
  CsrMatrix sparse_;
  DenseMatrix dense_;
};

}  // namespace atmx

#endif  // ATMX_TILE_TILE_H_
