#include "tile/partitioner.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/math_util.h"
#include "common/radix_sort.h"
#include "common/timer.h"
#include "morton/morton.h"
#include "obs/obs.h"
#include "storage/convert.h"
#include "topology/tile_size_policy.h"

namespace atmx {

std::string PartitionStats::ToString() const {
  std::ostringstream os;
  os << "PartitionStats{sort=" << sort_seconds
     << "s, blockcnt=" << blockcount_seconds
     << "s, recursion=" << recursion_seconds
     << "s, materialize=" << materialize_seconds
     << "s, dense_tiles=" << dense_tiles << ", sparse_tiles=" << sparse_tiles
     << "}";
  return os.str();
}

namespace {

enum class NodeStatus { kOutOfBounds, kForward, kMaterialized };

struct NodeResult {
  NodeStatus status = NodeStatus::kOutOfBounds;
  index_t nnz = 0;
  bool dense_class = false;
};

struct PartitionContext {
  const CooMatrix* coo = nullptr;                 // Z-sorted entries
  const std::vector<std::uint64_t>* zcodes = nullptr;  // element Z-values
  std::vector<index_t> block_counts;              // Z-ordered; -1 == OOB
  index_t b = 1;                                  // atomic block edge
  int log2_b = 0;
  index_t rows = 0;
  index_t cols = 0;
  double rho_read = 0.25;
  bool allow_dense = true;
  bool allow_melt = true;
  const TileSizePolicy* policy = nullptr;
  std::vector<Tile> tiles;
  AccumulatingTimer materialize_timer;
};

// Geometry of the aligned block square covered by block-Z-range [z0, z1),
// clipped to the matrix bounds.
struct RegionBox {
  index_t r0, c0, rows, cols;
};

RegionBox RegionOf(const PartitionContext& ctx, std::uint64_t z0,
                   std::uint64_t z1) {
  index_t br, bc;
  ZRangeOrigin(z0, &br, &bc);
  const index_t side_blocks = ZRangeSide(z0, z1);
  RegionBox box;
  box.r0 = br * ctx.b;
  box.c0 = bc * ctx.b;
  box.rows = std::min(side_blocks * ctx.b, ctx.rows - box.r0);
  box.cols = std::min(side_blocks * ctx.b, ctx.cols - box.c0);
  return box;
}

// Builds the CSR payload of a tile from its (Morton-contiguous) element
// slice via a counting sort over local rows, then a per-row column sort.
CsrMatrix CsrFromSlice(const CooEntry* entries, index_t count, index_t r0,
                       index_t c0, index_t rows, index_t cols) {
  std::vector<index_t> row_ptr(rows + 1, 0);
  for (index_t e = 0; e < count; ++e) row_ptr[entries[e].row - r0 + 1]++;
  for (index_t i = 0; i < rows; ++i) row_ptr[i + 1] += row_ptr[i];

  std::vector<index_t> col_idx(count);
  std::vector<value_t> values(count);
  std::vector<index_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (index_t e = 0; e < count; ++e) {
    const index_t p = cursor[entries[e].row - r0]++;
    col_idx[p] = entries[e].col - c0;
    values[p] = entries[e].value;
  }
  // Sort columns within each row (paper: sorted at creation time to enable
  // binary column-id search).
  std::vector<std::pair<index_t, value_t>> row_buf;
  for (index_t i = 0; i < rows; ++i) {
    const index_t begin = row_ptr[i];
    const index_t end = row_ptr[i + 1];
    if (end - begin <= 1 ||
        std::is_sorted(col_idx.begin() + begin, col_idx.begin() + end)) {
      continue;
    }
    row_buf.clear();
    for (index_t p = begin; p < end; ++p) {
      row_buf.emplace_back(col_idx[p], values[p]);
    }
    std::sort(row_buf.begin(), row_buf.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (index_t p = begin; p < end; ++p) {
      col_idx[p] = row_buf[p - begin].first;
      values[p] = row_buf[p - begin].second;
    }
  }
  return CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

// Materializes the region [z0, z1) as one tile of the given class.
void MaterializeRegion(PartitionContext* ctx, std::uint64_t z0,
                       std::uint64_t z1, index_t nnz, bool dense_class) {
  ctx->materialize_timer.Resume();
  const RegionBox box = RegionOf(*ctx, z0, z1);
  // Element slice: block range [z0, z1) covers element Z-values
  // [z0 * b^2, z1 * b^2).
  const auto& zcodes = *ctx->zcodes;
  const std::uint64_t e_lo = z0 << (2 * ctx->log2_b);
  const std::uint64_t e_hi = z1 << (2 * ctx->log2_b);
  const auto it_lo = std::lower_bound(zcodes.begin(), zcodes.end(), e_lo);
  const auto it_hi = std::lower_bound(zcodes.begin(), zcodes.end(), e_hi);
  const index_t first = it_lo - zcodes.begin();
  const index_t count = it_hi - it_lo;
  ATMX_CHECK_EQ(count, nnz);
  const CooEntry* slice = ctx->coo->entries().data() + first;

  if (dense_class) {
    DenseMatrix payload(box.rows, box.cols);
    for (index_t e = 0; e < count; ++e) {
      payload.At(slice[e].row - box.r0, slice[e].col - box.c0) +=
          slice[e].value;
    }
    ctx->tiles.push_back(Tile::MakeDense(box.r0, box.c0, std::move(payload)));
  } else {
    ctx->tiles.push_back(Tile::MakeSparse(
        box.r0, box.c0,
        CsrFromSlice(slice, count, box.r0, box.c0, box.rows, box.cols)));
  }
  ctx->materialize_timer.Pause();
}

// Alg. 1, RecQtPart: returns what the region [z0, z1) wants its parent to
// do with it. kForward regions are not yet materialized — the parent may
// melt them with homogeneous siblings; the recursion root materializes any
// region still forwarded at the top.
NodeResult RecQtPart(PartitionContext* ctx, std::uint64_t z0,
                     std::uint64_t z1) {
  if (z1 - z0 == 1) {
    const index_t count = ctx->block_counts[z0];
    if (count < 0) return {NodeStatus::kOutOfBounds, 0, false};
    const RegionBox box = RegionOf(*ctx, z0, z1);
    const double area =
        static_cast<double>(box.rows) * static_cast<double>(box.cols);
    const double rho = area > 0 ? static_cast<double>(count) / area : 0.0;
    const bool dense_class = ctx->allow_dense && rho >= ctx->rho_read;
    return {NodeStatus::kForward, count, dense_class};
  }

  ZQuad quads[4];
  ZSplit(z0, z1, quads);
  NodeResult child[4];
  for (int q = 0; q < 4; ++q) {
    child[q] = RecQtPart(ctx, quads[q].start, quads[q].end);
  }

  // Homogeneity check over the in-bounds children.
  bool any_forward = false;
  bool any_materialized = false;
  bool homogeneous = true;
  index_t total_nnz = 0;
  bool dense_class = false;
  bool first = true;
  for (int q = 0; q < 4; ++q) {
    switch (child[q].status) {
      case NodeStatus::kOutOfBounds:
        continue;
      case NodeStatus::kMaterialized:
        any_materialized = true;
        continue;
      case NodeStatus::kForward:
        total_nnz += child[q].nnz;
        if (first) {
          dense_class = child[q].dense_class;
          first = false;
        } else if (child[q].dense_class != dense_class) {
          homogeneous = false;
        }
        any_forward = true;
        continue;
    }
  }

  if (!any_forward && !any_materialized) {
    return {NodeStatus::kOutOfBounds, 0, false};
  }

  if (ctx->allow_melt && !any_materialized && homogeneous) {
    // Would the melted tile respect the maximum tile bounds (Eq. 1 & 2)?
    const RegionBox box = RegionOf(*ctx, z0, z1);
    const index_t side = std::max(box.rows, box.cols);
    const bool fits = dense_class
                          ? ctx->policy->DenseTileFits(side)
                          : ctx->policy->SparseTileFits(side, total_nnz);
    if (fits) return {NodeStatus::kForward, total_nnz, dense_class};
  }

  // Heterogeneous (or melt-limit hit): materialize every still-forwarded
  // child as its own tile.
  for (int q = 0; q < 4; ++q) {
    if (child[q].status == NodeStatus::kForward) {
      MaterializeRegion(ctx, quads[q].start, quads[q].end, child[q].nnz,
                        child[q].dense_class);
    }
  }
  return {NodeStatus::kMaterialized, total_nnz, false};
}

DensityMap DensityMapFromBlockCounts(const PartitionContext& ctx) {
  DensityMap map(ctx.rows, ctx.cols, ctx.b);
  for (std::uint64_t z = 0; z < ctx.block_counts.size(); ++z) {
    const index_t count = ctx.block_counts[z];
    if (count < 0) continue;
    index_t br, bc;
    MortonDecode(z, &br, &bc);
    if (br >= map.grid_rows() || bc >= map.grid_cols()) continue;
    const double area = static_cast<double>(map.BlockArea(br, bc));
    map.Set(br, bc, area > 0 ? static_cast<double>(count) / area : 0.0);
  }
  return map;
}

// Single-tile representation for TilingMode::kNone.
ATMatrix BuildUnpartitioned(CooMatrix coo, const AtmConfig& config,
                            PartitionStats* stats) {
  const index_t b = config.AtomicBlockSize();
  WallTimer timer;
  DensityMap map = DensityMap::FromCoo(coo, b);
  std::vector<Tile> tiles;
  if (coo.rows() > 0 && coo.cols() > 0) {
    const bool dense_class =
        config.mixed_tiles && coo.Density() >= config.rho_read;
    if (dense_class) {
      tiles.push_back(Tile::MakeDense(0, 0, CooToDense(coo)));
    } else {
      tiles.push_back(Tile::MakeSparse(0, 0, CooToCsr(coo)));
    }
  }
  if (stats != nullptr) {
    stats->materialize_seconds = timer.ElapsedSeconds();
    stats->dense_tiles = !tiles.empty() && tiles[0].is_dense() ? 1 : 0;
    stats->sparse_tiles = static_cast<index_t>(tiles.size()) -
                          stats->dense_tiles;
  }
  ATMatrix atm(coo.rows(), coo.cols(), b, std::move(tiles), std::move(map));
  return atm;
}

void AssignHomeNodes(ATMatrix* atm, int num_nodes) {
  // Round-robin by tile-row band of the tile's first row (section III-F).
  const auto& bounds = atm->row_bounds();
  for (Tile& tile : atm->mutable_tiles()) {
    const auto band = std::lower_bound(bounds.begin(), bounds.end(),
                                       tile.row0()) -
                      bounds.begin();
    tile.set_home_node(static_cast<int>(band % num_nodes));
  }
}

}  // namespace

ATMatrix PartitionToAtm(CooMatrix coo, const AtmConfig& config,
                        PartitionStats* stats) {
  internal::ScopedCheckContext check_ctx(
      "PartitionToAtm %lldx%lld nnz=%lld", static_cast<long long>(coo.rows()),
      static_cast<long long>(coo.cols()), static_cast<long long>(coo.nnz()));
  PartitionStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = PartitionStats();
  ATMX_TRACE_SPAN_ARGS("op", "partition", {"rows", coo.rows()},
                       {"cols", coo.cols()}, {"nnz", coo.nnz()});
  ATMX_COUNTER_INC("partition.calls");

  // Explicit zeros carry no structural information and cannot be
  // represented in dense tiles, so keeping them would desync the density
  // map (which counts entries) from the tile payloads (which store
  // values). Drop them before any counting.
  {
    auto& entries = coo.entries();
    entries.erase(std::remove_if(
                      entries.begin(), entries.end(),
                      [](const CooEntry& e) { return e.value == 0.0; }),
                  entries.end());
  }

  if (coo.rows() == 0 || coo.cols() == 0) {
    return ATMatrix(coo.rows(), coo.cols(), config.AtomicBlockSize(), {},
                    DensityMap(coo.rows(), coo.cols(),
                               config.AtomicBlockSize()));
  }

  if (config.tiling == TilingMode::kNone) {
    ATMatrix atm = BuildUnpartitioned(std::move(coo), config, stats);
    AssignHomeNodes(&atm, config.num_sockets);
    return atm;
  }

  PartitionContext ctx;
  ctx.b = config.AtomicBlockSize();
  ctx.log2_b = FloorLog2(ctx.b);
  ctx.rows = coo.rows();
  ctx.cols = coo.cols();
  ctx.rho_read = config.rho_read;
  ctx.allow_dense = config.mixed_tiles;
  ctx.allow_melt = config.tiling == TilingMode::kAdaptive;
  TileSizePolicy policy(config);
  ctx.policy = &policy;

  // --- 1. Locality-aware element reordering (Z-curve sort). -------------
  WallTimer timer;
  std::vector<std::uint64_t> zcodes(coo.nnz());
  {
    ATMX_TRACE_SPAN("op", "partition_zsort");
    const auto& entries = coo.entries();
    for (index_t e = 0; e < coo.nnz(); ++e) {
      zcodes[e] = MortonEncode(entries[e].row, entries[e].col);
    }
    std::vector<index_t> perm = SortedPermutation(zcodes);
    std::vector<CooEntry> sorted_entries(coo.nnz());
    std::vector<std::uint64_t> sorted_codes(coo.nnz());
    for (index_t e = 0; e < coo.nnz(); ++e) {
      sorted_entries[e] = entries[perm[e]];
      sorted_codes[e] = zcodes[perm[e]];
    }
    coo.entries() = std::move(sorted_entries);
    zcodes = std::move(sorted_codes);
  }
  stats->sort_seconds = timer.ElapsedSeconds();
  ctx.coo = &coo;
  ctx.zcodes = &zcodes;

  // --- 2. ZBlockCnts: per-atomic-block counts in Z-order. ---------------
  timer.Restart();
  {
    ATMX_TRACE_SPAN("op", "partition_blockcounts");
    const index_t z_side = ZSpaceSide(ctx.rows, ctx.cols);
    const index_t grid_side = std::max<index_t>(1, z_side / ctx.b);
    ctx.block_counts.assign(
        static_cast<std::size_t>(grid_side) * grid_side, 0);
    // Mark padding blocks entirely outside the matrix bounds.
    for (std::uint64_t z = 0; z < ctx.block_counts.size(); ++z) {
      index_t br, bc;
      MortonDecode(z, &br, &bc);
      if (br * ctx.b >= ctx.rows || bc * ctx.b >= ctx.cols) {
        ctx.block_counts[z] = -1;
      }
    }
    for (const CooEntry& e : coo.entries()) {
      const std::uint64_t z = MortonEncode(e.row / ctx.b, e.col / ctx.b);
      ATMX_DCHECK(ctx.block_counts[z] >= 0);
      ctx.block_counts[z]++;
    }
  }
  stats->blockcount_seconds = timer.ElapsedSeconds();

  // --- 3. Recursive partitioning + materialization (Alg. 1). ------------
  timer.Restart();
  {
    ATMX_TRACE_SPAN("op", "partition_recurse");
    NodeResult root = RecQtPart(&ctx, 0, ctx.block_counts.size());
    if (root.status == NodeStatus::kForward) {
      MaterializeRegion(&ctx, 0, ctx.block_counts.size(), root.nnz,
                        root.dense_class);
    }
  }
  stats->materialize_seconds = ctx.materialize_timer.TotalSeconds();
  stats->recursion_seconds =
      timer.ElapsedSeconds() - stats->materialize_seconds;

  DensityMap map = DensityMapFromBlockCounts(ctx);
  for (const Tile& t : ctx.tiles) {
    if (t.is_dense()) {
      stats->dense_tiles++;
    } else {
      stats->sparse_tiles++;
    }
  }
  ATMX_COUNTER_ADD("partition.dense_tiles", stats->dense_tiles);
  ATMX_COUNTER_ADD("partition.sparse_tiles", stats->sparse_tiles);

  ATMatrix atm(ctx.rows, ctx.cols, ctx.b, std::move(ctx.tiles),
               std::move(map));
  AssignHomeNodes(&atm, config.num_sockets);
  return atm;
}

ATMatrix AtmFromCsr(const CsrMatrix& csr, const AtmConfig& config,
                    PartitionStats* stats) {
  return PartitionToAtm(CsrToCoo(csr), config, stats);
}

ATMatrix AtmFromDense(const DenseMatrix& dense, const AtmConfig& config,
                      PartitionStats* stats) {
  return PartitionToAtm(DenseToCoo(dense), config, stats);
}

}  // namespace atmx
