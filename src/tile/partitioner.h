// Recursive quadtree partitioning (section II-C, Alg. 1): converts a raw
// staging matrix (COO) into an AT MATRIX. Pipeline:
//   1. locality-aware element reordering along the Z-curve,
//   2. per-atomic-block non-zero counting (ZBlockCnts) with out-of-bounds
//      padding blocks marked,
//   3. bottom-up recursion that melts homogeneous quadrants (same density
//      class, maximum tile bounds of Eq. 1 & 2 not exceeded) and
//      materializes heterogeneous ones into dense or sparse tiles.

#ifndef ATMX_TILE_PARTITIONER_H_
#define ATMX_TILE_PARTITIONER_H_

#include <string>

#include "common/config.h"
#include "storage/coo_matrix.h"
#include "tile/at_matrix.h"

namespace atmx {

// Component timings of the partitioning process (reproduces Fig. 7) plus
// tile census.
struct PartitionStats {
  double sort_seconds = 0.0;         // Z-ordering of the staging table
  double blockcount_seconds = 0.0;   // ZBlockCnts construction
  double recursion_seconds = 0.0;    // quadtree recursion (excl. below)
  double materialize_seconds = 0.0;  // tile materialization (CSR/array)
  index_t dense_tiles = 0;
  index_t sparse_tiles = 0;

  double TotalSeconds() const {
    return sort_seconds + blockcount_seconds + recursion_seconds +
           materialize_seconds;
  }
  std::string ToString() const;
};

// Builds an AT MATRIX from the staging table according to config.tiling:
//   kNone     — a single tile (plain CSR, or dense array if the whole
//               matrix exceeds rho_read and mixed tiles are enabled),
//   kFixed    — a fixed grid of atomic-block tiles (no melting),
//   kAdaptive — full quadtree melting (the AT MATRIX of the paper).
// `coo` is taken by value: partitioning reorders it in place.
ATMatrix PartitionToAtm(CooMatrix coo, const AtmConfig& config,
                        PartitionStats* stats = nullptr);

// Convenience wrappers for the other plain operand types the ATMULT
// operator accepts (section III: "each matrix type can be one of ... dense
// arrays or sparse CSR matrices, or a heterogeneous AT MATRIX").
ATMatrix AtmFromCsr(const CsrMatrix& csr, const AtmConfig& config,
                    PartitionStats* stats = nullptr);
ATMatrix AtmFromDense(const DenseMatrix& dense, const AtmConfig& config,
                      PartitionStats* stats = nullptr);

}  // namespace atmx

#endif  // ATMX_TILE_PARTITIONER_H_
