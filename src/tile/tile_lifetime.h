// Resident-intermediate accounting for fused chain execution (see
// docs/CHAINS.md): intermediate result tiles stay resident only from the
// task that produced them until their last consuming task finishes, and
// this tracker follows that footprint — charging the MemTracker while the
// tiles live, releasing the charge (and the tile payloads themselves) when
// a band of tiles is retired.

#ifndef ATMX_TILE_TILE_LIFETIME_H_
#define ATMX_TILE_TILE_LIFETIME_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "tile/tile.h"

namespace atmx {

// Thread-safe footprint tracker for the tiles of fused-chain
// intermediates. Tasks call Charge() as they produce tiles and Retire()
// when a band's dependency count shows every consumer finished; the peak
// is the largest intermediate working set the fused execution ever held —
// the number the resident_peak_bytes stat and the
// `atmult.fused.resident_bytes_peak` gauge report.
class ResidentTileSet {
 public:
  // Records `bytes` of freshly produced intermediate tiles (also charged
  // to the process MemTracker when the observability layer is built in).
  void Charge(std::uint64_t bytes);

  // Releases the payloads of `tiles[idx]` for idx in `indices` — each
  // tile is replaced by an empty sparse tile with the same bounding box —
  // and uncharges their bytes. Returns the bytes released. Callers must
  // guarantee no concurrent reader of those tiles (the fused executor's
  // dependency edges do).
  std::uint64_t Retire(std::vector<Tile>* tiles,
                       std::span<const index_t> indices);

  // Uncharges without touching any tiles (the root result, whose
  // ownership passes to the caller at the end of the chain).
  void ReleaseCharge(std::uint64_t bytes);

  std::uint64_t current_bytes() const {
    return current_.load(std::memory_order_relaxed);
  }
  std::uint64_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> current_{0};
  std::atomic<std::uint64_t> peak_{0};
};

}  // namespace atmx

#endif  // ATMX_TILE_TILE_LIFETIME_H_
