// Resident-intermediate accounting for fused chain execution (see
// docs/CHAINS.md): intermediate result tiles stay resident only from the
// task that produced them until their last consuming task finishes, and
// this tracker follows that footprint — charging the MemTracker while the
// tiles live, releasing the charge (and the tile payloads themselves) when
// a band of tiles is retired.

#ifndef ATMX_TILE_TILE_LIFETIME_H_
#define ATMX_TILE_TILE_LIFETIME_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "tile/tile.h"

namespace atmx {

// Thread-safe footprint tracker for the tiles of fused-chain
// intermediates. Tasks call Charge() as they produce tiles and Retire()
// when a band's dependency count shows every consumer finished; the peak
// is the largest intermediate working set the fused execution ever held —
// the number the resident_peak_bytes stat and the
// `atmult.fused.resident_bytes_peak` gauge report.
class ResidentTileSet {
 public:
  // Records `bytes` of freshly produced intermediate tiles (also charged
  // to the process MemTracker when the observability layer is built in).
  void Charge(std::uint64_t bytes);

  // Releases the payloads of `tiles[idx]` for idx in `indices` — each
  // tile is replaced by an empty sparse tile with the same bounding box —
  // and uncharges their bytes. Returns the bytes released. Callers must
  // guarantee no concurrent reader of those tiles (the fused executor's
  // dependency edges do).
  std::uint64_t Retire(std::vector<Tile>* tiles,
                       std::span<const index_t> indices);

  // Uncharges without touching any tiles (the root result, whose
  // ownership passes to the caller at the end of the chain).
  void ReleaseCharge(std::uint64_t bytes);

  // --- Admission budget (fused chains under a finite memory SLA) ---
  // Before launching a tile task, the fused executor reserves the task's
  // projected output bytes against the budget; the reservation stays in
  // place until the task finishes (its produced tiles Charge() real bytes
  // meanwhile, so current + reserved briefly double-counts a running
  // task's output — a conservative overestimate, never an undercount).

  // 0 means unlimited: every TryReserve succeeds.
  void set_budget_bytes(std::uint64_t bytes) {
    budget_.store(bytes, std::memory_order_relaxed);
  }
  std::uint64_t budget_bytes() const {
    return budget_.load(std::memory_order_relaxed);
  }

  // Admits `bytes` if charged + reserved + bytes stays within the budget;
  // returns false (reserving nothing) otherwise.
  bool TryReserve(std::uint64_t bytes);

  // Unconditional admission — the deadlock-free fallback for the oldest
  // blocked task when nothing is in flight. May push the projection past
  // the budget; callers count these (`atmult.fused.admission.forced`).
  void ForceReserve(std::uint64_t bytes) {
    reserved_.fetch_add(bytes, std::memory_order_relaxed);
  }

  void ReleaseReservation(std::uint64_t bytes) {
    reserved_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  std::uint64_t current_bytes() const {
    return current_.load(std::memory_order_relaxed);
  }
  std::uint64_t reserved_bytes() const {
    return reserved_.load(std::memory_order_relaxed);
  }
  std::uint64_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> current_{0};
  std::atomic<std::uint64_t> reserved_{0};
  std::atomic<std::uint64_t> peak_{0};
  std::atomic<std::uint64_t> budget_{0};
};

}  // namespace atmx

#endif  // ATMX_TILE_TILE_LIFETIME_H_
