// The Adaptive Tile Matrix (AT MATRIX, section II): a heterogeneous,
// tiled representation of a large matrix, produced by the quadtree
// partitioner (partitioner.h). Tiles are square, power-of-two aligned in
// units of atomic blocks, variable in size, and individually dense or
// sparse.

#ifndef ATMX_TILE_AT_MATRIX_H_
#define ATMX_TILE_AT_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.h"
#include "estimate/density_map.h"
#include "storage/coo_matrix.h"
#include "storage/csr_matrix.h"
#include "tile/tile.h"

namespace atmx {

class ATMatrix {
 public:
  ATMatrix() = default;
  // Assembles an AT MATRIX from materialized tiles. The tiles must
  // partition the rows x cols area (checked in debug builds via nnz
  // bookkeeping; full geometric validation is available via CheckValid).
  ATMatrix(index_t rows, index_t cols, index_t b_atomic,
           std::vector<Tile> tiles, DensityMap density_map);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t b_atomic() const { return b_atomic_; }
  index_t nnz() const { return nnz_; }
  double Density() const;
  std::size_t MemoryBytes() const;

  const std::vector<Tile>& tiles() const { return tiles_; }
  std::vector<Tile>& mutable_tiles() { return tiles_; }
  index_t num_tiles() const { return static_cast<index_t>(tiles_.size()); }
  index_t NumDenseTiles() const;
  index_t NumSparseTiles() const;

  // Per-atomic-block density grid (input to the result estimator).
  const DensityMap& density_map() const { return density_map_; }

  // Row/column band structure: the sorted union of all tile boundaries.
  // Every tile covers each band it intersects completely, which makes the
  // reference-window arithmetic of ATMULT exact.
  const std::vector<index_t>& row_bounds() const { return row_bounds_; }
  const std::vector<index_t>& col_bounds() const { return col_bounds_; }
  index_t num_row_bands() const {
    return static_cast<index_t>(row_bounds_.size()) - 1;
  }
  index_t num_col_bands() const {
    return static_cast<index_t>(col_bounds_.size()) - 1;
  }

  // Tiles intersecting row band `band`, ordered by col0 (they tile the full
  // width). Returned as indices into tiles().
  std::span<const index_t> TilesInRowBand(index_t band) const;
  // Tiles intersecting column band `band`, ordered by row0.
  std::span<const index_t> TilesInColBand(index_t band) const;

  // Element lookup (0.0 for unstored); O(log #tiles) band search.
  value_t At(index_t row, index_t col) const;

  // Lossless exports for verification and interoperability.
  CsrMatrix ToCsr() const;
  CooMatrix ToCoo() const;

  // Structural invariants: tiles disjointly cover the matrix, bands are
  // consistent, nnz bookkeeping adds up.
  bool CheckValid() const;

 private:
  void BuildBands();

  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t b_atomic_ = 1;
  index_t nnz_ = 0;
  std::vector<Tile> tiles_;
  DensityMap density_map_;

  std::vector<index_t> row_bounds_;
  std::vector<index_t> col_bounds_;
  std::vector<std::vector<index_t>> row_band_tiles_;
  std::vector<std::vector<index_t>> col_band_tiles_;
};

}  // namespace atmx

#endif  // ATMX_TILE_AT_MATRIX_H_
