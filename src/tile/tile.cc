#include "tile/tile.h"

#include <utility>

namespace atmx {

const char* TileKindName(TileKind kind) {
  return kind == TileKind::kDense ? "dense" : "sparse";
}

Tile Tile::MakeSparse(index_t row0, index_t col0, CsrMatrix payload) {
  Tile tile;
  tile.kind_ = TileKind::kSparse;
  tile.row0_ = row0;
  tile.col0_ = col0;
  tile.rows_ = payload.rows();
  tile.cols_ = payload.cols();
  tile.nnz_ = payload.nnz();
  tile.sparse_ = std::move(payload);
  return tile;
}

Tile Tile::MakeDense(index_t row0, index_t col0, DenseMatrix payload) {
  const index_t nnz = payload.CountNonZeros();
  return MakeDenseCounted(row0, col0, std::move(payload), nnz);
}

Tile Tile::MakeDenseCounted(index_t row0, index_t col0, DenseMatrix payload,
                            index_t nnz) {
  Tile tile;
  tile.kind_ = TileKind::kDense;
  tile.row0_ = row0;
  tile.col0_ = col0;
  tile.rows_ = payload.rows();
  tile.cols_ = payload.cols();
  tile.nnz_ = nnz;
  tile.dense_ = std::move(payload);
  return tile;
}

double Tile::Density() const {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<double>(nnz_) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

std::size_t Tile::MemoryBytes() const {
  return kind_ == TileKind::kDense ? dense_.MemoryBytes()
                                   : sparse_.MemoryBytes();
}

value_t Tile::At(index_t row, index_t col) const {
  ATMX_DCHECK(row >= row0_ && row < row_end());
  ATMX_DCHECK(col >= col0_ && col < col_end());
  const index_t r = row - row0_;
  const index_t c = col - col0_;
  return kind_ == TileKind::kDense ? dense_.At(r, c) : sparse_.At(r, c);
}

}  // namespace atmx
