#include "tile/tile_lifetime.h"

#include "obs/obs.h"

namespace atmx {

void ResidentTileSet::Charge(std::uint64_t bytes) {
  if (bytes == 0) return;
  const std::uint64_t now =
      current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
#if defined(ATMX_OBS_ENABLED)
  obs::MemTracker::Global().RecordAlloc(bytes);
  ATMX_GAUGE_SET("atmult.fused.resident_bytes", static_cast<double>(now));
#endif
}

bool ResidentTileSet::TryReserve(std::uint64_t bytes) {
  const std::uint64_t budget = budget_.load(std::memory_order_relaxed);
  if (budget == 0) {
    reserved_.fetch_add(bytes, std::memory_order_relaxed);
    return true;
  }
  std::uint64_t reserved = reserved_.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t charged = current_.load(std::memory_order_relaxed);
    if (charged + reserved + bytes > budget) return false;
    if (reserved_.compare_exchange_weak(reserved, reserved + bytes,
                                        std::memory_order_relaxed)) {
      return true;
    }
  }
}

std::uint64_t ResidentTileSet::Retire(std::vector<Tile>* tiles,
                                      std::span<const index_t> indices) {
  std::uint64_t released = 0;
  for (index_t idx : indices) {
    Tile& t = (*tiles)[static_cast<std::size_t>(idx)];
    released += t.MemoryBytes();
    // Keep the bounding box (band bookkeeping may still look at windows)
    // but drop the payload.
    t = Tile::MakeSparse(t.row0(), t.col0(), CsrMatrix(t.rows(), t.cols()));
  }
  ReleaseCharge(released);
  return released;
}

void ResidentTileSet::ReleaseCharge(std::uint64_t bytes) {
  if (bytes == 0) return;
  const std::uint64_t now =
      current_.fetch_sub(bytes, std::memory_order_relaxed) - bytes;
#if defined(ATMX_OBS_ENABLED)
  obs::MemTracker::Global().RecordFree(bytes);
  ATMX_GAUGE_SET("atmult.fused.resident_bytes", static_cast<double>(now));
#else
  (void)now;
#endif
}

}  // namespace atmx
