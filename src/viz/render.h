// Text and PGM renderers for tile layouts and density maps — the
// reproduction of the paper's Fig. 2 panels (AT MATRIX layout at different
// granularities, estimated vs. actual result density).

#ifndef ATMX_VIZ_RENDER_H_
#define ATMX_VIZ_RENDER_H_

#include <string>

#include "common/status.h"
#include "estimate/density_map.h"
#include "tile/at_matrix.h"

namespace atmx {

// ASCII rendering of a density map: one character per (downsampled) block,
// ' ' for empty through '@' for full; `max_cells` bounds the output edge.
std::string RenderDensityMapAscii(const DensityMap& map,
                                  index_t max_cells = 64);

// ASCII rendering of the tile layout: grid cells show tile interiors
// ('#' dense tiles, '.'/':'/'+' sparse by density, ' ' empty) and tile
// boundaries are implied by homogeneous regions; includes a legend line.
std::string RenderTileLayoutAscii(const ATMatrix& atm,
                                  index_t max_cells = 64);

// Grayscale PGM (P2) of a density map, one pixel per block. Darker pixels
// mean denser blocks, like the paper's figures.
[[nodiscard]] Status WriteDensityMapPgm(const DensityMap& map, const std::string& path);

// PGM of the tile layout: sparse tiles render their density in gray, dense
// tiles render a diagonal hatch pattern (as in Fig. 2), tile borders are
// drawn black.
[[nodiscard]] Status WriteTileLayoutPgm(const ATMatrix& atm, const std::string& path,
                          index_t pixels_per_block = 4);

}  // namespace atmx

#endif  // ATMX_VIZ_RENDER_H_
