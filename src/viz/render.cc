#include "viz/render.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/math_util.h"

namespace atmx {

namespace {

char DensityGlyph(double rho) {
  static constexpr char kRamp[] = {' ', '.', ':', '+', 'o', 'x', '%', '@'};
  if (rho <= 0.0) return kRamp[0];
  const int idx = std::min<int>(7, 1 + static_cast<int>(rho * 7.0));
  return kRamp[idx];
}

}  // namespace

std::string RenderDensityMapAscii(const DensityMap& map, index_t max_cells) {
  if (map.grid_rows() == 0 || map.grid_cols() == 0) return "(empty)\n";
  const index_t step_r = CeilDiv(map.grid_rows(), max_cells);
  const index_t step_c = CeilDiv(map.grid_cols(), max_cells);
  std::ostringstream os;
  for (index_t bi = 0; bi < map.grid_rows(); bi += step_r) {
    for (index_t bj = 0; bj < map.grid_cols(); bj += step_c) {
      const double rho = map.RegionDensity(bi, bj, step_r, step_c);
      os << DensityGlyph(rho);
    }
    os << '\n';
  }
  return os.str();
}

std::string RenderTileLayoutAscii(const ATMatrix& atm, index_t max_cells) {
  if (atm.rows() == 0 || atm.cols() == 0) return "(empty)\n";
  const index_t cell_rows = std::min(max_cells, atm.rows());
  const index_t cell_cols = std::min(max_cells, atm.cols());
  std::vector<std::string> canvas(cell_rows, std::string(cell_cols, ' '));

  for (const Tile& t : atm.tiles()) {
    const index_t r0 = t.row0() * cell_rows / atm.rows();
    const index_t r1 =
        std::max(r0 + 1, t.row_end() * cell_rows / atm.rows());
    const index_t c0 = t.col0() * cell_cols / atm.cols();
    const index_t c1 =
        std::max(c0 + 1, t.col_end() * cell_cols / atm.cols());
    const char glyph = t.is_dense() ? '#' : DensityGlyph(t.Density());
    for (index_t r = r0; r < std::min(r1, cell_rows); ++r) {
      for (index_t c = c0; c < std::min(c1, cell_cols); ++c) {
        canvas[r][c] = glyph;
      }
    }
  }
  std::ostringstream os;
  for (const auto& line : canvas) os << line << '\n';
  os << "legend: '#'=dense tile, ' .:+ox%@'=sparse tile density ramp\n";
  return os.str();
}

Status WriteDensityMapPgm(const DensityMap& map, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  out << "P2\n" << map.grid_cols() << ' ' << map.grid_rows() << "\n255\n";
  for (index_t bi = 0; bi < map.grid_rows(); ++bi) {
    for (index_t bj = 0; bj < map.grid_cols(); ++bj) {
      // Dark = dense. Gamma lift so faint blocks stay visible.
      const double rho = std::clamp(map.At(bi, bj), 0.0, 1.0);
      const int gray =
          255 - static_cast<int>(255.0 * std::pow(rho, 0.35));
      out << gray << (bj + 1 < map.grid_cols() ? ' ' : '\n');
    }
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

Status WriteTileLayoutPgm(const ATMatrix& atm, const std::string& path,
                          index_t pixels_per_block) {
  const index_t block = atm.b_atomic();
  const index_t width =
      CeilDiv(atm.cols(), block) * pixels_per_block;
  const index_t height =
      CeilDiv(atm.rows(), block) * pixels_per_block;
  if (width <= 0 || height <= 0) {
    return Status::InvalidArgument("empty matrix");
  }
  std::vector<int> pixels(static_cast<std::size_t>(width) * height, 255);

  auto px = [&](index_t r, index_t c) -> int& {
    return pixels[static_cast<std::size_t>(r) * width + c];
  };

  for (const Tile& t : atm.tiles()) {
    const index_t r0 = t.row0() / block * pixels_per_block;
    const index_t c0 = t.col0() / block * pixels_per_block;
    const index_t r1 = CeilDiv(t.row_end(), block) * pixels_per_block;
    const index_t c1 = CeilDiv(t.col_end(), block) * pixels_per_block;
    if (t.is_dense()) {
      // Diagonal hatch, as in the paper's Fig. 2.
      for (index_t r = r0; r < r1; ++r) {
        for (index_t c = c0; c < c1; ++c) {
          px(r, c) = ((r + c) % 3 == 0) ? 0 : 200;
        }
      }
    } else {
      const double rho = std::clamp(t.Density(), 0.0, 1.0);
      const int gray =
          255 - static_cast<int>(255.0 * std::pow(rho, 0.35));
      for (index_t r = r0; r < r1; ++r) {
        for (index_t c = c0; c < c1; ++c) px(r, c) = gray;
      }
    }
    // Tile border.
    for (index_t r = r0; r < r1; ++r) {
      px(r, c0) = 0;
      px(r, c1 - 1) = 0;
    }
    for (index_t c = c0; c < c1; ++c) {
      px(r0, c) = 0;
      px(r1 - 1, c) = 0;
    }
  }

  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  out << "P2\n" << width << ' ' << height << "\n255\n";
  for (index_t r = 0; r < height; ++r) {
    for (index_t c = 0; c < width; ++c) {
      out << pixels[static_cast<std::size_t>(r) * width + c]
          << (c + 1 < width ? ' ' : '\n');
    }
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace atmx
