#include "validate/validate.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <utility>
#include <vector>

#include "common/math_util.h"
#include "topology/tile_size_policy.h"

namespace atmx {

namespace {

template <typename... Args>
std::string Cat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

std::string TileLabel(index_t idx, const Tile& t) {
  return Cat("tile #", idx, " [", t.row0(), ",", t.row_end(), ")x[", t.col0(),
             ",", t.col_end(), ") ", TileKindName(t.kind()));
}

}  // namespace

Status ValidateCsr(const CsrMatrix& m) {
  if (m.rows() < 0 || m.cols() < 0) {
    return Status::InvalidArgument(
        Cat("csr: negative shape ", m.rows(), "x", m.cols()));
  }
  const auto& row_ptr = m.row_ptr();
  const auto& col_idx = m.col_idx();
  const auto& values = m.values();
  if (static_cast<index_t>(row_ptr.size()) != m.rows() + 1) {
    return Status::InvalidArgument(Cat("csr: row_ptr has ", row_ptr.size(),
                                       " entries, want rows+1 = ",
                                       m.rows() + 1));
  }
  if (row_ptr.front() != 0) {
    return Status::InvalidArgument(
        Cat("csr: row_ptr[0] = ", row_ptr.front(), ", want 0"));
  }
  if (col_idx.size() != values.size()) {
    return Status::InvalidArgument(Cat("csr: ", col_idx.size(),
                                       " column ids vs ", values.size(),
                                       " values"));
  }
  if (row_ptr.back() != static_cast<index_t>(values.size())) {
    return Status::InvalidArgument(Cat("csr: row_ptr ends at ",
                                       row_ptr.back(), ", want nnz = ",
                                       values.size()));
  }
  for (index_t i = 0; i < m.rows(); ++i) {
    const index_t begin = row_ptr[i];
    const index_t end = row_ptr[i + 1];
    if (begin > end) {
      return Status::InvalidArgument(Cat("csr: non-monotone row_ptr at row ",
                                         i, ": ", begin, " > ", end));
    }
    if (begin < 0 || end > static_cast<index_t>(values.size())) {
      return Status::InvalidArgument(
          Cat("csr: row_ptr range [", begin, ",", end,
              ") of row ", i, " outside [0,", values.size(), "]"));
    }
    for (index_t p = begin; p < end; ++p) {
      if (col_idx[p] < 0 || col_idx[p] >= m.cols()) {
        return Status::OutOfRange(Cat("csr: column id ", col_idx[p],
                                      " at row ", i, " outside [0,",
                                      m.cols(), ")"));
      }
      if (p > begin && col_idx[p - 1] >= col_idx[p]) {
        return Status::InvalidArgument(
            Cat("csr: row ", i, " columns not strictly increasing: ",
                col_idx[p - 1], " then ", col_idx[p]));
      }
      if (!std::isfinite(values[p])) {
        return Status::InvalidArgument(
            Cat("csr: non-finite value at row ", i, ", col ", col_idx[p]));
      }
    }
  }
  return Status::Ok();
}

Status ValidateCoo(const CooMatrix& m, bool allow_duplicates) {
  if (m.rows() < 0 || m.cols() < 0) {
    return Status::InvalidArgument(
        Cat("coo: negative shape ", m.rows(), "x", m.cols()));
  }
  for (std::size_t e = 0; e < m.entries().size(); ++e) {
    const CooEntry& entry = m.entries()[e];
    if (entry.row < 0 || entry.row >= m.rows() || entry.col < 0 ||
        entry.col >= m.cols()) {
      return Status::OutOfRange(Cat("coo: entry #", e, " at (", entry.row,
                                    ",", entry.col, ") outside ", m.rows(),
                                    "x", m.cols()));
    }
    if (!std::isfinite(entry.value)) {
      return Status::InvalidArgument(Cat("coo: non-finite value at (",
                                         entry.row, ",", entry.col, ")"));
    }
  }
  if (!allow_duplicates && m.nnz() > 1) {
    std::vector<std::pair<index_t, index_t>> coords;
    coords.reserve(m.entries().size());
    for (const CooEntry& entry : m.entries()) {
      coords.emplace_back(entry.row, entry.col);
    }
    std::sort(coords.begin(), coords.end());
    const auto dup = std::adjacent_find(coords.begin(), coords.end());
    if (dup != coords.end()) {
      return Status::InvalidArgument(Cat("coo: duplicate coordinate (",
                                         dup->first, ",", dup->second, ")"));
    }
  }
  return Status::Ok();
}

Status ValidateDense(const DenseMatrix& m) {
  if (m.rows() < 0 || m.cols() < 0) {
    return Status::InvalidArgument(
        Cat("dense: negative shape ", m.rows(), "x", m.cols()));
  }
  const value_t* data = m.data();
  const std::size_t n =
      static_cast<std::size_t>(m.rows()) * static_cast<std::size_t>(m.cols());
  for (std::size_t p = 0; p < n; ++p) {
    if (!std::isfinite(data[p])) {
      return Status::InvalidArgument(
          Cat("dense: non-finite value at (", p / m.cols(), ",", p % m.cols(),
              ")"));
    }
  }
  return Status::Ok();
}

Status ValidateDensityMap(const DensityMap& map) {
  if (map.rows() < 0 || map.cols() < 0) {
    return Status::InvalidArgument(
        Cat("density map: negative shape ", map.rows(), "x", map.cols()));
  }
  if (map.block() < 1) {
    return Status::InvalidArgument(
        Cat("density map: block size ", map.block(), " < 1"));
  }
  const index_t want_rows =
      map.rows() > 0 ? CeilDiv(map.rows(), map.block()) : 0;
  const index_t want_cols =
      map.cols() > 0 ? CeilDiv(map.cols(), map.block()) : 0;
  if (map.grid_rows() != want_rows || map.grid_cols() != want_cols) {
    return Status::InvalidArgument(
        Cat("density map: grid ", map.grid_rows(), "x", map.grid_cols(),
            ", want ", want_rows, "x", want_cols, " for ", map.rows(), "x",
            map.cols(), " at block ", map.block()));
  }
  if (static_cast<index_t>(map.values().size()) != want_rows * want_cols) {
    return Status::InvalidArgument(Cat("density map: ", map.values().size(),
                                       " cells, want ",
                                       want_rows * want_cols));
  }
  for (index_t bi = 0; bi < map.grid_rows(); ++bi) {
    for (index_t bj = 0; bj < map.grid_cols(); ++bj) {
      const double d = map.At(bi, bj);
      if (!std::isfinite(d) || d < 0.0 || d > 1.0 + 1e-9) {
        return Status::OutOfRange(Cat("density map: cell (", bi, ",", bj,
                                      ") = ", d, " outside [0, 1]"));
      }
    }
  }
  return Status::Ok();
}

namespace {

// Per-tile payload checks (shape match, deep payload validity, nnz
// bookkeeping).
Status ValidateTilePayload(index_t idx, const Tile& t, bool deep) {
  if (t.is_dense()) {
    const DenseMatrix& d = t.dense();
    if (d.rows() != t.rows() || d.cols() != t.cols()) {
      return Status::InvalidArgument(
          Cat(TileLabel(idx, t), ": payload shape ", d.rows(), "x", d.cols(),
              " != tile extent"));
    }
    if (deep) {
      ATMX_RETURN_IF_ERROR(ValidateDense(d));
      const index_t actual = d.CountNonZeros();
      if (actual != t.nnz()) {
        return Status::InvalidArgument(Cat(TileLabel(idx, t), ": stored nnz ",
                                           t.nnz(), " != payload nnz ",
                                           actual));
      }
    }
  } else {
    const CsrMatrix& s = t.sparse();
    if (s.rows() != t.rows() || s.cols() != t.cols()) {
      return Status::InvalidArgument(
          Cat(TileLabel(idx, t), ": payload shape ", s.rows(), "x", s.cols(),
              " != tile extent"));
    }
    if (s.nnz() != t.nnz()) {
      return Status::InvalidArgument(Cat(TileLabel(idx, t), ": stored nnz ",
                                         t.nnz(), " != payload nnz ",
                                         s.nnz()));
    }
    if (deep) ATMX_RETURN_IF_ERROR(ValidateCsr(s));
  }
  return Status::Ok();
}

// Exact cover: between every pair of consecutive row boundaries the
// intersecting tiles must tile [0, cols) contiguously. Boundaries are
// derived from the tiles themselves so stale band bookkeeping inside the
// ATMatrix cannot mask a gap or an overlap.
Status ValidateCoverage(const ATMatrix& m) {
  if (m.rows() == 0 || m.cols() == 0) {
    if (m.num_tiles() != 0) {
      return Status::InvalidArgument(
          Cat("atm: ", m.num_tiles(), " tiles on an empty ", m.rows(), "x",
              m.cols(), " matrix"));
    }
    return Status::Ok();
  }
  std::vector<index_t> bounds = {0, m.rows()};
  for (const Tile& t : m.tiles()) {
    bounds.push_back(t.row0());
    bounds.push_back(t.row_end());
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  struct Span {
    index_t col0, col_end, idx;
  };
  std::vector<Span> spans;
  for (std::size_t b = 0; b + 1 < bounds.size(); ++b) {
    const index_t y0 = bounds[b];
    const index_t y1 = bounds[b + 1];
    spans.clear();
    for (index_t ti = 0; ti < m.num_tiles(); ++ti) {
      const Tile& t = m.tiles()[ti];
      if (t.row0() <= y0 && t.row_end() >= y1) {
        spans.push_back({t.col0(), t.col_end(), ti});
      } else if (t.row0() < y1 && t.row_end() > y0) {
        return Status::Internal(
            Cat(TileLabel(ti, t), ": partially covers row band [", y0, ",",
                y1, ") despite boundary derivation"));
      }
    }
    std::sort(spans.begin(), spans.end(),
              [](const Span& a, const Span& b) { return a.col0 < b.col0; });
    index_t expected = 0;
    for (const Span& s : spans) {
      if (s.col0 < expected) {
        return Status::InvalidArgument(
            Cat(TileLabel(s.idx, m.tiles()[s.idx]),
                ": overlaps a neighbor in row band [", y0, ",", y1, ")"));
      }
      if (s.col0 > expected) {
        return Status::InvalidArgument(Cat("atm: row band [", y0, ",", y1,
                                           ") uncovered in columns [",
                                           expected, ",", s.col0, ")"));
      }
      expected = s.col_end;
    }
    if (expected != m.cols()) {
      return Status::InvalidArgument(Cat("atm: row band [", y0, ",", y1,
                                         ") uncovered in columns [", expected,
                                         ",", m.cols(), ")"));
    }
  }

  // The ATMatrix's own band index must agree with the derived boundaries
  // (it goes stale when tiles are mutated without reconstruction).
  if (bounds != m.row_bounds()) {
    return Status::InvalidArgument(
        "atm: row band bookkeeping out of sync with tile extents");
  }
  return Status::Ok();
}

// Density-map cell counts must equal the recounted per-block non-zeros.
Status ValidateDensityCounts(const ATMatrix& m, double tolerance) {
  const DensityMap& map = m.density_map();
  const index_t b = m.b_atomic();
  std::vector<index_t> counts(
      static_cast<std::size_t>(map.grid_rows()) * map.grid_cols(), 0);
  const auto bump = [&](index_t row, index_t col) {
    counts[(row / b) * map.grid_cols() + col / b]++;
  };
  for (const Tile& t : m.tiles()) {
    if (t.is_dense()) {
      const DenseMatrix& d = t.dense();
      for (index_t i = 0; i < d.rows(); ++i) {
        for (index_t j = 0; j < d.cols(); ++j) {
          if (d.At(i, j) != 0.0) bump(t.row0() + i, t.col0() + j);
        }
      }
    } else {
      const CsrMatrix& s = t.sparse();
      for (index_t i = 0; i < s.rows(); ++i) {
        for (index_t col : s.RowCols(i)) bump(t.row0() + i, t.col0() + col);
      }
    }
  }
  for (index_t bi = 0; bi < map.grid_rows(); ++bi) {
    for (index_t bj = 0; bj < map.grid_cols(); ++bj) {
      const double expected =
          map.At(bi, bj) * static_cast<double>(map.BlockArea(bi, bj));
      const double actual =
          static_cast<double>(counts[bi * map.grid_cols() + bj]);
      if (std::abs(expected - actual) >
          tolerance * std::max(1.0, actual)) {
        return Status::InvalidArgument(
            Cat("atm: density map cell (", bi, ",", bj, ") implies ",
                expected, " non-zeros, tiles hold ", actual));
      }
    }
  }
  return Status::Ok();
}

// Quadtree geometry: each tile is the boundary clip of a square,
// power-of-two block region aligned to its own (unclipped) side.
Status ValidateQuadtreeGeometry(const ATMatrix& m) {
  const index_t b = m.b_atomic();
  for (index_t ti = 0; ti < m.num_tiles(); ++ti) {
    const Tile& t = m.tiles()[ti];
    const index_t extent = std::max(t.rows(), t.cols());
    const index_t side = NextPowerOfTwo(CeilDiv(extent, b)) * b;
    if (t.row0() % side != 0 || t.col0() % side != 0) {
      return Status::InvalidArgument(
          Cat(TileLabel(ti, t), ": origin not aligned to quadtree side ",
              side));
    }
    if (t.rows() != std::min(side, m.rows() - t.row0()) ||
        t.cols() != std::min(side, m.cols() - t.col0())) {
      return Status::InvalidArgument(
          Cat(TileLabel(ti, t),
              ": extent is not the boundary clip of a square side-", side,
              " quadtree region"));
    }
  }
  return Status::Ok();
}

// Config-derived invariants: Eq. 1 & 2 maximum tile bounds for melted
// (multi-block) tiles and the dense/sparse kind vs rho0_R.
Status ValidateConfigBounds(const ATMatrix& m, const AtmConfig& config) {
  const TileSizePolicy policy(config);
  for (index_t ti = 0; ti < m.num_tiles(); ++ti) {
    const Tile& t = m.tiles()[ti];
    const index_t side = std::max(t.rows(), t.cols());
    if (side > m.b_atomic()) {
      // Single atomic blocks are materialized unconditionally; only melted
      // regions were admitted under the Eq. 1 & 2 bounds.
      if (t.is_dense() && !policy.DenseTileFits(side)) {
        return Status::InvalidArgument(
            Cat(TileLabel(ti, t), ": dense side ", side,
                " exceeds Eq. 1 maximum ", policy.max_dense_tile()));
      }
      if (!t.is_dense() && !policy.SparseTileFits(side, t.nnz())) {
        return Status::InvalidArgument(
            Cat(TileLabel(ti, t), ": sparse tile (side ", side, ", nnz ",
                t.nnz(), ") exceeds the Eq. 2 bounds (max side ",
                policy.max_sparse_dim(), ", max bytes ",
                policy.max_sparse_bytes(), ")"));
      }
    }
    if (config.mixed_tiles && t.rows() > 0 && t.cols() > 0) {
      const double rho = t.Density();
      if (t.is_dense() && rho < config.rho_read - 1e-12) {
        return Status::InvalidArgument(
            Cat(TileLabel(ti, t), ": dense storage but density ", rho,
                " < rho_read ", config.rho_read));
      }
      if (!t.is_dense() && rho >= config.rho_read + 1e-12) {
        return Status::InvalidArgument(
            Cat(TileLabel(ti, t), ": sparse storage but density ", rho,
                " >= rho_read ", config.rho_read));
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Status ValidateAtMatrix(const ATMatrix& m, const AtmValidateOptions& options) {
  if (m.rows() < 0 || m.cols() < 0) {
    return Status::InvalidArgument(
        Cat("atm: negative shape ", m.rows(), "x", m.cols()));
  }
  if (!IsPowerOfTwo(m.b_atomic())) {
    return Status::InvalidArgument(
        Cat("atm: b_atomic ", m.b_atomic(), " is not a power of two"));
  }

  ATMX_RETURN_IF_ERROR(ValidateDensityMap(m.density_map()));
  if (m.density_map().rows() != m.rows() ||
      m.density_map().cols() != m.cols() ||
      m.density_map().block() != m.b_atomic()) {
    return Status::InvalidArgument(
        Cat("atm: density map covers ", m.density_map().rows(), "x",
            m.density_map().cols(), " at block ", m.density_map().block(),
            ", matrix is ", m.rows(), "x", m.cols(), " at block ",
            m.b_atomic()));
  }

  index_t total_nnz = 0;
  for (index_t ti = 0; ti < m.num_tiles(); ++ti) {
    const Tile& t = m.tiles()[ti];
    if (t.rows() <= 0 || t.cols() <= 0) {
      return Status::InvalidArgument(
          Cat(TileLabel(ti, t), ": empty extent"));
    }
    if (t.row0() < 0 || t.col0() < 0 || t.row_end() > m.rows() ||
        t.col_end() > m.cols()) {
      return Status::OutOfRange(
          Cat(TileLabel(ti, t), ": outside the ", m.rows(), "x", m.cols(),
              " matrix"));
    }
    ATMX_RETURN_IF_ERROR(ValidateTilePayload(ti, t, options.deep));
    total_nnz += t.nnz();
  }
  if (total_nnz != m.nnz()) {
    return Status::InvalidArgument(Cat("atm: tile nnz sums to ", total_nnz,
                                       ", matrix records ", m.nnz()));
  }

  ATMX_RETURN_IF_ERROR(ValidateCoverage(m));

  if (options.deep) {
    ATMX_RETURN_IF_ERROR(
        ValidateDensityCounts(m, options.density_count_tolerance));
  }
  if (options.quadtree_geometry) {
    ATMX_RETURN_IF_ERROR(ValidateQuadtreeGeometry(m));
  }
  if (options.config != nullptr) {
    ATMX_RETURN_IF_ERROR(ValidateConfigBounds(m, *options.config));
  }
  return Status::Ok();
}

}  // namespace atmx
