// Structural invariant validators (the correctness-tooling layer).
//
// Every storage representation documents invariants its consumers rely on —
// CSR column-sortedness enables the binary-search reference windows of
// section III-B, quadtree tile geometry bounds come from Eq. 1 & 2, and the
// density map must agree with the tile payloads for the result estimator to
// be exact. The ATMX_CHECK macros guard *local* programming errors; these
// validators deep-check whole structures and report violations as Status
// errors, so corrupt data (a bad file, a buggy construction path, a fuzzed
// mutation) is diagnosed instead of causing UB downstream.
//
// See docs/VALIDATION.md for the full list of invariants each validator
// enforces and how the ATMX_VALIDATE_DEBUG hooks wire them into debug
// builds.

#ifndef ATMX_VALIDATE_VALIDATE_H_
#define ATMX_VALIDATE_VALIDATE_H_

#include "common/config.h"
#include "common/status.h"
#include "estimate/density_map.h"
#include "storage/coo_matrix.h"
#include "storage/csr_matrix.h"
#include "storage/dense_matrix.h"
#include "tile/at_matrix.h"

namespace atmx {

// CSR invariants: row_ptr has rows+1 entries, starts at 0, is monotone and
// ends at nnz; col_idx/values are the same length; within every row the
// column ids are strictly increasing (sorted, no duplicates) and in
// [0, cols); all values are finite.
[[nodiscard]] Status ValidateCsr(const CsrMatrix& m);

// COO invariants: every entry lies inside the matrix bounds and its value
// is finite. With `allow_duplicates == false` (the default) repeated
// (row, col) coordinates are an error — staging tables that intentionally
// carry duplicates should be checked after CoalesceDuplicates().
[[nodiscard]] Status ValidateCoo(const CooMatrix& m, bool allow_duplicates = false);

// Dense invariants: non-negative shape and finite values (NaN/Inf indicate
// an uninitialized or corrupted payload).
[[nodiscard]] Status ValidateDense(const DenseMatrix& m);

// Density-map invariants: positive block size, grid dimensions matching
// ceil(rows/block) x ceil(cols/block), and every cell a finite density in
// [0, 1].
[[nodiscard]] Status ValidateDensityMap(const DensityMap& map);

// Options for ValidateAtMatrix. The default options check what every
// ATMatrix must satisfy regardless of how it was built; the opt-in flags
// add invariants that only hold for specific construction paths.
struct AtmValidateOptions {
  // O(nnz) payload checks: per-tile ValidateCsr/ValidateDense, exact nnz
  // recounts, and the density-map-vs-payload count comparison. Disable for
  // a cheap geometry-only pass on huge matrices.
  bool deep = true;

  // Partitioner-output geometry (sections II-B/II-C): every tile is the
  // boundary-clipped box of a square, power-of-two-sized region of atomic
  // blocks, aligned to its own size in the quadtree grid. Retiled and
  // ATMULT-result matrices are legitimately rectangular, so this is off by
  // default.
  bool quadtree_geometry = false;

  // When set, enforces the config-derived invariants: melted tiles respect
  // the maximum tile bounds of Eq. 1 & 2 (tiles no larger than one atomic
  // block are exempt — leaves are materialized unconditionally), and, with
  // config->mixed_tiles, the storage kind of every tile is consistent with
  // its density vs rho0_R (config->rho_read).
  const AtmConfig* config = nullptr;

  // Absolute slack when comparing density-map cell counts against the
  // recounted per-block non-zeros (densities are stored as count / area,
  // so the product is exact up to rounding).
  double density_count_tolerance = 1e-6;
};

// AT MATRIX invariants: consistent shape and power-of-two b_atomic, every
// tile in bounds with a payload matching its extent, tiles covering the
// matrix exactly once (no gap, no overlap), band bookkeeping in sync with
// the tiles, nnz accounting adding up, a density map of matching geometry
// whose cell counts equal the actual per-block non-zeros, plus the opt-in
// checks described on AtmValidateOptions.
[[nodiscard]] Status ValidateAtMatrix(const ATMatrix& m,
                        const AtmValidateOptions& options = {});

}  // namespace atmx

#endif  // ATMX_VALIDATE_VALIDATE_H_
