#include "validate/debug_hooks.h"

#include <cstdio>
#include <cstdlib>

#include "validate/validate.h"

namespace atmx::validate_debug {

namespace {

thread_local int disable_depth = 0;

[[noreturn]] void HookFailed(const char* what, const char* where,
                             const Status& status) {
  std::fprintf(stderr, "ATMX_VALIDATE_DEBUG: %s invalid after %s: %s\n", what,
               where, status.ToString().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace

bool CompiledIn() {
#ifdef ATMX_VALIDATE_DEBUG
  return true;
#else
  return false;
#endif
}

bool Enabled() { return CompiledIn() && disable_depth == 0; }

ScopedDisableValidation::ScopedDisableValidation() { ++disable_depth; }

ScopedDisableValidation::~ScopedDisableValidation() { --disable_depth; }

void CheckAtm(const ATMatrix& m, const char* where) {
  if (!Enabled()) return;
  // The hook itself builds temporaries; never re-enter.
  ScopedDisableValidation guard;
  const Status status = ValidateAtMatrix(m);
  if (!status.ok()) HookFailed("ATMatrix", where, status);
}

void CheckCsr(const CsrMatrix& m, const char* where) {
  if (!Enabled()) return;
  ScopedDisableValidation guard;
  const Status status = ValidateCsr(m);
  if (!status.ok()) HookFailed("CsrMatrix", where, status);
}

}  // namespace atmx::validate_debug
