// Debug wiring for the structural validators: when the library is compiled
// with ATMX_VALIDATE_DEBUG (a CMake option, ON by default in Debug builds),
// the construction paths — ATMatrix assembly, Retile, the CSR conversions,
// and the ATMULT result — re-validate their outputs and abort with the
// precise violation on failure. Release builds compile the hooks away.
//
// Tests that intentionally build corrupt structures (the validator fuzz
// harness, serialization error paths) suspend the hooks on their thread
// with ScopedDisableValidation.

#ifndef ATMX_VALIDATE_DEBUG_HOOKS_H_
#define ATMX_VALIDATE_DEBUG_HOOKS_H_

namespace atmx {

class ATMatrix;
class CsrMatrix;

namespace validate_debug {

// True when the library was compiled with the debug-validation hooks.
bool CompiledIn();

// True when hooks are active on this thread (compiled in and not
// suspended).
bool Enabled();

// Suspends the debug-validation hooks on the current thread for the
// guard's lifetime. Nestable.
class ScopedDisableValidation {
 public:
  ScopedDisableValidation();
  ~ScopedDisableValidation();

  ScopedDisableValidation(const ScopedDisableValidation&) = delete;
  ScopedDisableValidation& operator=(const ScopedDisableValidation&) = delete;
};

// Hook bodies: validate and abort (via ATMX_CHECK machinery) on violation.
// `where` names the construction path for the failure message.
void CheckAtm(const ATMatrix& m, const char* where);
void CheckCsr(const CsrMatrix& m, const char* where);

}  // namespace validate_debug
}  // namespace atmx

#ifdef ATMX_VALIDATE_DEBUG
#define ATMX_VALIDATE_ATM(m, where) ::atmx::validate_debug::CheckAtm(m, where)
#define ATMX_VALIDATE_CSR(m, where) ::atmx::validate_debug::CheckCsr(m, where)
#else
#define ATMX_VALIDATE_ATM(m, where) \
  do {                              \
  } while (false)
#define ATMX_VALIDATE_CSR(m, where) \
  do {                              \
  } while (false)
#endif

#endif  // ATMX_VALIDATE_DEBUG_HOOKS_H_
