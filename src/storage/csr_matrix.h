// Compressed sparse row (CSR) matrix. Column indices inside each row are
// kept sorted at creation time so that column ranges can be located with a
// binary search — the prerequisite for referenced submatrix multiplication
// on sparse tiles (section III-B).

#ifndef ATMX_STORAGE_CSR_MATRIX_H_
#define ATMX_STORAGE_CSR_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace atmx {

class CsrMatrix {
 public:
  CsrMatrix() = default;
  // Empty matrix of the given shape (all rows empty).
  CsrMatrix(index_t rows, index_t cols);
  // Takes ownership of prebuilt CSR arrays. row_ptr must have rows+1
  // monotone entries; col_idx must be sorted within each row.
  CsrMatrix(index_t rows, index_t cols, std::vector<index_t> row_ptr,
            std::vector<index_t> col_idx, std::vector<value_t> values);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return static_cast<index_t>(values_.size()); }
  double Density() const;

  const std::vector<index_t>& row_ptr() const { return row_ptr_; }
  const std::vector<index_t>& col_idx() const { return col_idx_; }
  const std::vector<value_t>& values() const { return values_; }
  // Mutable access to the stored values (the pattern stays fixed); used by
  // in-place element-wise updates.
  std::vector<value_t>& mutable_values() { return values_; }

  index_t RowNnz(index_t i) const {
    ATMX_DCHECK(i >= 0 && i < rows_);
    return row_ptr_[i + 1] - row_ptr_[i];
  }

  std::span<const index_t> RowCols(index_t i) const {
    return {col_idx_.data() + row_ptr_[i],
            static_cast<std::size_t>(RowNnz(i))};
  }
  std::span<const value_t> RowValues(index_t i) const {
    return {values_.data() + row_ptr_[i], static_cast<std::size_t>(RowNnz(i))};
  }

  // Positions [first, last) within row i whose column ids fall into
  // [col_begin, col_end). Binary search (rows are column-sorted).
  void RowColRange(index_t i, index_t col_begin, index_t col_end,
                   index_t* first, index_t* last) const;

  // Value at (i, j), 0 if not stored. Binary search within the row.
  value_t At(index_t i, index_t j) const;

  // Exact element count inside the window [r0, r1) x [c0, c1).
  index_t CountNnzInWindow(index_t r0, index_t r1, index_t c0,
                           index_t c1) const;

  // Memory footprint: S_sp = 16 bytes per element (value + column index)
  // plus the row pointer array.
  std::size_t MemoryBytes() const;

  // Internal consistency check (monotone row_ptr, sorted in-range columns).
  bool CheckValid() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> row_ptr_;   // rows_ + 1 entries
  std::vector<index_t> col_idx_;   // nnz entries, sorted per row
  std::vector<value_t> values_;    // nnz entries
};

// Incremental CSR builder: rows must be appended in order; columns within a
// row need not be pre-sorted (sorted on FinishRow).
class CsrBuilder {
 public:
  CsrBuilder(index_t rows, index_t cols);

  void Reserve(std::size_t nnz);

  // Appends (col, value) to the current row.
  void Append(index_t col, value_t value);

  // Closes the current row (sorts its columns) and advances to row
  // `next_row`; intermediate rows stay empty.
  void FinishRowsUpTo(index_t next_row);

  // Finalizes remaining rows and returns the matrix.
  CsrMatrix Build();

 private:
  index_t rows_;
  index_t cols_;
  index_t current_row_ = 0;
  std::vector<index_t> row_ptr_;
  std::vector<index_t> col_idx_;
  std::vector<value_t> values_;
};

}  // namespace atmx

#endif  // ATMX_STORAGE_CSR_MATRIX_H_
