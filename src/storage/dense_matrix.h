// Row-major dense matrix plus non-owning views with an explicit leading
// dimension (lda), mirroring the BLAS gemm convention the paper relies on
// for referenced submatrix multiplication (section III-B).

#ifndef ATMX_STORAGE_DENSE_MATRIX_H_
#define ATMX_STORAGE_DENSE_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace atmx {

// Read-only window into a row-major array: element (i, j) of the view is
// data[i * ld + j].
struct DenseView {
  const value_t* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 0;

  value_t At(index_t i, index_t j) const {
    ATMX_DCHECK(i >= 0 && i < rows && j >= 0 && j < cols);
    return data[i * ld + j];
  }

  const value_t* RowPtr(index_t i) const { return data + i * ld; }

  // Sub-window [r0, r0+nr) x [c0, c0+nc).
  DenseView Window(index_t r0, index_t c0, index_t nr, index_t nc) const;
};

// Mutable counterpart of DenseView.
struct DenseMutView {
  value_t* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 0;

  value_t& At(index_t i, index_t j) const {
    ATMX_DCHECK(i >= 0 && i < rows && j >= 0 && j < cols);
    return data[i * ld + j];
  }

  value_t* RowPtr(index_t i) const { return data + i * ld; }

  DenseMutView Window(index_t r0, index_t c0, index_t nr, index_t nc) const;
  DenseView AsConst() const { return {data, rows, cols, ld}; }
};

// Owning row-major dense matrix.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  // Allocates a zero-initialized rows x cols matrix.
  DenseMatrix(index_t rows, index_t cols);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t ld() const { return cols_; }

  value_t At(index_t i, index_t j) const {
    ATMX_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }
  value_t& At(index_t i, index_t j) {
    ATMX_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }

  const value_t* data() const { return data_.data(); }
  value_t* data() { return data_.data(); }

  DenseView View() const { return {data_.data(), rows_, cols_, cols_}; }
  DenseMutView MutView() { return {data_.data(), rows_, cols_, cols_}; }

  // Number of non-zero elements (exact scan).
  index_t CountNonZeros() const;
  double Density() const;

  std::size_t MemoryBytes() const { return data_.size() * sizeof(value_t); }

  void Fill(value_t v);

  friend bool operator==(const DenseMatrix&, const DenseMatrix&) = default;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<value_t> data_;
};

// Max |a(i,j) - b(i,j)|; matrices must have identical shapes.
double MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b);

}  // namespace atmx

#endif  // ATMX_STORAGE_DENSE_MATRIX_H_
