#include "storage/convert.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"
#include "validate/debug_hooks.h"

namespace atmx {

CsrMatrix CooToCsr(const CooMatrix& coo) {
  const index_t rows = coo.rows();
  const index_t nnz = coo.nnz();
  std::vector<index_t> row_ptr(rows + 1, 0);
  for (const CooEntry& e : coo.entries()) row_ptr[e.row + 1]++;
  for (index_t i = 0; i < rows; ++i) row_ptr[i + 1] += row_ptr[i];

  std::vector<index_t> col_idx(nnz);
  std::vector<value_t> values(nnz);
  std::vector<index_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (const CooEntry& e : coo.entries()) {
    const index_t p = cursor[e.row]++;
    col_idx[p] = e.col;
    values[p] = e.value;
  }

  // Sort columns within each row and sum duplicates.
  index_t out = 0;
  std::vector<index_t> new_row_ptr(rows + 1, 0);
  std::vector<std::pair<index_t, value_t>> row_buf;
  for (index_t i = 0; i < rows; ++i) {
    const index_t begin = row_ptr[i];
    const index_t end = row_ptr[i + 1];
    row_buf.clear();
    for (index_t p = begin; p < end; ++p) {
      row_buf.emplace_back(col_idx[p], values[p]);
    }
    std::sort(row_buf.begin(), row_buf.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t k = 0; k < row_buf.size();) {
      index_t col = row_buf[k].first;
      value_t sum = 0.0;
      while (k < row_buf.size() && row_buf[k].first == col) {
        sum += row_buf[k].second;
        ++k;
      }
      col_idx[out] = col;
      values[out] = sum;
      ++out;
    }
    new_row_ptr[i + 1] = out;
  }
  col_idx.resize(out);
  values.resize(out);
  CsrMatrix csr(rows, coo.cols(), std::move(new_row_ptr), std::move(col_idx),
                std::move(values));
  ATMX_VALIDATE_CSR(csr, "CooToCsr");
  return csr;
}

DenseMatrix CooToDense(const CooMatrix& coo) {
  DenseMatrix dense(coo.rows(), coo.cols());
  for (const CooEntry& e : coo.entries()) dense.At(e.row, e.col) += e.value;
  return dense;
}

DenseMatrix CsrToDense(const CsrMatrix& csr) {
  return CsrWindowToDense(csr, 0, csr.rows(), 0, csr.cols());
}

DenseMatrix CsrWindowToDense(const CsrMatrix& csr, index_t r0, index_t r1,
                             index_t c0, index_t c1) {
  ATMX_CHECK(r0 >= 0 && r1 <= csr.rows() && r0 <= r1);
  ATMX_CHECK(c0 >= 0 && c1 <= csr.cols() && c0 <= c1);
  DenseMatrix dense(r1 - r0, c1 - c0);
  const auto& col_idx = csr.col_idx();
  const auto& values = csr.values();
  for (index_t i = r0; i < r1; ++i) {
    index_t first, last;
    csr.RowColRange(i, c0, c1, &first, &last);
    value_t* out_row = dense.data() + (i - r0) * dense.ld();
    for (index_t p = first; p < last; ++p) {
      out_row[col_idx[p] - c0] = values[p];
    }
  }
  return dense;
}

CsrMatrix DenseToCsr(const DenseMatrix& dense) {
  return DenseWindowToCsr(dense.View());
}

CsrMatrix DenseWindowToCsr(const DenseView& view) {
  CsrBuilder builder(view.rows, view.cols);
  for (index_t i = 0; i < view.rows; ++i) {
    const value_t* row = view.RowPtr(i);
    for (index_t j = 0; j < view.cols; ++j) {
      if (row[j] != 0.0) builder.Append(j, row[j]);
    }
    builder.FinishRowsUpTo(i + 1);
  }
  CsrMatrix csr = builder.Build();
  ATMX_VALIDATE_CSR(csr, "DenseWindowToCsr");
  return csr;
}

CooMatrix CsrToCoo(const CsrMatrix& csr) {
  CooMatrix coo(csr.rows(), csr.cols());
  coo.Reserve(csr.nnz());
  for (index_t i = 0; i < csr.rows(); ++i) {
    auto cols = csr.RowCols(i);
    auto vals = csr.RowValues(i);
    for (std::size_t p = 0; p < cols.size(); ++p) {
      coo.Add(i, cols[p], vals[p]);
    }
  }
  return coo;
}

CooMatrix DenseToCoo(const DenseMatrix& dense) {
  CooMatrix coo(dense.rows(), dense.cols());
  for (index_t i = 0; i < dense.rows(); ++i) {
    for (index_t j = 0; j < dense.cols(); ++j) {
      if (dense.At(i, j) != 0.0) coo.Add(i, j, dense.At(i, j));
    }
  }
  return coo;
}

}  // namespace atmx
