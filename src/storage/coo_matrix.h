// Coordinate (triple) matrix format. Used as the unordered staging
// representation the partitioner loads raw matrices into (section II-C1),
// and as the interchange format of the generators and MatrixMarket I/O.

#ifndef ATMX_STORAGE_COO_MATRIX_H_
#define ATMX_STORAGE_COO_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace atmx {

struct CooEntry {
  index_t row;
  index_t col;
  value_t value;

  friend bool operator==(const CooEntry&, const CooEntry&) = default;
};

class CooMatrix {
 public:
  CooMatrix() = default;
  CooMatrix(index_t rows, index_t cols);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t nnz() const { return static_cast<index_t>(entries_.size()); }
  double Density() const;

  // Binary size of the <int,int,double> triple layout reported in Table I.
  std::size_t TripleBytes() const { return entries_.size() * 16; }

  const std::vector<CooEntry>& entries() const { return entries_; }
  std::vector<CooEntry>& entries() { return entries_; }

  // Appends an entry; coordinates must lie inside the matrix bounds.
  void Add(index_t row, index_t col, value_t value);

  void Reserve(std::size_t n) { entries_.reserve(n); }

  // Sorts entries by the Z-value (Morton code) of their coordinates —
  // the locality-aware element reordering of section II-C1.
  void SortByMorton();

  // Sorts entries row-major (row, then column).
  void SortRowMajor();

  // Sums duplicate coordinates into a single entry (requires no particular
  // input order; output is row-major sorted).
  void CoalesceDuplicates();

  // True if entries are sorted by Morton code.
  bool IsMortonSorted() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<CooEntry> entries_;
};

}  // namespace atmx

#endif  // ATMX_STORAGE_COO_MATRIX_H_
