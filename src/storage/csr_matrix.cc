#include "storage/csr_matrix.h"

#include <algorithm>
#include <numeric>
#include <utility>

namespace atmx {

CsrMatrix::CsrMatrix(index_t rows, index_t cols)
    : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {
  ATMX_CHECK_GE(rows, 0);
  ATMX_CHECK_GE(cols, 0);
}

CsrMatrix::CsrMatrix(index_t rows, index_t cols, std::vector<index_t> row_ptr,
                     std::vector<index_t> col_idx, std::vector<value_t> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  ATMX_CHECK_EQ(static_cast<index_t>(row_ptr_.size()), rows_ + 1);
  ATMX_CHECK_EQ(col_idx_.size(), values_.size());
  ATMX_CHECK_EQ(row_ptr_.back(), static_cast<index_t>(values_.size()));
}

double CsrMatrix::Density() const {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<double>(nnz()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

void CsrMatrix::RowColRange(index_t i, index_t col_begin, index_t col_end,
                            index_t* first, index_t* last) const {
  ATMX_DCHECK(i >= 0 && i < rows_);
  const index_t* base = col_idx_.data();
  const index_t* lo = base + row_ptr_[i];
  const index_t* hi = base + row_ptr_[i + 1];
  *first = std::lower_bound(lo, hi, col_begin) - base;
  *last = std::lower_bound(lo, hi, col_end) - base;
}

value_t CsrMatrix::At(index_t i, index_t j) const {
  index_t first, last;
  RowColRange(i, j, j + 1, &first, &last);
  return first < last ? values_[first] : 0.0;
}

index_t CsrMatrix::CountNnzInWindow(index_t r0, index_t r1, index_t c0,
                                    index_t c1) const {
  index_t count = 0;
  for (index_t i = r0; i < r1; ++i) {
    index_t first, last;
    RowColRange(i, c0, c1, &first, &last);
    count += last - first;
  }
  return count;
}

std::size_t CsrMatrix::MemoryBytes() const {
  return values_.size() * kSparseElemBytes +
         row_ptr_.size() * sizeof(index_t);
}

bool CsrMatrix::CheckValid() const {
  if (static_cast<index_t>(row_ptr_.size()) != rows_ + 1) return false;
  if (row_ptr_.front() != 0) return false;
  if (row_ptr_.back() != nnz()) return false;
  for (index_t i = 0; i < rows_; ++i) {
    if (row_ptr_[i] > row_ptr_[i + 1]) return false;
    for (index_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      if (col_idx_[p] < 0 || col_idx_[p] >= cols_) return false;
      if (p > row_ptr_[i] && col_idx_[p - 1] >= col_idx_[p]) return false;
    }
  }
  return true;
}

CsrBuilder::CsrBuilder(index_t rows, index_t cols)
    : rows_(rows), cols_(cols) {
  ATMX_CHECK_GE(rows, 0);
  ATMX_CHECK_GE(cols, 0);
  row_ptr_.reserve(rows + 1);
  row_ptr_.push_back(0);
}

void CsrBuilder::Reserve(std::size_t nnz) {
  col_idx_.reserve(nnz);
  values_.reserve(nnz);
}

void CsrBuilder::Append(index_t col, value_t value) {
  ATMX_DCHECK(col >= 0 && col < cols_);
  col_idx_.push_back(col);
  values_.push_back(value);
}

void CsrBuilder::FinishRowsUpTo(index_t next_row) {
  ATMX_CHECK(next_row > current_row_ && next_row <= rows_);
  // Sort the just-finished row's columns (values move along).
  const index_t begin = row_ptr_.back();
  const index_t end = static_cast<index_t>(col_idx_.size());
  if (end - begin > 1) {
    // Sort index permutation, then apply. Rows are short in practice
    // (bounded by the tile width), so the temporary is small.
    std::vector<index_t> perm(end - begin);
    std::iota(perm.begin(), perm.end(), 0);
    const index_t* cols_base = col_idx_.data() + begin;
    const bool sorted =
        std::is_sorted(cols_base, cols_base + (end - begin));
    if (!sorted) {
      std::sort(perm.begin(), perm.end(), [&](index_t a, index_t b) {
        return cols_base[a] < cols_base[b];
      });
      std::vector<index_t> tmp_cols(end - begin);
      std::vector<value_t> tmp_vals(end - begin);
      for (index_t k = 0; k < end - begin; ++k) {
        tmp_cols[k] = col_idx_[begin + perm[k]];
        tmp_vals[k] = values_[begin + perm[k]];
      }
      std::copy(tmp_cols.begin(), tmp_cols.end(), col_idx_.begin() + begin);
      std::copy(tmp_vals.begin(), tmp_vals.end(), values_.begin() + begin);
    }
  }
  while (current_row_ < next_row) {
    ++current_row_;
    row_ptr_.push_back(end);
  }
  // All but the first of the advanced rows are empty; fix the just-closed
  // row's end (already `end`) — intermediate rows share the same offset.
}

CsrMatrix CsrBuilder::Build() {
  if (current_row_ < rows_) FinishRowsUpTo(rows_);
  return CsrMatrix(rows_, cols_, std::move(row_ptr_), std::move(col_idx_),
                   std::move(values_));
}

}  // namespace atmx
