// MatrixMarket (.mtx) I/O so that the real Florida Sparse Matrix Collection
// files used in the paper (Table I) can be dropped into the benchmark suite
// when available; the suite otherwise runs on synthetic surrogates.

#ifndef ATMX_STORAGE_MATRIX_MARKET_H_
#define ATMX_STORAGE_MATRIX_MARKET_H_

#include <string>

#include "common/status.h"
#include "storage/coo_matrix.h"

namespace atmx {

// Reads a MatrixMarket coordinate file. Supports `real`, `integer` and
// `pattern` fields (pattern entries get value 1.0) and the `general` and
// `symmetric` symmetry modes (symmetric files are expanded to both
// triangles); `skew-symmetric` and `hermitian` banners are rejected with a
// specific Unimplemented status. Coordinates listed more than once are
// summed, and the returned COO is coalesced (nnz() counts distinct
// coordinates).
[[nodiscard]] Result<CooMatrix> ReadMatrixMarket(const std::string& path);

// Writes `coo` as a general real coordinate MatrixMarket file.
[[nodiscard]] Status WriteMatrixMarket(const CooMatrix& coo, const std::string& path);

}  // namespace atmx

#endif  // ATMX_STORAGE_MATRIX_MARKET_H_
