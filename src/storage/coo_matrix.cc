#include "storage/coo_matrix.h"

#include <algorithm>

#include "common/check.h"
#include "morton/morton.h"

namespace atmx {

CooMatrix::CooMatrix(index_t rows, index_t cols) : rows_(rows), cols_(cols) {
  ATMX_CHECK_GE(rows, 0);
  ATMX_CHECK_GE(cols, 0);
}

double CooMatrix::Density() const {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<double>(nnz()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

void CooMatrix::Add(index_t row, index_t col, value_t value) {
  ATMX_DCHECK(row >= 0 && row < rows_);
  ATMX_DCHECK(col >= 0 && col < cols_);
  entries_.push_back({row, col, value});
}

void CooMatrix::SortByMorton() {
  std::sort(entries_.begin(), entries_.end(),
            [](const CooEntry& a, const CooEntry& b) {
              return MortonEncode(a.row, a.col) < MortonEncode(b.row, b.col);
            });
}

void CooMatrix::SortRowMajor() {
  std::sort(entries_.begin(), entries_.end(),
            [](const CooEntry& a, const CooEntry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
}

void CooMatrix::CoalesceDuplicates() {
  SortRowMajor();
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries_.size();) {
    CooEntry merged = entries_[i];
    std::size_t j = i + 1;
    while (j < entries_.size() && entries_[j].row == merged.row &&
           entries_[j].col == merged.col) {
      merged.value += entries_[j].value;
      ++j;
    }
    entries_[out++] = merged;
    i = j;
  }
  entries_.resize(out);
}

bool CooMatrix::IsMortonSorted() const {
  return std::is_sorted(entries_.begin(), entries_.end(),
                        [](const CooEntry& a, const CooEntry& b) {
                          return MortonEncode(a.row, a.col) <
                                 MortonEncode(b.row, b.col);
                        });
}

}  // namespace atmx
