// Versioned binary serialization of the matrix representations, so that
// partitioned AT MATRICES can be persisted and reloaded without paying the
// Z-sort + quadtree partitioning again — the restructuring cost of Fig. 7
// is a one-time cost per matrix in a database setting.
//
// Format: 8-byte magic "ATMXBIN1", a type tag, then type-specific payload.
// All integers are little-endian 64-bit. Files are self-describing and
// validated on load (bounds, monotone row pointers, tile coverage).

#ifndef ATMX_STORAGE_SERIALIZE_H_
#define ATMX_STORAGE_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "storage/coo_matrix.h"
#include "storage/csr_matrix.h"
#include "storage/dense_matrix.h"
#include "tile/at_matrix.h"

namespace atmx {

[[nodiscard]] Status SaveMatrix(const CooMatrix& m, const std::string& path);
[[nodiscard]] Status SaveMatrix(const CsrMatrix& m, const std::string& path);
[[nodiscard]] Status SaveMatrix(const DenseMatrix& m, const std::string& path);
[[nodiscard]] Status SaveMatrix(const ATMatrix& m, const std::string& path);

[[nodiscard]] Result<CooMatrix> LoadCooMatrix(const std::string& path);
[[nodiscard]] Result<CsrMatrix> LoadCsrMatrix(const std::string& path);
[[nodiscard]] Result<DenseMatrix> LoadDenseMatrix(const std::string& path);
[[nodiscard]] Result<ATMatrix> LoadATMatrix(const std::string& path);

// Peeks at the type tag of a saved file: "coo", "csr", "dense", "atm".
[[nodiscard]] Result<std::string> PeekMatrixType(const std::string& path);

}  // namespace atmx

#endif  // ATMX_STORAGE_SERIALIZE_H_
