#include "storage/matrix_market.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace atmx {

namespace {

std::vector<std::string> SplitWhitespace(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

}  // namespace

Result<CooMatrix> ReadMatrixMarket(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);

  std::string line;
  if (!std::getline(in, line)) return Status::IoError("empty file: " + path);

  auto header = SplitWhitespace(line);
  if (header.size() < 5 || header[0] != "%%MatrixMarket" ||
      ToLower(header[1]) != "matrix" || ToLower(header[2]) != "coordinate") {
    return Status::InvalidArgument(
        "not a MatrixMarket coordinate file: " + path);
  }
  const std::string field = ToLower(header[3]);
  const std::string symmetry = ToLower(header[4]);
  const bool pattern = field == "pattern";
  if (field != "real" && field != "integer" && !pattern) {
    return Status::Unimplemented("unsupported field type: " + field);
  }
  const bool symmetric = symmetry == "symmetric";
  if (!symmetric && symmetry != "general") {
    // Name the two standard-but-unsupported banners explicitly: both need
    // value transforms on expansion (negation / conjugation) that this
    // reader does not implement, and a generic "unsupported" would read
    // like a typo in the banner rather than a known limitation.
    if (symmetry == "skew-symmetric") {
      return Status::Unimplemented(
          "skew-symmetric MatrixMarket files are not supported (expanding "
          "the lower triangle requires negated mirror values): " + path);
    }
    if (symmetry == "hermitian") {
      return Status::Unimplemented(
          "hermitian MatrixMarket files are not supported (complex-valued; "
          "this reader handles real/integer/pattern fields only): " + path);
    }
    return Status::InvalidArgument("unknown symmetry '" + symmetry +
                                   "' in MatrixMarket banner: " + path);
  }

  // Skip comments.
  do {
    if (!std::getline(in, line)) {
      return Status::IoError("truncated header in " + path);
    }
  } while (!line.empty() && line[0] == '%');

  index_t rows, cols, declared_nnz;
  {
    std::istringstream is(line);
    if (!(is >> rows >> cols >> declared_nnz)) {
      return Status::InvalidArgument("bad size line in " + path);
    }
  }
  if (rows < 0 || cols < 0 || declared_nnz < 0) {
    return Status::InvalidArgument("negative sizes in " + path);
  }

  CooMatrix coo(rows, cols);
  coo.Reserve(static_cast<std::size_t>(symmetric ? 2 * declared_nnz
                                                 : declared_nnz));
  for (index_t k = 0; k < declared_nnz; ++k) {
    index_t r, c;
    // Pattern files carry no value column; every structural entry reads
    // as an explicit 1.0.
    double v = 1.0;
    if (!(in >> r >> c)) {
      return Status::IoError("truncated entries in " + path);
    }
    if (!pattern && !(in >> v)) {
      return Status::IoError("truncated entry value in " + path);
    }
    // MatrixMarket is 1-based.
    if (r < 1 || r > rows || c < 1 || c > cols) {
      return Status::OutOfRange("entry out of bounds in " + path);
    }
    coo.Add(r - 1, c - 1, v);
    if (symmetric && r != c) coo.Add(c - 1, r - 1, v);
  }
  // Duplicate-entry policy: coordinates listed more than once sum, and the
  // COO we hand out is already coalesced. Deferring the sum to CooToCsr
  // (which also sums) would leave COO-level consumers — density maps,
  // partitioning, nnz() — seeing duplicate-inflated counts for the same
  // file.
  coo.CoalesceDuplicates();
  return coo;
}

Status WriteMatrixMarket(const CooMatrix& coo, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << coo.rows() << ' ' << coo.cols() << ' ' << coo.nnz() << '\n';
  char buf[96];
  for (const CooEntry& e : coo.entries()) {
    std::snprintf(buf, sizeof(buf), "%lld %lld %.17g\n",
                  static_cast<long long>(e.row + 1),
                  static_cast<long long>(e.col + 1), e.value);
    out << buf;
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace atmx
