#include "storage/serialize.h"

#include <cstring>
#include <fstream>
#include <vector>

#include "validate/debug_hooks.h"
#include "validate/validate.h"

namespace atmx {

namespace {

constexpr char kMagic[8] = {'A', 'T', 'M', 'X', 'B', 'I', 'N', '1'};

// Dimension cap for deserialized matrices: keeps rows*cols and byte-size
// arithmetic far away from u64 overflow on corrupt headers.
constexpr std::uint64_t kMaxDim = 1ULL << 31;

enum class TypeTag : std::uint64_t {
  kCoo = 1,
  kCsr = 2,
  kDense = 3,
  kAtm = 4,
};

class Writer {
 public:
  explicit Writer(const std::string& path)
      : out_(path, std::ios::binary) {}

  bool ok() const { return static_cast<bool>(out_); }

  void U64(std::uint64_t v) {
    out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  void F64(double v) {
    out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  void Bytes(const void* data, std::size_t n) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(n));
  }
  template <typename T>
  void Array(const std::vector<T>& v) {
    U64(v.size());
    Bytes(v.data(), v.size() * sizeof(T));
  }

 private:
  std::ofstream out_;
};

class Reader {
 public:
  explicit Reader(const std::string& path) : in_(path, std::ios::binary) {
    if (in_) {
      in_.seekg(0, std::ios::end);
      const auto end = in_.tellg();
      if (end >= 0) remaining_ = static_cast<std::uint64_t>(end);
      in_.seekg(0, std::ios::beg);
    }
  }

  bool ok() const { return static_cast<bool>(in_); }

  bool U64(std::uint64_t* v) {
    in_.read(reinterpret_cast<char*>(v), sizeof(*v));
    if (!in_) return false;
    remaining_ -= sizeof(*v);
    return true;
  }
  bool F64(double* v) {
    in_.read(reinterpret_cast<char*>(v), sizeof(*v));
    if (!in_) return false;
    remaining_ -= sizeof(*v);
    return true;
  }
  template <typename T>
  bool Array(std::vector<T>* v) {
    std::uint64_t n;
    // A declared length beyond the bytes left in the file is corruption;
    // rejecting it here also keeps resize() from attempting a multi-GB
    // allocation on a truncated stream.
    if (!U64(&n) || n > remaining_ / sizeof(T)) return false;
    v->resize(n);
    in_.read(reinterpret_cast<char*>(v->data()),
             static_cast<std::streamsize>(n * sizeof(T)));
    if (!in_ && n != 0) return false;
    remaining_ -= n * sizeof(T);
    return true;
  }

 private:
  std::ifstream in_;
  std::uint64_t remaining_ = 0;
};

Status WriteHeader(Writer* w, TypeTag tag) {
  w->Bytes(kMagic, sizeof(kMagic));
  w->U64(static_cast<std::uint64_t>(tag));
  return w->ok() ? Status::Ok() : Status::IoError("write failed");
}

void WriteCsrPayload(Writer* w, const CsrMatrix& m) {
  w->U64(static_cast<std::uint64_t>(m.rows()));
  w->U64(static_cast<std::uint64_t>(m.cols()));
  w->Array(m.row_ptr());
  w->Array(m.col_idx());
  w->Array(m.values());
}

Result<CsrMatrix> ReadCsrPayload(Reader* r) {
  std::uint64_t rows, cols;
  std::vector<index_t> row_ptr, col_idx;
  std::vector<value_t> values;
  if (!r->U64(&rows) || !r->U64(&cols) || !r->Array(&row_ptr) ||
      !r->Array(&col_idx) || !r->Array(&values)) {
    return Status::IoError("truncated CSR payload");
  }
  if (rows > kMaxDim || cols > kMaxDim) {
    return Status::InvalidArgument("CSR dimensions out of range");
  }
  if (row_ptr.size() != rows + 1 || col_idx.size() != values.size() ||
      (rows > 0 && row_ptr.back() != static_cast<index_t>(values.size()))) {
    return Status::InvalidArgument("inconsistent CSR payload");
  }
  CsrMatrix m(static_cast<index_t>(rows), static_cast<index_t>(cols),
              std::move(row_ptr), std::move(col_idx), std::move(values));
  ATMX_RETURN_IF_ERROR(ValidateCsr(m));
  return m;
}

void WriteDensePayload(Writer* w, const DenseMatrix& m) {
  w->U64(static_cast<std::uint64_t>(m.rows()));
  w->U64(static_cast<std::uint64_t>(m.cols()));
  w->U64(static_cast<std::uint64_t>(m.rows()) * m.cols());
  w->Bytes(m.data(),
           static_cast<std::size_t>(m.rows()) * m.cols() * sizeof(value_t));
}

Result<DenseMatrix> ReadDensePayload(Reader* r) {
  std::uint64_t rows, cols;
  if (!r->U64(&rows) || !r->U64(&cols)) {
    return Status::IoError("truncated dense header");
  }
  if (rows > kMaxDim || cols > kMaxDim) {
    return Status::InvalidArgument("dense dimensions out of range");
  }
  std::vector<value_t> data;
  if (!r->Array(&data) || data.size() != rows * cols) {
    return Status::IoError("truncated dense payload");
  }
  DenseMatrix m(static_cast<index_t>(rows), static_cast<index_t>(cols));
  std::memcpy(m.data(), data.data(), data.size() * sizeof(value_t));
  return m;
}

}  // namespace

// -- public API -----------------------------------------------------------

Status SaveMatrix(const CooMatrix& m, const std::string& path) {
  Writer w(path);
  if (!w.ok()) return Status::IoError("cannot open " + path);
  ATMX_RETURN_IF_ERROR(WriteHeader(&w, TypeTag::kCoo));
  w.U64(static_cast<std::uint64_t>(m.rows()));
  w.U64(static_cast<std::uint64_t>(m.cols()));
  w.Array(m.entries());
  return w.ok() ? Status::Ok() : Status::IoError("write failed: " + path);
}

Status SaveMatrix(const CsrMatrix& m, const std::string& path) {
  Writer w(path);
  if (!w.ok()) return Status::IoError("cannot open " + path);
  ATMX_RETURN_IF_ERROR(WriteHeader(&w, TypeTag::kCsr));
  WriteCsrPayload(&w, m);
  return w.ok() ? Status::Ok() : Status::IoError("write failed: " + path);
}

Status SaveMatrix(const DenseMatrix& m, const std::string& path) {
  Writer w(path);
  if (!w.ok()) return Status::IoError("cannot open " + path);
  ATMX_RETURN_IF_ERROR(WriteHeader(&w, TypeTag::kDense));
  WriteDensePayload(&w, m);
  return w.ok() ? Status::Ok() : Status::IoError("write failed: " + path);
}

Status SaveMatrix(const ATMatrix& m, const std::string& path) {
  Writer w(path);
  if (!w.ok()) return Status::IoError("cannot open " + path);
  ATMX_RETURN_IF_ERROR(WriteHeader(&w, TypeTag::kAtm));
  w.U64(static_cast<std::uint64_t>(m.rows()));
  w.U64(static_cast<std::uint64_t>(m.cols()));
  w.U64(static_cast<std::uint64_t>(m.b_atomic()));
  // Density map values.
  w.Array(m.density_map().values());
  // Tiles.
  w.U64(static_cast<std::uint64_t>(m.num_tiles()));
  for (const Tile& t : m.tiles()) {
    w.U64(t.is_dense() ? 1 : 0);
    w.U64(static_cast<std::uint64_t>(t.row0()));
    w.U64(static_cast<std::uint64_t>(t.col0()));
    w.U64(static_cast<std::uint64_t>(t.home_node()));
    if (t.is_dense()) {
      WriteDensePayload(&w, t.dense());
    } else {
      WriteCsrPayload(&w, t.sparse());
    }
  }
  return w.ok() ? Status::Ok() : Status::IoError("write failed: " + path);
}

namespace {

Result<TypeTag> OpenAndReadHeader(Reader* r, const std::string& path) {
  if (!r->ok()) return Status::IoError("cannot open " + path);
  std::vector<char> magic;
  // Read magic as raw bytes.
  magic.resize(sizeof(kMagic));
  std::uint64_t tag_value = 0;
  // Use Array-free raw reads via U64s: magic is exactly 8 bytes.
  std::uint64_t magic_word;
  if (!r->U64(&magic_word)) return Status::IoError("truncated header");
  std::uint64_t expected_word;
  std::memcpy(&expected_word, kMagic, sizeof(expected_word));
  if (magic_word != expected_word) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  if (!r->U64(&tag_value)) return Status::IoError("truncated header");
  if (tag_value < 1 || tag_value > 4) {
    return Status::InvalidArgument("unknown type tag in " + path);
  }
  return static_cast<TypeTag>(tag_value);
}

}  // namespace

Result<CooMatrix> LoadCooMatrix(const std::string& path) {
  Reader r(path);
  Result<TypeTag> tag = OpenAndReadHeader(&r, path);
  if (!tag.ok()) return tag.status();
  if (tag.value() != TypeTag::kCoo) {
    return Status::InvalidArgument("not a COO file: " + path);
  }
  std::uint64_t rows, cols;
  if (!r.U64(&rows) || !r.U64(&cols)) {
    return Status::IoError("truncated COO header");
  }
  std::vector<CooEntry> entries;
  if (!r.Array(&entries)) return Status::IoError("truncated COO entries");
  CooMatrix m(static_cast<index_t>(rows), static_cast<index_t>(cols));
  for (const CooEntry& e : entries) {
    if (e.row < 0 || e.row >= m.rows() || e.col < 0 || e.col >= m.cols()) {
      return Status::InvalidArgument("entry out of bounds in " + path);
    }
  }
  m.entries() = std::move(entries);
  return m;
}

Result<CsrMatrix> LoadCsrMatrix(const std::string& path) {
  Reader r(path);
  Result<TypeTag> tag = OpenAndReadHeader(&r, path);
  if (!tag.ok()) return tag.status();
  if (tag.value() != TypeTag::kCsr) {
    return Status::InvalidArgument("not a CSR file: " + path);
  }
  return ReadCsrPayload(&r);
}

Result<DenseMatrix> LoadDenseMatrix(const std::string& path) {
  Reader r(path);
  Result<TypeTag> tag = OpenAndReadHeader(&r, path);
  if (!tag.ok()) return tag.status();
  if (tag.value() != TypeTag::kDense) {
    return Status::InvalidArgument("not a dense file: " + path);
  }
  return ReadDensePayload(&r);
}

Result<ATMatrix> LoadATMatrix(const std::string& path) {
  Reader r(path);
  Result<TypeTag> tag = OpenAndReadHeader(&r, path);
  if (!tag.ok()) return tag.status();
  if (tag.value() != TypeTag::kAtm) {
    return Status::InvalidArgument("not an AT MATRIX file: " + path);
  }
  std::uint64_t rows, cols, block;
  if (!r.U64(&rows) || !r.U64(&cols) || !r.U64(&block) || block == 0) {
    return Status::IoError("truncated AT MATRIX header");
  }
  if (rows > kMaxDim || cols > kMaxDim || block > kMaxDim) {
    return Status::InvalidArgument("AT MATRIX dimensions out of range");
  }
  // The density array is read (and bounded by the file size) before the map
  // is constructed, so a corrupt header cannot trigger a huge grid
  // allocation.
  std::vector<double> densities;
  if (!r.Array(&densities)) return Status::IoError("truncated density map");
  const std::uint64_t grid_rows = (rows + block - 1) / block;
  const std::uint64_t grid_cols = (cols + block - 1) / block;
  if (densities.size() != grid_rows * grid_cols) {
    return Status::IoError("truncated density map");
  }
  DensityMap map(static_cast<index_t>(rows), static_cast<index_t>(cols),
                 static_cast<index_t>(block));
  for (index_t bi = 0; bi < map.grid_rows(); ++bi) {
    for (index_t bj = 0; bj < map.grid_cols(); ++bj) {
      map.Set(bi, bj, densities[bi * map.grid_cols() + bj]);
    }
  }

  std::uint64_t num_tiles;
  if (!r.U64(&num_tiles) || num_tiles > (1ULL << 24)) {
    return Status::IoError("bad tile count");
  }
  // The bytes on disk are untrusted: build first with debug-validation
  // hooks off, then report problems as a Status via the validators.
  validate_debug::ScopedDisableValidation no_hooks;
  std::vector<Tile> tiles;
  tiles.reserve(num_tiles);
  for (std::uint64_t t = 0; t < num_tiles; ++t) {
    std::uint64_t is_dense, row0, col0, home;
    if (!r.U64(&is_dense) || !r.U64(&row0) || !r.U64(&col0) ||
        !r.U64(&home)) {
      return Status::IoError("truncated tile header");
    }
    if (is_dense != 0) {
      Result<DenseMatrix> payload = ReadDensePayload(&r);
      if (!payload.ok()) return payload.status();
      tiles.push_back(Tile::MakeDense(static_cast<index_t>(row0),
                                      static_cast<index_t>(col0),
                                      std::move(payload).value()));
    } else {
      Result<CsrMatrix> payload = ReadCsrPayload(&r);
      if (!payload.ok()) return payload.status();
      tiles.push_back(Tile::MakeSparse(static_cast<index_t>(row0),
                                       static_cast<index_t>(col0),
                                       std::move(payload).value()));
    }
    tiles.back().set_home_node(static_cast<int>(home));
  }
  ATMatrix m(static_cast<index_t>(rows), static_cast<index_t>(cols),
             static_cast<index_t>(block), std::move(tiles), std::move(map));
  ATMX_RETURN_IF_ERROR(ValidateAtMatrix(m));
  return m;
}

Result<std::string> PeekMatrixType(const std::string& path) {
  Reader r(path);
  Result<TypeTag> tag = OpenAndReadHeader(&r, path);
  if (!tag.ok()) return tag.status();
  switch (tag.value()) {
    case TypeTag::kCoo:
      return std::string("coo");
    case TypeTag::kCsr:
      return std::string("csr");
    case TypeTag::kDense:
      return std::string("dense");
    case TypeTag::kAtm:
      return std::string("atm");
  }
  return Status::Internal("unreachable");
}

}  // namespace atmx
