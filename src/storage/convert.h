// Conversions between the plain matrix representations. These are the same
// routines the ATMULT dynamic optimizer invokes for just-in-time tile
// conversions (section III-C), so they are deliberately allocation-lean.

#ifndef ATMX_STORAGE_CONVERT_H_
#define ATMX_STORAGE_CONVERT_H_

#include "storage/coo_matrix.h"
#include "storage/csr_matrix.h"
#include "storage/dense_matrix.h"

namespace atmx {

// COO -> CSR. Entries may be in any order; duplicates are summed.
CsrMatrix CooToCsr(const CooMatrix& coo);

// COO -> dense array. Duplicates are summed.
DenseMatrix CooToDense(const CooMatrix& coo);

// CSR -> dense array.
DenseMatrix CsrToDense(const CsrMatrix& csr);

// CSR window [r0, r1) x [c0, c1) -> dense array of shape (r1-r0) x (c1-c0).
DenseMatrix CsrWindowToDense(const CsrMatrix& csr, index_t r0, index_t r1,
                             index_t c0, index_t c1);

// Dense -> CSR keeping only non-zero elements.
CsrMatrix DenseToCsr(const DenseMatrix& dense);

// Dense window -> CSR of the window's shape.
CsrMatrix DenseWindowToCsr(const DenseView& view);

// CSR -> COO (row-major order).
CooMatrix CsrToCoo(const CsrMatrix& csr);

// Dense -> COO (row-major order of non-zeros).
CooMatrix DenseToCoo(const DenseMatrix& dense);

}  // namespace atmx

#endif  // ATMX_STORAGE_CONVERT_H_
