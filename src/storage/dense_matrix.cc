#include "storage/dense_matrix.h"

#include <algorithm>
#include <cmath>

namespace atmx {

DenseView DenseView::Window(index_t r0, index_t c0, index_t nr,
                            index_t nc) const {
  ATMX_DCHECK(r0 >= 0 && c0 >= 0 && nr >= 0 && nc >= 0);
  ATMX_DCHECK(r0 + nr <= rows && c0 + nc <= cols);
  return {data + r0 * ld + c0, nr, nc, ld};
}

DenseMutView DenseMutView::Window(index_t r0, index_t c0, index_t nr,
                                  index_t nc) const {
  ATMX_DCHECK(r0 >= 0 && c0 >= 0 && nr >= 0 && nc >= 0);
  ATMX_DCHECK(r0 + nr <= rows && c0 + nc <= cols);
  return {data + r0 * ld + c0, nr, nc, ld};
}

DenseMatrix::DenseMatrix(index_t rows, index_t cols)
    : rows_(rows), cols_(cols) {
  ATMX_CHECK_GE(rows, 0);
  ATMX_CHECK_GE(cols, 0);
  data_.assign(static_cast<std::size_t>(rows) * cols, 0.0);
}

index_t DenseMatrix::CountNonZeros() const {
  index_t count = 0;
  for (value_t v : data_) count += (v != 0.0);
  return count;
}

double DenseMatrix::Density() const {
  if (data_.empty()) return 0.0;
  return static_cast<double>(CountNonZeros()) /
         static_cast<double>(data_.size());
}

void DenseMatrix::Fill(value_t v) { std::fill(data_.begin(), data_.end(), v); }

double MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b) {
  ATMX_CHECK_EQ(a.rows(), b.rows());
  ATMX_CHECK_EQ(a.cols(), b.cols());
  double max_diff = 0.0;
  const value_t* pa = a.data();
  const value_t* pb = b.data();
  const std::size_t n = static_cast<std::size_t>(a.rows()) * a.cols();
  for (std::size_t i = 0; i < n; ++i) {
    max_diff = std::max(max_diff, std::fabs(pa[i] - pb[i]));
  }
  return max_diff;
}

}  // namespace atmx
