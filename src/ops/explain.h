// EXPLAIN for matrix multiplications — the relational-optimizer analogy
// the paper draws (section III-D compares density estimation to join
// cardinality estimation). Produces the *plan* of C = A * B without
// executing it: the estimated result topology, the chosen write
// threshold, and per tile-pair the windows, estimated densities, selected
// kernel, and whether a JIT conversion would fire.

#ifndef ATMX_OPS_EXPLAIN_H_
#define ATMX_OPS_EXPLAIN_H_

#include <string>
#include <vector>

#include "common/config.h"
#include "cost/cost_model.h"
#include "kernels/kernel_common.h"
#include "obs/obs.h"
#include "tile/at_matrix.h"

namespace atmx {

// One planned pair multiplication.
struct PlannedPair {
  index_t ti = 0;  // C tile row band
  index_t tj = 0;  // C tile col band
  index_t k0 = 0;  // contraction range
  index_t k1 = 0;
  double rho_a = 0.0;
  double rho_b = 0.0;
  KernelType kernel = KernelType::kSSS;
  bool converts_a = false;
  bool converts_b = false;
  double projected_cost = 0.0;
};

struct MultiplyPlan {
  index_t num_row_bands = 0;
  index_t num_col_bands = 0;
  double effective_write_threshold = 0.0;
  double estimated_result_nnz = 0.0;
  std::size_t estimated_result_bytes = 0;
  index_t dense_target_tiles = 0;
  index_t sparse_target_tiles = 0;
  index_t planned_conversions = 0;
  double total_projected_cost = 0.0;
  std::vector<PlannedPair> pairs;

  // Multi-line human-readable plan; `max_pairs` rows of pair detail.
  std::string ToString(index_t max_pairs = 24) const;
};

// Plans C = A * B under the given configuration and cost model, mirroring
// every decision AtMult::Multiply would take (estimate, water level,
// target representations, pair kernels, JIT conversions) without running
// any kernel.
MultiplyPlan ExplainMultiply(const ATMatrix& a, const ATMatrix& b,
                             const AtmConfig& config,
                             const CostModel& cost_model = CostModel());

#if defined(ATMX_OBS_ENABLED)
// Renders decision-audit records (the "EXPLAIN after the fact" counterpart
// of MultiplyPlan::ToString) as a column-aligned table, `max_rows` rows of
// pair detail plus a summary line. Only available when the observability
// layer is built in.
std::string FormatDecisionLog(const std::vector<obs::DecisionRecord>& records,
                              index_t max_rows = 24);

// Renders chain-decision records (one per ExecuteChain call: chosen
// parenthesization, planned vs left-to-right cost, fusion outcome,
// resident-tile peak) as a table followed by the per-product breakdown of
// the most recent chain. See docs/CHAINS.md.
std::string FormatChainDecisions(
    const std::vector<obs::ChainDecisionRecord>& records,
    index_t max_rows = 16);
#endif

}  // namespace atmx

#endif  // ATMX_OPS_EXPLAIN_H_
