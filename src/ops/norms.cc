#include "ops/norms.h"

#include <algorithm>
#include <cmath>

namespace atmx {

double FrobeniusNorm(const CsrMatrix& a) {
  double sum = 0.0;
  for (value_t v : a.values()) sum += v * v;
  return std::sqrt(sum);
}

double FrobeniusNorm(const DenseMatrix& a) {
  double sum = 0.0;
  const value_t* p = a.data();
  const std::size_t n = static_cast<std::size_t>(a.rows()) * a.cols();
  for (std::size_t i = 0; i < n; ++i) sum += p[i] * p[i];
  return std::sqrt(sum);
}

double FrobeniusNorm(const ATMatrix& a) {
  double sum = 0.0;
  for (const Tile& t : a.tiles()) {
    if (t.is_dense()) {
      const double norm = FrobeniusNorm(t.dense());
      sum += norm * norm;
    } else {
      const double norm = FrobeniusNorm(t.sparse());
      sum += norm * norm;
    }
  }
  return std::sqrt(sum);
}

std::vector<value_t> RowSums(const CsrMatrix& a) {
  std::vector<value_t> sums(a.rows(), 0.0);
  for (index_t i = 0; i < a.rows(); ++i) {
    for (value_t v : a.RowValues(i)) sums[i] += v;
  }
  return sums;
}

std::vector<value_t> RowNorms(const CsrMatrix& a) {
  std::vector<value_t> norms(a.rows(), 0.0);
  for (index_t i = 0; i < a.rows(); ++i) {
    double sum = 0.0;
    for (value_t v : a.RowValues(i)) sum += v * v;
    norms[i] = std::sqrt(sum);
  }
  return norms;
}

std::vector<index_t> RowNnz(const CsrMatrix& a) {
  std::vector<index_t> counts(a.rows());
  for (index_t i = 0; i < a.rows(); ++i) counts[i] = a.RowNnz(i);
  return counts;
}

double MaxAbsValue(const CsrMatrix& a) {
  double max_abs = 0.0;
  for (value_t v : a.values()) max_abs = std::max(max_abs, std::fabs(v));
  return max_abs;
}

double MaxAbsValue(const ATMatrix& a) {
  double max_abs = 0.0;
  for (const Tile& t : a.tiles()) {
    if (t.is_dense()) {
      const value_t* p = t.dense().data();
      const std::size_t n =
          static_cast<std::size_t>(t.rows()) * t.cols();
      for (std::size_t i = 0; i < n; ++i) {
        max_abs = std::max(max_abs, std::fabs(p[i]));
      }
    } else {
      max_abs = std::max(max_abs, MaxAbsValue(t.sparse()));
    }
  }
  return max_abs;
}

}  // namespace atmx
