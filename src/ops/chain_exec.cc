#include "ops/chain_exec.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/math_util.h"
#include "common/mutex.h"
#include "common/timer.h"
#include "estimate/density_estimator.h"
#include "estimate/water_level.h"
#include "obs/obs.h"
#if defined(ATMX_OBS_ENABLED)
#include "obs/audit_ledger.h"
#endif
#include "ops/optimizer.h"
#include "ops/product_task.h"
#include "tile/tile_lifetime.h"
#include "topology/thread_pool.h"

namespace atmx::internal {

bool CanFuseChain(const std::vector<const ATMatrix*>& chain,
                  const AtmConfig& config, std::string* reason) {
  if (chain.size() < 3) {  // fewer than two products
    if (reason != nullptr) *reason = "short_chain";
    return false;
  }
  // A finite memory SLA is served by the chain-scope water level
  // (PlanChainBudget), which needs the density estimator for the
  // planning-time intermediate topologies; without estimation nothing can
  // bound the resident set, so those chains stay product-at-a-time.
  if (config.result_mem_limit_bytes !=
          std::numeric_limits<std::size_t>::max() &&
      !config.density_estimation) {
    if (reason != nullptr) *reason = "no_estimation";
    return false;
  }
  return true;
}

void AccumulateProductStats(const AtMultStats& s, AtMultStats* total) {
  total->estimate_seconds += s.estimate_seconds;
  total->optimize_seconds += s.optimize_seconds;
  total->multiply_seconds += s.multiply_seconds;
  total->total_seconds += s.total_seconds;
  // The chain's threshold is the minimum across its products — the
  // binding one for representation decisions (0.0 means "not set yet").
  if (total->effective_write_threshold == 0.0) {
    total->effective_write_threshold = s.effective_write_threshold;
  } else if (s.effective_write_threshold > 0.0) {
    total->effective_write_threshold = std::min(
        total->effective_write_threshold, s.effective_write_threshold);
  }
  total->pair_multiplications += s.pair_multiplications;
  total->sparse_to_dense_conversions += s.sparse_to_dense_conversions;
  total->dense_to_sparse_conversions += s.dense_to_sparse_conversions;
  total->dense_result_tiles += s.dense_result_tiles;
  total->sparse_result_tiles += s.sparse_result_tiles;
  for (int v = 0; v < kNumKernelTypes; ++v) {
    total->kernel_invocations[v] += s.kernel_invocations[v];
  }
  total->tasks_stolen += s.tasks_stolen;
  if (total->team_busy_seconds.size() < s.team_busy_seconds.size()) {
    total->team_busy_seconds.resize(s.team_busy_seconds.size(), 0.0);
  }
  for (std::size_t t = 0; t < s.team_busy_seconds.size(); ++t) {
    total->team_busy_seconds[t] += s.team_busy_seconds[t];
  }
  if (total->team_cpu_seconds.size() < s.team_cpu_seconds.size()) {
    total->team_cpu_seconds.resize(s.team_cpu_seconds.size(), 0.0);
  }
  for (std::size_t t = 0; t < s.team_cpu_seconds.size(); ++t) {
    total->team_cpu_seconds[t] += s.team_cpu_seconds[t];
  }
  total->local_read_bytes += s.local_read_bytes;
  total->remote_read_bytes += s.remote_read_bytes;
  total->local_write_bytes += s.local_write_bytes;
  total->remote_write_bytes += s.remote_write_bytes;
}

namespace {

// One product of the plan tree. Nodes are created in post-order (left
// subtree, right subtree, self), so children always have smaller ids than
// their parent and the per-product stats vector matches the unfused
// executor's execution order; the root is the last node.
struct ProductNode {
  int left_leaf = -1;   // chain index when the left operand is an input
  int left_node = -1;   // producing node when it is an intermediate
  int right_leaf = -1;
  int right_node = -1;
  int parent = -1;      // consuming node; -1 for the root
  bool is_left_of_parent = false;

  index_t num_ti = 0;       // result row bands (left operand's row bands)
  index_t num_tj = 0;       // result col bands (right operand's col bands)
  index_t task_offset = 0;  // global id of this node's task (0, 0)

  // The materializing result grid: slot ti * num_tj + tj.
  std::vector<Tile> tiles;
  std::vector<index_t> row_bounds;
  std::vector<index_t> col_bounds;
  DensityMap map;                    // actual densities, filled per task
  std::vector<double> block_counts;  // per-atomic-block nnz counts
  DensityMap estimate;               // estimator output, filled per task
  DensityMap planned_map;            // planning-time estimate (LPT costs)

  // JIT conversions of this node's result tiles, when a consuming task
  // prefers the other representation.
  std::unique_ptr<ConversionCache> result_cache;

  ProductContext ctx;
  AtMultStats stats;

  // Consumer countdowns for dropping this node's result tiles: as the
  // left operand of the parent, row band ti is retired when all parent
  // tasks (ti, *) finished; as the right operand, col band tj when all
  // (*, tj) finished.
  std::vector<std::atomic<index_t>> remaining;
};

// Builds the product tree for the subchain (i..j) in post-order and
// returns the subchain root's node id.
int BuildNodes(const ChainPlan& plan, int i, int j,
               std::vector<std::unique_ptr<ProductNode>>* nodes) {
  const int k = plan.split[static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(j)];
  const int left = i < k ? BuildNodes(plan, i, k, nodes) : -1;
  const int right = k + 1 < j ? BuildNodes(plan, k + 1, j, nodes) : -1;
  auto node = std::make_unique<ProductNode>();
  node->left_node = left;
  node->left_leaf = i == k ? i : -1;
  node->right_node = right;
  node->right_leaf = k + 1 == j ? k + 1 : -1;
  const int id = static_cast<int>(nodes->size());
  if (left >= 0) {
    (*nodes)[static_cast<std::size_t>(left)]->parent = id;
    (*nodes)[static_cast<std::size_t>(left)]->is_left_of_parent = true;
  }
  if (right >= 0) {
    (*nodes)[static_cast<std::size_t>(right)]->parent = id;
    (*nodes)[static_cast<std::size_t>(right)]->is_left_of_parent = false;
  }
  nodes->push_back(std::move(node));
  return id;
}

using NodeVec = std::vector<std::unique_ptr<ProductNode>>;

const DensityMap& LeftActualMap(const std::vector<const ATMatrix*>& chain,
                                const NodeVec& nodes,
                                const ProductNode& node) {
  return node.left_leaf >= 0
             ? chain[static_cast<std::size_t>(node.left_leaf)]->density_map()
             : nodes[static_cast<std::size_t>(node.left_node)]->map;
}

const DensityMap& RightActualMap(const std::vector<const ATMatrix*>& chain,
                                 const NodeVec& nodes,
                                 const ProductNode& node) {
  return node.right_leaf >= 0
             ? chain[static_cast<std::size_t>(node.right_leaf)]->density_map()
             : nodes[static_cast<std::size_t>(node.right_node)]->map;
}

const DensityMap& LeftPlannedMap(const std::vector<const ATMatrix*>& chain,
                                 const NodeVec& nodes,
                                 const ProductNode& node) {
  return node.left_leaf >= 0
             ? chain[static_cast<std::size_t>(node.left_leaf)]->density_map()
             : nodes[static_cast<std::size_t>(node.left_node)]->planned_map;
}

const DensityMap& RightPlannedMap(const std::vector<const ATMatrix*>& chain,
                                  const NodeVec& nodes,
                                  const ProductNode& node) {
  return node.right_leaf >= 0
             ? chain[static_cast<std::size_t>(node.right_leaf)]->density_map()
             : nodes[static_cast<std::size_t>(node.right_node)]->planned_map;
}

// Post-order walk of the plan tree for the subchain (i..j): estimates
// every product's topology bottom-up (leaves use the inputs' actual maps)
// and records each product's consuming parent. Returns the subchain
// root's product id; ids match BuildNodes' post-order.
int WalkPlannedProducts(const std::vector<const ATMatrix*>& chain,
                        const ChainPlan& plan, int i, int j,
                        std::vector<DensityMap>* maps,
                        std::vector<int>* parents) {
  const int k = plan.split[static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(j)];
  const int left =
      i < k ? WalkPlannedProducts(chain, plan, i, k, maps, parents) : -1;
  const int right =
      k + 1 < j ? WalkPlannedProducts(chain, plan, k + 1, j, maps, parents)
                : -1;
  DensityMap product = EstimateProductDensity(
      left >= 0 ? (*maps)[static_cast<std::size_t>(left)]
                : chain[static_cast<std::size_t>(i)]->density_map(),
      right >= 0 ? (*maps)[static_cast<std::size_t>(right)]
                 : chain[static_cast<std::size_t>(k) + 1]->density_map());
  const int id = static_cast<int>(maps->size());
  maps->push_back(std::move(product));
  parents->push_back(-1);
  if (left >= 0) (*parents)[static_cast<std::size_t>(left)] = id;
  if (right >= 0) (*parents)[static_cast<std::size_t>(right)] = id;
  return id;
}

}  // namespace

ChainBudgetPlan PlanChainBudget(const std::vector<const ATMatrix*>& chain,
                                const ChainPlan& plan, const AtMult& op) {
  ChainBudgetPlan budget;
  const AtmConfig& config = op.config();
  const int n = static_cast<int>(chain.size());
  if (n < 2) return budget;
  std::vector<int> parents;
  WalkPlannedProducts(chain, plan, 0, n - 1, &budget.planned_maps, &parents);
  budget.rho_w.assign(budget.planned_maps.size(), config.rho_write);
  // Chain-scope budgeting needs a finite limit, the estimator for the
  // planned topologies, and at least two products — a single product is
  // exactly the operator's own per-product water level, which MultiplyImpl
  // already runs.
  if (config.result_mem_limit_bytes ==
          std::numeric_limits<std::size_t>::max() ||
      !config.density_estimation || budget.planned_maps.size() < 2) {
    return budget;
  }
  budget.active = true;
  budget.budget_bytes = config.result_mem_limit_bytes;
  std::vector<const DensityMap*> maps;
  maps.reserve(budget.planned_maps.size());
  for (const DensityMap& m : budget.planned_maps) maps.push_back(&m);
  const ChainWaterLevelResult wl = SolveChainWaterLevel(
      maps, parents, config.rho_write, budget.budget_bytes);
  budget.rho_w = wl.thresholds;
  budget.feasible = wl.feasible;
  budget.projected_peak_bytes = wl.projected_peak_bytes;
  return budget;
}

ATMatrix ExecuteChainFused(const std::vector<const ATMatrix*>& chain,
                           const ChainPlan& plan, const AtMult& op,
                           const ChainBudgetPlan& budget,
                           ChainExecStats* stats) {
  ATMX_CHECK(stats != nullptr);
  const AtmConfig& config = op.config();
  const index_t block = chain[0]->b_atomic();
  const int n = static_cast<int>(chain.size());

  NodeVec nodes;
  nodes.reserve(static_cast<std::size_t>(n) - 1);
  const int root_id = BuildNodes(plan, 0, n - 1, &nodes);
  ATMX_CHECK_EQ(root_id, static_cast<int>(nodes.size()) - 1);
  ATMX_CHECK(!budget.active || budget.rho_w.size() == nodes.size());

#if defined(ATMX_OBS_ENABLED)
  const bool audit_enabled = obs::DecisionLog::Global().enabled();
  const bool ledger_enabled = obs::AuditLedger::Global().enabled();
  if (ledger_enabled) {
    obs::AuditLedger::Global().SetCostParams(op.cost_model().params());
  }
#endif
  Mutex stats_mutex;
  ResidentTileSet resident;
  if (budget.active) resident.set_budget_bytes(budget.budget_bytes);

  // Shared JIT conversion caches, one per distinct input matrix, addressed
  // with the kLeft key space on both operand sides — a matrix appearing in
  // several products (or twice in one) converts each tile at most once per
  // chain. Intermediates get their producing node's result_cache.
  std::map<const ATMatrix*, std::unique_ptr<ConversionCache>> leaf_caches;
  auto leaf_cache = [&](int leaf) {
    auto& slot = leaf_caches[chain[static_cast<std::size_t>(leaf)]];
    if (slot == nullptr) slot = std::make_unique<ConversionCache>();
    return slot.get();
  };

  // --- Per-node setup (children before parents: post-order ids). --------
  index_t total_tasks = 0;
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    ProductNode& node = *nodes[id];
    node.row_bounds =
        node.left_leaf >= 0
            ? chain[static_cast<std::size_t>(node.left_leaf)]->row_bounds()
            : nodes[static_cast<std::size_t>(node.left_node)]->row_bounds;
    node.col_bounds =
        node.right_leaf >= 0
            ? chain[static_cast<std::size_t>(node.right_leaf)]->col_bounds()
            : nodes[static_cast<std::size_t>(node.right_node)]->col_bounds;
    node.num_ti = static_cast<index_t>(node.row_bounds.size()) - 1;
    node.num_tj = static_cast<index_t>(node.col_bounds.size()) - 1;
    node.task_offset = total_tasks;
    total_tasks += node.num_ti * node.num_tj;

    const index_t rows = node.row_bounds.back();
    const index_t cols = node.col_bounds.back();
    node.tiles.resize(static_cast<std::size_t>(node.num_ti * node.num_tj));
    node.map = DensityMap(rows, cols, block);
    node.block_counts.assign(static_cast<std::size_t>(node.map.grid_rows()) *
                                 static_cast<std::size_t>(node.map.grid_cols()),
                             0.0);
    if (config.density_estimation) {
      node.estimate = DensityMap(rows, cols, block);
    }
    node.result_cache = std::make_unique<ConversionCache>();

    ProductContext& ctx = node.ctx;
    if (node.left_leaf >= 0) {
      ctx.a = OperandView::FromMatrix(
          *chain[static_cast<std::size_t>(node.left_leaf)]);
      ctx.a_cache = leaf_cache(node.left_leaf);
    } else {
      ProductNode& l = *nodes[static_cast<std::size_t>(node.left_node)];
      ctx.a = OperandView::FromGrid(&l.tiles, &l.row_bounds, &l.col_bounds,
                                    &l.map);
      ctx.a_cache = l.result_cache.get();
    }
    if (node.right_leaf >= 0) {
      ctx.b = OperandView::FromMatrix(
          *chain[static_cast<std::size_t>(node.right_leaf)]);
      ctx.b_cache = leaf_cache(node.right_leaf);
    } else {
      ProductNode& r = *nodes[static_cast<std::size_t>(node.right_node)];
      ctx.b = OperandView::FromGrid(&r.tiles, &r.row_bounds, &r.col_bounds,
                                    &r.map);
      ctx.b_cache = r.result_cache.get();
    }
    ctx.block = block;
    ctx.use_estimate = config.density_estimation;
    ctx.estimate = &node.estimate;
    // Unbounded budget: the performance-optimal threshold, exactly as the
    // unfused path's EffectiveWriteThreshold fast path. Finite budget: the
    // chain-scope water level's per-product threshold, which the unfused
    // path imposes identically (rho_w_override) — same representation
    // decisions, bitwise-identical results.
    ctx.rho_w = budget.active ? budget.rho_w[id] : config.rho_write;
    if (id < budget.planned_maps.size()) {
      node.planned_map = budget.planned_maps[id];
    }
    ctx.dynamic_conversion = config.dynamic_conversion;
    ctx.cost_model = &op.cost_model();
    ctx.a_cache_side = ConversionCache::kLeft;
    ctx.b_cache_side = ConversionCache::kLeft;
    ctx.c_tiles = &node.tiles;
    ctx.block_counts = &node.block_counts;
    ctx.grid_cols = node.map.grid_cols();
    ctx.stats = &node.stats;
    ctx.stats_mutex = &stats_mutex;
    node.stats.effective_write_threshold = ctx.rho_w;
#if defined(ATMX_OBS_ENABLED)
    ctx.audit_enabled = audit_enabled;
    ctx.ledger_enabled = ledger_enabled;
    ctx.op_id = (audit_enabled || ledger_enabled)
                    ? obs::DecisionLog::Global().NextOpId()
                    : 0;
#endif
  }
  // Retire countdowns: sized by the operand band the parent consumes;
  // parents have larger ids, so their band counts exist only after the
  // first pass.
  for (auto& node_ptr : nodes) {
    ProductNode& node = *node_ptr;
    if (node.parent < 0) continue;
    ProductNode& p = *nodes[static_cast<std::size_t>(node.parent)];
    const std::size_t bands = static_cast<std::size_t>(
        node.is_left_of_parent ? node.num_ti : node.num_tj);
    const index_t consumers = node.is_left_of_parent ? p.num_tj : p.num_ti;
    node.remaining = std::vector<std::atomic<index_t>>(bands);
    for (auto& r : node.remaining) {
      r.store(consumers, std::memory_order_relaxed);
    }
  }

  // --- Dependency graph over the global task space. ---------------------
  // Task (ti, tj) of a product reads the left operand's entire row band ti
  // and the right operand's entire col band tj, so it depends on every
  // left-child task (ti, *) and every right-child task (*, tj).
  std::vector<index_t> dep_count(static_cast<std::size_t>(total_tasks), 0);
  std::vector<std::vector<index_t>> successors(
      static_cast<std::size_t>(total_tasks));
  for (auto& node_ptr : nodes) {
    ProductNode& node = *node_ptr;
    const index_t deps =
        (node.left_node >= 0
             ? nodes[static_cast<std::size_t>(node.left_node)]->num_tj
             : 0) +
        (node.right_node >= 0
             ? nodes[static_cast<std::size_t>(node.right_node)]->num_ti
             : 0);
    for (index_t t = 0; t < node.num_ti * node.num_tj; ++t) {
      dep_count[static_cast<std::size_t>(node.task_offset + t)] = deps;
    }
    if (node.parent < 0) continue;
    ProductNode& p = *nodes[static_cast<std::size_t>(node.parent)];
    for (index_t ti = 0; ti < node.num_ti; ++ti) {
      for (index_t tj = 0; tj < node.num_tj; ++tj) {
        auto& succ = successors[static_cast<std::size_t>(
            node.task_offset + ti * node.num_tj + tj)];
        if (node.is_left_of_parent) {
          succ.reserve(static_cast<std::size_t>(p.num_tj));
          for (index_t j = 0; j < p.num_tj; ++j) {
            succ.push_back(p.task_offset + ti * p.num_tj + j);
          }
        } else {
          succ.reserve(static_cast<std::size_t>(p.num_ti));
          for (index_t i = 0; i < p.num_ti; ++i) {
            succ.push_back(p.task_offset + i * p.num_tj + tj);
          }
        }
      }
    }
  }

  // Global task id -> owning node, via the offsets (nodes are in offset
  // order by construction).
  std::vector<index_t> offsets;
  offsets.reserve(nodes.size());
  for (const auto& node_ptr : nodes) offsets.push_back(node_ptr->task_offset);
  auto node_of = [&](index_t task) {
    return static_cast<int>(std::upper_bound(offsets.begin(), offsets.end(),
                                             task) -
                            offsets.begin()) -
           1;
  };

  // --- LPT queue ordering from planning-time estimates. -----------------
  // The unfused path prices tasks against the operands' actual density
  // maps; here intermediates have no actual map until they materialize, so
  // queue order uses the estimator's planned maps instead (order is a
  // performance hint only — results are unaffected).
  ScheduleOptions sched_options;
  sched_options.work_stealing = config.work_stealing;
  if (config.work_stealing && total_tasks > 0) {
    auto task_cost = std::make_shared<std::vector<double>>(
        static_cast<std::size_t>(total_tasks));
    for (auto& node_ptr : nodes) {
      ProductNode& node = *node_ptr;
      const DensityMap& amap = LeftPlannedMap(chain, nodes, node);
      const DensityMap& bmap = RightPlannedMap(chain, nodes, node);
      if (node.planned_map.rows() == 0) {  // not seeded by the budget plan
        node.planned_map = EstimateProductDensity(amap, bmap);
      }
      const index_t k = amap.cols();
      const index_t k_blocks = CeilDiv(k, block);
      std::vector<double> rho_a_band(static_cast<std::size_t>(node.num_ti));
      for (index_t ti = 0; ti < node.num_ti; ++ti) {
        const index_t r0 = node.row_bounds[static_cast<std::size_t>(ti)];
        const index_t m =
            node.row_bounds[static_cast<std::size_t>(ti) + 1] - r0;
        rho_a_band[static_cast<std::size_t>(ti)] =
            amap.RegionDensity(r0 / block, 0, CeilDiv(m, block), k_blocks);
      }
      std::vector<double> rho_b_band(static_cast<std::size_t>(node.num_tj));
      for (index_t tj = 0; tj < node.num_tj; ++tj) {
        const index_t c0 = node.col_bounds[static_cast<std::size_t>(tj)];
        const index_t w =
            node.col_bounds[static_cast<std::size_t>(tj) + 1] - c0;
        rho_b_band[static_cast<std::size_t>(tj)] =
            bmap.RegionDensity(0, c0 / block, k_blocks, CeilDiv(w, block));
      }
      for (index_t ti = 0; ti < node.num_ti; ++ti) {
        for (index_t tj = 0; tj < node.num_tj; ++tj) {
          MultiplyShape shape;
          shape.m = node.row_bounds[static_cast<std::size_t>(ti) + 1] -
                    node.row_bounds[static_cast<std::size_t>(ti)];
          shape.k = k;
          shape.n = node.col_bounds[static_cast<std::size_t>(tj) + 1] -
                    node.col_bounds[static_cast<std::size_t>(tj)];
          shape.rho_a = rho_a_band[static_cast<std::size_t>(ti)];
          shape.rho_b = rho_b_band[static_cast<std::size_t>(tj)];
          if (config.density_estimation) {
            shape.rho_c = node.planned_map.RegionDensity(
                node.row_bounds[static_cast<std::size_t>(ti)] / block,
                node.col_bounds[static_cast<std::size_t>(tj)] / block,
                CeilDiv(shape.m, block), CeilDiv(shape.n, block));
          }
          (*task_cost)[static_cast<std::size_t>(node.task_offset +
                                                ti * node.num_tj + tj)] =
              EstimateTaskCost(op.cost_model(), shape);
        }
      }
    }
    sched_options.cost_of = [task_cost](index_t task) {
      return (*task_cost)[static_cast<std::size_t>(task)];
    };
  }

  // --- Admission control against the chain budget. ----------------------
  // Each task's projected output bytes at its product's planned threshold
  // (the same 8 B/elem dense, 16 B/elem sparse pricing the water level
  // used). A ready task reserves its projection before launching; the
  // reservation converts to real charges as tiles materialize and is
  // dropped when the task finishes, so parked tasks re-enter as completed
  // consumers retire upstream tiles. ScheduleOptions::admit guarantees
  // forward progress by force-admitting the oldest parked task when
  // nothing is in flight.
  std::vector<std::uint64_t> task_bytes;
  if (budget.active) {
    task_bytes.assign(static_cast<std::size_t>(total_tasks), 0);
    for (auto& node_ptr : nodes) {
      ProductNode& node = *node_ptr;
      const DensityMap& pm = node.planned_map;
      for (index_t ti = 0; ti < node.num_ti; ++ti) {
        const index_t bi0 =
            node.row_bounds[static_cast<std::size_t>(ti)] / block;
        const index_t bi1 =
            CeilDiv(node.row_bounds[static_cast<std::size_t>(ti) + 1], block);
        for (index_t tj = 0; tj < node.num_tj; ++tj) {
          const index_t bj0 =
              node.col_bounds[static_cast<std::size_t>(tj)] / block;
          const index_t bj1 = CeilDiv(
              node.col_bounds[static_cast<std::size_t>(tj) + 1], block);
          double bytes = 0.0;
          for (index_t bi = bi0; bi < bi1; ++bi) {
            for (index_t bj = bj0; bj < bj1; ++bj) {
              const double area = static_cast<double>(pm.BlockArea(bi, bj));
              const double rho = pm.At(bi, bj);
              bytes += rho >= node.ctx.rho_w
                           ? area * kDenseElemBytes
                           : rho * area * kSparseElemBytes;
            }
          }
          task_bytes[static_cast<std::size_t>(node.task_offset +
                                              ti * node.num_tj + tj)] =
              static_cast<std::uint64_t>(bytes);
        }
      }
    }
    sched_options.admit = [&resident, &task_bytes](index_t task,
                                                   bool force) {
      const std::uint64_t bytes =
          task_bytes[static_cast<std::size_t>(task)];
      if (force) {
        resident.ForceReserve(bytes);
        ATMX_COUNTER_INC("atmult.fused.admission.forced");
        return true;
      }
      if (!resident.TryReserve(bytes)) {
        ATMX_COUNTER_INC("atmult.fused.admission.parked");
        return false;
      }
      return true;
    };
  }

  // --- Run the DAG. -----------------------------------------------------
  const int teams = config.EffectiveTeams();
  TeamScheduler scheduler(teams, config.EffectiveThreadsPerTeam());
  ATMX_TRACE_SPAN_ARGS("chain", "fused_exec",
                       {"products", static_cast<index_t>(nodes.size())},
                       {"tasks", total_tasks});

  auto run_task = [&](WorkerTeam& team, index_t task) {
    const int node_id = node_of(task);
    ProductNode& node = *nodes[static_cast<std::size_t>(node_id)];
    const index_t local = task - node.task_offset;
    const index_t ti = local / node.num_tj;
    const index_t tj = local % node.num_tj;
    ATMX_TRACE_SPAN_ARGS("chain", "fused_tile", {"product", node_id},
                         {"ti", ti}, {"tj", tj});
    ATMX_COUNTER_INC("atmult.fused.tiles");

    const index_t bi0 = node.row_bounds[static_cast<std::size_t>(ti)] / block;
    const index_t bi1 =
        CeilDiv(node.row_bounds[static_cast<std::size_t>(ti) + 1], block);
    const index_t bj0 = node.col_bounds[static_cast<std::size_t>(tj)] / block;
    const index_t bj1 =
        CeilDiv(node.col_bounds[static_cast<std::size_t>(tj) + 1], block);
    if (node.ctx.use_estimate) {
      // Region-by-region estimate from the operands' *actual* maps —
      // bitwise identical to the full pre-pass the unfused path runs,
      // because the dependency edges guarantee the operand bands this
      // region reads are final.
      WallTimer est_timer;
      EstimateProductDensityRegion(LeftActualMap(chain, nodes, node),
                                   RightActualMap(chain, nodes, node), bi0,
                                   bi1, bj0, bj1, &node.estimate);
      const double est_seconds = est_timer.ElapsedSeconds();
      MutexLock lock(stats_mutex);
      node.stats.estimate_seconds += est_seconds;
    }

    RunProductTileTask(node.ctx, team, local);

    // Actual result densities for downstream estimates — the same
    // counts/area division as MultiplyImpl's closing loop (tasks write
    // disjoint grid regions).
    for (index_t bi = bi0; bi < bi1; ++bi) {
      for (index_t bj = bj0; bj < bj1; ++bj) {
        const double area = static_cast<double>(node.map.BlockArea(bi, bj));
        node.map.Set(bi, bj,
                     area > 0 ? node.block_counts[static_cast<std::size_t>(
                                    bi * node.ctx.grid_cols + bj)] /
                                    area
                              : 0.0);
      }
    }

    const Tile& produced = node.tiles[static_cast<std::size_t>(local)];
    {
      MutexLock lock(stats_mutex);
      if (produced.is_dense()) {
        node.stats.dense_result_tiles++;
      } else {
        node.stats.sparse_result_tiles++;
      }
    }
    // Root tiles charge too: the budget (and the resident peak) covers the
    // whole footprint the fused chain holds, result included — the root's
    // charge is released at the end when ownership passes to the caller.
    resident.Charge(produced.MemoryBytes());

    // Retire operand bands whose last consumer this task was. acq_rel on
    // the countdown orders every consumer's reads before the release.
    if (node.left_node >= 0) {
      ProductNode& l = *nodes[static_cast<std::size_t>(node.left_node)];
      if (l.remaining[static_cast<std::size_t>(ti)].fetch_sub(
              1, std::memory_order_acq_rel) == 1) {
        std::vector<index_t> band(static_cast<std::size_t>(l.num_tj));
        for (index_t j = 0; j < l.num_tj; ++j) {
          band[static_cast<std::size_t>(j)] = ti * l.num_tj + j;
        }
        resident.Retire(&l.tiles, band);
      }
    }
    if (node.right_node >= 0) {
      ProductNode& r = *nodes[static_cast<std::size_t>(node.right_node)];
      if (r.remaining[static_cast<std::size_t>(tj)].fetch_sub(
              1, std::memory_order_acq_rel) == 1) {
        std::vector<index_t> band(static_cast<std::size_t>(r.num_ti));
        for (index_t i = 0; i < r.num_ti; ++i) {
          band[static_cast<std::size_t>(i)] = i * r.num_tj + tj;
        }
        resident.Retire(&r.tiles, band);
      }
    }
    if (budget.active) {
      // The projection is real charges now (or never materialized): hand
      // the reservation back so parked tasks can re-enter.
      resident.ReleaseReservation(
          task_bytes[static_cast<std::size_t>(task)]);
    }
  };

  ScheduleStats sched_stats;
  scheduler.RunTaskGraph(
      total_tasks, dep_count, successors,
      [&](index_t task) {
        // Same round-robin home as one unfused product: the task's result
        // tile-row, within its own product.
        const int node_id = node_of(task);
        const ProductNode& node = *nodes[static_cast<std::size_t>(node_id)];
        return static_cast<int>(((task - node.task_offset) / node.num_tj) %
                                static_cast<index_t>(teams));
      },
      run_task, sched_options, &sched_stats);

  // --- Close out stats. -------------------------------------------------
  stats->fused = true;
  stats->fused_tasks = total_tasks;
  stats->resident_peak_bytes = resident.peak_bytes();
  stats->per_product.reserve(nodes.size());
  for (auto& node_ptr : nodes) {
    ProductNode& node = *node_ptr;
    node.stats.total_seconds = node.stats.PhaseSeconds();
    AccumulateProductStats(node.stats, &stats->total);
    stats->per_product.push_back(node.stats);
  }
  // Per-product conversion deltas are ill-defined under fusion (products
  // interleave on shared caches); the chain totals come straight from the
  // caches.
  index_t s2d = 0;
  index_t d2s = 0;
  for (const auto& entry : leaf_caches) {
    s2d += entry.second->sparse_to_dense_count();
    d2s += entry.second->dense_to_sparse_count();
  }
  for (const auto& node_ptr : nodes) {
    s2d += node_ptr->result_cache->sparse_to_dense_count();
    d2s += node_ptr->result_cache->dense_to_sparse_count();
  }
  stats->total.sparse_to_dense_conversions = s2d;
  stats->total.dense_to_sparse_conversions = d2s;
  stats->total.tasks_stolen = static_cast<index_t>(sched_stats.TotalSteals());
  stats->total.team_busy_seconds = sched_stats.busy_seconds;
  stats->total.team_cpu_seconds = sched_stats.cpu_seconds;

#if defined(ATMX_OBS_ENABLED)
  // Join per-node estimator output against the realized density maps
  // before the root's map is moved into the result matrix.
  if (ledger_enabled && config.density_estimation) {
    for (const auto& node_ptr : nodes) {
      const ProductNode& node = *node_ptr;
      if (node.estimate.grid_rows() != node.map.grid_rows() ||
          node.estimate.grid_cols() != node.map.grid_cols()) {
        continue;
      }
      for (index_t bi = 0; bi < node.map.grid_rows(); ++bi) {
        for (index_t bj = 0; bj < node.map.grid_cols(); ++bj) {
          obs::DensityAuditRecord r;
          r.op = node.ctx.op_id;
          r.bi = bi;
          r.bj = bj;
          r.predicted = node.estimate.At(bi, bj);
          r.actual = node.map.At(bi, bj);
          obs::AuditLedger::Global().RecordDensity(r);
        }
      }
    }
  }
#endif

  ProductNode& root = *nodes[static_cast<std::size_t>(root_id)];
  std::uint64_t root_bytes = 0;
  for (const Tile& t : root.tiles) root_bytes += t.MemoryBytes();
  ATMatrix result(root.row_bounds.back(), root.col_bounds.back(), block,
                  std::move(root.tiles), std::move(root.map));
  // Ownership of the root tiles passes to the caller: uncharge them from
  // the resident set (the peak keeps the high-water mark; with the
  // observability layer in, ReleaseCharge also returns the bytes to the
  // MemTracker exactly as their Charge recorded them).
  resident.ReleaseCharge(root_bytes);

#if defined(ATMX_OBS_ENABLED)
  ATMX_COUNTER_INC("atmult.fused.chains");
  ATMX_COUNTER_ADD("atmult.fused.products",
                   static_cast<std::uint64_t>(nodes.size()));
  ATMX_GAUGE_SET("atmult.fused.resident_bytes_peak",
                 static_cast<double>(stats->resident_peak_bytes));
  if (budget.active) {
    ATMX_GAUGE_SET("atmult.fused.budget_bytes",
                   static_cast<double>(budget.budget_bytes));
  }
  obs::MemTracker::SampleProcess();
#endif
  return result;
}

}  // namespace atmx::internal
