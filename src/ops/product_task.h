// The tile-granular unit of work shared by ATMULT and the fused chain
// executor: one task produces one C tile of one product A * B, running the
// full per-pair pipeline (window matching, dynamic representation
// decisions with JIT conversions, kernel dispatch, density bookkeeping).
//
// AtMult::MultiplyImpl wraps this in a flat RunTasks batch over one
// product; ops/chain_exec.cc wraps it in a cross-product task DAG where an
// operand may be a still-materializing intermediate. Both paths execute
// the *same* code on the same inputs, which is what makes fused chain
// execution bitwise-identical to product-at-a-time execution (see
// docs/CHAINS.md).

#ifndef ATMX_OPS_PRODUCT_TASK_H_
#define ATMX_OPS_PRODUCT_TASK_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "common/mutex.h"
#include "cost/cost_model.h"
#include "estimate/density_map.h"
#include "ops/atmult.h"
#include "ops/optimizer.h"
#include "tile/at_matrix.h"
#include "tile/tile.h"
#include "topology/thread_pool.h"

namespace atmx::internal {

// Band-level view of one multiplication operand. Either a finished
// ATMatrix, or a row-band x col-band grid of tiles that another product is
// still filling in (the fused-chain intermediate). The view carries its
// own band->tile index lists so both shapes expose the identical
// iteration order (tiles within a row band ordered by col0, within a col
// band by row0 — for the grid this is exactly the tj / ti order, matching
// what ATMatrix::BuildBands would produce for the same tiles).
class OperandView {
 public:
  OperandView() = default;

  static OperandView FromMatrix(const ATMatrix& m);

  // Grid mode: `tiles` has one slot per (row band, col band) pair, row
  // major — slot ti * (col_bounds->size() - 1) + tj. Slots may be filled
  // after construction; callers must not read a tile before its producer
  // completed (the chain executor's dependency edges guarantee this).
  static OperandView FromGrid(const std::vector<Tile>* tiles,
                              const std::vector<index_t>* row_bounds,
                              const std::vector<index_t>* col_bounds,
                              const DensityMap* map);

  index_t rows() const { return row_bounds_->back(); }
  index_t cols() const { return col_bounds_->back(); }
  index_t num_row_bands() const {
    return static_cast<index_t>(row_bounds_->size()) - 1;
  }
  index_t num_col_bands() const {
    return static_cast<index_t>(col_bounds_->size()) - 1;
  }
  const std::vector<index_t>& row_bounds() const { return *row_bounds_; }
  const std::vector<index_t>& col_bounds() const { return *col_bounds_; }

  std::span<const index_t> TilesInRowBand(index_t band) const {
    return row_band_tiles_[static_cast<std::size_t>(band)];
  }
  std::span<const index_t> TilesInColBand(index_t band) const {
    return col_band_tiles_[static_cast<std::size_t>(band)];
  }
  const Tile& tile(index_t idx) const {
    return (*tiles_)[static_cast<std::size_t>(idx)];
  }
  const DensityMap& map() const { return *map_; }

 private:
  const std::vector<Tile>* tiles_ = nullptr;
  const std::vector<index_t>* row_bounds_ = nullptr;
  const std::vector<index_t>* col_bounds_ = nullptr;
  const DensityMap* map_ = nullptr;
  std::vector<std::vector<index_t>> row_band_tiles_;
  std::vector<std::vector<index_t>> col_band_tiles_;
};

// Everything one product's tile tasks share. The pointers stay owned by
// the caller and must outlive every RunProductTileTask call.
struct ProductContext {
  OperandView a;
  OperandView b;
  index_t block = 1;  // atomic block edge

  // Density-estimation phase output. When use_estimate is set, `estimate`
  // must cover at least the task's block region by the time the task runs
  // (the fused executor fills it region-by-region).
  bool use_estimate = false;
  const DensityMap* estimate = nullptr;
  double rho_w = 0.0;  // effective write threshold rhoD_W

  bool dynamic_conversion = true;
  const CostModel* cost_model = nullptr;

  // JIT conversion caches for the two operands, plus the key side each is
  // addressed with. A private per-operation cache uses one object with
  // kLeft/kRight sides; the chain executor passes one cache per source
  // matrix (always addressed as kLeft), so a matrix repeated across
  // products — or on both sides of one product — shares its conversions.
  ConversionCache* a_cache = nullptr;
  ConversionCache::Side a_cache_side = ConversionCache::kLeft;
  ConversionCache* b_cache = nullptr;
  ConversionCache::Side b_cache_side = ConversionCache::kRight;

  // Optional accumulator (MultiplyAdd's C); null for plain products.
  const ATMatrix* c_init = nullptr;

  // Output: tile slot per task (task = ti * b.num_col_bands() + tj) and
  // the per-atomic-block nnz counts of the result (grid of the result's
  // density map, row-major with `grid_cols` columns). Tasks write disjoint
  // slots / grid regions.
  std::vector<Tile>* c_tiles = nullptr;
  std::vector<double>* block_counts = nullptr;
  index_t grid_cols = 0;

  // Per-product stats accumulation, guarded by stats_mutex.
  AtMultStats* stats = nullptr;
  Mutex* stats_mutex = nullptr;

  // Decision-audit grouping (0 / false when auditing is off).
  std::uint64_t op_id = 0;
  bool audit_enabled = false;
  // Prediction-vs-outcome ledger recording (obs::AuditLedger): per-pair
  // representation decisions, per-task cost outcomes, SPA mode choices.
  bool ledger_enabled = false;

  // When non-null, result-tile bytes are recorded with the MemTracker and
  // accumulated here so the caller can release the operator-transient
  // footprint when ownership passes on.
  std::atomic<std::uint64_t>* tracked_bytes = nullptr;
};

// Runs task `task` (= ti * b.num_col_bands() + tj): produces the C tile
// for row band ti x col band tj into (*ctx.c_tiles)[task], accumulates the
// block counts and stats. `team` provides intra-task parallelism and the
// locality accounting node.
void RunProductTileTask(const ProductContext& ctx, WorkerTeam& team,
                        index_t task);

}  // namespace atmx::internal

#endif  // ATMX_OPS_PRODUCT_TASK_H_
