// Norms and reductions over the matrix representations — the small
// numeric utilities the example applications (NMF fit, CG residuals,
// similarity normalization) need alongside multiplication.

#ifndef ATMX_OPS_NORMS_H_
#define ATMX_OPS_NORMS_H_

#include <vector>

#include "common/types.h"
#include "storage/csr_matrix.h"
#include "storage/dense_matrix.h"
#include "tile/at_matrix.h"

namespace atmx {

// Frobenius norm sqrt(sum a_ij^2).
double FrobeniusNorm(const CsrMatrix& a);
double FrobeniusNorm(const DenseMatrix& a);
double FrobeniusNorm(const ATMatrix& a);

// Per-row sums and Euclidean row norms.
std::vector<value_t> RowSums(const CsrMatrix& a);
std::vector<value_t> RowNorms(const CsrMatrix& a);

// Number of stored elements per row (the degree vector of a graph's
// adjacency matrix).
std::vector<index_t> RowNnz(const CsrMatrix& a);

// Largest absolute element value.
double MaxAbsValue(const CsrMatrix& a);
double MaxAbsValue(const ATMatrix& a);

}  // namespace atmx

#endif  // ATMX_OPS_NORMS_H_
