#include "ops/optimizer.h"

#include "common/timer.h"
#include "obs/obs.h"
#include "storage/convert.h"

namespace atmx {

PairDecision DecidePairRepresentations(const CostModel& model,
                                       const MultiplyShape& shape,
                                       bool a_is_dense, bool b_is_dense,
                                       bool a_cached, bool b_cached,
                                       bool c_dense, bool allow_conversion) {
  PairDecision best;
  best.a_dense = a_is_dense;
  best.b_dense = b_is_dense;
  best.projected_cost = model.ComputeCost(
      MakeKernelType(a_is_dense, b_is_dense, c_dense), shape);
  best.stored_cost = best.projected_cost;
  if (!allow_conversion) return best;

  for (int a_choice = 0; a_choice < 2; ++a_choice) {
    for (int b_choice = 0; b_choice < 2; ++b_choice) {
      const bool a_dense = a_choice == 1;
      const bool b_dense = b_choice == 1;
      if (a_dense == a_is_dense && b_dense == b_is_dense) continue;
      double cost = model.ComputeCost(
          MakeKernelType(a_dense, b_dense, c_dense), shape);
      // Conversion is charged on the *whole tile* the window belongs to
      // but reused across pairs once cached; the shape's m/k/n describe
      // the window, which is the lower bound of the converted area — the
      // cautious choice: we only convert when even the window-local
      // benefit pays for it.
      if (a_dense != a_is_dense && !a_cached) {
        cost += model.ConversionCost(a_dense, shape.m, shape.k, shape.rho_a);
      }
      if (b_dense != b_is_dense && !b_cached) {
        cost += model.ConversionCost(b_dense, shape.k, shape.n, shape.rho_b);
      }
      if (cost < best.projected_cost) {
        best.projected_cost = cost;
        best.a_dense = a_dense;
        best.b_dense = b_dense;
      }
    }
  }
  best.a_converted = best.a_dense != a_is_dense;
  best.b_converted = best.b_dense != b_is_dense;
  return best;
}

ConversionCache::~ConversionCache() {
#if defined(ATMX_OBS_ENABLED)
  std::uint64_t bytes;
  {
    MutexLock lock(mutex_);
    bytes = cached_bytes_;
  }
  obs::MemTracker::Global().RecordFree(bytes);
#endif
}

const DenseMatrix& ConversionCache::GetDense(Side side, index_t tile_idx,
                                             const Tile& tile,
                                             double* conversion_seconds) {
  ATMX_CHECK(!tile.is_dense());
  const std::uint64_t key = Key(side, tile_idx);
  MutexLock lock(mutex_);
  auto it = dense_.find(key);
  if (it == dense_.end()) {
    ATMX_TRACE_SPAN_ARGS("convert", "sparse_to_dense",
                         {"rows", tile.sparse().rows()},
                         {"cols", tile.sparse().cols()},
                         {"nnz", tile.sparse().nnz()});
    WallTimer timer;
    auto converted = std::make_unique<DenseMatrix>(CsrToDense(tile.sparse()));
    *conversion_seconds += timer.ElapsedSeconds();
    ++sparse_to_dense_count_;
    ATMX_COUNTER_INC("atmult.conversions.sparse_to_dense");
#if defined(ATMX_OBS_ENABLED)
    {
      const std::uint64_t bytes = converted->MemoryBytes();
      cached_bytes_ += bytes;
      obs::MemTracker::Global().RecordAlloc(bytes);
    }
#endif
    it = dense_.emplace(key, std::move(converted)).first;
  }
  return *it->second;
}

const CsrMatrix& ConversionCache::GetSparse(Side side, index_t tile_idx,
                                            const Tile& tile,
                                            double* conversion_seconds) {
  ATMX_CHECK(tile.is_dense());
  const std::uint64_t key = Key(side, tile_idx);
  MutexLock lock(mutex_);
  auto it = sparse_.find(key);
  if (it == sparse_.end()) {
    ATMX_TRACE_SPAN_ARGS("convert", "dense_to_sparse",
                         {"rows", tile.dense().rows()},
                         {"cols", tile.dense().cols()});
    WallTimer timer;
    auto converted = std::make_unique<CsrMatrix>(DenseToCsr(tile.dense()));
    *conversion_seconds += timer.ElapsedSeconds();
    ++dense_to_sparse_count_;
    ATMX_COUNTER_INC("atmult.conversions.dense_to_sparse");
#if defined(ATMX_OBS_ENABLED)
    {
      const std::uint64_t bytes = converted->MemoryBytes();
      cached_bytes_ += bytes;
      obs::MemTracker::Global().RecordAlloc(bytes);
    }
#endif
    it = sparse_.emplace(key, std::move(converted)).first;
  }
  return *it->second;
}

bool ConversionCache::HasDense(Side side, index_t tile_idx) const {
  MutexLock lock(mutex_);
  return dense_.count(Key(side, tile_idx)) > 0;
}

bool ConversionCache::HasSparse(Side side, index_t tile_idx) const {
  MutexLock lock(mutex_);
  return sparse_.count(Key(side, tile_idx)) > 0;
}

}  // namespace atmx
