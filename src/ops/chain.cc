#include "ops/chain.h"

#include <limits>
#include <memory>
#include <sstream>

#include "common/check.h"
#include "estimate/density_estimator.h"

namespace atmx {

double EstimateMultiplyCost(const DensityMap& x, const DensityMap& y,
                            const CostModel& model, double rho_write) {
  ATMX_CHECK_EQ(x.cols(), y.rows());
  ATMX_CHECK_EQ(x.block(), y.block());
  const CostParams& p = model.params();

  // Expected intermediate products: every element of X block-column K
  // pairs with the elements in one specific row of Y block-row K, so
  //   E[products] = sum_K nnzX(col K) * nnzY(row K) / height(K).
  const index_t grid_k = x.grid_cols();
  double products = 0.0;
  for (index_t bk = 0; bk < grid_k; ++bk) {
    double x_col_nnz = 0.0;
    for (index_t bi = 0; bi < x.grid_rows(); ++bi) {
      x_col_nnz += x.At(bi, bk) * static_cast<double>(x.BlockArea(bi, bk));
    }
    double y_row_nnz = 0.0;
    for (index_t bj = 0; bj < y.grid_cols(); ++bj) {
      y_row_nnz += y.At(bk, bj) * static_cast<double>(y.BlockArea(bk, bj));
    }
    products +=
        x_col_nnz * y_row_nnz / static_cast<double>(y.BlockHeight(bk));
  }

  // Write side from the estimated result topology: dense blocks pay the
  // array-touch rate, sparse blocks pay the SPA rate per stored element.
  DensityMap result = EstimateProductDensity(x, y);
  double write_cost = 0.0;
  for (index_t bi = 0; bi < result.grid_rows(); ++bi) {
    for (index_t bj = 0; bj < result.grid_cols(); ++bj) {
      const double area =
          static_cast<double>(result.BlockArea(bi, bj));
      const double rho = result.At(bi, bj);
      if (rho >= rho_write) {
        write_cost += p.dense_write * area;
      } else {
        write_cost += p.sparse_write * rho * area;
      }
    }
  }
  return p.c_ssd * products + write_cost;
}

namespace {

void AppendPlanString(const ChainPlan& plan, int i, int j,
                      std::ostringstream* os) {
  if (i == j) {
    *os << 'A' << i;
    return;
  }
  *os << '(';
  AppendPlanString(plan, i, plan.split[i][j], os);
  *os << '*';
  AppendPlanString(plan, plan.split[i][j] + 1, j, os);
  *os << ')';
}

}  // namespace

std::string ChainPlan::ToString() const {
  if (split.empty()) return "()";
  std::ostringstream os;
  AppendPlanString(*this, 0, static_cast<int>(split.size()) - 1, &os);
  return os.str();
}

ChainPlan PlanChain(const std::vector<const DensityMap*>& maps,
                    const CostModel& model, double rho_write) {
  const int n = static_cast<int>(maps.size());
  ATMX_CHECK_GE(n, 1);
  for (int i = 0; i + 1 < n; ++i) {
    ATMX_CHECK_EQ(maps[i]->cols(), maps[i + 1]->rows());
  }

  ChainPlan plan;
  plan.split.assign(n, std::vector<int>(n, -1));
  if (n == 1) return plan;

  // cost[i][j] / map[i][j]: best cost and estimated topology of the
  // product A_i..A_j. Maps are carried along the DP so that downstream
  // products are priced against realistic intermediate topologies.
  std::vector<std::vector<double>> cost(
      n, std::vector<double>(n, std::numeric_limits<double>::infinity()));
  std::vector<std::vector<std::unique_ptr<DensityMap>>> map(n);
  for (int i = 0; i < n; ++i) {
    map[i].resize(n);
    cost[i][i] = 0.0;
  }

  auto map_of = [&](int i, int j) -> const DensityMap& {
    return i == j ? *maps[i] : *map[i][j];
  };

  for (int length = 2; length <= n; ++length) {
    for (int i = 0; i + length - 1 < n; ++i) {
      const int j = i + length - 1;
      for (int k = i; k < j; ++k) {
        const double candidate =
            cost[i][k] + cost[k + 1][j] +
            EstimateMultiplyCost(map_of(i, k), map_of(k + 1, j), model,
                                 rho_write);
        if (candidate < cost[i][j]) {
          cost[i][j] = candidate;
          plan.split[i][j] = k;
        }
      }
      const int best = plan.split[i][j];
      map[i][j] = std::make_unique<DensityMap>(EstimateProductDensity(
          map_of(i, best), map_of(best + 1, j)));
    }
  }
  plan.estimated_cost = cost[0][n - 1];
  return plan;
}

double EstimateLeftToRightCost(const std::vector<const DensityMap*>& maps,
                               const CostModel& model, double rho_write) {
  ATMX_CHECK_GE(maps.size(), 1u);
  double total = 0.0;
  DensityMap running = *maps[0];
  for (std::size_t i = 1; i < maps.size(); ++i) {
    total += EstimateMultiplyCost(running, *maps[i], model, rho_write);
    running = EstimateProductDensity(running, *maps[i]);
  }
  return total;
}

namespace {

ATMatrix ExecuteSubchain(const std::vector<const ATMatrix*>& chain,
                         const ChainPlan& plan, const AtMult& op, int i,
                         int j, AtMultStats* stats_accum) {
  if (i == j) {
    return *chain[i];  // deep copy of the leaf (chain inputs are reusable)
  }
  const int k = plan.split[i][j];
  ATMatrix left = ExecuteSubchain(chain, plan, op, i, k, stats_accum);
  ATMatrix right = ExecuteSubchain(chain, plan, op, k + 1, j, stats_accum);
  AtMultStats stats;
  ATMatrix result = op.Multiply(left, right, &stats);
  if (stats_accum != nullptr) {
    stats_accum->total_seconds += stats.total_seconds;
    stats_accum->estimate_seconds += stats.estimate_seconds;
    stats_accum->optimize_seconds += stats.optimize_seconds;
    stats_accum->multiply_seconds += stats.multiply_seconds;
    stats_accum->pair_multiplications += stats.pair_multiplications;
    stats_accum->sparse_to_dense_conversions +=
        stats.sparse_to_dense_conversions;
    stats_accum->dense_to_sparse_conversions +=
        stats.dense_to_sparse_conversions;
  }
  return result;
}

}  // namespace

ATMatrix ExecuteChain(const std::vector<const ATMatrix*>& chain,
                      const ChainPlan& plan, const AtMult& op,
                      AtMultStats* stats_accum) {
  ATMX_CHECK_GE(chain.size(), 1u);
  ATMX_CHECK_EQ(chain.size(), plan.split.size());
  return ExecuteSubchain(chain, plan, op, 0,
                         static_cast<int>(chain.size()) - 1, stats_accum);
}

}  // namespace atmx
