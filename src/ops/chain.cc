#include "ops/chain.h"

#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/timer.h"
#include "estimate/density_estimator.h"
#include "estimate/water_level.h"
#include "obs/obs.h"
#if defined(ATMX_OBS_ENABLED)
#include "obs/audit_ledger.h"
#endif
#include "ops/chain_exec.h"
#include "ops/optimizer.h"

namespace atmx {

double EstimateMultiplyCost(const DensityMap& x, const DensityMap& y,
                            const CostModel& model, double rho_write,
                            double write_factor,
                            std::size_t mem_limit_bytes) {
  ATMX_CHECK_EQ(x.cols(), y.rows());
  ATMX_CHECK_EQ(x.block(), y.block());
  const CostParams& p = model.params();

  // Expected intermediate products: every element of X block-column K
  // pairs with the elements in one specific row of Y block-row K, so
  //   E[products] = sum_K nnzX(col K) * nnzY(row K) / height(K).
  const index_t grid_k = x.grid_cols();
  double products = 0.0;
  for (index_t bk = 0; bk < grid_k; ++bk) {
    double x_col_nnz = 0.0;
    for (index_t bi = 0; bi < x.grid_rows(); ++bi) {
      x_col_nnz += x.At(bi, bk) * static_cast<double>(x.BlockArea(bi, bk));
    }
    double y_row_nnz = 0.0;
    for (index_t bj = 0; bj < y.grid_cols(); ++bj) {
      y_row_nnz += y.At(bk, bj) * static_cast<double>(y.BlockArea(bk, bj));
    }
    products +=
        x_col_nnz * y_row_nnz / static_cast<double>(y.BlockHeight(bk));
  }

  // Write side from the estimated result topology: dense blocks pay the
  // array-touch rate, sparse blocks pay the SPA rate per stored element.
  // A finite memory limit raises the classification threshold to the
  // water level this product's estimate would force, so the DP sees the
  // (costlier) sparse writes the SLA will actually impose.
  DensityMap result = EstimateProductDensity(x, y);
  const double threshold =
      mem_limit_bytes == std::numeric_limits<std::size_t>::max()
          ? rho_write
          : EffectiveWriteThreshold(result, rho_write, mem_limit_bytes);
  double write_cost = 0.0;
  for (index_t bi = 0; bi < result.grid_rows(); ++bi) {
    for (index_t bj = 0; bj < result.grid_cols(); ++bj) {
      const double area =
          static_cast<double>(result.BlockArea(bi, bj));
      const double rho = result.At(bi, bj);
      if (rho >= threshold) {
        write_cost += p.dense_write * area;
      } else {
        write_cost += p.sparse_write * rho * area;
      }
    }
  }
  return p.c_ssd * products + write_factor * write_cost;
}

namespace {

// Write-cost scale for the product (i..j) of an n-matrix chain: fused
// execution discounts every intermediate's materialization (resident
// tiles, written once, consumed cache-hot), but the root product's result
// really is handed to the caller at full cost.
double WriteFactorFor(const ChainCostOptions& options, int i, int j, int n) {
  const bool is_root = i == 0 && j == n - 1;
  return options.fused && !is_root ? options.fused_write_factor : 1.0;
}

void AppendPlanString(const ChainPlan& plan, int i, int j,
                      std::ostringstream* os) {
  if (i == j) {
    *os << 'A' << i;
    return;
  }
  *os << '(';
  AppendPlanString(plan, i, plan.split[i][j], os);
  *os << '*';
  AppendPlanString(plan, plan.split[i][j] + 1, j, os);
  *os << ')';
}

}  // namespace

std::string ChainPlan::ToString() const {
  if (split.empty()) return "()";
  std::ostringstream os;
  AppendPlanString(*this, 0, static_cast<int>(split.size()) - 1, &os);
  return os.str();
}

ChainPlan PlanChain(const std::vector<const DensityMap*>& maps,
                    const CostModel& model, double rho_write,
                    const ChainCostOptions& options) {
  const int n = static_cast<int>(maps.size());
  ATMX_CHECK_GE(n, 1);
  for (int i = 0; i + 1 < n; ++i) {
    ATMX_CHECK_EQ(maps[i]->cols(), maps[i + 1]->rows());
  }

  ChainPlan plan;
  plan.split.assign(n, std::vector<int>(n, -1));
  if (n == 1) return plan;

  // cost[i][j] / map[i][j]: best cost and estimated topology of the
  // product A_i..A_j. Maps are carried along the DP so that downstream
  // products are priced against realistic intermediate topologies.
  std::vector<std::vector<double>> cost(
      n, std::vector<double>(n, std::numeric_limits<double>::infinity()));
  std::vector<std::vector<std::unique_ptr<DensityMap>>> map(n);
  for (int i = 0; i < n; ++i) {
    map[i].resize(n);
    cost[i][i] = 0.0;
  }

  auto map_of = [&](int i, int j) -> const DensityMap& {
    return i == j ? *maps[i] : *map[i][j];
  };

  for (int length = 2; length <= n; ++length) {
    for (int i = 0; i + length - 1 < n; ++i) {
      const int j = i + length - 1;
      const double write_factor = WriteFactorFor(options, i, j, n);
      for (int k = i; k < j; ++k) {
        const double candidate =
            cost[i][k] + cost[k + 1][j] +
            EstimateMultiplyCost(map_of(i, k), map_of(k + 1, j), model,
                                 rho_write, write_factor,
                                 options.result_mem_limit_bytes);
        if (candidate < cost[i][j]) {
          cost[i][j] = candidate;
          plan.split[i][j] = k;
        }
      }
      const int best = plan.split[i][j];
      map[i][j] = std::make_unique<DensityMap>(EstimateProductDensity(
          map_of(i, best), map_of(best + 1, j)));
    }
  }
  plan.estimated_cost = cost[0][n - 1];
  return plan;
}

double EstimateLeftToRightCost(const std::vector<const DensityMap*>& maps,
                               const CostModel& model, double rho_write,
                               const ChainCostOptions& options) {
  const int n = static_cast<int>(maps.size());
  ATMX_CHECK_GE(n, 1);
  double total = 0.0;
  DensityMap running = *maps[0];
  for (int i = 1; i < n; ++i) {
    total += EstimateMultiplyCost(running, *maps[i], model, rho_write,
                                  WriteFactorFor(options, 0, i, n),
                                  options.result_mem_limit_bytes);
    running = EstimateProductDensity(running, *maps[i]);
  }
  return total;
}

namespace {

// A subchain's result without deep-copying leaves: `view` is always
// valid; `owned` holds materialized intermediates.
struct NodeResult {
  const ATMatrix* view = nullptr;
  std::unique_ptr<ATMatrix> owned;
};

// Product-at-a-time execution (post-order, left subtree first). JIT
// conversion caches are shared per distinct source matrix so a matrix
// appearing in several products converts each tile at most once per chain.
NodeResult ExecuteSubchain(
    const std::vector<const ATMatrix*>& chain, const ChainPlan& plan,
    const AtMult& op, int i, int j,
    std::map<const ATMatrix*, std::unique_ptr<ConversionCache>>* caches,
    const internal::ChainBudgetPlan& budget, ChainExecStats* stats) {
  if (i == j) {
    NodeResult leaf;
    leaf.view = chain[i];
    return leaf;
  }
  const int k = plan.split[i][j];
  NodeResult left =
      ExecuteSubchain(chain, plan, op, i, k, caches, budget, stats);
  NodeResult right =
      ExecuteSubchain(chain, plan, op, k + 1, j, caches, budget, stats);
  auto cache_for = [caches](const ATMatrix* m) {
    auto& slot = (*caches)[m];
    if (slot == nullptr) slot = std::make_unique<ConversionCache>();
    return slot.get();
  };
  // Post-order product id — per_product holds exactly this node's
  // completed subtree products at this point. Under an active chain
  // budget the planned threshold replaces the operator's own water
  // level, mirroring the fused executor decision for decision.
  const std::size_t product_index = stats->per_product.size();
  const double rho_override =
      budget.active && product_index < budget.rho_w.size()
          ? budget.rho_w[product_index]
          : -1.0;
  AtMultStats product_stats;
  NodeResult result;
  result.owned = std::make_unique<ATMatrix>(
      op.Multiply(*left.view, *right.view, &product_stats,
                  cache_for(left.view), cache_for(right.view),
                  rho_override));
  result.view = result.owned.get();
  // Intermediate operands are dead now; drop their conversions with them.
  if (left.owned != nullptr) caches->erase(left.view);
  if (right.owned != nullptr) caches->erase(right.view);
  internal::AccumulateProductStats(product_stats, &stats->total);
  stats->per_product.push_back(std::move(product_stats));
  return result;
}

#if defined(ATMX_OBS_ENABLED)
void RecordChainDecision(const std::vector<const ATMatrix*>& chain,
                         const ChainPlan& plan, const AtMult& op,
                         const ChainExecStats& stats, double total_seconds) {
  obs::DecisionLog& log = obs::DecisionLog::Global();
  const bool ledger_enabled = obs::AuditLedger::Global().enabled();
  if (!log.enabled() && !ledger_enabled) return;
  double left_to_right_cost = 0.0;
  if (chain.size() >= 2) {
    std::vector<const DensityMap*> maps;
    maps.reserve(chain.size());
    for (const ATMatrix* m : chain) maps.push_back(&m->density_map());
    ChainCostOptions options;
    options.fused = stats.fused;
    left_to_right_cost = EstimateLeftToRightCost(
        maps, op.cost_model(), op.config().rho_write, options);
  }
  const std::uint64_t op_id = log.NextOpId();
  if (ledger_enabled) {
    obs::AuditLedger::Global().SetCostParams(op.cost_model().params());
    obs::ChainAuditRecord audit;
    audit.op = op_id;
    audit.planned_cost = plan.estimated_cost;
    audit.alternative_cost = left_to_right_cost;
    audit.fused = stats.fused;
    audit.measured_seconds = total_seconds;
    audit.budget_bytes = stats.budget_bytes;
    audit.resident_peak_bytes = stats.resident_peak_bytes;
    audit.rho_w.reserve(stats.per_product.size());
    for (const AtMultStats& p : stats.per_product) {
      audit.rho_w.push_back(p.effective_write_threshold);
    }
    obs::AuditLedger::Global().RecordChain(audit);
  }
  if (!log.enabled()) return;
  obs::ChainDecisionRecord rec;
  rec.op_id = op_id;
  rec.plan = plan.ToString();
  rec.length = static_cast<index_t>(chain.size());
  rec.planned_cost = plan.estimated_cost;
  rec.left_to_right_cost = left_to_right_cost;
  rec.fused = stats.fused;
  rec.fallback_reason = stats.fallback_reason;
  rec.fused_tasks = stats.fused_tasks;
  rec.resident_peak_bytes = stats.resident_peak_bytes;
  rec.budget_bytes = stats.budget_bytes;
  rec.projected_peak_bytes = stats.projected_peak_bytes;
  rec.total_seconds = total_seconds;
  rec.product_summaries.reserve(stats.per_product.size());
  for (const AtMultStats& p : stats.per_product) {
    std::ostringstream os;
    os << "pairs=" << p.pair_multiplications
       << " kernels=" << p.TotalKernelInvocations()
       << " conv=" << (p.sparse_to_dense_conversions +
                       p.dense_to_sparse_conversions)
       << " c_tiles(d/sp)=" << p.dense_result_tiles << "/"
       << p.sparse_result_tiles << " rho_w=" << p.effective_write_threshold
       << " multiply=" << p.multiply_seconds << "s";
    rec.product_summaries.push_back(os.str());
  }
  log.RecordChain(rec);
}
#endif

}  // namespace

ATMatrix ExecuteChain(const std::vector<const ATMatrix*>& chain,
                      const ChainPlan& plan, const AtMult& op,
                      ChainExecStats* stats) {
  ATMX_CHECK_GE(chain.size(), 1u);
  ATMX_CHECK_EQ(chain.size(), plan.split.size());
  ChainExecStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = ChainExecStats();

  WallTimer timer;
  ATMatrix result;
  if (chain.size() == 1) {
    result = *chain[0];  // deep copy: chain inputs are reusable
  } else {
    // One chain-scope memory plan drives BOTH executors: under a finite
    // budget the per-product thresholds it commits are imposed on the
    // fused DAG and the product-at-a-time path alike, which is what keeps
    // the two bitwise identical at every budget.
    const internal::ChainBudgetPlan budget =
        internal::PlanChainBudget(chain, plan, op);
    stats->budget_bytes = budget.active ? budget.budget_bytes : 0;
    stats->projected_peak_bytes = budget.projected_peak_bytes;
    stats->budget_feasible = budget.feasible;
    bool fuse = false;
    if (!op.config().fused_chains) {
      stats->fallback_reason = "disabled";
    } else if (!internal::CanFuseChain(chain, op.config(),
                                       &stats->fallback_reason)) {
      // reason filled by CanFuseChain
    } else if (budget.active && !budget.feasible) {
      // Last-resort downgrade: no threshold assignment fits the budget,
      // so fusion's resident set cannot be bounded — run
      // product-at-a-time at the clamped floor thresholds.
      stats->fallback_reason = "budget_infeasible";
    } else {
      fuse = true;
    }
    if (fuse) {
      result = internal::ExecuteChainFused(chain, plan, op, budget, stats);
    } else {
      std::map<const ATMatrix*, std::unique_ptr<ConversionCache>> caches;
      NodeResult root = ExecuteSubchain(chain, plan, op, 0,
                                        static_cast<int>(chain.size()) - 1,
                                        &caches, budget, stats);
      result = std::move(*root.owned);
    }
  }
  const double total_seconds = timer.ElapsedSeconds();
#if defined(ATMX_OBS_ENABLED)
  RecordChainDecision(chain, plan, op, *stats, total_seconds);
#else
  (void)total_seconds;
#endif
  return result;
}

ATMatrix ExecuteChain(const std::vector<const ATMatrix*>& chain,
                      const ChainPlan& plan, const AtMult& op,
                      AtMultStats* stats_accum) {
  ChainExecStats stats;
  ATMatrix result = ExecuteChain(chain, plan, op, &stats);
  if (stats_accum != nullptr) {
    // Historical contract: *accumulates* into the caller's struct.
    internal::AccumulateProductStats(stats.total, stats_accum);
  }
  return result;
}

}  // namespace atmx
