// Naive reference multiplication used by the test suite to validate every
// optimized path. Deliberately independent of the kernel implementations
// (plain triple loop over dense arrays).

#ifndef ATMX_OPS_REFERENCE_MULT_H_
#define ATMX_OPS_REFERENCE_MULT_H_

#include "storage/dense_matrix.h"

namespace atmx {

// C = A * B, plain i-j-k triple loop. Intended for small test shapes.
DenseMatrix ReferenceMultiply(const DenseMatrix& a, const DenseMatrix& b);

}  // namespace atmx

#endif  // ATMX_OPS_REFERENCE_MULT_H_
