#include "ops/atmult.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/math_util.h"
#include "common/timer.h"
#include "estimate/density_estimator.h"
#include "estimate/water_level.h"
#include "kernels/kernel_dispatch.h"
#include "obs/obs.h"
#if defined(ATMX_OBS_ENABLED)
#include "obs/audit_ledger.h"
#endif
#include "ops/optimizer.h"
#include "ops/product_task.h"
#include "tile/partitioner.h"
#include "topology/thread_pool.h"

namespace atmx {

double AtMultStats::MaxTeamBusySeconds() const {
  double m = 0.0;
  for (double s : team_busy_seconds) m = std::max(m, s);
  return m;
}

double AtMultStats::MaxTeamCpuSeconds() const {
  double m = 0.0;
  for (double s : team_cpu_seconds) m = std::max(m, s);
  return m;
}

double AtMultStats::LocalFraction() const {
  const std::uint64_t local = local_read_bytes + local_write_bytes;
  const std::uint64_t total =
      local + remote_read_bytes + remote_write_bytes;
  return total == 0 ? 1.0
                    : static_cast<double>(local) / static_cast<double>(total);
}

std::string AtMultStats::ToString() const {
  std::ostringstream os;
  os << "AtMultStats{total=" << total_seconds
     << "s, estimate=" << estimate_seconds
     << "s, optimize=" << optimize_seconds
     << "s, multiply=" << multiply_seconds
     << "s, rho_w=" << effective_write_threshold
     << ", pairs=" << pair_multiplications
     << ", conv(s->d)=" << sparse_to_dense_conversions
     << ", conv(d->s)=" << dense_to_sparse_conversions
     << ", c_tiles(d/sp)=" << dense_result_tiles << "/"
     << sparse_result_tiles << ", local=" << LocalFraction()
     << ", stolen=" << tasks_stolen;
  os << ", kernels={";
  bool first = true;
  for (int v = 0; v < kNumKernelTypes; ++v) {
    if (kernel_invocations[v] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << KernelTypeName(static_cast<KernelType>(v)) << "="
       << kernel_invocations[v];
  }
  os << "}}";
  return os.str();
}

AtMult::AtMult(const AtmConfig& config, const CostModel& cost_model)
    : config_(config), cost_model_(cost_model) {}

ATMatrix AtMult::Multiply(const ATMatrix& a, const ATMatrix& b,
                          AtMultStats* stats) const {
  return MultiplyImpl(nullptr, a, b, stats);
}

ATMatrix AtMult::Multiply(const ATMatrix& a, const ATMatrix& b,
                          AtMultStats* stats, ConversionCache* a_cache,
                          ConversionCache* b_cache) const {
  return MultiplyImpl(nullptr, a, b, stats, a_cache, b_cache);
}

ATMatrix AtMult::Multiply(const ATMatrix& a, const ATMatrix& b,
                          AtMultStats* stats, ConversionCache* a_cache,
                          ConversionCache* b_cache,
                          double rho_w_override) const {
  return MultiplyImpl(nullptr, a, b, stats, a_cache, b_cache, rho_w_override);
}

ATMatrix AtMult::Multiply(const CsrMatrix& a, const ATMatrix& b,
                          AtMultStats* stats) const {
  return MultiplyImpl(nullptr, AtmFromCsr(a, config_), b, stats);
}

ATMatrix AtMult::Multiply(const ATMatrix& a, const CsrMatrix& b,
                          AtMultStats* stats) const {
  return MultiplyImpl(nullptr, a, AtmFromCsr(b, config_), stats);
}

ATMatrix AtMult::Multiply(const DenseMatrix& a, const ATMatrix& b,
                          AtMultStats* stats) const {
  return MultiplyImpl(nullptr, AtmFromDense(a, config_), b, stats);
}

ATMatrix AtMult::Multiply(const ATMatrix& a, const DenseMatrix& b,
                          AtMultStats* stats) const {
  return MultiplyImpl(nullptr, a, AtmFromDense(b, config_), stats);
}

ATMatrix AtMult::MultiplyAdd(const ATMatrix& c, const ATMatrix& a,
                             const ATMatrix& b, AtMultStats* stats) const {
  ATMX_CHECK_EQ(c.rows(), a.rows());
  ATMX_CHECK_EQ(c.cols(), b.cols());
  ATMX_CHECK_EQ(c.b_atomic(), a.b_atomic());
  return MultiplyImpl(&c, a, b, stats);
}

ATMatrix AtMult::MultiplyImpl(const ATMatrix* c_init, const ATMatrix& a,
                              const ATMatrix& b, AtMultStats* stats,
                              ConversionCache* a_cache,
                              ConversionCache* b_cache,
                              double rho_w_override) const {
  ATMX_CHECK_EQ(a.cols(), b.rows());
  ATMX_CHECK_EQ(a.b_atomic(), b.b_atomic());
  AtMultStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = AtMultStats();

  WallTimer total_timer;
  const index_t block = a.b_atomic();
  ATMX_TRACE_SPAN_ARGS("op", "atmult",
                       {"m", a.rows()}, {"k", a.cols()}, {"n", b.cols()},
                       {"nnz_a", a.nnz()}, {"nnz_b", b.nnz()});
#if defined(ATMX_OBS_ENABLED)
  const bool audit_enabled = obs::DecisionLog::Global().enabled();
  const bool ledger_enabled = obs::AuditLedger::Global().enabled();
  const std::uint64_t op_id = (audit_enabled || ledger_enabled)
                                  ? obs::DecisionLog::Global().NextOpId()
                                  : 0;
#endif

  // --- Density estimation + flexible write threshold (Alg. 2 l. 2-3). ---
  DensityMap estimate;
  double rho_w = config_.rho_write;
  bool wl_feasible = true;
  const bool use_estimate = config_.density_estimation;
  if (use_estimate) {
    ATMX_TRACE_SPAN("op", "estimate_density");
    WallTimer est_timer;
    estimate = EstimateProductDensity(a.density_map(), b.density_map());
    if (c_init != nullptr) {
      estimate = CombineAdditive(estimate, c_init->density_map());
    }
    if (rho_w_override >= 0.0) {
      // The caller (chain executor) already solved the water level
      // chain-wide; its per-product threshold replaces the local solve.
      rho_w = rho_w_override;
    } else {
      rho_w = EffectiveWriteThreshold(estimate, config_.rho_write,
                                      config_.result_mem_limit_bytes,
                                      &wl_feasible);
    }
    stats->estimate_seconds = est_timer.ElapsedSeconds();
  }
  stats->effective_write_threshold = rho_w;
  ATMX_GAUGE_SET("atmult.waterlevel.rho_w", rho_w);
#if defined(ATMX_OBS_ENABLED)
  std::uint64_t projected_bytes = 0;
  if (use_estimate) {
    // Projected result memory at the effective threshold — the number the
    // mem-tracker high-water mark (mem.high_water_bytes) and the realized
    // result size (atmult.result_bytes) are compared against.
    projected_bytes = EstimateMemoryBytes(estimate, rho_w);
    const double projected = static_cast<double>(projected_bytes);
    ATMX_GAUGE_SET("atmult.waterlevel.predicted_bytes", projected);
    if (config_.result_mem_limit_bytes !=
        std::numeric_limits<std::size_t>::max()) {
      // Water-level headroom: how far under the memory SLA the projected
      // result stays at the effective threshold (negative = infeasible
      // SLA).
      ATMX_GAUGE_SET(
          "atmult.waterlevel.headroom_bytes",
          static_cast<double>(config_.result_mem_limit_bytes) - projected);
    }
  }
#endif

  const index_t num_ti = a.num_row_bands();
  const index_t num_tj = b.num_col_bands();
  const index_t num_tasks = num_ti * num_tj;
  std::vector<Tile> c_tiles(static_cast<std::size_t>(num_tasks));

  // JIT conversion cache: private per operation unless the caller injects
  // shared caches (the chain executor shares one cache per source matrix,
  // addressed with the kLeft key space on both sides; the private cache is
  // one object split by side). Per-operation conversion counts are deltas
  // so an injected cache's earlier hits are not re-counted.
  ConversionCache local_cache;
  const bool a_injected = a_cache != nullptr;
  const bool b_injected = b_cache != nullptr;
  if (!a_injected) a_cache = &local_cache;
  if (!b_injected) b_cache = &local_cache;
  const index_t s2d_before =
      a_cache->sparse_to_dense_count() +
      (b_cache == a_cache ? 0 : b_cache->sparse_to_dense_count());
  const index_t d2s_before =
      a_cache->dense_to_sparse_count() +
      (b_cache == a_cache ? 0 : b_cache->dense_to_sparse_count());
  Mutex stats_mutex;
#if defined(ATMX_OBS_ENABLED)
  // Result-tile bytes recorded with the mem tracker during this operation;
  // released at the end (ownership passes to the caller) so the tracker
  // follows the operator-transient footprint.
  std::atomic<std::uint64_t> op_tracked_bytes{0};
#endif

  // Per-atomic-block non-zero counts of the result, accumulated in-task
  // while the produced tile is still cache-hot (C tiles cover disjoint,
  // block-aligned regions, so tasks write disjoint grid cells). This grid
  // becomes the result's density map without a second full pass.
  DensityMap c_map(a.rows(), b.cols(), block);
  const index_t grid_cols = c_map.grid_cols();
  std::vector<double> block_counts(
      static_cast<std::size_t>(c_map.grid_rows()) * grid_cols, 0.0);

  const int teams = config_.EffectiveTeams();
  const int threads = config_.EffectiveThreadsPerTeam();
  TeamScheduler scheduler(teams, threads);

  internal::ProductContext pctx;
  pctx.a = internal::OperandView::FromMatrix(a);
  pctx.b = internal::OperandView::FromMatrix(b);
  pctx.block = block;
  pctx.use_estimate = use_estimate;
  pctx.estimate = &estimate;
  pctx.rho_w = rho_w;
  pctx.dynamic_conversion = config_.dynamic_conversion;
  pctx.cost_model = &cost_model_;
  pctx.a_cache = a_cache;
  pctx.a_cache_side = ConversionCache::kLeft;
  pctx.b_cache = b_cache;
  // The private cache is one object for both operands, split by key side;
  // injected caches are per-matrix objects addressed uniformly as kLeft.
  pctx.b_cache_side =
      b_injected ? ConversionCache::kLeft : ConversionCache::kRight;
  pctx.c_init = c_init;
  pctx.c_tiles = &c_tiles;
  pctx.block_counts = &block_counts;
  pctx.grid_cols = grid_cols;
  pctx.stats = stats;
  pctx.stats_mutex = &stats_mutex;
#if defined(ATMX_OBS_ENABLED)
  pctx.op_id = op_id;
  pctx.audit_enabled = audit_enabled;
  pctx.ledger_enabled = ledger_enabled;
  pctx.tracked_bytes = &op_tracked_bytes;
  if (ledger_enabled) {
    // The counterfactual replay re-runs DecidePairRepresentations with
    // the parameters this operation actually decided with.
    obs::AuditLedger::Global().SetCostParams(cost_model_.params());
  }
#endif

  auto run_task = [&](WorkerTeam& team, index_t task) {
    internal::RunProductTileTask(pctx, team, task);
  };


  ScheduleOptions sched_options;
  sched_options.work_stealing = config_.work_stealing;
  if (config_.work_stealing && num_tasks > 0) {
    // Per-task FLOP/byte cost estimates for LPT queue ordering, O(1) per
    // task from per-band aggregate densities (the per-pair refinement
    // happens later inside the task; queue order only needs magnitudes).
    const index_t k_blocks = CeilDiv(a.cols(), block);
    std::vector<double> rho_a_band(static_cast<std::size_t>(num_ti));
    for (index_t ti = 0; ti < num_ti; ++ti) {
      const index_t r0 = a.row_bounds()[ti];
      const index_t m = a.row_bounds()[ti + 1] - r0;
      rho_a_band[static_cast<std::size_t>(ti)] = a.density_map().RegionDensity(
          r0 / block, 0, CeilDiv(m, block), k_blocks);
    }
    std::vector<double> rho_b_band(static_cast<std::size_t>(num_tj));
    for (index_t tj = 0; tj < num_tj; ++tj) {
      const index_t c0 = b.col_bounds()[tj];
      const index_t n = b.col_bounds()[tj + 1] - c0;
      rho_b_band[static_cast<std::size_t>(tj)] = b.density_map().RegionDensity(
          0, c0 / block, k_blocks, CeilDiv(n, block));
    }
    auto task_cost = std::make_shared<std::vector<double>>(
        static_cast<std::size_t>(num_tasks));
    for (index_t task = 0; task < num_tasks; ++task) {
      const index_t ti = task / num_tj;
      const index_t tj = task % num_tj;
      MultiplyShape shape;
      shape.m = a.row_bounds()[ti + 1] - a.row_bounds()[ti];
      shape.k = a.cols();
      shape.n = b.col_bounds()[tj + 1] - b.col_bounds()[tj];
      shape.rho_a = rho_a_band[static_cast<std::size_t>(ti)];
      shape.rho_b = rho_b_band[static_cast<std::size_t>(tj)];
      if (use_estimate) {
        shape.rho_c = estimate.RegionDensity(
            a.row_bounds()[ti] / block, b.col_bounds()[tj] / block,
            CeilDiv(shape.m, block), CeilDiv(shape.n, block));
      }
      (*task_cost)[static_cast<std::size_t>(task)] =
          EstimateTaskCost(cost_model_, shape);
    }
    sched_options.cost_of = [task_cost](index_t task) {
      return (*task_cost)[static_cast<std::size_t>(task)];
    };
  }
  ScheduleStats sched_stats;
  scheduler.RunTasks(
      num_tasks,
      [&](index_t task) {
        // Tasks follow their A tile-row's round-robin home (III-F); with
        // work stealing this is the *initial* queue, and run_task accounts
        // locality against the team that actually executes (its
        // WorkerTeam::team_id), so stolen tasks honestly show up as remote
        // reads of their A tiles.
        return static_cast<int>((task / num_tj) % teams);
      },
      run_task, sched_options, &sched_stats);
  stats->tasks_stolen = static_cast<index_t>(sched_stats.TotalSteals());
  stats->team_busy_seconds = sched_stats.busy_seconds;
  stats->team_cpu_seconds = sched_stats.cpu_seconds;

  stats->sparse_to_dense_conversions =
      a_cache->sparse_to_dense_count() +
      (b_cache == a_cache ? 0 : b_cache->sparse_to_dense_count()) -
      s2d_before;
  stats->dense_to_sparse_conversions =
      a_cache->dense_to_sparse_count() +
      (b_cache == a_cache ? 0 : b_cache->dense_to_sparse_count()) -
      d2s_before;
  for (const Tile& t : c_tiles) {
    if (t.is_dense()) {
      stats->dense_result_tiles++;
    } else {
      stats->sparse_result_tiles++;
    }
  }

  for (index_t bi = 0; bi < c_map.grid_rows(); ++bi) {
    for (index_t bj = 0; bj < grid_cols; ++bj) {
      const double area = static_cast<double>(c_map.BlockArea(bi, bj));
      c_map.Set(bi, bj,
                area > 0 ? block_counts[bi * grid_cols + bj] / area : 0.0);
    }
  }
  ATMatrix result(a.rows(), b.cols(), block, std::move(c_tiles),
                  std::move(c_map));
  stats->total_seconds = total_timer.ElapsedSeconds();

#if defined(ATMX_OBS_ENABLED)
  {
    auto& registry = obs::MetricsRegistry::Global();
    ATMX_COUNTER_INC("atmult.operations");
    ATMX_COUNTER_ADD("atmult.pairs", stats->pair_multiplications);
    ATMX_COUNTER_ADD("atmult.result_tiles.dense", stats->dense_result_tiles);
    ATMX_COUNTER_ADD("atmult.result_tiles.sparse",
                     stats->sparse_result_tiles);
    ATMX_COUNTER_ADD("atmult.bytes.local_read", stats->local_read_bytes);
    ATMX_COUNTER_ADD("atmult.bytes.remote_read", stats->remote_read_bytes);
    ATMX_COUNTER_ADD("atmult.bytes.local_write", stats->local_write_bytes);
    ATMX_COUNTER_ADD("atmult.bytes.remote_write", stats->remote_write_bytes);
    ATMX_HISTOGRAM_OBSERVE("atmult.seconds.total", stats->total_seconds);
    // Per-variant invocation counters: names are per-variant, so the
    // function-local-static caching macro does not apply; registration
    // cost is once per operation, not per pair.
    for (int v = 0; v < kNumKernelTypes; ++v) {
      if (stats->kernel_invocations[v] > 0) {
        registry.GetCounter(KernelMetricName(static_cast<KernelType>(v)))
            .Add(static_cast<std::uint64_t>(stats->kernel_invocations[v]));
      }
    }
    // Estimator telemetry: predicted vs. actual per-block density error,
    // joined into the prediction audit ledger when one is armed.
    const DensityMap& actual = result.density_map();
    if (use_estimate && estimate.grid_rows() == actual.grid_rows() &&
        estimate.grid_cols() == actual.grid_cols()) {
      for (index_t bi = 0; bi < actual.grid_rows(); ++bi) {
        for (index_t bj = 0; bj < actual.grid_cols(); ++bj) {
          const double err =
              std::abs(estimate.At(bi, bj) - actual.At(bi, bj));
          ATMX_HISTOGRAM_OBSERVE_WITH("atmult.estimator.abs_error", err,
                                      0.001, 0.005, 0.01, 0.05, 0.1, 0.25,
                                      0.5, 1.0);
          if (ledger_enabled) {
            obs::DensityAuditRecord r;
            r.op = op_id;
            r.bi = bi;
            r.bj = bj;
            r.predicted = estimate.At(bi, bj);
            r.actual = actual.At(bi, bj);
            obs::AuditLedger::Global().RecordDensity(r);
          }
        }
      }
      ATMX_GAUGE_SET("atmult.estimator.predicted_nnz",
                     estimate.ExpectedNnz());
      ATMX_GAUGE_SET("atmult.estimator.actual_nnz", actual.ExpectedNnz());
    }
    if (ledger_enabled && use_estimate) {
      // Water-level outcome: projection vs the materialized result and
      // the tracker high water while this operation ran.
      obs::WaterLevelAuditRecord w;
      w.op = op_id;
      w.rho_w = rho_w;
      w.projected_bytes = projected_bytes;
      w.result_bytes = result.MemoryBytes();
      w.high_water_bytes = obs::MemTracker::Global().high_water_bytes();
      w.feasible = wl_feasible;
      obs::AuditLedger::Global().RecordWaterLevel(w);
    }
    // Placement balance across the worker teams (first-touch home nodes of
    // the result tiles). Dynamic names => direct registry calls.
    std::vector<index_t> node_tiles(static_cast<std::size_t>(teams), 0);
    for (const Tile& t : result.tiles()) {
      const int node = t.home_node();
      if (node >= 0 && node < teams) {
        ++node_tiles[static_cast<std::size_t>(node)];
      }
    }
    index_t min_tiles = std::numeric_limits<index_t>::max();
    index_t max_tiles = 0;
    for (int node = 0; node < teams; ++node) {
      const index_t count = node_tiles[static_cast<std::size_t>(node)];
      registry
          .GetGauge("atmult.placement.node." + std::to_string(node) +
                    ".result_tiles")
          .Set(static_cast<double>(count));
      min_tiles = std::min(min_tiles, count);
      max_tiles = std::max(max_tiles, count);
    }
    ATMX_GAUGE_SET("atmult.placement.balance",
                   max_tiles > 0 ? static_cast<double>(min_tiles) /
                                       static_cast<double>(max_tiles)
                                 : 1.0);
    // Memory telemetry close-out: the realized result size (compare
    // against atmult.waterlevel.predicted_bytes), the kernel's view of the
    // process, and the release of this operation's tracked footprint (the
    // high-water mark keeps the peak).
    ATMX_GAUGE_SET("atmult.result_bytes",
                   static_cast<double>(result.MemoryBytes()));
    obs::MemTracker::Global().RecordFree(
        op_tracked_bytes.load(std::memory_order_relaxed));
    obs::MemTracker::SampleProcess();
  }
#endif
  return result;
}

}  // namespace atmx
