#include "ops/atmult.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/math_util.h"
#include "common/timer.h"
#include "estimate/density_estimator.h"
#include "estimate/water_level.h"
#include "kernels/kernel_dispatch.h"
#include "kernels/sparse_accumulator.h"
#include "obs/obs.h"
#include "ops/optimizer.h"
#include "tile/partitioner.h"
#include "topology/thread_pool.h"

namespace atmx {

double AtMultStats::MaxTeamBusySeconds() const {
  double m = 0.0;
  for (double s : team_busy_seconds) m = std::max(m, s);
  return m;
}

double AtMultStats::MaxTeamCpuSeconds() const {
  double m = 0.0;
  for (double s : team_cpu_seconds) m = std::max(m, s);
  return m;
}

double AtMultStats::LocalFraction() const {
  const std::uint64_t local = local_read_bytes + local_write_bytes;
  const std::uint64_t total =
      local + remote_read_bytes + remote_write_bytes;
  return total == 0 ? 1.0
                    : static_cast<double>(local) / static_cast<double>(total);
}

std::string AtMultStats::ToString() const {
  std::ostringstream os;
  os << "AtMultStats{total=" << total_seconds
     << "s, estimate=" << estimate_seconds
     << "s, optimize=" << optimize_seconds
     << "s, multiply=" << multiply_seconds
     << "s, rho_w=" << effective_write_threshold
     << ", pairs=" << pair_multiplications
     << ", conv(s->d)=" << sparse_to_dense_conversions
     << ", conv(d->s)=" << dense_to_sparse_conversions
     << ", c_tiles(d/sp)=" << dense_result_tiles << "/"
     << sparse_result_tiles << ", local=" << LocalFraction()
     << ", stolen=" << tasks_stolen;
  os << ", kernels={";
  bool first = true;
  for (int v = 0; v < kNumKernelTypes; ++v) {
    if (kernel_invocations[v] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << KernelTypeName(static_cast<KernelType>(v)) << "="
       << kernel_invocations[v];
  }
  os << "}}";
  return os.str();
}

namespace {

// One matching tile pair contributing to a C tile: A tile x B tile over the
// shared contraction range [k0, k1).
struct MatchedPair {
  const Tile* a_tile;
  index_t a_idx;
  const Tile* b_tile;
  index_t b_idx;
  index_t k0;
  index_t k1;
};

// Prepared pair: operands resolved to concrete representations/windows.
struct PreparedPair {
  Operand a;
  Operand b;
  std::uint64_t a_read_bytes;
  std::uint64_t b_read_bytes;
  int a_home;
  int b_home;
};

// Concatenates per-thread row-chunk CSRs (chunk c covers rows
// [splits[c], splits[c+1])) into one matrix of `rows` rows.
CsrMatrix ConcatCsrRowChunks(std::vector<CsrMatrix> chunks, index_t rows,
                             index_t cols) {
  index_t nnz = 0;
  for (const CsrMatrix& c : chunks) nnz += c.nnz();
  std::vector<index_t> row_ptr;
  row_ptr.reserve(rows + 1);
  row_ptr.push_back(0);
  std::vector<index_t> col_idx;
  col_idx.reserve(nnz);
  std::vector<value_t> values;
  values.reserve(nnz);
  for (const CsrMatrix& c : chunks) {
    const index_t offset = static_cast<index_t>(col_idx.size());
    for (index_t i = 0; i < c.rows(); ++i) {
      row_ptr.push_back(c.row_ptr()[i + 1] + offset);
    }
    col_idx.insert(col_idx.end(), c.col_idx().begin(), c.col_idx().end());
    values.insert(values.end(), c.values().begin(), c.values().end());
  }
  ATMX_CHECK_EQ(static_cast<index_t>(row_ptr.size()), rows + 1);
  return CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

// Approximate bytes read from an operand window, for locality accounting.
std::uint64_t ApproxWindowBytes(bool dense, double rho, index_t m,
                                index_t n) {
  const double area = static_cast<double>(m) * static_cast<double>(n);
  return static_cast<std::uint64_t>(
      dense ? area * kDenseElemBytes : rho * area * kSparseElemBytes);
}

}  // namespace

AtMult::AtMult(const AtmConfig& config, const CostModel& cost_model)
    : config_(config), cost_model_(cost_model) {}

ATMatrix AtMult::Multiply(const ATMatrix& a, const ATMatrix& b,
                          AtMultStats* stats) const {
  return MultiplyImpl(nullptr, a, b, stats);
}

ATMatrix AtMult::Multiply(const CsrMatrix& a, const ATMatrix& b,
                          AtMultStats* stats) const {
  return MultiplyImpl(nullptr, AtmFromCsr(a, config_), b, stats);
}

ATMatrix AtMult::Multiply(const ATMatrix& a, const CsrMatrix& b,
                          AtMultStats* stats) const {
  return MultiplyImpl(nullptr, a, AtmFromCsr(b, config_), stats);
}

ATMatrix AtMult::Multiply(const DenseMatrix& a, const ATMatrix& b,
                          AtMultStats* stats) const {
  return MultiplyImpl(nullptr, AtmFromDense(a, config_), b, stats);
}

ATMatrix AtMult::Multiply(const ATMatrix& a, const DenseMatrix& b,
                          AtMultStats* stats) const {
  return MultiplyImpl(nullptr, a, AtmFromDense(b, config_), stats);
}

ATMatrix AtMult::MultiplyAdd(const ATMatrix& c, const ATMatrix& a,
                             const ATMatrix& b, AtMultStats* stats) const {
  ATMX_CHECK_EQ(c.rows(), a.rows());
  ATMX_CHECK_EQ(c.cols(), b.cols());
  ATMX_CHECK_EQ(c.b_atomic(), a.b_atomic());
  return MultiplyImpl(&c, a, b, stats);
}

ATMatrix AtMult::MultiplyImpl(const ATMatrix* c_init, const ATMatrix& a,
                              const ATMatrix& b, AtMultStats* stats) const {
  ATMX_CHECK_EQ(a.cols(), b.rows());
  ATMX_CHECK_EQ(a.b_atomic(), b.b_atomic());
  AtMultStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = AtMultStats();

  WallTimer total_timer;
  const index_t block = a.b_atomic();
  ATMX_TRACE_SPAN_ARGS("op", "atmult",
                       {"m", a.rows()}, {"k", a.cols()}, {"n", b.cols()},
                       {"nnz_a", a.nnz()}, {"nnz_b", b.nnz()});
#if defined(ATMX_OBS_ENABLED)
  const bool audit_enabled = obs::DecisionLog::Global().enabled();
  const std::uint64_t op_id =
      audit_enabled ? obs::DecisionLog::Global().NextOpId() : 0;
#endif

  // --- Density estimation + flexible write threshold (Alg. 2 l. 2-3). ---
  DensityMap estimate;
  double rho_w = config_.rho_write;
  const bool use_estimate = config_.density_estimation;
  if (use_estimate) {
    ATMX_TRACE_SPAN("op", "estimate_density");
    WallTimer est_timer;
    estimate = EstimateProductDensity(a.density_map(), b.density_map());
    if (c_init != nullptr) {
      estimate = CombineAdditive(estimate, c_init->density_map());
    }
    rho_w = EffectiveWriteThreshold(estimate, config_.rho_write,
                                    config_.result_mem_limit_bytes);
    stats->estimate_seconds = est_timer.ElapsedSeconds();
  }
  stats->effective_write_threshold = rho_w;
  ATMX_GAUGE_SET("atmult.waterlevel.rho_w", rho_w);
#if defined(ATMX_OBS_ENABLED)
  if (use_estimate) {
    // Projected result memory at the effective threshold — the number the
    // mem-tracker high-water mark (mem.high_water_bytes) and the realized
    // result size (atmult.result_bytes) are compared against.
    const double projected =
        static_cast<double>(EstimateMemoryBytes(estimate, rho_w));
    ATMX_GAUGE_SET("atmult.waterlevel.predicted_bytes", projected);
    if (config_.result_mem_limit_bytes !=
        std::numeric_limits<std::size_t>::max()) {
      // Water-level headroom: how far under the memory SLA the projected
      // result stays at the effective threshold (negative = infeasible
      // SLA).
      ATMX_GAUGE_SET(
          "atmult.waterlevel.headroom_bytes",
          static_cast<double>(config_.result_mem_limit_bytes) - projected);
    }
  }
#endif

  const index_t num_ti = a.num_row_bands();
  const index_t num_tj = b.num_col_bands();
  const index_t num_tasks = num_ti * num_tj;
  std::vector<Tile> c_tiles(static_cast<std::size_t>(num_tasks));

  ConversionCache cache;
  Mutex stats_mutex;
#if defined(ATMX_OBS_ENABLED)
  // Result-tile bytes recorded with the mem tracker during this operation;
  // released at the end (ownership passes to the caller) so the tracker
  // follows the operator-transient footprint.
  std::atomic<std::uint64_t> op_tracked_bytes{0};
#endif

  // Per-atomic-block non-zero counts of the result, accumulated in-task
  // while the produced tile is still cache-hot (C tiles cover disjoint,
  // block-aligned regions, so tasks write disjoint grid cells). This grid
  // becomes the result's density map without a second full pass.
  DensityMap c_map(a.rows(), b.cols(), block);
  const index_t grid_cols = c_map.grid_cols();
  std::vector<double> block_counts(
      static_cast<std::size_t>(c_map.grid_rows()) * grid_cols, 0.0);

  const int teams = config_.EffectiveTeams();
  const int threads = config_.EffectiveThreadsPerTeam();
  TeamScheduler scheduler(teams, threads);

  auto run_task = [&](WorkerTeam& team, index_t task) {
    const index_t ti = task / num_tj;
    const index_t tj = task % num_tj;
    const index_t r0 = a.row_bounds()[ti];
    const index_t r1 = a.row_bounds()[ti + 1];
    const index_t c0 = b.col_bounds()[tj];
    const index_t c1 = b.col_bounds()[tj + 1];
    // Once per task, so cheap enough to keep in release builds: any check
    // failure below names the C tile being produced.
    internal::ScopedCheckContext check_ctx(
        "AtMult tile (%lld,%lld) C[%lld:%lld,%lld:%lld)",
        static_cast<long long>(ti), static_cast<long long>(tj),
        static_cast<long long>(r0), static_cast<long long>(r1),
        static_cast<long long>(c0), static_cast<long long>(c1));
    const index_t m = r1 - r0;
    const index_t n = c1 - c0;
    const int exec_node = team.team_id();
    ATMX_TRACE_SPAN_ARGS("op", "tile_task",
                         {"ti", ti}, {"tj", tj}, {"node", exec_node},
                         {"rows", m}, {"cols", n});

    double opt_seconds = 0.0;
    double conv_seconds = 0.0;  // subsumed by the optimizer timer below
    double mult_seconds = 0.0;
    index_t pairs_done = 0;
    std::uint64_t local_read = 0, remote_read = 0;
    std::array<index_t, kNumKernelTypes> task_kernels{};

    // Target representation from the estimated density (Alg. 2 l. 6).
    double rho_c = 0.0;
    if (use_estimate) {
      rho_c = estimate.RegionDensity(r0 / block, c0 / block,
                                     CeilDiv(m, block), CeilDiv(n, block));
    }
    const bool c_dense = use_estimate && rho_c >= rho_w;

    // Accumulator windows: tiles of the initial C overlapping this task's
    // region, with their intersection boxes in region-local coordinates.
    struct SeedWindow {
      const Tile* tile;
      index_t tr0, tr1, tc0, tc1;  // tile-local intersection
      index_t out_r0, out_c0;      // region-local offset of the window
    };
    std::vector<SeedWindow> seeds;
    if (c_init != nullptr) {
      for (const Tile& t : c_init->tiles()) {
        const index_t ir0 = std::max(r0, t.row0());
        const index_t ir1 = std::min(r1, t.row_end());
        const index_t ic0 = std::max(c0, t.col0());
        const index_t ic1 = std::min(c1, t.col_end());
        if (ir0 < ir1 && ic0 < ic1 && t.nnz() > 0) {
          seeds.push_back({&t, ir0 - t.row0(), ir1 - t.row0(),
                           ic0 - t.col0(), ic1 - t.col0(), ir0 - r0,
                           ic0 - c0});
          // The referenced accumulator window is read exactly once while
          // seeding; account it like the operand windows so MultiplyAdd's
          // locality fractions include the C-side traffic.
          const double tile_area =
              static_cast<double>(t.rows()) * static_cast<double>(t.cols());
          const double rho =
              tile_area > 0 ? static_cast<double>(t.nnz()) / tile_area : 0.0;
          const std::uint64_t bytes = ApproxWindowBytes(
              t.is_dense(), rho, ir1 - ir0, ic1 - ic0);
          (t.home_node() == exec_node ? local_read : remote_read) += bytes;
        }
      }
    }

    // --- Match tiles along the contraction dimension (Fig. 4). ----------
    std::vector<MatchedPair> matched;
    {
      auto a_band = a.TilesInRowBand(ti);
      auto b_band = b.TilesInColBand(tj);
      std::size_t ia = 0, ib = 0;
      while (ia < a_band.size() && ib < b_band.size()) {
        const Tile& at = a.tiles()[a_band[ia]];
        const Tile& bt = b.tiles()[b_band[ib]];
        const index_t k0 = std::max(at.col0(), bt.row0());
        const index_t k1 = std::min(at.col_end(), bt.row_end());
        if (k1 > k0 && at.nnz() > 0 && bt.nnz() > 0) {
          matched.push_back({&at, a_band[ia], &bt, b_band[ib], k0, k1});
        }
        if (at.col_end() <= bt.row_end()) {
          ++ia;
        } else {
          ++ib;
        }
      }
    }

    // --- Optimize each pair: representations + JIT conversions. ---------
    std::vector<PreparedPair> prepared;
    prepared.reserve(matched.size());
    {
      WallTimer opt_timer;
      for (const MatchedPair& mp : matched) {
        const index_t k = mp.k1 - mp.k0;
        MultiplyShape shape;
        shape.m = m;
        shape.k = k;
        shape.n = n;
        shape.rho_a = a.density_map().RegionDensity(
            r0 / block, mp.k0 / block, CeilDiv(m, block), CeilDiv(k, block));
        shape.rho_b = b.density_map().RegionDensity(
            mp.k0 / block, c0 / block, CeilDiv(k, block), CeilDiv(n, block));
        shape.rho_c = rho_c;

        // The tile pair matched on bounding boxes, but the referenced
        // windows can still be exactly empty (e.g. a huge melted sparse
        // tile that only touches the band in a far corner). The density
        // map is exact at block granularity and windows are block-aligned,
        // so a zero region density proves the pair contributes nothing.
        if (shape.rho_a == 0.0 || shape.rho_b == 0.0) continue;

        PairDecision decision;
        if (config_.dynamic_conversion) {
          const bool a_cached =
              mp.a_tile->is_dense()
                  ? cache.HasSparse(ConversionCache::kLeft, mp.a_idx)
                  : cache.HasDense(ConversionCache::kLeft, mp.a_idx);
          const bool b_cached =
              mp.b_tile->is_dense()
                  ? cache.HasSparse(ConversionCache::kRight, mp.b_idx)
                  : cache.HasDense(ConversionCache::kRight, mp.b_idx);
          decision = DecidePairRepresentations(
              cost_model_, shape, mp.a_tile->is_dense(),
              mp.b_tile->is_dense(), a_cached, b_cached, c_dense,
              /*allow_conversion=*/true);
        } else {
          decision.a_dense = mp.a_tile->is_dense();
          decision.b_dense = mp.b_tile->is_dense();
        }

#if defined(ATMX_OBS_ENABLED)
        if (audit_enabled) {
          obs::DecisionRecord rec;
          rec.op_id = op_id;
          rec.ti = ti;
          rec.tj = tj;
          rec.k0 = mp.k0;
          rec.k1 = mp.k1;
          rec.rho_a = shape.rho_a;
          rec.rho_b = shape.rho_b;
          rec.rho_c = rho_c;
          rec.rho_w = rho_w;
          rec.a_stored_dense = mp.a_tile->is_dense();
          rec.b_stored_dense = mp.b_tile->is_dense();
          rec.c_dense = c_dense;
          rec.kernel =
              MakeKernelType(decision.a_dense, decision.b_dense, c_dense);
          rec.a_converted = decision.a_converted;
          rec.b_converted = decision.b_converted;
          rec.stored_cost = decision.stored_cost;
          rec.chosen_cost = decision.projected_cost;
          obs::DecisionLog::Global().Record(rec);
        }
#endif

        PreparedPair pp;
        pp.a_home = mp.a_tile->home_node();
        pp.b_home = mp.b_tile->home_node();
        // A operand: window rows = C rows, window cols = [k0, k1).
        const Window wa{r0 - mp.a_tile->row0(), r1 - mp.a_tile->row0(),
                        mp.k0 - mp.a_tile->col0(),
                        mp.k1 - mp.a_tile->col0()};
        if (decision.a_dense) {
          const DenseMatrix& dm =
              mp.a_tile->is_dense()
                  ? mp.a_tile->dense()
                  : cache.GetDense(ConversionCache::kLeft, mp.a_idx,
                                   *mp.a_tile, &conv_seconds);
          pp.a = Operand::Dense(
              dm.View().Window(wa.r0, wa.c0, wa.rows(), wa.cols()));
        } else {
          const CsrMatrix& sm =
              mp.a_tile->is_dense()
                  ? cache.GetSparse(ConversionCache::kLeft, mp.a_idx,
                                    *mp.a_tile, &conv_seconds)
                  : mp.a_tile->sparse();
          pp.a = Operand::Sparse(&sm, wa);
        }
        // B operand: window rows = [k0, k1), window cols = C cols.
        const Window wb{mp.k0 - mp.b_tile->row0(), mp.k1 - mp.b_tile->row0(),
                        c0 - mp.b_tile->col0(), c1 - mp.b_tile->col0()};
        if (decision.b_dense) {
          const DenseMatrix& dm =
              mp.b_tile->is_dense()
                  ? mp.b_tile->dense()
                  : cache.GetDense(ConversionCache::kRight, mp.b_idx,
                                   *mp.b_tile, &conv_seconds);
          pp.b = Operand::Dense(
              dm.View().Window(wb.r0, wb.c0, wb.rows(), wb.cols()));
        } else {
          const CsrMatrix& sm =
              mp.b_tile->is_dense()
                  ? cache.GetSparse(ConversionCache::kRight, mp.b_idx,
                                    *mp.b_tile, &conv_seconds)
                  : mp.b_tile->sparse();
          pp.b = Operand::Sparse(&sm, wb);
        }
        pp.a_read_bytes = ApproxWindowBytes(decision.a_dense, shape.rho_a,
                                            shape.m, shape.k);
        pp.b_read_bytes = ApproxWindowBytes(decision.b_dense, shape.rho_b,
                                            shape.k, shape.n);
        prepared.push_back(std::move(pp));
      }
      // The surrounding timer already covers the JIT conversions
      // (conv_seconds), so only the timer is accumulated.
      opt_seconds += opt_timer.ElapsedSeconds();
      (void)conv_seconds;
    }

    // --- Execute: accumulate all pairs into the C tile. -----------------
    WallTimer mult_timer;
    if (prepared.empty() && seeds.empty()) {
      // Nothing contributes to this C tile (common off the diagonal of
      // banded matrices): emit an empty sparse tile without touching the
      // row loop.
      c_tiles[task] = Tile::MakeSparse(r0, c0, CsrMatrix(m, n));
    } else if (c_dense) {
      DenseMatrix target(m, n);
      for (const SeedWindow& sw : seeds) {
        if (sw.tile->is_dense()) {
          const DenseMatrix& d = sw.tile->dense();
          for (index_t i = sw.tr0; i < sw.tr1; ++i) {
            const value_t* src = d.data() + i * d.ld() + sw.tc0;
            value_t* dst = target.data() +
                           (sw.out_r0 + i - sw.tr0) * target.ld() +
                           sw.out_c0;
            for (index_t j = 0; j < sw.tc1 - sw.tc0; ++j) dst[j] += src[j];
          }
        } else {
          const CsrMatrix& sp = sw.tile->sparse();
          for (index_t i = sw.tr0; i < sw.tr1; ++i) {
            index_t first, last;
            sp.RowColRange(i, sw.tc0, sw.tc1, &first, &last);
            value_t* dst =
                target.data() + (sw.out_r0 + i - sw.tr0) * target.ld();
            for (index_t p = first; p < last; ++p) {
              dst[sw.out_c0 + sp.col_idx()[p] - sw.tc0] += sp.values()[p];
            }
          }
        }
      }
      for (const PreparedPair& pp : prepared) {
        const KernelType kt = DispatchKernelType(pp.a, pp.b, /*c_dense=*/true);
        ++task_kernels[static_cast<int>(kt)];
        // Perf span: counter deltas (LLC misses etc.) land as args on the
        // kernel trace span and accumulate under kernel.<variant>.*. On a
        // multi-thread team only the calling thread's share is counted.
        ATMX_PERF_SPAN_ARGS("kernel", KernelTypeName(kt),
                            KernelPerfMetricPrefix(kt), {"ti", ti},
                            {"tj", tj}, {"rows", m}, {"cols", n},
                            {"node", exec_node});
        team.ParallelFor(m, /*grain=*/16, [&](index_t lo, index_t hi) {
          MultiplyIntoDense(pp.a, pp.b, target.MutView(), lo, hi);
        });
      }
      // Single cache-hot pass: per-block counts + tile nnz.
      index_t tile_nnz = 0;
      for (index_t i = 0; i < m; ++i) {
        const index_t bi = (r0 + i) / block;
        const value_t* row = target.data() + i * target.ld();
        for (index_t j0 = 0; j0 < n; j0 += block) {
          const index_t j1 = std::min(j0 + block, n);
          index_t count = 0;
          for (index_t j = j0; j < j1; ++j) count += (row[j] != 0.0);
          block_counts[bi * grid_cols + (c0 + j0) / block] +=
              static_cast<double>(count);
          tile_nnz += count;
        }
      }
      c_tiles[task] =
          Tile::MakeDenseCounted(r0, c0, std::move(target), tile_nnz);
    } else {
      // Seeds one region-local row of the accumulator into the SPA.
      auto seed_row = [&](index_t i, SparseAccumulator* spa) {
        for (const SeedWindow& sw : seeds) {
          const index_t ti_local = sw.tr0 + (i - sw.out_r0);
          if (i < sw.out_r0 || ti_local >= sw.tr1) continue;
          if (sw.tile->is_dense()) {
            const DenseMatrix& d = sw.tile->dense();
            const value_t* src = d.data() + ti_local * d.ld();
            for (index_t j = sw.tc0; j < sw.tc1; ++j) {
              if (src[j] != 0.0) {
                spa->Add(sw.out_c0 + j - sw.tc0, src[j]);
              }
            }
          } else {
            const CsrMatrix& sp = sw.tile->sparse();
            index_t first, last;
            sp.RowColRange(ti_local, sw.tc0, sw.tc1, &first, &last);
            for (index_t p = first; p < last; ++p) {
              spa->Add(sw.out_c0 + sp.col_idx()[p] - sw.tc0,
                       sp.values()[p]);
            }
          }
        }
      };
#if defined(ATMX_OBS_ENABLED)
      // The SPA row loop interleaves all pairs, so per-pair timing does
      // not exist; each pair still gets one complete event (emitted after
      // the loop, covering the whole loop interval and flagged
      // `interleaved`) so the "kernel" span count equals the kernel
      // invocation counters.
      const std::int64_t sparse_loop_start_ns =
          obs::TraceRecorder::Global().enabled() ? obs::TraceRecorder::NowNanos()
                                                 : -1;
      const obs::PerfSnapshot sparse_loop_begin = obs::PerfBeginSnapshot();
#endif
      const int num_chunks =
          static_cast<int>(std::min<index_t>(team.size(), std::max<index_t>(
                                                              1, m / 64)));
      // Nagasaka-style accumulator selection: ultra-sparse result rows use
      // the hash SPA instead of paying O(n) dense-array init + flag-array
      // cache pollution. Unknown density (estimation off) keeps the dense
      // default; either mode produces bitwise-identical rows.
      const double expected_row_nnz =
          use_estimate ? rho_c * static_cast<double>(n) : -1.0;
      if (num_chunks <= 1) {
        CsrBuilder builder(m, n);
        SparseAccumulator spa;
        spa.ResizeAdaptive(n, expected_row_nnz);
        for (index_t i = 0; i < m; ++i) {
          seed_row(i, &spa);
          for (const PreparedPair& pp : prepared) {
            AccumulateRowInto(pp.a, pp.b, i, &spa);
          }
          spa.FlushToBuilder(&builder);
          builder.FinishRowsUpTo(i + 1);
        }
        c_tiles[task] = Tile::MakeSparse(r0, c0, builder.Build());
      } else {
        std::vector<CsrMatrix> chunks(num_chunks);
        std::vector<index_t> splits(num_chunks + 1);
        for (int t = 0; t <= num_chunks; ++t) {
          splits[t] = m * t / num_chunks;
        }
        team.ParallelRun([&](int thread) {
          if (thread >= num_chunks) return;
          const index_t lo = splits[thread];
          const index_t hi = splits[thread + 1];
          CsrBuilder builder(hi - lo, n);
          SparseAccumulator spa;
          spa.ResizeAdaptive(n, expected_row_nnz);
          for (index_t i = lo; i < hi; ++i) {
            seed_row(i, &spa);
            for (const PreparedPair& pp : prepared) {
              AccumulateRowInto(pp.a, pp.b, i, &spa);
            }
            spa.FlushToBuilder(&builder);
            builder.FinishRowsUpTo(i - lo + 1);
          }
          chunks[thread] = builder.Build();
        });
        c_tiles[task] =
            Tile::MakeSparse(r0, c0, ConcatCsrRowChunks(std::move(chunks),
                                                        m, n));
      }
      for (const PreparedPair& pp : prepared) {
        const KernelType kt =
            DispatchKernelType(pp.a, pp.b, /*c_dense=*/false);
        ++task_kernels[static_cast<int>(kt)];
      }
#if defined(ATMX_OBS_ENABLED)
      const obs::PerfDelta sparse_loop_delta =
          obs::PerfDeltaSince(sparse_loop_begin);
      if (sparse_loop_delta.valid && !prepared.empty()) {
        // The interleaved row loop has no per-pair hardware attribution; a
        // single-variant loop (the common case) is attributed exactly to
        // that variant, a mixed loop under a shared pseudo-variant rather
        // than over-counting every variant with the full delta.
        const KernelType kt0 = DispatchKernelType(
            prepared.front().a, prepared.front().b, /*c_dense=*/false);
        bool uniform = true;
        for (const PreparedPair& pp : prepared) {
          if (DispatchKernelType(pp.a, pp.b, /*c_dense=*/false) != kt0) {
            uniform = false;
            break;
          }
        }
        obs::AccumulatePerfMetrics(uniform ? KernelPerfMetricPrefix(kt0)
                                           : "kernel.mixed_sparse_loop",
                                   sparse_loop_delta);
      }
      if (sparse_loop_start_ns >= 0 && !prepared.empty()) {
        const std::int64_t dur_ns =
            obs::TraceRecorder::NowNanos() - sparse_loop_start_ns;
        std::vector<obs::TraceArg> loop_args = {
            {"ti", ti},   {"tj", tj},          {"rows", m},
            {"cols", n},  {"node", exec_node}, {"interleaved", 1}};
        obs::AppendPerfArgs(sparse_loop_delta, &loop_args);
        for (const PreparedPair& pp : prepared) {
          const KernelType kt =
              DispatchKernelType(pp.a, pp.b, /*c_dense=*/false);
          obs::TraceRecorder::Global().RecordComplete(
              "kernel", KernelTypeName(kt), sparse_loop_start_ns, dur_ns,
              loop_args);
        }
      }
#endif
    }
    if (!c_dense) {
      const CsrMatrix& sp = c_tiles[task].sparse();
      for (index_t i = 0; i < m; ++i) {
        const index_t bi = (r0 + i) / block;
        for (index_t col : sp.RowCols(i)) {
          block_counts[bi * grid_cols + (c0 + col) / block] += 1.0;
        }
      }
    }
    mult_seconds = mult_timer.ElapsedSeconds();
    c_tiles[task].set_home_node(exec_node);  // first-touch placement
#if defined(ATMX_OBS_ENABLED)
    {
      const std::size_t tile_bytes = c_tiles[task].MemoryBytes();
      obs::MemTracker::Global().RecordAlloc(tile_bytes);
      op_tracked_bytes.fetch_add(tile_bytes, std::memory_order_relaxed);
    }
#endif
    pairs_done = static_cast<index_t>(prepared.size());

    for (const PreparedPair& pp : prepared) {
      (pp.a_home == exec_node ? local_read : remote_read) += pp.a_read_bytes;
      (pp.b_home == exec_node ? local_read : remote_read) += pp.b_read_bytes;
    }

    MutexLock lock(stats_mutex);
    stats->optimize_seconds += opt_seconds;
    stats->multiply_seconds += mult_seconds;
    stats->pair_multiplications += pairs_done;
    for (int v = 0; v < kNumKernelTypes; ++v) {
      stats->kernel_invocations[v] += task_kernels[static_cast<std::size_t>(v)];
    }
    stats->local_read_bytes += local_read;
    stats->remote_read_bytes += remote_read;
    stats->local_write_bytes += c_tiles[task].MemoryBytes();
  };

  ScheduleOptions sched_options;
  sched_options.work_stealing = config_.work_stealing;
  if (config_.work_stealing && num_tasks > 0) {
    // Per-task FLOP/byte cost estimates for LPT queue ordering, O(1) per
    // task from per-band aggregate densities (the per-pair refinement
    // happens later inside the task; queue order only needs magnitudes).
    const index_t k_blocks = CeilDiv(a.cols(), block);
    std::vector<double> rho_a_band(static_cast<std::size_t>(num_ti));
    for (index_t ti = 0; ti < num_ti; ++ti) {
      const index_t r0 = a.row_bounds()[ti];
      const index_t m = a.row_bounds()[ti + 1] - r0;
      rho_a_band[static_cast<std::size_t>(ti)] = a.density_map().RegionDensity(
          r0 / block, 0, CeilDiv(m, block), k_blocks);
    }
    std::vector<double> rho_b_band(static_cast<std::size_t>(num_tj));
    for (index_t tj = 0; tj < num_tj; ++tj) {
      const index_t c0 = b.col_bounds()[tj];
      const index_t n = b.col_bounds()[tj + 1] - c0;
      rho_b_band[static_cast<std::size_t>(tj)] = b.density_map().RegionDensity(
          0, c0 / block, k_blocks, CeilDiv(n, block));
    }
    auto task_cost = std::make_shared<std::vector<double>>(
        static_cast<std::size_t>(num_tasks));
    for (index_t task = 0; task < num_tasks; ++task) {
      const index_t ti = task / num_tj;
      const index_t tj = task % num_tj;
      MultiplyShape shape;
      shape.m = a.row_bounds()[ti + 1] - a.row_bounds()[ti];
      shape.k = a.cols();
      shape.n = b.col_bounds()[tj + 1] - b.col_bounds()[tj];
      shape.rho_a = rho_a_band[static_cast<std::size_t>(ti)];
      shape.rho_b = rho_b_band[static_cast<std::size_t>(tj)];
      if (use_estimate) {
        shape.rho_c = estimate.RegionDensity(
            a.row_bounds()[ti] / block, b.col_bounds()[tj] / block,
            CeilDiv(shape.m, block), CeilDiv(shape.n, block));
      }
      (*task_cost)[static_cast<std::size_t>(task)] =
          EstimateTaskCost(cost_model_, shape);
    }
    sched_options.cost_of = [task_cost](index_t task) {
      return (*task_cost)[static_cast<std::size_t>(task)];
    };
  }
  ScheduleStats sched_stats;
  scheduler.RunTasks(
      num_tasks,
      [&](index_t task) {
        // Tasks follow their A tile-row's round-robin home (III-F); with
        // work stealing this is the *initial* queue, and run_task accounts
        // locality against the team that actually executes (its
        // WorkerTeam::team_id), so stolen tasks honestly show up as remote
        // reads of their A tiles.
        return static_cast<int>((task / num_tj) % teams);
      },
      run_task, sched_options, &sched_stats);
  stats->tasks_stolen = static_cast<index_t>(sched_stats.TotalSteals());
  stats->team_busy_seconds = sched_stats.busy_seconds;
  stats->team_cpu_seconds = sched_stats.cpu_seconds;

  stats->sparse_to_dense_conversions = cache.sparse_to_dense_count();
  stats->dense_to_sparse_conversions = cache.dense_to_sparse_count();
  for (const Tile& t : c_tiles) {
    if (t.is_dense()) {
      stats->dense_result_tiles++;
    } else {
      stats->sparse_result_tiles++;
    }
  }

  for (index_t bi = 0; bi < c_map.grid_rows(); ++bi) {
    for (index_t bj = 0; bj < grid_cols; ++bj) {
      const double area = static_cast<double>(c_map.BlockArea(bi, bj));
      c_map.Set(bi, bj,
                area > 0 ? block_counts[bi * grid_cols + bj] / area : 0.0);
    }
  }
  ATMatrix result(a.rows(), b.cols(), block, std::move(c_tiles),
                  std::move(c_map));
  stats->total_seconds = total_timer.ElapsedSeconds();

#if defined(ATMX_OBS_ENABLED)
  {
    auto& registry = obs::MetricsRegistry::Global();
    ATMX_COUNTER_INC("atmult.operations");
    ATMX_COUNTER_ADD("atmult.pairs", stats->pair_multiplications);
    ATMX_COUNTER_ADD("atmult.result_tiles.dense", stats->dense_result_tiles);
    ATMX_COUNTER_ADD("atmult.result_tiles.sparse",
                     stats->sparse_result_tiles);
    ATMX_COUNTER_ADD("atmult.bytes.local_read", stats->local_read_bytes);
    ATMX_COUNTER_ADD("atmult.bytes.remote_read", stats->remote_read_bytes);
    ATMX_COUNTER_ADD("atmult.bytes.local_write", stats->local_write_bytes);
    ATMX_COUNTER_ADD("atmult.bytes.remote_write", stats->remote_write_bytes);
    ATMX_HISTOGRAM_OBSERVE("atmult.seconds.total", stats->total_seconds);
    // Per-variant invocation counters: names are per-variant, so the
    // function-local-static caching macro does not apply; registration
    // cost is once per operation, not per pair.
    for (int v = 0; v < kNumKernelTypes; ++v) {
      if (stats->kernel_invocations[v] > 0) {
        registry.GetCounter(KernelMetricName(static_cast<KernelType>(v)))
            .Add(static_cast<std::uint64_t>(stats->kernel_invocations[v]));
      }
    }
    // Estimator telemetry: predicted vs. actual per-block density error.
    const DensityMap& actual = result.density_map();
    if (use_estimate && estimate.grid_rows() == actual.grid_rows() &&
        estimate.grid_cols() == actual.grid_cols()) {
      for (index_t bi = 0; bi < actual.grid_rows(); ++bi) {
        for (index_t bj = 0; bj < actual.grid_cols(); ++bj) {
          const double err =
              std::abs(estimate.At(bi, bj) - actual.At(bi, bj));
          ATMX_HISTOGRAM_OBSERVE_WITH("atmult.estimator.abs_error", err,
                                      0.001, 0.005, 0.01, 0.05, 0.1, 0.25,
                                      0.5, 1.0);
        }
      }
      ATMX_GAUGE_SET("atmult.estimator.predicted_nnz",
                     estimate.ExpectedNnz());
      ATMX_GAUGE_SET("atmult.estimator.actual_nnz", actual.ExpectedNnz());
    }
    // Placement balance across the worker teams (first-touch home nodes of
    // the result tiles). Dynamic names => direct registry calls.
    std::vector<index_t> node_tiles(static_cast<std::size_t>(teams), 0);
    for (const Tile& t : result.tiles()) {
      const int node = t.home_node();
      if (node >= 0 && node < teams) {
        ++node_tiles[static_cast<std::size_t>(node)];
      }
    }
    index_t min_tiles = std::numeric_limits<index_t>::max();
    index_t max_tiles = 0;
    for (int node = 0; node < teams; ++node) {
      const index_t count = node_tiles[static_cast<std::size_t>(node)];
      registry
          .GetGauge("atmult.placement.node." + std::to_string(node) +
                    ".result_tiles")
          .Set(static_cast<double>(count));
      min_tiles = std::min(min_tiles, count);
      max_tiles = std::max(max_tiles, count);
    }
    ATMX_GAUGE_SET("atmult.placement.balance",
                   max_tiles > 0 ? static_cast<double>(min_tiles) /
                                       static_cast<double>(max_tiles)
                                 : 1.0);
    // Memory telemetry close-out: the realized result size (compare
    // against atmult.waterlevel.predicted_bytes), the kernel's view of the
    // process, and the release of this operation's tracked footprint (the
    // high-water mark keeps the peak).
    ATMX_GAUGE_SET("atmult.result_bytes",
                   static_cast<double>(result.MemoryBytes()));
    obs::MemTracker::Global().RecordFree(
        op_tracked_bytes.load(std::memory_order_relaxed));
    obs::MemTracker::SampleProcess();
  }
#endif
  return result;
}

}  // namespace atmx
