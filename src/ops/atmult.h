// ATMULT (section III, Alg. 2): the tile-granular matrix multiplication
// operator C = A * B over AT MATRICES.
//
// Pipeline per operation:
//   1. estimate the result density map (probability propagation, III-D),
//   2. derive the effective write threshold rhoD_W via the water-level
//      method under the configured memory limit (III-E),
//   3. form (tile-row of A) x (tile-col of B) pairs; each pair is one task
//      producing one C tile, scheduled on the worker team of the tile-row's
//      home NUMA node (III-F),
//   4. per matching tile pair, compute the reference windows (III-B), let
//      the dynamic optimizer pick representations / trigger JIT conversions
//      (III-C), and run the corresponding kernel (III-A).

#ifndef ATMX_OPS_ATMULT_H_
#define ATMX_OPS_ATMULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.h"
#include "cost/cost_model.h"
#include "kernels/kernel_common.h"
#include "tile/at_matrix.h"

namespace atmx {

class ConversionCache;

// Timing breakdown and counters of one ATMULT operation (the quantities
// behind Figs. 8b, 9c, 9d of the paper).
struct AtMultStats {
  double estimate_seconds = 0.0;
  double optimize_seconds = 0.0;  // decisions + JIT conversions
  double multiply_seconds = 0.0;  // kernel execution
  double total_seconds = 0.0;

  double effective_write_threshold = 0.0;
  index_t pair_multiplications = 0;
  index_t sparse_to_dense_conversions = 0;
  index_t dense_to_sparse_conversions = 0;
  index_t dense_result_tiles = 0;
  index_t sparse_result_tiles = 0;

  // Executed tile-pair multiplications by kernel variant, indexed by
  // static_cast<int>(KernelType). Every pair is counted exactly once in
  // the variant it actually ran in (after JIT conversions), so the sum
  // over all variants equals pair_multiplications. When the observability
  // layer is built in (ATMX_OBS), the same counts feed the process-wide
  // `atmult.kernel.<variant>.invocations` registry counters — this struct
  // is the single source of truth for one operation, the registry the
  // accumulation across operations.
  index_t kernel_invocations[kNumKernelTypes] = {};

  index_t TotalKernelInvocations() const {
    index_t total = 0;
    for (index_t count : kernel_invocations) total += count;
    return total;
  }

  // Work-stealing scheduler outcome (see docs/SCHEDULER.md): tasks that
  // ran off their home team and the per-team task execution time. Zero /
  // uniform when `AtmConfig::work_stealing` is off or queues stay level.
  // busy is wall time inside tasks; cpu is the driver thread's CPU time,
  // which stays meaningful when more teams than cores timeshare the host.
  index_t tasks_stolen = 0;
  std::vector<double> team_busy_seconds;
  std::vector<double> team_cpu_seconds;

  // Largest per-team busy time — the makespan a topology-faithful machine
  // (one real socket per team) would observe for the multiply phase.
  double MaxTeamBusySeconds() const;
  // Same over CPU time: preferred on hosts with fewer cores than teams.
  double MaxTeamCpuSeconds() const;

  // NUMA locality accounting (see topology/numa_sim.h).
  std::uint64_t local_read_bytes = 0;
  std::uint64_t remote_read_bytes = 0;
  std::uint64_t local_write_bytes = 0;
  std::uint64_t remote_write_bytes = 0;

  // Fractions are computed against the summed phase times: multiply and
  // optimize accumulate per-task across worker teams (CPU-seconds), so
  // dividing by the wall-clock total would undercount under parallelism.
  double PhaseSeconds() const {
    return estimate_seconds + optimize_seconds + multiply_seconds;
  }
  double OptimizeFraction() const {
    const double phases = PhaseSeconds();
    return phases > 0 ? optimize_seconds / phases : 0.0;
  }
  double EstimateFraction() const {
    const double phases = PhaseSeconds();
    return phases > 0 ? estimate_seconds / phases : 0.0;
  }
  double LocalFraction() const;

  std::string ToString() const;
};

class AtMult {
 public:
  explicit AtMult(const AtmConfig& config,
                  const CostModel& cost_model = CostModel());

  const AtmConfig& config() const { return config_; }
  const CostModel& cost_model() const { return cost_model_; }

  // C = A * B. Both operands must share the atomic block size.
  ATMatrix Multiply(const ATMatrix& a, const ATMatrix& b,
                    AtMultStats* stats = nullptr) const;

  // Same, with caller-owned JIT conversion caches (one per operand
  // matrix, both addressed in the ConversionCache::kLeft key space; pass
  // the same cache twice when a == b). The chain executor uses this so a
  // matrix appearing in several products converts each tile at most once
  // per chain instead of once per product. Null pointers fall back to the
  // private per-operation cache.
  ATMatrix Multiply(const ATMatrix& a, const ATMatrix& b, AtMultStats* stats,
                    ConversionCache* a_cache, ConversionCache* b_cache) const;

  // Same, with a caller-imposed effective write threshold. A non-negative
  // `rho_w_override` replaces the operator's own water-level solution —
  // the chain executor plans thresholds chain-wide against one shared
  // budget and imposes them on every product so the fused and
  // product-at-a-time paths make bitwise-identical representation
  // decisions. Negative means "decide normally".
  ATMatrix Multiply(const ATMatrix& a, const ATMatrix& b, AtMultStats* stats,
                    ConversionCache* a_cache, ConversionCache* b_cache,
                    double rho_w_override) const;

  // C' = C + A * B — the full operator signature of section III. The
  // accumulator C must have shape a.rows() x b.cols() and the same atomic
  // block size; its tiling may be arbitrary (it is re-tiled into the
  // result's band structure while accumulating).
  ATMatrix MultiplyAdd(const ATMatrix& c, const ATMatrix& a,
                       const ATMatrix& b, AtMultStats* stats = nullptr) const;

  // Convenience overloads for the plain operand types the paper's
  // operator accepts (CSR and dense arrays). The plain operand is
  // partitioned internally with this operator's configuration; prefer the
  // AT MATRIX overload when the operand is reused across multiplications
  // (partitioning then amortizes, cf. Fig. 7).
  ATMatrix Multiply(const CsrMatrix& a, const ATMatrix& b,
                    AtMultStats* stats = nullptr) const;
  ATMatrix Multiply(const ATMatrix& a, const CsrMatrix& b,
                    AtMultStats* stats = nullptr) const;
  ATMatrix Multiply(const DenseMatrix& a, const ATMatrix& b,
                    AtMultStats* stats = nullptr) const;
  ATMatrix Multiply(const ATMatrix& a, const DenseMatrix& b,
                    AtMultStats* stats = nullptr) const;

 private:
  ATMatrix MultiplyImpl(const ATMatrix* c_init, const ATMatrix& a,
                        const ATMatrix& b, AtMultStats* stats,
                        ConversionCache* a_cache = nullptr,
                        ConversionCache* b_cache = nullptr,
                        double rho_w_override = -1.0) const;

  AtmConfig config_;
  CostModel cost_model_;
};

}  // namespace atmx

#endif  // ATMX_OPS_ATMULT_H_
