#include "ops/reference_mult.h"

#include "common/check.h"

namespace atmx {

DenseMatrix ReferenceMultiply(const DenseMatrix& a, const DenseMatrix& b) {
  ATMX_CHECK_EQ(a.cols(), b.rows());
  DenseMatrix c(a.rows(), b.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < b.cols(); ++j) {
      value_t sum = 0.0;
      for (index_t k = 0; k < a.cols(); ++k) {
        sum += a.At(i, k) * b.At(k, j);
      }
      c.At(i, j) = sum;
    }
  }
  return c;
}

}  // namespace atmx
