// Matrix transposition. Needed by the text-mining example (cosine
// similarity D = A * A^T, paper section I) and generally useful alongside
// the multiplication operator.

#ifndef ATMX_OPS_TRANSPOSE_H_
#define ATMX_OPS_TRANSPOSE_H_

#include "storage/coo_matrix.h"
#include "storage/csr_matrix.h"
#include "storage/dense_matrix.h"
#include "tile/at_matrix.h"

namespace atmx {

// B = A^T for CSR, via a counting sort over columns (Gustavson's permuted
// transposition); O(nnz + rows + cols).
CsrMatrix Transpose(const CsrMatrix& a);

// B = A^T for dense matrices.
DenseMatrix Transpose(const DenseMatrix& a);

// B = A^T for COO (swaps coordinates; order is unspecified).
CooMatrix Transpose(const CooMatrix& a);

// B = A^T for an AT MATRIX: every tile is transposed in place and mirrored
// across the diagonal, preserving the adaptive tiling (a transposed
// quadtree tiling is again a valid quadtree tiling). Home nodes are
// re-assigned round-robin by the new tile-rows.
ATMatrix Transpose(const ATMatrix& a, int num_nodes = 1);

}  // namespace atmx

#endif  // ATMX_OPS_TRANSPOSE_H_
