// Fused chain execution (docs/CHAINS.md): runs a planned chain
// parenthesization as ONE tile-granular task DAG instead of a sequence of
// product-at-a-time ATMULT calls. Every (row band, col band) pair of every
// product in the plan tree is a task; a downstream product's task starts
// the moment the input result-tiles it reads are complete — there is no
// full-matrix barrier between products. Intermediate result tiles stay
// resident only from their producing task until their last consuming task
// finishes (ResidentTileSet), so the peak intermediate footprint can stay
// far below materializing every intermediate whole.
//
// Both paths run the identical per-tile pipeline (RunProductTileTask) on
// bitwise-identical inputs — same operand tiles, same band iteration
// order, same region-by-region density estimates, same write threshold —
// so fused results are bitwise identical to unfused ones. Under a finite
// memory budget the chain-scope water level (ChainBudgetPlan) plans one
// threshold per product and imposes it on BOTH executors, keeping that
// identity; the fused DAG additionally admission-gates ready tile tasks
// against the budget (scheduling order never affects results).

#ifndef ATMX_OPS_CHAIN_EXEC_H_
#define ATMX_OPS_CHAIN_EXEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/config.h"
#include "estimate/density_map.h"
#include "ops/chain.h"
#include "tile/at_matrix.h"

namespace atmx::internal {

// True when the chain is eligible for fused execution: at least two
// products (three matrices), and — when the result-memory budget is
// finite — density estimation enabled, since the chain-scope water level
// plans against estimated intermediate topologies. When declining, fills
// `*reason` (if non-null) with the DecisionLog fallback reason
// ("short_chain", "no_estimation").
bool CanFuseChain(const std::vector<const ATMatrix*>& chain,
                  const AtmConfig& config, std::string* reason = nullptr);

// Chain-scope memory plan: per-product write thresholds solved against the
// shared result_mem_limit_bytes budget, charging each intermediate for its
// resident lifetime (producer through last consumer; see
// SolveChainWaterLevel). Products are indexed in post-order of the plan
// tree — the same order as ChainExecStats::per_product.
struct ChainBudgetPlan {
  // True when a finite budget (with density estimation) drives
  // chain-scope thresholds; false leaves both executors on the
  // performance-optimal rho_write.
  bool active = false;
  // False when even the memory-minimal thresholds miss the budget; the
  // thresholds are then the clamped floor and ExecuteChain downgrades to
  // product-at-a-time execution as a last resort.
  bool feasible = true;
  std::size_t budget_bytes = 0;
  std::size_t projected_peak_bytes = 0;
  std::vector<double> rho_w;              // per product, post-order
  std::vector<DensityMap> planned_maps;   // per product, post-order
};

// Builds the budget plan for the chain: estimates every product's
// topology bottom-up along the plan tree and, when the operator's budget
// is finite, solves the chain-scope water level over the products'
// resident lifetimes. With an unbounded budget (or estimation disabled)
// the plan comes back inactive with only the planned maps filled.
ChainBudgetPlan PlanChainBudget(const std::vector<const ATMatrix*>& chain,
                                const ChainPlan& plan, const AtMult& op);

// Executes the planned chain as one dependency-scheduled tile-task DAG.
// When `budget.active`, each product writes at its chain-planned
// threshold and the scheduler admission-gates ready tile tasks against
// the shared budget (projected bytes reserved up front, released as
// consumers retire tiles; see ScheduleOptions::admit).
// Preconditions: CanFuseChain() holds, chain.size() == plan.split.size(),
// and `stats` is non-null (the caller owns reporting).
ATMatrix ExecuteChainFused(const std::vector<const ATMatrix*>& chain,
                           const ChainPlan& plan, const AtMult& op,
                           const ChainBudgetPlan& budget,
                           ChainExecStats* stats);

// Adds one product's operator stats into the chain total (timings,
// counters, kernel invocations, per-team seconds, locality bytes). The
// total's effective_write_threshold becomes the *minimum* across the
// accumulated products — the binding threshold of the chain — with 0.0
// treated as "unset"; per-product values live in
// ChainExecStats::per_product. Shared by the fused and product-at-a-time
// executors.
void AccumulateProductStats(const AtMultStats& s, AtMultStats* total);

}  // namespace atmx::internal

#endif  // ATMX_OPS_CHAIN_EXEC_H_
