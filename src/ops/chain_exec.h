// Fused chain execution (docs/CHAINS.md): runs a planned chain
// parenthesization as ONE tile-granular task DAG instead of a sequence of
// product-at-a-time ATMULT calls. Every (row band, col band) pair of every
// product in the plan tree is a task; a downstream product's task starts
// the moment the input result-tiles it reads are complete — there is no
// full-matrix barrier between products. Intermediate result tiles stay
// resident only from their producing task until their last consuming task
// finishes (ResidentTileSet), so the peak intermediate footprint can stay
// far below materializing every intermediate whole.
//
// Both paths run the identical per-tile pipeline (RunProductTileTask) on
// bitwise-identical inputs — same operand tiles, same band iteration
// order, same region-by-region density estimates, same write threshold —
// so fused results are bitwise identical to unfused ones.

#ifndef ATMX_OPS_CHAIN_EXEC_H_
#define ATMX_OPS_CHAIN_EXEC_H_

#include <vector>

#include "common/config.h"
#include "ops/chain.h"
#include "tile/at_matrix.h"

namespace atmx::internal {

// True when the chain is eligible for fused execution: at least two
// products (three matrices) under an unbounded result-memory budget. A
// finite budget needs each product's complete density estimate for the
// water-level method before any of its tiles may run, which reinstates
// the per-product barrier — those chains fall back to product-at-a-time.
bool CanFuseChain(const std::vector<const ATMatrix*>& chain,
                  const AtmConfig& config);

// Executes the planned chain as one dependency-scheduled tile-task DAG.
// Preconditions: CanFuseChain() holds, chain.size() == plan.split.size(),
// and `stats` is non-null (the caller owns reporting).
ATMatrix ExecuteChainFused(const std::vector<const ATMatrix*>& chain,
                           const ChainPlan& plan, const AtMult& op,
                           ChainExecStats* stats);

// Adds one product's operator stats into the chain total (timings,
// counters, kernel invocations, per-team seconds, locality bytes). Shared
// by the fused and product-at-a-time executors.
void AccumulateProductStats(const AtMultStats& s, AtMultStats* total);

}  // namespace atmx::internal

#endif  // ATMX_OPS_CHAIN_EXEC_H_
