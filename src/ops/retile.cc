#include "ops/retile.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/obs.h"

namespace atmx {

namespace {

// CSR column slice [c0, c1) of `src`, with column ids rebased to c0.
CsrMatrix SliceCsrColumns(const CsrMatrix& src, index_t c0, index_t c1) {
  std::vector<index_t> row_ptr(src.rows() + 1, 0);
  // First pass: per-row counts in the slice.
  std::vector<std::pair<index_t, index_t>> ranges(src.rows());
  for (index_t i = 0; i < src.rows(); ++i) {
    src.RowColRange(i, c0, c1, &ranges[i].first, &ranges[i].second);
    row_ptr[i + 1] = row_ptr[i] + (ranges[i].second - ranges[i].first);
  }
  std::vector<index_t> col_idx(row_ptr.back());
  std::vector<value_t> values(row_ptr.back());
  for (index_t i = 0; i < src.rows(); ++i) {
    index_t out = row_ptr[i];
    for (index_t p = ranges[i].first; p < ranges[i].second; ++p) {
      col_idx[out] = src.col_idx()[p] - c0;
      values[out] = src.values()[p];
      ++out;
    }
  }
  return CsrMatrix(src.rows(), c1 - c0, std::move(row_ptr),
                   std::move(col_idx), std::move(values));
}

DenseMatrix SliceDenseColumns(const DenseMatrix& src, index_t c0,
                              index_t c1) {
  DenseMatrix out(src.rows(), c1 - c0);
  for (index_t i = 0; i < src.rows(); ++i) {
    const value_t* from = src.data() + i * src.ld() + c0;
    value_t* to = out.data() + i * out.ld();
    std::copy(from, from + (c1 - c0), to);
  }
  return out;
}

}  // namespace

ATMatrix RetileColumns(const ATMatrix& a,
                       const std::vector<index_t>& col_bounds,
                       const AtmConfig& config) {
  internal::ScopedCheckContext check_ctx(
      "RetileColumns %lldx%lld", static_cast<long long>(a.rows()),
      static_cast<long long>(a.cols()));
  ATMX_TRACE_SPAN_ARGS("op", "retile_columns",
                       {"rows", a.rows()}, {"cols", a.cols()},
                       {"tiles_in", static_cast<index_t>(a.tiles().size())});
  ATMX_COUNTER_INC("retile.calls");
  std::vector<Tile> tiles;
  tiles.reserve(a.tiles().size());
  for (const Tile& t : a.tiles()) {
    // Cut points strictly inside this tile's column extent.
    std::vector<index_t> cuts = {t.col0()};
    for (index_t bound : col_bounds) {
      if (bound > t.col0() && bound < t.col_end()) cuts.push_back(bound);
    }
    cuts.push_back(t.col_end());
    std::sort(cuts.begin(), cuts.end());

    if (cuts.size() == 2) {
      tiles.push_back(t);  // no cut: keep as-is
      continue;
    }
    for (std::size_t s = 0; s + 1 < cuts.size(); ++s) {
      const index_t local0 = cuts[s] - t.col0();
      const index_t local1 = cuts[s + 1] - t.col0();
      if (t.is_dense()) {
        tiles.push_back(Tile::MakeDense(
            t.row0(), cuts[s],
            SliceDenseColumns(t.dense(), local0, local1)));
      } else {
        tiles.push_back(Tile::MakeSparse(
            t.row0(), cuts[s], SliceCsrColumns(t.sparse(), local0, local1)));
      }
    }
  }
  DensityMap map = a.density_map();  // topology is unchanged
  ATMatrix out(a.rows(), a.cols(), a.b_atomic(), std::move(tiles),
               std::move(map));
  // Preserve the round-robin tile-row placement.
  const auto& bounds = out.row_bounds();
  for (Tile& tile : out.mutable_tiles()) {
    const auto band = std::lower_bound(bounds.begin(), bounds.end(),
                                       tile.row0()) -
                      bounds.begin();
    tile.set_home_node(
        static_cast<int>(band % std::max(1, config.num_sockets)));
  }
  ATMX_COUNTER_ADD("retile.tiles_out", out.tiles().size());
  return out;
}

ATMatrix AlignContraction(const ATMatrix& a, const ATMatrix& b,
                          const AtmConfig& config) {
  ATMX_CHECK_EQ(a.cols(), b.rows());
  return RetileColumns(a, b.row_bounds(), config);
}

}  // namespace atmx
