// Element-wise operations on the matrix representations. These complement
// the multiplication operator for the applications the paper motivates
// (e.g. the multiplicative update rules of NMF combine products with
// element-wise scaling and division).

#ifndef ATMX_OPS_ELEMENTWISE_H_
#define ATMX_OPS_ELEMENTWISE_H_

#include "common/config.h"
#include "storage/csr_matrix.h"
#include "storage/dense_matrix.h"
#include "tile/at_matrix.h"

namespace atmx {

// alpha*A + beta*B over CSR matrices (row-wise sorted merge).
CsrMatrix Add(const CsrMatrix& a, const CsrMatrix& b, value_t alpha = 1.0,
              value_t beta = 1.0);

// Element-wise (Hadamard) product A .* B over CSR matrices (row-wise
// sorted intersection).
CsrMatrix Hadamard(const CsrMatrix& a, const CsrMatrix& b);

// Returns alpha * A.
CsrMatrix Scale(const CsrMatrix& a, value_t alpha);

// Dense counterparts.
DenseMatrix Add(const DenseMatrix& a, const DenseMatrix& b,
                value_t alpha = 1.0, value_t beta = 1.0);
DenseMatrix Hadamard(const DenseMatrix& a, const DenseMatrix& b);

// In-place scaling of every tile payload of an AT MATRIX. alpha == 0 is
// rejected (it would silently turn the matrix into an all-zero pattern
// with stale nnz bookkeeping); use a fresh empty matrix instead.
void ScaleInPlace(ATMatrix* a, value_t alpha);

// alpha*A + beta*B over AT MATRICES. The operand tilings may differ; the
// result is freshly partitioned under `config` (the sum's topology can
// differ substantially from either operand's).
ATMatrix AtmAdd(const ATMatrix& a, const ATMatrix& b, const AtmConfig& config,
                value_t alpha = 1.0, value_t beta = 1.0);

}  // namespace atmx

#endif  // ATMX_OPS_ELEMENTWISE_H_
