// Sparse matrix-chain multiplication optimizer.
//
// The paper's introduction motivates adaptive physical organization with
// the observation (from the authors' SpMacho work [9]) that a fixed choice
// of evaluation order and storage types hurts sparse matrix *chain*
// multiplications. This module closes that loop: a dynamic-programming
// optimizer that picks the cheapest parenthesization of A1 * A2 * ... * An
// using the density-map estimator to predict every intermediate's topology
// and the kernel cost model to price every candidate product.

#ifndef ATMX_OPS_CHAIN_H_
#define ATMX_OPS_CHAIN_H_

#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "estimate/density_map.h"
#include "ops/atmult.h"
#include "tile/at_matrix.h"

namespace atmx {

// Predicted cost (in cost-model work units) of one product X * Y given
// only the operands' density maps: expected intermediate products priced
// at the sparse-kernel rate plus the write cost of the estimated result.
// Cheap enough to evaluate O(n^3) times inside the chain DP.
// `write_factor` scales the write-side term — fused execution keeps an
// intermediate's tiles resident and feeds them straight into the consuming
// product, so their materialization cost is discounted (see
// ChainCostOptions::fused_write_factor).
double EstimateMultiplyCost(const DensityMap& x, const DensityMap& y,
                            const CostModel& model, double rho_write,
                            double write_factor = 1.0);

// Fusion-aware chain pricing. When `fused` is set, every *intermediate*
// product's write cost is scaled by `fused_write_factor` (< 1: resident
// tiles are written once, cache-hot, and never re-materialized); the root
// product — whose result really is handed to the caller — keeps full
// write cost. This can shift the DP towards plans with larger but
// shorter-lived intermediates.
struct ChainCostOptions {
  bool fused = false;
  double fused_write_factor = 0.35;
};

struct ChainPlan {
  // split[i][j] = k: evaluate (A_i..A_k) * (A_{k+1}..A_j). Valid for
  // j > i; leaves are single matrices.
  std::vector<std::vector<int>> split;
  double estimated_cost = 0.0;

  // Human-readable parenthesization, e.g. "((A0*A1)*A2)".
  std::string ToString() const;
};

// Dynamic-programming plan over the chain's density maps. All maps must
// share the block size, and neighbours must have compatible shapes.
ChainPlan PlanChain(const std::vector<const DensityMap*>& maps,
                    const CostModel& model, double rho_write,
                    const ChainCostOptions& options = {});

// Cost of evaluating the chain strictly left-to-right, for comparison.
double EstimateLeftToRightCost(const std::vector<const DensityMap*>& maps,
                               const CostModel& model, double rho_write,
                               const ChainCostOptions& options = {});

// Execution statistics of one chain: the accumulated operator stats plus
// the per-product breakdown (products in execution = post-order of the
// plan tree, left subtree first; the last entry is the root product) and
// the fused-dataflow quantities.
struct ChainExecStats {
  AtMultStats total;
  std::vector<AtMultStats> per_product;

  bool fused = false;
  // Tile tasks in the fused DAG (0 when executed product-at-a-time).
  index_t fused_tasks = 0;
  // Peak bytes of intermediate result tiles simultaneously resident
  // during fused execution (tiles are dropped after their last consumer).
  std::uint64_t resident_peak_bytes = 0;
};

// Executes the chain according to the plan using the given operator.
// When the operator's config has `fused_chains` set (and the chain has at
// least two products under an unbounded memory budget), the whole chain
// runs as one tile-granular task DAG — see docs/CHAINS.md; otherwise
// product-at-a-time. Both paths produce bitwise-identical results.
// Intermediate-operand JIT conversions go through one shared
// ConversionCache per distinct source matrix either way, so a matrix
// appearing in several products converts each tile at most once per
// chain. `stats`, if non-null, receives the full breakdown.
ATMatrix ExecuteChain(const std::vector<const ATMatrix*>& chain,
                      const ChainPlan& plan, const AtMult& op,
                      ChainExecStats* stats);

// Back-compat convenience: accumulates only the summed operator stats.
ATMatrix ExecuteChain(const std::vector<const ATMatrix*>& chain,
                      const ChainPlan& plan, const AtMult& op,
                      AtMultStats* stats_accum = nullptr);

}  // namespace atmx

#endif  // ATMX_OPS_CHAIN_H_
