// Sparse matrix-chain multiplication optimizer.
//
// The paper's introduction motivates adaptive physical organization with
// the observation (from the authors' SpMacho work [9]) that a fixed choice
// of evaluation order and storage types hurts sparse matrix *chain*
// multiplications. This module closes that loop: a dynamic-programming
// optimizer that picks the cheapest parenthesization of A1 * A2 * ... * An
// using the density-map estimator to predict every intermediate's topology
// and the kernel cost model to price every candidate product.

#ifndef ATMX_OPS_CHAIN_H_
#define ATMX_OPS_CHAIN_H_

#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "estimate/density_map.h"
#include "ops/atmult.h"
#include "tile/at_matrix.h"

namespace atmx {

// Predicted cost (in cost-model work units) of one product X * Y given
// only the operands' density maps: expected intermediate products priced
// at the sparse-kernel rate plus the write cost of the estimated result.
// Cheap enough to evaluate O(n^3) times inside the chain DP.
double EstimateMultiplyCost(const DensityMap& x, const DensityMap& y,
                            const CostModel& model, double rho_write);

struct ChainPlan {
  // split[i][j] = k: evaluate (A_i..A_k) * (A_{k+1}..A_j). Valid for
  // j > i; leaves are single matrices.
  std::vector<std::vector<int>> split;
  double estimated_cost = 0.0;

  // Human-readable parenthesization, e.g. "((A0*A1)*A2)".
  std::string ToString() const;
};

// Dynamic-programming plan over the chain's density maps. All maps must
// share the block size, and neighbours must have compatible shapes.
ChainPlan PlanChain(const std::vector<const DensityMap*>& maps,
                    const CostModel& model, double rho_write);

// Cost of evaluating the chain strictly left-to-right, for comparison.
double EstimateLeftToRightCost(const std::vector<const DensityMap*>& maps,
                               const CostModel& model, double rho_write);

// Executes the chain according to the plan using the given operator.
// `stats_accum`, if non-null, accumulates the per-product statistics.
ATMatrix ExecuteChain(const std::vector<const ATMatrix*>& chain,
                      const ChainPlan& plan, const AtMult& op,
                      AtMultStats* stats_accum = nullptr);

}  // namespace atmx

#endif  // ATMX_OPS_CHAIN_H_
