// Sparse matrix-chain multiplication optimizer.
//
// The paper's introduction motivates adaptive physical organization with
// the observation (from the authors' SpMacho work [9]) that a fixed choice
// of evaluation order and storage types hurts sparse matrix *chain*
// multiplications. This module closes that loop: a dynamic-programming
// optimizer that picks the cheapest parenthesization of A1 * A2 * ... * An
// using the density-map estimator to predict every intermediate's topology
// and the kernel cost model to price every candidate product.

#ifndef ATMX_OPS_CHAIN_H_
#define ATMX_OPS_CHAIN_H_

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "estimate/density_map.h"
#include "ops/atmult.h"
#include "tile/at_matrix.h"

namespace atmx {

// Predicted cost (in cost-model work units) of one product X * Y given
// only the operands' density maps: expected intermediate products priced
// at the sparse-kernel rate plus the write cost of the estimated result.
// Cheap enough to evaluate O(n^3) times inside the chain DP.
// `write_factor` scales the write-side term — fused execution keeps an
// intermediate's tiles resident and feeds them straight into the consuming
// product, so their materialization cost is discounted (see
// ChainCostOptions::fused_write_factor). A finite `mem_limit_bytes`
// prices the write side at the water-level threshold that limit forces on
// this product alone — a per-candidate heuristic so the DP prefers plans
// whose intermediates stay cheap under the memory SLA (the chain-scope
// solver commits the final thresholds on the chosen tree).
double EstimateMultiplyCost(
    const DensityMap& x, const DensityMap& y, const CostModel& model,
    double rho_write, double write_factor = 1.0,
    std::size_t mem_limit_bytes = std::numeric_limits<std::size_t>::max());

// Fusion-aware chain pricing. When `fused` is set, every *intermediate*
// product's write cost is scaled by `fused_write_factor` (< 1: resident
// tiles are written once, cache-hot, and never re-materialized); the root
// product — whose result really is handed to the caller — keeps full
// write cost. This can shift the DP towards plans with larger but
// shorter-lived intermediates.
struct ChainCostOptions {
  bool fused = false;
  double fused_write_factor = 0.35;
  // Memory SLA the executing operator will run under. When finite, every
  // candidate product is priced at its own water-level threshold instead
  // of the raw rho_write (see EstimateMultiplyCost), steering the DP away
  // from parenthesizations whose intermediates would be forced sparse.
  std::size_t result_mem_limit_bytes =
      std::numeric_limits<std::size_t>::max();
};

struct ChainPlan {
  // split[i][j] = k: evaluate (A_i..A_k) * (A_{k+1}..A_j). Valid for
  // j > i; leaves are single matrices.
  std::vector<std::vector<int>> split;
  double estimated_cost = 0.0;

  // Human-readable parenthesization, e.g. "((A0*A1)*A2)".
  std::string ToString() const;
};

// Dynamic-programming plan over the chain's density maps. All maps must
// share the block size, and neighbours must have compatible shapes.
ChainPlan PlanChain(const std::vector<const DensityMap*>& maps,
                    const CostModel& model, double rho_write,
                    const ChainCostOptions& options = {});

// Cost of evaluating the chain strictly left-to-right, for comparison.
double EstimateLeftToRightCost(const std::vector<const DensityMap*>& maps,
                               const CostModel& model, double rho_write,
                               const ChainCostOptions& options = {});

// Execution statistics of one chain: the accumulated operator stats plus
// the per-product breakdown (products in execution = post-order of the
// plan tree, left subtree first; the last entry is the root product) and
// the fused-dataflow quantities.
struct ChainExecStats {
  AtMultStats total;
  std::vector<AtMultStats> per_product;

  bool fused = false;
  // Why fused execution was declined ("" when fused): "disabled",
  // "short_chain", "no_estimation", or "budget_infeasible". Recorded in
  // the DecisionLog chain ring and shown by `atmx decisions`.
  std::string fallback_reason;
  // Tile tasks in the fused DAG (0 when executed product-at-a-time).
  index_t fused_tasks = 0;
  // Peak bytes of result tiles simultaneously resident during fused
  // execution — intermediates (dropped after their last consumer) plus
  // the accumulating root result.
  std::uint64_t resident_peak_bytes = 0;
  // Chain-scope memory budget (0 = unbounded): the shared
  // result_mem_limit_bytes the chain-scope water level planned
  // per-product write thresholds against, its projected resident-set
  // peak, and whether any threshold assignment could meet it.
  std::uint64_t budget_bytes = 0;
  std::uint64_t projected_peak_bytes = 0;
  bool budget_feasible = true;
};

// Executes the chain according to the plan using the given operator.
// When the operator's config has `fused_chains` set (and the chain has at
// least two products), the whole chain runs as one tile-granular task DAG
// — see docs/CHAINS.md; otherwise product-at-a-time. A finite
// result_mem_limit_bytes becomes a chain-scope budget: per-product write
// thresholds are planned against the shared limit (charging each
// intermediate for its resident lifetime) and imposed on BOTH executors,
// and the fused DAG admission-gates tile tasks against it — only a
// budget no threshold assignment can meet downgrades the chain to
// product-at-a-time (reason "budget_infeasible" in stats/DecisionLog).
// Both paths produce bitwise-identical results at every budget.
// Intermediate-operand JIT conversions go through one shared
// ConversionCache per distinct source matrix either way, so a matrix
// appearing in several products converts each tile at most once per
// chain. `stats`, if non-null, receives the full breakdown.
ATMatrix ExecuteChain(const std::vector<const ATMatrix*>& chain,
                      const ChainPlan& plan, const AtMult& op,
                      ChainExecStats* stats);

// Back-compat convenience: accumulates only the summed operator stats.
ATMatrix ExecuteChain(const std::vector<const ATMatrix*>& chain,
                      const ChainPlan& plan, const AtMult& op,
                      AtMultStats* stats_accum = nullptr);

}  // namespace atmx

#endif  // ATMX_OPS_CHAIN_H_
