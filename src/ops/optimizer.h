// Dynamic multiplication optimizer (section III-C): per tile-pair it
// decides — via the cost model — which representation each operand window
// should be multiplied in, converting tiles just-in-time when that lowers
// the projected runtime. Conversions are cached for the remainder of the
// operation ("just-in-time partial data conversions").

#ifndef ATMX_OPS_OPTIMIZER_H_
#define ATMX_OPS_OPTIMIZER_H_

#include <memory>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "cost/cost_model.h"
#include "kernels/kernel_common.h"
#include "tile/tile.h"

namespace atmx {

// Which representations the pair multiplication should run with.
struct PairDecision {
  bool a_dense = false;
  bool b_dense = false;
  bool a_converted = false;  // decision differs from the stored kind
  bool b_converted = false;
  double projected_cost = 0.0;
  // Cost of running with the stored representations (no conversions); the
  // decision-audit log reports projected_cost against this baseline.
  double stored_cost = 0.0;
};

// Chooses representations for one pair multiplication. `a_cached` /
// `b_cached` flag whether the *other* representation of the tile is already
// available (cached conversion => zero conversion cost in the comparison).
PairDecision DecidePairRepresentations(const CostModel& model,
                                       const MultiplyShape& shape,
                                       bool a_is_dense, bool b_is_dense,
                                       bool a_cached, bool b_cached,
                                       bool c_dense, bool allow_conversion);

// Thread-safe cache of converted tile payloads, keyed by (operand, tile
// index). Lives for the duration of one ATMULT operation.
class ConversionCache {
 public:
  // Identifies the operand matrix a tile belongs to.
  enum Side { kLeft = 0, kRight = 1 };

  ConversionCache() = default;
  // Releases the cache's contribution to the allocation tracker (the
  // converted payloads themselves die with the maps).
  ~ConversionCache();
  ConversionCache(const ConversionCache&) = delete;
  ConversionCache& operator=(const ConversionCache&) = delete;

  // Dense payload of `tile` (converting and caching on first use).
  // `conversion_seconds` is incremented by the conversion time when one
  // happens.
  const DenseMatrix& GetDense(Side side, index_t tile_idx, const Tile& tile,
                              double* conversion_seconds);

  // Sparse payload of `tile`, analogous.
  const CsrMatrix& GetSparse(Side side, index_t tile_idx, const Tile& tile,
                             double* conversion_seconds);

  bool HasDense(Side side, index_t tile_idx) const;
  bool HasSparse(Side side, index_t tile_idx) const;

  // Conversion counts so far. Locked: tasks on other teams may still be
  // converting while a caller polls (the pre-annotation accessors read the
  // guarded counters unlocked, a defect the thread-safety migration
  // surfaced — see ConversionCacheTest.ConversionCountersAreLockProtected).
  index_t sparse_to_dense_count() const {
    MutexLock lock(mutex_);
    return sparse_to_dense_count_;
  }
  index_t dense_to_sparse_count() const {
    MutexLock lock(mutex_);
    return dense_to_sparse_count_;
  }

  // Bytes of converted payloads currently held by the cache.
  std::uint64_t cached_bytes() const {
    MutexLock lock(mutex_);
    return cached_bytes_;
  }

 private:
  static std::uint64_t Key(Side side, index_t tile_idx) {
    return (static_cast<std::uint64_t>(side) << 62) |
           static_cast<std::uint64_t>(tile_idx);
  }

  mutable Mutex mutex_;
  std::unordered_map<std::uint64_t, std::unique_ptr<DenseMatrix>> dense_
      ATMX_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, std::unique_ptr<CsrMatrix>> sparse_
      ATMX_GUARDED_BY(mutex_);
  index_t sparse_to_dense_count_ ATMX_GUARDED_BY(mutex_) = 0;
  index_t dense_to_sparse_count_ ATMX_GUARDED_BY(mutex_) = 0;
  std::uint64_t cached_bytes_ ATMX_GUARDED_BY(mutex_) = 0;
};

}  // namespace atmx

#endif  // ATMX_OPS_OPTIMIZER_H_
