#include "ops/product_task.h"

#include <algorithm>
#include <array>
#include <utility>

#include "common/check.h"
#include "common/math_util.h"
#include "common/timer.h"
#include "kernels/kernel_dispatch.h"
#include "kernels/sparse_accumulator.h"
#include "obs/obs.h"
#if defined(ATMX_OBS_ENABLED)
#include "obs/audit_ledger.h"
#endif

namespace atmx::internal {

OperandView OperandView::FromMatrix(const ATMatrix& m) {
  OperandView v;
  v.tiles_ = &m.tiles();
  v.row_bounds_ = &m.row_bounds();
  v.col_bounds_ = &m.col_bounds();
  v.map_ = &m.density_map();
  v.row_band_tiles_.resize(static_cast<std::size_t>(m.num_row_bands()));
  for (index_t band = 0; band < m.num_row_bands(); ++band) {
    const auto span = m.TilesInRowBand(band);
    v.row_band_tiles_[static_cast<std::size_t>(band)].assign(span.begin(),
                                                             span.end());
  }
  v.col_band_tiles_.resize(static_cast<std::size_t>(m.num_col_bands()));
  for (index_t band = 0; band < m.num_col_bands(); ++band) {
    const auto span = m.TilesInColBand(band);
    v.col_band_tiles_[static_cast<std::size_t>(band)].assign(span.begin(),
                                                             span.end());
  }
  return v;
}

OperandView OperandView::FromGrid(const std::vector<Tile>* tiles,
                                  const std::vector<index_t>* row_bounds,
                                  const std::vector<index_t>* col_bounds,
                                  const DensityMap* map) {
  OperandView v;
  v.tiles_ = tiles;
  v.row_bounds_ = row_bounds;
  v.col_bounds_ = col_bounds;
  v.map_ = map;
  const index_t nrb = static_cast<index_t>(row_bounds->size()) - 1;
  const index_t ncb = static_cast<index_t>(col_bounds->size()) - 1;
  ATMX_CHECK_EQ(static_cast<index_t>(tiles->size()), nrb * ncb);
  v.row_band_tiles_.resize(static_cast<std::size_t>(nrb));
  for (index_t ti = 0; ti < nrb; ++ti) {
    auto& band = v.row_band_tiles_[static_cast<std::size_t>(ti)];
    band.reserve(static_cast<std::size_t>(ncb));
    for (index_t tj = 0; tj < ncb; ++tj) band.push_back(ti * ncb + tj);
  }
  v.col_band_tiles_.resize(static_cast<std::size_t>(ncb));
  for (index_t tj = 0; tj < ncb; ++tj) {
    auto& band = v.col_band_tiles_[static_cast<std::size_t>(tj)];
    band.reserve(static_cast<std::size_t>(nrb));
    for (index_t ti = 0; ti < nrb; ++ti) band.push_back(ti * ncb + tj);
  }
  return v;
}

namespace {

// One matching tile pair contributing to a C tile: A tile x B tile over the
// shared contraction range [k0, k1).
struct MatchedPair {
  const Tile* a_tile;
  index_t a_idx;
  const Tile* b_tile;
  index_t b_idx;
  index_t k0;
  index_t k1;
};

// Prepared pair: operands resolved to concrete representations/windows.
struct PreparedPair {
  Operand a;
  Operand b;
  std::uint64_t a_read_bytes;
  std::uint64_t b_read_bytes;
  int a_home;
  int b_home;
};

// Concatenates per-thread row-chunk CSRs (chunk c covers rows
// [splits[c], splits[c+1])) into one matrix of `rows` rows.
CsrMatrix ConcatCsrRowChunks(std::vector<CsrMatrix> chunks, index_t rows,
                             index_t cols) {
  index_t nnz = 0;
  for (const CsrMatrix& c : chunks) nnz += c.nnz();
  std::vector<index_t> row_ptr;
  row_ptr.reserve(rows + 1);
  row_ptr.push_back(0);
  std::vector<index_t> col_idx;
  col_idx.reserve(nnz);
  std::vector<value_t> values;
  values.reserve(nnz);
  for (const CsrMatrix& c : chunks) {
    const index_t offset = static_cast<index_t>(col_idx.size());
    for (index_t i = 0; i < c.rows(); ++i) {
      row_ptr.push_back(c.row_ptr()[i + 1] + offset);
    }
    col_idx.insert(col_idx.end(), c.col_idx().begin(), c.col_idx().end());
    values.insert(values.end(), c.values().begin(), c.values().end());
  }
  ATMX_CHECK_EQ(static_cast<index_t>(row_ptr.size()), rows + 1);
  return CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

// Approximate bytes read from an operand window, for locality accounting.
std::uint64_t ApproxWindowBytes(bool dense, double rho, index_t m,
                                index_t n) {
  const double area = static_cast<double>(m) * static_cast<double>(n);
  return static_cast<std::uint64_t>(
      dense ? area * kDenseElemBytes : rho * area * kSparseElemBytes);
}

}  // namespace

void RunProductTileTask(const ProductContext& ctx, WorkerTeam& team,
                        index_t task) {
  const OperandView& a = ctx.a;
  const OperandView& b = ctx.b;
  const index_t block = ctx.block;
  const index_t num_tj = b.num_col_bands();
  const index_t ti = task / num_tj;
  const index_t tj = task % num_tj;
  const index_t r0 = a.row_bounds()[ti];
  const index_t r1 = a.row_bounds()[ti + 1];
  const index_t c0 = b.col_bounds()[tj];
  const index_t c1 = b.col_bounds()[tj + 1];
  // Once per task, so cheap enough to keep in release builds: any check
  // failure below names the C tile being produced.
  ScopedCheckContext check_ctx(
      "AtMult tile (%lld,%lld) C[%lld:%lld,%lld:%lld)",
      static_cast<long long>(ti), static_cast<long long>(tj),
      static_cast<long long>(r0), static_cast<long long>(r1),
      static_cast<long long>(c0), static_cast<long long>(c1));
  const index_t m = r1 - r0;
  const index_t n = c1 - c0;
  const int exec_node = team.team_id();
  ATMX_TRACE_SPAN_ARGS("op", "tile_task",
                       {"ti", ti}, {"tj", tj}, {"node", exec_node},
                       {"rows", m}, {"cols", n});

  double opt_seconds = 0.0;
  double conv_seconds = 0.0;  // subsumed by the optimizer timer below
  double mult_seconds = 0.0;
  index_t pairs_done = 0;
  std::uint64_t local_read = 0, remote_read = 0;
  std::array<index_t, kNumKernelTypes> task_kernels{};
#if defined(ATMX_OBS_ENABLED)
  // Prediction-audit collection: repr records are held back until the C
  // tile is materialized (its realized density resolves every pair
  // decision of this task); the task-level cost prediction accumulates
  // per-pair model costs plus the write side.
  std::vector<obs::ReprAuditRecord> pending_repr;
  double predicted_task_cost = 0.0;
  double predicted_intermediates = 0.0;
  const obs::PerfSnapshot task_perf_begin =
      ctx.ledger_enabled ? obs::PerfBeginSnapshot() : obs::PerfSnapshot();
#endif

  std::vector<Tile>& c_tiles = *ctx.c_tiles;
  std::vector<double>& block_counts = *ctx.block_counts;
  const index_t grid_cols = ctx.grid_cols;

  // Target representation from the estimated density (Alg. 2 l. 6).
  double rho_c = 0.0;
  if (ctx.use_estimate) {
    rho_c = ctx.estimate->RegionDensity(r0 / block, c0 / block,
                                        CeilDiv(m, block), CeilDiv(n, block));
  }
  const bool c_dense = ctx.use_estimate && rho_c >= ctx.rho_w;

  // Accumulator windows: tiles of the initial C overlapping this task's
  // region, with their intersection boxes in region-local coordinates.
  struct SeedWindow {
    const Tile* tile;
    index_t tr0, tr1, tc0, tc1;  // tile-local intersection
    index_t out_r0, out_c0;      // region-local offset of the window
  };
  std::vector<SeedWindow> seeds;
  if (ctx.c_init != nullptr) {
    for (const Tile& t : ctx.c_init->tiles()) {
      const index_t ir0 = std::max(r0, t.row0());
      const index_t ir1 = std::min(r1, t.row_end());
      const index_t ic0 = std::max(c0, t.col0());
      const index_t ic1 = std::min(c1, t.col_end());
      if (ir0 < ir1 && ic0 < ic1 && t.nnz() > 0) {
        seeds.push_back({&t, ir0 - t.row0(), ir1 - t.row0(),
                         ic0 - t.col0(), ic1 - t.col0(), ir0 - r0,
                         ic0 - c0});
        // The referenced accumulator window is read exactly once while
        // seeding; account it like the operand windows so MultiplyAdd's
        // locality fractions include the C-side traffic.
        const double tile_area =
            static_cast<double>(t.rows()) * static_cast<double>(t.cols());
        const double rho =
            tile_area > 0 ? static_cast<double>(t.nnz()) / tile_area : 0.0;
        const std::uint64_t bytes = ApproxWindowBytes(
            t.is_dense(), rho, ir1 - ir0, ic1 - ic0);
        (t.home_node() == exec_node ? local_read : remote_read) += bytes;
      }
    }
  }

  // --- Match tiles along the contraction dimension (Fig. 4). ----------
  std::vector<MatchedPair> matched;
  {
    auto a_band = a.TilesInRowBand(ti);
    auto b_band = b.TilesInColBand(tj);
    std::size_t ia = 0, ib = 0;
    while (ia < a_band.size() && ib < b_band.size()) {
      const Tile& at = a.tile(a_band[ia]);
      const Tile& bt = b.tile(b_band[ib]);
      const index_t k0 = std::max(at.col0(), bt.row0());
      const index_t k1 = std::min(at.col_end(), bt.row_end());
      if (k1 > k0 && at.nnz() > 0 && bt.nnz() > 0) {
        matched.push_back({&at, a_band[ia], &bt, b_band[ib], k0, k1});
      }
      if (at.col_end() <= bt.row_end()) {
        ++ia;
      } else {
        ++ib;
      }
    }
  }

  // --- Optimize each pair: representations + JIT conversions. ---------
  std::vector<PreparedPair> prepared;
  prepared.reserve(matched.size());
  {
    WallTimer opt_timer;
    for (const MatchedPair& mp : matched) {
      const index_t k = mp.k1 - mp.k0;
      MultiplyShape shape;
      shape.m = m;
      shape.k = k;
      shape.n = n;
      shape.rho_a = a.map().RegionDensity(
          r0 / block, mp.k0 / block, CeilDiv(m, block), CeilDiv(k, block));
      shape.rho_b = b.map().RegionDensity(
          mp.k0 / block, c0 / block, CeilDiv(k, block), CeilDiv(n, block));
      shape.rho_c = rho_c;

      // The tile pair matched on bounding boxes, but the referenced
      // windows can still be exactly empty (e.g. a huge melted sparse
      // tile that only touches the band in a far corner). The density
      // map is exact at block granularity and windows are block-aligned,
      // so a zero region density proves the pair contributes nothing.
      if (shape.rho_a == 0.0 || shape.rho_b == 0.0) continue;

      PairDecision decision;
      bool a_cached = false, b_cached = false;
      if (ctx.dynamic_conversion) {
        a_cached =
            mp.a_tile->is_dense()
                ? ctx.a_cache->HasSparse(ctx.a_cache_side, mp.a_idx)
                : ctx.a_cache->HasDense(ctx.a_cache_side, mp.a_idx);
        b_cached =
            mp.b_tile->is_dense()
                ? ctx.b_cache->HasSparse(ctx.b_cache_side, mp.b_idx)
                : ctx.b_cache->HasDense(ctx.b_cache_side, mp.b_idx);
        decision = DecidePairRepresentations(
            *ctx.cost_model, shape, mp.a_tile->is_dense(),
            mp.b_tile->is_dense(), a_cached, b_cached, c_dense,
            /*allow_conversion=*/true);
      } else {
        decision.a_dense = mp.a_tile->is_dense();
        decision.b_dense = mp.b_tile->is_dense();
      }

#if defined(ATMX_OBS_ENABLED)
      if (ctx.audit_enabled) {
        obs::DecisionRecord rec;
        rec.op_id = ctx.op_id;
        rec.ti = ti;
        rec.tj = tj;
        rec.k0 = mp.k0;
        rec.k1 = mp.k1;
        rec.rho_a = shape.rho_a;
        rec.rho_b = shape.rho_b;
        rec.rho_c = rho_c;
        rec.rho_w = ctx.rho_w;
        rec.a_stored_dense = mp.a_tile->is_dense();
        rec.b_stored_dense = mp.b_tile->is_dense();
        rec.c_dense = c_dense;
        rec.kernel =
            MakeKernelType(decision.a_dense, decision.b_dense, c_dense);
        rec.a_converted = decision.a_converted;
        rec.b_converted = decision.b_converted;
        rec.stored_cost = decision.stored_cost;
        rec.chosen_cost = decision.projected_cost;
        obs::DecisionLog::Global().Record(rec);
      }
      if (ctx.ledger_enabled) {
        const KernelType chosen =
            MakeKernelType(decision.a_dense, decision.b_dense, c_dense);
        // Task-level cost prediction: pair compute (+ conversion when the
        // optimizer priced one in) plus the expected SPA traffic feeding
        // the write side accounted after the loop.
        predicted_task_cost +=
            ctx.dynamic_conversion
                ? decision.projected_cost
                : ctx.cost_model->ComputeCost(chosen, shape);
        predicted_intermediates += shape.rho_a * shape.rho_b *
                                   static_cast<double>(shape.m) *
                                   static_cast<double>(shape.k) *
                                   static_cast<double>(shape.n);
        if (ctx.use_estimate && ctx.dynamic_conversion) {
          // Held back until the tile's realized density is known.
          obs::ReprAuditRecord repr;
          repr.op = ctx.op_id;
          repr.ti = ti;
          repr.tj = tj;
          repr.k0 = mp.k0;
          repr.k1 = mp.k1;
          repr.m = shape.m;
          repr.k = shape.k;
          repr.n = shape.n;
          repr.rho_a = shape.rho_a;
          repr.rho_b = shape.rho_b;
          repr.rho_c_pred = rho_c;
          repr.rho_c_actual = -1.0;
          repr.rho_w = ctx.rho_w;
          repr.a_stored_dense = mp.a_tile->is_dense();
          repr.b_stored_dense = mp.b_tile->is_dense();
          repr.a_cached = a_cached;
          repr.b_cached = b_cached;
          repr.allow_conversion = true;
          repr.c_dense = c_dense;
          repr.kernel = static_cast<int>(chosen);
          repr.stored_cost = decision.stored_cost;
          repr.chosen_cost = decision.projected_cost;
          pending_repr.push_back(repr);
        }
      }
#endif

      PreparedPair pp;
      pp.a_home = mp.a_tile->home_node();
      pp.b_home = mp.b_tile->home_node();
      // A operand: window rows = C rows, window cols = [k0, k1).
      const Window wa{r0 - mp.a_tile->row0(), r1 - mp.a_tile->row0(),
                      mp.k0 - mp.a_tile->col0(),
                      mp.k1 - mp.a_tile->col0()};
      if (decision.a_dense) {
        const DenseMatrix& dm =
            mp.a_tile->is_dense()
                ? mp.a_tile->dense()
                : ctx.a_cache->GetDense(ctx.a_cache_side, mp.a_idx,
                                        *mp.a_tile, &conv_seconds);
        pp.a = Operand::Dense(
            dm.View().Window(wa.r0, wa.c0, wa.rows(), wa.cols()));
      } else {
        const CsrMatrix& sm =
            mp.a_tile->is_dense()
                ? ctx.a_cache->GetSparse(ctx.a_cache_side, mp.a_idx,
                                         *mp.a_tile, &conv_seconds)
                : mp.a_tile->sparse();
        pp.a = Operand::Sparse(&sm, wa);
      }
      // B operand: window rows = [k0, k1), window cols = C cols.
      const Window wb{mp.k0 - mp.b_tile->row0(), mp.k1 - mp.b_tile->row0(),
                      c0 - mp.b_tile->col0(), c1 - mp.b_tile->col0()};
      if (decision.b_dense) {
        const DenseMatrix& dm =
            mp.b_tile->is_dense()
                ? mp.b_tile->dense()
                : ctx.b_cache->GetDense(ctx.b_cache_side, mp.b_idx,
                                        *mp.b_tile, &conv_seconds);
        pp.b = Operand::Dense(
            dm.View().Window(wb.r0, wb.c0, wb.rows(), wb.cols()));
      } else {
        const CsrMatrix& sm =
            mp.b_tile->is_dense()
                ? ctx.b_cache->GetSparse(ctx.b_cache_side, mp.b_idx,
                                         *mp.b_tile, &conv_seconds)
                : mp.b_tile->sparse();
        pp.b = Operand::Sparse(&sm, wb);
      }
      pp.a_read_bytes = ApproxWindowBytes(decision.a_dense, shape.rho_a,
                                          shape.m, shape.k);
      pp.b_read_bytes = ApproxWindowBytes(decision.b_dense, shape.rho_b,
                                          shape.k, shape.n);
      prepared.push_back(std::move(pp));
    }
    // The surrounding timer already covers the JIT conversions
    // (conv_seconds), so only the timer is accumulated.
    opt_seconds += opt_timer.ElapsedSeconds();
    (void)conv_seconds;
  }

  // --- Execute: accumulate all pairs into the C tile. -----------------
  WallTimer mult_timer;
  if (prepared.empty() && seeds.empty()) {
    // Nothing contributes to this C tile (common off the diagonal of
    // banded matrices): emit an empty sparse tile without touching the
    // row loop.
    c_tiles[task] = Tile::MakeSparse(r0, c0, CsrMatrix(m, n));
  } else if (c_dense) {
    DenseMatrix target(m, n);
    for (const SeedWindow& sw : seeds) {
      if (sw.tile->is_dense()) {
        const DenseMatrix& d = sw.tile->dense();
        for (index_t i = sw.tr0; i < sw.tr1; ++i) {
          const value_t* src = d.data() + i * d.ld() + sw.tc0;
          value_t* dst = target.data() +
                         (sw.out_r0 + i - sw.tr0) * target.ld() +
                         sw.out_c0;
          for (index_t j = 0; j < sw.tc1 - sw.tc0; ++j) dst[j] += src[j];
        }
      } else {
        const CsrMatrix& sp = sw.tile->sparse();
        for (index_t i = sw.tr0; i < sw.tr1; ++i) {
          index_t first, last;
          sp.RowColRange(i, sw.tc0, sw.tc1, &first, &last);
          value_t* dst =
              target.data() + (sw.out_r0 + i - sw.tr0) * target.ld();
          for (index_t p = first; p < last; ++p) {
            dst[sw.out_c0 + sp.col_idx()[p] - sw.tc0] += sp.values()[p];
          }
        }
      }
    }
    for (const PreparedPair& pp : prepared) {
      const KernelType kt = DispatchKernelType(pp.a, pp.b, /*c_dense=*/true);
      ++task_kernels[static_cast<int>(kt)];
      // Perf span: counter deltas (LLC misses etc.) land as args on the
      // kernel trace span and accumulate under kernel.<variant>.*. On a
      // multi-thread team only the calling thread's share is counted.
      ATMX_PERF_SPAN_ARGS("kernel", KernelTypeName(kt),
                          KernelPerfMetricPrefix(kt), {"ti", ti},
                          {"tj", tj}, {"rows", m}, {"cols", n},
                          {"node", exec_node});
      team.ParallelFor(m, /*grain=*/16, [&](index_t lo, index_t hi) {
        MultiplyIntoDense(pp.a, pp.b, target.MutView(), lo, hi);
      });
    }
    // Single cache-hot pass: per-block counts + tile nnz.
    index_t tile_nnz = 0;
    for (index_t i = 0; i < m; ++i) {
      const index_t bi = (r0 + i) / block;
      const value_t* row = target.data() + i * target.ld();
      for (index_t j0 = 0; j0 < n; j0 += block) {
        const index_t j1 = std::min(j0 + block, n);
        index_t count = 0;
        for (index_t j = j0; j < j1; ++j) count += (row[j] != 0.0);
        block_counts[bi * grid_cols + (c0 + j0) / block] +=
            static_cast<double>(count);
        tile_nnz += count;
      }
    }
    c_tiles[task] =
        Tile::MakeDenseCounted(r0, c0, std::move(target), tile_nnz);
  } else {
    // Seeds one region-local row of the accumulator into the SPA.
    auto seed_row = [&](index_t i, SparseAccumulator* spa) {
      for (const SeedWindow& sw : seeds) {
        const index_t ti_local = sw.tr0 + (i - sw.out_r0);
        if (i < sw.out_r0 || ti_local >= sw.tr1) continue;
        if (sw.tile->is_dense()) {
          const DenseMatrix& d = sw.tile->dense();
          const value_t* src = d.data() + ti_local * d.ld();
          for (index_t j = sw.tc0; j < sw.tc1; ++j) {
            if (src[j] != 0.0) {
              spa->Add(sw.out_c0 + j - sw.tc0, src[j]);
            }
          }
        } else {
          const CsrMatrix& sp = sw.tile->sparse();
          index_t first, last;
          sp.RowColRange(ti_local, sw.tc0, sw.tc1, &first, &last);
          for (index_t p = first; p < last; ++p) {
            spa->Add(sw.out_c0 + sp.col_idx()[p] - sw.tc0,
                     sp.values()[p]);
          }
        }
      }
    };
#if defined(ATMX_OBS_ENABLED)
    // The SPA row loop interleaves all pairs, so per-pair timing does
    // not exist; each pair still gets one complete event (emitted after
    // the loop, covering the whole loop interval and flagged
    // `interleaved`) so the "kernel" span count equals the kernel
    // invocation counters.
    const std::int64_t sparse_loop_start_ns =
        obs::TraceRecorder::Global().enabled() ? obs::TraceRecorder::NowNanos()
                                               : -1;
    const obs::PerfSnapshot sparse_loop_begin = obs::PerfBeginSnapshot();
#endif
    const int num_chunks =
        static_cast<int>(std::min<index_t>(team.size(), std::max<index_t>(
                                                            1, m / 64)));
    // Nagasaka-style accumulator selection: ultra-sparse result rows use
    // the hash SPA instead of paying O(n) dense-array init + flag-array
    // cache pollution. Unknown density (estimation off) keeps the dense
    // default; either mode produces bitwise-identical rows.
    const double expected_row_nnz =
        ctx.use_estimate ? rho_c * static_cast<double>(n) : -1.0;
    if (num_chunks <= 1) {
      CsrBuilder builder(m, n);
      SparseAccumulator spa;
      spa.ResizeAdaptive(n, expected_row_nnz);
      for (index_t i = 0; i < m; ++i) {
        seed_row(i, &spa);
        for (const PreparedPair& pp : prepared) {
          AccumulateRowInto(pp.a, pp.b, i, &spa);
        }
        spa.FlushToBuilder(&builder);
        builder.FinishRowsUpTo(i + 1);
      }
      c_tiles[task] = Tile::MakeSparse(r0, c0, builder.Build());
    } else {
      std::vector<CsrMatrix> chunks(num_chunks);
      std::vector<index_t> splits(num_chunks + 1);
      for (int t = 0; t <= num_chunks; ++t) {
        splits[t] = m * t / num_chunks;
      }
      team.ParallelRun([&](int thread) {
        if (thread >= num_chunks) return;
        const index_t lo = splits[thread];
        const index_t hi = splits[thread + 1];
        CsrBuilder builder(hi - lo, n);
        SparseAccumulator spa;
        spa.ResizeAdaptive(n, expected_row_nnz);
        for (index_t i = lo; i < hi; ++i) {
          seed_row(i, &spa);
          for (const PreparedPair& pp : prepared) {
            AccumulateRowInto(pp.a, pp.b, i, &spa);
          }
          spa.FlushToBuilder(&builder);
          builder.FinishRowsUpTo(i - lo + 1);
        }
        chunks[thread] = builder.Build();
      });
      c_tiles[task] =
          Tile::MakeSparse(r0, c0, ConcatCsrRowChunks(std::move(chunks),
                                                      m, n));
    }
    for (const PreparedPair& pp : prepared) {
      const KernelType kt =
          DispatchKernelType(pp.a, pp.b, /*c_dense=*/false);
      ++task_kernels[static_cast<int>(kt)];
    }
#if defined(ATMX_OBS_ENABLED)
    const obs::PerfDelta sparse_loop_delta =
        obs::PerfDeltaSince(sparse_loop_begin);
    if (sparse_loop_delta.valid && !prepared.empty()) {
      // The interleaved row loop has no per-pair hardware attribution; a
      // single-variant loop (the common case) is attributed exactly to
      // that variant, a mixed loop under a shared pseudo-variant rather
      // than over-counting every variant with the full delta.
      const KernelType kt0 = DispatchKernelType(
          prepared.front().a, prepared.front().b, /*c_dense=*/false);
      bool uniform = true;
      for (const PreparedPair& pp : prepared) {
        if (DispatchKernelType(pp.a, pp.b, /*c_dense=*/false) != kt0) {
          uniform = false;
          break;
        }
      }
      obs::AccumulatePerfMetrics(uniform ? KernelPerfMetricPrefix(kt0)
                                         : "kernel.mixed_sparse_loop",
                                 sparse_loop_delta);
    }
    if (sparse_loop_start_ns >= 0 && !prepared.empty()) {
      const std::int64_t dur_ns =
          obs::TraceRecorder::NowNanos() - sparse_loop_start_ns;
      std::vector<obs::TraceArg> loop_args = {
          {"ti", ti},   {"tj", tj},          {"rows", m},
          {"cols", n},  {"node", exec_node}, {"interleaved", 1}};
      obs::AppendPerfArgs(sparse_loop_delta, &loop_args);
      for (const PreparedPair& pp : prepared) {
        const KernelType kt =
            DispatchKernelType(pp.a, pp.b, /*c_dense=*/false);
        obs::TraceRecorder::Global().RecordComplete(
            "kernel", KernelTypeName(kt), sparse_loop_start_ns, dur_ns,
            loop_args);
      }
    }
#endif
  }
  if (!c_dense) {
    const CsrMatrix& sp = c_tiles[task].sparse();
    for (index_t i = 0; i < m; ++i) {
      const index_t bi = (r0 + i) / block;
      for (index_t col : sp.RowCols(i)) {
        block_counts[bi * grid_cols + (c0 + col) / block] += 1.0;
      }
    }
  }
  mult_seconds = mult_timer.ElapsedSeconds();
#if defined(ATMX_OBS_ENABLED)
  if (ctx.ledger_enabled) {
    auto& ledger = obs::AuditLedger::Global();
    // The realized tile density resolves every pair decision of this
    // task (all pairs share the C region the estimate covered).
    const index_t tile_nnz = c_tiles[task].nnz();
    const double area = static_cast<double>(m) * static_cast<double>(n);
    const double rho_c_actual =
        area > 0.0 ? static_cast<double>(tile_nnz) / area : 0.0;
    for (obs::ReprAuditRecord& repr : pending_repr) {
      repr.rho_c_actual = rho_c_actual;
      ledger.RecordRepr(repr);
    }
    if (!prepared.empty()) {
      predicted_task_cost += ctx.cost_model->WriteCost(
          c_dense, m, n, rho_c, predicted_intermediates);
      obs::CostAuditRecord cost;
      cost.op = ctx.op_id;
      cost.ti = ti;
      cost.tj = tj;
      cost.predicted_cost = predicted_task_cost;
      cost.measured_seconds = opt_seconds + mult_seconds;
      const obs::PerfDelta task_delta = obs::PerfDeltaSince(task_perf_begin);
      if (task_delta.valid) {
        if (task_delta.has(obs::PerfCounterId::kCycles)) {
          cost.measured_cycles = task_delta[obs::PerfCounterId::kCycles];
        }
        if (task_delta.has(obs::PerfCounterId::kTaskClockNs)) {
          cost.measured_cpu_ns = static_cast<double>(
              task_delta[obs::PerfCounterId::kTaskClockNs]);
        }
      }
      // Attribute the task to its kernel variant when all pairs agreed.
      int dominant = -1;
      bool mixed = false;
      for (int v = 0; v < kNumKernelTypes; ++v) {
        if (task_kernels[static_cast<std::size_t>(v)] > 0) {
          mixed = dominant >= 0;
          dominant = v;
        }
      }
      cost.kernel = mixed ? -1 : dominant;
      ledger.RecordCost(cost);
      if (!c_dense) {
        obs::SpaModeAuditRecord spa;
        spa.op = ctx.op_id;
        spa.ti = ti;
        spa.tj = tj;
        spa.width = n;
        spa.predicted_row_nnz =
            ctx.use_estimate ? rho_c * static_cast<double>(n) : -1.0;
        spa.actual_row_nnz =
            m > 0 ? static_cast<double>(tile_nnz) / static_cast<double>(m)
                  : 0.0;
        spa.chosen_mode = static_cast<int>(
            SparseAccumulator::ChooseMode(n, spa.predicted_row_nnz));
        ledger.RecordSpaMode(spa);
      }
    }
  }
#endif
  c_tiles[task].set_home_node(exec_node);  // first-touch placement
#if defined(ATMX_OBS_ENABLED)
  if (ctx.tracked_bytes != nullptr) {
    const std::size_t tile_bytes = c_tiles[task].MemoryBytes();
    obs::MemTracker::Global().RecordAlloc(tile_bytes);
    ctx.tracked_bytes->fetch_add(tile_bytes, std::memory_order_relaxed);
  }
#endif
  pairs_done = static_cast<index_t>(prepared.size());

  for (const PreparedPair& pp : prepared) {
    (pp.a_home == exec_node ? local_read : remote_read) += pp.a_read_bytes;
    (pp.b_home == exec_node ? local_read : remote_read) += pp.b_read_bytes;
  }

  MutexLock lock(*ctx.stats_mutex);
  AtMultStats* stats = ctx.stats;
  stats->optimize_seconds += opt_seconds;
  stats->multiply_seconds += mult_seconds;
  stats->pair_multiplications += pairs_done;
  for (int v = 0; v < kNumKernelTypes; ++v) {
    stats->kernel_invocations[v] += task_kernels[static_cast<std::size_t>(v)];
  }
  stats->local_read_bytes += local_read;
  stats->remote_read_bytes += remote_read;
  stats->local_write_bytes += c_tiles[task].MemoryBytes();
}

}  // namespace atmx::internal
