#include "ops/explain.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/math_util.h"
#include "common/table_printer.h"
#include "estimate/density_estimator.h"
#include "estimate/water_level.h"
#include "ops/optimizer.h"

namespace atmx {

std::string MultiplyPlan::ToString(index_t max_pairs) const {
  std::ostringstream os;
  os << "MultiplyPlan: " << num_row_bands << " x " << num_col_bands
     << " target tiles (" << dense_target_tiles << " dense, "
     << sparse_target_tiles << " sparse), rho_W="
     << effective_write_threshold << "\n";
  os << "  estimated result: " << static_cast<long long>(estimated_result_nnz)
     << " nnz, ~" << TablePrinter::FmtBytes(estimated_result_bytes) << "\n";
  os << "  " << pairs.size() << " pair multiplications, "
     << planned_conversions << " JIT conversions, projected cost "
     << static_cast<long long>(total_projected_cost) << " units\n";

  TablePrinter table({"C(ti,tj)", "k range", "rho_a", "rho_b", "kernel",
                      "conv", "cost"});
  const index_t shown =
      std::min<index_t>(max_pairs, static_cast<index_t>(pairs.size()));
  for (index_t i = 0; i < shown; ++i) {
    const PlannedPair& p = pairs[i];
    std::string conv;
    if (p.converts_a) conv += "A";
    if (p.converts_b) conv += conv.empty() ? "B" : "+B";
    if (conv.empty()) conv = "-";
    table.AddRow({"(" + std::to_string(p.ti) + "," + std::to_string(p.tj) +
                      ")",
                  "[" + std::to_string(p.k0) + "," + std::to_string(p.k1) +
                      ")",
                  TablePrinter::Fmt(p.rho_a, 4),
                  TablePrinter::Fmt(p.rho_b, 4), KernelTypeName(p.kernel),
                  conv, TablePrinter::Fmt(p.projected_cost, 0)});
  }
  os << table.ToString();
  if (shown < static_cast<index_t>(pairs.size())) {
    os << "  ... " << (pairs.size() - shown) << " more pairs\n";
  }
  return os.str();
}

#if defined(ATMX_OBS_ENABLED)
std::string FormatDecisionLog(const std::vector<obs::DecisionRecord>& records,
                              index_t max_rows) {
  std::ostringstream os;
  index_t conversions = 0;
  double stored_cost = 0.0;
  double chosen_cost = 0.0;
  for (const obs::DecisionRecord& r : records) {
    conversions += (r.a_converted ? 1 : 0) + (r.b_converted ? 1 : 0);
    stored_cost += r.stored_cost;
    chosen_cost += r.chosen_cost;
  }
  os << "DecisionLog: " << records.size() << " decisions, " << conversions
     << " JIT conversions, cost " << static_cast<long long>(chosen_cost)
     << " units (stored-representation baseline "
     << static_cast<long long>(stored_cost) << ")\n";

  TablePrinter table({"op", "C(ti,tj)", "k range", "rho_a", "rho_b", "rho_c",
                      "rho_W", "kernel", "conv", "cost", "stored"});
  const index_t shown =
      std::min<index_t>(max_rows, static_cast<index_t>(records.size()));
  for (index_t i = 0; i < shown; ++i) {
    const obs::DecisionRecord& r = records[i];
    std::string conv;
    if (r.a_converted) conv += "A";
    if (r.b_converted) conv += conv.empty() ? "B" : "+B";
    if (conv.empty()) conv = "-";
    table.AddRow({std::to_string(r.op_id),
                  "(" + std::to_string(r.ti) + "," + std::to_string(r.tj) +
                      ")",
                  "[" + std::to_string(r.k0) + "," + std::to_string(r.k1) +
                      ")",
                  TablePrinter::Fmt(r.rho_a, 4),
                  TablePrinter::Fmt(r.rho_b, 4),
                  TablePrinter::Fmt(r.rho_c, 4),
                  TablePrinter::Fmt(r.rho_w, 4), KernelTypeName(r.kernel),
                  conv, TablePrinter::Fmt(r.chosen_cost, 0),
                  TablePrinter::Fmt(r.stored_cost, 0)});
  }
  os << table.ToString();
  if (shown < static_cast<index_t>(records.size())) {
    os << "  ... " << (records.size() - shown) << " more decisions\n";
  }
  return os.str();
}

std::string FormatChainDecisions(
    const std::vector<obs::ChainDecisionRecord>& records, index_t max_rows) {
  std::ostringstream os;
  os << "ChainDecisions: " << records.size() << " chains\n";
  if (records.empty()) return os.str();

  TablePrinter table({"op", "plan", "len", "planned", "left-to-right",
                      "fused", "tasks", "resident peak", "budget", "time"});
  const index_t total = static_cast<index_t>(records.size());
  const index_t shown = std::min<index_t>(max_rows, total);
  // Newest records are the interesting ones; the snapshot is oldest-first.
  for (index_t i = total - shown; i < total; ++i) {
    const obs::ChainDecisionRecord& r = records[i];
    table.AddRow({std::to_string(r.op_id), r.plan, std::to_string(r.length),
                  TablePrinter::Fmt(r.planned_cost, 0),
                  TablePrinter::Fmt(r.left_to_right_cost, 0),
                  r.fused ? "yes" : "no(" + r.fallback_reason + ")",
                  std::to_string(r.fused_tasks),
                  TablePrinter::FmtBytes(r.resident_peak_bytes),
                  r.budget_bytes == 0 ? "-"
                                      : TablePrinter::FmtBytes(r.budget_bytes),
                  TablePrinter::Fmt(r.total_seconds, 4) + "s"});
  }
  os << table.ToString();
  if (shown < total) {
    os << "  ... " << (total - shown) << " older chains\n";
  }

  const obs::ChainDecisionRecord& last = records.back();
  if (!last.product_summaries.empty()) {
    os << "  products of chain op " << last.op_id << " (" << last.plan
       << "):\n";
    for (std::size_t i = 0; i < last.product_summaries.size(); ++i) {
      os << "    P" << i << ": " << last.product_summaries[i] << "\n";
    }
  }
  return os.str();
}
#endif  // ATMX_OBS_ENABLED

MultiplyPlan ExplainMultiply(const ATMatrix& a, const ATMatrix& b,
                             const AtmConfig& config,
                             const CostModel& cost_model) {
  ATMX_CHECK_EQ(a.cols(), b.rows());
  ATMX_CHECK_EQ(a.b_atomic(), b.b_atomic());
  const index_t block = a.b_atomic();

  MultiplyPlan plan;
  plan.num_row_bands = a.num_row_bands();
  plan.num_col_bands = b.num_col_bands();

  DensityMap estimate;
  double rho_w = config.rho_write;
  if (config.density_estimation) {
    estimate = EstimateProductDensity(a.density_map(), b.density_map());
    rho_w = EffectiveWriteThreshold(estimate, config.rho_write,
                                    config.result_mem_limit_bytes);
    plan.estimated_result_nnz = estimate.ExpectedNnz();
    plan.estimated_result_bytes = EstimateMemoryBytes(estimate, rho_w);
  }
  plan.effective_write_threshold = rho_w;

  // Tracks which tiles a JIT conversion has already been planned for, so
  // the cached-conversion logic matches execution.
  std::vector<bool> a_converted(a.num_tiles(), false);
  std::vector<bool> b_converted(b.num_tiles(), false);

  for (index_t ti = 0; ti < plan.num_row_bands; ++ti) {
    const index_t r0 = a.row_bounds()[ti];
    const index_t r1 = a.row_bounds()[ti + 1];
    for (index_t tj = 0; tj < plan.num_col_bands; ++tj) {
      const index_t c0 = b.col_bounds()[tj];
      const index_t c1 = b.col_bounds()[tj + 1];
      const index_t m = r1 - r0;
      const index_t n = c1 - c0;

      double rho_c = 0.0;
      if (config.density_estimation) {
        rho_c = estimate.RegionDensity(r0 / block, c0 / block,
                                       CeilDiv(m, block), CeilDiv(n, block));
      }
      const bool c_dense = config.density_estimation && rho_c >= rho_w;
      if (c_dense) {
        plan.dense_target_tiles++;
      } else {
        plan.sparse_target_tiles++;
      }

      auto a_band = a.TilesInRowBand(ti);
      auto b_band = b.TilesInColBand(tj);
      std::size_t ia = 0, ib = 0;
      while (ia < a_band.size() && ib < b_band.size()) {
        const Tile& at = a.tiles()[a_band[ia]];
        const Tile& bt = b.tiles()[b_band[ib]];
        const index_t k0 = std::max(at.col0(), bt.row0());
        const index_t k1 = std::min(at.col_end(), bt.row_end());
        const bool advance_a = at.col_end() <= bt.row_end();
        if (k1 > k0 && at.nnz() > 0 && bt.nnz() > 0) {
          MultiplyShape shape;
          shape.m = m;
          shape.k = k1 - k0;
          shape.n = n;
          shape.rho_a = a.density_map().RegionDensity(
              r0 / block, k0 / block, CeilDiv(m, block),
              CeilDiv(shape.k, block));
          shape.rho_b = b.density_map().RegionDensity(
              k0 / block, c0 / block, CeilDiv(shape.k, block),
              CeilDiv(n, block));
          shape.rho_c = rho_c;
          if (shape.rho_a > 0.0 && shape.rho_b > 0.0) {
            PairDecision decision;
            if (config.dynamic_conversion) {
              decision = DecidePairRepresentations(
                  cost_model, shape, at.is_dense(), bt.is_dense(),
                  a_converted[a_band[ia]], b_converted[b_band[ib]], c_dense,
                  true);
            } else {
              decision.a_dense = at.is_dense();
              decision.b_dense = bt.is_dense();
              decision.projected_cost = cost_model.ComputeCost(
                  MakeKernelType(at.is_dense(), bt.is_dense(), c_dense),
                  shape);
            }
            PlannedPair pair;
            pair.ti = ti;
            pair.tj = tj;
            pair.k0 = k0;
            pair.k1 = k1;
            pair.rho_a = shape.rho_a;
            pair.rho_b = shape.rho_b;
            pair.kernel = MakeKernelType(decision.a_dense, decision.b_dense,
                                         c_dense);
            pair.converts_a =
                decision.a_converted && !a_converted[a_band[ia]];
            pair.converts_b =
                decision.b_converted && !b_converted[b_band[ib]];
            pair.projected_cost = decision.projected_cost;
            if (pair.converts_a) {
              a_converted[a_band[ia]] = true;
              plan.planned_conversions++;
            }
            if (pair.converts_b) {
              b_converted[b_band[ib]] = true;
              plan.planned_conversions++;
            }
            plan.total_projected_cost += decision.projected_cost;
            plan.pairs.push_back(pair);
          }
        }
        if (advance_a) {
          ++ia;
        } else {
          ++ib;
        }
      }
    }
  }
  return plan;
}

}  // namespace atmx
