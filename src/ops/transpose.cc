#include "ops/transpose.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace atmx {

CsrMatrix Transpose(const CsrMatrix& a) {
  const index_t rows = a.rows();
  const index_t cols = a.cols();
  const index_t nnz = a.nnz();

  std::vector<index_t> row_ptr(cols + 1, 0);
  for (index_t c : a.col_idx()) row_ptr[c + 1]++;
  for (index_t j = 0; j < cols; ++j) row_ptr[j + 1] += row_ptr[j];

  std::vector<index_t> col_idx(nnz);
  std::vector<value_t> values(nnz);
  std::vector<index_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (index_t i = 0; i < rows; ++i) {
    auto cs = a.RowCols(i);
    auto vs = a.RowValues(i);
    for (std::size_t p = 0; p < cs.size(); ++p) {
      const index_t q = cursor[cs[p]]++;
      col_idx[q] = i;  // rows visited in order => columns stay sorted
      values[q] = vs[p];
    }
  }
  return CsrMatrix(cols, rows, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

DenseMatrix Transpose(const DenseMatrix& a) {
  DenseMatrix b(a.cols(), a.rows());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      b.At(j, i) = a.At(i, j);
    }
  }
  return b;
}

CooMatrix Transpose(const CooMatrix& a) {
  CooMatrix b(a.cols(), a.rows());
  b.Reserve(a.entries().size());
  for (const CooEntry& e : a.entries()) b.Add(e.col, e.row, e.value);
  return b;
}

ATMatrix Transpose(const ATMatrix& a, int num_nodes) {
  std::vector<Tile> tiles;
  tiles.reserve(a.tiles().size());
  for (const Tile& t : a.tiles()) {
    if (t.is_dense()) {
      tiles.push_back(Tile::MakeDenseCounted(t.col0(), t.row0(),
                                             Transpose(t.dense()), t.nnz()));
    } else {
      tiles.push_back(
          Tile::MakeSparse(t.col0(), t.row0(), Transpose(t.sparse())));
    }
  }
  DensityMap map(a.cols(), a.rows(), a.b_atomic());
  const DensityMap& src = a.density_map();
  for (index_t bi = 0; bi < src.grid_rows(); ++bi) {
    for (index_t bj = 0; bj < src.grid_cols(); ++bj) {
      map.Set(bj, bi, src.At(bi, bj));
    }
  }
  ATMatrix out(a.cols(), a.rows(), a.b_atomic(), std::move(tiles),
               std::move(map));
  // Round-robin home nodes over the transposed tile-rows.
  const auto& bounds = out.row_bounds();
  for (Tile& tile : out.mutable_tiles()) {
    const auto band = std::lower_bound(bounds.begin(), bounds.end(),
                                       tile.row0()) -
                      bounds.begin();
    tile.set_home_node(static_cast<int>(band % std::max(1, num_nodes)));
  }
  return out;
}

}  // namespace atmx
