#include "ops/elementwise.h"

#include <algorithm>

#include "common/check.h"
#include "storage/convert.h"
#include "tile/partitioner.h"

namespace atmx {

CsrMatrix Add(const CsrMatrix& a, const CsrMatrix& b, value_t alpha,
              value_t beta) {
  ATMX_CHECK_EQ(a.rows(), b.rows());
  ATMX_CHECK_EQ(a.cols(), b.cols());
  CsrBuilder builder(a.rows(), a.cols());
  builder.Reserve(a.nnz() + b.nnz());
  for (index_t i = 0; i < a.rows(); ++i) {
    auto ac = a.RowCols(i);
    auto av = a.RowValues(i);
    auto bc = b.RowCols(i);
    auto bv = b.RowValues(i);
    std::size_t pa = 0, pb = 0;
    while (pa < ac.size() || pb < bc.size()) {
      if (pb == bc.size() || (pa < ac.size() && ac[pa] < bc[pb])) {
        builder.Append(ac[pa], alpha * av[pa]);
        ++pa;
      } else if (pa == ac.size() || bc[pb] < ac[pa]) {
        builder.Append(bc[pb], beta * bv[pb]);
        ++pb;
      } else {
        builder.Append(ac[pa], alpha * av[pa] + beta * bv[pb]);
        ++pa;
        ++pb;
      }
    }
    builder.FinishRowsUpTo(i + 1);
  }
  return builder.Build();
}

CsrMatrix Hadamard(const CsrMatrix& a, const CsrMatrix& b) {
  ATMX_CHECK_EQ(a.rows(), b.rows());
  ATMX_CHECK_EQ(a.cols(), b.cols());
  CsrBuilder builder(a.rows(), a.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    auto ac = a.RowCols(i);
    auto av = a.RowValues(i);
    auto bc = b.RowCols(i);
    auto bv = b.RowValues(i);
    std::size_t pa = 0, pb = 0;
    while (pa < ac.size() && pb < bc.size()) {
      if (ac[pa] < bc[pb]) {
        ++pa;
      } else if (bc[pb] < ac[pa]) {
        ++pb;
      } else {
        builder.Append(ac[pa], av[pa] * bv[pb]);
        ++pa;
        ++pb;
      }
    }
    builder.FinishRowsUpTo(i + 1);
  }
  return builder.Build();
}

CsrMatrix Scale(const CsrMatrix& a, value_t alpha) {
  CsrMatrix out = a;
  for (value_t& v : out.mutable_values()) v *= alpha;
  return out;
}

DenseMatrix Add(const DenseMatrix& a, const DenseMatrix& b, value_t alpha,
                value_t beta) {
  ATMX_CHECK_EQ(a.rows(), b.rows());
  ATMX_CHECK_EQ(a.cols(), b.cols());
  DenseMatrix out(a.rows(), a.cols());
  const value_t* pa = a.data();
  const value_t* pb = b.data();
  value_t* po = out.data();
  const std::size_t n = static_cast<std::size_t>(a.rows()) * a.cols();
  for (std::size_t i = 0; i < n; ++i) po[i] = alpha * pa[i] + beta * pb[i];
  return out;
}

DenseMatrix Hadamard(const DenseMatrix& a, const DenseMatrix& b) {
  ATMX_CHECK_EQ(a.rows(), b.rows());
  ATMX_CHECK_EQ(a.cols(), b.cols());
  DenseMatrix out(a.rows(), a.cols());
  const value_t* pa = a.data();
  const value_t* pb = b.data();
  value_t* po = out.data();
  const std::size_t n = static_cast<std::size_t>(a.rows()) * a.cols();
  for (std::size_t i = 0; i < n; ++i) po[i] = pa[i] * pb[i];
  return out;
}

void ScaleInPlace(ATMatrix* a, value_t alpha) {
  ATMX_CHECK(alpha != 0.0);
  for (Tile& t : a->mutable_tiles()) {
    if (t.is_dense()) {
      DenseMatrix& d = t.mutable_dense();
      value_t* p = d.data();
      const std::size_t n = static_cast<std::size_t>(d.rows()) * d.cols();
      for (std::size_t i = 0; i < n; ++i) p[i] *= alpha;
    } else {
      for (value_t& v : t.mutable_sparse().mutable_values()) v *= alpha;
    }
  }
}

ATMatrix AtmAdd(const ATMatrix& a, const ATMatrix& b, const AtmConfig& config,
                value_t alpha, value_t beta) {
  ATMX_CHECK_EQ(a.rows(), b.rows());
  ATMX_CHECK_EQ(a.cols(), b.cols());
  CooMatrix merged(a.rows(), a.cols());
  merged.Reserve(static_cast<std::size_t>(a.nnz() + b.nnz()));
  // Bind the exports before iterating: entries() of a temporary would
  // dangle.
  const CooMatrix a_coo = a.ToCoo();
  for (const CooEntry& e : a_coo.entries()) {
    merged.Add(e.row, e.col, alpha * e.value);
  }
  const CooMatrix b_coo = b.ToCoo();
  for (const CooEntry& e : b_coo.entries()) {
    merged.Add(e.row, e.col, beta * e.value);
  }
  merged.CoalesceDuplicates();
  return PartitionToAtm(std::move(merged), config);
}

}  // namespace atmx
