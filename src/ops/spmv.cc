#include "ops/spmv.h"

#include "common/check.h"
#include "kernels/simd/simd_dispatch.h"
#include "kernels/simd/simd_kernels.h"
#include "obs/obs.h"
#include "topology/thread_pool.h"

namespace atmx {

std::vector<value_t> SpMV(const CsrMatrix& a, const std::vector<value_t>& x) {
  ATMX_CHECK_EQ(static_cast<index_t>(x.size()), a.cols());
  ATMX_PERF_SPAN_ARGS("kernel", "spmv_csr", "kernel.spmv_csr",
                      {"rows", a.rows()}, {"nnz", a.nnz()});
  std::vector<value_t> y(a.rows(), 0.0);
  // Dispatch level hoisted out of the row loop (one static read per call,
  // not per row).
  const simd::Level level = simd::ActiveLevel();
  const index_t* col_idx = a.col_idx().data();
  const value_t* values = a.values().data();
  const auto& row_ptr = a.row_ptr();
  for (index_t i = 0; i < a.rows(); ++i) {
    y[i] = simd::CsrRowDotLevel(level, values, col_idx, row_ptr[i],
                                row_ptr[i + 1], x.data());
  }
  return y;
}

namespace {

// Accumulates one tile's contribution into y (indices in matrix coords).
// Dense tile rows take the dense dot kernel; sparse tile rows take the
// CSR row-dot kernel with x rebased to the tile's column window.
void ApplyTile(simd::Level level, const Tile& t, const std::vector<value_t>& x,
               std::vector<value_t>* y) {
  const value_t* x_win = x.data() + t.col0();
  if (t.is_dense()) {
    const DenseMatrix& d = t.dense();
    for (index_t i = 0; i < d.rows(); ++i) {
      const value_t* row = d.data() + i * d.ld();
      (*y)[t.row0() + i] += simd::DotLevel(level, row, x_win, d.cols());
    }
  } else {
    const CsrMatrix& s = t.sparse();
    const index_t* col_idx = s.col_idx().data();
    const value_t* values = s.values().data();
    const auto& row_ptr = s.row_ptr();
    for (index_t i = 0; i < s.rows(); ++i) {
      (*y)[t.row0() + i] += simd::CsrRowDotLevel(
          level, values, col_idx, row_ptr[i], row_ptr[i + 1], x_win);
    }
  }
}

}  // namespace

std::vector<value_t> SpMVParallel(const ATMatrix& a,
                                  const std::vector<value_t>& x,
                                  const AtmConfig& config) {
  ATMX_CHECK_EQ(static_cast<index_t>(x.size()), a.cols());
  // Counters here cover the scheduling + reduction on the calling thread;
  // per-thread worker counters are not aggregated across the team.
  ATMX_PERF_SPAN_ARGS("kernel", "spmv_atm_parallel",
                      "kernel.spmv_atm_parallel", {"rows", a.rows()},
                      {"tiles", static_cast<index_t>(a.tiles().size())});
  // Resolve the dispatch level on the calling thread before fanning out:
  // ActiveLevel's first call writes a gauge and possibly a warning, which
  // should not race from worker threads.
  const simd::Level level = simd::ActiveLevel();
  const int teams = config.EffectiveTeams();
  // A tile is processed by the band containing its first row, but tall
  // tiles write rows owned by other bands — so each team accumulates into
  // its own partial vector (one driver thread per team keeps this safe),
  // reduced at the end.
  std::vector<std::vector<value_t>> partials(
      teams, std::vector<value_t>(a.rows(), 0.0));
  TeamScheduler scheduler(teams, config.EffectiveThreadsPerTeam());
  // Static scheduling on purpose: which team runs a band decides which
  // partial vector it lands in, and the final reduction sums partials in
  // team order — stealing would reshuffle the floating-point addition
  // order for rows shared by tall tiles. Band tasks are near-uniform, so
  // stealing has little to win here anyway.
  ScheduleOptions static_options;
  static_options.work_stealing = false;
  scheduler.RunTasks(
      a.num_row_bands(),
      [teams](index_t band) { return static_cast<int>(band % teams); },
      [&](WorkerTeam& team, index_t band) {
        for (index_t ti : a.TilesInRowBand(band)) {
          const Tile& t = a.tiles()[ti];
          if (t.row0() != a.row_bounds()[band]) continue;  // counted once
          ApplyTile(level, t, x, &partials[team.team_id()]);
        }
      },
      static_options, nullptr);
  std::vector<value_t> y(a.rows(), 0.0);
  for (const auto& partial : partials) {
    for (index_t i = 0; i < a.rows(); ++i) y[i] += partial[i];
  }
  return y;
}

std::vector<value_t> SpMV(const ATMatrix& a, const std::vector<value_t>& x) {
  ATMX_CHECK_EQ(static_cast<index_t>(x.size()), a.cols());
  ATMX_PERF_SPAN_ARGS("kernel", "spmv_atm", "kernel.spmv_atm",
                      {"rows", a.rows()},
                      {"tiles", static_cast<index_t>(a.tiles().size())});
  std::vector<value_t> y(a.rows(), 0.0);
  const simd::Level level = simd::ActiveLevel();
  for (const Tile& t : a.tiles()) ApplyTile(level, t, x, &y);
  return y;
}

}  // namespace atmx
