// Sparse matrix-vector multiplication. CSR tends to perform best for spmv
// across matrix classes (Vuduc [13], cited by the paper as the reason CSR
// is the sparse tile format); the AT MATRIX variant multiplies tile-wise so
// dense tiles use the dense inner kernel.

#ifndef ATMX_OPS_SPMV_H_
#define ATMX_OPS_SPMV_H_

#include <vector>

#include "common/config.h"
#include "common/types.h"
#include "storage/csr_matrix.h"
#include "tile/at_matrix.h"

namespace atmx {

// y = A * x. x.size() == A.cols(); returns y of size A.rows().
std::vector<value_t> SpMV(const CsrMatrix& a, const std::vector<value_t>& x);

// y = A * x over the heterogeneous tile structure.
std::vector<value_t> SpMV(const ATMatrix& a, const std::vector<value_t>& x);

// Team-parallel y = A * x: row bands are scheduled on the worker team of
// their home NUMA node (the same placement discipline as ATMULT, section
// III-F); tiles within a band run sequentially so no output element is
// written by two teams.
std::vector<value_t> SpMVParallel(const ATMatrix& a,
                                  const std::vector<value_t>& x,
                                  const AtmConfig& config);

}  // namespace atmx

#endif  // ATMX_OPS_SPMV_H_
