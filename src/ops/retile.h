// Pre-multiplication re-tiling — the optimization the paper leaves as
// future work (section IV-C): "Such situations could be avoided by a
// dynamic re-tiling of the left-hand matrix as a part of a
// pre-multiplication optimization".
//
// When A's tiles span several row bands of B, every pair multiplication
// slices A's tiles with reference windows; for sparse tiles each slice
// costs a binary column search per row. Splitting A's tiles at B's
// contraction boundaries once, up front, removes that overhead for the
// whole operation.

#ifndef ATMX_OPS_RETILE_H_
#define ATMX_OPS_RETILE_H_

#include <vector>

#include "common/config.h"
#include "tile/at_matrix.h"

namespace atmx {

// Splits every tile of `a` at the given additional column boundaries
// (sorted, within [0, a.cols()]). Tile representations are preserved;
// the result's tiles are rectangular slices of the originals.
ATMatrix RetileColumns(const ATMatrix& a,
                       const std::vector<index_t>& col_bounds,
                       const AtmConfig& config);

// Convenience for C = A * B: returns A with its column tiling aligned to
// B's row bands, so no pair multiplication needs to slice A.
ATMatrix AlignContraction(const ATMatrix& a, const ATMatrix& b,
                          const AtmConfig& config);

}  // namespace atmx

#endif  // ATMX_OPS_RETILE_H_
