#include "cost/cost_model.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "kernels/simd/simd_kernels.h"

namespace atmx {

std::string CostParams::ToString() const {
  std::ostringstream os;
  os << "CostParams{ddd=" << c_ddd << ", sdd=" << c_sdd
     << ", sddp=" << c_sdd_panel << ", dsd=" << c_dsd
     << ", ssd=" << c_ssd << ", row=" << row_overhead
     << ", wd=" << dense_write << ", ws=" << sparse_write
     << ", sort=" << sparse_sort << ", s2d=" << convert_sparse_to_dense
     << ", d2s=" << convert_dense_to_sparse << "}";
  return os.str();
}

double CostModel::ComputeCost(KernelType kernel,
                              const MultiplyShape& s) const {
  const double m = static_cast<double>(s.m);
  const double k = static_cast<double>(s.k);
  const double n = static_cast<double>(s.n);
  const double volume = m * k * n;
  switch (kernel) {
    case KernelType::kDDD:
    case KernelType::kDDS:
      return params_.c_ddd * volume;
    case KernelType::kSDD:
      // nnzA_window rows of B are streamed densely. Tall-skinny panels
      // (the shape SddGemm routes to the register-strip SpMM kernels) pay
      // the cheaper panel rate. Only the dense-C variant: the sparse-C
      // SPA path (kSDS) has no panel kernel and keeps the generic rate.
      if (s.n <= simd::kSpmmMaxPanelCols) {
        return params_.c_sdd_panel * s.rho_a * volume +
               params_.row_overhead * m;
      }
      return params_.c_sdd * s.rho_a * volume + params_.row_overhead * m;
    case KernelType::kSDS:
      return params_.c_sdd * s.rho_a * volume + params_.row_overhead * m;
    case KernelType::kDSD:
    case KernelType::kDSS:
      // Every A element is visited; only non-zero B rows contribute.
      return params_.c_dsd * s.rho_b * volume +
             0.25 * params_.c_ddd * m * k;  // A scan
    case KernelType::kSSD:
    case KernelType::kSSS:
      // Expected intermediate products + per-A-element row lookups.
      return params_.c_ssd * s.rho_a * s.rho_b * volume +
             params_.row_overhead * (m + s.rho_a * m * k);
  }
  ATMX_CHECK(false);
  return 0.0;
}

double CostModel::WriteCost(bool c_dense, index_t m, index_t n, double rho_c,
                            double intermediates) const {
  const double area = static_cast<double>(m) * static_cast<double>(n);
  if (c_dense) {
    return params_.dense_write * area;
  }
  const double stored = rho_c * area;
  const double per_row = std::max(1.0, stored / std::max<double>(1.0, m));
  return params_.sparse_write * intermediates +
         params_.sparse_sort * stored * std::log2(1.0 + per_row);
}

double CostModel::ConversionCost(bool to_dense, index_t m, index_t n,
                                 double rho) const {
  const double area = static_cast<double>(m) * static_cast<double>(n);
  if (to_dense) {
    // Zero the array, then scatter the nnz elements.
    return params_.convert_sparse_to_dense * (0.25 * area + rho * area);
  }
  // Scan the array, append the nnz elements.
  return params_.convert_dense_to_sparse * (0.25 * area + rho * area);
}

double CostModel::ReadTurnaround() const {
  // ssd cost rho^2 * c_ssd * mkn crosses ddd cost c_ddd * mkn at
  // rho = sqrt(c_ddd / c_ssd).
  return std::sqrt(params_.c_ddd / params_.c_ssd);
}

double CostModel::WriteTurnaround() const {
  // dense_write * area == sparse_write * rho * area.
  return params_.dense_write / params_.sparse_write;
}

double EstimateTaskCost(const CostModel& model, const MultiplyShape& shape) {
  const double intermediates = shape.rho_a * shape.rho_b *
                               static_cast<double>(shape.m) *
                               static_cast<double>(shape.k) *
                               static_cast<double>(shape.n);
  return model.ComputeCost(KernelType::kSSD, shape) +
         model.WriteCost(/*c_dense=*/false, shape.m, shape.n, shape.rho_c,
                         intermediates);
}

}  // namespace atmx
