#include "cost/calibration.h"

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "kernels/dense_kernels.h"
#include "kernels/mixed_kernels.h"
#include "kernels/simd/simd_dispatch.h"
#include "kernels/sparse_kernels.h"
#include "storage/convert.h"

namespace atmx {

namespace {

CsrMatrix MakeProbeCsr(index_t n, double density, Rng* rng) {
  CooMatrix coo(n, n);
  const auto target = static_cast<index_t>(density * n * n);
  coo.Reserve(target);
  for (index_t i = 0; i < target; ++i) {
    coo.Add(static_cast<index_t>(rng->NextBounded(n)),
            static_cast<index_t>(rng->NextBounded(n)),
            rng->NextDouble() + 0.5);
  }
  return CooToCsr(coo);
}

DenseMatrix MakeProbeDense(index_t n, Rng* rng) {
  DenseMatrix m(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) m.At(i, j) = rng->NextDouble() + 0.5;
  }
  return m;
}

// Median wall time (ns) of `reps` runs of fn(), after one untimed warm-up
// run (first-touch page faults and cold caches would otherwise skew the
// small probes and destabilize the fitted thresholds).
template <typename Fn>
double MedianNanos(int reps, Fn&& fn) {
  fn();  // warm-up
  std::vector<double> times;
  times.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    times.push_back(timer.ElapsedSeconds() * 1e9);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

CostParams Calibrate(const CalibrationOptions& options) {
  // Resolve the SIMD dispatch level before any probe runs: the probes call
  // the public kernels (DddGemm etc.), so the fitted per-element costs
  // automatically track the kernel set that ATMULT will actually execute —
  // but only if the one-time resolution (env read, gauge write) happens
  // outside the timed region.
  simd::ActiveLevel();
  Rng rng(options.seed);
  const index_t n = options.tile_size;
  const double volume =
      static_cast<double>(n) * static_cast<double>(n) * static_cast<double>(n);

  DenseMatrix da = MakeProbeDense(n, &rng);
  DenseMatrix db = MakeProbeDense(n, &rng);
  CsrMatrix sa = MakeProbeCsr(n, options.probe_density, &rng);
  CsrMatrix sb = MakeProbeCsr(n, options.probe_density, &rng);
  const double rho_a = sa.Density();
  const double rho_b = sb.Density();
  const Window wa = Window::Full(n, n);
  const Window wb = Window::Full(n, n);

  DenseMatrix out(n, n);
  CostParams fitted;

  // ddd: per m*k*n.
  fitted.c_ddd =
      MedianNanos(options.repetitions,
                  [&] { DddGemm(da.View(), db.View(), out.MutView(), 0, n); }) /
      volume;

  // sdd: per nnzA * n.
  fitted.c_sdd = MedianNanos(options.repetitions, [&] {
                   SddGemm(sa, wa, db.View(), out.MutView(), 0, n);
                 }) /
                 (static_cast<double>(sa.nnz()) * n);

  // sdd panel: per nnzA * panel width, probed at the tall-skinny shape
  // SddGemm routes to the register-strip SpMM kernels (64 columns).
  {
    const index_t panel_cols = std::min<index_t>(64, n);
    DenseMatrix panel(n, panel_cols);
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < panel_cols; ++j) {
        panel.At(i, j) = rng.NextDouble() + 0.5;
      }
    }
    DenseMatrix out_panel(n, panel_cols);
    fitted.c_sdd_panel =
        MedianNanos(options.repetitions,
                    [&] {
                      SddGemm(sa, wa, panel.View(), out_panel.MutView(), 0, n);
                    }) /
        (static_cast<double>(sa.nnz()) * panel_cols);
  }

  // dsd: per m * nnzB.
  fitted.c_dsd = MedianNanos(options.repetitions, [&] {
                   DsdGemm(da.View(), sb, wb, out.MutView(), 0, n);
                 }) /
                 (static_cast<double>(n) * sb.nnz());

  // ssd: per expected intermediate product.
  fitted.c_ssd = MedianNanos(options.repetitions, [&] {
                   SsdGemm(sa, wa, sb, wb, out.MutView(), 0, n);
                 }) /
                 (rho_a * rho_b * volume);

  // sss: the extra over ssd is the SPA-insert + flush cost per
  // intermediate product.
  const double intermediates = rho_a * rho_b * volume;
  const double t_sss =
      MedianNanos(options.repetitions, [&] { SpGemmCsr(sa, sb); });
  const double t_ssd_equiv = fitted.c_ssd * intermediates;
  fitted.sparse_write =
      std::max(1.0, (t_sss - t_ssd_equiv) / std::max(1.0, intermediates));

  // Dense write: zero-fill per element. Probed on an out-of-cache buffer:
  // result tiles are written once and are typically not cache-resident,
  // so the streaming rate — not the L2-resident rate — is what the write
  // threshold must reflect.
  {
    const index_t big_rows = std::max<index_t>(16 * n, 2048);
    DenseMatrix big(big_rows, n);
    fitted.dense_write = std::max(
        0.05, MedianNanos(options.repetitions, [&] { big.Fill(0.0); }) /
                  (static_cast<double>(big_rows) * n));
  }

  // Conversions.
  const double area = static_cast<double>(n) * n;
  fitted.convert_sparse_to_dense =
      std::max(0.1, MedianNanos(options.repetitions,
                                [&] { CsrToDense(sa); }) /
                        (0.25 * area + rho_a * area));
  DenseMatrix sa_dense = CsrToDense(sa);
  fitted.convert_dense_to_sparse =
      std::max(0.1, MedianNanos(options.repetitions,
                                [&] { DenseToCsr(sa_dense); }) /
                        (0.25 * area + rho_a * area));

  return fitted;
}

}  // namespace atmx
