// Eight-fold multiplication cost model (section III-C, building on the
// authors' SpMacho cost model [9]). The runtime of each kernel is modelled
// from the operand shapes (m x k) * (k x n), the operand densities, and the
// *estimated* result density. The optimizer uses these costs to pick
// representations and to decide just-in-time tile conversions; the density
// turnaround points rho0_R / rho0_W are the cost-crossover densities.
//
// All costs are in abstract work units (roughly nanoseconds once
// calibrated, see calibration.h); only cost *ratios* drive decisions.

#ifndef ATMX_COST_COST_MODEL_H_
#define ATMX_COST_COST_MODEL_H_

#include <string>

#include "common/types.h"
#include "kernels/kernel_common.h"

namespace atmx {

// Per-work-unit constants of the kernel cost functions. Defaults are
// hand-tuned so that the read crossover sqrt(c_ddd/c_ssd) sits at the
// paper's rho0_R = 0.25 and the write crossover at roughly rho0_W = 0.03;
// Calibrate() (calibration.h) refits them to the host.
struct CostParams {
  // Compute: cost per executed multiply-add, by operand representation.
  double c_ddd = 1.0;   // dense x dense: per m*k*n
  double c_sdd = 5.0;   // sparse x dense: per nnzA_w * n
  // sparse x *tall-skinny* dense (n <= simd::kSpmmMaxPanelCols): per
  // nnzA_w * n at the register-strip SpMM panel rate — the C row stays in
  // registers across the non-zero loop, so the per-element rate is lower
  // than c_sdd. Priced separately so the optimizer prefers keeping a
  // skinny right operand dense (the fused-chain A * (A * X) shape).
  double c_sdd_panel = 3.0;
  double c_dsd = 6.0;   // dense x sparse: per m * nnzB_w (column indirection)
  double c_ssd = 16.0;  // sparse x sparse: per expected intermediate product

  // Row-loop overhead per visited sparse row (binary searches, pointers).
  double row_overhead = 8.0;

  // Write-side: dense targets pay a one-off allocation/zeroing per element;
  // sparse targets pay per intermediate product (SPA insert) plus a sort
  // term per stored element. The dense/sparse write asymmetry here is what
  // makes rho0_W << rho0_R.
  double dense_write = 0.25;
  double sparse_write = 8.0;
  double sparse_sort = 2.0;

  // Conversion costs per element moved (JIT conversions, section III-C).
  double convert_sparse_to_dense = 1.5;  // scatter nnz + zero m*n
  double convert_dense_to_sparse = 3.0;  // scan m*n + append nnz

  std::string ToString() const;
};

// Shape/density description of one tile-pair multiplication.
struct MultiplyShape {
  index_t m = 0;
  index_t k = 0;
  index_t n = 0;
  double rho_a = 0.0;  // density of the A window
  double rho_b = 0.0;  // density of the B window
  double rho_c = 0.0;  // estimated density of the C tile
};

class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(const CostParams& params) : params_(params) {}

  const CostParams& params() const { return params_; }

  // Compute-side cost of one pair multiplication with the given kernel
  // (excludes the C write side, which is paid per C tile, not per pair).
  double ComputeCost(KernelType kernel, const MultiplyShape& s) const;

  // Write-side cost of materializing an m x n C tile of estimated density
  // rho_c in the given representation, fed by `intermediates` SPA inserts.
  double WriteCost(bool c_dense, index_t m, index_t n, double rho_c,
                   double intermediates) const;

  // Cost of converting an m x n tile of density rho between
  // representations.
  double ConversionCost(bool to_dense, index_t m, index_t n,
                        double rho) const;

  // Read-side density turnaround rho0_R: the operand density at which the
  // dense kernel overtakes the sparse kernel in the symmetric
  // (rho_a == rho_b) self-multiplication case — the paper's heuristic for
  // the partitioner's materialization threshold.
  double ReadTurnaround() const;

  // Write-side turnaround rho0_W: result density at which a dense target
  // becomes cheaper to write than a sparse one.
  double WriteTurnaround() const;

 private:
  CostParams params_;
};

// Cheap O(1) estimate of one whole ATMULT task (tile-row x tile-col pair,
// shape/densities aggregated over the full contraction range) for
// longest-processing-time-first ordering in the work-stealing scheduler.
// Models the task as a sparse x sparse product plus its write side —
// deliberately kernel-agnostic, since only the *relative* magnitudes drive
// queue order and victim pressure.
double EstimateTaskCost(const CostModel& model, const MultiplyShape& shape);

}  // namespace atmx

#endif  // ATMX_COST_COST_MODEL_H_
