// Micro-benchmark calibration of the cost-model constants. The paper notes
// the cost model "is not only dependent on the second matrix density, but
// also on the system configuration"; calibration refits the per-work-unit
// constants to the host so that turnaround densities reflect real kernel
// crossovers rather than hand-tuned defaults.

#ifndef ATMX_COST_CALIBRATION_H_
#define ATMX_COST_CALIBRATION_H_

#include "cost/cost_model.h"

namespace atmx {

struct CalibrationOptions {
  // Edge length of the square calibration tiles.
  index_t tile_size = 256;
  // Operand density used for the sparse kernel probes.
  double probe_density = 0.15;
  // Repetitions per probe (median-of is taken, after one warm-up run).
  int repetitions = 5;
  // Deterministic seed for the probe matrices.
  std::uint64_t seed = 0x5ca1ab1e;
};

// Runs the kernel probes and returns fitted constants (in ns per work
// unit). Takes a few hundred milliseconds.
CostParams Calibrate(const CalibrationOptions& options = {});

}  // namespace atmx

#endif  // ATMX_COST_CALIBRATION_H_
