#include "kernels/simd/simd_dispatch.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "obs/obs.h"

namespace atmx::simd {

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kGeneric:
      return "generic";
    case Level::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool CpuSupportsAvx2() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  // FMA is probed alongside AVX2 because the AVX2 kernels assume both ISA
  // extensions were enabled at compile time (-mavx2 -mfma); the two ship
  // together on every AVX2-capable core.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Level ResolveLevel(const char* env_value, bool cpu_avx2, bool avx2_compiled,
                   std::string* warning) {
  const bool avx2_ok = cpu_avx2 && avx2_compiled;
  const Level best = avx2_ok ? Level::kAvx2 : Level::kGeneric;
  std::string v = env_value == nullptr ? "" : env_value;
  for (char& c : v) c = static_cast<char>(std::tolower(c));
  if (v.empty() || v == "auto") return best;
  if (v == "scalar") return Level::kScalar;
  if (v == "generic") return Level::kGeneric;
  if (v == "avx2") {
    if (avx2_ok) return Level::kAvx2;
    *warning = avx2_compiled
                   ? "ATMX_SIMD=avx2 requested but this CPU lacks AVX2/FMA; "
                     "falling back to the generic register-blocked kernels"
                   : "ATMX_SIMD=avx2 requested but the library was built "
                     "without AVX2 codegen; falling back to the generic "
                     "register-blocked kernels";
    return Level::kGeneric;
  }
  *warning = "unknown ATMX_SIMD value '" + v +
             "' (expected scalar|generic|avx2|auto); using auto";
  return best;
}

Level ActiveLevel() {
  static const Level level = [] {
    std::string warning;
    const Level resolved = ResolveLevel(std::getenv("ATMX_SIMD"),
                                        CpuSupportsAvx2(), Avx2Compiled(),
                                        &warning);
    if (!warning.empty()) {
      std::fprintf(stderr, "atmx: %s\n", warning.c_str());
    }
    // Observable as a gauge so traces/bench reports record which kernel
    // set produced the numbers (0 scalar, 1 generic, 2 avx2).
    ATMX_GAUGE_SET("simd.level", static_cast<double>(resolved));
    return resolved;
  }();
  return level;
}

namespace {

// -1 = not yet resolved from the environment; 0 / 1 once known.
std::atomic<int> g_spmm_panel{-1};

}  // namespace

bool SpmmPanelEnabled() {
  int state = g_spmm_panel.load(std::memory_order_relaxed);
  if (state >= 0) return state != 0;
  std::string v;
  if (const char* env = std::getenv("ATMX_SPMM_PANEL")) v = env;
  for (char& c : v) c = static_cast<char>(std::tolower(c));
  const bool on = v.empty() || (v != "0" && v != "off" && v != "false");
  g_spmm_panel.store(on ? 1 : 0, std::memory_order_relaxed);
  ATMX_GAUGE_SET("simd.spmm_panel", on ? 1.0 : 0.0);
  return on;
}

void SetSpmmPanelEnabled(bool enabled) {
  g_spmm_panel.store(enabled ? 1 : 0, std::memory_order_relaxed);
  ATMX_GAUGE_SET("simd.spmm_panel", enabled ? 1.0 : 0.0);
}

}  // namespace atmx::simd
