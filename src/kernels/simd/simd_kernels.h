// Level-explicit micro-kernels behind the SIMD dispatch. The public
// operator-facing entry points (DddGemm, SpMV, SparseAccumulator) call
// these with ActiveLevel(); tests and benches call them with an explicit
// level to compare implementations without touching process state.
//
// Reproducibility contract (see simd_dispatch.h):
//   DddGemmLevel, AxpyLevel      bitwise identical across all levels
//   CsrRowDotLevel, DotLevel     kAvx2 reassociates into 4 lane-partial
//                                sums (documented order below); validated
//                                against kScalar within an ULP bound

#ifndef ATMX_KERNELS_SIMD_SIMD_KERNELS_H_
#define ATMX_KERNELS_SIMD_SIMD_KERNELS_H_

#include "common/types.h"
#include "kernels/simd/simd_dispatch.h"
#include "storage/dense_matrix.h"

namespace atmx::simd {

// Register-tile geometry of the blocked dense kernel: kGeneric and kAvx2
// accumulate C in kMr x kNr register tiles (kNr doubles = 2 AVX2 vectors),
// streaming B rows once per 4 output rows instead of once per output row.
inline constexpr index_t kMr = 4;
inline constexpr index_t kNr = 8;

// C[i0:i1, :] += (A * B)[i0:i1, :]. Same semantics as DddGemm; every level
// accumulates each C element in ascending-k order with separately rounded
// multiply and add, so results are bitwise identical across levels.
void DddGemmLevel(Level level, const DenseView& a, const DenseView& b,
                  const DenseMutView& c, index_t i0, index_t i1);

// values[j] += scale * row[j] for j in [0, n) — the SPA dense-mode row
// scatter. Per-element round(scale*row[j]) then round(+=): bitwise
// identical across levels.
void AxpyLevel(Level level, value_t* values, const value_t* row,
               value_t scale, index_t n);

// Dot product of CSR row positions [p0, p1) against the (window-adjusted)
// dense vector x: sum of values[p] * x[col_idx[p]].
//   kScalar/kGeneric: single accumulator, ascending p.
//   kAvx2: 4 lane accumulators over gathered x (lane l sums p0+l, p0+l+4,
//          ...), reduced pairwise ((l0+l2)+(l1+l3)), then the scalar tail
//          in ascending order. Gathers engage only for rows of at least
//          kGatherMinNnz entries; shorter rows take the scalar path.
value_t CsrRowDotLevel(Level level, const value_t* values,
                       const index_t* col_idx, index_t p0, index_t p1,
                       const value_t* x);

// Dense dot product a[0..n) . x[0..n) (dense-tile SpMV rows).
//   kScalar/kGeneric: single accumulator, ascending j.
//   kAvx2: 2 vector accumulators (even/odd 4-lane blocks), pairwise
//          reduction, scalar tail.
value_t DotLevel(Level level, const value_t* a, const value_t* x, index_t n);

// Row-length threshold below which CsrRowDotLevel(kAvx2) stays scalar:
// the gather setup cost is only amortized by longer rows.
inline constexpr index_t kGatherMinNnz = 8;

// Widest dense row panel the tall-skinny SpMM kernels handle with the
// C row held in register strips. SddGemm routes through SpmmRowPanelLevel
// when b.cols <= this; the cost model prices such pairs at the panel rate
// (CostParams::c_sdd_panel). 256 doubles = 2 KiB per B row, so a handful
// of hot B rows plus the C row strip stay L1-resident.
inline constexpr index_t kSpmmMaxPanelCols = 256;

// Tall-skinny SpMM row step (CSR row x dense row panel):
//
//   c_row[j] += sum_p values[p] * b.RowPtr(col_idx[p] - col_offset)[j]
//
// for j in [0, b.cols), p ascending over [p0, p1). kGeneric/kAvx2 keep the
// C row in register strips across the whole p loop (B rows are streamed
// once per strip); every level accumulates each c element in ascending-p
// order with separately rounded multiply and add, so results are bitwise
// identical across levels — the same contract as DddGemm/Axpy.
void SpmmRowPanelLevel(Level level, const value_t* values,
                       const index_t* col_idx, index_t p0, index_t p1,
                       index_t col_offset, const DenseView& b,
                       value_t* c_row);

// Convenience wrappers dispatching on ActiveLevel().
inline void Axpy(value_t* values, const value_t* row, value_t scale,
                 index_t n) {
  AxpyLevel(ActiveLevel(), values, row, scale, n);
}

inline void SpmmRowPanel(const value_t* values, const index_t* col_idx,
                         index_t p0, index_t p1, index_t col_offset,
                         const DenseView& b, value_t* c_row) {
  SpmmRowPanelLevel(ActiveLevel(), values, col_idx, p0, p1, col_offset, b,
                    c_row);
}

}  // namespace atmx::simd

#endif  // ATMX_KERNELS_SIMD_SIMD_KERNELS_H_
