// Scalar reference kernels, the portable register-blocked kernels, and
// the per-level dispatch switches.
//
// This translation unit is compiled with -ffp-contract=off: the bitwise
// identity between the scalar loops and the explicit mul+add SIMD kernels
// relies on the compiler not contracting `c += a * b` into an FMA here.

#include "kernels/simd/simd_kernels.h"

#include <algorithm>

#include "common/check.h"
#include "kernels/simd/simd_internal.h"

namespace atmx::simd {
namespace internal {

void DddGemmScalar(const DenseView& a, const DenseView& b,
                   const DenseMutView& c, index_t i0, index_t i1) {
  const index_t kk = a.cols;
  const index_t n = b.cols;
  // i-k-j loop order: the inner j loop streams one B row and one C row;
  // k is blocked so the working set of B rows stays cache-resident for
  // tiles near the maximum dense tile size. Each C element accumulates in
  // globally ascending k order regardless of the blocking.
  constexpr index_t kKBlock = 64;
  for (index_t kb = 0; kb < kk; kb += kKBlock) {
    const index_t kend = std::min(kb + kKBlock, kk);
    for (index_t i = i0; i < i1; ++i) {
      const value_t* __restrict a_row = a.RowPtr(i);
      value_t* __restrict c_row = c.RowPtr(i);
      for (index_t k = kb; k < kend; ++k) {
        // No zero-skip: this is the honest BLAS-style dense kernel; the
        // cost model and calibration rely on its density-independent cost.
        const value_t av = a_row[k];
        const value_t* __restrict b_row = b.RowPtr(k);
        for (index_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
      }
    }
  }
}

void AxpyScalar(value_t* values, const value_t* row, value_t scale,
                index_t n) {
  for (index_t j = 0; j < n; ++j) values[j] += scale * row[j];
}

value_t CsrRowDotScalar(const value_t* values, const index_t* col_idx,
                        index_t p0, index_t p1, const value_t* x) {
  value_t sum = 0.0;
  for (index_t p = p0; p < p1; ++p) sum += values[p] * x[col_idx[p]];
  return sum;
}

value_t DotScalar(const value_t* a, const value_t* x, index_t n) {
  value_t sum = 0.0;
  for (index_t j = 0; j < n; ++j) sum += a[j] * x[j];
  return sum;
}

namespace {

// One kMr x kNr (or narrower row-tail) strip of the register-blocked
// kernel: C rows stay in `acc` across the whole k loop, so each C element
// is loaded and stored exactly once while B rows are streamed. Ascending-k
// mul+add per element keeps the result bitwise equal to the scalar loop.
template <int kRows>
void GemmRegisterStrip(const DenseView& a, const DenseView& b,
                       const DenseMutView& c, index_t i, index_t j0,
                       index_t j1) {
  const index_t kk = a.cols;
  const value_t* __restrict a_rows[kRows];
  value_t* __restrict c_rows[kRows];
  for (int r = 0; r < kRows; ++r) {
    a_rows[r] = a.RowPtr(i + r);
    c_rows[r] = c.RowPtr(i + r);
  }
  for (index_t j = j0; j + kNr <= j1; j += kNr) {
    value_t acc[kRows][kNr];
    for (int r = 0; r < kRows; ++r) {
      for (index_t t = 0; t < kNr; ++t) acc[r][t] = c_rows[r][j + t];
    }
    for (index_t k = 0; k < kk; ++k) {
      const value_t* __restrict b_row = b.RowPtr(k) + j;
      for (int r = 0; r < kRows; ++r) {
        const value_t av = a_rows[r][k];
        for (index_t t = 0; t < kNr; ++t) acc[r][t] += av * b_row[t];
      }
    }
    for (int r = 0; r < kRows; ++r) {
      for (index_t t = 0; t < kNr; ++t) c_rows[r][j + t] = acc[r][t];
    }
  }
  // Column tail: per-element ascending-k accumulation.
  const index_t tail0 = j1 - (j1 - j0) % kNr;
  for (int r = 0; r < kRows; ++r) {
    for (index_t j = tail0; j < j1; ++j) {
      value_t sum = c_rows[r][j];
      for (index_t k = 0; k < kk; ++k) sum += a_rows[r][k] * b.At(k, j);
      c_rows[r][j] = sum;
    }
  }
}

}  // namespace

void DddGemmGeneric(const DenseView& a, const DenseView& b,
                    const DenseMutView& c, index_t i0, index_t i1) {
  const index_t n = b.cols;
  index_t i = i0;
  for (; i + kMr <= i1; i += kMr) GemmRegisterStrip<kMr>(a, b, c, i, 0, n);
  for (; i < i1; ++i) GemmRegisterStrip<1>(a, b, c, i, 0, n);
}

}  // namespace internal

void DddGemmLevel(Level level, const DenseView& a, const DenseView& b,
                  const DenseMutView& c, index_t i0, index_t i1) {
  ATMX_DCHECK_EQ(a.cols, b.rows);
  ATMX_DCHECK_EQ(a.rows, c.rows);
  ATMX_DCHECK_EQ(b.cols, c.cols);
  ATMX_DCHECK(i0 >= 0 && i1 <= c.rows);
  switch (level) {
    case Level::kScalar:
      internal::DddGemmScalar(a, b, c, i0, i1);
      return;
    case Level::kGeneric:
      internal::DddGemmGeneric(a, b, c, i0, i1);
      return;
    case Level::kAvx2:
      internal::DddGemmAvx2(a, b, c, i0, i1);
      return;
  }
}

void AxpyLevel(Level level, value_t* values, const value_t* row,
               value_t scale, index_t n) {
  switch (level) {
    case Level::kScalar:
    case Level::kGeneric:
      // The plain loop is already the optimal portable form; kGeneric
      // shares it.
      internal::AxpyScalar(values, row, scale, n);
      return;
    case Level::kAvx2:
      internal::AxpyAvx2(values, row, scale, n);
      return;
  }
}

value_t CsrRowDotLevel(Level level, const value_t* values,
                       const index_t* col_idx, index_t p0, index_t p1,
                       const value_t* x) {
  switch (level) {
    case Level::kScalar:
    case Level::kGeneric:
      return internal::CsrRowDotScalar(values, col_idx, p0, p1, x);
    case Level::kAvx2:
      return internal::CsrRowDotAvx2(values, col_idx, p0, p1, x);
  }
  return 0.0;
}

value_t DotLevel(Level level, const value_t* a, const value_t* x,
                 index_t n) {
  switch (level) {
    case Level::kScalar:
    case Level::kGeneric:
      return internal::DotScalar(a, x, n);
    case Level::kAvx2:
      return internal::DotAvx2(a, x, n);
  }
  return 0.0;
}

}  // namespace atmx::simd
