// AVX2 micro-kernels. Compiled with -mavx2 -mfma -ffp-contract=off when
// the toolchain targets x86-64 (CMake defines ATMX_SIMD_AVX2_COMPILED);
// otherwise this TU provides Avx2Compiled() == false plus aborting stubs
// that the dispatcher never reaches.
//
// All kernels use explicit _mm256_mul_pd + _mm256_add_pd rather than FMA:
// the dense kernel and the SPA scatter must stay bitwise identical to the
// scalar reference (round(a*b) then round(c+ab) per element), and a fused
// multiply-add would skip the intermediate rounding. The dot products
// reassociate into lane-parallel partial sums regardless, but keeping
// mul+add there too means the only scalar-vs-AVX2 difference is the
// documented summation order, not the rounding of individual products.

#include "kernels/simd/simd_dispatch.h"
#include "kernels/simd/simd_internal.h"
#include "kernels/simd/simd_kernels.h"

#if defined(ATMX_SIMD_AVX2_COMPILED) && defined(__AVX2__)

#include <immintrin.h>

namespace atmx::simd {

bool Avx2Compiled() { return true; }

namespace internal {
namespace {

// Reduces a 4-lane accumulator as (l0 + l2) + (l1 + l3): the 128-bit
// halves are added lane-wise first, then the two remaining partials.
inline double HorizontalSum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);  // (l0+l2, l1+l3)
  return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

// One kMr x 8 (two-vector) register tile: C stays in 8 ymm accumulators
// across the whole k loop. Ascending-k mul+add per element — bitwise
// identical to the scalar i-k-j loop.
template <int kRows>
void GemmTileAvx2(const DenseView& a, const DenseView& b,
                  const DenseMutView& c, index_t i, index_t j) {
  const index_t kk = a.cols;
  const value_t* __restrict a_rows[kRows];
  for (int r = 0; r < kRows; ++r) a_rows[r] = a.RowPtr(i + r);
  __m256d acc0[kRows];
  __m256d acc1[kRows];
  for (int r = 0; r < kRows; ++r) {
    value_t* c_row = c.RowPtr(i + r) + j;
    acc0[r] = _mm256_loadu_pd(c_row);
    acc1[r] = _mm256_loadu_pd(c_row + 4);
  }
  for (index_t k = 0; k < kk; ++k) {
    const value_t* __restrict b_row = b.RowPtr(k) + j;
    const __m256d b0 = _mm256_loadu_pd(b_row);
    const __m256d b1 = _mm256_loadu_pd(b_row + 4);
    for (int r = 0; r < kRows; ++r) {
      const __m256d av = _mm256_set1_pd(a_rows[r][k]);
      acc0[r] = _mm256_add_pd(acc0[r], _mm256_mul_pd(av, b0));
      acc1[r] = _mm256_add_pd(acc1[r], _mm256_mul_pd(av, b1));
    }
  }
  for (int r = 0; r < kRows; ++r) {
    value_t* c_row = c.RowPtr(i + r) + j;
    _mm256_storeu_pd(c_row, acc0[r]);
    _mm256_storeu_pd(c_row + 4, acc1[r]);
  }
}

}  // namespace

void DddGemmAvx2(const DenseView& a, const DenseView& b,
                 const DenseMutView& c, index_t i0, index_t i1) {
  const index_t kk = a.cols;
  const index_t n = b.cols;
  const index_t n8 = n - n % kNr;
  index_t i = i0;
  for (; i + kMr <= i1; i += kMr) {
    for (index_t j = 0; j < n8; j += kNr) GemmTileAvx2<kMr>(a, b, c, i, j);
  }
  for (; i < i1; ++i) {
    for (index_t j = 0; j < n8; j += kNr) GemmTileAvx2<1>(a, b, c, i, j);
  }
  // Column tail (n % 8): per-element ascending-k scalar accumulation.
  for (i = i0; i < i1; ++i) {
    const value_t* __restrict a_row = a.RowPtr(i);
    value_t* __restrict c_row = c.RowPtr(i);
    for (index_t j = n8; j < n; ++j) {
      value_t sum = c_row[j];
      for (index_t k = 0; k < kk; ++k) sum += a_row[k] * b.RowPtr(k)[j];
      c_row[j] = sum;
    }
  }
}

void AxpyAvx2(value_t* values, const value_t* row, value_t scale,
              index_t n) {
  const __m256d vs = _mm256_set1_pd(scale);
  index_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d product = _mm256_mul_pd(vs, _mm256_loadu_pd(row + j));
    _mm256_storeu_pd(values + j,
                     _mm256_add_pd(_mm256_loadu_pd(values + j), product));
  }
  for (; j < n; ++j) values[j] += scale * row[j];
}

value_t CsrRowDotAvx2(const value_t* values, const index_t* col_idx,
                      index_t p0, index_t p1, const value_t* x) {
  if (p1 - p0 < kGatherMinNnz) return CsrRowDotScalar(values, col_idx, p0, p1, x);
  __m256d acc = _mm256_setzero_pd();
  index_t p = p0;
  for (; p + 4 <= p1; p += 4) {
    const __m256i idx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(col_idx + p));
    const __m256d xv = _mm256_i64gather_pd(x, idx, 8);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(values + p), xv));
  }
  value_t sum = HorizontalSum(acc);
  for (; p < p1; ++p) sum += values[p] * x[col_idx[p]];
  return sum;
}

namespace {

// One kLanes*4-column strip of the SpMM row panel: the C row segment
// stays in kLanes ymm accumulators across the non-zero loop, B row
// segments are streamed with a broadcast multiplier. Explicit mul+add in
// ascending-p order — bitwise identical to the scalar loop.
template <int kLanes>
void SpmmStripAvx2(const value_t* values, const index_t* col_idx,
                   index_t p0, index_t p1, index_t col_offset,
                   const DenseView& b, value_t* c_row, index_t j) {
  __m256d acc[kLanes];
  for (int l = 0; l < kLanes; ++l) {
    acc[l] = _mm256_loadu_pd(c_row + j + 4 * l);
  }
  for (index_t p = p0; p < p1; ++p) {
    const __m256d av = _mm256_set1_pd(values[p]);
    const value_t* __restrict b_row = b.RowPtr(col_idx[p] - col_offset) + j;
    for (int l = 0; l < kLanes; ++l) {
      acc[l] = _mm256_add_pd(
          acc[l], _mm256_mul_pd(av, _mm256_loadu_pd(b_row + 4 * l)));
    }
  }
  for (int l = 0; l < kLanes; ++l) {
    _mm256_storeu_pd(c_row + j + 4 * l, acc[l]);
  }
}

}  // namespace

void SpmmRowPanelAvx2(const value_t* values, const index_t* col_idx,
                      index_t p0, index_t p1, index_t col_offset,
                      const DenseView& b, value_t* c_row) {
  const index_t n = b.cols;
  index_t j = 0;
  for (; j + 16 <= n; j += 16) {
    SpmmStripAvx2<4>(values, col_idx, p0, p1, col_offset, b, c_row, j);
  }
  if (j + 8 <= n) {
    SpmmStripAvx2<2>(values, col_idx, p0, p1, col_offset, b, c_row, j);
    j += 8;
  }
  if (j + 4 <= n) {
    SpmmStripAvx2<1>(values, col_idx, p0, p1, col_offset, b, c_row, j);
    j += 4;
  }
  // Column tail (< 4): per-element ascending-p accumulation.
  for (; j < n; ++j) {
    value_t sum = c_row[j];
    for (index_t p = p0; p < p1; ++p) {
      sum += values[p] * b.RowPtr(col_idx[p] - col_offset)[j];
    }
    c_row[j] = sum;
  }
}

value_t DotAvx2(const value_t* a, const value_t* x, index_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  index_t j = 0;
  for (; j + 8 <= n; j += 8) {
    acc0 = _mm256_add_pd(
        acc0, _mm256_mul_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(x + j)));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(_mm256_loadu_pd(a + j + 4),
                                             _mm256_loadu_pd(x + j + 4)));
  }
  if (j + 4 <= n) {
    acc0 = _mm256_add_pd(
        acc0, _mm256_mul_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(x + j)));
    j += 4;
  }
  value_t sum = HorizontalSum(_mm256_add_pd(acc0, acc1));
  for (; j < n; ++j) sum += a[j] * x[j];
  return sum;
}

}  // namespace internal
}  // namespace atmx::simd

#else  // !ATMX_SIMD_AVX2_COMPILED

#include "common/check.h"

namespace atmx::simd {

bool Avx2Compiled() { return false; }

namespace internal {

void DddGemmAvx2(const DenseView&, const DenseView&, const DenseMutView&,
                 index_t, index_t) {
  ATMX_CHECK(false);  // unreachable: dispatcher never selects kAvx2
}

void AxpyAvx2(value_t*, const value_t*, value_t, index_t) {
  ATMX_CHECK(false);
}

value_t CsrRowDotAvx2(const value_t*, const index_t*, index_t, index_t,
                      const value_t*) {
  ATMX_CHECK(false);
  return 0.0;
}

value_t DotAvx2(const value_t*, const value_t*, index_t) {
  ATMX_CHECK(false);
  return 0.0;
}

void SpmmRowPanelAvx2(const value_t*, const index_t*, index_t, index_t,
                      index_t, const DenseView&, value_t*) {
  ATMX_CHECK(false);
}

}  // namespace internal
}  // namespace atmx::simd

#endif  // ATMX_SIMD_AVX2_COMPILED
