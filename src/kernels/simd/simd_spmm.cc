// Tall-skinny SpMM row-panel kernels: one CSR row times a dense row panel
// of at most kSpmmMaxPanelCols columns, with the C row held in register
// strips across the non-zero loop. This is the sparse x tall-dense shape
// of fused chains (A * (A * X) with X an n x 64 feature panel), where the
// plain SddGemm loop re-loads the C row from memory once per non-zero.
//
// This translation unit is compiled with -ffp-contract=off: every level
// performs per-element round(a*b) then round(c + ab) in ascending
// non-zero order, bitwise identical to the SddGemm scalar loop — the
// compiler must not contract the mul+add into an FMA here.

#include "kernels/simd/simd_kernels.h"

#include "kernels/simd/simd_internal.h"

namespace atmx::simd {
namespace internal {

void SpmmRowPanelScalar(const value_t* values, const index_t* col_idx,
                        index_t p0, index_t p1, index_t col_offset,
                        const DenseView& b, value_t* c_row) {
  const index_t n = b.cols;
  for (index_t p = p0; p < p1; ++p) {
    const value_t av = values[p];
    const value_t* __restrict b_row = b.RowPtr(col_idx[p] - col_offset);
    for (index_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
  }
}

namespace {

// One kWidth-column strip: the C row segment stays in `acc` across the
// whole non-zero loop, so each C element is loaded and stored exactly
// once while B row segments are streamed. Ascending-p mul+add per element
// keeps the result bitwise equal to the scalar loop.
template <int kWidth>
void SpmmStrip(const value_t* values, const index_t* col_idx, index_t p0,
               index_t p1, index_t col_offset, const DenseView& b,
               value_t* __restrict c_row, index_t j) {
  value_t acc[kWidth];
  for (int t = 0; t < kWidth; ++t) acc[t] = c_row[j + t];
  for (index_t p = p0; p < p1; ++p) {
    const value_t av = values[p];
    const value_t* __restrict b_row = b.RowPtr(col_idx[p] - col_offset) + j;
    for (int t = 0; t < kWidth; ++t) acc[t] += av * b_row[t];
  }
  for (int t = 0; t < kWidth; ++t) c_row[j + t] = acc[t];
}

}  // namespace

void SpmmRowPanelGeneric(const value_t* values, const index_t* col_idx,
                         index_t p0, index_t p1, index_t col_offset,
                         const DenseView& b, value_t* c_row) {
  // 2 * kNr doubles = two cache lines per strip, the same width the AVX2
  // kernel covers with four ymm accumulators.
  constexpr index_t kStrip = 2 * kNr;
  const index_t n = b.cols;
  index_t j = 0;
  for (; j + kStrip <= n; j += kStrip) {
    SpmmStrip<kStrip>(values, col_idx, p0, p1, col_offset, b, c_row, j);
  }
  if (j + kNr <= n) {
    SpmmStrip<kNr>(values, col_idx, p0, p1, col_offset, b, c_row, j);
    j += kNr;
  }
  // Column tail (< kNr): per-element ascending-p accumulation.
  for (; j < n; ++j) {
    value_t sum = c_row[j];
    for (index_t p = p0; p < p1; ++p) {
      sum += values[p] * b.RowPtr(col_idx[p] - col_offset)[j];
    }
    c_row[j] = sum;
  }
}

}  // namespace internal

void SpmmRowPanelLevel(Level level, const value_t* values,
                       const index_t* col_idx, index_t p0, index_t p1,
                       index_t col_offset, const DenseView& b,
                       value_t* c_row) {
  switch (level) {
    case Level::kScalar:
      internal::SpmmRowPanelScalar(values, col_idx, p0, p1, col_offset, b,
                                   c_row);
      return;
    case Level::kGeneric:
      internal::SpmmRowPanelGeneric(values, col_idx, p0, p1, col_offset, b,
                                    c_row);
      return;
    case Level::kAvx2:
      internal::SpmmRowPanelAvx2(values, col_idx, p0, p1, col_offset, b,
                                 c_row);
      return;
  }
}

}  // namespace atmx::simd
