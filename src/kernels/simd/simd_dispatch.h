// Runtime SIMD dispatch for the hot micro-kernels (dense GEMM, CSR SpMV
// row accumulation, and the SPA dense-row scatter).
//
// Three implementation levels exist:
//
//   kScalar   the original straight-line loops — the floating-point
//             reference every other level is validated against
//   kGeneric  portable register-blocked kernels (plain C++, same tile
//             shape and summation order as the AVX2 kernels, so the
//             compiler's auto-vectorizer can do the rest on any ISA)
//   kAvx2     AVX2 intrinsics with explicit mul+add (no FMA contraction;
//             see the reproducibility contract below)
//
// The level is resolved exactly once per process, from CPUID plus the
// ATMX_SIMD environment variable (scalar|generic|avx2|auto, default
// auto = best supported). docs/KERNELS.md documents the mechanism.
//
// Floating-point reproducibility contract: for the dense kernel (DddGemm)
// and the SPA scatter (Axpy) every level performs per-element
// round(a*b) followed by round(c + ab) in ascending-k order — bitwise
// identical across levels (the kernel translation units are compiled with
// -ffp-contract=off to keep the scalar code from being FMA-contracted).
// The SpMV row dot products use lane-parallel partial sums at kAvx2, an
// unavoidable reassociation; they are validated against the scalar order
// within an ULP bound instead (see tests/test_simd_kernels.cc).

#ifndef ATMX_KERNELS_SIMD_SIMD_DISPATCH_H_
#define ATMX_KERNELS_SIMD_SIMD_DISPATCH_H_

#include <string>

namespace atmx::simd {

enum class Level {
  kScalar = 0,
  kGeneric = 1,
  kAvx2 = 2,
};

inline constexpr int kNumLevels = 3;

// Stable lowercase name ("scalar", "generic", "avx2"); static literal.
const char* LevelName(Level level);

// True iff the AVX2 translation unit was compiled with AVX2/FMA codegen
// (x86-64 hosts whose compiler accepts -mavx2 -mfma).
bool Avx2Compiled();

// Runtime probe: the executing CPU supports AVX2 and FMA. Always false on
// non-x86 builds.
bool CpuSupportsAvx2();

// Pure resolution logic, separated for testability. `env_value` is the
// raw ATMX_SIMD value (nullptr = unset). Unknown values and unsatisfiable
// requests degrade gracefully: `*warning` receives a one-line message
// (left untouched otherwise) and the best supported level is returned.
Level ResolveLevel(const char* env_value, bool cpu_avx2, bool avx2_compiled,
                   std::string* warning);

// The process-wide level, resolved on first call (thread-safe) from
// ResolveLevel(getenv("ATMX_SIMD"), ...). Pin ATMX_SIMD=scalar for
// bit-reproducible runs across hosts.
Level ActiveLevel();

// Whether SddGemm routes tall-skinny windows (n <= kSpmmMaxPanelCols)
// through the register-strip SpMM panel kernels. Resolved from
// ATMX_SPMM_PANEL on first query (default on; "0"/"off"/"false"
// disable). The off setting is an ablation knob for benchmarks comparing
// against the generic per-non-zero row loop — results are bitwise
// identical either way, only the C-row register reuse differs.
bool SpmmPanelEnabled();

// Overrides the panel routing at runtime (ablation benches measuring
// both sides in one process). Not intended for concurrent use with
// in-flight multiplications.
void SetSpmmPanelEnabled(bool enabled);

}  // namespace atmx::simd

#endif  // ATMX_KERNELS_SIMD_SIMD_DISPATCH_H_
