// Per-level kernel implementations shared between the dispatching
// translation unit (simd_portable.cc) and the AVX2 translation unit
// (simd_avx2.cc). Not part of the public kernel API.

#ifndef ATMX_KERNELS_SIMD_SIMD_INTERNAL_H_
#define ATMX_KERNELS_SIMD_SIMD_INTERNAL_H_

#include "common/types.h"
#include "storage/dense_matrix.h"

namespace atmx::simd::internal {

// Scalar reference implementations (the seed kernels).
void DddGemmScalar(const DenseView& a, const DenseView& b,
                   const DenseMutView& c, index_t i0, index_t i1);
void AxpyScalar(value_t* values, const value_t* row, value_t scale,
                index_t n);
value_t CsrRowDotScalar(const value_t* values, const index_t* col_idx,
                        index_t p0, index_t p1, const value_t* x);
value_t DotScalar(const value_t* a, const value_t* x, index_t n);

// Portable register-blocked dense kernel (same tile shape and summation
// order as the AVX2 kernel).
void DddGemmGeneric(const DenseView& a, const DenseView& b,
                    const DenseMutView& c, index_t i0, index_t i1);

// Tall-skinny SpMM row-panel kernels (see SpmmRowPanelLevel).
void SpmmRowPanelScalar(const value_t* values, const index_t* col_idx,
                        index_t p0, index_t p1, index_t col_offset,
                        const DenseView& b, value_t* c_row);
void SpmmRowPanelGeneric(const value_t* values, const index_t* col_idx,
                         index_t p0, index_t p1, index_t col_offset,
                         const DenseView& b, value_t* c_row);

// AVX2 implementations; defined as working kernels only when the AVX2
// translation unit is compiled with AVX2/FMA codegen (Avx2Compiled()),
// as aborting stubs otherwise — the dispatcher never selects kAvx2 in
// that configuration.
void DddGemmAvx2(const DenseView& a, const DenseView& b,
                 const DenseMutView& c, index_t i0, index_t i1);
void AxpyAvx2(value_t* values, const value_t* row, value_t scale, index_t n);
value_t CsrRowDotAvx2(const value_t* values, const index_t* col_idx,
                      index_t p0, index_t p1, const value_t* x);
value_t DotAvx2(const value_t* a, const value_t* x, index_t n);
void SpmmRowPanelAvx2(const value_t* values, const index_t* col_idx,
                      index_t p0, index_t p1, index_t col_offset,
                      const DenseView& b, value_t* c_row);

}  // namespace atmx::simd::internal

#endif  // ATMX_KERNELS_SIMD_SIMD_INTERNAL_H_
