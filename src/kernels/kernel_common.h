// Shared kernel-level types: reference windows and operand descriptors.
//
// Referenced submatrix multiplication (section III-B): a kernel may operate
// on an arbitrary rectangular subpart of a tile, identified by the window
// [r0, r1) x [c0, c1) in tile-local coordinates. Dense operands carry the
// window implicitly via a DenseView (pointer + lda, exactly the BLAS gemm
// convention); sparse operands carry the CSR tile plus an explicit window
// that the kernels resolve with per-row binary search on the sorted column
// ids.

#ifndef ATMX_KERNELS_KERNEL_COMMON_H_
#define ATMX_KERNELS_KERNEL_COMMON_H_

#include "common/check.h"
#include "common/types.h"
#include "storage/csr_matrix.h"
#include "storage/dense_matrix.h"

namespace atmx {

// Half-open rectangular window in tile-local coordinates.
struct Window {
  index_t r0 = 0;
  index_t r1 = 0;
  index_t c0 = 0;
  index_t c1 = 0;

  index_t rows() const { return r1 - r0; }
  index_t cols() const { return c1 - c0; }

  static Window Full(index_t rows, index_t cols) {
    return {0, rows, 0, cols};
  }

  friend bool operator==(const Window&, const Window&) = default;
};

// One side of a tile multiplication: either a dense view (already windowed)
// or a CSR tile plus a reference window.
struct Operand {
  bool is_dense = false;
  DenseView dense;          // valid iff is_dense
  const CsrMatrix* csr = nullptr;  // valid iff !is_dense
  Window window;            // window into *csr; for dense mirrors the shape

  index_t rows() const { return is_dense ? dense.rows : window.rows(); }
  index_t cols() const { return is_dense ? dense.cols : window.cols(); }

  static Operand Dense(DenseView view) {
    Operand op;
    op.is_dense = true;
    op.dense = view;
    op.window = Window::Full(view.rows, view.cols);
    return op;
  }

  static Operand Sparse(const CsrMatrix* csr, Window window) {
    ATMX_DCHECK(csr != nullptr);
    ATMX_DCHECK(window.r0 >= 0 && window.r1 <= csr->rows());
    ATMX_DCHECK(window.c0 >= 0 && window.c1 <= csr->cols());
    Operand op;
    op.is_dense = false;
    op.csr = csr;
    op.window = window;
    return op;
  }
};

// The 2^3 = 8 kernel variants for {sparse, dense} A x B -> C
// (section III-A). Naming follows the paper: e.g. spspd_gemm multiplies
// sparse x sparse into a dense target.
enum class KernelType {
  kDDD,  // dense  x dense  -> dense
  kDSD,  // dense  x sparse -> dense
  kSDD,  // sparse x dense  -> dense
  kSSD,  // sparse x sparse -> dense
  kDDS,  // dense  x dense  -> sparse
  kDSS,  // dense  x sparse -> sparse
  kSDS,  // sparse x dense  -> sparse
  kSSS,  // sparse x sparse -> sparse
};

// Number of KernelType enumerators, for per-variant counter arrays.
inline constexpr int kNumKernelTypes = 8;

const char* KernelTypeName(KernelType type);

// Composes the kernel type from operand/target representations.
KernelType MakeKernelType(bool a_dense, bool b_dense, bool c_dense);

// Positions [first, last) of row `row` restricted to columns
// [c0, c1), with a fast path for unwindowed access.
inline void CsrRowRange(const CsrMatrix& m, index_t row, index_t c0,
                        index_t c1, index_t* first, index_t* last) {
  if (c0 == 0 && c1 == m.cols()) {
    *first = m.row_ptr()[row];
    *last = m.row_ptr()[row + 1];
  } else {
    m.RowColRange(row, c0, c1, first, last);
  }
}

}  // namespace atmx

#endif  // ATMX_KERNELS_KERNEL_COMMON_H_
