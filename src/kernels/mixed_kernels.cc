#include "kernels/mixed_kernels.h"

#include "kernels/simd/simd_kernels.h"
#include "obs/obs.h"

namespace atmx {

void SddGemm(const CsrMatrix& a, const Window& wa, const DenseView& b,
             const DenseMutView& c, index_t i0, index_t i1) {
  ATMX_DCHECK_EQ(wa.cols(), b.rows);
  ATMX_DCHECK_EQ(wa.rows(), c.rows);
  ATMX_DCHECK_EQ(b.cols, c.cols);
  const auto& a_cols = a.col_idx();
  const auto& a_vals = a.values();
  const index_t n = b.cols;

  if (n <= simd::kSpmmMaxPanelCols && simd::SpmmPanelEnabled()) {
    // Tall-skinny panel: the whole C row fits in a few register strips,
    // so the panel kernels hold it across the non-zero loop instead of
    // re-streaming it per non-zero. Bitwise identical to the loop below.
    ATMX_COUNTER_INC("kernel.spmm_panel.invocations");
    const simd::Level level = simd::ActiveLevel();
    for (index_t i = i0; i < i1; ++i) {
      index_t ap0, ap1;
      CsrRowRange(a, wa.r0 + i, wa.c0, wa.c1, &ap0, &ap1);
      if (ap0 == ap1) continue;
      simd::SpmmRowPanelLevel(level, a_vals.data(), a_cols.data(), ap0, ap1,
                              wa.c0, b, c.RowPtr(i));
    }
    return;
  }

  for (index_t i = i0; i < i1; ++i) {
    value_t* __restrict c_row = c.RowPtr(i);
    index_t ap0, ap1;
    CsrRowRange(a, wa.r0 + i, wa.c0, wa.c1, &ap0, &ap1);
    for (index_t p = ap0; p < ap1; ++p) {
      const value_t av = a_vals[p];
      const value_t* __restrict b_row = b.RowPtr(a_cols[p] - wa.c0);
      for (index_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
    }
  }
}

void DsdGemm(const DenseView& a, const CsrMatrix& b, const Window& wb,
             const DenseMutView& c, index_t i0, index_t i1) {
  ATMX_DCHECK_EQ(a.cols, wb.rows());
  ATMX_DCHECK_EQ(a.rows, c.rows);
  ATMX_DCHECK_EQ(wb.cols(), c.cols);
  const auto& b_cols = b.col_idx();
  const auto& b_vals = b.values();
  const index_t kk = a.cols;

  for (index_t i = i0; i < i1; ++i) {
    const value_t* __restrict a_row = a.RowPtr(i);
    value_t* __restrict c_row = c.RowPtr(i);
    for (index_t k = 0; k < kk; ++k) {
      const value_t av = a_row[k];
      if (av == 0.0) continue;
      index_t bp0, bp1;
      CsrRowRange(b, wb.r0 + k, wb.c0, wb.c1, &bp0, &bp1);
      for (index_t q = bp0; q < bp1; ++q) {
        c_row[b_cols[q] - wb.c0] += av * b_vals[q];
      }
    }
  }
}

void SdsAccumulateRow(const CsrMatrix& a, const Window& wa,
                      const DenseView& b, index_t i, SparseAccumulator* spa) {
  ATMX_DCHECK_EQ(wa.cols(), b.rows);
  const auto& a_cols = a.col_idx();
  const auto& a_vals = a.values();

  index_t ap0, ap1;
  CsrRowRange(a, wa.r0 + i, wa.c0, wa.c1, &ap0, &ap1);
  for (index_t p = ap0; p < ap1; ++p) {
    // Bulk dense-row scatter (vectorized in dense-SPA mode).
    spa->AddScaledDenseRow(b.RowPtr(a_cols[p] - wa.c0), a_vals[p]);
  }
}

void DssAccumulateRow(const DenseView& a, const CsrMatrix& b,
                      const Window& wb, index_t i, SparseAccumulator* spa) {
  ATMX_DCHECK_EQ(a.cols, wb.rows());
  const auto& b_cols = b.col_idx();
  const auto& b_vals = b.values();
  const index_t kk = a.cols;
  const value_t* a_row = a.RowPtr(i);

  for (index_t k = 0; k < kk; ++k) {
    const value_t av = a_row[k];
    if (av == 0.0) continue;
    index_t bp0, bp1;
    CsrRowRange(b, wb.r0 + k, wb.c0, wb.c1, &bp0, &bp1);
    for (index_t q = bp0; q < bp1; ++q) {
      spa->Add(b_cols[q] - wb.c0, av * b_vals[q]);
    }
  }
}

}  // namespace atmx
