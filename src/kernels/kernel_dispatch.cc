// Storage-combination dispatch (which of the 8 kernels runs a tile pair).
// Orthogonal to — and layered above — the SIMD level dispatch in
// kernels/simd/: the kernels called here (DddGemm, DdsAccumulateRow,
// SdsAccumulateRow, ...) internally select the scalar, portable-blocked,
// or AVX2 micro-kernel via simd::ActiveLevel(). Variant names and their
// per-variant perf metrics are therefore level-independent; the level in
// effect is recorded separately in the simd.level gauge.

#include "kernels/kernel_dispatch.h"

#include "common/check.h"
#include "kernels/dense_kernels.h"
#include "kernels/mixed_kernels.h"
#include "kernels/sparse_kernels.h"

namespace atmx {

const char* KernelTypeName(KernelType type) {
  switch (type) {
    case KernelType::kDDD:
      return "ddd_gemm";
    case KernelType::kDSD:
      return "dspd_gemm";
    case KernelType::kSDD:
      return "spdd_gemm";
    case KernelType::kSSD:
      return "spspd_gemm";
    case KernelType::kDDS:
      return "ddsp_gemm";
    case KernelType::kDSS:
      return "dsps_gemm";
    case KernelType::kSDS:
      return "spds_gemm";
    case KernelType::kSSS:
      return "spspsp_gemm";
  }
  return "unknown";
}

KernelType MakeKernelType(bool a_dense, bool b_dense, bool c_dense) {
  if (c_dense) {
    if (a_dense) return b_dense ? KernelType::kDDD : KernelType::kDSD;
    return b_dense ? KernelType::kSDD : KernelType::kSSD;
  }
  if (a_dense) return b_dense ? KernelType::kDDS : KernelType::kDSS;
  return b_dense ? KernelType::kSDS : KernelType::kSSS;
}

KernelType DispatchKernelType(const Operand& a, const Operand& b,
                              bool c_dense) {
  return MakeKernelType(a.is_dense, b.is_dense, c_dense);
}

const char* KernelMetricName(KernelType type) {
  switch (type) {
    case KernelType::kDDD:
      return "atmult.kernel.ddd_gemm.invocations";
    case KernelType::kDSD:
      return "atmult.kernel.dspd_gemm.invocations";
    case KernelType::kSDD:
      return "atmult.kernel.spdd_gemm.invocations";
    case KernelType::kSSD:
      return "atmult.kernel.spspd_gemm.invocations";
    case KernelType::kDDS:
      return "atmult.kernel.ddsp_gemm.invocations";
    case KernelType::kDSS:
      return "atmult.kernel.dsps_gemm.invocations";
    case KernelType::kSDS:
      return "atmult.kernel.spds_gemm.invocations";
    case KernelType::kSSS:
      return "atmult.kernel.spspsp_gemm.invocations";
  }
  return "atmult.kernel.unknown.invocations";
}

const char* KernelPerfMetricPrefix(KernelType type) {
  switch (type) {
    case KernelType::kDDD:
      return "kernel.ddd_gemm";
    case KernelType::kDSD:
      return "kernel.dspd_gemm";
    case KernelType::kSDD:
      return "kernel.spdd_gemm";
    case KernelType::kSSD:
      return "kernel.spspd_gemm";
    case KernelType::kDDS:
      return "kernel.ddsp_gemm";
    case KernelType::kDSS:
      return "kernel.dsps_gemm";
    case KernelType::kSDS:
      return "kernel.spds_gemm";
    case KernelType::kSSS:
      return "kernel.spspsp_gemm";
  }
  return "kernel.unknown";
}

void MultiplyIntoDense(const Operand& a, const Operand& b,
                       const DenseMutView& c, index_t i0, index_t i1) {
  ATMX_DCHECK_CONTEXT("%s rows [%lld,%lld)",
                      KernelTypeName(DispatchKernelType(a, b, true)),
                      static_cast<long long>(i0),
                      static_cast<long long>(i1));
  ATMX_DCHECK_EQ(a.cols(), b.rows());
  ATMX_DCHECK_EQ(a.rows(), c.rows);
  ATMX_DCHECK_EQ(b.cols(), c.cols);
  if (a.is_dense) {
    if (b.is_dense) {
      DddGemm(a.dense, b.dense, c, i0, i1);
    } else {
      DsdGemm(a.dense, *b.csr, b.window, c, i0, i1);
    }
  } else {
    if (b.is_dense) {
      SddGemm(*a.csr, a.window, b.dense, c, i0, i1);
    } else {
      SsdGemm(*a.csr, a.window, *b.csr, b.window, c, i0, i1);
    }
  }
}

void AccumulateRowInto(const Operand& a, const Operand& b, index_t i,
                       SparseAccumulator* spa) {
  ATMX_DCHECK_CONTEXT("%s row %lld",
                      KernelTypeName(DispatchKernelType(a, b, false)),
                      static_cast<long long>(i));
  ATMX_DCHECK_EQ(a.cols(), b.rows());
  ATMX_DCHECK_EQ(spa->width(), b.cols());
  if (a.is_dense) {
    if (b.is_dense) {
      DdsAccumulateRow(a.dense, b.dense, i, spa);
    } else {
      DssAccumulateRow(a.dense, *b.csr, b.window, i, spa);
    }
  } else {
    if (b.is_dense) {
      SdsAccumulateRow(*a.csr, a.window, b.dense, i, spa);
    } else {
      SssAccumulateRow(*a.csr, a.window, *b.csr, b.window, i, spa);
    }
  }
}

}  // namespace atmx
