// Uniform dispatch over the eight multiplication kernels based on the
// representations of A, B and the target. The ATMULT operator and its
// optimizer (section III) only talk to this interface, which keeps the
// optimization logic decoupled from the kernel implementations — the
// paper's plug-in property.

#ifndef ATMX_KERNELS_KERNEL_DISPATCH_H_
#define ATMX_KERNELS_KERNEL_DISPATCH_H_

#include "kernels/kernel_common.h"
#include "kernels/sparse_accumulator.h"
#include "storage/dense_matrix.h"

namespace atmx {

// Dense-target dispatch: C[i0:i1, :] += (A * B)[i0:i1, :]. Shapes must
// agree: a.rows()==c.rows, b.cols()==c.cols, a.cols()==b.rows().
void MultiplyIntoDense(const Operand& a, const Operand& b,
                       const DenseMutView& c, index_t i0, index_t i1);

// Sparse-target dispatch: accumulate result row i into the SPA (width must
// equal b.cols()).
void AccumulateRowInto(const Operand& a, const Operand& b, index_t i,
                       SparseAccumulator* spa);

// Kernel variant implied by the operand/target representations.
KernelType DispatchKernelType(const Operand& a, const Operand& b,
                              bool c_dense);

// Stable metrics-registry counter name of one kernel variant
// ("atmult.kernel.<variant>.invocations"); a static literal, safe to hold.
// One invocation = one tile-pair multiplication executed in that variant,
// regardless of how many row chunks the worker team splits it into.
const char* KernelMetricName(KernelType type);

// Stable metric-name prefix for the hardware-counter telemetry of one
// kernel variant ("kernel.<variant>"); the perf layer appends ".cycles",
// ".llc_miss_rate", ... to it. A static literal, safe to hold.
const char* KernelPerfMetricPrefix(KernelType type);

}  // namespace atmx

#endif  // ATMX_KERNELS_KERNEL_DISPATCH_H_
