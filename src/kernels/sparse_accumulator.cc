#include "kernels/sparse_accumulator.h"

#include <algorithm>

namespace atmx {

void SparseAccumulator::Resize(index_t width) {
  ATMX_CHECK_GE(width, 0);
  values_.assign(width, 0.0);
  flags_.assign(width, 0);
  occupied_.clear();
}

void SparseAccumulator::FlushToBuilder(CsrBuilder* builder) {
  std::sort(occupied_.begin(), occupied_.end());
  for (index_t j : occupied_) {
    builder->Append(j, values_[j]);
    values_[j] = 0.0;
    flags_[j] = 0;
  }
  occupied_.clear();
}

void SparseAccumulator::FlushToDenseRow(value_t* row) {
  for (index_t j : occupied_) {
    row[j] += values_[j];
    values_[j] = 0.0;
    flags_[j] = 0;
  }
  occupied_.clear();
}

void SparseAccumulator::Clear() {
  for (index_t j : occupied_) {
    values_[j] = 0.0;
    flags_[j] = 0;
  }
  occupied_.clear();
}

}  // namespace atmx
