#include "kernels/sparse_accumulator.h"

#include <algorithm>

#include "common/math_util.h"
#include "kernels/simd/simd_kernels.h"
#include "obs/obs.h"

namespace atmx {

void SparseAccumulator::Resize(index_t width) {
  ATMX_CHECK_GE(width, 0);
  mode_ = Mode::kDense;
  width_ = width;
  values_.assign(width, 0.0);
  flags_.assign(width, 0);
  occupied_.clear();
  hash_keys_.clear();
  hash_vals_.clear();
  hash_count_ = 0;
  hash_mask_ = 0;
}

void SparseAccumulator::ResizeAdaptive(index_t width,
                                       double expected_row_nnz) {
  ATMX_CHECK_GE(width, 0);
  if (ChooseMode(width, expected_row_nnz) == Mode::kDense) {
    Resize(width);
    ATMX_COUNTER_INC("spa.select.dense");
    return;
  }
  mode_ = Mode::kHash;
  width_ = width;
  values_.clear();
  flags_.clear();
  occupied_.clear();
  // Start at 4x the expected population (min 16) so the common case never
  // rehashes; skewed rows grow geometrically.
  const index_t target = std::max<index_t>(
      16, static_cast<index_t>(4.0 * std::max(1.0, expected_row_nnz)));
  const std::size_t capacity =
      static_cast<std::size_t>(NextPowerOfTwo(target));
  hash_keys_.assign(capacity, kEmptySlot);
  hash_vals_.assign(capacity, 0.0);
  hash_count_ = 0;
  hash_mask_ = capacity - 1;
  ATMX_COUNTER_INC("spa.select.hash");
}

void SparseAccumulator::HashAdd(index_t j, value_t v) {
  if (static_cast<std::size_t>(hash_count_ + 1) * 2 > hash_keys_.size()) {
    HashGrow();
  }
  std::size_t slot = HashOf(j) & hash_mask_;
  for (;;) {
    if (hash_keys_[slot] == kEmptySlot) {
      hash_keys_[slot] = j;
      hash_vals_[slot] = v;
      occupied_.push_back(static_cast<index_t>(slot));
      ++hash_count_;
      return;
    }
    if (hash_keys_[slot] == j) {
      hash_vals_[slot] += v;
      return;
    }
    slot = (slot + 1) & hash_mask_;
  }
}

void SparseAccumulator::HashGrow() {
  const std::size_t capacity = hash_keys_.size() * 2;
  std::vector<index_t> old_keys = std::move(hash_keys_);
  std::vector<value_t> old_vals = std::move(hash_vals_);
  std::vector<index_t> old_slots = std::move(occupied_);
  hash_keys_.assign(capacity, kEmptySlot);
  hash_vals_.assign(capacity, 0.0);
  hash_mask_ = capacity - 1;
  occupied_.clear();
  occupied_.reserve(old_slots.size());
  for (index_t s : old_slots) {
    const index_t key = old_keys[static_cast<std::size_t>(s)];
    std::size_t slot = HashOf(key) & hash_mask_;
    while (hash_keys_[slot] != kEmptySlot) slot = (slot + 1) & hash_mask_;
    hash_keys_[slot] = key;
    hash_vals_[slot] = old_vals[static_cast<std::size_t>(s)];
    occupied_.push_back(static_cast<index_t>(slot));
  }
}

void SparseAccumulator::AddScaledDenseRow(const value_t* row, value_t scale) {
  if (mode_ == Mode::kHash) {
    for (index_t j = 0; j < width_; ++j) HashAdd(j, scale * row[j]);
    return;
  }
  // Occupy every column once (idempotent across repeated scatter calls),
  // then accumulate with the level-dispatched axpy. Same per-element
  // round(scale*row[j]) then round(+=) as Add, so results stay bitwise
  // identical to the per-element path.
  if (static_cast<index_t>(occupied_.size()) != width_) {
    for (index_t j = 0; j < width_; ++j) {
      if (!flags_[j]) {
        flags_[j] = 1;
        occupied_.push_back(j);
      }
    }
  }
  simd::Axpy(values_.data(), row, scale, width_);
}

void SparseAccumulator::FlushToBuilder(CsrBuilder* builder) {
  if (mode_ == Mode::kDense) {
    std::sort(occupied_.begin(), occupied_.end());
    for (index_t j : occupied_) {
      builder->Append(j, values_[j]);
      values_[j] = 0.0;
      flags_[j] = 0;
    }
    occupied_.clear();
    return;
  }
  flush_scratch_.clear();
  for (index_t s : occupied_) {
    flush_scratch_.emplace_back(hash_keys_[static_cast<std::size_t>(s)],
                                hash_vals_[static_cast<std::size_t>(s)]);
    hash_keys_[static_cast<std::size_t>(s)] = kEmptySlot;
  }
  std::sort(flush_scratch_.begin(), flush_scratch_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [col, val] : flush_scratch_) builder->Append(col, val);
  occupied_.clear();
  hash_count_ = 0;
}

void SparseAccumulator::FlushToDenseRow(value_t* row) {
  if (mode_ == Mode::kDense) {
    for (index_t j : occupied_) {
      row[j] += values_[j];
      values_[j] = 0.0;
      flags_[j] = 0;
    }
    occupied_.clear();
    return;
  }
  for (index_t s : occupied_) {
    row[hash_keys_[static_cast<std::size_t>(s)]] +=
        hash_vals_[static_cast<std::size_t>(s)];
    hash_keys_[static_cast<std::size_t>(s)] = kEmptySlot;
  }
  occupied_.clear();
  hash_count_ = 0;
}

void SparseAccumulator::Clear() {
  if (mode_ == Mode::kDense) {
    for (index_t j : occupied_) {
      values_[j] = 0.0;
      flags_[j] = 0;
    }
  } else {
    for (index_t s : occupied_) {
      hash_keys_[static_cast<std::size_t>(s)] = kEmptySlot;
    }
    hash_count_ = 0;
  }
  occupied_.clear();
}

}  // namespace atmx
