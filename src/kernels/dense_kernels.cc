#include "kernels/dense_kernels.h"

#include <algorithm>

#include "common/check.h"

namespace atmx {

void DddGemm(const DenseView& a, const DenseView& b, const DenseMutView& c,
             index_t i0, index_t i1) {
  ATMX_DCHECK_EQ(a.cols, b.rows);
  ATMX_DCHECK_EQ(a.rows, c.rows);
  ATMX_DCHECK_EQ(b.cols, c.cols);
  ATMX_DCHECK(i0 >= 0 && i1 <= c.rows);

  const index_t kk = a.cols;
  const index_t n = b.cols;
  // i-k-j loop order: the inner j loop streams one B row and one C row,
  // which vectorizes well; k is blocked so the working set of B rows stays
  // cache-resident for tiles near the maximum dense tile size.
  constexpr index_t kKBlock = 64;
  for (index_t kb = 0; kb < kk; kb += kKBlock) {
    const index_t kend = std::min(kb + kKBlock, kk);
    for (index_t i = i0; i < i1; ++i) {
      const value_t* __restrict a_row = a.RowPtr(i);
      value_t* __restrict c_row = c.RowPtr(i);
      for (index_t k = kb; k < kend; ++k) {
        // No zero-skip: this is the honest BLAS-style dense kernel; the
        // cost model and calibration rely on its density-independent cost.
        const value_t av = a_row[k];
        const value_t* __restrict b_row = b.RowPtr(k);
        for (index_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
      }
    }
  }
}

void DdsAccumulateRow(const DenseView& a, const DenseView& b, index_t i,
                      SparseAccumulator* spa) {
  ATMX_DCHECK_EQ(a.cols, b.rows);
  ATMX_DCHECK(i >= 0 && i < a.rows);
  const index_t kk = a.cols;
  const index_t n = b.cols;
  const value_t* a_row = a.RowPtr(i);
  for (index_t k = 0; k < kk; ++k) {
    const value_t av = a_row[k];
    if (av == 0.0) continue;
    const value_t* b_row = b.RowPtr(k);
    for (index_t j = 0; j < n; ++j) spa->Add(j, av * b_row[j]);
  }
}

}  // namespace atmx
