#include "kernels/dense_kernels.h"

#include "common/check.h"
#include "kernels/simd/simd_dispatch.h"
#include "kernels/simd/simd_kernels.h"

namespace atmx {

void DddGemm(const DenseView& a, const DenseView& b, const DenseMutView& c,
             index_t i0, index_t i1) {
  // Level-dispatched micro-kernel (kernels/simd/): scalar i-k-j reference,
  // portable register-blocked, or AVX2, all bitwise identical. Resolved
  // once per process from CPUID + ATMX_SIMD.
  simd::DddGemmLevel(simd::ActiveLevel(), a, b, c, i0, i1);
}

void DdsAccumulateRow(const DenseView& a, const DenseView& b, index_t i,
                      SparseAccumulator* spa) {
  ATMX_DCHECK_EQ(a.cols, b.rows);
  ATMX_DCHECK(i >= 0 && i < a.rows);
  const index_t kk = a.cols;
  const value_t* a_row = a.RowPtr(i);
  for (index_t k = 0; k < kk; ++k) {
    const value_t av = a_row[k];
    if (av == 0.0) continue;
    // Bulk dense-row scatter: one vectorizable axpy over the SPA value
    // array instead of width per-element Add calls.
    spa->AddScaledDenseRow(b.RowPtr(k), av);
  }
}

}  // namespace atmx
