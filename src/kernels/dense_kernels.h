// Dense x dense kernels. The views carry an explicit leading dimension, so
// referenced submatrix multiplication comes for free, exactly like passing
// lda/ldb/ldc offsets to a BLAS gemm (section III-B).

#ifndef ATMX_KERNELS_DENSE_KERNELS_H_
#define ATMX_KERNELS_DENSE_KERNELS_H_

#include "kernels/sparse_accumulator.h"
#include "storage/dense_matrix.h"

namespace atmx {

// ddd_gemm: C[i0:i1, :] += A[i0:i1, :] * B. Shapes: A is m x k, B is k x n,
// C is m x n. Row-range form enables intra-tile parallelism.
void DddGemm(const DenseView& a, const DenseView& b, const DenseMutView& c,
             index_t i0, index_t i1);

// dds_gemm row step: accumulates row i of A * B into the SPA (sparse C).
void DdsAccumulateRow(const DenseView& a, const DenseView& b, index_t i,
                      SparseAccumulator* spa);

}  // namespace atmx

#endif  // ATMX_KERNELS_DENSE_KERNELS_H_
