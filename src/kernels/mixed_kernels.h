// Mixed sparse/dense kernels (spdd, dspd, spds, dsps in the paper's
// nomenclature). Vendor libraries often lack several of these (e.g. a
// dense x sparse -> dense routine, section III-A), so all are implemented
// here, window-referenced like the pure kernels.

#ifndef ATMX_KERNELS_MIXED_KERNELS_H_
#define ATMX_KERNELS_MIXED_KERNELS_H_

#include "kernels/kernel_common.h"
#include "kernels/sparse_accumulator.h"
#include "storage/csr_matrix.h"
#include "storage/dense_matrix.h"

namespace atmx {

// spdd_gemm: C[i0:i1, :] += A[wa] (sparse) * B (dense view).
void SddGemm(const CsrMatrix& a, const Window& wa, const DenseView& b,
             const DenseMutView& c, index_t i0, index_t i1);

// dspd_gemm: C[i0:i1, :] += A (dense view) * B[wb] (sparse).
void DsdGemm(const DenseView& a, const CsrMatrix& b, const Window& wb,
             const DenseMutView& c, index_t i0, index_t i1);

// spds_gemm row step: row i of A[wa] (sparse) * B (dense) into the SPA.
void SdsAccumulateRow(const CsrMatrix& a, const Window& wa,
                      const DenseView& b, index_t i, SparseAccumulator* spa);

// dsps_gemm row step: row i of A (dense) * B[wb] (sparse) into the SPA.
void DssAccumulateRow(const DenseView& a, const CsrMatrix& b,
                      const Window& wb, index_t i, SparseAccumulator* spa);

}  // namespace atmx

#endif  // ATMX_KERNELS_MIXED_KERNELS_H_
