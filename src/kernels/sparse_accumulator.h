// Dense-valued sparse accumulator (SPA), the core of Gustavson's sparse
// matrix multiplication [11]: a value array of one output-row width plus an
// occupancy list. Eq. (2)'s beta bound exists precisely so that these
// arrays fit in the LLC for any sparse tile width.
//
// For ultra-sparse rows the dense SPA is a bad deal: Resize zeroes
// O(tile-width) values + flags and every Add touches a flag array that
// pollutes the cache far beyond the handful of live columns. Following
// Nagasaka et al. (high-performance SpGEMM on KNL/multicore), an adaptive
// open-addressing hash accumulator takes over when the estimated per-row
// population is far below the dense break-even; see ChooseMode. Both modes
// accumulate per-column partial sums in identical Add order and flush
// sorted by column, so the produced rows are bitwise identical.

#ifndef ATMX_KERNELS_SPARSE_ACCUMULATOR_H_
#define ATMX_KERNELS_SPARSE_ACCUMULATOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "storage/csr_matrix.h"

namespace atmx {

class SparseAccumulator {
 public:
  enum class Mode { kDense, kHash };

  SparseAccumulator() = default;
  explicit SparseAccumulator(index_t width) { Resize(width); }

  // Hash-mode selection boundary: rows must be at least this wide (below
  // it the dense arrays trivially fit in L1/L2) and the expected per-row
  // population must be under width * kHashDensityCutoff — well below the
  // dense-SPA break-even, where the O(width) touch cost cannot amortize.
  static constexpr index_t kMinHashWidth = 256;
  static constexpr double kHashDensityCutoff = 1.0 / 64.0;

  // expected_row_nnz < 0 means "unknown" and always selects kDense.
  static Mode ChooseMode(index_t width, double expected_row_nnz) {
    if (expected_row_nnz < 0.0 || width < kMinHashWidth) return Mode::kDense;
    return expected_row_nnz <
                   static_cast<double>(width) * kHashDensityCutoff
               ? Mode::kHash
               : Mode::kDense;
  }

  // (Re)initializes for rows of the given width in dense-SPA mode; clears
  // content.
  void Resize(index_t width);

  // (Re)initializes for rows of the given width, picking the accumulator
  // mode from the estimated per-row population (ChooseMode).
  void ResizeAdaptive(index_t width, double expected_row_nnz);

  Mode mode() const { return mode_; }
  index_t width() const { return width_; }
  index_t touched() const {
    return mode_ == Mode::kDense ? static_cast<index_t>(occupied_.size())
                                 : hash_count_;
  }
  bool empty() const { return touched() == 0; }

  // values[j] += v, registering j on first touch.
  void Add(index_t j, value_t v) {
    ATMX_DCHECK(j >= 0 && j < width());
    if (mode_ == Mode::kDense) {
      if (!flags_[j]) {
        flags_[j] = 1;
        occupied_.push_back(j);
      }
      values_[j] += v;
    } else {
      HashAdd(j, v);
    }
  }

  // values[j] += scale * row[j] for every j in [0, width): the dense-row
  // scatter used by the D*S mixed kernels. In dense mode this occupies all
  // columns once and then runs a single vectorized axpy over the value
  // array — bitwise identical to width Add(j, scale * row[j]) calls, which
  // is what hash mode falls back to.
  void AddScaledDenseRow(const value_t* row, value_t scale);

  // Appends the accumulated row (sorted by column, zeros kept — an explicit
  // cancellation to 0.0 still counts as a stored element, matching CSR
  // semantics of numeric kernels) into `builder`, then clears.
  void FlushToBuilder(CsrBuilder* builder);

  // Adds the accumulated row into a dense row pointer, then clears.
  void FlushToDenseRow(value_t* row);

  // Drops all content in O(touched).
  void Clear();

 private:
  void HashAdd(index_t j, value_t v);
  void HashGrow();

  static std::size_t HashOf(index_t j) {
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(j) * 0x9E3779B97F4A7C15ULL) >> 32);
  }

  Mode mode_ = Mode::kDense;
  index_t width_ = 0;

  // Dense-SPA state.
  std::vector<value_t> values_;
  std::vector<unsigned char> flags_;
  std::vector<index_t> occupied_;  // dense: columns; hash: table slots

  // Hash state: open addressing with linear probing, power-of-two
  // capacity, grown at 50% load. kEmptySlot marks a free slot.
  static constexpr index_t kEmptySlot = -1;
  std::vector<index_t> hash_keys_;
  std::vector<value_t> hash_vals_;
  index_t hash_count_ = 0;
  std::size_t hash_mask_ = 0;
  std::vector<std::pair<index_t, value_t>> flush_scratch_;
};

}  // namespace atmx

#endif  // ATMX_KERNELS_SPARSE_ACCUMULATOR_H_
