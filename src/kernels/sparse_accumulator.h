// Dense-valued sparse accumulator (SPA), the core of Gustavson's sparse
// matrix multiplication [11]: a value array of one output-row width plus an
// occupancy list. Eq. (2)'s beta bound exists precisely so that these
// arrays fit in the LLC for any sparse tile width.

#ifndef ATMX_KERNELS_SPARSE_ACCUMULATOR_H_
#define ATMX_KERNELS_SPARSE_ACCUMULATOR_H_

#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "storage/csr_matrix.h"

namespace atmx {

class SparseAccumulator {
 public:
  SparseAccumulator() = default;
  explicit SparseAccumulator(index_t width) { Resize(width); }

  // (Re)initializes for rows of the given width; clears content.
  void Resize(index_t width);

  index_t width() const { return static_cast<index_t>(values_.size()); }
  index_t touched() const { return static_cast<index_t>(occupied_.size()); }
  bool empty() const { return occupied_.empty(); }

  // values_[j] += v, registering j on first touch.
  void Add(index_t j, value_t v) {
    ATMX_DCHECK(j >= 0 && j < width());
    if (!flags_[j]) {
      flags_[j] = 1;
      occupied_.push_back(j);
    }
    values_[j] += v;
  }

  // Appends the accumulated row (sorted by column, zeros kept — an explicit
  // cancellation to 0.0 still counts as a stored element, matching CSR
  // semantics of numeric kernels) into `builder`, then clears.
  void FlushToBuilder(CsrBuilder* builder);

  // Adds the accumulated row into a dense row pointer, then clears.
  void FlushToDenseRow(value_t* row);

  // Drops all content in O(touched).
  void Clear();

 private:
  std::vector<value_t> values_;
  std::vector<unsigned char> flags_;
  std::vector<index_t> occupied_;
};

}  // namespace atmx

#endif  // ATMX_KERNELS_SPARSE_ACCUMULATOR_H_
