#include "kernels/sparse_kernels.h"

namespace atmx {

void SssAccumulateRow(const CsrMatrix& a, const Window& wa,
                      const CsrMatrix& b, const Window& wb, index_t i,
                      SparseAccumulator* spa) {
  ATMX_DCHECK_EQ(wa.cols(), wb.rows());
  ATMX_DCHECK(i >= 0 && i < wa.rows());
  const auto& a_cols = a.col_idx();
  const auto& a_vals = a.values();
  const auto& b_cols = b.col_idx();
  const auto& b_vals = b.values();

  index_t ap0, ap1;
  CsrRowRange(a, wa.r0 + i, wa.c0, wa.c1, &ap0, &ap1);
  for (index_t p = ap0; p < ap1; ++p) {
    const index_t b_row = wb.r0 + (a_cols[p] - wa.c0);
    const value_t av = a_vals[p];
    index_t bp0, bp1;
    CsrRowRange(b, b_row, wb.c0, wb.c1, &bp0, &bp1);
    for (index_t q = bp0; q < bp1; ++q) {
      spa->Add(b_cols[q] - wb.c0, av * b_vals[q]);
    }
  }
}

void SsdGemm(const CsrMatrix& a, const Window& wa, const CsrMatrix& b,
             const Window& wb, const DenseMutView& c, index_t i0, index_t i1) {
  ATMX_DCHECK_EQ(wa.cols(), wb.rows());
  ATMX_DCHECK_EQ(wa.rows(), c.rows);
  ATMX_DCHECK_EQ(wb.cols(), c.cols);
  const auto& a_cols = a.col_idx();
  const auto& a_vals = a.values();
  const auto& b_cols = b.col_idx();
  const auto& b_vals = b.values();

  for (index_t i = i0; i < i1; ++i) {
    value_t* __restrict c_row = c.RowPtr(i);
    index_t ap0, ap1;
    CsrRowRange(a, wa.r0 + i, wa.c0, wa.c1, &ap0, &ap1);
    for (index_t p = ap0; p < ap1; ++p) {
      const index_t b_row = wb.r0 + (a_cols[p] - wa.c0);
      const value_t av = a_vals[p];
      index_t bp0, bp1;
      CsrRowRange(b, b_row, wb.c0, wb.c1, &bp0, &bp1);
      for (index_t q = bp0; q < bp1; ++q) {
        c_row[b_cols[q] - wb.c0] += av * b_vals[q];
      }
    }
  }
}

CsrMatrix SpGemmCsr(const CsrMatrix& a, const CsrMatrix& b) {
  ATMX_CHECK_EQ(a.cols(), b.rows());
  const Window wa = Window::Full(a.rows(), a.cols());
  const Window wb = Window::Full(b.rows(), b.cols());
  CsrBuilder builder(a.rows(), b.cols());
  SparseAccumulator spa(b.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    SssAccumulateRow(a, wa, b, wb, i, &spa);
    spa.FlushToBuilder(&builder);
    builder.FinishRowsUpTo(i + 1);
  }
  return builder.Build();
}

DenseMatrix SpGemmDense(const CsrMatrix& a, const CsrMatrix& b) {
  ATMX_CHECK_EQ(a.cols(), b.rows());
  DenseMatrix c(a.rows(), b.cols());
  SsdGemm(a, Window::Full(a.rows(), a.cols()), b,
          Window::Full(b.rows(), b.cols()), c.MutView(), 0, a.rows());
  return c;
}

}  // namespace atmx
