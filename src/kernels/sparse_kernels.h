// Sparse x sparse kernels, based on Gustavson's row-wise algorithm [11]
// with a sparse accumulator, restricted to reference windows.
//
// Window semantics for a pair multiplication A[wa] * B[wb]:
//   - result shape: wa.rows() x wb.cols(),
//   - contraction:  wa.cols() == wb.rows(); A column (wa.c0 + t) multiplies
//     B row (wb.r0 + t),
//   - result row i corresponds to A row (wa.r0 + i); result column j to B
//     column (wb.c0 + j).

#ifndef ATMX_KERNELS_SPARSE_KERNELS_H_
#define ATMX_KERNELS_SPARSE_KERNELS_H_

#include "kernels/kernel_common.h"
#include "kernels/sparse_accumulator.h"
#include "storage/csr_matrix.h"
#include "storage/dense_matrix.h"

namespace atmx {

// spspsp_gemm row step: accumulates result row i into the SPA.
void SssAccumulateRow(const CsrMatrix& a, const Window& wa,
                      const CsrMatrix& b, const Window& wb, index_t i,
                      SparseAccumulator* spa);

// spspd_gemm: C[i0:i1, :] += A[wa] * B[wb] into a dense target window.
void SsdGemm(const CsrMatrix& a, const Window& wa, const CsrMatrix& b,
             const Window& wb, const DenseMutView& c, index_t i0, index_t i1);

// Convenience full multiplication C = A * B with C returned as CSR; this is
// the paper's spspsp_gemm *baseline* (plain Gustavson over the whole
// matrix, no tiling). Exposed for benchmarks and tests.
CsrMatrix SpGemmCsr(const CsrMatrix& a, const CsrMatrix& b);

// Baseline spspd_gemm: full sparse x sparse into a freshly allocated dense
// result.
DenseMatrix SpGemmDense(const CsrMatrix& a, const CsrMatrix& b);

}  // namespace atmx

#endif  // ATMX_KERNELS_SPARSE_KERNELS_H_
