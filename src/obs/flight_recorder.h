// Crash flight recorder: persists the observability state — bounded trace
// tail, metrics snapshot, decision log, logical memory high-water — to
// `atmx_flight_<pid>.json` when the process dies violently (fatal signal
// or ATMX_CHECK failure), so a crash in a long run is debuggable instead
// of mute.
//
// Async-signal-safety strategy: nothing is rendered in the handler. A
// full JSON body is pre-rendered into one of two double-buffered strings
// by Refresh() — called at Install and then once per sampler tick
// (snapshot_ring.h), so the dump is at most one period stale — and
// published through a single atomic pointer. The handler only: sets an
// atomic dumped flag, loads that pointer, composes a small prefix
// (`{"flight_schema":1,"pid":..,"signal":..,"reason":"..",`) with a
// stack itoa, and open(2)/write(2)s prefix + body + `}` to a path that
// was also pre-rendered at Install. Then it restores the default
// disposition and re-raises, preserving the process's exit status.
//
// The ATMX_CHECK path reuses the same dump via the obs-agnostic
// SetCheckFailureHook in common/check.h (so ATMX_OBS=OFF builds carry no
// obs references; this header is only included under ON and call sites
// are #if-guarded — the "no-op stub" of the OFF configuration).
//
// Compiled only under -DATMX_OBS=ON.

#ifndef ATMX_OBS_FLIGHT_RECORDER_H_
#define ATMX_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace atmx::obs {

class FlightRecorder {
 public:
  struct Options {
    // Directory receiving atmx_flight_<pid>.json.
    std::string output_dir = ".";
    // Trace events kept in the dump (newest last). The full ring can be
    // megabytes; a crash dump wants the tail.
    std::size_t max_trace_events = 1024;
    // Decision records kept in the dump (newest last), for the same
    // reason: the decision ring holds 64 Ki records, and Refresh runs
    // once per sampler tick — rendering the full ring there would make
    // the sampler the most expensive thread in the process.
    std::size_t max_decisions = 2048;
  };

  static FlightRecorder& Global();

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Pre-renders the dump path and first body, installs handlers for the
  // fatal signals (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL) and the
  // ATMX_CHECK failure hook. Internal if already installed; IoError if a
  // handler cannot be installed. The no-argument overload uses default
  // Options (a default argument would need Options' NSDMIs complete
  // inside the enclosing class, which gcc rejects).
  [[nodiscard]] Status Install(const Options& options);
  [[nodiscard]] Status Install() { return Install(Options()); }

  // Restores the saved signal dispositions and check hook. Test support.
  void Uninstall();

  bool installed() const {
    return installed_.load(std::memory_order_acquire);
  }

  // Re-renders the JSON body from the current trace/metrics/decisions/
  // mem-tracker state into the inactive buffer and publishes it. NOT
  // async-signal-safe (allocates, takes registry locks) — called from
  // normal threads only; no-op while a dump is in progress or when not
  // installed.
  void Refresh();

  // Renders a fresh body and writes the dump file now, with `reason` in
  // place of "signal"/"check". Test hook for validating the file format
  // without crashing the process.
  [[nodiscard]] Status DumpNow(const std::string& reason);

  // The pre-rendered dump path ("" before Install).
  std::string DumpPath() const;

 private:
  static void SignalHandler(int sig);
  static void CheckHook();

  // The handler body: claims the dumped flag, writes the file. `sig` 0
  // for the check-failure path. Async-signal-safe.
  void DumpFromHandler(int sig, const char* reason);

  // Writes prefix + active body + "}" to path_. Returns false on any
  // short write / open failure. Async-signal-safe.
  bool WriteDumpFile(int sig, const char* reason);

  mutable Mutex mu_;
  Options options_ ATMX_GUARDED_BY(mu_);
  // Double buffer: Refresh renders into the string active_ does not point
  // at, then publishes it. The handler reads only through active_.
  std::string bodies_[2] ATMX_GUARDED_BY(mu_);
  std::atomic<const std::string*> active_{nullptr};

  std::atomic<bool> installed_{false};
  // Set (exchange) by the first dump; later fatal signals skip straight
  // to re-raise, and Refresh stops touching the buffers.
  std::atomic<bool> dumped_{false};

  // Pre-rendered NUL-terminated dump path; written once during Install
  // (before any handler can run), read lock-free by the handler.
  char path_[512] = {0};
};

}  // namespace atmx::obs

#endif  // ATMX_OBS_FLIGHT_RECORDER_H_
