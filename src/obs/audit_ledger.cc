#include "obs/audit_ledger.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "kernels/kernel_common.h"
#include "kernels/simd/simd_kernels.h"
#include "kernels/sparse_accumulator.h"
#include "obs/metrics.h"
#include "ops/optimizer.h"

namespace atmx::obs {

namespace {

// Shortest-round-trip double formatting: the counterfactual replay must
// see exactly the values the recording process decided with, so ledger
// doubles are written with full precision (unlike the %.6g decision-log
// renderings, which are display-only).
std::string FmtD(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

std::string FmtU64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

const std::vector<double>& ErrBounds() {
  // Relative errors live in [0, 1]; log-ish spacing resolves both the
  // well-calibrated bulk and the catastrophic tail.
  static const std::vector<double> bounds{0.001, 0.005, 0.01, 0.05,
                                          0.1,   0.25,  0.5,  1.0};
  return bounds;
}

const char* KernelNameOrMixed(int kernel) {
  if (kernel < 0 || kernel >= kNumKernelTypes) return "mixed";
  return KernelTypeName(static_cast<KernelType>(kernel));
}

int KernelFromName(std::string_view name) {
  for (int i = 0; i < kNumKernelTypes; ++i) {
    if (name == KernelTypeName(static_cast<KernelType>(i))) return i;
  }
  return -1;
}

// Recovers the {a,b,c} representation bits a KernelType encodes.
bool DecodeKernel(int kernel, bool* a_dense, bool* b_dense, bool* c_dense) {
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      for (int c = 0; c < 2; ++c) {
        if (static_cast<int>(MakeKernelType(a != 0, b != 0, c != 0)) ==
            kernel) {
          *a_dense = a != 0;
          *b_dense = b != 0;
          *c_dense = c != 0;
          return true;
        }
      }
    }
  }
  return false;
}

}  // namespace

double SymmetricRelError(double predicted, double actual) {
  if (predicted == actual) return 0.0;
  const double denom = std::max(predicted, actual);
  if (denom <= 0.0) return 0.0;
  return std::abs(predicted - actual) / denom;
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = std::ceil(q * static_cast<double>(values.size())) - 1.0;
  const std::size_t idx = static_cast<std::size_t>(std::max(0.0, rank));
  return values[std::min(idx, values.size() - 1)];
}

// ---- AuditLedger ----

AuditLedger& AuditLedger::Global() {
  static AuditLedger* ledger = new AuditLedger();
  return *ledger;
}

void AuditLedger::SetCostParams(const CostParams& params) {
  MutexLock lock(mutex_);
  doc_.cost_params = params;
  doc_.have_cost_params = true;
}

void AuditLedger::RecordDensity(const DensityAuditRecord& r) {
  static Histogram& hist = MetricsRegistry::Global().GetHistogram(
      "estimator.err.density", ErrBounds());
  hist.Observe(SymmetricRelError(r.predicted, r.actual));
  MutexLock lock(mutex_);
  Append(doc_.density, r);
}

void AuditLedger::RecordCost(const CostAuditRecord& r) {
  static Histogram& hist = MetricsRegistry::Global().GetHistogram(
      "estimator.err.cost", ErrBounds());
  double err = -1.0;
  {
    MutexLock lock(mutex_);
    if (r.predicted_cost > 0.0 && r.measured_seconds > 0.0) {
      // The live histogram scales model units to seconds with the run's
      // running fit; the offline report refits over the whole ledger.
      cost_pred_sum_ += r.predicted_cost;
      cost_seconds_sum_ += r.measured_seconds;
      const double scale = cost_seconds_sum_ / cost_pred_sum_;
      err = SymmetricRelError(r.predicted_cost * scale, r.measured_seconds);
    }
    Append(doc_.cost, r);
  }
  if (err >= 0.0) hist.Observe(err);
}

void AuditLedger::RecordWaterLevel(const WaterLevelAuditRecord& r) {
  static Histogram& hist = MetricsRegistry::Global().GetHistogram(
      "estimator.err.waterlevel", ErrBounds());
  hist.Observe(SymmetricRelError(static_cast<double>(r.projected_bytes),
                                 static_cast<double>(r.result_bytes)));
  MutexLock lock(mutex_);
  Append(doc_.waterlevel, r);
}

void AuditLedger::RecordSpaMode(const SpaModeAuditRecord& r) {
  static Histogram& hist = MetricsRegistry::Global().GetHistogram(
      "estimator.err.spa_mode", ErrBounds());
  if (r.predicted_row_nnz >= 0.0) {
    hist.Observe(SymmetricRelError(r.predicted_row_nnz, r.actual_row_nnz));
  }
  MutexLock lock(mutex_);
  Append(doc_.spa_mode, r);
}

void AuditLedger::RecordRepr(const ReprAuditRecord& r) {
  static Histogram& hist = MetricsRegistry::Global().GetHistogram(
      "estimator.err.repr", ErrBounds());
  if (r.rho_c_actual >= 0.0) {
    hist.Observe(SymmetricRelError(r.rho_c_pred, r.rho_c_actual));
  }
  MutexLock lock(mutex_);
  Append(doc_.repr, r);
}

void AuditLedger::RecordChain(const ChainAuditRecord& r) {
  static Histogram& hist = MetricsRegistry::Global().GetHistogram(
      "estimator.err.chain", ErrBounds());
  if (r.planned_cost > 0.0 && r.alternative_cost > 0.0) {
    // Plan-vs-alternative is a unitless cost ratio; no time fit needed
    // for the live signal.
    hist.Observe(SymmetricRelError(r.planned_cost, r.alternative_cost));
  }
  MutexLock lock(mutex_);
  Append(doc_.chain, r);
}

AuditLedgerDoc AuditLedger::Snapshot() const {
  MutexLock lock(mutex_);
  AuditLedgerDoc copy = doc_;
  copy.git_sha = GitShaFromEnv();
  return copy;
}

void AuditLedger::Clear() {
  MutexLock lock(mutex_);
  doc_ = AuditLedgerDoc();
  cost_pred_sum_ = 0.0;
  cost_seconds_sum_ = 0.0;
}

std::string AuditLedger::ToJson() const {
  return RenderAuditLedgerJson(Snapshot());
}

Status AuditLedger::WriteJson(const std::string& path) const {
  // Snapshot() confines the mutex to the copy; everything below runs
  // lock-free (enforced by tools/atmx_lint.py no-lock-across-file-io).
  const std::string json = RenderAuditLedgerJson(Snapshot());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("audit: cannot open " + path);
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::IoError("audit: short write to " + path);
  }
  return Status::Ok();
}

void AuditLedger::ArmOutput(std::string path) {
  {
    MutexLock lock(mutex_);
    armed_path_ = std::move(path);
  }
  SetEnabled(true);
}

bool AuditLedger::armed() const {
  MutexLock lock(mutex_);
  return !armed_path_.empty();
}

Status AuditLedger::FlushArmed() const {
  std::string path;
  {
    MutexLock lock(mutex_);
    path = armed_path_;
  }
  if (path.empty()) {
    return Status::InvalidArgument("audit: no output armed");
  }
  return WriteJson(path);
}

// ---- Serialization ----

namespace {

void RenderDensity(std::ostringstream& os, const DensityAuditRecord& r) {
  os << "{\"op\":" << FmtU64(r.op) << ",\"bi\":" << r.bi << ",\"bj\":" << r.bj
     << ",\"pred\":" << FmtD(r.predicted) << ",\"actual\":" << FmtD(r.actual)
     << '}';
}

void RenderCost(std::ostringstream& os, const CostAuditRecord& r) {
  os << "{\"op\":" << FmtU64(r.op) << ",\"ti\":" << r.ti << ",\"tj\":" << r.tj
     << ",\"pred_cost\":" << FmtD(r.predicted_cost)
     << ",\"seconds\":" << FmtD(r.measured_seconds)
     << ",\"cpu_ns\":" << FmtD(r.measured_cpu_ns)
     << ",\"cycles\":" << FmtU64(r.measured_cycles) << ",\"kernel\":\""
     << KernelNameOrMixed(r.kernel) << "\"}";
}

void RenderWaterLevel(std::ostringstream& os,
                      const WaterLevelAuditRecord& r) {
  os << "{\"op\":" << FmtU64(r.op) << ",\"rho_w\":" << FmtD(r.rho_w)
     << ",\"projected_bytes\":" << FmtU64(r.projected_bytes)
     << ",\"result_bytes\":" << FmtU64(r.result_bytes)
     << ",\"high_water_bytes\":" << FmtU64(r.high_water_bytes)
     << ",\"feasible\":" << (r.feasible ? "true" : "false") << '}';
}

void RenderSpaMode(std::ostringstream& os, const SpaModeAuditRecord& r) {
  os << "{\"op\":" << FmtU64(r.op) << ",\"ti\":" << r.ti << ",\"tj\":" << r.tj
     << ",\"width\":" << r.width
     << ",\"pred_row_nnz\":" << FmtD(r.predicted_row_nnz)
     << ",\"actual_row_nnz\":" << FmtD(r.actual_row_nnz) << ",\"mode\":\""
     << (r.chosen_mode == static_cast<int>(SparseAccumulator::Mode::kHash)
             ? "hash"
             : "dense")
     << "\"}";
}

void RenderRepr(std::ostringstream& os, const ReprAuditRecord& r) {
  os << "{\"op\":" << FmtU64(r.op) << ",\"ti\":" << r.ti << ",\"tj\":" << r.tj
     << ",\"k0\":" << r.k0 << ",\"k1\":" << r.k1 << ",\"m\":" << r.m
     << ",\"k\":" << r.k << ",\"n\":" << r.n
     << ",\"rho_a\":" << FmtD(r.rho_a) << ",\"rho_b\":" << FmtD(r.rho_b)
     << ",\"rho_c_pred\":" << FmtD(r.rho_c_pred)
     << ",\"rho_c_actual\":" << FmtD(r.rho_c_actual)
     << ",\"rho_w\":" << FmtD(r.rho_w)
     << ",\"a_stored_dense\":" << (r.a_stored_dense ? "true" : "false")
     << ",\"b_stored_dense\":" << (r.b_stored_dense ? "true" : "false")
     << ",\"a_cached\":" << (r.a_cached ? "true" : "false")
     << ",\"b_cached\":" << (r.b_cached ? "true" : "false")
     << ",\"allow_conversion\":" << (r.allow_conversion ? "true" : "false")
     << ",\"c_dense\":" << (r.c_dense ? "true" : "false") << ",\"kernel\":\""
     << KernelNameOrMixed(r.kernel)
     << "\",\"stored_cost\":" << FmtD(r.stored_cost)
     << ",\"chosen_cost\":" << FmtD(r.chosen_cost) << '}';
}

void RenderChain(std::ostringstream& os, const ChainAuditRecord& r) {
  os << "{\"op\":" << FmtU64(r.op)
     << ",\"planned_cost\":" << FmtD(r.planned_cost)
     << ",\"alternative_cost\":" << FmtD(r.alternative_cost)
     << ",\"fused\":" << (r.fused ? "true" : "false")
     << ",\"seconds\":" << FmtD(r.measured_seconds)
     << ",\"budget_bytes\":" << FmtU64(r.budget_bytes)
     << ",\"resident_peak_bytes\":" << FmtU64(r.resident_peak_bytes)
     << ",\"rho_w\":[";
  for (std::size_t i = 0; i < r.rho_w.size(); ++i) {
    if (i > 0) os << ',';
    os << FmtD(r.rho_w[i]);
  }
  os << "]}";
}

template <typename Record, typename Renderer>
void RenderArray(std::ostringstream& os, const char* name,
                 const std::vector<Record>& records, Renderer render) {
  os << ",\"" << name << "\":[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i > 0) os << ",\n";
    render(os, records[i]);
  }
  os << ']';
}

}  // namespace

std::string RenderAuditLedgerJson(const AuditLedgerDoc& doc) {
  std::ostringstream os;
  os << "{\"schema_version\":" << doc.schema_version
     << ",\"kind\":\"atmx_audit_ledger\",\"git_sha\":\""
     << EscapeJson(doc.git_sha.empty() ? GitShaFromEnv() : doc.git_sha)
     << "\",\"unix_time\":"
     << static_cast<long long>(std::time(nullptr))
     << ",\"spmm_max_panel_cols\":" << simd::kSpmmMaxPanelCols
     << ",\"dropped\":" << FmtU64(doc.dropped);
  if (doc.have_cost_params) {
    const CostParams& p = doc.cost_params;
    os << ",\"cost_params\":{\"c_ddd\":" << FmtD(p.c_ddd)
       << ",\"c_sdd\":" << FmtD(p.c_sdd)
       << ",\"c_sdd_panel\":" << FmtD(p.c_sdd_panel)
       << ",\"c_dsd\":" << FmtD(p.c_dsd) << ",\"c_ssd\":" << FmtD(p.c_ssd)
       << ",\"row_overhead\":" << FmtD(p.row_overhead)
       << ",\"dense_write\":" << FmtD(p.dense_write)
       << ",\"sparse_write\":" << FmtD(p.sparse_write)
       << ",\"sparse_sort\":" << FmtD(p.sparse_sort)
       << ",\"convert_sparse_to_dense\":" << FmtD(p.convert_sparse_to_dense)
       << ",\"convert_dense_to_sparse\":" << FmtD(p.convert_dense_to_sparse)
       << '}';
  }
  RenderArray(os, "density", doc.density, RenderDensity);
  RenderArray(os, "cost", doc.cost, RenderCost);
  RenderArray(os, "waterlevel", doc.waterlevel, RenderWaterLevel);
  RenderArray(os, "spa_mode", doc.spa_mode, RenderSpaMode);
  RenderArray(os, "repr", doc.repr, RenderRepr);
  RenderArray(os, "chain", doc.chain, RenderChain);
  os << '}';
  return os.str();
}

namespace {

index_t IndexField(const JsonValue& v, std::string_view key) {
  return static_cast<index_t>(v.NumberOr(key, 0.0));
}

std::uint64_t U64Field(const JsonValue& v, std::string_view key) {
  return static_cast<std::uint64_t>(v.NumberOr(key, 0.0));
}

}  // namespace

Result<AuditLedgerDoc> ParseAuditLedgerJson(std::string_view text) {
  Result<JsonValue> parsed = ParseJson(text);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = parsed.value();
  if (!root.is_object()) {
    return Status::InvalidArgument("audit: ledger root is not an object");
  }
  if (root.StringOr("kind", "") != "atmx_audit_ledger") {
    return Status::InvalidArgument("audit: not an atmx_audit_ledger document");
  }
  const int version = static_cast<int>(root.NumberOr("schema_version", 0.0));
  if (version != kAuditLedgerSchemaVersion) {
    return Status::InvalidArgument(
        "audit: unsupported schema_version " + std::to_string(version));
  }
  AuditLedgerDoc doc;
  doc.schema_version = version;
  doc.git_sha = root.StringOr("git_sha", "unknown");
  doc.dropped = U64Field(root, "dropped");
  if (const JsonValue* p = root.Find("cost_params");
      p != nullptr && p->is_object()) {
    CostParams defaults;
    doc.cost_params.c_ddd = p->NumberOr("c_ddd", defaults.c_ddd);
    doc.cost_params.c_sdd = p->NumberOr("c_sdd", defaults.c_sdd);
    doc.cost_params.c_sdd_panel =
        p->NumberOr("c_sdd_panel", defaults.c_sdd_panel);
    doc.cost_params.c_dsd = p->NumberOr("c_dsd", defaults.c_dsd);
    doc.cost_params.c_ssd = p->NumberOr("c_ssd", defaults.c_ssd);
    doc.cost_params.row_overhead =
        p->NumberOr("row_overhead", defaults.row_overhead);
    doc.cost_params.dense_write =
        p->NumberOr("dense_write", defaults.dense_write);
    doc.cost_params.sparse_write =
        p->NumberOr("sparse_write", defaults.sparse_write);
    doc.cost_params.sparse_sort =
        p->NumberOr("sparse_sort", defaults.sparse_sort);
    doc.cost_params.convert_sparse_to_dense =
        p->NumberOr("convert_sparse_to_dense",
                    defaults.convert_sparse_to_dense);
    doc.cost_params.convert_dense_to_sparse =
        p->NumberOr("convert_dense_to_sparse",
                    defaults.convert_dense_to_sparse);
    doc.have_cost_params = true;
  }
  if (const JsonValue* arr = root.Find("density");
      arr != nullptr && arr->is_array()) {
    for (const JsonValue& v : arr->array) {
      DensityAuditRecord r;
      r.op = U64Field(v, "op");
      r.bi = IndexField(v, "bi");
      r.bj = IndexField(v, "bj");
      r.predicted = v.NumberOr("pred", 0.0);
      r.actual = v.NumberOr("actual", 0.0);
      doc.density.push_back(r);
    }
  }
  if (const JsonValue* arr = root.Find("cost");
      arr != nullptr && arr->is_array()) {
    for (const JsonValue& v : arr->array) {
      CostAuditRecord r;
      r.op = U64Field(v, "op");
      r.ti = IndexField(v, "ti");
      r.tj = IndexField(v, "tj");
      r.predicted_cost = v.NumberOr("pred_cost", 0.0);
      r.measured_seconds = v.NumberOr("seconds", 0.0);
      r.measured_cpu_ns = v.NumberOr("cpu_ns", 0.0);
      r.measured_cycles = U64Field(v, "cycles");
      r.kernel = KernelFromName(v.StringOr("kernel", "mixed"));
      doc.cost.push_back(r);
    }
  }
  if (const JsonValue* arr = root.Find("waterlevel");
      arr != nullptr && arr->is_array()) {
    for (const JsonValue& v : arr->array) {
      WaterLevelAuditRecord r;
      r.op = U64Field(v, "op");
      r.rho_w = v.NumberOr("rho_w", 0.0);
      r.projected_bytes = U64Field(v, "projected_bytes");
      r.result_bytes = U64Field(v, "result_bytes");
      r.high_water_bytes = U64Field(v, "high_water_bytes");
      r.feasible = v.BoolOr("feasible", true);
      doc.waterlevel.push_back(r);
    }
  }
  if (const JsonValue* arr = root.Find("spa_mode");
      arr != nullptr && arr->is_array()) {
    for (const JsonValue& v : arr->array) {
      SpaModeAuditRecord r;
      r.op = U64Field(v, "op");
      r.ti = IndexField(v, "ti");
      r.tj = IndexField(v, "tj");
      r.width = IndexField(v, "width");
      r.predicted_row_nnz = v.NumberOr("pred_row_nnz", -1.0);
      r.actual_row_nnz = v.NumberOr("actual_row_nnz", 0.0);
      r.chosen_mode =
          v.StringOr("mode", "dense") == "hash"
              ? static_cast<int>(SparseAccumulator::Mode::kHash)
              : static_cast<int>(SparseAccumulator::Mode::kDense);
      doc.spa_mode.push_back(r);
    }
  }
  if (const JsonValue* arr = root.Find("repr");
      arr != nullptr && arr->is_array()) {
    for (const JsonValue& v : arr->array) {
      ReprAuditRecord r;
      r.op = U64Field(v, "op");
      r.ti = IndexField(v, "ti");
      r.tj = IndexField(v, "tj");
      r.k0 = IndexField(v, "k0");
      r.k1 = IndexField(v, "k1");
      r.m = IndexField(v, "m");
      r.k = IndexField(v, "k");
      r.n = IndexField(v, "n");
      r.rho_a = v.NumberOr("rho_a", 0.0);
      r.rho_b = v.NumberOr("rho_b", 0.0);
      r.rho_c_pred = v.NumberOr("rho_c_pred", 0.0);
      r.rho_c_actual = v.NumberOr("rho_c_actual", -1.0);
      r.rho_w = v.NumberOr("rho_w", 0.0);
      r.a_stored_dense = v.BoolOr("a_stored_dense", false);
      r.b_stored_dense = v.BoolOr("b_stored_dense", false);
      r.a_cached = v.BoolOr("a_cached", false);
      r.b_cached = v.BoolOr("b_cached", false);
      r.allow_conversion = v.BoolOr("allow_conversion", false);
      r.c_dense = v.BoolOr("c_dense", false);
      r.kernel = KernelFromName(v.StringOr("kernel", ""));
      r.stored_cost = v.NumberOr("stored_cost", 0.0);
      r.chosen_cost = v.NumberOr("chosen_cost", 0.0);
      doc.repr.push_back(r);
    }
  }
  if (const JsonValue* arr = root.Find("chain");
      arr != nullptr && arr->is_array()) {
    for (const JsonValue& v : arr->array) {
      ChainAuditRecord r;
      r.op = U64Field(v, "op");
      r.planned_cost = v.NumberOr("planned_cost", 0.0);
      r.alternative_cost = v.NumberOr("alternative_cost", 0.0);
      r.fused = v.BoolOr("fused", false);
      r.measured_seconds = v.NumberOr("seconds", 0.0);
      r.budget_bytes = U64Field(v, "budget_bytes");
      r.resident_peak_bytes = U64Field(v, "resident_peak_bytes");
      if (const JsonValue* rw = v.Find("rho_w");
          rw != nullptr && rw->is_array()) {
        for (const JsonValue& t : rw->array) {
          r.rho_w.push_back(t.is_number() ? t.number_value : 0.0);
        }
      }
      doc.chain.push_back(r);
    }
  }
  return doc;
}

Result<AuditLedgerDoc> LoadAuditLedger(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("audit: cannot open " + path);
  }
  std::string text;
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IoError("audit: read failed for " + path);
  }
  return ParseAuditLedgerJson(text);
}

// ---- Report ----

namespace {

AuditErrorStats StatsOf(const std::vector<double>& errs) {
  AuditErrorStats s;
  s.count = errs.size();
  if (errs.empty()) return s;
  double sum = 0.0;
  for (const double e : errs) {
    sum += e;
    s.max = std::max(s.max, e);
  }
  s.mean = sum / static_cast<double>(errs.size());
  s.p50 = Percentile(errs, 0.50);
  s.p95 = Percentile(errs, 0.95);
  return s;
}

// Fits seconds-per-cost-unit over records where both sides are positive.
double FitScale(double pred_sum, double seconds_sum) {
  return pred_sum > 0.0 ? seconds_sum / pred_sum : 0.0;
}

}  // namespace

AuditReport BuildAuditReport(const AuditLedgerDoc& doc, std::size_t worst_n) {
  AuditReport rep;
  std::vector<AuditWorstEntry> worst_all;
  const auto push_worst = [&worst_all](const char* clazz, std::uint64_t op,
                                       index_t ti, index_t tj, double pred,
                                       double actual, double err) {
    worst_all.push_back({clazz, op, ti, tj, pred, actual, err});
  };

  {
    std::vector<double> errs;
    errs.reserve(doc.density.size());
    for (const DensityAuditRecord& r : doc.density) {
      const double err = SymmetricRelError(r.predicted, r.actual);
      errs.push_back(err);
      push_worst("density", r.op, r.bi, r.bj, r.predicted, r.actual, err);
    }
    rep.density = StatsOf(errs);
  }

  {
    double pred_sum = 0.0, seconds_sum = 0.0;
    for (const CostAuditRecord& r : doc.cost) {
      if (r.predicted_cost > 0.0 && r.measured_seconds > 0.0) {
        pred_sum += r.predicted_cost;
        seconds_sum += r.measured_seconds;
      }
    }
    rep.cost_scale = FitScale(pred_sum, seconds_sum);
    std::vector<double> errs;
    for (const CostAuditRecord& r : doc.cost) {
      if (r.predicted_cost <= 0.0 || r.measured_seconds <= 0.0) continue;
      const double scaled = r.predicted_cost * rep.cost_scale;
      const double err = SymmetricRelError(scaled, r.measured_seconds);
      errs.push_back(err);
      push_worst("cost", r.op, r.ti, r.tj, scaled, r.measured_seconds, err);
    }
    rep.cost = StatsOf(errs);
  }

  {
    std::vector<double> errs;
    errs.reserve(doc.waterlevel.size());
    for (const WaterLevelAuditRecord& r : doc.waterlevel) {
      if (!r.feasible) ++rep.waterlevel_infeasible;
      const double err =
          SymmetricRelError(static_cast<double>(r.projected_bytes),
                            static_cast<double>(r.result_bytes));
      errs.push_back(err);
      push_worst("waterlevel", r.op, 0, 0,
                 static_cast<double>(r.projected_bytes),
                 static_cast<double>(r.result_bytes), err);
    }
    rep.waterlevel = StatsOf(errs);
  }

  {
    std::vector<double> errs;
    for (const SpaModeAuditRecord& r : doc.spa_mode) {
      if (r.predicted_row_nnz < 0.0) continue;
      ++rep.spa_considered;
      const double err =
          SymmetricRelError(r.predicted_row_nnz, r.actual_row_nnz);
      errs.push_back(err);
      push_worst("spa_mode", r.op, r.ti, r.tj, r.predicted_row_nnz,
                 r.actual_row_nnz, err);
      const auto replayed =
          SparseAccumulator::ChooseMode(r.width, r.actual_row_nnz);
      if (static_cast<int>(replayed) != r.chosen_mode) ++rep.spa_regret;
    }
    rep.spa_mode = StatsOf(errs);
  }

  {
    const CostModel model(doc.cost_params);
    std::vector<double> errs;
    for (const ReprAuditRecord& r : doc.repr) {
      if (r.rho_c_actual < 0.0) continue;
      bool la = false, lb = false, lc = false;
      if (!DecodeKernel(r.kernel, &la, &lb, &lc)) continue;
      ++rep.repr_considered;
      const double err = SymmetricRelError(r.rho_c_pred, r.rho_c_actual);
      errs.push_back(err);
      push_worst("repr", r.op, r.ti, r.tj, r.rho_c_pred, r.rho_c_actual,
                 err);
      // Counterfactual: what would the optimizer have done with the
      // measured result density? Replays the production decision rule
      // (c_dense iff rho_c >= rho_w, then DecidePairRepresentations).
      const bool c_dense_cf = r.rho_c_actual >= r.rho_w;
      MultiplyShape shape_cf;
      shape_cf.m = r.m;
      shape_cf.k = r.k;
      shape_cf.n = r.n;
      shape_cf.rho_a = r.rho_a;
      shape_cf.rho_b = r.rho_b;
      shape_cf.rho_c = r.rho_c_actual;
      const PairDecision cf = DecidePairRepresentations(
          model, shape_cf, r.a_stored_dense, r.b_stored_dense, r.a_cached,
          r.b_cached, c_dense_cf, r.allow_conversion);
      const KernelType cf_kernel =
          MakeKernelType(cf.a_dense, cf.b_dense, c_dense_cf);
      if (static_cast<int>(cf_kernel) != r.kernel) {
        ++rep.repr_regret;
        // Cost-unit gap of the logged choice re-priced under measured
        // inputs against the counterfactual optimum.
        double logged_cost =
            model.ComputeCost(MakeKernelType(la, lb, c_dense_cf), shape_cf);
        if (la != r.a_stored_dense && !r.a_cached) {
          logged_cost += model.ConversionCost(la, r.m, r.k, r.rho_a);
        }
        if (lb != r.b_stored_dense && !r.b_cached) {
          logged_cost += model.ConversionCost(lb, r.k, r.n, r.rho_b);
        }
        rep.repr_regret_cost +=
            std::max(0.0, logged_cost - cf.projected_cost);
      }
    }
    rep.repr = StatsOf(errs);
  }

  {
    double pred_sum = 0.0, seconds_sum = 0.0;
    for (const ChainAuditRecord& r : doc.chain) {
      if (r.planned_cost > 0.0 && r.measured_seconds > 0.0) {
        pred_sum += r.planned_cost;
        seconds_sum += r.measured_seconds;
      }
    }
    rep.chain_scale = FitScale(pred_sum, seconds_sum);
    std::vector<double> errs;
    for (const ChainAuditRecord& r : doc.chain) {
      if (r.planned_cost <= 0.0 || r.measured_seconds <= 0.0) continue;
      const double scaled = r.planned_cost * rep.chain_scale;
      const double err = SymmetricRelError(scaled, r.measured_seconds);
      errs.push_back(err);
      push_worst("chain", r.op, 0, 0, scaled, r.measured_seconds, err);
    }
    rep.chain = StatsOf(errs);
  }

  // Deterministic worst-N ordering: error descending, then class / op /
  // coordinates ascending (ties happen — many exact-0 blocks).
  std::sort(worst_all.begin(), worst_all.end(),
            [](const AuditWorstEntry& a, const AuditWorstEntry& b) {
              return std::make_tuple(-a.err, std::string_view(a.decision_class),
                                     a.op, a.ti, a.tj) <
                     std::make_tuple(-b.err, std::string_view(b.decision_class),
                                     b.op, b.ti, b.tj);
            });
  if (worst_all.size() > worst_n) worst_all.resize(worst_n);
  rep.worst = std::move(worst_all);
  return rep;
}

std::string RenderAuditReportText(const AuditReport& rep) {
  std::ostringstream os;
  const auto line = [&os](const char* name, const AuditErrorStats& s) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%-10s count=%zu p50=%.4f p95=%.4f max=%.4f mean=%.4f\n",
                  name, s.count, s.p50, s.p95, s.max, s.mean);
    os << buf;
  };
  os << "prediction audit: per-class relative error\n";
  line("density", rep.density);
  line("cost", rep.cost);
  line("waterlevel", rep.waterlevel);
  line("spa_mode", rep.spa_mode);
  line("repr", rep.repr);
  line("chain", rep.chain);
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "counterfactual: repr regret %zu/%zu (cost-unit gap %.1f), "
                "spa_mode regret %zu/%zu\n",
                rep.repr_regret, rep.repr_considered, rep.repr_regret_cost,
                rep.spa_regret, rep.spa_considered);
  os << buf;
  if (rep.waterlevel_infeasible > 0) {
    std::snprintf(buf, sizeof(buf),
                  "waterlevel: %zu/%zu records under an infeasible memory "
                  "SLA (threshold clamped to floor)\n",
                  rep.waterlevel_infeasible, rep.waterlevel.count);
    os << buf;
  }
  if (rep.cost_scale > 0.0) {
    std::snprintf(buf, sizeof(buf), "fitted cost scale: %.3g s/unit\n",
                  rep.cost_scale);
    os << buf;
  }
  if (!rep.worst.empty()) {
    os << "worst mispredictions:\n";
    for (const AuditWorstEntry& w : rep.worst) {
      std::snprintf(buf, sizeof(buf),
                    "  %-10s op=%llu tile=(%lld,%lld) pred=%.6g "
                    "actual=%.6g err=%.4f\n",
                    w.decision_class.c_str(),
                    static_cast<unsigned long long>(w.op),
                    static_cast<long long>(w.ti),
                    static_cast<long long>(w.tj), w.predicted, w.actual,
                    w.err);
      os << buf;
    }
  }
  return os.str();
}

// ---- Gate ----

namespace {

struct ClassView {
  const char* name;
  const AuditErrorStats* stats;
};

void CheckBound(std::ostringstream& os, const char* clazz, const char* bound,
                double measured, const JsonValue& envelope, bool* ok,
                int* regressions) {
  const JsonValue* limit = envelope.Find(bound);
  if (limit == nullptr || !limit->is_number()) return;
  const bool pass = measured <= limit->number_value;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "audit-gate: %s %s %.4f <= %.4f %s\n",
                clazz, bound, measured, limit->number_value,
                pass ? "OK" : "REGRESSION");
  os << buf;
  if (!pass) {
    *ok = false;
    ++*regressions;
  }
}

void CheckFraction(std::ostringstream& os, const char* what,
                   std::size_t regret, std::size_t considered,
                   const JsonValue& baseline, const char* key, bool* ok,
                   int* regressions) {
  const JsonValue* limit = baseline.Find(key);
  if (limit == nullptr || !limit->is_number()) return;
  if (considered == 0) {
    os << "audit-gate: " << what << " SKIP (no decisions)\n";
    return;
  }
  const double fraction =
      static_cast<double>(regret) / static_cast<double>(considered);
  const bool pass = fraction <= limit->number_value;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "audit-gate: %s %.4f <= %.4f %s\n", what,
                fraction, limit->number_value, pass ? "OK" : "REGRESSION");
  os << buf;
  if (!pass) {
    *ok = false;
    ++*regressions;
  }
}

}  // namespace

AuditGateResult EvaluateAuditGate(const AuditReport& report,
                                  const JsonValue& baseline) {
  AuditGateResult result;
  std::ostringstream os;
  if (!baseline.is_object() ||
      baseline.StringOr("kind", "") != "atmx_audit_baseline" ||
      static_cast<int>(baseline.NumberOr("schema_version", 0.0)) !=
          kAuditLedgerSchemaVersion) {
    result.ok = false;
    result.regressions = 1;
    result.text = "audit-gate: baseline is not a valid atmx_audit_baseline "
                  "document\n";
    return result;
  }
  const ClassView classes[] = {
      {"density", &report.density},   {"cost", &report.cost},
      {"waterlevel", &report.waterlevel}, {"spa_mode", &report.spa_mode},
      {"repr", &report.repr},         {"chain", &report.chain},
  };
  const JsonValue* envelopes = baseline.Find("classes");
  if (envelopes != nullptr && envelopes->is_object()) {
    for (const ClassView& c : classes) {
      const JsonValue* envelope = envelopes->Find(c.name);
      if (envelope == nullptr || !envelope->is_object()) continue;
      if (c.stats->count == 0) {
        os << "audit-gate: " << c.name << " SKIP (no records)\n";
        continue;
      }
      CheckBound(os, c.name, "p50", c.stats->p50, *envelope, &result.ok,
                 &result.regressions);
      CheckBound(os, c.name, "p95", c.stats->p95, *envelope, &result.ok,
                 &result.regressions);
      CheckBound(os, c.name, "max", c.stats->max, *envelope, &result.ok,
                 &result.regressions);
    }
  }
  CheckFraction(os, "repr_regret_fraction", report.repr_regret,
                report.repr_considered, baseline, "max_repr_regret_fraction",
                &result.ok, &result.regressions);
  CheckFraction(os, "spa_regret_fraction", report.spa_regret,
                report.spa_considered, baseline, "max_spa_regret_fraction",
                &result.ok, &result.regressions);
  result.text = os.str();
  return result;
}

std::string RenderAuditEnvelopeJson(const AuditReport& report,
                                    double margin) {
  // Near-zero measurements get an absolute slack floor so the envelope
  // stays holdable run-to-run; error bounds are capped at 1.0 (the
  // symmetric error ceiling) except `max`, which 1.0 would make
  // unfalsifiable — it keeps the margined value.
  const auto bound = [margin](double measured, double floor_abs) {
    return std::max(measured * margin, floor_abs);
  };
  std::ostringstream os;
  os << "{\"schema_version\":" << kAuditLedgerSchemaVersion
     << ",\n \"kind\":\"atmx_audit_baseline\",\n \"classes\":{";
  const ClassView classes[] = {
      {"density", &report.density},   {"cost", &report.cost},
      {"waterlevel", &report.waterlevel}, {"spa_mode", &report.spa_mode},
      {"repr", &report.repr},         {"chain", &report.chain},
  };
  bool first = true;
  for (const ClassView& c : classes) {
    if (c.stats->count == 0) continue;
    if (!first) os << ',';
    first = false;
    os << "\n  \"" << c.name
       << "\":{\"p50\":" << FmtD(std::min(1.0, bound(c.stats->p50, 0.05)))
       << ",\"p95\":" << FmtD(std::min(1.0, bound(c.stats->p95, 0.10)))
       << ",\"max\":" << FmtD(bound(c.stats->max, 0.25)) << '}';
  }
  os << "\n },\n";
  const double repr_fraction =
      report.repr_considered > 0
          ? static_cast<double>(report.repr_regret) /
                static_cast<double>(report.repr_considered)
          : 0.0;
  const double spa_fraction =
      report.spa_considered > 0
          ? static_cast<double>(report.spa_regret) /
                static_cast<double>(report.spa_considered)
          : 0.0;
  os << " \"max_repr_regret_fraction\":"
     << FmtD(std::min(1.0, bound(repr_fraction, 0.05)))
     << ",\n \"max_spa_regret_fraction\":"
     << FmtD(std::min(1.0, bound(spa_fraction, 0.05))) << "\n}\n";
  return os.str();
}

namespace {

// Pushes `predicted` scale-x further away from `actual`: multiplied by
// `scale` when already over-predicting, divided when under-predicting.
// Blindly multiplying would *improve* a biased estimator whose
// predictions sit below the measurements — the negative test needs the
// error to worsen regardless of the bias direction.
double PushAway(double predicted, double actual, double scale, double cap) {
  const double moved =
      predicted >= actual ? predicted * scale : predicted / scale;
  return cap > 0.0 ? std::min(cap, moved) : moved;
}

}  // namespace

void InjectDensityMisestimate(AuditLedgerDoc* doc, double scale) {
  for (DensityAuditRecord& r : doc->density) {
    r.predicted = PushAway(r.predicted, r.actual, scale, 1.0);
  }
  for (ReprAuditRecord& r : doc->repr) {
    const double actual = r.rho_c_actual >= 0.0 ? r.rho_c_actual : 0.0;
    r.rho_c_pred = PushAway(r.rho_c_pred, actual, scale, 1.0);
  }
  for (SpaModeAuditRecord& r : doc->spa_mode) {
    if (r.predicted_row_nnz >= 0.0) {
      r.predicted_row_nnz =
          PushAway(r.predicted_row_nnz, r.actual_row_nnz, scale, 0.0);
    }
  }
}

}  // namespace atmx::obs
