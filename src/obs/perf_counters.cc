#include "obs/perf_counters.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "obs/metrics.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace atmx::obs {

namespace {

constexpr const char* kCounterNames[kNumPerfCounters] = {
    "cycles",      "instructions", "llc_loads",
    "llc_misses",  "dtlb_misses",  "task_clock_ns",
};

// Hardware events occupy the low bits; used to derive perf.hw_available.
constexpr std::uint32_t kHardwareMask =
    PerfCounterBit(PerfCounterId::kCycles) |
    PerfCounterBit(PerfCounterId::kInstructions) |
    PerfCounterBit(PerfCounterId::kLlcLoads) |
    PerfCounterBit(PerfCounterId::kLlcMisses) |
    PerfCounterBit(PerfCounterId::kDtlbMisses);

std::atomic<bool> g_collection_enabled{true};

#if defined(__linux__)

struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

constexpr std::uint64_t CacheConfig(std::uint64_t cache, std::uint64_t op,
                                    std::uint64_t result) {
  return cache | (op << 8) | (result << 16);
}

const EventSpec kEventSpecs[kNumPerfCounters] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HW_CACHE,
     CacheConfig(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                 PERF_COUNT_HW_CACHE_RESULT_ACCESS)},
    {PERF_TYPE_HW_CACHE,
     CacheConfig(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                 PERF_COUNT_HW_CACHE_RESULT_MISS)},
    {PERF_TYPE_HW_CACHE,
     CacheConfig(PERF_COUNT_HW_CACHE_DTLB, PERF_COUNT_HW_CACHE_OP_READ,
                 PERF_COUNT_HW_CACHE_RESULT_MISS)},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
};

// Opens one counter for the calling thread (pid=0, any cpu). Returns the
// fd or -1. exclude_kernel/hv keeps the open legal under
// perf_event_paranoid=2 (user-space-only measurement of own process).
int OpenCounter(int slot) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = kEventSpecs[slot].type;
  attr.config = kEventSpecs[slot].config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  const long fd = syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                          /*cpu=*/-1, /*group_fd=*/-1, /*flags=*/0UL);
  return fd < 0 ? -1 : static_cast<int>(fd);
}

#endif  // __linux__

// Probes each counter once on the first calling thread; publishes the
// availability gauges. The mask is what later per-thread opens attempt.
std::uint32_t ProbeOnce() {
  static const std::uint32_t mask = [] {
    std::uint32_t m = 0;
    const char* env = std::getenv("ATMX_PERF");
    const bool env_off = env != nullptr && env[0] == '0' && env[1] == '\0';
#if defined(__linux__)
    if (!env_off) {
      for (int slot = 0; slot < kNumPerfCounters; ++slot) {
        const int fd = OpenCounter(slot);
        if (fd >= 0) {
          m |= 1u << slot;
          close(fd);
        }
      }
    }
#else
    (void)env_off;
#endif
    MetricsRegistry::Global().GetGauge("perf.available").Set(m != 0 ? 1 : 0);
    MetricsRegistry::Global()
        .GetGauge("perf.hw_available")
        .Set((m & kHardwareMask) != 0 ? 1 : 0);
    return m;
  }();
  return mask;
}

}  // namespace

const char* PerfCounterName(PerfCounterId id) {
  return kCounterNames[static_cast<int>(id)];
}

bool PerfCountersAvailable() { return ProbeOnce() != 0; }

void SetPerfCollectionEnabled(bool enabled) {
  g_collection_enabled.store(enabled, std::memory_order_relaxed);
}

bool PerfCollectionActive() {
  return g_collection_enabled.load(std::memory_order_relaxed) &&
         PerfCountersAvailable();
}

PerfCounterSet::PerfCounterSet() {
  fds_.fill(-1);
#if defined(__linux__)
  const std::uint32_t mask = ProbeOnce();
  for (int slot = 0; slot < kNumPerfCounters; ++slot) {
    if ((mask & (1u << slot)) == 0) continue;
    fds_[static_cast<std::size_t>(slot)] = OpenCounter(slot);
    if (fds_[static_cast<std::size_t>(slot)] >= 0) {
      present_ |= 1u << slot;
    }
  }
#endif
}

PerfCounterSet::~PerfCounterSet() {
#if defined(__linux__)
  for (int fd : fds_) {
    if (fd >= 0) close(fd);
  }
#endif
}

PerfSnapshot PerfCounterSet::ReadNow() const {
  PerfSnapshot snap;
  if (present_ == 0) return snap;
#if defined(__linux__)
  for (int slot = 0; slot < kNumPerfCounters; ++slot) {
    const int fd = fds_[static_cast<std::size_t>(slot)];
    if (fd < 0) continue;
    // read_format: value, time_enabled, time_running.
    std::uint64_t buf[3] = {0, 0, 0};
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n != static_cast<ssize_t>(sizeof(buf))) continue;
    // Multiplex scaling: extrapolate to the full enabled window when the
    // PMU timeshared this counter with others.
    double value = static_cast<double>(buf[0]);
    if (buf[2] > 0 && buf[1] > buf[2]) {
      value *= static_cast<double>(buf[1]) / static_cast<double>(buf[2]);
    }
    snap.scaled[static_cast<std::size_t>(slot)] = value;
    snap.present |= 1u << slot;
  }
#endif
  snap.valid = snap.present != 0;
  return snap;
}

PerfCounterSet* ThreadPerfCounters() {
  if (!PerfCollectionActive()) return nullptr;
  thread_local std::unique_ptr<PerfCounterSet> set;
  if (set == nullptr) set = std::make_unique<PerfCounterSet>();
  return set->valid() ? set.get() : nullptr;
}

PerfSnapshot PerfBeginSnapshot() {
  PerfCounterSet* set = ThreadPerfCounters();
  return set != nullptr ? set->ReadNow() : PerfSnapshot{};
}

PerfDelta PerfDeltaSince(const PerfSnapshot& begin) {
  PerfDelta delta;
  if (!begin.valid) return delta;
  PerfCounterSet* set = ThreadPerfCounters();
  if (set == nullptr) return delta;
  const PerfSnapshot end = set->ReadNow();
  delta.present = begin.present & end.present;
  if (delta.present == 0) return delta;
  for (int slot = 0; slot < kNumPerfCounters; ++slot) {
    if ((delta.present & (1u << slot)) == 0) continue;
    const double d = end.scaled[static_cast<std::size_t>(slot)] -
                     begin.scaled[static_cast<std::size_t>(slot)];
    delta.value[static_cast<std::size_t>(slot)] =
        d > 0.0 ? static_cast<std::uint64_t>(d) : 0;
  }
  delta.valid = true;
  return delta;
}

void AppendPerfArgs(const PerfDelta& delta, std::vector<TraceArg>* args) {
  if (!delta.valid) return;
  for (int slot = 0; slot < kNumPerfCounters; ++slot) {
    if ((delta.present & (1u << slot)) == 0) continue;
    args->emplace_back(kCounterNames[slot],
                       delta.value[static_cast<std::size_t>(slot)]);
  }
}

void AccumulatePerfMetrics(const char* metric_prefix,
                           const PerfDelta& delta) {
  if (!delta.valid || metric_prefix == nullptr) return;
  MetricsRegistry& registry = MetricsRegistry::Global();
  const std::string prefix(metric_prefix);
  for (int slot = 0; slot < kNumPerfCounters; ++slot) {
    if ((delta.present & (1u << slot)) == 0) continue;
    registry.GetCounter(prefix + "." + kCounterNames[slot])
        .Add(delta.value[static_cast<std::size_t>(slot)]);
  }
  // Derived rates over the accumulated totals (not this delta alone), so
  // the gauges converge as samples accumulate.
  if (delta.has(PerfCounterId::kLlcLoads) &&
      delta.has(PerfCounterId::kLlcMisses)) {
    const std::uint64_t loads =
        registry.GetCounter(prefix + ".llc_loads").Value();
    const std::uint64_t misses =
        registry.GetCounter(prefix + ".llc_misses").Value();
    if (loads > 0) {
      registry.GetGauge(prefix + ".llc_miss_rate")
          .Set(static_cast<double>(misses) / static_cast<double>(loads));
    }
  }
  if (delta.has(PerfCounterId::kCycles) &&
      delta.has(PerfCounterId::kInstructions)) {
    const std::uint64_t cycles =
        registry.GetCounter(prefix + ".cycles").Value();
    const std::uint64_t instructions =
        registry.GetCounter(prefix + ".instructions").Value();
    if (cycles > 0) {
      registry.GetGauge(prefix + ".ipc")
          .Set(static_cast<double>(instructions) /
               static_cast<double>(cycles));
    }
  }
}

ScopedPerfSpan::ScopedPerfSpan(const char* category, const char* name,
                               const char* metric_prefix,
                               std::initializer_list<TraceArg> args)
    : category_(category),
      name_(name),
      metric_prefix_(metric_prefix),
      start_ns_(TraceRecorder::Global().enabled() ? TraceRecorder::NowNanos()
                                                  : kDisabled) {
  // Counters are read even with tracing off: the per-variant metrics are
  // independent of the trace recorder (atmx profile runs without a trace).
  if (metric_prefix_ != nullptr || start_ns_ != kDisabled) {
    begin_ = PerfBeginSnapshot();
  }
  if (start_ns_ != kDisabled) {
    args_.assign(args.begin(), args.end());
  }
}

ScopedPerfSpan::~ScopedPerfSpan() {
  const PerfDelta delta = PerfDeltaSince(begin_);
  if (metric_prefix_ != nullptr) {
    AccumulatePerfMetrics(metric_prefix_, delta);
  }
  if (start_ns_ == kDisabled) return;
  TraceRecorder& recorder = TraceRecorder::Global();
  if (!recorder.enabled()) return;  // disabled mid-span: drop, like ScopedSpan
  const std::int64_t end_ns = TraceRecorder::NowNanos();
  AppendPerfArgs(delta, &args_);
  recorder.RecordComplete(category_, name_, start_ns_, end_ns - start_ns_,
                          args_);
}

}  // namespace atmx::obs
