// Decision audit log (the "EXPLAIN after the fact"): a bounded ring buffer
// of every representation decision the dynamic optimizer took during real
// ATMULT executions — tile pair, estimated densities, the effective write
// threshold, the cost-model scores of the stored vs. chosen
// representations, and whether a JIT conversion fired.
//
// Disabled by default (unlike the counters, a record is tens of bytes
// under a mutex); the CLI trace/metrics commands, the benches'
// ATMX_TRACE_OUT path, and tests switch it on. Rendering as a table lives
// in ops/explain.cc (FormatDecisionLog); JSON rendering is here.

#ifndef ATMX_OBS_DECISION_LOG_H_
#define ATMX_OBS_DECISION_LOG_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "kernels/kernel_common.h"

namespace atmx::obs {

// Version of the stamped ToJson()/ChainsToJson() documents.
inline constexpr int kDecisionLogSchemaVersion = 1;

// One optimizer decision for one tile-pair multiplication.
struct DecisionRecord {
  std::uint64_t op_id = 0;   // groups records of one ATMULT operation
  index_t ti = 0;            // C tile-row band
  index_t tj = 0;            // C tile-col band
  index_t k0 = 0;            // contraction range
  index_t k1 = 0;
  double rho_a = 0.0;        // estimated window densities
  double rho_b = 0.0;
  double rho_c = 0.0;        // estimated result-region density
  double rho_w = 0.0;        // effective write threshold rhoD_W
  bool a_stored_dense = false;  // representation as stored in the operand
  bool b_stored_dense = false;
  bool c_dense = false;         // chosen target representation
  KernelType kernel = KernelType::kSSS;  // chosen kernel variant
  bool a_converted = false;  // JIT conversion fired for this pair
  bool b_converted = false;
  double stored_cost = 0.0;  // cost-model score without conversions
  double chosen_cost = 0.0;  // score of the selected plan
};

// One executed chain multiplication: the planner's choice and the
// realized execution shape (the "EXPLAIN" record behind `atmx decisions`
// for chains).
struct ChainDecisionRecord {
  std::uint64_t op_id = 0;          // shared by the chain's product records
  std::string plan;                 // parenthesization, e.g. "((A0*A1)*A2)"
  index_t length = 0;               // matrices in the chain
  double planned_cost = 0.0;        // DP-optimal estimated cost
  double left_to_right_cost = 0.0;  // naive evaluation order, for contrast
  bool fused = false;               // tile-granular dataflow execution
  // Why fusion was declined ("" when fused): "disabled", "short_chain",
  // "no_estimation", or "budget_infeasible".
  std::string fallback_reason;
  index_t fused_tasks = 0;          // tile tasks in the DAG (0 unfused)
  std::uint64_t resident_peak_bytes = 0;  // peak resident intermediates
  std::uint64_t budget_bytes = 0;   // chain-scope memory budget (0 = none)
  std::uint64_t projected_peak_bytes = 0;  // water-level projected peak
  double total_seconds = 0.0;
  // One line per product in execution order (post-order of the plan
  // tree), e.g. "pairs=12 kernels=34 multiply=0.01s".
  std::vector<std::string> product_summaries;
};

class DecisionLog {
 public:
  static DecisionLog& Global();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Caps the ring; when full, new records overwrite the oldest. Resets the
  // buffer.
  void SetCapacity(std::size_t capacity);

  // Fresh op id for grouping one operation's records.
  std::uint64_t NextOpId() {
    return next_op_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // No-op while disabled.
  void Record(const DecisionRecord& record);

  // No-op while disabled. Chain records live in their own (small) ring so
  // one big chain's pair records cannot evict the chain summaries.
  void RecordChain(const ChainDecisionRecord& record);

  // Buffered records, oldest first.
  std::vector<DecisionRecord> Snapshot() const;

  // Buffered chain records, oldest first.
  std::vector<ChainDecisionRecord> ChainSnapshot() const;

  // Total records ever accepted (including ones the ring has evicted).
  std::uint64_t TotalRecorded() const {
    return total_recorded_.load(std::memory_order_relaxed);
  }

  void Clear();

  // {"schema_version":1,"git_sha":"...","records":[{"op":..,...}, ...]},
  // records oldest first — the same stamping contract as the
  // BenchReporter / audit-ledger documents (sha from ATMX_GIT_SHA).
  std::string ToJson() const;

  // Chain-ring counterpart: {"schema_version":1,"git_sha":"...",
  // "records":[{"op":..,"plan":..,...}, ...]}, oldest first.
  std::string ChainsToJson() const;

  static constexpr std::size_t kDefaultCapacity = 1 << 16;
  static constexpr std::size_t kChainCapacity = 1 << 10;

 private:
  DecisionLog() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_op_id_{1};
  std::atomic<std::uint64_t> total_recorded_{0};

  mutable Mutex mutex_;
  std::size_t capacity_ ATMX_GUARDED_BY(mutex_) = kDefaultCapacity;
  // Ring write position once full.
  std::size_t next_slot_ ATMX_GUARDED_BY(mutex_) = 0;
  bool wrapped_ ATMX_GUARDED_BY(mutex_) = false;
  std::vector<DecisionRecord> records_ ATMX_GUARDED_BY(mutex_);
  std::size_t chain_next_slot_ ATMX_GUARDED_BY(mutex_) = 0;
  bool chain_wrapped_ ATMX_GUARDED_BY(mutex_) = false;
  std::vector<ChainDecisionRecord> chain_records_ ATMX_GUARDED_BY(mutex_);
};

// Renders `records` as the ToJson document — factored out so callers
// holding their own snapshot (the flight recorder's bounded tail) render
// without re-snapshotting the global log.
std::string RenderDecisionRecordsJson(
    const std::vector<DecisionRecord>& records);

// Chain-record counterpart of RenderDecisionRecordsJson.
std::string RenderChainDecisionRecordsJson(
    const std::vector<ChainDecisionRecord>& records);

}  // namespace atmx::obs

#endif  // ATMX_OBS_DECISION_LOG_H_
