#include "obs/json_util.h"

#include <cctype>
#include <cstdio>

namespace atmx::obs {

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// Cursor over the document; all Parse* functions leave `pos` just past the
// value they consumed.
struct JsonCursor {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool Fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void SkipWs() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  bool Expect(char c) {
    if (AtEnd() || text[pos] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }

  bool ParseValue(int depth);

  bool ParseString() {
    if (!Expect('"')) return false;
    while (!AtEnd()) {
      const char c = text[pos];
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        ++pos;
        if (AtEnd()) return Fail("truncated escape");
        const char e = text[pos];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos;
            if (AtEnd() ||
                !std::isxdigit(static_cast<unsigned char>(text[pos]))) {
              return Fail("bad \\u escape");
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return Fail("bad escape character");
        }
      }
      ++pos;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber() {
    if (!AtEnd() && text[pos] == '-') ++pos;
    std::size_t digits = 0;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(text[pos]))) {
      ++pos;
      ++digits;
    }
    if (digits == 0) return Fail("expected digits");
    if (!AtEnd() && text[pos] == '.') {
      ++pos;
      digits = 0;
      while (!AtEnd() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
        ++digits;
      }
      if (digits == 0) return Fail("expected fraction digits");
    }
    if (!AtEnd() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (!AtEnd() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      digits = 0;
      while (!AtEnd() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
        ++digits;
      }
      if (digits == 0) return Fail("expected exponent digits");
    }
    return true;
  }

  bool ParseLiteral(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return Fail("bad literal");
    pos += lit.size();
    return true;
  }
};

bool JsonCursor::ParseValue(int depth) {
  // Traces nest spans only a few levels deep; the cap just guards against
  // runaway recursion on adversarial input.
  if (depth > 256) return Fail("nesting too deep");
  SkipWs();
  if (AtEnd()) return Fail("expected value");
  switch (Peek()) {
    case '{': {
      ++pos;
      SkipWs();
      if (!AtEnd() && Peek() == '}') {
        ++pos;
        return true;
      }
      for (;;) {
        SkipWs();
        if (!ParseString()) return false;
        SkipWs();
        if (!Expect(':')) return false;
        if (!ParseValue(depth + 1)) return false;
        SkipWs();
        if (AtEnd()) return Fail("unterminated object");
        if (Peek() == ',') {
          ++pos;
          continue;
        }
        return Expect('}');
      }
    }
    case '[': {
      ++pos;
      SkipWs();
      if (!AtEnd() && Peek() == ']') {
        ++pos;
        return true;
      }
      for (;;) {
        if (!ParseValue(depth + 1)) return false;
        SkipWs();
        if (AtEnd()) return Fail("unterminated array");
        if (Peek() == ',') {
          ++pos;
          continue;
        }
        return Expect(']');
      }
    }
    case '"':
      return ParseString();
    case 't':
      return ParseLiteral("true");
    case 'f':
      return ParseLiteral("false");
    case 'n':
      return ParseLiteral("null");
    default:
      return ParseNumber();
  }
}

}  // namespace

bool JsonWellFormed(std::string_view text, std::string* error) {
  JsonCursor cursor;
  cursor.text = text;
  bool ok = cursor.ParseValue(0);
  if (ok) {
    cursor.SkipWs();
    if (!cursor.AtEnd()) {
      ok = cursor.Fail("trailing content after document");
    }
  }
  if (!ok && error != nullptr) *error = cursor.error;
  return ok;
}

}  // namespace atmx::obs
