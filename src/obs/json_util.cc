#include "obs/json_util.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace atmx::obs {

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// Cursor over the document; all Parse* functions leave `pos` just past the
// value they consumed.
struct JsonCursor {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool Fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void SkipWs() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  bool Expect(char c) {
    if (AtEnd() || text[pos] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }

  bool ParseValue(int depth);

  bool ParseString() {
    if (!Expect('"')) return false;
    while (!AtEnd()) {
      const char c = text[pos];
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        ++pos;
        if (AtEnd()) return Fail("truncated escape");
        const char e = text[pos];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos;
            if (AtEnd() ||
                !std::isxdigit(static_cast<unsigned char>(text[pos]))) {
              return Fail("bad \\u escape");
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return Fail("bad escape character");
        }
      }
      ++pos;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber() {
    if (!AtEnd() && text[pos] == '-') ++pos;
    std::size_t digits = 0;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(text[pos]))) {
      ++pos;
      ++digits;
    }
    if (digits == 0) return Fail("expected digits");
    if (!AtEnd() && text[pos] == '.') {
      ++pos;
      digits = 0;
      while (!AtEnd() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
        ++digits;
      }
      if (digits == 0) return Fail("expected fraction digits");
    }
    if (!AtEnd() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (!AtEnd() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      digits = 0;
      while (!AtEnd() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
        ++digits;
      }
      if (digits == 0) return Fail("expected exponent digits");
    }
    return true;
  }

  bool ParseLiteral(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return Fail("bad literal");
    pos += lit.size();
    return true;
  }
};

bool JsonCursor::ParseValue(int depth) {
  // Traces nest spans only a few levels deep; the cap just guards against
  // runaway recursion on adversarial input.
  if (depth > 256) return Fail("nesting too deep");
  SkipWs();
  if (AtEnd()) return Fail("expected value");
  switch (Peek()) {
    case '{': {
      ++pos;
      SkipWs();
      if (!AtEnd() && Peek() == '}') {
        ++pos;
        return true;
      }
      for (;;) {
        SkipWs();
        if (!ParseString()) return false;
        SkipWs();
        if (!Expect(':')) return false;
        if (!ParseValue(depth + 1)) return false;
        SkipWs();
        if (AtEnd()) return Fail("unterminated object");
        if (Peek() == ',') {
          ++pos;
          continue;
        }
        return Expect('}');
      }
    }
    case '[': {
      ++pos;
      SkipWs();
      if (!AtEnd() && Peek() == ']') {
        ++pos;
        return true;
      }
      for (;;) {
        if (!ParseValue(depth + 1)) return false;
        SkipWs();
        if (AtEnd()) return Fail("unterminated array");
        if (Peek() == ',') {
          ++pos;
          continue;
        }
        return Expect(']');
      }
    }
    case '"':
      return ParseString();
    case 't':
      return ParseLiteral("true");
    case 'f':
      return ParseLiteral("false");
    case 'n':
      return ParseLiteral("null");
    default:
      return ParseNumber();
  }
}

}  // namespace

bool JsonWellFormed(std::string_view text, std::string* error) {
  JsonCursor cursor;
  cursor.text = text;
  bool ok = cursor.ParseValue(0);
  if (ok) {
    cursor.SkipWs();
    if (!cursor.AtEnd()) {
      ok = cursor.Fail("trailing content after document");
    }
  }
  if (!ok && error != nullptr) *error = cursor.error;
  return ok;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number_value : fallback;
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string_view fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_value
                                          : std::string(fallback);
}

bool JsonValue::BoolOr(std::string_view key, bool fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->bool_value : fallback;
}

namespace {

// Value-building twin of JsonCursor. Kept separate so the validator stays
// allocation-free; both accept exactly the same grammar.
struct JsonBuilder {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool Fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void SkipWs() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  bool Expect(char c) {
    if (AtEnd() || text[pos] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Expect('"')) return false;
    out->clear();
    while (!AtEnd()) {
      const char c = text[pos];
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        ++pos;
        if (AtEnd()) return Fail("truncated escape");
        const char e = text[pos];
        switch (e) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'n':
            *out += '\n';
            break;
          case 'r':
            *out += '\r';
            break;
          case 't':
            *out += '\t';
            break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              ++pos;
              if (AtEnd() ||
                  !std::isxdigit(static_cast<unsigned char>(text[pos]))) {
                return Fail("bad \\u escape");
              }
              const char h = text[pos];
              code = code * 16 +
                     static_cast<unsigned>(
                         h <= '9' ? h - '0'
                                  : (h | 0x20) - 'a' + 10);
            }
            // The serializers only emit \u escapes for control
            // characters; decode the BMP code point as UTF-8.
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Fail("bad escape character");
        }
        ++pos;
        continue;
      }
      *out += c;
      ++pos;
    }
    return Fail("unterminated string");
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > 256) return Fail("nesting too deep");
    SkipWs();
    if (AtEnd()) return Fail("expected value");
    switch (Peek()) {
      case '{': {
        ++pos;
        out->kind = JsonValue::Kind::kObject;
        SkipWs();
        if (!AtEnd() && Peek() == '}') {
          ++pos;
          return true;
        }
        for (;;) {
          SkipWs();
          std::string key;
          if (!ParseString(&key)) return false;
          SkipWs();
          if (!Expect(':')) return false;
          JsonValue member;
          if (!ParseValue(&member, depth + 1)) return false;
          out->members.emplace_back(std::move(key), std::move(member));
          SkipWs();
          if (AtEnd()) return Fail("unterminated object");
          if (Peek() == ',') {
            ++pos;
            continue;
          }
          return Expect('}');
        }
      }
      case '[': {
        ++pos;
        out->kind = JsonValue::Kind::kArray;
        SkipWs();
        if (!AtEnd() && Peek() == ']') {
          ++pos;
          return true;
        }
        for (;;) {
          JsonValue element;
          if (!ParseValue(&element, depth + 1)) return false;
          out->array.push_back(std::move(element));
          SkipWs();
          if (AtEnd()) return Fail("unterminated array");
          if (Peek() == ',') {
            ++pos;
            continue;
          }
          return Expect(']');
        }
      }
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = true;
        return ParseLiteral("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = false;
        return ParseLiteral("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return ParseLiteral("null");
      default: {
        // Validate the number with the strict grammar, then convert the
        // accepted span with strtod (which accepts a superset).
        JsonCursor check;
        check.text = text;
        check.pos = pos;
        if (!check.ParseNumber()) {
          pos = check.pos;
          return Fail("bad number");
        }
        const std::string span(text.substr(pos, check.pos - pos));
        out->kind = JsonValue::Kind::kNumber;
        out->number_value = std::strtod(span.c_str(), nullptr);
        pos = check.pos;
        return true;
      }
    }
  }

  bool ParseLiteral(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return Fail("bad literal");
    pos += lit.size();
    return true;
  }
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  JsonBuilder builder;
  builder.text = text;
  JsonValue value;
  bool ok = builder.ParseValue(&value, 0);
  if (ok) {
    builder.SkipWs();
    if (!builder.AtEnd()) {
      ok = builder.Fail("trailing content after document");
    }
  }
  if (!ok) return Status::InvalidArgument("json: " + builder.error);
  return value;
}

std::string GitShaFromEnv() {
  const char* sha = std::getenv("ATMX_GIT_SHA");
  return (sha != nullptr && sha[0] != '\0') ? std::string(sha) : "unknown";
}

}  // namespace atmx::obs
