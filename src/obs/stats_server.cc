#include "obs/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "obs/decision_log.h"
#include "obs/exposition.h"
#include "obs/trace.h"

namespace atmx::obs {

namespace {

constexpr int kClientTimeoutSeconds = 2;

void SetSocketTimeouts(int fd, int seconds) {
  struct timeval tv;
  tv.tv_sec = seconds;
  tv.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool SendAll(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t sent = ::send(fd, data, size, MSG_NOSIGNAL);
    if (sent <= 0) {
      if (sent < 0 && errno == EINTR) continue;
      return false;
    }
    data += sent;
    size -= static_cast<std::size_t>(sent);
  }
  return true;
}

std::string MakeResponse(const char* status, const char* content_type,
                         const std::string& body) {
  std::string response;
  response.reserve(body.size() + 128);
  response += "HTTP/1.0 ";
  response += status;
  response += "\r\nContent-Type: ";
  response += content_type;
  response += "\r\nContent-Length: ";
  response += std::to_string(body.size());
  response += "\r\nConnection: close\r\n\r\n";
  response += body;
  return response;
}

// Extracts the request target of "GET <target> HTTP/1.x". Empty when the
// request is not a GET (the only method this endpoint speaks).
std::string ParseGetTarget(const std::string& request) {
  if (request.rfind("GET ", 0) != 0) return std::string();
  const std::size_t start = 4;
  const std::size_t end = request.find(' ', start);
  if (end == std::string::npos) return std::string();
  return request.substr(start, end - start);
}

}  // namespace

StatsServer& StatsServer::Global() {
  static StatsServer* server = new StatsServer();
  return *server;
}

StatsServer::~StatsServer() { Stop(); }

std::string StatsServer::HandleRequest(const std::string& request,
                                       MetricsRegistry& registry) {
  const std::string target = ParseGetTarget(request);
  if (target.empty()) {
    return MakeResponse("405 Method Not Allowed", "text/plain",
                        "only GET is supported\n");
  }
  // Ignore any ?query suffix a scraper might append.
  const std::string path = target.substr(0, target.find('?'));
  if (path == "/metrics") {
    return MakeResponse(
        "200 OK",
        "application/openmetrics-text; version=1.0.0; charset=utf-8",
        RenderOpenMetrics(registry.Snapshot()));
  }
  if (path == "/metrics.json") {
    return MakeResponse("200 OK", "application/json",
                        RenderMetricsJson(registry.Snapshot()));
  }
  if (path == "/trace") {
    return MakeResponse("200 OK", "application/json",
                        TraceRecorder::Global().ToJson());
  }
  if (path == "/decisions") {
    return MakeResponse("200 OK", "application/json",
                        DecisionLog::Global().ToJson());
  }
  if (path == "/healthz" || path == "/") {
    return MakeResponse("200 OK", "text/plain", "ok\n");
  }
  return MakeResponse("404 Not Found", "text/plain",
                      "unknown path: " + path + "\n");
}

Status StatsServer::Start(const Options& options) {
  if (options.port < 0 || options.port > 65535) {
    return Status::InvalidArgument("stats server port out of range: " +
                                   std::to_string(options.port));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("stats server: socket() failed");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("stats server: cannot bind 127.0.0.1:" +
                           std::to_string(options.port));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::IoError("stats server: listen() failed");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) != 0) {
    ::close(fd);
    return Status::IoError("stats server: getsockname() failed");
  }
  const int bound_port = ntohs(addr.sin_port);

  MetricsRegistry* registry = options.registry != nullptr
                                  ? options.registry
                                  : &MetricsRegistry::Global();
  MutexLock lock(mu_);
  if (running_) {
    ::close(fd);
    return Status::Internal("stats server already running");
  }
  running_ = true;
  port_ = bound_port;
  listen_fd_.store(fd, std::memory_order_release);
  thread_ = std::thread([this, fd, registry] { ThreadMain(fd, registry); });
  return Status::Ok();
}

void StatsServer::Stop() {
  std::thread joined;
  int fd;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    running_ = false;
    port_ = -1;
    fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
    joined = std::move(thread_);
  }
  if (fd >= 0) {
    // shutdown wakes the blocking accept; close releases the port.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (joined.joinable()) joined.join();
}

bool StatsServer::running() const {
  MutexLock lock(mu_);
  return running_;
}

int StatsServer::port() const {
  MutexLock lock(mu_);
  return port_;
}

void StatsServer::ThreadMain(int listen_fd, MetricsRegistry* registry) {
  for (;;) {
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      // Stop() shut the socket down (or something is terminally wrong
      // with it); either way the listener is done.
      return;
    }
    SetSocketTimeouts(client, kClientTimeoutSeconds);
    char buf[2048];
    const ssize_t received = ::recv(client, buf, sizeof(buf) - 1, 0);
    std::string response;
    if (received > 0) {
      buf[received] = '\0';
      response = HandleRequest(std::string(buf), *registry);
    } else {
      response = MakeResponse("400 Bad Request", "text/plain",
                              "empty request\n");
    }
    (void)SendAll(client, response.data(), response.size());
    ::close(client);
  }
}

Result<HttpUrl> ParseHttpUrl(const std::string& url) {
  std::string rest = url;
  const std::string scheme = "http://";
  if (rest.rfind(scheme, 0) == 0) {
    rest = rest.substr(scheme.size());
  } else if (rest.find("://") != std::string::npos) {
    return Status::InvalidArgument("only http:// URLs are supported: " +
                                   url);
  }
  HttpUrl parsed;
  const std::size_t slash = rest.find('/');
  std::string host_port =
      slash == std::string::npos ? rest : rest.substr(0, slash);
  parsed.path = slash == std::string::npos ? "/" : rest.substr(slash);
  const std::size_t colon = host_port.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("URL must carry an explicit port: " +
                                   url);
  }
  parsed.host = host_port.substr(0, colon);
  const std::string port_str = host_port.substr(colon + 1);
  if (parsed.host.empty() || port_str.empty() ||
      port_str.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument("malformed host:port in URL: " + url);
  }
  parsed.port = std::atoi(port_str.c_str());
  if (parsed.port <= 0 || parsed.port > 65535) {
    return Status::InvalidArgument("port out of range in URL: " + url);
  }
  return parsed;
}

Result<std::string> HttpGet(const std::string& host, int port,
                            const std::string& path, int timeout_ms) {
  const std::string addr_text = host == "localhost" ? "127.0.0.1" : host;
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, addr_text.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("HttpGet: not an IPv4 host: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("HttpGet: socket() failed");
  }
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("HttpGet: cannot connect to " + host + ":" +
                           std::to_string(port));
  }
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  if (!SendAll(fd, request.data(), request.size())) {
    ::close(fd);
    return Status::IoError("HttpGet: send failed");
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t received = ::recv(fd, buf, sizeof(buf), 0);
    if (received < 0 && errno == EINTR) continue;
    if (received < 0) {
      ::close(fd);
      return Status::IoError("HttpGet: recv failed or timed out");
    }
    if (received == 0) break;
    response.append(buf, static_cast<std::size_t>(received));
  }
  ::close(fd);
  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::IoError("HttpGet: malformed response (no header end)");
  }
  const std::string status_line =
      response.substr(0, response.find("\r\n"));
  if (status_line.find(" 200 ") == std::string::npos) {
    return Status::Internal("HttpGet: non-200 response: " + status_line);
  }
  return response.substr(header_end + 4);
}

}  // namespace atmx::obs
