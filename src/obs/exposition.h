// Exposition of a MetricsRegistry snapshot for live scraping: the
// Prometheus/OpenMetrics text format (what `/metrics` serves and what
// `tools/check_metrics_endpoint.py` validates) and the flat JSON variant
// (`/metrics.json`, also backing `MetricsRegistry::ToJson`).
//
// Name mangling: registry names are dot-separated lower-case identifiers
// (`atmult.kernel.spspd_gemm.invocations`); OpenMetrics names admit only
// [a-zA-Z0-9_:], so dots — and any other foreign character — become
// underscores, and a leading digit gains a '_' prefix. Counters gain the
// conventional `_total` suffix; histograms render cumulative
// `_bucket{le="..."}` series ending in `+Inf`, plus `_sum` and `_count`.
//
// Compiled only under -DATMX_OBS=ON like the rest of the layer.

#ifndef ATMX_OBS_EXPOSITION_H_
#define ATMX_OBS_EXPOSITION_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace atmx::obs {

// Maps a registry metric name onto the OpenMetrics charset: [a-zA-Z0-9_:]
// kept, everything else (dots included) replaced by '_', a leading digit
// prefixed with '_'. Empty input stays empty (callers never register
// empty names; ATMX_CHECKed in the registry).
std::string MangleMetricName(std::string_view name);

// Renders `samples` (one registry Snapshot) as OpenMetrics text:
// `# TYPE` line per metric, counter samples as `<name>_total <v>`,
// gauges as `<name> <v>`, histograms as cumulative buckets + sum + count,
// terminated by `# EOF`.
std::string RenderOpenMetrics(const std::vector<MetricSample>& samples);

// Renders `samples` as the flat JSON object
// {"metric.name": value | {"count":..,"sum":..,"bounds":[..],
//  "buckets":[..]}, ...} — original (unmangled) names, keys escaped via
// EscapeJson. MetricsRegistry::ToJson delegates here.
std::string RenderMetricsJson(const std::vector<MetricSample>& samples);

// Extracts the top-level numeric fields of one flat JSON object (the
// `/metrics.json` document): every `"key": <number>` pair directly inside
// the outer object, in document order. Nested objects/arrays (histograms)
// are skipped wholesale. Forgiving by design — it is the client half of
// `atmx watch` and must not crash on a truncated scrape.
std::vector<std::pair<std::string, double>> ExtractTopLevelNumbers(
    std::string_view json);

}  // namespace atmx::obs

#endif  // ATMX_OBS_EXPOSITION_H_
