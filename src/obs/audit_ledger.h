// Prediction-vs-outcome audit ledger: joins every cost-model-driven
// decision with its measured outcome so estimator calibration is a
// measured quantity, not a belief. Six decision classes are tracked:
//
//   density    predicted vs actual result density per atomic block
//   cost       predicted task cost (model units) vs measured wall time
//   waterlevel projected result bytes vs materialized result bytes
//   spa_mode   predicted vs realized rows-nnz feeding SPA ChooseMode
//   repr       per-pair representation decisions with full replay inputs
//   chain      chain plan cost vs measured execution time
//
// Each record observes a bounded symmetric relative error into an
// `estimator.err.<class>` histogram (OpenMetrics `/metrics`, flight
// recorder tail) and is retained for the schema-versioned JSON ledger
// file (`--audit-out` / `ATMX_AUDIT_OUT`). `atmx audit` and
// tools/audit_report.py replay a ledger offline: error distributions
// (p50/p95/max), worst-N mispredictions, and a counterfactual pass that
// re-runs the cost model with *measured* inputs to count "regret"
// decisions — choices that would flip with perfect estimates. See
// docs/OBSERVABILITY.md ("Prediction audit").
//
// Locking discipline: record paths take the ledger mutex only to append;
// serialization snapshots under the mutex and performs all file I/O
// outside it (tools/atmx_lint.py check no-lock-across-file-io).

#ifndef ATMX_OBS_AUDIT_LEDGER_H_
#define ATMX_OBS_AUDIT_LEDGER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "cost/cost_model.h"
#include "obs/json_util.h"

namespace atmx::obs {

inline constexpr int kAuditLedgerSchemaVersion = 1;

// Bounded symmetric relative error: |predicted - actual| /
// max(predicted, actual) in [0, 1], and exactly 0 when both sides are 0
// (or when predicted == actual — the all-dense case must report 0.0, not
// an epsilon). Both inputs must be non-negative.
double SymmetricRelError(double predicted, double actual);

// Nearest-rank percentile over an unsorted sample (q in [0, 1]); 0 for
// an empty sample. tools/audit_report.py mirrors this definition
// exactly: rank = max(0, ceil(q * count) - 1) over the sorted sample.
double Percentile(std::vector<double> values, double q);

// ---- Ledger records, one struct per decision class ----

struct DensityAuditRecord {
  std::uint64_t op = 0;
  index_t bi = 0, bj = 0;  // atomic-block coordinates in the result grid
  double predicted = 0.0;  // estimator block density
  double actual = 0.0;     // measured block density
};

struct CostAuditRecord {
  std::uint64_t op = 0;
  index_t ti = 0, tj = 0;        // tile-task coordinates
  double predicted_cost = 0.0;   // cost-model units (pair costs + write)
  double measured_seconds = 0.0; // task wall time
  double measured_cpu_ns = 0.0;  // perf task clock; 0 when unavailable
  std::uint64_t measured_cycles = 0;  // perf cycles; 0 when unavailable
  int kernel = -1;  // dominant KernelType; -1 when pairs mixed variants
};

struct WaterLevelAuditRecord {
  std::uint64_t op = 0;
  double rho_w = 0.0;                    // effective write threshold
  std::uint64_t projected_bytes = 0;     // water-level projection
  std::uint64_t result_bytes = 0;        // materialized result
  std::uint64_t high_water_bytes = 0;    // MemTracker high water at close
  // False when the SLA sat below the minimum achievable footprint and the
  // threshold was clamped to the memory-minimal floor (the
  // `waterlevel.infeasible` counter ticks alongside).
  bool feasible = true;
};

struct SpaModeAuditRecord {
  std::uint64_t op = 0;
  index_t ti = 0, tj = 0;
  index_t width = 0;               // accumulator width (tile cols)
  double predicted_row_nnz = 0.0;  // ChooseMode input; < 0 = no estimate
  double actual_row_nnz = 0.0;     // realized tile nnz / rows
  int chosen_mode = 0;             // SparseAccumulator::Mode as int
};

// One per-pair representation decision, carrying every input
// DecidePairRepresentations consumed so the counterfactual pass can
// re-run it bit-for-bit with rho_c_actual in place of rho_c_pred.
struct ReprAuditRecord {
  std::uint64_t op = 0;
  index_t ti = 0, tj = 0;    // C tile coordinates
  index_t k0 = 0, k1 = 0;    // contraction window of this pair
  index_t m = 0, k = 0, n = 0;
  double rho_a = 0.0, rho_b = 0.0;  // exact operand window densities
  double rho_c_pred = 0.0;   // estimated result-region density
  double rho_c_actual = 0.0; // measured result-tile density
  double rho_w = 0.0;
  bool a_stored_dense = false, b_stored_dense = false;
  bool a_cached = false, b_cached = false;  // JIT conversion cache hits
  bool allow_conversion = false;
  bool c_dense = false;      // chosen C representation
  int kernel = 0;            // chosen KernelType
  double stored_cost = 0.0, chosen_cost = 0.0;
};

struct ChainAuditRecord {
  std::uint64_t op = 0;
  double planned_cost = 0.0;       // chosen parenthesization, model units
  double alternative_cost = 0.0;   // left-to-right baseline
  bool fused = false;
  double measured_seconds = 0.0;
  // Chain-scope memory budget (0 = unbounded) and the measured resident
  // peak the execution reached under it.
  std::uint64_t budget_bytes = 0;
  std::uint64_t resident_peak_bytes = 0;
  // Effective write threshold per product (post-order; joins against the
  // waterlevel class per product via `atmx audit`).
  std::vector<double> rho_w;
};

// Everything one ledger holds: the in-memory snapshot and the parsed
// form of a ledger file are the same type.
struct AuditLedgerDoc {
  int schema_version = kAuditLedgerSchemaVersion;
  std::string git_sha;
  CostParams cost_params;
  bool have_cost_params = false;
  std::uint64_t dropped = 0;  // records lost to the per-class cap
  std::vector<DensityAuditRecord> density;
  std::vector<CostAuditRecord> cost;
  std::vector<WaterLevelAuditRecord> waterlevel;
  std::vector<SpaModeAuditRecord> spa_mode;
  std::vector<ReprAuditRecord> repr;
  std::vector<ChainAuditRecord> chain;

  bool empty() const {
    return density.empty() && cost.empty() && waterlevel.empty() &&
           spa_mode.empty() && repr.empty() && chain.empty();
  }
};

std::string RenderAuditLedgerJson(const AuditLedgerDoc& doc);
[[nodiscard]] Result<AuditLedgerDoc> ParseAuditLedgerJson(std::string_view text);
[[nodiscard]] Result<AuditLedgerDoc> LoadAuditLedger(const std::string& path);

// ---- Offline report (the `atmx audit` / audit_report.py contract) ----

struct AuditErrorStats {
  std::size_t count = 0;
  double p50 = 0.0, p95 = 0.0, max = 0.0, mean = 0.0;
};

struct AuditWorstEntry {
  std::string decision_class;
  std::uint64_t op = 0;
  index_t ti = 0, tj = 0;  // tile/block coordinates of the misprediction
  double predicted = 0.0, actual = 0.0;
  double err = 0.0;
};

struct AuditReport {
  AuditErrorStats density, cost, waterlevel, spa_mode, repr, chain;
  // Counterfactual pass over repr records: how many pair decisions would
  // pick a different kernel if the estimator had returned the measured
  // result density, and the cost-unit gap that choosing "wrong" left on
  // the table under the measured inputs.
  std::size_t repr_considered = 0;
  std::size_t repr_regret = 0;
  double repr_regret_cost = 0.0;
  // SPA ChooseMode replayed with the realized rows-nnz.
  std::size_t spa_considered = 0;
  std::size_t spa_regret = 0;
  // Water-level records whose memory SLA was below the minimum achievable
  // footprint (threshold clamped to the memory-minimal floor).
  std::size_t waterlevel_infeasible = 0;
  // Seconds per cost unit fitted over the ledger (cost / chain classes
  // compare model units against wall time through this scale).
  double cost_scale = 0.0;
  double chain_scale = 0.0;
  std::vector<AuditWorstEntry> worst;  // across classes, worst first
};

// Deterministic: the report is a pure function of the document (the
// counterfactual pass re-runs DecidePairRepresentations with the
// ledger's own CostParams).
AuditReport BuildAuditReport(const AuditLedgerDoc& doc, std::size_t worst_n);

std::string RenderAuditReportText(const AuditReport& report);

// ---- Calibration-drift gate (compare_bench.py-style verdicts) ----

struct AuditGateResult {
  bool ok = true;
  int regressions = 0;
  std::string text;  // one verdict line per checked envelope bound
};

// Checks the report against a committed baseline envelope document:
//   {"schema_version":1,"kind":"atmx_audit_baseline",
//    "classes":{"density":{"p50":..,"p95":..,"max":..}, ...},
//    "max_repr_regret_fraction":..,"max_spa_regret_fraction":..}
// Every bound present in the baseline must hold for the report (classes
// with zero records are skipped with a SKIP verdict). ok == false iff
// any bound is exceeded.
AuditGateResult EvaluateAuditGate(const AuditReport& report,
                                  const JsonValue& baseline);

// Worsens every density prediction in `doc` by pushing it `scale`-x
// further away from its measured value (multiplied when over-predicting,
// divided when under-predicting; capped at 1.0 where the value is a
// density) — the CI negative test injects a 2x misestimate and asserts
// the drift gate fails. Scaling away from the measurement (rather than
// blindly multiplying) guarantees the error grows regardless of the
// estimator's bias direction.
void InjectDensityMisestimate(AuditLedgerDoc* doc, double scale);

// Serializes an envelope baseline derived from `report`: each class
// bound is the measured value times `margin` (floored at a small
// absolute slack so near-zero measurements do not produce unholdable
// envelopes), regret fractions likewise.
std::string RenderAuditEnvelopeJson(const AuditReport& report, double margin);

// ---- The process-global ledger ----

class AuditLedger {
 public:
  static AuditLedger& Global();

  // Recording is off by default; bench_common arms it for --audit-out /
  // ATMX_AUDIT_OUT runs and tests flip it directly.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Stamps the cost parameters the recording operation decided with
  // (required for counterfactual replay; last writer wins).
  void SetCostParams(const CostParams& params);

  void RecordDensity(const DensityAuditRecord& r);
  void RecordCost(const CostAuditRecord& r);
  void RecordWaterLevel(const WaterLevelAuditRecord& r);
  void RecordSpaMode(const SpaModeAuditRecord& r);
  void RecordRepr(const ReprAuditRecord& r);
  void RecordChain(const ChainAuditRecord& r);

  AuditLedgerDoc Snapshot() const;
  void Clear();

  std::string ToJson() const;
  // Snapshots under the mutex, renders and writes with no lock held.
  [[nodiscard]] Status WriteJson(const std::string& path) const;

  // Arms an output path (and enables recording); FlushArmed writes the
  // ledger there — bench_common registers it via atexit.
  void ArmOutput(std::string path);
  bool armed() const;
  [[nodiscard]] Status FlushArmed() const;

 private:
  AuditLedger() = default;

  // Per-class retention cap: beyond it records are counted as dropped,
  // not stored (the error histograms still see every observation).
  static constexpr std::size_t kMaxRecordsPerClass = 1u << 16;

  template <typename Record>
  void Append(std::vector<Record>& dst, const Record& r)
      ATMX_REQUIRES(mutex_) {
    if (dst.size() >= kMaxRecordsPerClass) {
      ++doc_.dropped;
      return;
    }
    dst.push_back(r);
  }

  std::atomic<bool> enabled_{false};
  mutable Mutex mutex_;
  AuditLedgerDoc doc_ ATMX_GUARDED_BY(mutex_);
  // Running totals for the live cost-class histogram scale.
  double cost_pred_sum_ ATMX_GUARDED_BY(mutex_) = 0.0;
  double cost_seconds_sum_ ATMX_GUARDED_BY(mutex_) = 0.0;
  std::string armed_path_ ATMX_GUARDED_BY(mutex_);
};

}  // namespace atmx::obs

#endif  // ATMX_OBS_AUDIT_LEDGER_H_
