#include "obs/mem_tracker.h"

#include <cstdio>
#include <cstring>

#include "obs/metrics.h"

namespace atmx::obs {

MemTracker& MemTracker::Global() {
  static MemTracker* tracker = new MemTracker();
  return *tracker;
}

void MemTracker::PublishGauges() {
  // Gauge references are stable for the registry's lifetime; cache them.
  static Gauge& current_gauge =
      MetricsRegistry::Global().GetGauge("mem.current_bytes");
  static Gauge& high_water_gauge =
      MetricsRegistry::Global().GetGauge("mem.high_water_bytes");
  current_gauge.Set(static_cast<double>(current_bytes()));
  high_water_gauge.Set(static_cast<double>(high_water_bytes()));
}

void MemTracker::RecordAlloc(std::size_t bytes) {
  if (bytes == 0) return;
  const std::uint64_t now =
      current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::uint64_t peak = high_water_.load(std::memory_order_relaxed);
  while (now > peak && !high_water_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  PublishGauges();
}

void MemTracker::RecordFree(std::size_t bytes) {
  if (bytes == 0) return;
  std::uint64_t cur = current_.load(std::memory_order_relaxed);
  std::uint64_t next;
  do {
    next = cur >= bytes ? cur - bytes : 0;
  } while (!current_.compare_exchange_weak(cur, next,
                                           std::memory_order_relaxed));
  PublishGauges();
}

void MemTracker::ResetForTesting() {
  current_.store(0, std::memory_order_relaxed);
  high_water_.store(0, std::memory_order_relaxed);
  PublishGauges();
}

MemTracker::ProcessSample MemTracker::SampleProcess() {
  ProcessSample sample;
#if defined(__linux__)
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return sample;
  char line[256];
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    unsigned long long kib = 0;
    if (std::sscanf(line, "VmRSS: %llu kB", &kib) == 1) {
      sample.rss_bytes = kib * 1024ull;
    } else if (std::sscanf(line, "VmHWM: %llu kB", &kib) == 1) {
      sample.rss_peak_bytes = kib * 1024ull;
    }
  }
  std::fclose(status);
  sample.valid = sample.rss_bytes > 0 || sample.rss_peak_bytes > 0;
  if (sample.valid) {
    MetricsRegistry::Global()
        .GetGauge("mem.rss_bytes")
        .Set(static_cast<double>(sample.rss_bytes));
    MetricsRegistry::Global()
        .GetGauge("mem.rss_high_water_bytes")
        .Set(static_cast<double>(sample.rss_peak_bytes));
  }
#endif
  return sample;
}

}  // namespace atmx::obs
