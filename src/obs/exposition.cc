#include "obs/exposition.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/json_util.h"

namespace atmx::obs {

namespace {

std::string FmtDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

bool IsMetricChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

}  // namespace

std::string MangleMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name.front() >= '0' && name.front() <= '9') {
    out.push_back('_');
  }
  for (char c : name) {
    out.push_back(IsMetricChar(c) ? c : '_');
  }
  return out;
}

std::string RenderOpenMetrics(const std::vector<MetricSample>& samples) {
  std::ostringstream os;
  for (const MetricSample& s : samples) {
    const std::string name = MangleMetricName(s.name);
    switch (s.type) {
      case MetricSample::Type::kCounter:
        os << "# TYPE " << name << " counter\n";
        os << name << "_total " << s.counter_value << '\n';
        break;
      case MetricSample::Type::kGauge:
        os << "# TYPE " << name << " gauge\n";
        os << name << ' ' << FmtDouble(s.gauge_value) << '\n';
        break;
      case MetricSample::Type::kHistogram: {
        os << "# TYPE " << name << " histogram\n";
        // Cumulative buckets over the per-bucket counts; the +Inf bucket
        // is the coherently snapshotted total count, which the Observe
        // ordering guarantees is >= the sum of the per-bucket counts (see
        // Histogram::TakeSnapshot), so the series stays non-decreasing
        // and +Inf == _count as OpenMetrics requires.
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < s.bounds.size(); ++i) {
          if (i < s.buckets.size()) cumulative += s.buckets[i];
          os << name << "_bucket{le=\"" << FmtDouble(s.bounds[i]) << "\"} "
             << cumulative << '\n';
        }
        os << name << "_bucket{le=\"+Inf\"} " << s.count << '\n';
        os << name << "_sum " << FmtDouble(s.sum) << '\n';
        os << name << "_count " << s.count << '\n';
        break;
      }
    }
  }
  os << "# EOF\n";
  return os.str();
}

std::string RenderMetricsJson(const std::vector<MetricSample>& samples) {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const MetricSample& s : samples) {
    if (!first) os << ",\n";
    first = false;
    os << '"' << EscapeJson(s.name) << "\":";
    switch (s.type) {
      case MetricSample::Type::kCounter:
        os << s.counter_value;
        break;
      case MetricSample::Type::kGauge:
        os << FmtDouble(s.gauge_value);
        break;
      case MetricSample::Type::kHistogram: {
        os << "{\"count\":" << s.count << ",\"sum\":" << FmtDouble(s.sum)
           << ",\"bounds\":[";
        for (std::size_t i = 0; i < s.bounds.size(); ++i) {
          if (i > 0) os << ',';
          os << FmtDouble(s.bounds[i]);
        }
        os << "],\"buckets\":[";
        for (std::size_t i = 0; i < s.buckets.size(); ++i) {
          if (i > 0) os << ',';
          os << s.buckets[i];
        }
        os << "]}";
        break;
      }
    }
  }
  os << '}';
  return os.str();
}

namespace {

// Advances past one balanced JSON value starting at `i` ('{' or '['),
// honouring string literals. Returns the index one past the value (or
// `n` on truncated input).
std::size_t SkipBalanced(std::string_view s, std::size_t i) {
  const std::size_t n = s.size();
  int depth = 0;
  bool in_string = false;
  for (; i < n; ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return n;
}

// Reads a JSON string starting at the opening quote `i`; appends the
// unescaped-enough key (escapes kept verbatim except \" and \\) and
// returns the index one past the closing quote.
std::size_t ReadString(std::string_view s, std::size_t i, std::string* out) {
  const std::size_t n = s.size();
  ++i;  // opening quote
  for (; i < n; ++i) {
    const char c = s[i];
    if (c == '\\' && i + 1 < n) {
      out->push_back(s[i + 1]);
      ++i;
    } else if (c == '"') {
      return i + 1;
    } else {
      out->push_back(c);
    }
  }
  return n;
}

}  // namespace

std::vector<std::pair<std::string, double>> ExtractTopLevelNumbers(
    std::string_view json) {
  std::vector<std::pair<std::string, double>> out;
  const std::size_t n = json.size();
  std::size_t i = 0;
  while (i < n && std::isspace(static_cast<unsigned char>(json[i]))) ++i;
  if (i >= n || json[i] != '{') return out;
  ++i;
  while (i < n) {
    while (i < n && json[i] != '"' && json[i] != '}') ++i;
    if (i >= n || json[i] == '}') break;
    std::string key;
    i = ReadString(json, i, &key);
    while (i < n && json[i] != ':') ++i;
    if (i >= n) break;
    ++i;  // ':'
    while (i < n && std::isspace(static_cast<unsigned char>(json[i]))) ++i;
    if (i >= n) break;
    const char c = json[i];
    if (c == '{' || c == '[') {
      i = SkipBalanced(json, i);
    } else if (c == '"') {
      std::string ignored;
      i = ReadString(json, i, &ignored);
    } else if (c == '-' || (c >= '0' && c <= '9')) {
      const std::string number(json.substr(i, 64));
      char* end = nullptr;
      const double value = std::strtod(number.c_str(), &end);
      if (end != number.c_str()) {
        out.emplace_back(std::move(key), value);
        i += static_cast<std::size_t>(end - number.c_str());
      } else {
        ++i;
      }
    } else {
      // true/false/null: skip the literal.
      while (i < n && json[i] != ',' && json[i] != '}') ++i;
    }
    while (i < n && json[i] != ',' && json[i] != '}') ++i;
    if (i < n && json[i] == ',') ++i;
    if (i < n && json[i] == '}') break;
  }
  return out;
}

}  // namespace atmx::obs
