#include "obs/decision_log.h"

#include <sstream>

#include "common/check.h"
#include "obs/json_util.h"

namespace atmx::obs {

DecisionLog& DecisionLog::Global() {
  static DecisionLog* log = new DecisionLog();
  return *log;
}

void DecisionLog::SetCapacity(std::size_t capacity) {
  ATMX_CHECK_GT(capacity, 0u);
  MutexLock lock(mutex_);
  capacity_ = capacity;
  records_.clear();
  records_.shrink_to_fit();
  next_slot_ = 0;
  wrapped_ = false;
}

void DecisionLog::RecordChain(const ChainDecisionRecord& record) {
  if (!enabled()) return;
  MutexLock lock(mutex_);
  if (chain_records_.size() < kChainCapacity) {
    chain_records_.push_back(record);
    return;
  }
  chain_records_[chain_next_slot_] = record;
  chain_next_slot_ = (chain_next_slot_ + 1) % kChainCapacity;
  chain_wrapped_ = true;
}

std::vector<ChainDecisionRecord> DecisionLog::ChainSnapshot() const {
  MutexLock lock(mutex_);
  if (!chain_wrapped_) return chain_records_;
  std::vector<ChainDecisionRecord> out;
  out.reserve(chain_records_.size());
  out.insert(out.end(),
             chain_records_.begin() + static_cast<long>(chain_next_slot_),
             chain_records_.end());
  out.insert(out.end(), chain_records_.begin(),
             chain_records_.begin() + static_cast<long>(chain_next_slot_));
  return out;
}

void DecisionLog::Record(const DecisionRecord& record) {
  if (!enabled()) return;
  total_recorded_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(mutex_);
  if (records_.size() < capacity_) {
    records_.push_back(record);
    return;
  }
  records_[next_slot_] = record;
  next_slot_ = (next_slot_ + 1) % capacity_;
  wrapped_ = true;
}

std::vector<DecisionRecord> DecisionLog::Snapshot() const {
  MutexLock lock(mutex_);
  if (!wrapped_) return records_;
  std::vector<DecisionRecord> out;
  out.reserve(records_.size());
  out.insert(out.end(), records_.begin() + static_cast<long>(next_slot_),
             records_.end());
  out.insert(out.end(), records_.begin(),
             records_.begin() + static_cast<long>(next_slot_));
  return out;
}

void DecisionLog::Clear() {
  MutexLock lock(mutex_);
  records_.clear();
  next_slot_ = 0;
  wrapped_ = false;
  chain_records_.clear();
  chain_next_slot_ = 0;
  chain_wrapped_ = false;
  total_recorded_.store(0, std::memory_order_relaxed);
}

namespace {

// Wraps a bare records array in the stamped document shared with the
// BenchReporter contract (schema_version + git sha from ATMX_GIT_SHA).
std::string StampRecordsDoc(const std::string& records) {
  std::ostringstream os;
  os << "{\"schema_version\":" << kDecisionLogSchemaVersion
     << ",\"git_sha\":\"" << EscapeJson(GitShaFromEnv())
     << "\",\"records\":" << records << '}';
  return os.str();
}

}  // namespace

std::string DecisionLog::ToJson() const {
  return StampRecordsDoc(RenderDecisionRecordsJson(Snapshot()));
}

std::string DecisionLog::ChainsToJson() const {
  return StampRecordsDoc(RenderChainDecisionRecordsJson(ChainSnapshot()));
}

std::string RenderDecisionRecordsJson(
    const std::vector<DecisionRecord>& records) {
  std::ostringstream os;
  os << '[';
  bool first = true;
  for (const DecisionRecord& r : records) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"op\":" << r.op_id << ",\"ti\":" << r.ti << ",\"tj\":" << r.tj
       << ",\"k0\":" << r.k0 << ",\"k1\":" << r.k1;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  ",\"rho_a\":%.6g,\"rho_b\":%.6g,\"rho_c\":%.6g,"
                  "\"rho_w\":%.6g",
                  r.rho_a, r.rho_b, r.rho_c, r.rho_w);
    os << buf;
    os << ",\"stored\":\"" << (r.a_stored_dense ? 'd' : 's')
       << (r.b_stored_dense ? 'd' : 's') << "\",\"kernel\":\""
       << EscapeJson(KernelTypeName(r.kernel)) << "\",\"c_dense\":"
       << (r.c_dense ? "true" : "false") << ",\"conv_a\":"
       << (r.a_converted ? "true" : "false") << ",\"conv_b\":"
       << (r.b_converted ? "true" : "false");
    std::snprintf(buf, sizeof(buf),
                  ",\"stored_cost\":%.6g,\"chosen_cost\":%.6g}",
                  r.stored_cost, r.chosen_cost);
    os << buf;
  }
  os << ']';
  return os.str();
}

std::string RenderChainDecisionRecordsJson(
    const std::vector<ChainDecisionRecord>& records) {
  std::ostringstream os;
  os << '[';
  bool first = true;
  for (const ChainDecisionRecord& r : records) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"op\":" << r.op_id << ",\"plan\":\"" << EscapeJson(r.plan)
       << "\",\"length\":" << r.length;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  ",\"planned_cost\":%.6g,\"ltr_cost\":%.6g,"
                  "\"total_seconds\":%.6g",
                  r.planned_cost, r.left_to_right_cost, r.total_seconds);
    os << buf;
    os << ",\"fused\":" << (r.fused ? "true" : "false")
       << ",\"fallback_reason\":\"" << EscapeJson(r.fallback_reason)
       << "\",\"fused_tasks\":" << r.fused_tasks
       << ",\"resident_peak_bytes\":" << r.resident_peak_bytes
       << ",\"budget_bytes\":" << r.budget_bytes
       << ",\"projected_peak_bytes\":" << r.projected_peak_bytes
       << ",\"products\":[";
    bool pfirst = true;
    for (const std::string& s : r.product_summaries) {
      if (!pfirst) os << ',';
      pfirst = false;
      os << '"' << EscapeJson(s) << '"';
    }
    os << "]}";
  }
  os << ']';
  return os.str();
}

}  // namespace atmx::obs
