// Windowed-rate sampler: a background thread that takes periodic
// MetricsRegistry snapshots into a fixed ring and, from each consecutive
// pair, derives per-second rates for every counter — published back into
// the registry as `rate.<counter-name>` gauges (plus the composite
// `rate.atmult.result_bytes` over the local+remote write-byte counters).
// Cumulative counters answer "how much since process start"; the rate
// gauges answer "how fast right now", which is what a live scrape of
// `/metrics` (stats_server.h) or `atmx watch` wants.
//
// The sampler also keeps the flight recorder's pre-rendered crash dump
// fresh: each tick re-renders the dump buffers (flight_recorder.h), so a
// fatal signal at any point persists a snapshot at most one period old.
//
// Sampler bookkeeping metrics: `sampler.ticks` (counter),
// `sampler.window_seconds` (gauge, measured width of the last window).
//
// Compiled only under -DATMX_OBS=ON.

#ifndef ATMX_OBS_SNAPSHOT_RING_H_
#define ATMX_OBS_SNAPSHOT_RING_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace atmx::obs {

// One registry snapshot with the steady-clock instant it was taken
// (TraceRecorder::NowNanos epoch, so snapshots and trace events share a
// timeline).
struct TimedSnapshot {
  std::int64_t ts_ns = 0;
  std::vector<MetricSample> samples;
};

// Derives `rate.*` gauge values from two snapshots of the same registry:
// for every counter in `newer`, (newer - older) / window_seconds (older
// value 0 when the counter registered mid-window; 0.0 instead of a
// negative rate when the registry was reset mid-window), plus
// `rate.atmult.result_bytes` summing the atmult.bytes.{local,remote}_write
// deltas when present. Returns an empty vector when the window is empty
// or non-positive. Pure function of its inputs — tests drive it with
// hand-built snapshots.
std::vector<std::pair<std::string, double>> DeriveRates(
    const TimedSnapshot& older, const TimedSnapshot& newer);

// The background sampler. Start/Stop are idempotent-safe to call from one
// controlling thread; sampling itself runs on a dedicated thread created
// by Start.
class SnapshotSampler {
 public:
  struct Options {
    // Tick period. The rate window equals the period in steady state.
    std::chrono::milliseconds period{500};
    // Snapshots retained; >= 2 so a rate window always exists.
    std::size_t ring_capacity = 120;
    // Publish rate.* gauges back into the registry (off in tests that
    // want DeriveRates output without registry side effects).
    bool publish_rates = true;
    // Registry to sample; nullptr = MetricsRegistry::Global().
    MetricsRegistry* registry = nullptr;
  };

  // Process-wide sampler used by bench_common / stats_server wiring.
  static SnapshotSampler& Global();

  SnapshotSampler() = default;
  ~SnapshotSampler();

  SnapshotSampler(const SnapshotSampler&) = delete;
  SnapshotSampler& operator=(const SnapshotSampler&) = delete;

  // Seeds the ring with one immediate sample and launches the thread.
  // InvalidArgument on a non-positive period or ring_capacity < 2;
  // Internal if already running.
  [[nodiscard]] Status Start(const Options& options);

  // Signals the thread, joins it, and leaves the ring intact. No-op when
  // not running.
  void Stop();

  bool running() const;

  // Takes one sample now (also the per-tick body): snapshot the registry,
  // push into the ring, derive + publish rates against the previous
  // entry, refresh the flight recorder. Callable without Start for
  // deterministic tests.
  void SampleOnce();

  // The newest `max_count` snapshots, oldest first.
  std::vector<TimedSnapshot> History(std::size_t max_count) const;

  // Samples taken so far (including the seed sample).
  std::uint64_t ticks() const {
    return ticks_.load(std::memory_order_relaxed);
  }

 private:
  void ThreadMain();

  MetricsRegistry& registry() const;

  mutable Mutex mu_;
  CondVar cv_;
  Options options_ ATMX_GUARDED_BY(mu_);
  bool running_ ATMX_GUARDED_BY(mu_) = false;
  bool stop_requested_ ATMX_GUARDED_BY(mu_) = false;
  std::thread thread_ ATMX_GUARDED_BY(mu_);
  std::deque<TimedSnapshot> ring_ ATMX_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> ticks_{0};
};

}  // namespace atmx::obs

#endif  // ATMX_OBS_SNAPSHOT_RING_H_
