// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms. All update paths are single atomic operations, cheap enough
// to stay on in release builds; registration (name lookup) takes a mutex
// and is meant to happen once per call site (the ATMX_COUNTER_ADD etc.
// macros in obs/obs.h cache the returned reference in a function-local
// static).
//
// Metric names are stable, dot-separated, lower-case identifiers, e.g.
// `atmult.kernel.spspd_gemm.invocations` — see docs/OBSERVABILITY.md for
// the full catalogue. Once registered, a metric's type never changes;
// requesting an existing name with a different type is a programming error
// (ATMX_CHECK).

#ifndef ATMX_OBS_METRICS_H_
#define ATMX_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace atmx::obs {

// Monotonic event count.
class Counter {
 public:
  void Add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-written instantaneous value.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: `bounds` are the inclusive upper bounds of the
// first N buckets; an implicit overflow bucket catches everything above
// the last bound. Observations also accumulate a total count and sum, so
// consumers can derive the mean.
class Histogram {
 public:
  // Coherent-enough view of a histogram taken concurrently with Observe:
  // `count >= sum of buckets` always holds (see the ordering contract in
  // Observe/TakeSnapshot), which the cumulative OpenMetrics rendering
  // (+Inf bucket == _count, non-decreasing series) depends on.
  struct Snapshot {
    std::vector<std::uint64_t> buckets;  // size bounds().size() + 1
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  // Bucket counts, size bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> BucketCounts() const;
  // Buckets + count + sum with the count >= Σbuckets guarantee; scrapes
  // and registry snapshots use this instead of three independent reads.
  Snapshot TakeSnapshot() const;
  std::uint64_t TotalCount() const {
    return count_.load(std::memory_order_relaxed);
  }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const {
    const std::uint64_t n = TotalCount();
    return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
  }
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// One entry of a registry snapshot, for dumping/reporting.
struct MetricSample {
  enum class Type { kCounter, kGauge, kHistogram };
  std::string name;
  Type type;
  // kCounter: value in counter_value; kGauge: gauge_value;
  // kHistogram: bounds/buckets/count/sum.
  std::uint64_t counter_value = 0;
  double gauge_value = 0.0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;
};

class MetricsRegistry {
 public:
  // Stand-alone registries are constructible for tests; production code
  // uses the Global() instance.
  MetricsRegistry() = default;

  static MetricsRegistry& Global();

  // Returns the metric registered under `name`, creating it on first use.
  // References stay valid for the registry's lifetime.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  // `bounds` (strictly increasing upper bucket bounds) only matter on the
  // creating call; later lookups return the existing histogram unchanged.
  Histogram& GetHistogram(std::string_view name,
                          std::vector<double> bounds = DefaultBounds());

  // Sorted-by-name snapshot of every registered metric.
  std::vector<MetricSample> Snapshot() const;

  // Zeroes all values; registrations (and cached references) survive.
  void ResetAll();

  // {"metric.name": value | {histogram object}, ...}
  std::string ToJson() const;

  // Column-aligned report via common/table_printer.
  std::string ToTable() const;

  // Generic default bounds covering both sub-millisecond timings (in
  // seconds) and dimension-like magnitudes.
  static std::vector<double> DefaultBounds();

 private:
  // Guards the registration maps only; the metric objects themselves are
  // lock-free and stay valid (stable addresses) once created, so cached
  // references update without ever touching mutex_ again.
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      ATMX_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      ATMX_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      ATMX_GUARDED_BY(mutex_);
};

}  // namespace atmx::obs

#endif  // ATMX_OBS_METRICS_H_
