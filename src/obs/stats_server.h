// Embedded stats endpoint: a minimal, dependency-free HTTP/1.0 server on
// one listener thread (blocking accept, one request per connection,
// Connection: close) exposing the live observability state of a running
// process:
//
//   /metrics        OpenMetrics text (exposition.h)
//   /metrics.json   flat JSON metrics (same document as ToJson)
//   /trace          current Chrome trace_event ring
//   /decisions      optimizer decision log (JSON array)
//   /healthz        "ok" liveness probe
//
// Off by default: benches only Start() it when --stats-port= or
// ATMX_STATS_PORT is given (bench/bench_common.h). Port 0 binds an
// ephemeral port (printed by the benches, read back via port()) so CI can
// scrape without reserving numbers. Binds 127.0.0.1 only — this is a
// diagnostics endpoint, not a public service.
//
// Locking discipline: the mutex only guards lifecycle state (thread
// handle, running flag, options). No lock is ever held across accept(2),
// recv(2), or send(2) — a stuck client must not be able to wedge Start/
// Stop — and tools/atmx_lint.py's no-lock-across-callback check enforces
// exactly that for this file.
//
// HttpGet/ParseHttpUrl are the matching client half, shared by the
// `atmx watch` subcommand and the tests.
//
// Compiled only under -DATMX_OBS=ON.

#ifndef ATMX_OBS_STATS_SERVER_H_
#define ATMX_OBS_STATS_SERVER_H_

#include <atomic>
#include <string>
#include <thread>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace atmx::obs {

class StatsServer {
 public:
  struct Options {
    // TCP port on 127.0.0.1; 0 = ephemeral (read back via port()).
    int port = 0;
    // Registry served; nullptr = MetricsRegistry::Global().
    MetricsRegistry* registry = nullptr;
  };

  // Process-wide server used by the bench wiring.
  static StatsServer& Global();

  StatsServer() = default;
  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  // Binds, listens, and launches the listener thread. InvalidArgument on
  // a port outside [0, 65535]; Internal if already running; IoError when
  // the socket cannot be bound.
  [[nodiscard]] Status Start(const Options& options);

  // Shuts the listening socket down and joins the thread. In-flight
  // requests finish; no new connections are accepted. No-op when not
  // running.
  void Stop();

  bool running() const;

  // The bound port (resolved for port 0); -1 when not running.
  int port() const;

  // Pure request → response mapping, exposed for tests: takes the raw
  // request head ("GET /metrics HTTP/1.0\r\n..."), returns the complete
  // HTTP/1.0 response (status line, headers, body).
  static std::string HandleRequest(const std::string& request,
                                   MetricsRegistry& registry);

 private:
  void ThreadMain(int listen_fd, MetricsRegistry* registry);

  mutable Mutex mu_;
  bool running_ ATMX_GUARDED_BY(mu_) = false;
  int port_ ATMX_GUARDED_BY(mu_) = -1;
  std::thread thread_ ATMX_GUARDED_BY(mu_);
  // Owned by the listener; Stop shuts it down to unblock accept.
  std::atomic<int> listen_fd_{-1};
};

// A parsed http:// URL. Path defaults to "/" when absent.
struct HttpUrl {
  std::string host;
  int port = 0;
  std::string path;
};

// Accepts "http://host:port/path" (scheme optional, IPv4 or "localhost"
// hosts). InvalidArgument on anything else.
[[nodiscard]] Result<HttpUrl> ParseHttpUrl(const std::string& url);

// One blocking HTTP/1.0 GET. Returns the response body on a 200;
// IoError on connect/send/recv failure or timeout, Internal on a
// non-200 status.
[[nodiscard]] Result<std::string> HttpGet(const std::string& host, int port,
                                          const std::string& path,
                                          int timeout_ms = 2000);

}  // namespace atmx::obs

#endif  // ATMX_OBS_STATS_SERVER_H_
