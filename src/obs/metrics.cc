#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/table_printer.h"
#include "obs/exposition.h"

namespace atmx::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1) {
  ATMX_CHECK(!bounds_.empty());
  ATMX_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());
  // Ordering contract with TakeSnapshot: count (and sum) update first,
  // the bucket last with release. A snapshot acquire-loads the buckets
  // before reading count, so every observation visible in a bucket has
  // its count increment visible too — count >= Σbuckets in any snapshot,
  // no matter how many Observe calls race with it.
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> requires C++20 library support that gcc
  // lacks at some versions; a CAS loop is portable and uncontended-cheap.
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
  buckets_[bucket].fetch_add(1, std::memory_order_release);
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> counts(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  snap.buckets.resize(buckets_.size());
  // Buckets first, with acquire: any increment we see here synchronizes
  // with the releasing fetch_add in Observe, making the matching count
  // increment (sequenced before it) visible to the loads below.
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_acquire);
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.count = count_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::vector<double> MetricsRegistry::DefaultBounds() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1000.0};
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mutex_);
  ATMX_CHECK(gauges_.find(name) == gauges_.end());
  ATMX_CHECK(histograms_.find(name) == histograms_.end());
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mutex_);
  ATMX_CHECK(counters_.find(name) == counters_.end());
  ATMX_CHECK(histograms_.find(name) == histograms_.end());
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  MutexLock lock(mutex_);
  ATMX_CHECK(counters_.find(name) == counters_.end());
  ATMX_CHECK(gauges_.find(name) == gauges_.end());
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::vector<MetricSample> samples;
  MutexLock lock(mutex_);
  samples.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSample s;
    s.name = name;
    s.type = MetricSample::Type::kCounter;
    s.counter_value = counter->Value();
    samples.push_back(std::move(s));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSample s;
    s.name = name;
    s.type = MetricSample::Type::kGauge;
    s.gauge_value = gauge->Value();
    samples.push_back(std::move(s));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricSample s;
    s.name = name;
    s.type = MetricSample::Type::kHistogram;
    s.bounds = histogram->bounds();
    Histogram::Snapshot snap = histogram->TakeSnapshot();
    s.buckets = std::move(snap.buckets);
    s.count = snap.count;
    s.sum = snap.sum;
    samples.push_back(std::move(s));
  }
  std::sort(samples.begin(), samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return samples;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string MetricsRegistry::ToJson() const {
  return RenderMetricsJson(Snapshot());
}

std::string MetricsRegistry::ToTable() const {
  const std::vector<MetricSample> samples = Snapshot();
  TablePrinter table({"metric", "type", "value", "detail"});
  for (const MetricSample& s : samples) {
    switch (s.type) {
      case MetricSample::Type::kCounter:
        table.AddRow({s.name, "counter", std::to_string(s.counter_value),
                      ""});
        break;
      case MetricSample::Type::kGauge:
        table.AddRow({s.name, "gauge", TablePrinter::Fmt(s.gauge_value, 6),
                      ""});
        break;
      case MetricSample::Type::kHistogram: {
        std::ostringstream detail;
        detail << "mean=" << TablePrinter::Fmt(
                      s.count == 0
                          ? 0.0
                          : s.sum / static_cast<double>(s.count),
                      6)
               << " buckets=[";
        for (std::size_t i = 0; i < s.buckets.size(); ++i) {
          if (i > 0) detail << ' ';
          detail << s.buckets[i];
        }
        detail << ']';
        table.AddRow({s.name, "histogram", std::to_string(s.count),
                      detail.str()});
        break;
      }
    }
  }
  return table.ToString();
}

}  // namespace atmx::obs
