#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "obs/decision_log.h"
#include "obs/json_util.h"
#include "obs/mem_tracker.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace atmx::obs {

namespace {

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};
constexpr std::size_t kNumFatalSignals =
    sizeof(kFatalSignals) / sizeof(kFatalSignals[0]);

// Previous dispositions, restored by Uninstall. Written only while
// installing/uninstalling (single controlling thread).
struct sigaction g_saved_actions[kNumFatalSignals];
atmx::internal::CheckFailureHook g_saved_check_hook = nullptr;

// Bounded, async-signal-safe string building for the dump prefix.
char* AppendStr(char* p, const char* end, const char* s) {
  while (*s != '\0' && p < end) *p++ = *s++;
  return p;
}

char* AppendUint(char* p, const char* end, unsigned long long v) {
  char digits[24];
  int n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0 && p < end) *p++ = digits[--n];
  return p;
}

bool WriteAll(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t written = ::write(fd, data, size);
    if (written <= 0) {
      if (written < 0 && errno == EINTR) continue;
      return false;
    }
    data += written;
    size -= static_cast<std::size_t>(written);
  }
  return true;
}

// Body served when a crash beats the first Refresh: keeps the dump
// schema-complete so parsers never special-case an empty file.
constexpr char kEmptyBody[] =
    "\"mem_high_water_bytes\":0,\"metrics\":{},\"decisions\":[],"
    "\"trace\":{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}";

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

Status FlightRecorder::Install(const Options& options) {
  {
    MutexLock lock(mu_);
    if (installed_.load(std::memory_order_relaxed)) {
      return Status::Internal("flight recorder already installed");
    }
    const std::string path = options.output_dir + "/atmx_flight_" +
                             std::to_string(::getpid()) + ".json";
    if (path.size() >= sizeof(path_)) {
      return Status::InvalidArgument(
          "flight recorder output path too long: " + path);
    }
    std::memcpy(path_, path.c_str(), path.size() + 1);
    options_ = options;
    dumped_.store(false, std::memory_order_relaxed);
  }
  installed_.store(true, std::memory_order_release);
  Refresh();

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &FlightRecorder::SignalHandler;
  sigemptyset(&sa.sa_mask);
  for (std::size_t i = 0; i < kNumFatalSignals; ++i) {
    if (::sigaction(kFatalSignals[i], &sa, &g_saved_actions[i]) != 0) {
      installed_.store(false, std::memory_order_release);
      return Status::IoError("flight recorder: sigaction failed");
    }
  }
  g_saved_check_hook =
      internal::SetCheckFailureHook(&FlightRecorder::CheckHook);
  return Status::Ok();
}

void FlightRecorder::Uninstall() {
  if (!installed_.exchange(false, std::memory_order_acq_rel)) return;
  for (std::size_t i = 0; i < kNumFatalSignals; ++i) {
    ::sigaction(kFatalSignals[i], &g_saved_actions[i], nullptr);
  }
  internal::SetCheckFailureHook(g_saved_check_hook);
  g_saved_check_hook = nullptr;
  dumped_.store(false, std::memory_order_relaxed);
}

void FlightRecorder::Refresh() {
  if (!installed()) return;
  if (dumped_.load(std::memory_order_acquire)) return;
  std::size_t max_events;
  std::size_t max_decisions;
  {
    MutexLock lock(mu_);
    max_events = options_.max_trace_events;
    max_decisions = options_.max_decisions;
  }

  std::vector<TraceEvent> events = TraceRecorder::Global().Snapshot();
  if (events.size() > max_events) {
    events.erase(events.begin(),
                 events.end() - static_cast<long>(max_events));
  }
  std::vector<DecisionRecord> decisions = DecisionLog::Global().Snapshot();
  if (decisions.size() > max_decisions) {
    decisions.erase(decisions.begin(),
                    decisions.end() - static_cast<long>(max_decisions));
  }
  std::string body;
  body.reserve(1 << 14);
  body += "\"mem_high_water_bytes\":";
  body += std::to_string(MemTracker::Global().high_water_bytes());
  body += ",\"metrics\":";
  body += MetricsRegistry::Global().ToJson();
  body += ",\"decisions\":";
  body += RenderDecisionRecordsJson(decisions);
  body += ",\"trace\":";
  body += RenderTraceEventsJson(events);

  MutexLock lock(mu_);
  // A dump may have started while rendering; the buffer active_ points at
  // must not change underneath the handler, and the inactive one might be
  // the handler's next read if it loaded active_ before our last publish —
  // once dumping begins, stop touching both.
  if (dumped_.load(std::memory_order_acquire)) return;
  std::string* target = active_.load(std::memory_order_relaxed) == &bodies_[0]
                            ? &bodies_[1]
                            : &bodies_[0];
  *target = std::move(body);
  active_.store(target, std::memory_order_release);
}

Status FlightRecorder::DumpNow(const std::string& reason) {
  if (!installed()) {
    return Status::Internal("flight recorder not installed");
  }
  Refresh();
  const std::string safe_reason = EscapeJson(reason);
  if (!WriteDumpFile(0, safe_reason.c_str())) {
    return Status::IoError(std::string("failed writing flight dump: ") +
                           path_);
  }
  return Status::Ok();
}

std::string FlightRecorder::DumpPath() const { return std::string(path_); }

void FlightRecorder::SignalHandler(int sig) {
  Global().DumpFromHandler(sig, "signal");
  // Restore the default disposition and re-raise so the process still
  // dies with the original signal (exit status, core dumps, CI checks).
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void FlightRecorder::CheckHook() {
  // std::abort() follows in check.cc; the SIGABRT handler then sees
  // dumped_ already claimed and goes straight to re-raise.
  Global().DumpFromHandler(0, "check");
}

void FlightRecorder::DumpFromHandler(int sig, const char* reason) {
  if (dumped_.exchange(true, std::memory_order_acq_rel)) return;
  (void)WriteDumpFile(sig, reason);
}

bool FlightRecorder::WriteDumpFile(int sig, const char* reason) {
  if (path_[0] == '\0') return false;
  const std::string* body = active_.load(std::memory_order_acquire);
  const int fd = ::open(path_, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  char prefix[192];
  char* p = prefix;
  const char* end = prefix + sizeof(prefix);
  p = AppendStr(p, end, "{\"flight_schema\":1,\"pid\":");
  p = AppendUint(p, end, static_cast<unsigned long long>(::getpid()));
  p = AppendStr(p, end, ",\"signal\":");
  p = AppendUint(p, end,
                 sig < 0 ? 0ull : static_cast<unsigned long long>(sig));
  p = AppendStr(p, end, ",\"reason\":\"");
  p = AppendStr(p, end, reason);
  p = AppendStr(p, end, "\",");
  bool ok = WriteAll(fd, prefix, static_cast<std::size_t>(p - prefix));
  if (body != nullptr) {
    ok = WriteAll(fd, body->data(), body->size()) && ok;
  } else {
    ok = WriteAll(fd, kEmptyBody, sizeof(kEmptyBody) - 1) && ok;
  }
  ok = WriteAll(fd, "}", 1) && ok;
  ::close(fd);
  return ok;
}

}  // namespace atmx::obs
