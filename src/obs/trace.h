// Lock-sharded, thread-local-buffered trace recorder emitting Chrome
// `trace_event` JSON (loadable in chrome://tracing and Perfetto).
//
// Design constraints, in priority order:
//   1. near-zero cost while disabled: one relaxed atomic load per span,
//   2. cheap while enabled: events append to a per-thread buffer whose
//      mutex is only ever contended by Snapshot/Clear (the shard lock),
//   3. no dependencies, bounded memory (per-thread event cap; overflow is
//      counted, not fatal).
//
// Event names and categories are `const char*` and must be string literals
// (or otherwise outlive the recorder) — the hot path stores the pointer.
// Args are rendered to a JSON fragment at record time, but only when the
// recorder is enabled.
//
// The scoped-span macros (ATMX_TRACE_SPAN etc.) live in obs/obs.h so
// instrumented code compiles away entirely under ATMX_OBS=OFF.

#ifndef ATMX_OBS_TRACE_H_
#define ATMX_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace atmx::obs {

// One key/value pair attached to a trace event. Implicit constructors let
// call sites write {{"ti", ti}, {"kernel", name}}.
struct TraceArg {
  enum class Kind { kInt, kDouble, kString };

  const char* key;
  Kind kind;
  std::int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;

  TraceArg(const char* k, std::int64_t v)
      : key(k), kind(Kind::kInt), int_value(v) {}
  TraceArg(const char* k, int v)
      : key(k), kind(Kind::kInt), int_value(v) {}
  TraceArg(const char* k, std::uint64_t v)
      : key(k), kind(Kind::kInt), int_value(static_cast<std::int64_t>(v)) {}
  TraceArg(const char* k, double v)
      : key(k), kind(Kind::kDouble), double_value(v) {}
  TraceArg(const char* k, const char* v)
      : key(k), kind(Kind::kString), string_value(v) {}
  TraceArg(const char* k, std::string v)
      : key(k), kind(Kind::kString), string_value(std::move(v)) {}
};

// One recorded event. Timestamps are nanoseconds since the recorder's
// process-wide epoch; serialization converts to the microseconds the
// Chrome format expects.
struct TraceEvent {
  const char* name = "";
  const char* category = "";
  char phase = 'X';             // 'X' complete span, 'i' instant
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;      // valid for phase 'X'
  std::uint32_t tid = 0;
  std::string args_json;        // rendered {"k":v,...} fragment, or empty
};

class TraceRecorder {
 public:
  // Process-wide recorder. Disabled by default.
  static TraceRecorder& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Nanoseconds since the recorder epoch (steady clock).
  static std::int64_t NowNanos();

  // Records a complete ('X') event covering [ts_ns, ts_ns + dur_ns).
  // No-op while disabled.
  void RecordComplete(const char* category, const char* name,
                      std::int64_t ts_ns, std::int64_t dur_ns,
                      std::initializer_list<TraceArg> args = {});
  void RecordComplete(const char* category, const char* name,
                      std::int64_t ts_ns, std::int64_t dur_ns,
                      const std::vector<TraceArg>& args);

  // Records an instant ('i') event at the current time. No-op while
  // disabled.
  void RecordInstant(const char* category, const char* name,
                     std::initializer_list<TraceArg> args = {});

  // Drops all buffered events (buffers stay registered).
  void Clear();

  // Copies all buffered events, sorted by start timestamp.
  std::vector<TraceEvent> Snapshot() const;

  std::size_t EventCount() const;

  // Events discarded because a thread buffer hit kMaxEventsPerThread.
  std::uint64_t DroppedEvents() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  // Serializes everything recorded so far as a Chrome trace_event JSON
  // object: {"traceEvents": [...], "displayTimeUnit": "ms"}.
  std::string ToJson() const;

  // ToJson() to a file.
  [[nodiscard]] Status WriteJson(const std::string& path) const;

  static constexpr std::size_t kMaxEventsPerThread = 1 << 20;

 private:
  // LOCK ORDER: registry_mutex_ strictly before any shard `mutex`.
  // Snapshot/Clear/EventCount walk buffers_ under registry_mutex_ and take
  // each shard lock nested inside it; the append hot path takes only its
  // own shard lock and must NEVER acquire registry_mutex_ while holding it
  // (LocalBuffer registers a new shard under registry_mutex_ *before* the
  // shard is ever locked). The shard mutexes are per-thread dynamic
  // objects, so the order is documented here rather than expressed with
  // ATMX_ACQUIRED_AFTER (which needs statically nameable members);
  // tools/atmx_lint.py's self-test pins this comment so it cannot rot
  // silently.
  struct ThreadBuffer {
    Mutex mutex;  // shard lock: append vs Snapshot/Clear
    std::vector<TraceEvent> events ATMX_GUARDED_BY(mutex);
    // Written once during registration (under registry_mutex_, before the
    // buffer is published in buffers_); immutable afterwards, so the
    // owning thread's unlocked reads in Append are race-free.
    std::uint32_t tid;
  };

  TraceRecorder() = default;

  ThreadBuffer& LocalBuffer() ATMX_EXCLUDES(registry_mutex_);
  void Append(TraceEvent event, const TraceArg* args, std::size_t num_args)
      ATMX_EXCLUDES(registry_mutex_);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> dropped_{0};

  mutable Mutex registry_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_
      ATMX_GUARDED_BY(registry_mutex_);
  std::uint32_t next_tid_ ATMX_GUARDED_BY(registry_mutex_) = 1;
};

// RAII span: captures the start time at construction and records one
// complete event at destruction. All work is skipped when the recorder is
// disabled at construction time.
class ScopedSpan {
 public:
  ScopedSpan(const char* category, const char* name)
      : category_(category), name_(name),
        start_ns_(TraceRecorder::Global().enabled()
                      ? TraceRecorder::NowNanos()
                      : kDisabled) {}

  ScopedSpan(const char* category, const char* name,
             std::initializer_list<TraceArg> args)
      : ScopedSpan(category, name) {
    if (start_ns_ != kDisabled) {
      args_.assign(args.begin(), args.end());
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan();

 private:
  static constexpr std::int64_t kDisabled = -1;

  const char* category_;
  const char* name_;
  std::int64_t start_ns_;
  std::vector<TraceArg> args_;
};

// Renders `events` as a complete Chrome trace_event JSON document:
// {"traceEvents":[...],"displayTimeUnit":"ms"}. TraceRecorder::ToJson is
// this over a full Snapshot(); the flight recorder calls it directly with
// a bounded tail of the ring so a crash dump stays small.
std::string RenderTraceEventsJson(const std::vector<TraceEvent>& events);

}  // namespace atmx::obs

#endif  // ATMX_OBS_TRACE_H_
