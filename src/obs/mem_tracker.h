// Process-wide memory telemetry: a logical allocation tracker with a
// monotonic high-water mark, plus /proc-based RSS sampling.
//
// The logical tracker follows the *operator-transient* footprint: ATMULT
// records each produced result tile and every JIT-converted tile copy as
// it appears, and releases the operation's contribution when the operation
// ends (the result's ownership passes to the caller; the conversion cache
// dies with the operation). `mem.current_bytes` therefore ramps up and
// back down across an operation while `mem.high_water_bytes` ratchets to
// the peak — the number the water-level optimizer's projection
// (`atmult.waterlevel.predicted_bytes`, Eq. of section III-E) has to stay
// honest against.
//
// All update paths are a handful of relaxed atomics; gauges are published
// on every update so dashboards track live.
//
// Compiled only under -DATMX_OBS=ON; call sites are guarded like the rest
// of the obs layer.

#ifndef ATMX_OBS_MEM_TRACKER_H_
#define ATMX_OBS_MEM_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace atmx::obs {

class MemTracker {
 public:
  static MemTracker& Global();

  // Adds `bytes` to the tracked-live total, ratcheting the high-water
  // mark; publishes mem.current_bytes / mem.high_water_bytes.
  void RecordAlloc(std::size_t bytes);

  // Subtracts `bytes`, clamping at zero (mismatched accounting must never
  // underflow into a huge unsigned value).
  void RecordFree(std::size_t bytes);

  std::uint64_t current_bytes() const {
    return current_.load(std::memory_order_relaxed);
  }
  // Never decreases (except via ResetForTesting).
  std::uint64_t high_water_bytes() const {
    return high_water_.load(std::memory_order_relaxed);
  }

  // Zeroes both values and republishes the gauges. Testing only.
  void ResetForTesting();

  // Kernel-reported process memory, read from /proc/self/status.
  struct ProcessSample {
    bool valid = false;
    std::uint64_t rss_bytes = 0;      // VmRSS
    std::uint64_t rss_peak_bytes = 0; // VmHWM
  };

  // Samples the kernel view and publishes mem.rss_bytes /
  // mem.rss_high_water_bytes. Invalid (all zero) off Linux.
  static ProcessSample SampleProcess();

 private:
  MemTracker() = default;

  void PublishGauges();

  std::atomic<std::uint64_t> current_{0};
  std::atomic<std::uint64_t> high_water_{0};
};

}  // namespace atmx::obs

#endif  // ATMX_OBS_MEM_TRACKER_H_
