#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json_util.h"

namespace atmx::obs {

namespace {

// Renders the args fragment: {"k":v,...}. Numbers use enough precision to
// round-trip; strings are escaped.
std::string RenderArgs(const TraceArg* args, std::size_t num_args) {
  if (num_args == 0) return std::string();
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < num_args; ++i) {
    const TraceArg& a = args[i];
    if (i > 0) os << ',';
    os << '"' << EscapeJson(a.key) << "\":";
    switch (a.kind) {
      case TraceArg::Kind::kInt:
        os << a.int_value;
        break;
      case TraceArg::Kind::kDouble: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", a.double_value);
        os << buf;
        break;
      }
      case TraceArg::Kind::kString:
        os << '"' << EscapeJson(a.string_value) << '"';
        break;
    }
  }
  os << '}';
  return os.str();
}

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

std::int64_t TraceRecorder::NowNanos() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch)
      .count();
}

TraceRecorder::ThreadBuffer& TraceRecorder::LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  if (buffer == nullptr) {
    buffer = std::make_shared<ThreadBuffer>();
    MutexLock lock(registry_mutex_);
    buffer->tid = next_tid_++;
    buffers_.push_back(buffer);
  }
  return *buffer;
}

void TraceRecorder::Append(TraceEvent event, const TraceArg* args,
                           std::size_t num_args) {
  event.args_json = RenderArgs(args, num_args);
  ThreadBuffer& buffer = LocalBuffer();
  event.tid = buffer.tid;
  MutexLock lock(buffer.mutex);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer.events.push_back(std::move(event));
}

void TraceRecorder::RecordComplete(const char* category, const char* name,
                                   std::int64_t ts_ns, std::int64_t dur_ns,
                                   std::initializer_list<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = 'X';
  event.ts_ns = ts_ns;
  event.dur_ns = dur_ns;
  Append(std::move(event), args.begin(), args.size());
}

void TraceRecorder::RecordComplete(const char* category, const char* name,
                                   std::int64_t ts_ns, std::int64_t dur_ns,
                                   const std::vector<TraceArg>& args) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = 'X';
  event.ts_ns = ts_ns;
  event.dur_ns = dur_ns;
  Append(std::move(event), args.data(), args.size());
}

void TraceRecorder::RecordInstant(const char* category, const char* name,
                                  std::initializer_list<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = 'i';
  event.ts_ns = NowNanos();
  Append(std::move(event), args.begin(), args.size());
}

void TraceRecorder::Clear() {
  MutexLock registry_lock(registry_mutex_);
  for (const auto& buffer : buffers_) {
    MutexLock lock(buffer->mutex);
    buffer->events.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<TraceEvent> all;
  {
    MutexLock registry_lock(registry_mutex_);
    for (const auto& buffer : buffers_) {
      MutexLock lock(buffer->mutex);
      all.insert(all.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return all;
}

std::size_t TraceRecorder::EventCount() const {
  MutexLock registry_lock(registry_mutex_);
  std::size_t count = 0;
  for (const auto& buffer : buffers_) {
    MutexLock lock(buffer->mutex);
    count += buffer->events.size();
  }
  return count;
}

std::string TraceRecorder::ToJson() const {
  return RenderTraceEventsJson(Snapshot());
}

std::string RenderTraceEventsJson(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",\n";
    first = false;
    char ts[32], dur[32];
    // Chrome timestamps are microseconds; keep nanosecond resolution via
    // the fractional part.
    std::snprintf(ts, sizeof(ts), "%.3f",
                  static_cast<double>(e.ts_ns) / 1e3);
    os << "{\"name\":\"" << EscapeJson(e.name) << "\",\"cat\":\""
       << EscapeJson(e.category) << "\",\"ph\":\"" << e.phase
       << "\",\"ts\":" << ts << ",\"pid\":1,\"tid\":" << e.tid;
    if (e.phase == 'X') {
      std::snprintf(dur, sizeof(dur), "%.3f",
                    static_cast<double>(e.dur_ns) / 1e3);
      os << ",\"dur\":" << dur;
    }
    if (e.phase == 'i') {
      os << ",\"s\":\"t\"";  // instant scope: thread
    }
    if (!e.args_json.empty()) {
      os << ",\"args\":" << e.args_json;
    }
    os << '}';
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open trace output file: " + path);
  }
  const std::string json = ToJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.close();
  if (!out) {
    return Status::IoError("failed writing trace output file: " + path);
  }
  return Status::Ok();
}

ScopedSpan::~ScopedSpan() {
  if (start_ns_ == kDisabled) return;
  const std::int64_t end_ns = TraceRecorder::NowNanos();
  TraceRecorder& recorder = TraceRecorder::Global();
  // If tracing was disabled mid-span, drop the event rather than emit a
  // span that Snapshot consumers cannot pair with an enable window.
  if (!recorder.enabled()) return;
  recorder.RecordComplete(category_, name_, start_ns_, end_ns - start_ns_,
                          args_);
}

}  // namespace atmx::obs
