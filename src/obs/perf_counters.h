// Hardware-counter profiling via perf_event_open: cycles, instructions,
// LLC loads/misses, dTLB misses, and task-clock, read per-thread with RAII
// scoped attribution. Counter deltas are attached as args to the trace
// spans the rest of the obs layer already emits, and accumulated into
// per-kernel-variant metrics (`kernel.<variant>.cycles`,
// `kernel.<variant>.llc_miss_rate`, ...), turning the paper's hardware
// claims — LLC-capacity-derived tile sizes, cache-friendly Morton layouts,
// NUMA-local stealing — into measurable quantities.
//
// Availability is probed exactly ONCE per process (first use): each
// counter is opened individually, so a virtualized host without a PMU can
// still deliver the software task-clock while the hardware events degrade
// to absent. The probe result is published as the metrics gauge
// `perf.available` (any counter usable) and `perf.hw_available` (hardware
// events usable); a restrictive `perf_event_paranoid` or a seccomp filter
// therefore costs one gauge, never a per-span failure. `ATMX_PERF=0`
// disables collection outright. When nothing is available every API below
// degrades to a deterministic stub: snapshots/deltas are invalid-and-zero
// and ScopedPerfSpan behaves exactly like a plain ScopedSpan.
//
// This header is only compiled under -DATMX_OBS=ON (it is pulled in via
// obs/obs.h's enabled branch); an OFF build carries no perf symbols.

#ifndef ATMX_OBS_PERF_COUNTERS_H_
#define ATMX_OBS_PERF_COUNTERS_H_

#include <array>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "obs/trace.h"

namespace atmx::obs {

// Counter slots. Values index the arrays below; the names double as the
// trace-arg keys and the metric-name suffixes.
enum class PerfCounterId : int {
  kCycles = 0,
  kInstructions,
  kLlcLoads,
  kLlcMisses,
  kDtlbMisses,
  kTaskClockNs,
};
inline constexpr int kNumPerfCounters = 6;

// Stable lower-case name: "cycles", "instructions", "llc_loads",
// "llc_misses", "dtlb_misses", "task_clock_ns".
const char* PerfCounterName(PerfCounterId id);

inline constexpr std::uint32_t PerfCounterBit(PerfCounterId id) {
  return 1u << static_cast<int>(id);
}

// Multiplex-scaled counter values at one point in time. `present` flags
// which slots have an open counter behind them; absent slots stay 0.
struct PerfSnapshot {
  bool valid = false;
  std::uint32_t present = 0;
  std::array<double, kNumPerfCounters> scaled{};
};

// Difference of two snapshots, clamped to >= 0 per counter (multiplex
// scaling can jitter slightly backwards) so trace args are always
// non-negative integers.
struct PerfDelta {
  bool valid = false;
  std::uint32_t present = 0;
  std::array<std::uint64_t, kNumPerfCounters> value{};

  bool has(PerfCounterId id) const {
    return (present & PerfCounterBit(id)) != 0;
  }
  std::uint64_t operator[](PerfCounterId id) const {
    return value[static_cast<std::size_t>(id)];
  }
};

// One thread's set of counter fds (each counter opened individually, so
// unsupported events degrade per-slot). Thread-affine: counts follow the
// opening thread. Not copyable; closed on destruction.
class PerfCounterSet {
 public:
  PerfCounterSet();
  ~PerfCounterSet();
  PerfCounterSet(const PerfCounterSet&) = delete;
  PerfCounterSet& operator=(const PerfCounterSet&) = delete;

  // Any counter open on this thread?
  bool valid() const { return present_ != 0; }
  std::uint32_t present() const { return present_; }

  // Current multiplex-scaled totals; invalid snapshot when nothing is
  // open (or collection is disabled).
  PerfSnapshot ReadNow() const;

 private:
  std::array<int, kNumPerfCounters> fds_;
  std::uint32_t present_ = 0;
};

// Process-wide one-time probe. Publishes `perf.available` and
// `perf.hw_available` gauges on the first call; honours ATMX_PERF=0.
bool PerfCountersAvailable();

// Runtime kill switch layered over the probe (used by tests to force the
// stub path and by ATMX_PERF=0). Collection happens only when the probe
// succeeded AND the switch is on (default on).
void SetPerfCollectionEnabled(bool enabled);
bool PerfCollectionActive();

// The calling thread's lazily-opened counter set, or nullptr when
// collection is inactive.
PerfCounterSet* ThreadPerfCounters();

// Snapshot of the calling thread's counters; deterministic invalid-zero
// stub when collection is inactive.
PerfSnapshot PerfBeginSnapshot();

// Delta from `begin` to now on the calling thread. Invalid (all zero) if
// `begin` is invalid or collection became inactive.
PerfDelta PerfDeltaSince(const PerfSnapshot& begin);

// Appends one TraceArg per present counter ("cycles": n, ...). No-op on
// an invalid delta.
void AppendPerfArgs(const PerfDelta& delta, std::vector<TraceArg>* args);

// Accumulates a delta under `metric_prefix` (e.g. "kernel.spspd_gemm"):
// one counter per present slot (`<prefix>.cycles`, ...) plus the derived
// gauges `<prefix>.llc_miss_rate` (misses/loads over the accumulated
// totals) and `<prefix>.ipc`. `metric_prefix` must outlive the call (it
// is only read, not stored). No-op on an invalid delta.
void AccumulatePerfMetrics(const char* metric_prefix, const PerfDelta& delta);

// RAII span with counter attribution: records the same complete trace
// event a ScopedSpan would (when the recorder is enabled), with the
// counter deltas of the enclosed scope appended to its args, and
// accumulates the delta under `metric_prefix` (pass nullptr to skip the
// metrics side). Nests freely — outer spans include inner ones, exactly
// like wall time. With counters unavailable this is bit-for-bit a plain
// timing span.
class ScopedPerfSpan {
 public:
  ScopedPerfSpan(const char* category, const char* name,
                 const char* metric_prefix,
                 std::initializer_list<TraceArg> args = {});
  ScopedPerfSpan(const ScopedPerfSpan&) = delete;
  ScopedPerfSpan& operator=(const ScopedPerfSpan&) = delete;
  ~ScopedPerfSpan();

 private:
  static constexpr std::int64_t kDisabled = -1;

  const char* category_;
  const char* name_;
  const char* metric_prefix_;
  std::int64_t start_ns_;
  PerfSnapshot begin_;
  std::vector<TraceArg> args_;
};

}  // namespace atmx::obs

#endif  // ATMX_OBS_PERF_COUNTERS_H_
