#include "obs/snapshot_ring.h"

#include <algorithm>
#include <map>
#include <string_view>

#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace atmx::obs {

std::vector<std::pair<std::string, double>> DeriveRates(
    const TimedSnapshot& older, const TimedSnapshot& newer) {
  std::vector<std::pair<std::string, double>> rates;
  const double dt =
      static_cast<double>(newer.ts_ns - older.ts_ns) / 1e9;
  if (dt <= 0.0) return rates;
  std::map<std::string_view, std::uint64_t> old_counters;
  for (const MetricSample& s : older.samples) {
    if (s.type == MetricSample::Type::kCounter) {
      old_counters[s.name] = s.counter_value;
    }
  }
  double write_bytes_delta = 0.0;
  bool have_write_bytes = false;
  for (const MetricSample& s : newer.samples) {
    if (s.type != MetricSample::Type::kCounter) continue;
    const auto it = old_counters.find(s.name);
    const std::uint64_t old_value =
        it == old_counters.end() ? 0 : it->second;
    // A counter below its old value means the registry was reset
    // mid-window; report a zero rate rather than a negative one.
    const double delta =
        s.counter_value >= old_value
            ? static_cast<double>(s.counter_value - old_value)
            : 0.0;
    rates.emplace_back("rate." + s.name, delta / dt);
    if (s.name == "atmult.bytes.local_write" ||
        s.name == "atmult.bytes.remote_write") {
      write_bytes_delta += delta;
      have_write_bytes = true;
    }
  }
  if (have_write_bytes) {
    rates.emplace_back("rate.atmult.result_bytes", write_bytes_delta / dt);
  }
  return rates;
}

SnapshotSampler& SnapshotSampler::Global() {
  static SnapshotSampler* sampler = new SnapshotSampler();
  return *sampler;
}

SnapshotSampler::~SnapshotSampler() { Stop(); }

Status SnapshotSampler::Start(const Options& options) {
  if (options.period.count() <= 0) {
    return Status::InvalidArgument("sampler period must be positive");
  }
  if (options.ring_capacity < 2) {
    return Status::InvalidArgument("sampler ring_capacity must be >= 2");
  }
  MutexLock lock(mu_);
  if (running_) {
    return Status::Internal("SnapshotSampler already running");
  }
  options_ = options;
  stop_requested_ = false;
  running_ = true;
  // The thread samples immediately (seeding the ring), then ticks.
  thread_ = std::thread([this] { ThreadMain(); });
  return Status::Ok();
}

void SnapshotSampler::Stop() {
  std::thread joined;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
    running_ = false;
    joined = std::move(thread_);
  }
  cv_.NotifyAll();
  if (joined.joinable()) joined.join();
}

bool SnapshotSampler::running() const {
  MutexLock lock(mu_);
  return running_;
}

void SnapshotSampler::ThreadMain() {
  for (;;) {
    SampleOnce();
    MutexLock lock(mu_);
    if (stop_requested_) return;
    cv_.WaitFor(mu_, options_.period);
    if (stop_requested_) return;
  }
}

MetricsRegistry& SnapshotSampler::registry() const {
  MetricsRegistry* reg;
  {
    MutexLock lock(mu_);
    reg = options_.registry;
  }
  return reg != nullptr ? *reg : MetricsRegistry::Global();
}

void SnapshotSampler::SampleOnce() {
  MetricsRegistry& reg = registry();
  TimedSnapshot snap;
  snap.ts_ns = TraceRecorder::NowNanos();
  snap.samples = reg.Snapshot();

  std::vector<std::pair<std::string, double>> rates;
  double window_seconds = 0.0;
  bool publish;
  {
    MutexLock lock(mu_);
    publish = options_.publish_rates;
    if (!ring_.empty()) {
      window_seconds =
          static_cast<double>(snap.ts_ns - ring_.back().ts_ns) / 1e9;
      rates = DeriveRates(ring_.back(), snap);
    }
    ring_.push_back(std::move(snap));
    const std::size_t cap = std::max<std::size_t>(options_.ring_capacity, 2);
    while (ring_.size() > cap) ring_.pop_front();
  }
  ticks_.fetch_add(1, std::memory_order_relaxed);

  if (publish) {
    for (const auto& [name, value] : rates) {
      reg.GetGauge(name).Set(value);
    }
    if (window_seconds > 0.0) {
      reg.GetGauge("sampler.window_seconds").Set(window_seconds);
    }
    reg.GetCounter("sampler.ticks").Increment();
  }

  // Keep the crash dump at most one tick stale.
  FlightRecorder::Global().Refresh();
}

std::vector<TimedSnapshot> SnapshotSampler::History(
    std::size_t max_count) const {
  MutexLock lock(mu_);
  const std::size_t n = std::min(max_count, ring_.size());
  return std::vector<TimedSnapshot>(ring_.end() - static_cast<long>(n),
                                    ring_.end());
}

}  // namespace atmx::obs
