// Umbrella header of the observability layer. Instrumented code includes
// ONLY this header and uses the macros below; under -DATMX_OBS=OFF the
// macros expand to nothing, the obs sources are not compiled, and the
// binary carries zero references to any atmx::obs symbol.
//
// Macros (all no-ops when ATMX_OBS_ENABLED is not defined):
//   ATMX_TRACE_SPAN(cat, name)              RAII span over the enclosing
//                                           scope
//   ATMX_TRACE_SPAN_ARGS(cat, name, ...)    same, ... = {"key", value}
//                                           initializer pairs
//   ATMX_TRACE_INSTANT(cat, name)           zero-duration marker
//   ATMX_COUNTER_ADD(name, delta)           registry counter += delta
//   ATMX_COUNTER_INC(name)                  registry counter += 1
//   ATMX_GAUGE_SET(name, value)             registry gauge = value
//   ATMX_HISTOGRAM_OBSERVE(name, value)     default-bucket histogram
//   ATMX_HISTOGRAM_OBSERVE_WITH(name, value, b0, b1, ...)
//                                           custom upper bucket bounds
//                                           (used on first registration)
//   ATMX_PERF_SPAN(cat, name, prefix)       RAII span with hardware-counter
//                                           deltas attached as args and
//                                           accumulated under `prefix`
//                                           (nullptr = trace-only); plain
//                                           timing span when counters are
//                                           unavailable
//   ATMX_PERF_SPAN_ARGS(cat, name, prefix, ...)
//                                           same, ... = {"key", value} pairs
//
// Metric/span name arguments must be string literals: the counter macros
// cache the registry lookup in a function-local static, and the trace
// recorder stores the name pointer.
//
// Heavier instrumentation (decision-audit records, per-node placement
// gauges) does not fit a one-line macro; such blocks are guarded with
// `#if defined(ATMX_OBS_ENABLED)` at the call site.

#ifndef ATMX_OBS_OBS_H_
#define ATMX_OBS_OBS_H_

#if defined(ATMX_OBS_ENABLED)

#include "obs/decision_log.h"
#include "obs/mem_tracker.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"

#define ATMX_OBS_CONCAT_INNER(a, b) a##b
#define ATMX_OBS_CONCAT(a, b) ATMX_OBS_CONCAT_INNER(a, b)

#define ATMX_TRACE_SPAN(cat, name)                                        \
  ::atmx::obs::ScopedSpan ATMX_OBS_CONCAT(atmx_trace_span_, __COUNTER__)( \
      cat, name)

#define ATMX_TRACE_SPAN_ARGS(cat, name, ...)                              \
  ::atmx::obs::ScopedSpan ATMX_OBS_CONCAT(atmx_trace_span_, __COUNTER__)( \
      cat, name, {__VA_ARGS__})

#define ATMX_TRACE_INSTANT(cat, name) \
  ::atmx::obs::TraceRecorder::Global().RecordInstant(cat, name)

#define ATMX_PERF_SPAN(cat, name, prefix)        \
  ::atmx::obs::ScopedPerfSpan ATMX_OBS_CONCAT(   \
      atmx_perf_span_, __COUNTER__)(cat, name, prefix)

#define ATMX_PERF_SPAN_ARGS(cat, name, prefix, ...) \
  ::atmx::obs::ScopedPerfSpan ATMX_OBS_CONCAT(      \
      atmx_perf_span_, __COUNTER__)(cat, name, prefix, {__VA_ARGS__})

#define ATMX_COUNTER_ADD(name, delta)                                  \
  do {                                                                 \
    static ::atmx::obs::Counter& atmx_obs_counter =                    \
        ::atmx::obs::MetricsRegistry::Global().GetCounter(name);       \
    atmx_obs_counter.Add(static_cast<std::uint64_t>(delta));           \
  } while (0)

#define ATMX_COUNTER_INC(name) ATMX_COUNTER_ADD(name, 1)

#define ATMX_GAUGE_SET(name, value)                              \
  do {                                                           \
    static ::atmx::obs::Gauge& atmx_obs_gauge =                  \
        ::atmx::obs::MetricsRegistry::Global().GetGauge(name);   \
    atmx_obs_gauge.Set(static_cast<double>(value));              \
  } while (0)

#define ATMX_HISTOGRAM_OBSERVE(name, value)                          \
  do {                                                               \
    static ::atmx::obs::Histogram& atmx_obs_hist =                   \
        ::atmx::obs::MetricsRegistry::Global().GetHistogram(name);   \
    atmx_obs_hist.Observe(static_cast<double>(value));               \
  } while (0)

#define ATMX_HISTOGRAM_OBSERVE_WITH(name, value, ...)              \
  do {                                                             \
    static ::atmx::obs::Histogram& atmx_obs_hist =                 \
        ::atmx::obs::MetricsRegistry::Global().GetHistogram(       \
            name, std::vector<double>{__VA_ARGS__});               \
    atmx_obs_hist.Observe(static_cast<double>(value));             \
  } while (0)

#else  // !defined(ATMX_OBS_ENABLED)

#define ATMX_TRACE_SPAN(cat, name) \
  do {                             \
  } while (0)
#define ATMX_TRACE_SPAN_ARGS(cat, name, ...) \
  do {                                       \
  } while (0)
#define ATMX_TRACE_INSTANT(cat, name) \
  do {                                \
  } while (0)
#define ATMX_PERF_SPAN(cat, name, prefix) \
  do {                                    \
  } while (0)
#define ATMX_PERF_SPAN_ARGS(cat, name, prefix, ...) \
  do {                                              \
  } while (0)
#define ATMX_COUNTER_ADD(name, delta) \
  do {                                \
  } while (0)
#define ATMX_COUNTER_INC(name) \
  do {                         \
  } while (0)
#define ATMX_GAUGE_SET(name, value) \
  do {                              \
  } while (0)
#define ATMX_HISTOGRAM_OBSERVE(name, value) \
  do {                                      \
  } while (0)
#define ATMX_HISTOGRAM_OBSERVE_WITH(name, value, ...) \
  do {                                                \
  } while (0)

#endif  // ATMX_OBS_ENABLED

#endif  // ATMX_OBS_OBS_H_
