// Minimal JSON helpers for the observability layer: string escaping for
// the Chrome-trace / metrics serializers and a dependency-free
// well-formedness validator used by tests and the CLI to check emitted
// documents before they are handed to external viewers (Perfetto,
// chrome://tracing).

#ifndef ATMX_OBS_JSON_UTIL_H_
#define ATMX_OBS_JSON_UTIL_H_

#include <string>
#include <string_view>

namespace atmx::obs {

// Escapes `s` for embedding inside a JSON string literal (without the
// surrounding quotes): backslash, quote, and control characters.
std::string EscapeJson(std::string_view s);

// Strict recursive-descent well-formedness check over one JSON document
// (object, array, string, number, true/false/null). Returns true iff the
// whole input is exactly one valid value; on failure `error` (if non-null)
// describes the first problem and its byte offset.
bool JsonWellFormed(std::string_view text, std::string* error = nullptr);

}  // namespace atmx::obs

#endif  // ATMX_OBS_JSON_UTIL_H_
