// Minimal JSON helpers for the observability layer: string escaping for
// the Chrome-trace / metrics serializers, a dependency-free
// well-formedness validator used by tests and the CLI to check emitted
// documents before they are handed to external viewers (Perfetto,
// chrome://tracing), and a small value parser so the CLI can read back
// the documents this layer writes (audit ledgers, baselines).

#ifndef ATMX_OBS_JSON_UTIL_H_
#define ATMX_OBS_JSON_UTIL_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace atmx::obs {

// Escapes `s` for embedding inside a JSON string literal (without the
// surrounding quotes): backslash, quote, and control characters.
std::string EscapeJson(std::string_view s);

// Strict recursive-descent well-formedness check over one JSON document
// (object, array, string, number, true/false/null). Returns true iff the
// whole input is exactly one valid value; on failure `error` (if non-null)
// describes the first problem and its byte offset.
bool JsonWellFormed(std::string_view text, std::string* error = nullptr);

// One parsed JSON value. Numbers are held as double (the documents this
// layer emits never need 64-bit-exact integers beyond 2^53); object
// members keep insertion order and are looked up linearly — documents
// here are small and schema-known.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> members;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_bool() const { return kind == Kind::kBool; }

  // Object member lookup; nullptr when absent or when this is not an
  // object.
  const JsonValue* Find(std::string_view key) const;

  // Typed member getters with fallbacks for optional schema fields.
  double NumberOr(std::string_view key, double fallback) const;
  std::string StringOr(std::string_view key, std::string_view fallback) const;
  bool BoolOr(std::string_view key, bool fallback) const;
};

// Parses exactly one JSON document. Invalid input yields
// kInvalidArgument with the first problem and its byte offset.
[[nodiscard]] Result<JsonValue> ParseJson(std::string_view text);

// The git sha benchmark and audit documents are stamped with: the
// ATMX_GIT_SHA environment variable (CI exports it), "unknown" when
// unset. Shared by BenchReporter, DecisionLog, and AuditLedger so every
// emitted document carries the same provenance key.
std::string GitShaFromEnv();

}  // namespace atmx::obs

#endif  // ATMX_OBS_JSON_UTIL_H_
