// Z-curve (Morton order) encoding for the locality-aware element reordering
// of section II-C1. The Z-value of an element is the bit-interleave of its
// (row, column) coordinates; sorting elements by Z-value stores every aligned
// power-of-two quadrant contiguously, which is what the recursive quadtree
// partitioner (Alg. 1) relies on.

#ifndef ATMX_MORTON_MORTON_H_
#define ATMX_MORTON_MORTON_H_

#include <cstdint>

#include "common/types.h"

namespace atmx {

// Interleaves the lower 32 bits of `row` and `col`:
// result bits ... r1 c1 r0 c0 (row occupies the higher bit of each pair, so
// Z-order enumerates row-pairs first: (0,0), (0,1), (1,0), (1,1), ... which
// matches the UL, UR, LL, LR quadrant order of Alg. 1).
std::uint64_t MortonEncode(index_t row, index_t col);

// Inverse of MortonEncode.
void MortonDecode(std::uint64_t z, index_t* row, index_t* col);

// The Z-space needed to cover an m x n matrix: both dimensions are padded
// to the common power of two p = 2^max(ceil(log2 m), ceil(log2 n)); the
// Z-space size is p * p = 4^max(...) (paper: K).
index_t ZSpaceSide(index_t rows, index_t cols);

// Quadrant arithmetic on a Z-range [z_start, z_end) covering an aligned
// square: the four children are the equal quarters of the range in order
// UL, UR, LL, LR.
struct ZQuad {
  std::uint64_t start;
  std::uint64_t end;  // exclusive
};

// Splits an aligned Z-range of size 4^h into its four child quadrants.
void ZSplit(std::uint64_t z_start, std::uint64_t z_end, ZQuad children[4]);

// Top-left corner (row, col) of the aligned square covered by a Z-range
// whose size is a power of four.
void ZRangeOrigin(std::uint64_t z_start, index_t* row, index_t* col);

// Edge length of the aligned square covered by a Z-range of size 4^h.
index_t ZRangeSide(std::uint64_t z_start, std::uint64_t z_end);

}  // namespace atmx

#endif  // ATMX_MORTON_MORTON_H_
