#include "morton/hilbert.h"

#include "common/check.h"

namespace atmx {

namespace {

// Rotates/reflects the quadrant coordinate frame (the classic xy2d
// transform from Warren's and Wikipedia's reference implementation).
inline void Rotate(index_t n, index_t* row, index_t* col, index_t rx,
                   index_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *row = n - 1 - *row;
      *col = n - 1 - *col;
    }
    const index_t tmp = *row;
    *row = *col;
    *col = tmp;
  }
}

}  // namespace

std::uint64_t HilbertEncode(index_t row, index_t col, int order) {
  ATMX_DCHECK(order >= 0 && order <= 31);
  ATMX_DCHECK(row >= 0 && row < (index_t{1} << order));
  ATMX_DCHECK(col >= 0 && col < (index_t{1} << order));
  std::uint64_t d = 0;
  index_t x = col;
  index_t y = row;
  for (index_t s = (index_t{1} << order) / 2; s > 0; s /= 2) {
    const index_t rx = (x & s) > 0 ? 1 : 0;
    const index_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<std::uint64_t>(s) * s * ((3 * rx) ^ ry);
    Rotate(s, &y, &x, rx, ry);
  }
  return d;
}

void HilbertDecode(std::uint64_t d, int order, index_t* row, index_t* col) {
  ATMX_DCHECK(order >= 0 && order <= 31);
  index_t x = 0, y = 0;
  std::uint64_t t = d;
  for (index_t s = 1; s < (index_t{1} << order); s *= 2) {
    const index_t rx = static_cast<index_t>(1 & (t / 2));
    const index_t ry = static_cast<index_t>(1 & (t ^ rx));
    Rotate(s, &y, &x, rx, ry);
    x += s * rx;
    y += s * ry;
    t /= 4;
  }
  *row = y;
  *col = x;
}

}  // namespace atmx
