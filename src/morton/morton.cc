#include "morton/morton.h"

#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace atmx {

namespace {

// Spreads the lower 32 bits of x so that bit i moves to bit 2*i.
inline std::uint64_t SpreadBits(std::uint64_t x) {
  x &= 0xffffffffULL;
  x = (x | (x << 16)) & 0x0000ffff0000ffffULL;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

// Inverse of SpreadBits: collects every second bit back into the low 32.
inline std::uint64_t CompactBits(std::uint64_t x) {
  x &= 0x5555555555555555ULL;
  x = (x | (x >> 1)) & 0x3333333333333333ULL;
  x = (x | (x >> 2)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x >> 4)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x >> 8)) & 0x0000ffff0000ffffULL;
  x = (x | (x >> 16)) & 0x00000000ffffffffULL;
  return x;
}

}  // namespace

std::uint64_t MortonEncode(index_t row, index_t col) {
  ATMX_DCHECK_GE(row, 0);
  ATMX_DCHECK_GE(col, 0);
  return (SpreadBits(static_cast<std::uint64_t>(row)) << 1) |
         SpreadBits(static_cast<std::uint64_t>(col));
}

void MortonDecode(std::uint64_t z, index_t* row, index_t* col) {
  *row = static_cast<index_t>(CompactBits(z >> 1));
  *col = static_cast<index_t>(CompactBits(z));
}

index_t ZSpaceSide(index_t rows, index_t cols) {
  ATMX_CHECK_GT(rows, 0);
  ATMX_CHECK_GT(cols, 0);
  return NextPowerOfTwo(std::max(rows, cols));
}

void ZSplit(std::uint64_t z_start, std::uint64_t z_end, ZQuad children[4]) {
  const std::uint64_t range = z_end - z_start;
  ATMX_DCHECK(range >= 4 && (range & (range - 1)) == 0);
  const std::uint64_t stride = range / 4;
  for (int q = 0; q < 4; ++q) {
    children[q].start = z_start + static_cast<std::uint64_t>(q) * stride;
    children[q].end = children[q].start + stride;
  }
}

void ZRangeOrigin(std::uint64_t z_start, index_t* row, index_t* col) {
  MortonDecode(z_start, row, col);
}

index_t ZRangeSide(std::uint64_t z_start, std::uint64_t z_end) {
  const std::uint64_t range = z_end - z_start;
  ATMX_DCHECK(range >= 1 && (range & (range - 1)) == 0);
  // range == 4^h, side == 2^h.
  const int log2_range = FloorLog2(static_cast<index_t>(range));
  ATMX_DCHECK(log2_range % 2 == 0);
  return index_t{1} << (log2_range / 2);
}

}  // namespace atmx
