// Hilbert-curve encoding — the alternative quadtree space-filling curve
// the paper considers (section II-C1) before choosing the Z-curve for its
// cheap bit-interleaved computation. Provided so the trade-off (encoding
// cost vs. locality quality) can be measured; see bench/curve_locality.
//
// Unlike the Z-curve, consecutive Hilbert indices are always spatially
// adjacent cells, which gives marginally better locality at a noticeably
// higher per-element encoding cost.

#ifndef ATMX_MORTON_HILBERT_H_
#define ATMX_MORTON_HILBERT_H_

#include <cstdint>

#include "common/types.h"

namespace atmx {

// Hilbert index of cell (row, col) on a 2^order x 2^order grid.
// Requires 0 <= row, col < 2^order and order <= 31.
std::uint64_t HilbertEncode(index_t row, index_t col, int order);

// Inverse of HilbertEncode.
void HilbertDecode(std::uint64_t d, int order, index_t* row, index_t* col);

}  // namespace atmx

#endif  // ATMX_MORTON_HILBERT_H_
