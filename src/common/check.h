// Invariant-checking macros.
//
// ATMX_CHECK* terminate the process on violation; they guard programming
// invariants, not user input (user input goes through Status, see status.h).
// ATMX_DCHECK* compile away in NDEBUG builds and may be used in hot loops.
//
// The _EQ/_NE/_LT/_LE/_GT/_GE forms print both operand values on failure.
// Failure messages also carry the current thread's check context (see
// ScopedCheckContext below), which the kernel/dispatch code paths set to
// the active tile coordinates so a CI failure is attributable to a
// specific tile.

#ifndef ATMX_COMMON_CHECK_H_
#define ATMX_COMMON_CHECK_H_

#include <sstream>
#include <string>

namespace atmx::internal {

// The current thread's check context ("" when unset).
const std::string& CheckContext();

// Installs a hook invoked (once, on the failing thread, after the failure
// message is printed) before a failed ATMX_CHECK aborts the process. Used
// by the obs flight recorder to persist its pre-rendered dump; the hook
// must be async-signal-safe-adjacent: it runs in a process about to
// abort, so no allocation, no locks that kernel code might hold. Passing
// nullptr uninstalls. Returns the previously installed hook.
using CheckFailureHook = void (*)();
CheckFailureHook SetCheckFailureHook(CheckFailureHook hook);

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);

[[noreturn]] void CheckOpFailedStr(const char* file, int line,
                                   const char* expr, const std::string& a,
                                   const std::string& b);

template <typename T>
std::string OperandToString(const T& v) {
  if constexpr (requires(std::ostringstream& os) { os << v; }) {
    std::ostringstream os;
    os << v;
    return os.str();
  } else {
    return "<unprintable>";
  }
}

template <typename A, typename B>
[[noreturn]] void CheckOpFailed(const char* file, int line, const char* expr,
                                const A& a, const B& b) {
  CheckOpFailedStr(file, line, expr, OperandToString(a), OperandToString(b));
}

// RAII guard attaching a printf-formatted context string to every check
// failure raised on the calling thread while in scope. Scopes nest: inner
// contexts are appended to the outer ones.
class ScopedCheckContext {
 public:
  [[gnu::format(printf, 2, 3)]] explicit ScopedCheckContext(const char* fmt,
                                                            ...);
  ~ScopedCheckContext();

  ScopedCheckContext(const ScopedCheckContext&) = delete;
  ScopedCheckContext& operator=(const ScopedCheckContext&) = delete;

 private:
  std::size_t saved_size_;
};

}  // namespace atmx::internal

#define ATMX_CHECK(cond)                                           \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::atmx::internal::CheckFailed(__FILE__, __LINE__, #cond);    \
    }                                                              \
  } while (false)

// Evaluates each operand once and reports both values on failure.
#define ATMX_CHECK_OP(a, op, b)                                            \
  do {                                                                     \
    auto&& atmx_check_a = (a);                                             \
    auto&& atmx_check_b = (b);                                             \
    if (!(atmx_check_a op atmx_check_b)) {                                 \
      ::atmx::internal::CheckOpFailed(__FILE__, __LINE__,                  \
                                      #a " " #op " " #b, atmx_check_a,     \
                                      atmx_check_b);                       \
    }                                                                      \
  } while (false)

#define ATMX_CHECK_EQ(a, b) ATMX_CHECK_OP(a, ==, b)
#define ATMX_CHECK_NE(a, b) ATMX_CHECK_OP(a, !=, b)
#define ATMX_CHECK_LT(a, b) ATMX_CHECK_OP(a, <, b)
#define ATMX_CHECK_LE(a, b) ATMX_CHECK_OP(a, <=, b)
#define ATMX_CHECK_GT(a, b) ATMX_CHECK_OP(a, >, b)
#define ATMX_CHECK_GE(a, b) ATMX_CHECK_OP(a, >=, b)

#ifdef NDEBUG
#define ATMX_DCHECK(cond) \
  do {                    \
  } while (false)
#define ATMX_DCHECK_OP(a, op, b) \
  do {                           \
  } while (false)
// Debug-only check context: free in release builds, so hot kernel loops can
// attach per-call context without a release-mode cost.
#define ATMX_DCHECK_CONTEXT(...) \
  do {                           \
  } while (false)
#else
#define ATMX_DCHECK(cond) ATMX_CHECK(cond)
#define ATMX_DCHECK_OP(a, op, b) ATMX_CHECK_OP(a, op, b)
#define ATMX_INTERNAL_CONCAT2(a, b) a##b
#define ATMX_INTERNAL_CONCAT(a, b) ATMX_INTERNAL_CONCAT2(a, b)
#define ATMX_DCHECK_CONTEXT(...)                 \
  ::atmx::internal::ScopedCheckContext           \
      ATMX_INTERNAL_CONCAT(atmx_dcheck_context_, \
                           __LINE__)(__VA_ARGS__)
#endif

#define ATMX_DCHECK_EQ(a, b) ATMX_DCHECK_OP(a, ==, b)
#define ATMX_DCHECK_NE(a, b) ATMX_DCHECK_OP(a, !=, b)
#define ATMX_DCHECK_LT(a, b) ATMX_DCHECK_OP(a, <, b)
#define ATMX_DCHECK_LE(a, b) ATMX_DCHECK_OP(a, <=, b)
#define ATMX_DCHECK_GT(a, b) ATMX_DCHECK_OP(a, >, b)
#define ATMX_DCHECK_GE(a, b) ATMX_DCHECK_OP(a, >=, b)

#endif  // ATMX_COMMON_CHECK_H_
