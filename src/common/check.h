// Invariant-checking macros.
//
// ATMX_CHECK* terminate the process on violation; they guard programming
// invariants, not user input (user input goes through Status, see status.h).
// ATMX_DCHECK* compile away in NDEBUG builds and may be used in hot loops.

#ifndef ATMX_COMMON_CHECK_H_
#define ATMX_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace atmx::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "ATMX_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace atmx::internal

#define ATMX_CHECK(cond)                                   \
  do {                                                     \
    if (!(cond)) {                                         \
      ::atmx::internal::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                      \
  } while (false)

#define ATMX_CHECK_OP(a, op, b) ATMX_CHECK((a)op(b))
#define ATMX_CHECK_EQ(a, b) ATMX_CHECK_OP(a, ==, b)
#define ATMX_CHECK_NE(a, b) ATMX_CHECK_OP(a, !=, b)
#define ATMX_CHECK_LT(a, b) ATMX_CHECK_OP(a, <, b)
#define ATMX_CHECK_LE(a, b) ATMX_CHECK_OP(a, <=, b)
#define ATMX_CHECK_GT(a, b) ATMX_CHECK_OP(a, >, b)
#define ATMX_CHECK_GE(a, b) ATMX_CHECK_OP(a, >=, b)

#ifdef NDEBUG
#define ATMX_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define ATMX_DCHECK(cond) ATMX_CHECK(cond)
#endif

#define ATMX_DCHECK_EQ(a, b) ATMX_DCHECK((a) == (b))
#define ATMX_DCHECK_LT(a, b) ATMX_DCHECK((a) < (b))
#define ATMX_DCHECK_LE(a, b) ATMX_DCHECK((a) <= (b))
#define ATMX_DCHECK_GE(a, b) ATMX_DCHECK((a) >= (b))

#endif  // ATMX_COMMON_CHECK_H_
