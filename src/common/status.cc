#include "common/status.h"

namespace atmx {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace atmx
