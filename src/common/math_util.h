// Small integer math helpers (powers of two, divisions, clamping).

#ifndef ATMX_COMMON_MATH_UTIL_H_
#define ATMX_COMMON_MATH_UTIL_H_

#include <bit>
#include <cstdint>

#include "common/check.h"
#include "common/types.h"

namespace atmx {

inline bool IsPowerOfTwo(index_t x) {
  return x > 0 && (x & (x - 1)) == 0;
}

// Smallest power of two >= x (x >= 1).
inline index_t NextPowerOfTwo(index_t x) {
  ATMX_CHECK_GE(x, 1);
  return static_cast<index_t>(
      std::bit_ceil(static_cast<std::uint64_t>(x)));
}

// floor(log2(x)) for x >= 1.
inline int FloorLog2(index_t x) {
  ATMX_CHECK_GE(x, 1);
  return 63 - std::countl_zero(static_cast<std::uint64_t>(x));
}

// ceil(log2(x)) for x >= 1.
inline int CeilLog2(index_t x) {
  int f = FloorLog2(x);
  return IsPowerOfTwo(x) ? f : f + 1;
}

inline index_t CeilDiv(index_t a, index_t b) {
  ATMX_CHECK_GT(b, 0);
  return (a + b - 1) / b;
}

// Rounds x down to the previous power of two (x >= 1).
inline index_t PrevPowerOfTwo(index_t x) {
  ATMX_CHECK_GE(x, 1);
  return index_t{1} << FloorLog2(x);
}

}  // namespace atmx

#endif  // ATMX_COMMON_MATH_UTIL_H_
