#include "common/table_printer.h"

#include <cstdio>
#include <sstream>
#include <utility>

namespace atmx {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << cell;
      if (c + 1 < headers_.size()) {
        os << std::string(widths[c] - cell.size() + 2, ' ');
      }
    }
    os << '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::FmtBytes(std::size_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, units[u]);
  return buf;
}

}  // namespace atmx
