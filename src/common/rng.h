// Deterministic pseudo-random number generation (xoshiro256**).
//
// All synthetic workload generators take an explicit seed so that every
// experiment in the benchmark suite is reproducible bit-for-bit.

#ifndef ATMX_COMMON_RNG_H_
#define ATMX_COMMON_RNG_H_

#include <cstdint>

namespace atmx {

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
// Fast, high-quality, and identical across platforms, unlike std::mt19937
// whose distributions are implementation-defined.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform 64-bit value.
  std::uint64_t Next();

  // Uniform in [0, bound). bound > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Standard normal via Box-Muller.
  double NextGaussian();

 private:
  std::uint64_t state_[4];
};

}  // namespace atmx

#endif  // ATMX_COMMON_RNG_H_
