// Global configuration knobs for the AT MATRIX representation and the
// ATMULT operator.
//
// The defaults mirror the paper's configuration (section IV-A): alpha = beta
// = 3, read density threshold rho0_R = 0.25, atomic block size derived from
// the last-level cache so that b_atomic equals the maximum dense tile edge
// (k = 10 / b_atomic = 1024 for a 24 MB LLC).

#ifndef ATMX_COMMON_CONFIG_H_
#define ATMX_COMMON_CONFIG_H_

#include <cstddef>
#include <limits>
#include <string>

#include "common/types.h"

namespace atmx {

// Which tiling strategy the partitioner applies. Steps (1)-(6) of the
// paper's Fig. 10 ablation are expressed through these flags.
enum class TilingMode {
  kNone,      // single tile, plain representation (step 1 baseline)
  kFixed,     // fixed b_atomic x b_atomic grid (steps 2-4)
  kAdaptive,  // recursive quadtree melting (steps 5-6, the AT MATRIX)
};

const char* TilingModeName(TilingMode mode);

struct AtmConfig {
  // --- Simulated/actual machine topology -------------------------------
  // Last-level cache size per socket in bytes. Drives the maximum tile
  // sizes of Eq. (1) and Eq. (2). The paper's machine has 24 MB (adjusted
  //, 30 MB raw); our scaled default keeps tile geometry proportional to the
  // scaled-down workloads.
  index_t llc_bytes = 4 * 1024 * 1024;
  // Number of NUMA sockets (worker teams are formed per socket).
  int num_sockets = 2;
  // Physical threads per socket available to a worker team.
  int cores_per_socket = 2;

  // --- Tile geometry (section II-B) -------------------------------------
  // At least `alpha` tiles must fit in the LLC simultaneously.
  int alpha = 3;
  // At least `beta` accumulator arrays of one tile width must fit in LLC.
  int beta = 3;
  // Atomic (minimum) tile edge; must be a power of two. Zero means derive
  // from the LLC as in the paper: the largest power of two <= tau_max_dense.
  index_t b_atomic = 0;

  // --- Density thresholds (sections II-C3, III-C) ------------------------
  // Read threshold rho0_R: tiles denser than this are materialized dense.
  double rho_read = 0.25;
  // Write threshold rho0_W: estimated result blocks denser than this are
  // written as dense tiles. Much lower than rho_read because sparse writes
  // are much more expensive than sparse reads (read/write asymmetry).
  double rho_write = 0.03;

  // --- Memory SLA (section III-E) ----------------------------------------
  // Flexible upper bound on the result matrix size; the water-level method
  // lowers the effective write threshold until the estimate fits.
  std::size_t result_mem_limit_bytes = std::numeric_limits<std::size_t>::max();

  // --- Feature toggles (Fig. 10 optimization steps) ----------------------
  TilingMode tiling = TilingMode::kAdaptive;
  // Step 3+: estimate the result density map and write dense target tiles.
  bool density_estimation = true;
  // Step 4+: allow dense tiles in the *operand* representation.
  bool mixed_tiles = true;
  // Step 6: dynamic just-in-time tile conversions in the optimizer.
  bool dynamic_conversion = true;
  // Fused chain execution (docs/CHAINS.md): ExecuteChain runs the planned
  // parenthesization as one tile-granular task DAG — downstream products
  // start as soon as their input result-tiles complete, and intermediate
  // tiles are dropped after their last consumer finishes. Results are
  // bitwise identical to product-at-a-time execution; off restores the
  // per-product barrier. A finite result_mem_limit_bytes stays fused: the
  // chain-scope water level plans every product's write threshold up front
  // from the estimated density maps and the scheduler admission-gates tile
  // tasks against the shared budget (docs/CHAINS.md "Memory budget");
  // only estimation disabled or a budget below the minimum achievable
  // footprint downgrades to product-at-a-time.
  bool fused_chains = true;

  // --- Parallelism (section III-F) ---------------------------------------
  // 0 means "one team per socket" / "cores_per_socket threads per team".
  int num_worker_teams = 0;
  int threads_per_team = 0;
  // Locality-aware work stealing in the team scheduler: home queues are
  // drained longest-task-first (ordered by the cost model) and an idle
  // team steals whole tile tasks from the tail of the NUMA-nearest
  // victim's queue. Results are bitwise identical either way; off restores
  // the paper's static per-team queues (used by the replay benches).
  bool work_stealing = true;

  // Derived values ---------------------------------------------------------
  // Effective atomic block edge (power of two), resolving b_atomic == 0.
  index_t AtomicBlockSize() const;
  // Maximum dense tile edge tau_max^d (Eq. 1), rounded down to a power of
  // two so tiles stay aligned to the quadtree grid.
  index_t MaxDenseTileSize() const;

  int EffectiveTeams() const {
    return num_worker_teams > 0 ? num_worker_teams : num_sockets;
  }
  int EffectiveThreadsPerTeam() const {
    return threads_per_team > 0 ? threads_per_team : cores_per_socket;
  }

  std::string ToString() const;
};

}  // namespace atmx

#endif  // ATMX_COMMON_CONFIG_H_
