// Clang Thread Safety Analysis annotations (no-ops on other compilers).
//
// These macros attach compile-time *capability* semantics to the locking
// layer: a field tagged ATMX_GUARDED_BY(mu) may only be touched while `mu`
// is held, a method tagged ATMX_REQUIRES(mu) may only be called with `mu`
// held, and the analysis rejects violations at compile time under
// `-Wthread-safety` (see docs/STATIC_ANALYSIS.md). The annotated wrapper
// types live in common/mutex.h; raw std::mutex / std::lock_guard are
// banned outside that file (enforced by tools/atmx_lint.py), because the
// standard types carry no capability attributes and silently opt their
// users out of the analysis.
//
// Naming follows the Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); the ATMX_
// prefix keeps the macros out of the global namespace.

#ifndef ATMX_COMMON_THREAD_ANNOTATIONS_H_
#define ATMX_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define ATMX_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define ATMX_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

// Type annotations: a lockable type and an RAII scope that manages one.
#define ATMX_CAPABILITY(x) ATMX_THREAD_ANNOTATION_(capability(x))
#define ATMX_SCOPED_CAPABILITY ATMX_THREAD_ANNOTATION_(scoped_lockable)

// Data annotations: the declared field (or, for ATMX_PT_GUARDED_BY, the
// data a declared pointer points at) is protected by the given capability.
#define ATMX_GUARDED_BY(x) ATMX_THREAD_ANNOTATION_(guarded_by(x))
#define ATMX_PT_GUARDED_BY(x) ATMX_THREAD_ANNOTATION_(pt_guarded_by(x))

// Lock-order annotations on mutex members (checked under
// -Wthread-safety-beta): acquiring out of the declared order is an error.
#define ATMX_ACQUIRED_BEFORE(...) \
  ATMX_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ATMX_ACQUIRED_AFTER(...) \
  ATMX_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// Function annotations: capabilities the caller must hold (REQUIRES), must
// NOT hold (EXCLUDES), or that the function itself acquires/releases.
#define ATMX_REQUIRES(...) \
  ATMX_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define ATMX_REQUIRES_SHARED(...) \
  ATMX_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define ATMX_ACQUIRE(...) \
  ATMX_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ATMX_ACQUIRE_SHARED(...) \
  ATMX_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define ATMX_RELEASE(...) \
  ATMX_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define ATMX_RELEASE_SHARED(...) \
  ATMX_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define ATMX_TRY_ACQUIRE(...) \
  ATMX_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define ATMX_EXCLUDES(...) ATMX_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// The function returns a reference to the given capability (accessor
// pattern: `Mutex& mu() ATMX_RETURN_CAPABILITY(mu_)`).
#define ATMX_RETURN_CAPABILITY(x) ATMX_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch for code the analysis cannot model (e.g. init before any
// thread exists). Every use must carry a comment justifying it.
#define ATMX_NO_THREAD_SAFETY_ANALYSIS \
  ATMX_THREAD_ANNOTATION_(no_thread_safety_analysis)

// Runtime assertion that a capability is held (for call graphs the
// analysis cannot follow); purely an analysis fact, no generated code.
#define ATMX_ASSERT_CAPABILITY(x) \
  ATMX_THREAD_ANNOTATION_(assert_capability(x))

#endif  // ATMX_COMMON_THREAD_ANNOTATIONS_H_
