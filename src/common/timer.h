// Simple wall-clock timer for benchmarks and operator-internal breakdowns.

#ifndef ATMX_COMMON_TIMER_H_
#define ATMX_COMMON_TIMER_H_

#include <chrono>

namespace atmx {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates time across multiple disjoint intervals, e.g. the total time
// the ATMULT optimizer spends in tile conversions.
class AccumulatingTimer {
 public:
  void Start() { timer_.Restart(); }
  void Stop() { total_ += timer_.ElapsedSeconds(); }
  void Add(double seconds) { total_ += seconds; }
  void Reset() { total_ = 0.0; }
  double TotalSeconds() const { return total_; }

 private:
  WallTimer timer_;
  double total_ = 0.0;
};

}  // namespace atmx

#endif  // ATMX_COMMON_TIMER_H_
