// Simple wall-clock timer for benchmarks and operator-internal breakdowns.

#ifndef ATMX_COMMON_TIMER_H_
#define ATMX_COMMON_TIMER_H_

#include <chrono>

#if defined(__linux__) || defined(__APPLE__)
#include <time.h>
#define ATMX_HAS_THREAD_CPU_CLOCK 1
#endif

namespace atmx {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// CPU time consumed by the calling thread. Used by the scheduler's per-task
// busy accounting: on a host with fewer cores than simulated sockets the
// driver threads timeshare, so a task's wall time includes slices where
// *other* teams ran — thread CPU time is the duration the task would take
// on a dedicated socket (the same substitution DESIGN.md makes for
// topology). Falls back to wall time where no thread CPU clock exists.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(Now()) {}

  void Restart() { start_ = Now(); }

  double ElapsedSeconds() const { return Now() - start_; }

 private:
  static double Now() {
#if defined(ATMX_HAS_THREAD_CPU_CLOCK)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) +
             static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  double start_;
};

// Accumulates time across multiple disjoint intervals, e.g. the total time
// the ATMULT optimizer spends in tile conversions.
class AccumulatingTimer {
 public:
  // Resume/Pause rather than Start/Stop: the name Start belongs to the
  // Status-returning lifecycle APIs (tools/atmx_lint.py's nodiscard scan
  // is name-based), and resume/pause is what an interval accumulator does.
  void Resume() { timer_.Restart(); }
  void Pause() { total_ += timer_.ElapsedSeconds(); }
  void Add(double seconds) { total_ += seconds; }
  void Reset() { total_ = 0.0; }
  double TotalSeconds() const { return total_; }

 private:
  WallTimer timer_;
  double total_ = 0.0;
};

}  // namespace atmx

#endif  // ATMX_COMMON_TIMER_H_
