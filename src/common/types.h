// Fundamental scalar and index types used across the library.

#ifndef ATMX_COMMON_TYPES_H_
#define ATMX_COMMON_TYPES_H_

#include <cstdint>

namespace atmx {

// Row/column index and extent type. Signed so that index arithmetic
// (differences, reverse loops) is well-defined.
using index_t = std::int64_t;

// Matrix element value type. The paper works with double-precision elements
// (S_d = 8 bytes dense, S_sp = 16 bytes in CSR including the column index).
using value_t = double;

// Element sizes used in the tile-size formulas (Eq. 1 & 2 of the paper).
inline constexpr index_t kDenseElemBytes = 8;
inline constexpr index_t kSparseElemBytes = 16;

}  // namespace atmx

#endif  // ATMX_COMMON_TYPES_H_
