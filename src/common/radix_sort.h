// LSD radix sort for 64-bit keys with an index payload. The partitioner's
// Z-ordering step sorts one Morton key per element; for the multi-million
// element matrices this library targets, a byte-wise counting sort is
// several times faster than comparison sorting and touches only the bytes
// the key range actually uses.

#ifndef ATMX_COMMON_RADIX_SORT_H_
#define ATMX_COMMON_RADIX_SORT_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace atmx {

// Returns the permutation `perm` such that keys[perm[0]] <= keys[perm[1]]
// <= ... The sort is stable.
std::vector<index_t> SortedPermutation(
    const std::vector<std::uint64_t>& keys);

}  // namespace atmx

#endif  // ATMX_COMMON_RADIX_SORT_H_
