// Column-aligned plain-text tables for the benchmark harnesses, so every
// figure/table reproduction prints rows in a uniform, diff-friendly format.

#ifndef ATMX_COMMON_TABLE_PRINTER_H_
#define ATMX_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace atmx {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Adds a row; missing trailing cells render empty.
  void AddRow(std::vector<std::string> cells);

  // Formats the whole table, header + separator + rows.
  std::string ToString() const;

  // Convenience: prints ToString() to stdout.
  void Print() const;

  // Cell formatting helpers.
  static std::string Fmt(double v, int precision = 3);
  static std::string FmtBytes(std::size_t bytes);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace atmx

#endif  // ATMX_COMMON_TABLE_PRINTER_H_
