// Lightweight Status / Result types for recoverable errors (I/O, parsing,
// resource limits). Programming invariants use ATMX_CHECK instead.

#ifndef ATMX_COMMON_STATUS_H_
#define ATMX_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/check.h"

namespace atmx {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kResourceExhausted,
  kIoError,
  kUnimplemented,
  kInternal,
};

// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy in the Ok case. [[nodiscard]] at
// class level: every function returning a Status (or Result) produces a
// value the caller must examine — silently dropping an error is exactly
// the defect class this type exists to prevent. Tests that intentionally
// exercise a failure path spell the discard as `(void)expr;` with a
// comment (tools/atmx_lint.py flags laundering in src/).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Holds either a value of type T or an error Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, above.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, above.
  Result(Status status) : status_(std::move(status)) {
    ATMX_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    ATMX_CHECK(ok());
    return value_;
  }
  T& value() & {
    ATMX_CHECK(ok());
    return value_;
  }
  T&& value() && {
    ATMX_CHECK(ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace atmx

#define ATMX_RETURN_IF_ERROR(expr)      \
  do {                                  \
    ::atmx::Status _status = (expr);    \
    if (!_status.ok()) return _status;  \
  } while (false)

#endif  // ATMX_COMMON_STATUS_H_
