// Annotated locking primitives: the only place in the library where the
// raw standard mutex types may appear (enforced by tools/atmx_lint.py's
// no-raw-mutex check). Everything else uses atmx::Mutex / atmx::MutexLock /
// atmx::CondVar so Clang's Thread Safety Analysis (-Wthread-safety, see
// common/thread_annotations.h and docs/STATIC_ANALYSIS.md) can prove at
// compile time that guarded state is only touched under its lock.
//
// The wrappers are deliberately thin — Mutex is exactly a std::mutex, the
// inline calls disappear at -O1 — and deliberately narrow: no recursive
// mutex, no shared (reader/writer) mode, because nothing in the library
// needs them and a narrow surface keeps the analysis airtight. The one
// timed primitive is CondVar::WaitFor, which the obs sampler thread needs
// for its periodic tick. CondVar::Wait/WaitFor take the Mutex they
// re-acquire, so the analysis knows the capability is held continuously
// around the wait from the caller's point of view.

#ifndef ATMX_COMMON_MUTEX_H_
#define ATMX_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace atmx {

class CondVar;

// A standard mutex carrying the `capability` attribute, so fields can be
// declared ATMX_GUARDED_BY(mu_) and methods ATMX_REQUIRES(mu_).
class ATMX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ATMX_ACQUIRE() { mu_.lock(); }
  void Unlock() ATMX_RELEASE() { mu_.unlock(); }
  bool TryLock() ATMX_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // Wait() needs the underlying std::mutex.
  std::mutex mu_;
};

// RAII lock, the replacement for std::lock_guard / std::unique_lock.
class ATMX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ATMX_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() ATMX_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable working with atmx::Mutex. There is no predicate
// overload on purpose: a `while (!pred) cv.Wait(mu);` loop in the caller
// keeps the predicate's guarded reads inside a scope the analysis can see
// (a predicate lambda would be analyzed without the held capability).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, blocks, and re-acquires `mu` before
  // returning. Spurious wakeups happen; always wait in a predicate loop.
  void Wait(Mutex& mu) ATMX_REQUIRES(mu) {
    // adopt_lock hands the already-held mutex to a unique_lock for the
    // wait protocol; release() hands it back so the RAII scopes in the
    // caller stay the sole owner.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  // Like Wait, but gives up after `timeout`. Returns false on timeout,
  // true when notified (possibly spuriously — still use a predicate
  // loop). `mu` is held again either way when this returns.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      ATMX_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace atmx

#endif  // ATMX_COMMON_MUTEX_H_
