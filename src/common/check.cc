#include "common/check.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace atmx::internal {

namespace {

thread_local std::string check_context;

std::atomic<CheckFailureHook> failure_hook{nullptr};

void RunFailureHook() {
  if (CheckFailureHook hook = failure_hook.load(std::memory_order_acquire)) {
    hook();
  }
}

void PrintFailure(const char* file, int line, const char* expr,
                  const char* values) {
  if (check_context.empty()) {
    std::fprintf(stderr, "ATMX_CHECK failed at %s:%d: %s%s\n", file, line,
                 expr, values);
  } else {
    std::fprintf(stderr, "ATMX_CHECK failed at %s:%d [%s]: %s%s\n", file,
                 line, check_context.c_str(), expr, values);
  }
  std::fflush(stderr);
}

}  // namespace

const std::string& CheckContext() { return check_context; }

CheckFailureHook SetCheckFailureHook(CheckFailureHook hook) {
  return failure_hook.exchange(hook, std::memory_order_acq_rel);
}

void CheckFailed(const char* file, int line, const char* expr) {
  PrintFailure(file, line, expr, "");
  RunFailureHook();
  std::abort();
}

void CheckOpFailedStr(const char* file, int line, const char* expr,
                      const std::string& a, const std::string& b) {
  const std::string values = " (" + a + " vs " + b + ")";
  PrintFailure(file, line, expr, values.c_str());
  RunFailureHook();
  std::abort();
}

ScopedCheckContext::ScopedCheckContext(const char* fmt, ...)
    : saved_size_(check_context.size()) {
  char buf[192];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (!check_context.empty()) check_context += "; ";
  check_context += buf;
}

ScopedCheckContext::~ScopedCheckContext() {
  check_context.resize(saved_size_);
}

}  // namespace atmx::internal
