#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace atmx {

namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64, used to expand the seed into the xoshiro state.
inline std::uint64_t SplitMix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
  // All-zero state is invalid for xoshiro; the splitmix expansion makes this
  // practically impossible, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  ATMX_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  // Box-Muller; discards the second variate for simplicity.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace atmx
