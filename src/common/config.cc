#include "common/config.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/math_util.h"

namespace atmx {

const char* TilingModeName(TilingMode mode) {
  switch (mode) {
    case TilingMode::kNone:
      return "none";
    case TilingMode::kFixed:
      return "fixed";
    case TilingMode::kAdaptive:
      return "adaptive";
  }
  return "unknown";
}

index_t AtmConfig::MaxDenseTileSize() const {
  ATMX_CHECK_GT(llc_bytes, 0);
  ATMX_CHECK_GT(alpha, 0);
  // Eq. (1): tau_max^d = sqrt(LLC / (alpha * S_d)), rounded down to a power
  // of two so dense tiles stay aligned to the quadtree block grid.
  const double tau =
      std::sqrt(static_cast<double>(llc_bytes) /
                (static_cast<double>(alpha) * kDenseElemBytes));
  const index_t floor_tau = std::max<index_t>(1, static_cast<index_t>(tau));
  return std::max<index_t>(16, PrevPowerOfTwo(floor_tau));
}

index_t AtmConfig::AtomicBlockSize() const {
  if (b_atomic > 0) {
    ATMX_CHECK(IsPowerOfTwo(b_atomic));
    return b_atomic;
  }
  // Paper section II-B2: the best-performing minimum tile size equals the
  // maximum dense tile size (k = 10, b_atomic = 1024 on a 24 MB LLC).
  return MaxDenseTileSize();
}

std::string AtmConfig::ToString() const {
  std::ostringstream os;
  os << "AtmConfig{llc=" << llc_bytes << "B, sockets=" << num_sockets
     << ", cores/socket=" << cores_per_socket << ", alpha=" << alpha
     << ", beta=" << beta << ", b_atomic=" << AtomicBlockSize()
     << ", rho_read=" << rho_read << ", rho_write=" << rho_write
     << ", tiling=" << TilingModeName(tiling)
     << ", est=" << (density_estimation ? 1 : 0)
     << ", mixed=" << (mixed_tiles ? 1 : 0)
     << ", jit=" << (dynamic_conversion ? 1 : 0)
     << ", fuse=" << (fused_chains ? 1 : 0)
     << ", steal=" << (work_stealing ? 1 : 0) << "}";
  return os.str();
}

}  // namespace atmx
