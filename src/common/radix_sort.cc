#include "common/radix_sort.h"

#include <algorithm>
#include <numeric>

namespace atmx {

std::vector<index_t> SortedPermutation(
    const std::vector<std::uint64_t>& keys) {
  const std::size_t n = keys.size();
  std::vector<index_t> perm(n);
  std::iota(perm.begin(), perm.end(), index_t{0});
  if (n < 2) return perm;

  // Small inputs: comparison sort beats the counting passes.
  if (n < 4096) {
    std::sort(perm.begin(), perm.end(), [&](index_t a, index_t b) {
      return keys[a] < keys[b];
    });
    return perm;
  }

  // Only the bytes covered by the maximum key carry information.
  std::uint64_t max_key = 0;
  for (std::uint64_t k : keys) max_key = std::max(max_key, k);
  int passes = 0;
  while (max_key != 0) {
    ++passes;
    max_key >>= 8;
  }

  std::vector<index_t> scratch(n);
  index_t* from = perm.data();
  index_t* to = scratch.data();
  std::size_t counts[256];
  for (int pass = 0; pass < passes; ++pass) {
    const int shift = pass * 8;
    std::fill(std::begin(counts), std::end(counts), 0);
    for (std::size_t i = 0; i < n; ++i) {
      counts[(keys[from[i]] >> shift) & 0xff]++;
    }
    std::size_t offset = 0;
    for (int b = 0; b < 256; ++b) {
      const std::size_t count = counts[b];
      counts[b] = offset;
      offset += count;
    }
    for (std::size_t i = 0; i < n; ++i) {
      to[counts[(keys[from[i]] >> shift) & 0xff]++] = from[i];
    }
    std::swap(from, to);
  }
  if (from != perm.data()) {
    std::copy(scratch.begin(), scratch.end(), perm.begin());
  }
  return perm;
}

}  // namespace atmx
