#include "estimate/water_level.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>

#include "estimate/density_estimator.h"
#include "gen/synthetic.h"
#include "obs/obs.h"
#include "ops/atmult.h"
#include "tile/partitioner.h"

namespace atmx {
namespace {

// 2x2 grid of 16x16 blocks with descending densities.
DensityMap FourBlockMap(double d00, double d01, double d10, double d11) {
  DensityMap map(32, 32, 16);
  map.Set(0, 0, d00);
  map.Set(0, 1, d01);
  map.Set(1, 0, d10);
  map.Set(1, 1, d11);
  return map;
}

TEST(WaterLevelTest, UnlimitedMemoryAllowsLowestLevel) {
  DensityMap map = FourBlockMap(0.9, 0.5, 0.2, 0.05);
  WaterLevelResult result =
      SolveWaterLevel(map, std::numeric_limits<std::size_t>::max());
  EXPECT_TRUE(result.feasible);
  // The level can drop to the lowest bar: every block dense.
  EXPECT_DOUBLE_EQ(result.threshold, 0.05);
  EXPECT_EQ(result.projected_bytes, 4u * 256 * 8);
}

TEST(WaterLevelTest, TightLimitKeepsEverythingSparse) {
  DensityMap map = FourBlockMap(0.3, 0.2, 0.1, 0.05);
  // All-sparse size: (0.65)*256*16 = 2662.4.
  WaterLevelResult result = SolveWaterLevel(map, 2700);
  EXPECT_TRUE(result.feasible);
  EXPECT_GT(result.threshold, 0.3);  // no block surfaces
  EXPECT_LE(result.projected_bytes, 2700u);
}

TEST(WaterLevelTest, IntermediateLimitSurfacesDensestBlocks) {
  DensityMap map = FourBlockMap(0.9, 0.5, 0.2, 0.05);
  // All-sparse: 1.65*256*16 = 6758. Surfacing 0.9: 6758 + 256*(8-14.4)
  // = 5120. Surfacing 0.5 too: +256*(8-8) = 5120. Surfacing 0.2:
  // +256*(8-3.2) = 6349. Surfacing 0.05: +256*(8-0.8)=8192 -> over 7000.
  WaterLevelResult result = SolveWaterLevel(map, 7000);
  EXPECT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.threshold, 0.2);
  EXPECT_LE(result.projected_bytes, 7000u);
}

TEST(WaterLevelTest, InfeasibleAllSparseStillReported) {
  DensityMap map = FourBlockMap(0.3, 0.3, 0.3, 0.3);
  // All sparse: 1.2*256*16 = 4915; dense would be 8192. Limit below both.
  WaterLevelResult result = SolveWaterLevel(map, 1000);
  EXPECT_FALSE(result.feasible);
}

TEST(WaterLevelTest, DenseBlocksCanRescueInfeasibleSparseLayout) {
  // A nearly-full matrix is *smaller* dense than sparse: rho 0.9 => sparse
  // 14.4 B/cell vs dense 8 B/cell.
  DensityMap map = FourBlockMap(0.95, 0.95, 0.95, 0.95);
  const std::size_t sparse_all =
      static_cast<std::size_t>(4 * 0.95 * 256 * 16);
  const std::size_t dense_all = 4 * 256 * 8;
  WaterLevelResult result = SolveWaterLevel(map, (sparse_all + dense_all) / 2);
  EXPECT_TRUE(result.feasible);
  EXPECT_LE(result.projected_bytes, (sparse_all + dense_all) / 2);
}

TEST(WaterLevelTest, AllEqualDensityFlipsTogether) {
  // Every bar has the same height: the `>=` threshold semantics mean the
  // blocks can only flip dense all at once, never partially. At rho 0.7 a
  // dense flip shrinks a block (0.7 * 16 = 11.2 > 8 B/cell).
  DensityMap map = FourBlockMap(0.7, 0.7, 0.7, 0.7);
  const std::size_t sparse_all =
      static_cast<std::size_t>(4 * 0.7 * 256 * 16);  // 11468
  const std::size_t dense_all = 4 * 256 * 8;         // 8192
  ASSERT_LT(dense_all, sparse_all);
  // Limit admits all-dense but not all-sparse: the committed level must be
  // the full flip — projected_bytes is exactly dense_all, never one of the
  // partial-flip intermediate sums.
  WaterLevelResult result = SolveWaterLevel(map, 9000);
  EXPECT_TRUE(result.feasible);
  EXPECT_LE(result.threshold, 0.7);
  EXPECT_EQ(result.projected_bytes, dense_all);  // all four flipped

  // With the limit below all-dense too, nothing fits: infeasible, and the
  // reported level is the minimum-memory one (everything dense here).
  WaterLevelResult tight = SolveWaterLevel(map, dense_all - 1);
  EXPECT_FALSE(tight.feasible);
  EXPECT_EQ(tight.projected_bytes, dense_all);
}

TEST(WaterLevelTest, EmptyDensityMap) {
  DensityMap map(0, 0, 16);
  WaterLevelResult result = SolveWaterLevel(map, 0);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.projected_bytes, 0u);
  EXPECT_GT(result.threshold, 1.0);  // nothing to surface
}

TEST(WaterLevelTest, ZeroMemLimitFallsBackToMinimumMemory) {
  DensityMap map = FourBlockMap(0.9, 0.5, 0.2, 0.05);
  WaterLevelResult result = SolveWaterLevel(map, 0);
  EXPECT_FALSE(result.feasible);
  // The fallback level is the global memory minimum over all levels.
  std::size_t best = std::numeric_limits<std::size_t>::max();
  for (double t : {0.05, 0.2, 0.5, 0.9, 1.0 + 1e-12}) {
    best = std::min(best, EstimateMemoryBytes(map, t));
  }
  EXPECT_EQ(result.projected_bytes, best);
  EXPECT_EQ(result.projected_bytes, EstimateMemoryBytes(map, result.threshold));
}

TEST(WaterLevelTest, ProjectedBytesMatchesEstimateAtCommittedThreshold) {
  // The solver's projection must be exactly EstimateMemoryBytes at the
  // threshold it reports — a single formula both the solver and ATMULT's
  // predicted_bytes gauge agree on — across feasible, tie, and infeasible
  // outcomes.
  const DensityMap maps[] = {
      FourBlockMap(0.9, 0.5, 0.2, 0.05), FourBlockMap(0.3, 0.3, 0.3, 0.3),
      FourBlockMap(0.95, 0.95, 0.95, 0.95), FourBlockMap(0.0, 0.0, 0.0, 0.0)};
  const std::size_t limits[] = {0, 1000, 2700, 7000, 8192,
                                std::numeric_limits<std::size_t>::max()};
  for (const DensityMap& map : maps) {
    for (std::size_t limit : limits) {
      WaterLevelResult result = SolveWaterLevel(map, limit);
      EXPECT_EQ(result.projected_bytes,
                EstimateMemoryBytes(map, result.threshold));
    }
  }
}

#ifdef ATMX_OBS_ENABLED
TEST(WaterLevelTest, PredictionMatchesAtmultResultBytesOnExactWorkload) {
  // Block-diagonal with fully dense blocks and no background noise: the
  // density estimator is exact, so the water-level projection published as
  // atmult.waterlevel.predicted_bytes must agree with the realized result
  // size (atmult.result_bytes) up to the density-map grid granularity.
  AtmConfig config;
  config.b_atomic = 16;
  config.llc_bytes = 1 << 20;
  config.num_sockets = 1;
  config.cores_per_socket = 2;
  CooMatrix a_coo = GenerateDiagonalDenseBlocks(128, 4, 32, 1.0, 0, 17);
  ATMatrix a = PartitionToAtm(a_coo, config);
  AtMult op(config);
  ATMatrix c = op.Multiply(a, a);
  ASSERT_GT(c.nnz(), 0);
  const double predicted = obs::MetricsRegistry::Global()
                               .GetGauge("atmult.waterlevel.predicted_bytes")
                               .Value();
  const double actual = obs::MetricsRegistry::Global()
                            .GetGauge("atmult.result_bytes")
                            .Value();
  ASSERT_GT(predicted, 0.0);
  ASSERT_GT(actual, 0.0);
  // A^2 of a disjoint block-diagonal matrix keeps the same fully-dense
  // block structure, so prediction and result agree to within 10%.
  EXPECT_NEAR(predicted / actual, 1.0, 0.1);
}
#endif  // ATMX_OBS_ENABLED

TEST(EffectiveWriteThresholdTest, KeepsRhoWWhenMemoryAllows) {
  DensityMap map = FourBlockMap(0.9, 0.5, 0.2, 0.05);
  EXPECT_DOUBLE_EQ(
      EffectiveWriteThreshold(map, 0.03,
                              std::numeric_limits<std::size_t>::max()),
      0.03);
}

TEST(EffectiveWriteThresholdTest, RaisedUnderMemoryPressure) {
  DensityMap map = FourBlockMap(0.9, 0.5, 0.2, 0.05);
  const double threshold = EffectiveWriteThreshold(map, 0.03, 7000);
  EXPECT_GT(threshold, 0.03);
  // Complies with the limit.
  EXPECT_LE(EstimateMemoryBytes(map, threshold), 7000u);
}

TEST(EffectiveWriteThresholdTest, ReportsFeasibility) {
  DensityMap map = FourBlockMap(0.9, 0.5, 0.2, 0.05);
  bool feasible = false;
  EffectiveWriteThreshold(map, 0.03, 7000, &feasible);
  EXPECT_TRUE(feasible);

  // All blocks at rho 0.3: the all-sparse layout (the memory minimum for
  // rho < 0.5) needs 4 * 0.3 * 256 * 16 = 4915 bytes — a 4000-byte SLA is
  // unachievable and the threshold clamps above all bars.
  DensityMap sparse = FourBlockMap(0.3, 0.3, 0.3, 0.3);
  const double clamped =
      EffectiveWriteThreshold(sparse, 0.03, 4000, &feasible);
  EXPECT_FALSE(feasible);
  EXPECT_GT(clamped, 1.0);
}

// ---- Chain-scope water level ----
//
// Block arithmetic for FourBlockMap(0.9, 0.5, 0.2, 0.05) (16x16 blocks,
// area 256): dense block = 2048 B, sparse block = rho * 4096 B. All-dense
// (any threshold <= 0.05) = 8192 B; memory minimum (threshold 0.5) =
// 2048 + 2048 + 819.2 + 204.8 = 5120 B.

TEST(ChainWaterLevelTest, GenerousBudgetKeepsRhoWriteEverywhere) {
  DensityMap p0 = FourBlockMap(0.9, 0.5, 0.2, 0.05);
  DensityMap p1 = FourBlockMap(0.9, 0.5, 0.2, 0.05);
  ChainWaterLevelResult result =
      SolveChainWaterLevel({&p0, &p1}, {1, -1}, 0.03, 1 << 20);
  EXPECT_TRUE(result.feasible);
  ASSERT_EQ(result.thresholds.size(), 2u);
  EXPECT_DOUBLE_EQ(result.thresholds[0], 0.03);
  EXPECT_DOUBLE_EQ(result.thresholds[1], 0.03);
  // Both products overlap at step 1: the peak is the all-dense sum.
  EXPECT_EQ(result.projected_peak_bytes, 16384u);
}

TEST(ChainWaterLevelTest, SharedBudgetRaisesOverlappingThresholds) {
  // Product 0 is consumed by product 1, so both are resident at step 1
  // (peak 16384 at the optimal level, over a 12000-byte budget). The
  // solver must raise thresholds — but only as far as the budget demands.
  DensityMap p0 = FourBlockMap(0.9, 0.5, 0.2, 0.05);
  DensityMap p1 = FourBlockMap(0.9, 0.5, 0.2, 0.05);
  ChainWaterLevelResult result =
      SolveChainWaterLevel({&p0, &p1}, {1, -1}, 0.03, 12000);
  EXPECT_TRUE(result.feasible);
  ASSERT_EQ(result.thresholds.size(), 2u);
  EXPECT_GT(result.thresholds[0], 0.03);
  EXPECT_GT(result.thresholds[1], 0.03);
  EXPECT_LE(result.projected_peak_bytes, 12000u);
  EXPECT_EQ(result.peak_step, 1);
}

TEST(ChainWaterLevelTest, DisjointLifetimesDoNotShareTheBudget) {
  // p0 dies feeding p1, p1 dies feeding p2: at most two products overlap
  // at any step, so a budget that holds a pair (but not all three)
  // requires no threshold raise.
  DensityMap p0 = FourBlockMap(0.9, 0.5, 0.2, 0.05);
  DensityMap p1 = FourBlockMap(0.9, 0.5, 0.2, 0.05);
  DensityMap p2 = FourBlockMap(0.9, 0.5, 0.2, 0.05);
  ChainWaterLevelResult pairwise =
      SolveChainWaterLevel({&p0, &p1, &p2}, {1, 2, -1}, 0.03, 16500);
  EXPECT_TRUE(pairwise.feasible);
  for (double t : pairwise.thresholds) EXPECT_DOUBLE_EQ(t, 0.03);
  EXPECT_EQ(pairwise.projected_peak_bytes, 16384u);

  // Same budget, but p0 now lives until the root consumes it: all three
  // overlap at step 2 (24576 all-dense) and thresholds must rise.
  ChainWaterLevelResult overlapped =
      SolveChainWaterLevel({&p0, &p1, &p2}, {2, 2, -1}, 0.03, 16500);
  EXPECT_TRUE(overlapped.feasible);
  EXPECT_LE(overlapped.projected_peak_bytes, 16500u);
  double raised = 0.0;
  for (double t : overlapped.thresholds) raised = std::max(raised, t);
  EXPECT_GT(raised, 0.03);
}

TEST(ChainWaterLevelTest, InfeasibleBudgetClampsToMemoryMinimalFloor) {
  // Two overlapping products bottom out at 2 * 5120 = 10240 bytes; a
  // 6000-byte budget is unachievable at any threshold assignment.
  DensityMap p0 = FourBlockMap(0.9, 0.5, 0.2, 0.05);
  DensityMap p1 = FourBlockMap(0.9, 0.5, 0.2, 0.05);
#if defined(ATMX_OBS_ENABLED)
  const std::uint64_t before = obs::MetricsRegistry::Global()
                                   .GetCounter("waterlevel.infeasible")
                                   .Value();
#endif
  ChainWaterLevelResult result =
      SolveChainWaterLevel({&p0, &p1}, {1, -1}, 0.03, 6000);
  EXPECT_FALSE(result.feasible);
  ASSERT_EQ(result.thresholds.size(), 2u);
  // Clamped to the memory-minimal level (dense exactly where rho >= 0.5).
  EXPECT_DOUBLE_EQ(result.thresholds[0], 0.5);
  EXPECT_DOUBLE_EQ(result.thresholds[1], 0.5);
  EXPECT_EQ(result.projected_peak_bytes, 10240u);
#if defined(ATMX_OBS_ENABLED)
  EXPECT_EQ(obs::MetricsRegistry::Global()
                .GetCounter("waterlevel.infeasible")
                .Value(),
            before + 1);
#endif
}

TEST(ChainWaterLevelTest, EmptyChainIsTriviallyFeasible) {
  ChainWaterLevelResult result = SolveChainWaterLevel({}, {}, 0.03, 0);
  EXPECT_TRUE(result.feasible);
  EXPECT_TRUE(result.thresholds.empty());
  EXPECT_EQ(result.projected_peak_bytes, 0u);
}

}  // namespace
}  // namespace atmx
