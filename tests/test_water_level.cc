#include "estimate/water_level.h"

#include <gtest/gtest.h>

#include "estimate/density_estimator.h"

namespace atmx {
namespace {

// 2x2 grid of 16x16 blocks with descending densities.
DensityMap FourBlockMap(double d00, double d01, double d10, double d11) {
  DensityMap map(32, 32, 16);
  map.Set(0, 0, d00);
  map.Set(0, 1, d01);
  map.Set(1, 0, d10);
  map.Set(1, 1, d11);
  return map;
}

TEST(WaterLevelTest, UnlimitedMemoryAllowsLowestLevel) {
  DensityMap map = FourBlockMap(0.9, 0.5, 0.2, 0.05);
  WaterLevelResult result =
      SolveWaterLevel(map, std::numeric_limits<std::size_t>::max());
  EXPECT_TRUE(result.feasible);
  // The level can drop to the lowest bar: every block dense.
  EXPECT_DOUBLE_EQ(result.threshold, 0.05);
  EXPECT_EQ(result.projected_bytes, 4u * 256 * 8);
}

TEST(WaterLevelTest, TightLimitKeepsEverythingSparse) {
  DensityMap map = FourBlockMap(0.3, 0.2, 0.1, 0.05);
  // All-sparse size: (0.65)*256*16 = 2662.4.
  WaterLevelResult result = SolveWaterLevel(map, 2700);
  EXPECT_TRUE(result.feasible);
  EXPECT_GT(result.threshold, 0.3);  // no block surfaces
  EXPECT_LE(result.projected_bytes, 2700u);
}

TEST(WaterLevelTest, IntermediateLimitSurfacesDensestBlocks) {
  DensityMap map = FourBlockMap(0.9, 0.5, 0.2, 0.05);
  // All-sparse: 1.65*256*16 = 6758. Surfacing 0.9: 6758 + 256*(8-14.4)
  // = 5120. Surfacing 0.5 too: +256*(8-8) = 5120. Surfacing 0.2:
  // +256*(8-3.2) = 6349. Surfacing 0.05: +256*(8-0.8)=8192 -> over 7000.
  WaterLevelResult result = SolveWaterLevel(map, 7000);
  EXPECT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.threshold, 0.2);
  EXPECT_LE(result.projected_bytes, 7000u);
}

TEST(WaterLevelTest, InfeasibleAllSparseStillReported) {
  DensityMap map = FourBlockMap(0.3, 0.3, 0.3, 0.3);
  // All sparse: 1.2*256*16 = 4915; dense would be 8192. Limit below both.
  WaterLevelResult result = SolveWaterLevel(map, 1000);
  EXPECT_FALSE(result.feasible);
}

TEST(WaterLevelTest, DenseBlocksCanRescueInfeasibleSparseLayout) {
  // A nearly-full matrix is *smaller* dense than sparse: rho 0.9 => sparse
  // 14.4 B/cell vs dense 8 B/cell.
  DensityMap map = FourBlockMap(0.95, 0.95, 0.95, 0.95);
  const std::size_t sparse_all =
      static_cast<std::size_t>(4 * 0.95 * 256 * 16);
  const std::size_t dense_all = 4 * 256 * 8;
  WaterLevelResult result = SolveWaterLevel(map, (sparse_all + dense_all) / 2);
  EXPECT_TRUE(result.feasible);
  EXPECT_LE(result.projected_bytes, (sparse_all + dense_all) / 2);
}

TEST(EffectiveWriteThresholdTest, KeepsRhoWWhenMemoryAllows) {
  DensityMap map = FourBlockMap(0.9, 0.5, 0.2, 0.05);
  EXPECT_DOUBLE_EQ(
      EffectiveWriteThreshold(map, 0.03,
                              std::numeric_limits<std::size_t>::max()),
      0.03);
}

TEST(EffectiveWriteThresholdTest, RaisedUnderMemoryPressure) {
  DensityMap map = FourBlockMap(0.9, 0.5, 0.2, 0.05);
  const double threshold = EffectiveWriteThreshold(map, 0.03, 7000);
  EXPECT_GT(threshold, 0.03);
  // Complies with the limit.
  EXPECT_LE(EstimateMemoryBytes(map, threshold), 7000u);
}

}  // namespace
}  // namespace atmx
