// Exposition layer: OpenMetrics name mangling and rendering, the flat
// JSON metrics document (MetricsRegistry::ToJson delegate), the
// forgiving top-level-number extractor behind `atmx watch`, and the
// windowed-rate derivation + sampler of obs/snapshot_ring.h.

#include "obs/exposition.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/snapshot_ring.h"

namespace atmx {
namespace {

using obs::DeriveRates;
using obs::ExtractTopLevelNumbers;
using obs::MangleMetricName;
using obs::MetricSample;
using obs::MetricsRegistry;
using obs::RenderMetricsJson;
using obs::RenderOpenMetrics;
using obs::TimedSnapshot;

// --- Name mangling. -------------------------------------------------------

TEST(MangleMetricNameTest, CleanNamesPassThrough) {
  EXPECT_EQ(MangleMetricName("threadpool_steals"), "threadpool_steals");
  EXPECT_EQ(MangleMetricName("a:b_C9"), "a:b_C9");
}

TEST(MangleMetricNameTest, DotsBecomeUnderscores) {
  EXPECT_EQ(MangleMetricName("atmult.kernel.spspd_gemm.invocations"),
            "atmult_kernel_spspd_gemm_invocations");
}

TEST(MangleMetricNameTest, ForeignCharsAndLeadingDigit) {
  EXPECT_EQ(MangleMetricName("1st.pass-rate %"), "_1st_pass_rate__");
  EXPECT_EQ(MangleMetricName(""), "");
}

// --- OpenMetrics rendering. -----------------------------------------------

TEST(RenderOpenMetricsTest, CounterAndGaugeLines) {
  MetricsRegistry registry;
  registry.GetCounter("test.ops").Add(42);
  registry.GetGauge("test.level").Set(2.5);
  const std::string text = RenderOpenMetrics(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE test_level gauge\ntest_level 2.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_ops counter\ntest_ops_total 42\n"),
            std::string::npos);
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
}

TEST(RenderOpenMetricsTest, HistogramBucketsAreCumulativeEndingAtCount) {
  MetricsRegistry registry;
  obs::Histogram& hist =
      registry.GetHistogram("test.hist", {1.0, 10.0, 100.0});
  hist.Observe(0.5);    // bucket 0
  hist.Observe(5.0);    // bucket 1
  hist.Observe(50.0);   // bucket 2
  hist.Observe(500.0);  // overflow
  const std::string text = RenderOpenMetrics(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE test_hist histogram\n"), std::string::npos);
  EXPECT_NE(text.find("test_hist_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("test_hist_bucket{le=\"10\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("test_hist_bucket{le=\"100\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_hist_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_hist_count 4\n"), std::string::npos);
  EXPECT_NE(text.find("test_hist_sum 555.5\n"), std::string::npos);
}

TEST(RenderOpenMetricsTest, EmptySnapshotIsJustEof) {
  EXPECT_EQ(RenderOpenMetrics({}), "# EOF\n");
}

// --- Flat JSON rendering (ToJson delegate). -------------------------------

TEST(RenderMetricsJsonTest, EmptyRegistryRendersEmptyObject) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.ToJson(), "{}");
}

TEST(RenderMetricsJsonTest, NamesAreJsonEscaped) {
  MetricsRegistry registry;
  registry.GetCounter("weird\"name\\with.quotes").Add(7);
  const std::string json = registry.ToJson();
  std::string error;
  EXPECT_TRUE(obs::JsonWellFormed(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"weird\\\"name\\\\with.quotes\":7"),
            std::string::npos);
}

TEST(RenderMetricsJsonTest, ZeroObservationHistogramIsWellFormed) {
  MetricsRegistry registry;
  registry.GetHistogram("test.empty_hist", {1.0, 2.0});
  const std::string json = registry.ToJson();
  std::string error;
  EXPECT_TRUE(obs::JsonWellFormed(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"test.empty_hist\":{\"count\":0,\"sum\":0,"
                      "\"bounds\":[1,2],\"buckets\":[0,0,0]}"),
            std::string::npos);
  // The OpenMetrics view of the same snapshot must also hold together:
  // an all-zero cumulative series ending at +Inf == 0.
  const std::string text = RenderOpenMetrics(registry.Snapshot());
  EXPECT_NE(text.find("test_empty_hist_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_empty_hist_count 0\n"), std::string::npos);
}

TEST(RenderMetricsJsonTest, MatchesRegistryToJson) {
  MetricsRegistry registry;
  registry.GetCounter("a.count").Add(3);
  registry.GetGauge("b.gauge").Set(-0.125);
  registry.GetHistogram("c.hist", {1.0}).Observe(0.5);
  EXPECT_EQ(registry.ToJson(), RenderMetricsJson(registry.Snapshot()));
}

// --- ExtractTopLevelNumbers (the `atmx watch` client half). ---------------

TEST(ExtractTopLevelNumbersTest, ReadsNumbersSkipsNested) {
  const auto pairs = ExtractTopLevelNumbers(
      "{\"a\":1,\n\"hist\":{\"count\":9,\"buckets\":[1,2]},"
      "\"b\":-2.5,\"s\":\"x{y}\",\"flag\":true,\"c\":3e2}");
  const std::map<std::string, double> got(pairs.begin(), pairs.end());
  const std::map<std::string, double> want = {
      {"a", 1.0}, {"b", -2.5}, {"c", 300.0}};
  EXPECT_EQ(got, want);
}

TEST(ExtractTopLevelNumbersTest, SurvivesTruncatedAndGarbageInput) {
  EXPECT_TRUE(ExtractTopLevelNumbers("").empty());
  EXPECT_TRUE(ExtractTopLevelNumbers("not json").empty());
  EXPECT_TRUE(ExtractTopLevelNumbers("[1,2,3]").empty());
  // Truncated mid-value: whatever was complete is returned, no crash.
  const auto pairs = ExtractTopLevelNumbers("{\"a\":1,\"b\":{\"x\":");
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, "a");
  EXPECT_DOUBLE_EQ(pairs[0].second, 1.0);
}

TEST(ExtractTopLevelNumbersTest, RoundTripsRenderedRegistry) {
  MetricsRegistry registry;
  registry.GetCounter("x.count").Add(11);
  registry.GetGauge("y.gauge").Set(0.75);
  registry.GetHistogram("z.hist").Observe(1.0);
  const auto pairs =
      ExtractTopLevelNumbers(RenderMetricsJson(registry.Snapshot()));
  const std::map<std::string, double> got(pairs.begin(), pairs.end());
  const std::map<std::string, double> want = {
      {"x.count", 11.0}, {"y.gauge", 0.75}};
  EXPECT_EQ(got, want);  // the histogram object is skipped wholesale
}

// --- DeriveRates. ---------------------------------------------------------

MetricSample CounterSample(const std::string& name, std::uint64_t value) {
  MetricSample s;
  s.name = name;
  s.type = MetricSample::Type::kCounter;
  s.counter_value = value;
  return s;
}

TEST(DeriveRatesTest, CounterDeltaOverWindow) {
  TimedSnapshot older{1'000'000'000, {CounterSample("ops", 100)}};
  TimedSnapshot newer{3'000'000'000, {CounterSample("ops", 500)}};
  const auto rates = DeriveRates(older, newer);
  const std::map<std::string, double> got(rates.begin(), rates.end());
  ASSERT_TRUE(got.count("rate.ops"));
  EXPECT_DOUBLE_EQ(got.at("rate.ops"), 200.0);  // 400 over 2 s
}

TEST(DeriveRatesTest, NewCounterCountsFromZeroAndResetClampsToZero) {
  TimedSnapshot older{0, {CounterSample("shrunk", 900)}};
  TimedSnapshot newer{1'000'000'000,
                      {CounterSample("fresh", 50),
                       CounterSample("shrunk", 10)}};
  const auto rates = DeriveRates(older, newer);
  const std::map<std::string, double> got(rates.begin(), rates.end());
  EXPECT_DOUBLE_EQ(got.at("rate.fresh"), 50.0);
  EXPECT_DOUBLE_EQ(got.at("rate.shrunk"), 0.0);  // reset, not negative
}

TEST(DeriveRatesTest, EmptyOrNegativeWindowYieldsNothing) {
  TimedSnapshot snap{5'000'000'000, {CounterSample("ops", 1)}};
  EXPECT_TRUE(DeriveRates(snap, snap).empty());
  TimedSnapshot earlier{1'000'000'000, {CounterSample("ops", 0)}};
  EXPECT_TRUE(DeriveRates(snap, earlier).empty());
}

TEST(DeriveRatesTest, CompositeResultBytesSumsLocalAndRemoteWrites) {
  TimedSnapshot older{0,
                      {CounterSample("atmult.bytes.local_write", 100),
                       CounterSample("atmult.bytes.remote_write", 10)}};
  TimedSnapshot newer{2'000'000'000,
                      {CounterSample("atmult.bytes.local_write", 300),
                       CounterSample("atmult.bytes.remote_write", 110)}};
  const auto rates = DeriveRates(older, newer);
  const std::map<std::string, double> got(rates.begin(), rates.end());
  EXPECT_DOUBLE_EQ(got.at("rate.atmult.result_bytes"), 150.0);
}

// --- SnapshotSampler. -----------------------------------------------------

TEST(SnapshotSamplerTest, SampleOncePublishesRateGauges) {
  MetricsRegistry registry;
  obs::Counter& ops = registry.GetCounter("work.ops");
  obs::SnapshotSampler sampler;
  obs::SnapshotSampler::Options options;
  options.registry = &registry;
  options.period = std::chrono::minutes(1);  // ticks driven by hand below
  ASSERT_TRUE(sampler.Start(options).ok());
  // The seeding sample runs on the sampler thread; wait for it so the
  // Add lands strictly after the baseline snapshot (else delta == 0).
  while (sampler.ticks() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ops.Add(100);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  sampler.SampleOnce();
  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.ticks(), 2u);
  EXPECT_GT(registry.GetGauge("rate.work.ops").Value(), 0.0);
  EXPECT_GE(registry.GetCounter("sampler.ticks").Value(), 2u);
  EXPECT_GT(registry.GetGauge("sampler.window_seconds").Value(), 0.0);
}

TEST(SnapshotSamplerTest, StartValidatesOptionsAndRejectsDoubleStart) {
  MetricsRegistry registry;
  obs::SnapshotSampler sampler;
  obs::SnapshotSampler::Options options;
  options.registry = &registry;
  options.period = std::chrono::milliseconds(0);
  EXPECT_FALSE(sampler.Start(options).ok());
  options.period = std::chrono::milliseconds(10);
  options.ring_capacity = 1;
  EXPECT_FALSE(sampler.Start(options).ok());
  options.ring_capacity = 4;
  ASSERT_TRUE(sampler.Start(options).ok());
  EXPECT_TRUE(sampler.running());
  EXPECT_FALSE(sampler.Start(options).ok());
  sampler.Stop();
  sampler.Stop();  // idempotent
  EXPECT_FALSE(sampler.running());
}

TEST(SnapshotSamplerTest, BackgroundThreadTicksAndRingIsBounded) {
  MetricsRegistry registry;
  registry.GetCounter("bg.ops").Add(1);
  obs::SnapshotSampler sampler;
  obs::SnapshotSampler::Options options;
  options.registry = &registry;
  options.period = std::chrono::milliseconds(2);
  options.ring_capacity = 3;
  ASSERT_TRUE(sampler.Start(options).ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sampler.ticks() < 5 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  sampler.Stop();
  EXPECT_GE(sampler.ticks(), 5u);
  const auto history = sampler.History(100);
  EXPECT_LE(history.size(), 3u);
  ASSERT_GE(history.size(), 2u);
  // Oldest first, strictly ordered timeline.
  EXPECT_LT(history.front().ts_ns, history.back().ts_ns);
}

}  // namespace
}  // namespace atmx
