#include "storage/csr_matrix.h"

#include <gtest/gtest.h>

#include "storage/convert.h"
#include "tests/test_util.h"

namespace atmx {
namespace {

CsrMatrix SmallCsr() {
  // 1 0 2
  // 0 0 0
  // 3 4 0
  CooMatrix coo(3, 3);
  coo.Add(0, 0, 1.0);
  coo.Add(0, 2, 2.0);
  coo.Add(2, 0, 3.0);
  coo.Add(2, 1, 4.0);
  return CooToCsr(coo);
}

TEST(CsrMatrixTest, ShapeAndNnz) {
  CsrMatrix m = SmallCsr();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_EQ(m.RowNnz(0), 2);
  EXPECT_EQ(m.RowNnz(1), 0);
  EXPECT_EQ(m.RowNnz(2), 2);
  EXPECT_TRUE(m.CheckValid());
  EXPECT_NEAR(m.Density(), 4.0 / 9.0, 1e-12);
}

TEST(CsrMatrixTest, ElementLookup) {
  CsrMatrix m = SmallCsr();
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.At(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 4.0);
}

TEST(CsrMatrixTest, RowColRangeBinarySearch) {
  CsrMatrix m = SmallCsr();
  index_t first, last;
  m.RowColRange(2, 0, 1, &first, &last);
  EXPECT_EQ(last - first, 1);  // only column 0
  m.RowColRange(2, 1, 3, &first, &last);
  EXPECT_EQ(last - first, 1);  // only column 1
  m.RowColRange(0, 1, 3, &first, &last);
  EXPECT_EQ(last - first, 1);  // only column 2
  m.RowColRange(1, 0, 3, &first, &last);
  EXPECT_EQ(last - first, 0);  // empty row
}

TEST(CsrMatrixTest, CountNnzInWindow) {
  CsrMatrix m = SmallCsr();
  EXPECT_EQ(m.CountNnzInWindow(0, 3, 0, 3), 4);
  EXPECT_EQ(m.CountNnzInWindow(0, 1, 0, 3), 2);
  EXPECT_EQ(m.CountNnzInWindow(1, 2, 0, 3), 0);
  EXPECT_EQ(m.CountNnzInWindow(0, 3, 0, 1), 2);
  EXPECT_EQ(m.CountNnzInWindow(2, 3, 1, 2), 1);
}

TEST(CsrMatrixTest, MemoryBytesMatchesFormula) {
  CsrMatrix m = SmallCsr();
  // 16 bytes per element + row pointer array.
  EXPECT_EQ(m.MemoryBytes(), 4 * 16 + 4 * sizeof(index_t));
}

TEST(CsrMatrixTest, ColumnsSortedWithinRows) {
  CooMatrix coo = atmx::testing::RandomCoo(50, 80, 400, 5);
  CsrMatrix m = CooToCsr(coo);
  EXPECT_TRUE(m.CheckValid());
}

TEST(CsrBuilderTest, BuildsRowsInOrder) {
  CsrBuilder builder(3, 4);
  builder.Append(2, 1.0);
  builder.Append(0, 2.0);  // out of order within a row: sorted on finish
  builder.FinishRowsUpTo(1);
  builder.FinishRowsUpTo(2);  // row 1 empty
  builder.Append(3, 3.0);
  CsrMatrix m = builder.Build();
  EXPECT_TRUE(m.CheckValid());
  EXPECT_DOUBLE_EQ(m.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.At(0, 2), 1.0);
  EXPECT_EQ(m.RowNnz(1), 0);
  EXPECT_DOUBLE_EQ(m.At(2, 3), 3.0);
}

TEST(CsrBuilderTest, EmptyBuild) {
  CsrBuilder builder(0, 0);
  CsrMatrix m = builder.Build();
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.nnz(), 0);
}

TEST(CsrBuilderTest, SkipManyRows) {
  CsrBuilder builder(100, 10);
  builder.Append(5, 1.0);
  builder.FinishRowsUpTo(50);
  builder.Append(7, 2.0);
  CsrMatrix m = builder.Build();
  EXPECT_TRUE(m.CheckValid());
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.At(0, 5), 1.0);
  EXPECT_DOUBLE_EQ(m.At(50, 7), 2.0);
}

}  // namespace
}  // namespace atmx
