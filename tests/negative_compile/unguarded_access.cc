// Negative-compilation probe for the thread-safety annotations: proves the
// capability system actually rejects unguarded access when analyzed by
// Clang, i.e. that the macros in common/thread_annotations.h are not
// silently expanding to nothing under the enforcing toolchain.
//
// Two ctest entries (Clang-only; see tests/CMakeLists.txt) compile this TU
// with `-fsyntax-only -Wthread-safety -Wthread-safety-beta -Werror`:
//   - thread_safety_negative_compile: -DATMX_NC_VIOLATE=1, expected to
//     FAIL (WILL_FAIL) on the unguarded accesses below;
//   - thread_safety_positive_control: no define, expected to compile
//     cleanly — guarding against the probe failing for unrelated reasons
//     (a broken include path would otherwise "pass" the negative test).
//
// Under GCC the annotations are no-ops and both variants compile; the
// ctest entries are simply not registered there.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Guarded {
 public:
  void Set(int v) {
    atmx::MutexLock lock(mutex_);
    value_ = v;
  }

  int GetLocked() {
    atmx::MutexLock lock(mutex_);
    return value_;
  }

  void NotifyUnderLock() {
    atmx::MutexLock lock(mutex_);
    changed_.NotifyAll();
  }

  void WaitForNonZero() {
    atmx::MutexLock lock(mutex_);
    while (value_ == 0) changed_.Wait(mutex_);
  }

#if defined(ATMX_NC_VIOLATE)
  // Each of these is one diagnostic class the analysis must reject.
  int ReadWithoutLock() {
    return value_;  // -Wthread-safety: reading without holding mutex_
  }

  void WriteWithoutLock(int v) {
    value_ = v;  // -Wthread-safety: writing without holding mutex_
  }

  void WaitWithoutLock() {
    changed_.Wait(mutex_);  // -Wthread-safety: Wait REQUIRES(mutex_)
  }

  void ReadUnderWrongLock() {
    atmx::MutexLock lock(other_mutex_);
    (void)value_;  // -Wthread-safety: wrong capability held
  }
#endif

 private:
  atmx::Mutex mutex_;
  atmx::Mutex other_mutex_;
  atmx::CondVar changed_;
  int value_ ATMX_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Set(1);
  return g.GetLocked() == 1 ? 0 : 1;
}
