// End-to-end integration scenarios across the full stack: workload
// generation -> partitioning -> estimation -> ATMULT -> export, plus the
// application patterns from the paper's introduction (cosine similarity
// A*A^T, iterative V*H^T products).

#include <gtest/gtest.h>

#include "gen/synthetic.h"
#include "gen/workloads.h"
#include "kernels/sparse_kernels.h"
#include "storage/matrix_market.h"
#include "ops/atmult.h"
#include "ops/spmv.h"
#include "ops/transpose.h"
#include "storage/convert.h"
#include "tests/test_util.h"
#include "tile/partitioner.h"

namespace atmx {
namespace {

AtmConfig IntegrationConfig() {
  AtmConfig config;
  config.b_atomic = 32;
  config.llc_bytes = 1 << 20;
  config.num_sockets = 2;
  config.cores_per_socket = 2;
  return config;
}

TEST(IntegrationTest, TinyWorkloadSuiteSelfMultiplies) {
  // A miniature version of the Fig. 8 experiment over a representative
  // workload subset, checking correctness rather than speed.
  const AtmConfig config = IntegrationConfig();
  AtMult op(config);
  for (const char* id : {"R3", "R7", "G1", "G9"}) {
    CooMatrix coo = MakeWorkloadMatrix(id, 0.01);
    CsrMatrix csr = CooToCsr(coo);
    ATMatrix atm = PartitionToAtm(coo, config);
    EXPECT_TRUE(atm.CheckValid()) << id;

    AtMultStats stats;
    ATMatrix c = op.Multiply(atm, atm, &stats);
    CsrMatrix expected = SpGemmCsr(csr, csr);
    EXPECT_EQ(c.nnz(), expected.nnz()) << id;
    atmx::testing::ExpectDenseNear(CsrToDense(expected),
                                   CsrToDense(c.ToCsr()), 1e-8);
  }
}

TEST(IntegrationTest, CosineSimilarityPattern) {
  // Term-document matrix A; similarity D = A * A^T (paper section I).
  const AtmConfig config = IntegrationConfig();
  CooMatrix a_coo = atmx::testing::RandomCoo(80, 120, 900, 42);
  CsrMatrix a = CooToCsr(a_coo);
  CsrMatrix at = Transpose(a);

  ATMatrix atm_a = PartitionToAtm(a_coo, config);
  ATMatrix atm_at = AtmFromCsr(at, config);
  AtMult op(config);
  ATMatrix d = op.Multiply(atm_a, atm_at);

  CsrMatrix expected = SpGemmCsr(a, at);
  atmx::testing::ExpectDenseNear(CsrToDense(expected),
                                 CsrToDense(d.ToCsr()), 1e-9);
  // Self-similarity entries (diagonal) are positive row norms.
  for (index_t i = 0; i < 80; ++i) {
    if (a.RowNnz(i) > 0) {
      EXPECT_GT(d.At(i, i), 0.0);
    }
  }
}

TEST(IntegrationTest, IterativeFactorizationPattern) {
  // Gene-clustering inner loop: repeated V * H^T with sparse V and a
  // small dense H (paper section I).
  const AtmConfig config = IntegrationConfig();
  CooMatrix v_coo = MakeWorkloadMatrix("R2", 0.005);
  const index_t n = v_coo.cols();
  DenseMatrix h = GenerateFullDense(8, n, 7);

  ATMatrix v = PartitionToAtm(v_coo, config);
  ATMatrix ht = AtmFromDense(Transpose(h), config);
  AtMult op(config);
  ATMatrix w = op.Multiply(v, ht);
  EXPECT_EQ(w.rows(), v.rows());
  EXPECT_EQ(w.cols(), 8);

  CsrMatrix expected = SpGemmCsr(CooToCsr(v_coo),
                                 DenseToCsr(Transpose(h)));
  atmx::testing::ExpectDenseNear(CsrToDense(expected),
                                 CsrToDense(w.ToCsr()), 1e-8);
}

TEST(IntegrationTest, MultiSourceBfsPattern) {
  // Multi-source BFS via repeated boolean-ish sparse multiplication
  // (frontier matrix F (sources x n) times adjacency A).
  const AtmConfig config = IntegrationConfig();
  CooMatrix adj_coo = MakeWorkloadMatrix("G5", 0.005);
  const index_t n = adj_coo.rows();
  CsrMatrix adj = CooToCsr(adj_coo);
  ATMatrix atm_adj = PartitionToAtm(adj_coo, config);

  CooMatrix frontier(4, n);
  for (index_t s = 0; s < 4; ++s) frontier.Add(s, s * (n / 5), 1.0);
  ATMatrix f = PartitionToAtm(frontier, config);

  AtMult op(config);
  ATMatrix reached = op.Multiply(f, atm_adj);
  CsrMatrix expected = SpGemmCsr(CooToCsr(frontier), adj);
  EXPECT_EQ(reached.nnz(), expected.nnz());

  // Two hops.
  ATMatrix two_hop = op.Multiply(reached, atm_adj);
  CsrMatrix expected2 = SpGemmCsr(expected, adj);
  atmx::testing::ExpectDenseNear(CsrToDense(expected2),
                                 CsrToDense(two_hop.ToCsr()), 1e-8);
}

TEST(IntegrationTest, ExportRoundTripThroughMatrixMarket) {
  const AtmConfig config = IntegrationConfig();
  CooMatrix coo = MakeWorkloadMatrix("R3", 0.005);
  ATMatrix atm = PartitionToAtm(coo, config);
  AtMult op(config);
  ATMatrix c = op.Multiply(atm, atm);

  const std::string path = ::testing::TempDir() + "/result.mtx";
  ASSERT_TRUE(WriteMatrixMarket(c.ToCoo(), path).ok());
  Result<CooMatrix> read = ReadMatrixMarket(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().nnz(), c.nnz());
}

TEST(IntegrationTest, MemoryLimitedPipelineStaysUnderBudget) {
  AtmConfig config = IntegrationConfig();
  CooMatrix coo = MakeWorkloadMatrix("R3", 0.008);
  ATMatrix atm = PartitionToAtm(coo, config);

  AtMult unlimited(config);
  AtMultStats s1;
  ATMatrix c1 = unlimited.Multiply(atm, atm, &s1);

  // Budget at 60% of the unconstrained result size.
  config.result_mem_limit_bytes =
      static_cast<std::size_t>(c1.MemoryBytes() * 0.6);
  AtMult limited(config);
  AtMultStats s2;
  ATMatrix c2 = limited.Multiply(atm, atm, &s2);
  EXPECT_GE(s2.effective_write_threshold, s1.effective_write_threshold);
  // The limit may be infeasible for this product (sparse blocks below
  // rho = 0.5 cannot shrink by densifying); the contract is best-effort:
  // never exceed the unconstrained layout.
  EXPECT_LE(static_cast<double>(c2.MemoryBytes()),
            1.01 * static_cast<double>(c1.MemoryBytes()));
}

}  // namespace
}  // namespace atmx
