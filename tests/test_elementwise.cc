#include "ops/elementwise.h"

#include <gtest/gtest.h>

#include "storage/convert.h"
#include "tests/test_util.h"
#include "tile/partitioner.h"

namespace atmx {
namespace {

using atmx::testing::ExpectDenseNear;
using atmx::testing::RandomCoo;

TEST(ElementwiseTest, CsrAddMergesPatterns) {
  CooMatrix a(3, 3), b(3, 3);
  a.Add(0, 0, 1.0);
  a.Add(1, 2, 2.0);
  b.Add(0, 0, 3.0);
  b.Add(2, 1, 4.0);
  CsrMatrix c = Add(CooToCsr(a), CooToCsr(b));
  EXPECT_TRUE(c.CheckValid());
  EXPECT_EQ(c.nnz(), 3);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(c.At(1, 2), 2.0);
  EXPECT_DOUBLE_EQ(c.At(2, 1), 4.0);
}

TEST(ElementwiseTest, CsrAddWithCoefficients) {
  CooMatrix a_coo = RandomCoo(30, 40, 200, 1);
  CooMatrix b_coo = RandomCoo(30, 40, 250, 2);
  CsrMatrix c = Add(CooToCsr(a_coo), CooToCsr(b_coo), 2.0, -0.5);
  DenseMatrix expected =
      Add(CooToDense(a_coo), CooToDense(b_coo), 2.0, -0.5);
  ExpectDenseNear(expected, CsrToDense(c), 1e-12);
}

TEST(ElementwiseTest, CsrHadamardIntersectsPatterns) {
  CooMatrix a_coo = RandomCoo(25, 25, 150, 3);
  CooMatrix b_coo = RandomCoo(25, 25, 150, 4);
  CsrMatrix c = Hadamard(CooToCsr(a_coo), CooToCsr(b_coo));
  DenseMatrix expected =
      Hadamard(CooToDense(a_coo), CooToDense(b_coo));
  ExpectDenseNear(expected, CsrToDense(c), 1e-12);
  // The Hadamard pattern is a subset of either operand's.
  EXPECT_LE(c.nnz(), std::min(static_cast<index_t>(150), c.nnz()));
}

TEST(ElementwiseTest, CsrScale) {
  CooMatrix a_coo = RandomCoo(10, 10, 30, 5);
  CsrMatrix scaled = Scale(CooToCsr(a_coo), -3.0);
  DenseMatrix dense = CooToDense(a_coo);
  for (index_t i = 0; i < 10; ++i) {
    for (index_t j = 0; j < 10; ++j) {
      EXPECT_DOUBLE_EQ(scaled.At(i, j), -3.0 * dense.At(i, j));
    }
  }
}

TEST(ElementwiseTest, AtmScaleInPlace) {
  AtmConfig config;
  config.b_atomic = 16;
  config.llc_bytes = 1 << 20;
  CooMatrix coo = RandomCoo(64, 64, 900, 6);
  ATMatrix atm = PartitionToAtm(coo, config);
  ScaleInPlace(&atm, 2.5);
  DenseMatrix expected = CooToDense(coo);
  for (index_t i = 0; i < 64; ++i) {
    for (index_t j = 0; j < 64; ++j) {
      EXPECT_NEAR(atm.At(i, j), 2.5 * expected.At(i, j), 1e-12);
    }
  }
  EXPECT_EQ(atm.nnz(), coo.nnz());  // pattern unchanged
}

TEST(ElementwiseTest, AtmAdd) {
  AtmConfig config;
  config.b_atomic = 16;
  config.llc_bytes = 1 << 20;
  CooMatrix a_coo = RandomCoo(48, 48, 400, 7);
  CooMatrix b_coo = RandomCoo(48, 48, 300, 8);
  ATMatrix a = PartitionToAtm(a_coo, config);
  ATMatrix b = PartitionToAtm(b_coo, config);
  ATMatrix sum = AtmAdd(a, b, config, 1.0, 2.0);
  EXPECT_TRUE(sum.CheckValid());
  DenseMatrix expected = Add(CooToDense(a_coo), CooToDense(b_coo), 1.0, 2.0);
  ExpectDenseNear(expected, CsrToDense(sum.ToCsr()), 1e-12);
}

TEST(ElementwiseTest, DenseOps) {
  DenseMatrix a(2, 2), b(2, 2);
  a.At(0, 0) = 2.0;
  a.At(1, 1) = 3.0;
  b.At(0, 0) = 4.0;
  b.At(0, 1) = 5.0;
  DenseMatrix sum = Add(a, b);
  EXPECT_DOUBLE_EQ(sum.At(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(sum.At(0, 1), 5.0);
  DenseMatrix prod = Hadamard(a, b);
  EXPECT_DOUBLE_EQ(prod.At(0, 0), 8.0);
  EXPECT_DOUBLE_EQ(prod.At(1, 1), 0.0);
}

}  // namespace
}  // namespace atmx
