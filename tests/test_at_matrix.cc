#include "tile/at_matrix.h"

#include <gtest/gtest.h>

#include "storage/convert.h"
#include "tests/test_util.h"
#include "tile/partitioner.h"
#include "validate/debug_hooks.h"

namespace atmx {
namespace {

// Hand-built 2x2 tiling of an 8x8 matrix.
ATMatrix HandTiledMatrix() {
  std::vector<Tile> tiles;
  // Upper-left 4x4 dense.
  DenseMatrix ul(4, 4);
  ul.Fill(1.0);
  tiles.push_back(Tile::MakeDense(0, 0, std::move(ul)));
  // Upper-right 4x4 sparse with one element.
  CooMatrix ur(4, 4);
  ur.Add(0, 3, 2.0);
  tiles.push_back(Tile::MakeSparse(0, 4, CooToCsr(ur)));
  // Lower-left empty sparse.
  tiles.push_back(Tile::MakeSparse(4, 0, CsrMatrix(4, 4)));
  // Lower-right sparse diagonal.
  CooMatrix lr(4, 4);
  for (index_t i = 0; i < 4; ++i) lr.Add(i, i, 3.0);
  tiles.push_back(Tile::MakeSparse(4, 4, CooToCsr(lr)));

  DensityMap map(8, 8, 4);
  map.Set(0, 0, 1.0);
  map.Set(0, 1, 1.0 / 16);
  map.Set(1, 1, 4.0 / 16);
  return ATMatrix(8, 8, 4, std::move(tiles), std::move(map));
}

TEST(ATMatrixTest, Accounting) {
  ATMatrix atm = HandTiledMatrix();
  EXPECT_EQ(atm.rows(), 8);
  EXPECT_EQ(atm.cols(), 8);
  EXPECT_EQ(atm.num_tiles(), 4);
  EXPECT_EQ(atm.NumDenseTiles(), 1);
  EXPECT_EQ(atm.NumSparseTiles(), 3);
  EXPECT_EQ(atm.nnz(), 16 + 1 + 0 + 4);
  EXPECT_TRUE(atm.CheckValid());
}

TEST(ATMatrixTest, BandStructure) {
  ATMatrix atm = HandTiledMatrix();
  ASSERT_EQ(atm.num_row_bands(), 2);
  ASSERT_EQ(atm.num_col_bands(), 2);
  EXPECT_EQ(atm.row_bounds()[1], 4);
  auto band0 = atm.TilesInRowBand(0);
  ASSERT_EQ(band0.size(), 2u);
  // Ordered by col0.
  EXPECT_EQ(atm.tiles()[band0[0]].col0(), 0);
  EXPECT_EQ(atm.tiles()[band0[1]].col0(), 4);
  auto colband1 = atm.TilesInColBand(1);
  ASSERT_EQ(colband1.size(), 2u);
  EXPECT_EQ(atm.tiles()[colband1[0]].row0(), 0);
  EXPECT_EQ(atm.tiles()[colband1[1]].row0(), 4);
}

TEST(ATMatrixTest, ElementLookup) {
  ATMatrix atm = HandTiledMatrix();
  EXPECT_DOUBLE_EQ(atm.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(atm.At(0, 7), 2.0);
  EXPECT_DOUBLE_EQ(atm.At(5, 0), 0.0);
  EXPECT_DOUBLE_EQ(atm.At(6, 6), 3.0);
}

TEST(ATMatrixTest, ToCsrRoundTrip) {
  ATMatrix atm = HandTiledMatrix();
  CsrMatrix csr = atm.ToCsr();
  EXPECT_EQ(csr.nnz(), atm.nnz());
  EXPECT_TRUE(csr.CheckValid());
  for (index_t i = 0; i < 8; ++i) {
    for (index_t j = 0; j < 8; ++j) {
      EXPECT_DOUBLE_EQ(csr.At(i, j), atm.At(i, j));
    }
  }
}

TEST(ATMatrixTest, MemoryBytesSumsTiles) {
  ATMatrix atm = HandTiledMatrix();
  std::size_t expected = 0;
  for (const Tile& t : atm.tiles()) expected += t.MemoryBytes();
  EXPECT_EQ(atm.MemoryBytes(), expected);
}

TEST(ATMatrixTest, InvalidWhenTilesOverlap) {
  // Deliberately invalid construction; keep the debug-validation hook from
  // aborting before CheckValid gets its say.
  validate_debug::ScopedDisableValidation no_hooks;
  std::vector<Tile> tiles;
  DenseMatrix d1(4, 4), d2(4, 4);
  tiles.push_back(Tile::MakeDense(0, 0, std::move(d1)));
  tiles.push_back(Tile::MakeDense(0, 0, std::move(d2)));  // overlap
  ATMatrix atm(4, 8, 4, std::move(tiles), DensityMap(4, 8, 4));
  EXPECT_FALSE(atm.CheckValid());
}

TEST(ATMatrixTest, InvalidWhenAreaUncovered) {
  validate_debug::ScopedDisableValidation no_hooks;
  std::vector<Tile> tiles;
  DenseMatrix d1(4, 4);
  tiles.push_back(Tile::MakeDense(0, 0, std::move(d1)));
  ATMatrix atm(8, 8, 4, std::move(tiles), DensityMap(8, 8, 4));
  EXPECT_FALSE(atm.CheckValid());
}

TEST(ATMatrixTest, EmptyMatrix) {
  ATMatrix atm;
  EXPECT_EQ(atm.rows(), 0);
  EXPECT_EQ(atm.nnz(), 0);
  EXPECT_EQ(atm.num_tiles(), 0);
}

}  // namespace
}  // namespace atmx
