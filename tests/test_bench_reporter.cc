// BenchReporter: machine-readable report round-trip. The emitted JSON is
// validated by running tools/compare_bench.py against it (the tool's
// loader enforces the schema), which also exercises the regression-gate
// verdicts end to end: self-compare passes, a current-only case fails
// without --allow-missing-baseline.

#include "bench/bench_common.h"

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace atmx::bench {
namespace {

#if !defined(ATMX_TOOLS_DIR)
#error "tests/CMakeLists.txt must define ATMX_TOOLS_DIR"
#endif

bool Python3Available() {
  static const bool available =
      std::system("python3 -c 'pass' > /dev/null 2>&1") == 0;
  return available;
}

int RunCompareBench(const std::string& args) {
  const std::string command = std::string("python3 ") + ATMX_TOOLS_DIR +
                              "/compare_bench.py " + args +
                              " > /dev/null 2>&1";
  const int status = std::system(command.c_str());
  return status < 0 ? status : WEXITSTATUS(status);
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(BenchReporterTest, UnarmedFallsBackToPlainMeasurement) {
  BenchReporter& reporter = BenchReporter::Global();
  reporter.Clear();
  ASSERT_FALSE(reporter.armed()) << "another test armed the reporter first";
  int calls = 0;
  const double seconds = reporter.MeasureCase("unarmed.case", [&] {
    ++calls;
  });
  EXPECT_GE(seconds, 0.0);
  EXPECT_GE(calls, 1);
  reporter.AddSample("unarmed.sample", 0.25);
  // Nothing was recorded: the report has no cases.
  EXPECT_NE(reporter.ToJson().find("\"cases\":[]"), std::string::npos);
}

TEST(BenchReporterTest, ReportContainsSchemaConfigAndCases) {
  BenchReporter& reporter = BenchReporter::Global();
  reporter.Clear();
  BenchEnv env;
  env.scale = 0.5;
  reporter.Configure("unit_bench", env);
  reporter.ArmOutput(TempPath("bench_reporter_unit.json"));

  reporter.MeasureCase("case.measured", [] {
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) x += i;
    (void)x;
  });
  reporter.AddSample("case.oneshot", 0.125);

  const std::string json = reporter.ToJson();
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"bench\":\"unit_bench\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\":"), std::string::npos);
  EXPECT_NE(json.find("\"scale\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"case.measured\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"case.oneshot\""), std::string::npos);
  EXPECT_NE(json.find("\"median\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  // The one-shot sample is recorded verbatim.
  EXPECT_NE(json.find("\"samples\":[0.125]"), std::string::npos);
  reporter.Clear();
}

TEST(BenchReporterTest, CompareBenchAcceptsAndGatesTheReport) {
  if (!Python3Available()) GTEST_SKIP() << "python3 not on PATH";

  BenchReporter& reporter = BenchReporter::Global();
  reporter.Clear();
  BenchEnv env;
  reporter.Configure("gate_bench", env);
  const std::string baseline = TempPath("bench_gate_baseline.json");
  const std::string current = TempPath("bench_gate_current.json");
  reporter.ArmOutput(baseline);

  reporter.AddSample("shared.case", 0.100);
  ASSERT_TRUE(reporter.WriteJson(baseline));

  // Self-compare: schema accepted, every case OK, exit 0.
  EXPECT_EQ(RunCompareBench(baseline + " " + baseline), 0);

  // A current-only case: rejected by default, tolerated with the flag.
  reporter.AddSample("current.only", 0.050);
  ASSERT_TRUE(reporter.WriteJson(current));
  EXPECT_EQ(RunCompareBench(baseline + " " + current), 1);
  EXPECT_EQ(RunCompareBench(baseline + " " + current +
                            " --allow-missing-baseline"),
            0);
  // The reverse direction is a missing case: always an error.
  EXPECT_EQ(RunCompareBench(current + " " + baseline +
                            " --allow-missing-baseline"),
            1);

  // A corrupted report is a usage error (exit 2), not a crash.
  const std::string broken = TempPath("bench_gate_broken.json");
  {
    std::ofstream out(broken);
    out << "{\"schema_version\": 99}";
  }
  EXPECT_EQ(RunCompareBench(baseline + " " + broken), 2);

  EXPECT_FALSE(ReadFile(baseline).empty());
  reporter.Clear();
}

}  // namespace
}  // namespace atmx::bench
