#include "tile/tile_lifetime.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>
#include <vector>

#include "storage/csr_matrix.h"
#include "storage/dense_matrix.h"

namespace atmx {
namespace {

Tile DenseTile(index_t row0, index_t col0, index_t n) {
  DenseMatrix payload(n, n);
  for (index_t i = 0; i < n; ++i) payload.At(i, i) = 1.0;
  return Tile::MakeDense(row0, col0, std::move(payload));
}

TEST(ResidentTileSetTest, ChargeAndReleaseTrackPeak) {
  ResidentTileSet resident;
  EXPECT_EQ(resident.current_bytes(), 0u);
  EXPECT_EQ(resident.peak_bytes(), 0u);

  resident.Charge(1000);
  resident.Charge(500);
  EXPECT_EQ(resident.current_bytes(), 1500u);
  EXPECT_EQ(resident.peak_bytes(), 1500u);

  resident.ReleaseCharge(1000);
  EXPECT_EQ(resident.current_bytes(), 500u);
  // Peak is a high-water mark; release never lowers it.
  EXPECT_EQ(resident.peak_bytes(), 1500u);

  resident.Charge(200);
  EXPECT_EQ(resident.current_bytes(), 700u);
  EXPECT_EQ(resident.peak_bytes(), 1500u);
}

TEST(ResidentTileSetTest, RetireReleasesPayloadsAndBytes) {
  ResidentTileSet resident;
  std::vector<Tile> tiles;
  tiles.push_back(DenseTile(0, 0, 16));
  tiles.push_back(DenseTile(0, 16, 16));
  tiles.push_back(DenseTile(16, 0, 16));
  std::uint64_t charged = 0;
  for (const Tile& t : tiles) {
    charged += t.MemoryBytes();
    resident.Charge(t.MemoryBytes());
  }
  EXPECT_EQ(resident.current_bytes(), charged);

  // Retire the first row band (tiles 0 and 1).
  const std::array<index_t, 2> band = {0, 1};
  const std::uint64_t released = resident.Retire(&tiles, band);
  EXPECT_GT(released, 0u);
  EXPECT_EQ(resident.current_bytes(), charged - released);
  EXPECT_EQ(resident.peak_bytes(), charged);

  // Retired tiles keep their bounding box but drop their payload.
  EXPECT_FALSE(tiles[0].is_dense());
  EXPECT_EQ(tiles[0].row0(), 0);
  EXPECT_EQ(tiles[1].col0(), 16);
  // The survivor is untouched and accounts for the remaining charge.
  EXPECT_TRUE(tiles[2].is_dense());
  EXPECT_EQ(resident.current_bytes(), tiles[2].MemoryBytes());
}

TEST(ResidentTileSetTest, ConcurrentChargesKeepConsistentPeak) {
  ResidentTileSet resident;
  constexpr int kThreads = 4;
  constexpr int kChargesPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&resident] {
      for (int i = 0; i < kChargesPerThread; ++i) resident.Charge(8);
    });
  }
  for (std::thread& t : threads) t.join();
  const std::uint64_t total = 8ull * kThreads * kChargesPerThread;
  EXPECT_EQ(resident.current_bytes(), total);
  // All charges and no releases: the peak is exactly the total.
  EXPECT_EQ(resident.peak_bytes(), total);
}

TEST(ResidentTileSetTest, UnlimitedBudgetAdmitsEverything) {
  ResidentTileSet resident;
  EXPECT_EQ(resident.budget_bytes(), 0u);
  EXPECT_TRUE(resident.TryReserve(1ull << 40));
  EXPECT_EQ(resident.reserved_bytes(), 1ull << 40);
  resident.ReleaseReservation(1ull << 40);
  EXPECT_EQ(resident.reserved_bytes(), 0u);
}

TEST(ResidentTileSetTest, TryReserveChecksChargedPlusReserved) {
  ResidentTileSet resident;
  resident.set_budget_bytes(1000);
  resident.Charge(400);
  EXPECT_TRUE(resident.TryReserve(500));   // 400 + 500 <= 1000
  EXPECT_FALSE(resident.TryReserve(200));  // 400 + 500 + 200 > 1000
  EXPECT_EQ(resident.reserved_bytes(), 500u);
  // Releasing the reservation (the task finished; its output is now pure
  // charge) makes room again.
  resident.ReleaseReservation(500);
  EXPECT_TRUE(resident.TryReserve(600));
  resident.ReleaseReservation(600);
  resident.ReleaseCharge(400);
}

TEST(ResidentTileSetTest, ForceReserveIgnoresBudget) {
  ResidentTileSet resident;
  resident.set_budget_bytes(100);
  EXPECT_FALSE(resident.TryReserve(200));
  resident.ForceReserve(200);  // deadlock-free fallback: always admitted
  EXPECT_EQ(resident.reserved_bytes(), 200u);
  // Over budget now: further speculative admissions are refused.
  EXPECT_FALSE(resident.TryReserve(1));
  resident.ReleaseReservation(200);
  EXPECT_TRUE(resident.TryReserve(50));
  resident.ReleaseReservation(50);
}

TEST(ResidentTileSetTest, ConcurrentTryReserveNeverOverAdmits) {
  // N threads race to reserve 100-byte slots against a 1000-byte budget:
  // at most 10 may win, and reserved_bytes must never exceed the budget.
  ResidentTileSet resident;
  resident.set_budget_bytes(1000);
  constexpr int kThreads = 8;
  constexpr int kAttemptsPerThread = 64;
  std::atomic<int> admitted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&resident, &admitted] {
      for (int i = 0; i < kAttemptsPerThread; ++i) {
        if (resident.TryReserve(100)) {
          admitted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(admitted.load(), 10);
  EXPECT_EQ(resident.reserved_bytes(), 1000u);
}

}  // namespace
}  // namespace atmx
