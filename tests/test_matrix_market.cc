#include "storage/matrix_market.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "storage/convert.h"
#include "tests/test_util.h"

namespace atmx {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(MatrixMarketTest, WriteReadRoundTrip) {
  CooMatrix coo = atmx::testing::RandomCoo(12, 9, 40, 21);
  const std::string path = TempPath("roundtrip.mtx");
  ASSERT_TRUE(WriteMatrixMarket(coo, path).ok());
  Result<CooMatrix> read = ReadMatrixMarket(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().rows(), 12);
  EXPECT_EQ(read.value().cols(), 9);
  EXPECT_EQ(read.value().nnz(), 40);
  atmx::testing::ExpectDenseNear(CooToDense(coo),
                                 CooToDense(read.value()), 1e-12);
}

TEST(MatrixMarketTest, ReadsSymmetricExpanded) {
  const std::string path = TempPath("sym.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real symmetric\n"
        << "% a comment\n"
        << "3 3 2\n"
        << "2 1 5.0\n"
        << "3 3 1.0\n";
  }
  Result<CooMatrix> read = ReadMatrixMarket(path);
  ASSERT_TRUE(read.ok());
  // Off-diagonal expands to both triangles; diagonal does not.
  EXPECT_EQ(read.value().nnz(), 3);
  DenseMatrix d = CooToDense(read.value());
  EXPECT_DOUBLE_EQ(d.At(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(d.At(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(d.At(2, 2), 1.0);
}

TEST(MatrixMarketTest, ReadsPatternAsOnes) {
  const std::string path = TempPath("pattern.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate pattern general\n"
        << "2 2 1\n"
        << "1 2\n";
  }
  Result<CooMatrix> read = ReadMatrixMarket(path);
  ASSERT_TRUE(read.ok());
  EXPECT_DOUBLE_EQ(CooToDense(read.value()).At(0, 1), 1.0);
}

TEST(MatrixMarketTest, SumsDuplicateEntries) {
  const std::string path = TempPath("dup.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real general\n"
        << "3 3 4\n"
        << "1 2 1.5\n"
        << "3 3 2.0\n"
        << "1 2 2.5\n"
        << "1 2 -1.0\n";
  }
  Result<CooMatrix> read = ReadMatrixMarket(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  // Duplicates sum and the returned COO is coalesced: nnz counts distinct
  // coordinates, not file lines.
  EXPECT_EQ(read.value().nnz(), 2);
  DenseMatrix d = CooToDense(read.value());
  EXPECT_DOUBLE_EQ(d.At(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(d.At(2, 2), 2.0);
}

TEST(MatrixMarketTest, SumsSymmetricDiagonalDuplicates) {
  const std::string path = TempPath("dupsym.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate pattern symmetric\n"
        << "2 2 3\n"
        << "2 1\n"
        << "2 2\n"
        << "2 2\n";
  }
  Result<CooMatrix> read = ReadMatrixMarket(path);
  ASSERT_TRUE(read.ok());
  // Off-diagonal expands to both triangles (1 each), the duplicated
  // diagonal pattern entries sum to 2.0.
  EXPECT_EQ(read.value().nnz(), 3);
  DenseMatrix d = CooToDense(read.value());
  EXPECT_DOUBLE_EQ(d.At(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(d.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(d.At(1, 1), 2.0);
}

TEST(MatrixMarketTest, RejectsSkewSymmetricWithSpecificStatus) {
  const std::string path = TempPath("skew.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real skew-symmetric\n"
        << "2 2 1\n"
        << "2 1 3.0\n";
  }
  Result<CooMatrix> read = ReadMatrixMarket(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kUnimplemented);
  EXPECT_NE(read.status().ToString().find("skew-symmetric"),
            std::string::npos);
}

TEST(MatrixMarketTest, RejectsHermitianWithSpecificStatus) {
  const std::string path = TempPath("herm.mtx");
  {
    std::ofstream out(path);
    // Real-field banner so the symmetry branch (not the complex-field
    // rejection) is the one under test.
    out << "%%MatrixMarket matrix coordinate real hermitian\n"
        << "2 2 1\n"
        << "1 1 1.0\n";
  }
  Result<CooMatrix> read = ReadMatrixMarket(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kUnimplemented);
  EXPECT_NE(read.status().ToString().find("hermitian"), std::string::npos);
}

TEST(MatrixMarketTest, RejectsUnknownSymmetryAsInvalidArgument) {
  const std::string path = TempPath("sym_typo.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real symetric\n"
        << "2 2 1\n"
        << "1 1 1.0\n";
  }
  Result<CooMatrix> read = ReadMatrixMarket(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(read.status().ToString().find("symetric"), std::string::npos);
}

TEST(MatrixMarketTest, RejectsMissingFile) {
  Result<CooMatrix> read = ReadMatrixMarket(TempPath("nonexistent.mtx"));
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST(MatrixMarketTest, RejectsBadHeader) {
  const std::string path = TempPath("bad.mtx");
  {
    std::ofstream out(path);
    out << "not a matrix market file\n";
  }
  EXPECT_FALSE(ReadMatrixMarket(path).ok());
}

TEST(MatrixMarketTest, RejectsOutOfBoundsEntry) {
  const std::string path = TempPath("oob.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real general\n"
        << "2 2 1\n"
        << "3 1 1.0\n";
  }
  Result<CooMatrix> read = ReadMatrixMarket(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kOutOfRange);
}

TEST(MatrixMarketTest, RejectsTruncatedEntries) {
  const std::string path = TempPath("trunc.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real general\n"
        << "2 2 2\n"
        << "1 1 1.0\n";
  }
  EXPECT_FALSE(ReadMatrixMarket(path).ok());
}

}  // namespace
}  // namespace atmx
