#include "morton/morton.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace atmx {
namespace {

TEST(MortonTest, SmallValuesMatchZOrder) {
  // Z-order on a 2x2 grid enumerates UL, UR, LL, LR.
  EXPECT_EQ(MortonEncode(0, 0), 0u);
  EXPECT_EQ(MortonEncode(0, 1), 1u);
  EXPECT_EQ(MortonEncode(1, 0), 2u);
  EXPECT_EQ(MortonEncode(1, 1), 3u);
  // Second level.
  EXPECT_EQ(MortonEncode(0, 2), 4u);
  EXPECT_EQ(MortonEncode(2, 0), 8u);
  EXPECT_EQ(MortonEncode(2, 2), 12u);
  EXPECT_EQ(MortonEncode(3, 3), 15u);
}

TEST(MortonTest, EncodeDecodeRoundTrip) {
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) {
    const index_t r = static_cast<index_t>(rng.NextBounded(1u << 31));
    const index_t c = static_cast<index_t>(rng.NextBounded(1u << 31));
    index_t r2, c2;
    MortonDecode(MortonEncode(r, c), &r2, &c2);
    EXPECT_EQ(r, r2);
    EXPECT_EQ(c, c2);
  }
}

TEST(MortonTest, QuadrantLocality) {
  // All Z-values of an aligned 4x4 quadrant at (4, 8) are contiguous.
  const std::uint64_t base = MortonEncode(4, 8);
  for (index_t r = 4; r < 8; ++r) {
    for (index_t c = 8; c < 12; ++c) {
      const std::uint64_t z = MortonEncode(r, c);
      EXPECT_GE(z, base);
      EXPECT_LT(z, base + 16);
    }
  }
}

TEST(ZSpaceTest, PadsToCommonPowerOfTwo) {
  EXPECT_EQ(ZSpaceSide(7, 8), 8);
  EXPECT_EQ(ZSpaceSide(8, 8), 8);
  EXPECT_EQ(ZSpaceSide(9, 3), 16);
  EXPECT_EQ(ZSpaceSide(1, 1), 1);
}

TEST(ZSplitTest, FourEqualQuadrants) {
  ZQuad quads[4];
  ZSplit(0, 64, quads);
  for (int q = 0; q < 4; ++q) {
    EXPECT_EQ(quads[q].start, static_cast<std::uint64_t>(q) * 16);
    EXPECT_EQ(quads[q].end, static_cast<std::uint64_t>(q + 1) * 16);
  }
  // Quadrant order is UL, UR, LL, LR.
  index_t r, c;
  ZRangeOrigin(quads[0].start, &r, &c);
  EXPECT_EQ(r, 0);
  EXPECT_EQ(c, 0);
  ZRangeOrigin(quads[1].start, &r, &c);
  EXPECT_EQ(r, 0);
  EXPECT_EQ(c, 4);
  ZRangeOrigin(quads[2].start, &r, &c);
  EXPECT_EQ(r, 4);
  EXPECT_EQ(c, 0);
  ZRangeOrigin(quads[3].start, &r, &c);
  EXPECT_EQ(r, 4);
  EXPECT_EQ(c, 4);
}

TEST(ZRangeTest, SideLengths) {
  EXPECT_EQ(ZRangeSide(0, 1), 1);
  EXPECT_EQ(ZRangeSide(0, 4), 2);
  EXPECT_EQ(ZRangeSide(16, 32), 4);
  EXPECT_EQ(ZRangeSide(0, 4096), 64);
}

TEST(ZRangeTest, OriginOfNestedQuadrants) {
  // The LR quadrant of the LR quadrant of a 8x8 space starts at (6, 6).
  ZQuad quads[4];
  ZSplit(0, 64, quads);
  ZQuad inner[4];
  ZSplit(quads[3].start, quads[3].end, inner);
  index_t r, c;
  ZRangeOrigin(inner[3].start, &r, &c);
  EXPECT_EQ(r, 6);
  EXPECT_EQ(c, 6);
}

}  // namespace
}  // namespace atmx
