#include "kernels/sparse_accumulator.h"

#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#include "storage/convert.h"

namespace atmx {
namespace {

TEST(SparseAccumulatorTest, AccumulatesAndFlushesSorted) {
  SparseAccumulator spa(10);
  spa.Add(7, 1.0);
  spa.Add(2, 2.0);
  spa.Add(7, 0.5);
  EXPECT_EQ(spa.touched(), 2);

  CsrBuilder builder(1, 10);
  spa.FlushToBuilder(&builder);
  CsrMatrix m = builder.Build();
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.At(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(m.At(0, 7), 1.5);
  EXPECT_TRUE(m.CheckValid());
  // Flush clears.
  EXPECT_TRUE(spa.empty());
}

TEST(SparseAccumulatorTest, FlushToDenseRowAdds) {
  SparseAccumulator spa(5);
  spa.Add(1, 2.0);
  spa.Add(4, -1.0);
  std::vector<value_t> row(5, 10.0);
  spa.FlushToDenseRow(row.data());
  EXPECT_DOUBLE_EQ(row[0], 10.0);
  EXPECT_DOUBLE_EQ(row[1], 12.0);
  EXPECT_DOUBLE_EQ(row[4], 9.0);
  EXPECT_TRUE(spa.empty());
}

TEST(SparseAccumulatorTest, ClearResetsState) {
  SparseAccumulator spa(8);
  spa.Add(3, 1.0);
  spa.Clear();
  EXPECT_TRUE(spa.empty());
  // The slot must be reusable with a fresh value.
  spa.Add(3, 5.0);
  CsrBuilder builder(1, 8);
  spa.FlushToBuilder(&builder);
  EXPECT_DOUBLE_EQ(builder.Build().At(0, 3), 5.0);
}

TEST(SparseAccumulatorTest, ExplicitZeroIsKept) {
  // Numeric cancellation still registers the element (CSR semantics).
  SparseAccumulator spa(4);
  spa.Add(2, 1.0);
  spa.Add(2, -1.0);
  CsrBuilder builder(1, 4);
  spa.FlushToBuilder(&builder);
  CsrMatrix m = builder.Build();
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.At(0, 2), 0.0);
}

TEST(SparseAccumulatorTest, ResizeReinitializes) {
  SparseAccumulator spa(4);
  spa.Add(1, 1.0);
  spa.Resize(16);
  EXPECT_EQ(spa.width(), 16);
  EXPECT_TRUE(spa.empty());
  spa.Add(15, 3.0);
  EXPECT_EQ(spa.touched(), 1);
}

TEST(AdaptiveAccumulatorTest, SelectionBoundary) {
  using Mode = SparseAccumulator::Mode;
  // Unknown density always keeps the dense SPA.
  EXPECT_EQ(SparseAccumulator::ChooseMode(4096, -1.0), Mode::kDense);
  // Narrow rows keep the dense SPA no matter how sparse.
  EXPECT_EQ(
      SparseAccumulator::ChooseMode(SparseAccumulator::kMinHashWidth - 1,
                                    0.0),
      Mode::kDense);
  // Exactly at the width floor with an ultra-sparse estimate: hash.
  EXPECT_EQ(
      SparseAccumulator::ChooseMode(SparseAccumulator::kMinHashWidth, 0.5),
      Mode::kHash);
  // Density cutoff: just below width * cutoff selects hash, at it dense.
  const index_t width = 4096;
  const double cutoff =
      static_cast<double>(width) * SparseAccumulator::kHashDensityCutoff;
  EXPECT_EQ(SparseAccumulator::ChooseMode(width, cutoff - 1.0), Mode::kHash);
  EXPECT_EQ(SparseAccumulator::ChooseMode(width, cutoff), Mode::kDense);
}

TEST(AdaptiveAccumulatorTest, HashModeMatchesDenseBitwise) {
  // The same Add sequence through both modes must flush identical rows —
  // same columns, same value bits — since per-column accumulation order is
  // identical.
  const index_t width = 1 << 12;
  SparseAccumulator dense(width);
  SparseAccumulator hash;
  hash.ResizeAdaptive(width, /*expected_row_nnz=*/4.0);
  ASSERT_EQ(hash.mode(), SparseAccumulator::Mode::kHash);

  const std::vector<std::pair<index_t, value_t>> adds = {
      {9, 0.1},   {4095, -2.5}, {9, 0.2},  {17, 1e-30}, {2048, 3.0},
      {17, -1e-30}, {0, 7.0},   {9, -0.3}, {2048, 0.25}};
  for (const auto& [j, v] : adds) {
    dense.Add(j, v);
    hash.Add(j, v);
  }
  EXPECT_EQ(dense.touched(), hash.touched());

  CsrBuilder dense_builder(1, width);
  CsrBuilder hash_builder(1, width);
  dense.FlushToBuilder(&dense_builder);
  hash.FlushToBuilder(&hash_builder);
  const CsrMatrix dense_row = dense_builder.Build();
  const CsrMatrix hash_row = hash_builder.Build();
  ASSERT_EQ(dense_row.nnz(), hash_row.nnz());
  EXPECT_EQ(dense_row.col_idx(), hash_row.col_idx());
  for (index_t p = 0; p < dense_row.nnz(); ++p) {
    // Bitwise, not approximate: same addition order per column.
    EXPECT_EQ(std::memcmp(&dense_row.values()[p], &hash_row.values()[p],
                          sizeof(value_t)),
              0)
        << "position " << p;
  }
}

TEST(AdaptiveAccumulatorTest, HashModeGrowsPastInitialCapacity) {
  // Estimate of 1 element, then a few hundred inserts: the table must
  // rehash (repeatedly) and still flush every column sorted.
  const index_t width = 1 << 14;
  SparseAccumulator spa;
  spa.ResizeAdaptive(width, /*expected_row_nnz=*/1.0);
  ASSERT_EQ(spa.mode(), SparseAccumulator::Mode::kHash);
  const index_t kInserts = 500;
  for (index_t i = 0; i < kInserts; ++i) {
    spa.Add((i * 31) % width, 1.0);
    spa.Add((i * 31) % width, 0.5);  // duplicate hits accumulate
  }
  EXPECT_EQ(spa.touched(), kInserts);
  CsrBuilder builder(1, width);
  spa.FlushToBuilder(&builder);
  const CsrMatrix row = builder.Build();
  EXPECT_EQ(row.nnz(), kInserts);
  EXPECT_TRUE(row.CheckValid());
  for (index_t p = 0; p < row.nnz(); ++p) {
    EXPECT_DOUBLE_EQ(row.values()[p], 1.5);
  }
  EXPECT_TRUE(spa.empty());
}

TEST(AdaptiveAccumulatorTest, HashModeClearAndDenseRowFlush) {
  SparseAccumulator spa;
  spa.ResizeAdaptive(1024, 2.0);
  ASSERT_EQ(spa.mode(), SparseAccumulator::Mode::kHash);
  spa.Add(3, 1.0);
  spa.Add(900, 2.0);
  spa.Clear();
  EXPECT_TRUE(spa.empty());
  // Slots must be reusable with fresh values after Clear.
  spa.Add(3, 5.0);
  spa.Add(900, -1.0);
  std::vector<value_t> row(1024, 10.0);
  spa.FlushToDenseRow(row.data());
  EXPECT_DOUBLE_EQ(row[3], 15.0);
  EXPECT_DOUBLE_EQ(row[900], 9.0);
  EXPECT_DOUBLE_EQ(row[0], 10.0);
  EXPECT_TRUE(spa.empty());
}

TEST(AdaptiveAccumulatorTest, HashModeKeepsExplicitZero) {
  SparseAccumulator spa;
  spa.ResizeAdaptive(512, 1.0);
  ASSERT_EQ(spa.mode(), SparseAccumulator::Mode::kHash);
  spa.Add(100, 1.0);
  spa.Add(100, -1.0);
  CsrBuilder builder(1, 512);
  spa.FlushToBuilder(&builder);
  const CsrMatrix row = builder.Build();
  EXPECT_EQ(row.nnz(), 1);
  EXPECT_DOUBLE_EQ(row.At(0, 100), 0.0);
}

}  // namespace
}  // namespace atmx
