#include "kernels/sparse_accumulator.h"

#include <gtest/gtest.h>

#include "storage/convert.h"

namespace atmx {
namespace {

TEST(SparseAccumulatorTest, AccumulatesAndFlushesSorted) {
  SparseAccumulator spa(10);
  spa.Add(7, 1.0);
  spa.Add(2, 2.0);
  spa.Add(7, 0.5);
  EXPECT_EQ(spa.touched(), 2);

  CsrBuilder builder(1, 10);
  spa.FlushToBuilder(&builder);
  CsrMatrix m = builder.Build();
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.At(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(m.At(0, 7), 1.5);
  EXPECT_TRUE(m.CheckValid());
  // Flush clears.
  EXPECT_TRUE(spa.empty());
}

TEST(SparseAccumulatorTest, FlushToDenseRowAdds) {
  SparseAccumulator spa(5);
  spa.Add(1, 2.0);
  spa.Add(4, -1.0);
  std::vector<value_t> row(5, 10.0);
  spa.FlushToDenseRow(row.data());
  EXPECT_DOUBLE_EQ(row[0], 10.0);
  EXPECT_DOUBLE_EQ(row[1], 12.0);
  EXPECT_DOUBLE_EQ(row[4], 9.0);
  EXPECT_TRUE(spa.empty());
}

TEST(SparseAccumulatorTest, ClearResetsState) {
  SparseAccumulator spa(8);
  spa.Add(3, 1.0);
  spa.Clear();
  EXPECT_TRUE(spa.empty());
  // The slot must be reusable with a fresh value.
  spa.Add(3, 5.0);
  CsrBuilder builder(1, 8);
  spa.FlushToBuilder(&builder);
  EXPECT_DOUBLE_EQ(builder.Build().At(0, 3), 5.0);
}

TEST(SparseAccumulatorTest, ExplicitZeroIsKept) {
  // Numeric cancellation still registers the element (CSR semantics).
  SparseAccumulator spa(4);
  spa.Add(2, 1.0);
  spa.Add(2, -1.0);
  CsrBuilder builder(1, 4);
  spa.FlushToBuilder(&builder);
  CsrMatrix m = builder.Build();
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.At(0, 2), 0.0);
}

TEST(SparseAccumulatorTest, ResizeReinitializes) {
  SparseAccumulator spa(4);
  spa.Add(1, 1.0);
  spa.Resize(16);
  EXPECT_EQ(spa.width(), 16);
  EXPECT_TRUE(spa.empty());
  spa.Add(15, 3.0);
  EXPECT_EQ(spa.touched(), 1);
}

}  // namespace
}  // namespace atmx
